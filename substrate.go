package tibfit

// This file re-exports the substrate layers for users who want to build
// their own simulations rather than run the packaged experiments: the
// discrete-event kernel, the wireless channel, LEACH-style cluster-head
// election with the base station, and the §3.4 shadow-cluster-head panel.

import (
	"github.com/tibfit/tibfit/internal/aggregator"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/leach"
	"github.com/tibfit/tibfit/internal/mobility"
	"github.com/tibfit/tibfit/internal/network"
	"github.com/tibfit/tibfit/internal/node"
	"github.com/tibfit/tibfit/internal/radio"
	"github.com/tibfit/tibfit/internal/relay"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/shadow"
	"github.com/tibfit/tibfit/internal/sim"
	"github.com/tibfit/tibfit/internal/stats"
	"github.com/tibfit/tibfit/internal/trace"
)

// Simulation kernel.
type (
	// Kernel is the deterministic discrete-event scheduler.
	Kernel = sim.Kernel
	// SimTime is a point in virtual time.
	SimTime = sim.Time
	// SimDuration is a span of virtual time.
	SimDuration = sim.Duration
	// Timer is a cancellable scheduled event.
	Timer = sim.Timer
)

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel { return sim.New() }

// Randomness.
type (
	// Rand is a deterministic random stream with the distribution helpers
	// the simulation needs.
	Rand = rng.Source
)

// NewRand returns a deterministic stream for the given seed.
func NewRand(seed int64) *Rand { return rng.New(seed) }

// Wireless channel.
type (
	// RadioConfig describes the channel model.
	RadioConfig = radio.Config
	// Radio is a stochastic wireless channel bound to a kernel.
	Radio = radio.Channel
)

// DefaultRadioConfig returns the channel the experiments use.
func DefaultRadioConfig() RadioConfig { return radio.DefaultConfig() }

// NewRadio returns a channel using the given kernel and random stream.
func NewRadio(cfg RadioConfig, kernel *Kernel, src *Rand) *Radio {
	return radio.NewChannel(cfg, kernel, src)
}

// Aggregators (the cluster-head side of the protocol).
type (
	// BinaryAggregator collects binary reports and runs §3.1 windows.
	BinaryAggregator = aggregator.Binary
	// BinaryAggregatorConfig configures a binary aggregator.
	BinaryAggregatorConfig = aggregator.BinaryConfig
	// BinaryOutcome describes one completed binary window.
	BinaryOutcome = aggregator.BinaryOutcome
	// LocationAggregator runs the §3.2/§3.3 location pipeline.
	LocationAggregator = aggregator.Location
	// LocationAggregatorConfig configures a location aggregator.
	LocationAggregatorConfig = aggregator.LocationConfig
	// LocationOutcome describes one completed aggregation round.
	LocationOutcome = aggregator.LocationOutcome
	// LocationCandidate is the vote result for one event cluster.
	LocationCandidate = aggregator.Candidate
	// Positions exposes CH-known node locations.
	Positions = aggregator.Positions
	// PosMap is a map-backed Positions implementation.
	PosMap = aggregator.PosMap
	// Feedback receives per-node verdicts (the decision broadcast).
	Feedback = aggregator.Feedback
)

// NewBinaryAggregator wires a §3.1 aggregator to a kernel. The Weigher is
// adapted into a decision.Scheme; pass a DecisionScheme directly to keep
// scheme-specific behaviour (per-scheme TI, isolation lists).
func NewBinaryAggregator(cfg BinaryAggregatorConfig, w Weigher, kernel *Kernel,
	onDecide func(BinaryOutcome), fb Feedback, tr *Trace) (*BinaryAggregator, error) {
	return aggregator.NewBinary(cfg, decision.Adapt(w), kernel, onDecide, fb, tr)
}

// NewLocationAggregator wires a §3.2/§3.3 aggregator to a kernel.
func NewLocationAggregator(cfg LocationAggregatorConfig, w Weigher, kernel *Kernel,
	pos Positions, onDecide func(LocationOutcome), fb Feedback, tr *Trace) (*LocationAggregator, error) {
	return aggregator.NewLocation(cfg, decision.Adapt(w), kernel, pos, onDecide, fb, tr)
}

// LEACH election and base station.
type (
	// LEACHConfig parameterizes cluster-head elections.
	LEACHConfig = leach.Config
	// Election runs LEACH rounds over a node population.
	Election = leach.Election
	// ElectionResult is the outcome of one election round.
	ElectionResult = leach.Result
	// Station is the base station persisting trust across CH terms.
	Station = leach.Station
)

// NewStation returns a base station persisting trust under params.
func NewStation(params TrustParams) (*Station, error) { return leach.NewStation(params) }

// NewElection returns an election controller over the given nodes.
func NewElection(cfg LEACHConfig, station *Station, channel *Radio,
	nodes []*SensorNode, src *Rand) (*Election, error) {
	return leach.NewElection(cfg, station, channel, nodes, src)
}

// Shadow cluster heads (§3.4).
type (
	// ShadowPanel replicates CH decisions across two shadow cluster heads
	// and majority-votes at the base station on disagreement.
	ShadowPanel = shadow.Panel
	// ShadowReport is the outcome of one replicated decision.
	ShadowReport = shadow.Report
	// Corruptor injects primary-CH fault behaviour.
	Corruptor = shadow.Corruptor
)

// NewShadowPanel returns a panel of one primary and two shadow replicas.
func NewShadowPanel(params TrustParams, primaryNode int, corrupt Corruptor,
	penalty func(primaryNode int)) (*ShadowPanel, error) {
	return shadow.NewPanel(params, primaryNode, corrupt, penalty)
}

// FlipCorruptor returns a Corruptor that inverts decisions with
// probability p using the given coin.
func FlipCorruptor(p float64, coin func(p float64) bool) Corruptor {
	return shadow.FlipCorruptor(p, coin)
}

// Tracing.
type (
	// Trace collects structured protocol events.
	Trace = trace.Trace
)

// NewTrace returns a discarding trace that counts records by kind.
func NewTrace() *Trace { return trace.New() }

// Mobility (§2's mobile networks, §3.2's mobile target).
type (
	// MobilityModel yields a position for any virtual time.
	MobilityModel = mobility.Model
	// StaticModel never moves.
	StaticModel = mobility.Static
	// LinearModel moves at constant velocity, bouncing off area walls.
	LinearModel = mobility.Linear
	// WaypointModel is the random-waypoint trajectory.
	WaypointModel = mobility.Waypoint
	// MobilityField tracks a population of mobility models.
	MobilityField = mobility.Field
)

// NewWaypoint returns a random-waypoint model starting at start.
func NewWaypoint(area geo.Rect, start Point, minSpeed, maxSpeed float64, src *Rand) (*WaypointModel, error) {
	return mobility.NewWaypoint(area, start, minSpeed, maxSpeed, src)
}

// NewMobilityField returns an empty mobility field.
func NewMobilityField() *MobilityField { return mobility.NewField() }

// NewArea returns the rectangle spanning (0,0) to (w,h).
func NewArea(w, h float64) geo.Rect { return geo.NewRect(w, h) }

// Multi-hop relay (§3.4's extension beyond one hop).
type (
	// RelayConfig tunes per-hop retransmission.
	RelayConfig = relay.Config
	// Mesh is a multi-hop topology with reliable forwarding.
	Mesh = relay.Mesh
)

// DefaultRelayConfig returns the default retry budget and backoff.
func DefaultRelayConfig() RelayConfig { return relay.DefaultConfig() }

// NewMesh builds a multi-hop topology over positioned nodes.
func NewMesh(cfg RelayConfig, channel *Radio, kernel *Kernel, pos map[int]Point) (*Mesh, error) {
	return relay.NewMesh(cfg, channel, kernel, pos)
}

// Whole-system assembly (clusters + election + base station).
type (
	// NetworkConfig assembles a multi-cluster network.
	NetworkConfig = network.Config
	// Network is the assembled system of figure 1.
	Network = network.Network
	// Declaration is one network-level event declaration.
	Declaration = network.Declaration
)

// DefaultNetworkConfig returns Table-2-like whole-system parameters.
func DefaultNetworkConfig() NetworkConfig { return network.DefaultConfig() }

// NewNetwork assembles a network over the given nodes.
func NewNetwork(cfg NetworkConfig, kernel *Kernel, channel *Radio,
	nodes []*SensorNode, src *Rand, tr *Trace) (*Network, error) {
	return network.New(cfg, kernel, channel, nodes, src, tr)
}

// NewSensorNode constructs a sensor node with the given behaviour model.
func NewSensorNode(id int, pos Point, kind NodeKind, cfg NodeConfig, src *Rand) (*SensorNode, error) {
	return node.New(id, pos, kind, cfg, src)
}

// Statistics helpers for replicate analysis.
type (
	// StatSample accumulates observations (Welford).
	StatSample = stats.Sample
	// StatSummary bundles descriptive statistics.
	StatSummary = stats.Summary
	// StatInterval is a two-sided confidence interval.
	StatInterval = stats.Interval
)

// Summarize computes descriptive statistics over xs.
func Summarize(xs []float64) StatSummary { return stats.Summarize(xs) }

// Wilson95 returns the Wilson score 95% interval for a proportion.
func Wilson95(successes, trials int) StatInterval { return stats.Wilson95(successes, trials) }
