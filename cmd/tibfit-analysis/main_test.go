package main

import "testing"

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"no action", nil},
		{"unknown figure", []string{"-fig", "12"}},
		{"bad flag", []string{"-nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Fatalf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}

func TestRunHappyPaths(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"figure 10", []string{"-fig", "10"}},
		{"figure 11", []string{"-fig", "11"}},
		{"figure 11 csv", []string{"-fig", "11", "-format", "csv"}},
		{"kmax", []string{"-fig", "kmax"}},
		{"roots alias", []string{"-fig", "11-roots"}},
		{"success probability", []string{"-success", "-n", "10", "-m", "6", "-p", "0.95", "-q", "0.5"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err != nil {
				t.Fatalf("run(%v) = %v", tt.args, err)
			}
		})
	}
}
