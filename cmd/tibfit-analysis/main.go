// Command tibfit-analysis evaluates the paper's §5 closed forms: the
// majority-voting success probability (figure 10), the trust-decay
// transition function and its roots (figure 11), and the k_max bound.
//
// Usage:
//
//	tibfit-analysis -fig 10 [-n 10] [-q 0.5]
//	tibfit-analysis -fig 11 [-n 10]
//	tibfit-analysis -fig kmax
//	tibfit-analysis -success -n 10 -m 6 -p 0.95 -q 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tibfit/tibfit/internal/analysis"
	"github.com/tibfit/tibfit/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tibfit-analysis:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tibfit-analysis", flag.ContinueOnError)
	var (
		fig     = fs.String("fig", "", "closed-form figure: 10, 11, or kmax")
		success = fs.Bool("success", false, "evaluate one majority-voting success probability")
		n       = fs.Int("n", 10, "event neighbors")
		m       = fs.Int("m", 5, "faulty event neighbors (with -success)")
		p       = fs.Float64("p", 0.95, "correct-node report probability")
		q       = fs.Float64("q", 0.5, "faulty-node report probability")
		format  = fs.String("format", "table", "output format: table, csv, or plot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	emit := func(id string) error {
		f, err := experiment.Generate(id, experiment.FigureOptions{})
		if err != nil {
			return err
		}
		switch *format {
		case "csv":
			fmt.Print(f.CSV())
		case "plot":
			fmt.Print(f.Plot(64, 16))
		default:
			fmt.Print(f.Table())
		}
		return nil
	}

	switch {
	case *success:
		prob := analysis.MajoritySuccess(*n, *m, *p, *q)
		fmt.Printf("P(success | n=%d, m=%d, p=%g, q=%g) = %.6f\n", *n, *m, *p, *q, prob)
		return nil
	case *fig == "10":
		return emit("figure10")
	case *fig == "11":
		return emit("figure11")
	case *fig == "kmax" || *fig == "11-roots":
		return emit("figure11-roots")
	default:
		fs.Usage()
		return fmt.Errorf("pass -fig 10|11|kmax or -success")
	}
}
