// Command tibfit-bench is the repeatable benchmark harness: it runs the
// repo's benchmark suite (figure regenerations, experiment campaigns, and
// the kernel/aggregator/trust micro-benchmarks) through testing.Benchmark,
// measures the campaign-parallelism speedup of -parallel N over
// -parallel 1, sweeps the serve daemon's sustained ingest throughput
// across worker counts, and emits one machine-readable JSON report per
// run.
//
// Usage:
//
//	tibfit-bench                      # full suite -> BENCH_<date>.json
//	tibfit-bench -quick               # CI-sized benchtime
//	tibfit-bench -bench 'kernel/'     # filter by regexp
//	tibfit-bench -baseline BENCH_2026-08-05.json -threshold 25
//	tibfit-bench -baseline ... -enforce   # exit 1 on regression
//	tibfit-bench -cpuprofile cpu.out -memprofile mem.out
//
// With -baseline the report is compared entry by entry against a previous
// run and ns/op regressions beyond -threshold percent are listed;
// -enforce turns them into a non-zero exit (the CI gate starts advisory).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/tibfit/tibfit/internal/aggregator"
	"github.com/tibfit/tibfit/internal/cli"
	"github.com/tibfit/tibfit/internal/cluster"
	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/engine"
	"github.com/tibfit/tibfit/internal/experiment"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/metrics"
	"github.com/tibfit/tibfit/internal/radio"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/serve"
	"github.com/tibfit/tibfit/internal/sim"
)

// Result is one benchmark entry of the JSON report.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// CampaignPoint is one worker count of the campaign speedup sweep,
// with speedup relative to the 1-worker run of the same sweep. Procs
// records runtime.GOMAXPROCS at the moment the point ran: a sweep
// claiming an N-worker speedup is only meaningful when the scheduler had
// N procs to run them on, and the report-level gomaxprocs field cannot
// say what each point saw.
type CampaignPoint struct {
	Workers int     `json:"workers"`
	Procs   int     `json:"procs"`
	Ns      int64   `json:"ns"`
	Speedup float64 `json:"speedup"`
}

// Campaign reports the parallel-campaign speedup sweep. The flat
// Workers/ParallelNs/Speedup fields mirror the sweep's widest point so
// reports stay comparable with pre-sweep baselines.
type Campaign struct {
	Figure       string          `json:"figure"`
	Workers      int             `json:"workers"`
	SequentialNs int64           `json:"sequential_ns"`
	ParallelNs   int64           `json:"parallel_ns"`
	Speedup      float64         `json:"speedup"`
	Points       []CampaignPoint `json:"points"`
}

// ThroughputPoint is one worker count of the sustained serve-ingest
// sweep: closed-loop workers driving the line-format batch endpoint
// over real HTTP, with request-latency quantiles from the merged
// per-worker histograms and speedup relative to the 1-worker point.
type ThroughputPoint struct {
	Workers       int     `json:"workers"`
	Procs         int     `json:"procs"`
	Ns            int64   `json:"ns"`
	ReportsPerSec float64 `json:"reports_per_sec"`
	Speedup       float64 `json:"speedup"`
	P50Ns         float64 `json:"p50_ns"`
	P99Ns         float64 `json:"p99_ns"`
}

// Throughput reports the sustained serve-ingest sweep configuration and
// its per-worker-count points.
type Throughput struct {
	Wire    string            `json:"wire"`
	Tenants int               `json:"tenants"`
	Shards  int               `json:"shards"`
	Batch   int               `json:"batch"`
	Reports int               `json:"reports"`
	Points  []ThroughputPoint `json:"points"`
}

// Report is the BENCH_<date>.json schema.
type Report struct {
	Schema     string      `json:"schema"`
	Date       string      `json:"date"`
	Go         string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Result    `json:"benchmarks"`
	Campaign   *Campaign   `json:"campaign,omitempty"`
	Throughput *Throughput `json:"throughput,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tibfit-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tibfit-bench", flag.ContinueOnError)
	var (
		out        = fs.String("out", "", "output JSON path (default BENCH_<date>.json)")
		quick      = fs.Bool("quick", false, "CI-sized run: shorter benchtime, campaign at reduced scale")
		benchRe    = fs.String("bench", "", "only run benchmarks matching this regexp")
		baseline   = fs.String("baseline", "", "compare ns/op against a previous report")
		threshold  = fs.Float64("threshold", 25, "regression threshold in percent (with -baseline)")
		enforce    = fs.Bool("enforce", false, "exit non-zero when a regression exceeds the threshold")
		skipCamp   = fs.Bool("nocampaign", false, "skip the parallel-campaign speedup measurement")
		skipTput   = fs.Bool("nothroughput", false, "skip the sustained serve-throughput sweep")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the benchmark run")
		memprofile = fs.String("memprofile", "", "write a heap profile after the benchmark run")
	)
	var sf cli.SchemeFlags
	sf.Register(fs, experiment.SchemeTIBFIT)
	var sched cli.SchedulerFlag
	sched.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := sf.Resolve()
	if err != nil {
		return err
	}
	if err := sched.Apply(); err != nil {
		return err
	}

	// testing.Benchmark reads the -test.benchtime flag; register the
	// testing flags and pick a benchtime matching the run mode.
	testing.Init()
	benchtime := "1s"
	if *quick {
		benchtime = "50ms"
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return err
	}

	var filter *regexp.Regexp
	if *benchRe != "" {
		re, err := regexp.Compile(*benchRe)
		if err != nil {
			return fmt.Errorf("bad -bench regexp: %w", err)
		}
		filter = re
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	rep := Report{
		Schema:     "tibfit-bench/v1",
		Date:       time.Now().UTC().Format("2006-01-02"),
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	for _, bm := range suite(scheme, sf, *quick) {
		if filter != nil && !filter.MatchString(bm.name) {
			continue
		}
		res := testing.Benchmark(bm.fn)
		r := Result{
			Name:        bm.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
		fmt.Printf("%-28s %12.0f ns/op %10d B/op %8d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}

	if !*skipCamp && (filter == nil || filter.MatchString("campaign")) {
		c, err := measureCampaign(*quick)
		if err != nil {
			return err
		}
		rep.Campaign = &c
		for _, p := range c.Points {
			fmt.Printf("campaign %s: %2d workers %6.2fs  speedup %.2fx\n",
				c.Figure, p.Workers, float64(p.Ns)/1e9, p.Speedup)
		}
	}

	if !*skipTput && (filter == nil || filter.MatchString("serve/throughput")) {
		tp, rows, err := measureServeThroughput(*quick)
		if err != nil {
			return err
		}
		rep.Throughput = &tp
		rep.Benchmarks = append(rep.Benchmarks, rows...)
		best := 0.0
		for i, p := range tp.Points {
			fmt.Printf("%-28s %12.0f ns/op  %9.0f reports/sec  speedup %.2fx  p50 %s p99 %s\n",
				rows[i].Name, rows[i].NsPerOp, p.ReportsPerSec, p.Speedup,
				time.Duration(p.P50Ns), time.Duration(p.P99Ns))
			if p.Speedup > best {
				best = p.Speedup
			}
		}
		// Advisory only: on a single-proc host the sweep physically cannot
		// scale, and even multi-proc CI runners share cores; the number is
		// published either way and the gate stays a log line.
		if runtime.GOMAXPROCS(0) > 1 && best < 1.5 {
			fmt.Printf("advisory: serve throughput peaked at %.2fx with %d procs, below the 1.5x scaling target\n",
				best, runtime.GOMAXPROCS(0))
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)

	if *baseline != "" {
		regressions, err := compare(*baseline, rep, *threshold)
		if err != nil {
			return err
		}
		if len(regressions) > 0 && *enforce {
			return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", len(regressions), *threshold)
		}
	}
	return nil
}

// compare prints per-benchmark deltas against a baseline report and
// returns the names that regressed beyond the threshold.
func compare(path string, cur Report, threshold float64) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	byName := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		byName[r.Name] = r
	}
	var regressions []string
	for _, r := range cur.Benchmarks {
		b, ok := byName[r.Name]
		if !ok || b.NsPerOp <= 0 {
			fmt.Printf("%-28s (no baseline)\n", r.Name)
			continue
		}
		pct := 100 * (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		mark := ""
		if pct > threshold {
			mark = "  REGRESSION"
			regressions = append(regressions, r.Name)
		}
		fmt.Printf("%-28s %+7.1f%% ns/op vs baseline%s\n", r.Name, pct, mark)
	}
	if len(regressions) > 0 {
		fmt.Printf("%d benchmark(s) beyond +%.0f%% ns/op: %v\n", len(regressions), threshold, regressions)
	} else {
		fmt.Println("no regressions beyond threshold")
	}
	return regressions, nil
}

// benchmark is one named suite entry.
type benchmark struct {
	name string
	fn   func(*testing.B)
}

// suite assembles the benchmark set: macro benchmarks mirroring
// bench_test.go (figure regenerations and the Table 1/2 campaigns) plus
// the kernel, trust, clustering, and aggregation micro-benchmarks behind
// the allocation diet.
// Workload sizes are identical in quick and full mode — -quick only
// shortens benchtime — so ns/op stays comparable across the two and the
// CI quick run can be checked against a full-run baseline.
//
// The campaign benchmarks run under the -scheme/-lambda/-fr selection;
// the per-scheme decision/<name>-window entries always cover every
// registered scheme so the registry's arbitration costs stay comparable.
//
// The field/ rows are the million-node-scale matrix: nearest-head
// resolution through the spatial grid vs the brute field scan at 10k and
// 100k nodes, and full field campaigns (uniform population, LEACH
// clusters, location pipeline) at 100k — plus 1M nodes/10k clusters in
// full mode only, the one entry whose workload -quick skips rather than
// shortens.
func suite(scheme string, sf cli.SchemeFlags, quick bool) []benchmark {
	const figEvents = 100
	figOpts := experiment.FigureOptions{Runs: 1, Events: figEvents, Seed: 1, Parallel: 1}

	bms := []benchmark{
		{"kernel/schedule-run", benchKernelScheduleRun},
		{"kernel/timer-stop", benchKernelTimerStop},
		{"kernel/timer-churn", benchKernelTimerChurn},
		{"core/judge-weight", benchCoreJudgeWeight},
		{"core/decide-binary", benchCoreDecideBinary},
		{"cluster/kmeans", benchClusterKMeans},
		{"aggregator/location-round", benchLocationRound},
		{"aggregator/binary-window", benchBinaryWindow},
		{"radio/send", benchRadioSend},
	}
	// The scheduler scale-up matrix: the same churn workload against
	// growing standing-timer populations, under each event queue, makes
	// the heap's O(log n) vs the calendar's O(1) crossover visible in the
	// report; the skewed-horizon workload stresses the calendar's
	// grow/shrink resize path with a bimodal event horizon.
	for _, schedName := range sim.Schedulers() {
		schedName := schedName
		for _, pop := range []int{1_000, 16_000, 128_000} {
			pop := pop
			bms = append(bms, benchmark{
				fmt.Sprintf("kernel/timer-churn/%dk/%s", pop/1000, schedName),
				func(b *testing.B) { benchKernelTimerChurnPop(b, pop, schedName) },
			})
		}
		bms = append(bms, benchmark{
			"kernel/skewed-horizon/" + schedName,
			func(b *testing.B) { benchKernelSkewedHorizon(b, schedName) },
		})
	}
	for _, name := range decision.Names() {
		name := name
		bms = append(bms, benchmark{"decision/" + name + "-window", func(b *testing.B) {
			benchSchemeWindow(b, name)
		}})
	}
	// The serve/ rows price the online engine the daemon ships: the
	// engine.Instance ingest hot path and full window cycle (the
	// decision-latency numerator the serve histograms report), the HTTP
	// handler itself — serve/http-report drives the mux+JSON ingest path
	// handler-direct (no socket), serve/http-socket adds the loopback TCP
	// tax, serve/http-batch-256 is the line-format hot path whose ns/op
	// amortizes over 256 reports — and the sealed snapshot/restore
	// roundtrip behind GET/PUT /snapshot.
	bms = append(bms,
		benchmark{"serve/instance-ingest", benchServeInstanceIngest},
		benchmark{"serve/engine-window", benchServeEngineWindow},
		benchmark{"serve/http-report", benchServeHTTPReport},
		benchmark{"serve/http-socket", benchServeHTTPSocket},
		benchmark{"serve/http-batch-256", benchServeHTTPBatch256},
		benchmark{"serve/snapshot-roundtrip", benchServeSnapshotRoundtrip},
	)
	for _, id := range []string{"figure2", "figure4", "figure8"} {
		id := id
		bms = append(bms, benchmark{"figure/" + id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiment.Generate(id, figOpts); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}
	fieldSizes := []int{10_000, 100_000}
	if !quick {
		fieldSizes = append(fieldSizes, 1_000_000)
	}
	for _, n := range fieldSizes {
		n := n
		bms = append(bms,
			benchmark{fmt.Sprintf("field/nearest/%dk-grid", n/1000), func(b *testing.B) {
				benchFieldNearest(b, n, true)
			}},
			benchmark{fmt.Sprintf("field/nearest/%dk-brute", n/1000), func(b *testing.B) {
				benchFieldNearest(b, n, false)
			}},
		)
	}
	bms = append(bms, benchmark{"field/campaign/100k", func(b *testing.B) {
		benchFieldCampaign(b, 100_000, 1_000, 5)
	}})
	if !quick {
		bms = append(bms, benchmark{"field/campaign/1M-10k", func(b *testing.B) {
			benchFieldCampaign(b, 1_000_000, 10_000, 3)
		}})
	}
	bms = append(bms,
		benchmark{"campaign/exp1-table1", func(b *testing.B) {
			cfg := experiment.DefaultExp1()
			cfg.FaultyFraction = 0.5
			cfg.Scheme = scheme
			sf.ApplyLambda(&cfg.Lambda)
			for i := 0; i < b.N; i++ {
				if _, err := experiment.RunExp1(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		benchmark{"campaign/exp2-table2", func(b *testing.B) {
			cfg := experiment.DefaultExp2()
			cfg.Events = figEvents
			cfg.Scheme = scheme
			sf.ApplyLambda(&cfg.Lambda)
			sf.ApplyFaultRate(&cfg.FaultRate)
			for i := 0; i < b.N; i++ {
				if _, err := experiment.RunExp2(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
	)
	return bms
}

// measureCampaign times one multi-cell figure across the worker-count
// sweep {1, 2, GOMAXPROCS}, deduplicated ascending — the 2-worker
// point runs even on a single-core host, where it prices the pool's
// coordination overhead. Output is byte-identical at every width
// (asserted by the experiment package's regression tests); this
// measures wall clock only.
func measureCampaign(quick bool) (Campaign, error) {
	const figure = "figure4"
	events := 200
	if quick {
		events = 60
	}
	max := runtime.GOMAXPROCS(0)
	counts := []int{1}
	for _, w := range []int{2, max} {
		if w > counts[len(counts)-1] {
			counts = append(counts, w)
		}
	}
	opts := experiment.FigureOptions{Runs: 2, Events: events, Seed: 1}

	c := Campaign{Figure: figure}
	for _, w := range counts {
		opts.Parallel = w
		t0 := time.Now()
		if _, err := experiment.Generate(figure, opts); err != nil {
			return Campaign{}, err
		}
		ns := time.Since(t0).Nanoseconds()
		p := CampaignPoint{Workers: w, Procs: runtime.GOMAXPROCS(0), Ns: ns}
		if w == 1 {
			c.SequentialNs = ns
		}
		if ns > 0 {
			p.Speedup = float64(c.SequentialNs) / float64(ns)
		}
		c.Points = append(c.Points, p)
		// The widest point doubles as the flat summary.
		c.Workers, c.ParallelNs, c.Speedup = w, ns, p.Speedup
	}
	return c, nil
}

// measureServeThroughput is the sustained-throughput harness: for each
// worker count in {1, 2, GOMAXPROCS} (deduplicated ascending) it boots a
// fresh in-process daemon with 4 tenants of 4 shards each, then drives
// closed-loop workers over loopback HTTP posting 256-report line-format
// batches until the report budget is spent. Wall clock over the whole
// send phase yields reports/sec; per-request latencies merge into the
// p50/p99 columns. Each point also lands in the benchmarks array as
// serve/throughput/<w>-workers with NsPerOp = wall ns per report, so
// the baseline comparison and the CI regression gate see it.
func measureServeThroughput(quick bool) (Throughput, []Result, error) {
	const (
		nTenants = 4
		nShards  = 4
		nNodes   = 64
		batchLen = 256
	)
	reports := 1_000_000
	if quick {
		reports = 200_000
	}
	max := runtime.GOMAXPROCS(0)
	counts := []int{1}
	for _, w := range []int{2, max} {
		if w > counts[len(counts)-1] {
			counts = append(counts, w)
		}
	}
	tp := Throughput{Wire: "batch", Tenants: nTenants, Shards: nShards, Batch: batchLen, Reports: reports}
	var rows []Result
	for _, w := range counts {
		p, err := runThroughputPoint(w, reports, nTenants, nShards, nNodes, batchLen)
		if err != nil {
			return Throughput{}, nil, err
		}
		if len(tp.Points) > 0 && p.Ns > 0 {
			p.Speedup = float64(tp.Points[0].Ns) / float64(p.Ns)
		} else if p.Ns > 0 {
			p.Speedup = 1
		}
		tp.Points = append(tp.Points, p)
		rows = append(rows, Result{
			Name:       fmt.Sprintf("serve/throughput/%d-workers", w),
			Iterations: reports,
			NsPerOp:    float64(p.Ns) / float64(reports),
		})
	}
	return tp, rows, nil
}

// runThroughputPoint measures one worker count: fresh server, fresh
// tenants, the budget split across workers, every worker in its own
// closed loop with a private rng and latency histogram.
func runThroughputPoint(workers, reports, nTenants, nShards, nNodes, batchLen int) (ThroughputPoint, error) {
	srv := serve.NewServer(serve.Config{})
	names := make([]string, nTenants)
	for i := range names {
		names[i] = fmt.Sprintf("tput-%d", i)
		// Tout far beyond the run horizon: the point prices ingest, not
		// window arbitration — decision latency has its own rows.
		cfg := serve.TenantConfig{Tout: 1e9, Nodes: nNodes, Shards: nShards}
		if err := srv.CreateTenant(names[i], cfg); err != nil {
			return ThroughputPoint{}, err
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        workers + 4,
			MaxIdleConnsPerHost: workers + 4,
		},
	}
	defer client.CloseIdleConnections()

	errs := make([]error, workers)
	hists := make([]metrics.Histogram, workers)
	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < workers; w++ {
		budget := reports / workers
		if w < reports%workers {
			budget++
		}
		wg.Add(1)
		go func(w, budget int) {
			defer wg.Done()
			src := rng.New(int64(1 + w))
			body := make([]byte, 0, 4*batchLen)
			for ti := w % len(names); budget > 0; ti = (ti + 1) % len(names) {
				n := batchLen
				if n > budget {
					n = budget
				}
				body = body[:0]
				for j := 0; j < n; j++ {
					body = strconv.AppendInt(body, int64(src.Intn(nNodes)), 10)
					body = append(body, '\n')
				}
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/v1/tenants/"+names[ti]+"/reports/batch",
					"text/plain", bytes.NewReader(body))
				if err != nil {
					errs[w] = err
					return
				}
				_, cerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				hists[w].Record(float64(time.Since(t0)))
				if cerr != nil {
					errs[w] = cerr
					return
				}
				if resp.StatusCode != 200 {
					errs[w] = fmt.Errorf("throughput ingest: HTTP %d", resp.StatusCode)
					return
				}
				budget -= n
			}
		}(w, budget)
	}
	wg.Wait()
	wall := time.Since(begin)
	var merged metrics.Histogram
	for w := range hists {
		if errs[w] != nil {
			return ThroughputPoint{}, fmt.Errorf("throughput worker %d: %w", w, errs[w])
		}
		merged.Merge(&hists[w])
	}
	return ThroughputPoint{
		Workers:       workers,
		Procs:         runtime.GOMAXPROCS(0),
		Ns:            wall.Nanoseconds(),
		ReportsPerSec: float64(reports) / wall.Seconds(),
		P50Ns:         merged.Quantile(0.50),
		P99Ns:         merged.Quantile(0.99),
	}, nil
}

// --- micro-benchmarks -----------------------------------------------------

func benchKernelScheduleRun(b *testing.B) {
	k := sim.New()
	const window = 1000
	for i := 0; i < window; i++ {
		k.After(sim.Duration(i), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(window, func() {})
		k.Step()
	}
}

func benchKernelTimerStop(b *testing.B) {
	k := sim.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm := k.After(1e9, func() {})
		tm.Stop()
	}
}

// benchKernelTimerChurn mimics the ACK/backoff pattern of the reliable
// report path: many standing timers, most cancelled before firing.
func benchKernelTimerChurn(b *testing.B) {
	k := sim.New()
	b.ReportAllocs()
	b.ResetTimer()
	timers := make([]*sim.Timer, 0, 64)
	for i := 0; i < b.N; i++ {
		timers = timers[:0]
		for j := 0; j < 64; j++ {
			timers = append(timers, k.After(sim.Duration(1+j), func() {}))
		}
		for _, tm := range timers[:48] {
			tm.Stop()
		}
		k.RunAll()
	}
}

// benchKernelTimerChurnPop is the population-scaled churn: the same
// 64-schedule/48-stop/16-dispatch op as kernel/timer-churn, but executed
// over a standing population of pop long-horizon timers (session
// timeouts, heartbeat deadlines) that never fires. The churned timers are
// near-term — the ACK/backoff regime — so on the heap every schedule
// sifts up past the standing population (log₂ pop levels) and every
// dispatch sifts back down, while the calendar prices the same ops
// against one day bucket regardless of pop. That depth-dependence is the
// O(log n) vs O(1) crossover the matrix makes visible.
func benchKernelTimerChurnPop(b *testing.B, pop int, schedName string) {
	k := sim.New(sim.WithScheduler(schedName))
	for i := 0; i < pop; i++ {
		k.After(sim.Duration(1e12+float64(i)), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	timers := make([]*sim.Timer, 64)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			timers[j] = k.After(sim.Duration(1+j), func() {})
		}
		for j := 0; j < 48; j++ {
			timers[j].Stop()
		}
		for j := 0; j < 16; j++ {
			k.Step()
		}
	}
}

// benchKernelSkewedHorizon oscillates the population between empty and a
// bimodal near/far spread each op: the near half fires, the far half is
// cancelled. On the calendar queue every op forces bucket-count growth,
// width re-estimation against skewed gaps, and shrink back down — the
// resize machinery is the measured cost.
func benchKernelSkewedHorizon(b *testing.B, schedName string) {
	k := sim.New(sim.WithScheduler(schedName))
	b.ReportAllocs()
	b.ResetTimer()
	far := make([]*sim.Timer, 0, 1024)
	for i := 0; i < b.N; i++ {
		far = far[:0]
		for j := 0; j < 1024; j++ {
			k.After(sim.Duration(1+j), func() {})
			far = append(far, k.After(sim.Duration(1e6+float64(j)), func() {}))
		}
		k.Run(k.Now().Add(1100))
		for _, tm := range far {
			tm.Stop()
		}
	}
}

// benchRadioSend measures the steady-state cost of pricing and scheduling
// one member→CH transmission with the link cache warm — the regime a
// campaign spends its radio time in (static positions, repeated pairs).
func benchRadioSend(b *testing.B) {
	cfg := radio.DefaultConfig()
	cfg.Range = 200
	k := sim.New()
	ch := radio.NewChannel(cfg, k, rng.New(1))
	head := geo.Point{X: 50, Y: 50}
	src := rng.New(2)
	members := make([]geo.Point, 64)
	for i := range members {
		members[i] = geo.Point{X: src.Uniform(0, 100), Y: src.Uniform(0, 100)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Send(members[i%len(members)], head, func() {})
		if k.Pending() > 4096 {
			b.StopTimer()
			k.RunAll()
			b.StartTimer()
		}
	}
}

func benchCoreJudgeWeight(b *testing.B) {
	t := core.MustNewTable(core.Params{Lambda: 0.25, FaultRate: 0.1})
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		node := i % 64
		t.Judge(node, i%10 != 0)
		sink += t.Weight(node)
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

func benchCoreDecideBinary(b *testing.B) {
	t := core.MustNewTable(core.Params{Lambda: 0.1, FaultRate: 0.05})
	reporters := make([]int, 24)
	silent := make([]int, 12)
	for i := range reporters {
		reporters[i] = i
	}
	for i := range silent {
		silent[i] = 24 + i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := core.DecideBinary(t, reporters, silent)
		core.Apply(t, dec)
	}
}

func benchClusterKMeans(b *testing.B) {
	var reports []cluster.Report
	for i := 0; i < 12; i++ {
		reports = append(reports, cluster.Report{
			Node: i,
			Loc:  geo.Point{X: 50 + float64(i%4), Y: 50 + float64(i/4)},
		})
	}
	reports = append(reports,
		cluster.Report{Node: 12, Loc: geo.Point{X: 80, Y: 20}},
		cluster.Report{Node: 13, Loc: geo.Point{X: 10, Y: 90}},
		cluster.Report{Node: 14, Loc: geo.Point{X: 30, Y: 70}},
	)
	cl := cluster.NewClusterer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := cl.Cluster(reports, 5); len(got) == 0 {
			b.Fatal("no clusters")
		}
	}
}

// benchFieldNearest resolves nearest-node queries over an n-point uniform
// field, through the spatial grid or the brute linear scan the grid
// replaced. The two produce identical answers (pinned by the geo
// differential fuzzers); the ratio of these rows is the grid's speedup at
// field scale.
func benchFieldNearest(b *testing.B, n int, grid bool) {
	src := rng.New(7)
	side := 10 * math.Sqrt(float64(n))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: src.Uniform(0, side), Y: src.Uniform(0, side)}
	}
	queries := make([]geo.Point, 256)
	for i := range queries {
		queries[i] = geo.Point{X: src.Uniform(0, side), Y: src.Uniform(0, side)}
	}
	var g *geo.Grid
	if grid {
		g = geo.NewGrid()
		g.Rebuild(pts, geo.AutoCell(pts))
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if grid {
			idx, _ := g.Nearest(q)
			sink += idx
			continue
		}
		best, bestD2 := 0, pts[0].Dist2(q)
		for j := 1; j < len(pts); j++ {
			if d2 := pts[j].Dist2(q); d2 < bestD2 {
				best, bestD2 = j, d2
			}
		}
		sink += best
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// benchFieldCampaign runs one full field-scale campaign per op: uniform
// population, LEACH election into the cluster target, location-mode
// events through the whole report/aggregate/decide pipeline.
func benchFieldCampaign(b *testing.B, nodes, clusters, events int) {
	cfg := experiment.FieldConfig{Nodes: nodes, Clusters: clusters, Events: events, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunField(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Declarations == 0 {
			b.Fatal("campaign declared nothing")
		}
	}
}

func benchLocationRound(b *testing.B) {
	kernel := sim.New()
	table := core.MustNewTable(core.Params{Lambda: 0.25, FaultRate: 0.1})
	pos := make(aggregator.PosMap, 25)
	id := 0
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			pos[id] = geo.Point{X: float64(10 + x*10), Y: float64(10 + y*10)}
			id++
		}
	}
	agg, err := aggregator.NewLocation(
		aggregator.LocationConfig{Tout: 1, RError: 5, SenseRadius: 25},
		decision.Adapt(table), kernel, pos, nil, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	event := geo.Point{X: 30, Y: 30}
	ids := pos.IDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, nodeID := range ids {
			origin := pos[nodeID]
			if origin.Dist(event) <= 25 {
				agg.Deliver(nodeID, geo.ToPolar(origin, event))
			}
		}
		kernel.RunAll()
	}
}

func benchBinaryWindow(b *testing.B) {
	kernel := sim.New()
	table := core.MustNewTable(core.Params{Lambda: 0.1, FaultRate: 0.05})
	members := make([]int, 25)
	for i := range members {
		members[i] = i
	}
	agg, err := aggregator.NewBinary(
		aggregator.BinaryConfig{Tout: 1, Members: members},
		decision.Adapt(table), kernel, nil, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, nodeID := range members[:18] {
			agg.Deliver(nodeID)
		}
		kernel.RunAll()
	}
}

// --- serve benchmarks -----------------------------------------------------

// engineMembers builds the 0..n-1 member set the serve rows share.
func engineMembers(n int) []int {
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	return members
}

// benchServeInstanceIngest measures the ReportMany hot path in steady
// state: one open window, 64-report batches against a 64-member tenant,
// with the window horizon far enough out that no expiry fires. This is
// the per-report cost the serve ingest histogram records, minus HTTP.
func benchServeInstanceIngest(b *testing.B) {
	clock := engine.NewWallClock(time.Hour)
	inst, err := engine.New(engine.Config{
		Scheme:  decision.SchemeTIBFIT,
		Params:  decision.Params{Trust: core.Params{Lambda: 0.25, FaultRate: 0.1}},
		Tout:    1e9,
		Members: engineMembers(64),
		Clock:   clock,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer inst.Close()
	batch := engineMembers(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := inst.ReportMany(batch); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// benchServeEngineWindow times one full online decision window through
// engine.Instance on the sim-kernel clock: 18 of 25 members report, the
// window expires, the scheme arbitrates, the decision lands in the ring.
// Against decision/tibfit-window it prices the engine seam itself.
func benchServeEngineWindow(b *testing.B) {
	kernel := sim.New()
	inst, err := engine.New(engine.Config{
		Scheme:  decision.SchemeTIBFIT,
		Params:  decision.Params{Trust: core.Params{Lambda: 0.1, FaultRate: 0.05}},
		Tout:    1,
		Members: engineMembers(25),
		Clock:   kernel,
	})
	if err != nil {
		b.Fatal(err)
	}
	batch := engineMembers(18)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := inst.ReportMany(batch); res.Err != nil {
			b.Fatal(res.Err)
		}
		kernel.RunAll()
	}
}

// discardResponseWriter is the handler-direct sink: headers land in a
// reusable map, the body is counted and dropped.
type discardResponseWriter struct {
	h      http.Header
	status int
}

func (w *discardResponseWriter) Header() http.Header         { return w.h }
func (w *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardResponseWriter) WriteHeader(status int)      { w.status = status }

// benchHandlerDirect drives one pre-built request straight into the
// serve mux — no socket, no client — rewinding the shared body reader
// each op. What remains is the handler's own cost: routing, decode,
// ingest, reply rendering.
func benchHandlerDirect(b *testing.B, handler http.Handler, method, target, contentType string, body []byte) {
	rd := bytes.NewReader(body)
	req := httptest.NewRequest(method, target, rd)
	req.Header.Set("Content-Type", contentType)
	w := &discardResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.Seek(0, io.SeekStart); err != nil {
			b.Fatal(err)
		}
		w.status = 0
		handler.ServeHTTP(w, req)
		if w.status != 0 && w.status != 200 {
			b.Fatalf("status %d", w.status)
		}
	}
}

// benchServeHTTPReport sends a 64-report JSON batch handler-direct: mux
// routing, JSON decode, instance ingest, JSON reply, with the socket
// factored out. The delta over serve/instance-ingest is the encode and
// routing tax on one batch; serve/http-socket adds the wire back.
func benchServeHTTPReport(b *testing.B) {
	srv := serve.NewServer(serve.Config{})
	if err := srv.CreateTenant("bench", serve.TenantConfig{Tout: 1e9, Nodes: 64}); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	body, err := json.Marshal(map[string][]int{"nodes": engineMembers(64)})
	if err != nil {
		b.Fatal(err)
	}
	benchHandlerDirect(b, srv.Handler(), http.MethodPost,
		"http://bench/v1/tenants/bench/reports", "application/json", body)
}

// benchServeHTTPBatch256 sends a 256-report line-format batch through
// the zero-alloc endpoint, handler-direct. Divide ns/op by 256 for the
// amortized per-report cost — the figure the sustained-throughput sweep
// should approach once the socket amortizes away.
func benchServeHTTPBatch256(b *testing.B) {
	srv := serve.NewServer(serve.Config{})
	if err := srv.CreateTenant("bench", serve.TenantConfig{Tout: 1e9, Nodes: 256}); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	var body []byte
	for _, id := range engineMembers(256) {
		body = strconv.AppendInt(body, int64(id), 10)
		body = append(body, '\n')
	}
	benchHandlerDirect(b, srv.Handler(), http.MethodPost,
		"http://bench/v1/tenants/bench/reports/batch", "text/plain", body)
}

// benchServeHTTPSocket sends the same 64-report JSON batch through the
// whole stack — loopback TCP, client, mux, decode, ingest, reply — the
// way tibfit-load drives the daemon. The delta over serve/http-report
// is the socket tax on one request.
func benchServeHTTPSocket(b *testing.B) {
	srv := serve.NewServer(serve.Config{})
	if err := srv.CreateTenant("bench", serve.TenantConfig{Tout: 1e9, Nodes: 64}); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	body, err := json.Marshal(map[string][]int{"nodes": engineMembers(64)})
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	url := ts.URL + "/v1/tenants/bench/reports"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// benchServeSnapshotRoundtrip seals the trust namespace of a warmed
// instance and restores it into a second one — the GET /snapshot →
// PUT /snapshot migration path. Each op carries a fresh monotonic
// version, so the restore side always takes the accept path.
func benchServeSnapshotRoundtrip(b *testing.B) {
	kernel := sim.New()
	members := engineMembers(64)
	params := decision.Params{Trust: core.Params{Lambda: 0.25, FaultRate: 0.1}}
	src, err := engine.New(engine.Config{
		Scheme: decision.SchemeTIBFIT, Params: params, Tout: 1, Members: members, Clock: kernel,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if res := src.ReportMany(members[:48]); res.Err != nil {
			b.Fatal(res.Err)
		}
		kernel.RunAll()
	}
	dst, err := engine.New(engine.Config{
		Scheme: decision.SchemeTIBFIT, Params: params, Tout: 1, Members: members, Clock: sim.New(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := src.SealedSnapshot()
		if err != nil {
			b.Fatal(err)
		}
		if err := dst.RestoreSealed(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSchemeWindow times one full binary decision window under a named
// registered scheme: 18 of 25 members report, the window closes, the
// scheme arbitrates and absorbs the trust feedback.
func benchSchemeWindow(b *testing.B, name string) {
	kernel := sim.New()
	s, err := decision.New(name, decision.Params{
		Trust: core.Params{Lambda: 0.1, FaultRate: 0.05},
	})
	if err != nil {
		b.Fatal(err)
	}
	members := make([]int, 25)
	for i := range members {
		members[i] = i
	}
	agg, err := aggregator.NewBinary(
		aggregator.BinaryConfig{Tout: 1, Members: members},
		s, kernel, nil, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, nodeID := range members[:18] {
			agg.Deliver(nodeID)
		}
		kernel.RunAll()
	}
}
