package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/tibfit/tibfit/internal/serve"
)

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-nope"}},
		{"bad addr", []string{"-addr", "not a url"}},
		{"relative addr", []string{"-addr", "127.0.0.1:8080"}},
		{"bad tenant", []string{"-tenant", "UPPER"}},
		{"bad scheme", []string{"-scheme", "magic"}},
		{"zero tenants", []string{"-tenants", "0"}},
		{"zero reports", []string{"-reports", "0"}},
		{"zero batch", []string{"-batch", "0"}},
		{"zero workers", []string{"-workers", "0"}},
		{"bad wire", []string{"-wire", "grpc"}},
		{"zero shards", []string{"-shards", "0"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args, os.Stdout); err == nil {
				t.Fatalf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}

// TestRunFlagExactMessages pins the complete user-facing error for each
// rejected flag value, matching the -scheme/-scheduler error-path
// contract: the validation layer's message reaches the user verbatim.
func TestRunFlagExactMessages(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{
			"addr without scheme",
			[]string{"-addr", "127.0.0.1:8080"},
			`invalid -addr "127.0.0.1:8080": need an absolute URL like http://127.0.0.1:8080`,
		},
		{
			"tenant with bad characters",
			[]string{"-tenant", "load/0"},
			`cli: tenant name may use lowercase letters, digits, '-', '_', '.': "load/0"`,
		},
		{
			"unknown scheme",
			[]string{"-scheme", "fuzy"},
			`decision: unknown scheme "fuzy" (did you mean "fuzzy"?); registered: baseline, dynamic-trust, fuzzy, linear, majority, tibfit`,
		},
		{
			"zero tenants",
			[]string{"-tenants", "0"},
			"-tenants must be positive, got 0",
		},
		{
			"zero reports",
			[]string{"-reports", "0"},
			"-reports must be positive, got 0",
		},
		{
			"zero workers",
			[]string{"-workers", "0"},
			"-workers must be positive, got 0",
		},
		{
			"unknown wire",
			[]string{"-wire", "grpc"},
			`-wire must be "json" or "batch", got "grpc"`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args, os.Stdout)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want %q", tt.args, tt.want)
			}
			if err.Error() != tt.want {
				t.Fatalf("run(%v)\n got: %s\nwant: %s", tt.args, err, tt.want)
			}
		})
	}
}

// TestRunAgainstServer drives the load generator end to end against an
// in-process serve handler: the CI smoke job's path, shrunk to unit
// size, including the snapshot roundtrip and the -out artifact.
func TestRunAgainstServer(t *testing.T) {
	srv := serve.NewServer(serve.Config{Unit: 50 * time.Microsecond})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	outPath := filepath.Join(t.TempDir(), "latency.json")
	args := []string{
		"-addr", ts.URL,
		"-tenants", "2",
		"-reports", "500",
		"-nodes", "8",
		"-batch", "16",
		"-tout", "20",
		"-min-decisions", "1",
		"-snapshot-roundtrip",
		"-out", outPath,
	}
	if err := run(args, os.Stdout); err != nil {
		t.Fatal(err)
	}
	artifact, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"schema": "tibfit-load/v2"`, `"request_ns"`, `"decision_ns"`,
		`"reports_per_sec"`, `"wire": "json"`,
	} {
		if !bytes.Contains(artifact, []byte(want)) {
			t.Fatalf("artifact missing %q:\n%s", want, artifact)
		}
	}
}

// TestRunBatchWireWorkers drives the worker fleet over the line-format
// hot path against sharded tenants: the sustained-throughput harness
// configuration, shrunk to unit size.
func TestRunBatchWireWorkers(t *testing.T) {
	srv := serve.NewServer(serve.Config{Unit: 50 * time.Microsecond})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	outPath := filepath.Join(t.TempDir(), "latency.json")
	args := []string{
		"-addr", ts.URL,
		"-tenants", "2",
		"-reports", "500",
		"-nodes", "8",
		"-batch", "16",
		"-workers", "3",
		"-wire", "batch",
		"-shards", "4",
		"-tout", "20",
		"-min-decisions", "1",
		"-out", outPath,
	}
	var buf bytes.Buffer
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run(args, out); err != nil {
		t.Fatal(err)
	}
	if _, err := out.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := buf.ReadFrom(out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("reports/sec")) {
		t.Fatalf("run output missing throughput line:\n%s", buf.Bytes())
	}
	artifact, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"schema": "tibfit-load/v2"`, `"wire": "batch"`, `"workers": 3`, `"shards": 4`,
	} {
		if !bytes.Contains(artifact, []byte(want)) {
			t.Fatalf("artifact missing %q:\n%s", want, artifact)
		}
	}
}
