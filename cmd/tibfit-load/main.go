// Command tibfit-load is the seeded load generator for tibfit-serve: it
// creates tenants, streams report batches drawn from a deterministic
// rng, waits for the decision windows to drain, optionally round-trips
// every tenant's sealed snapshot, and writes the latency-histogram
// artifact the CI smoke job uploads.
//
// Usage:
//
//	tibfit-load [-addr http://127.0.0.1:8080] [-tenants 4] [-tenant load]
//	            [-scheme tibfit] [-reports 10000] [-nodes 32] [-batch 64]
//	            [-tout 5] [-seed 7] [-out latency.json]
//	            [-min-decisions 1] [-snapshot-roundtrip]
//
// The report stream is a pure function of -seed: each batch picks a
// tenant round-robin and draws reporting nodes Bernoulli(0.6) from its
// member set, so two runs against fresh servers ingest identical
// streams.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"

	"github.com/tibfit/tibfit/internal/cli"
	"github.com/tibfit/tibfit/internal/metrics"
	"github.com/tibfit/tibfit/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tibfit-load:", err)
		os.Exit(1)
	}
}

// reportProb is the per-node probability of joining a batch — high
// enough that most batches open a window with a solid reporter side.
const reportProb = 0.6

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("tibfit-load", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "http://127.0.0.1:8080", "tibfit-serve base URL")
		tenants   = fs.Int("tenants", 4, "tenants to create and spread load across")
		tenant    = fs.String("tenant", "load", "tenant name prefix (tenants are <prefix>-0..n-1)")
		reports   = fs.Int("reports", 10000, "total reports to send across all tenants")
		nodes     = fs.Int("nodes", 32, "members per tenant")
		batch     = fs.Int("batch", 64, "max reports per ingest request")
		tout      = fs.Float64("tout", 5, "tenant T_out in the server's virtual units")
		seed      = fs.Int64("seed", 7, "random seed for the report stream")
		outPath   = fs.String("out", "", "write the latency-histogram JSON artifact here")
		minDec    = fs.Int("min-decisions", 1, "fail unless at least this many decisions were made")
		roundtrip = fs.Bool("snapshot-roundtrip", false, "snapshot and restore every tenant after the run")
		timeout   = fs.Duration("timeout", 60*time.Second, "overall drain deadline after the last report")
	)
	var sf cli.SchemeFlags
	sf.Register(fs, "tibfit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := sf.Resolve()
	if err != nil {
		return err
	}
	base, err := url.Parse(*addr)
	if err != nil || base.Scheme == "" || base.Host == "" {
		return fmt.Errorf("invalid -addr %q: need an absolute URL like http://127.0.0.1:8080", *addr)
	}
	if err := cli.ValidateTenant(*tenant); err != nil {
		return err
	}
	if *tenants <= 0 {
		return fmt.Errorf("-tenants must be positive, got %d", *tenants)
	}
	if *reports <= 0 {
		return fmt.Errorf("-reports must be positive, got %d", *reports)
	}
	if *nodes <= 0 || *batch <= 0 {
		return fmt.Errorf("-nodes and -batch must be positive, got %d and %d", *nodes, *batch)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	names := make([]string, *tenants)
	for i := range names {
		names[i] = fmt.Sprintf("%s-%d", *tenant, i)
	}
	for _, name := range names {
		cfg := map[string]any{"scheme": scheme, "tout": *tout, "nodes": *nodes}
		if sf.Lambda > 0 {
			cfg["lambda"] = sf.Lambda
		}
		if sf.FaultRate > 0 {
			cfg["fault_rate"] = sf.FaultRate
		}
		if err := postJSON(client, base, "/v1/tenants/"+name, cfg, nil); err != nil {
			return fmt.Errorf("creating tenant %s: %v", name, err)
		}
	}

	// Stream the seeded batches. Request latency is measured client-side
	// per ingest call; the server keeps its own per-report view.
	src := rng.New(*seed)
	var reqHist metrics.Histogram
	sent, accepted := 0, 0
	scratch := make([]int, 0, *nodes)
	for ti := 0; sent < *reports; ti = (ti + 1) % len(names) {
		nodesIn := scratch[:0]
		for id := 0; id < *nodes && sent+len(nodesIn) < *reports && len(nodesIn) < *batch; id++ {
			if src.Bernoulli(reportProb) {
				nodesIn = append(nodesIn, id)
			}
		}
		if len(nodesIn) == 0 {
			nodesIn = append(nodesIn, src.Intn(*nodes))
		}
		var ack struct {
			Accepted int `json:"accepted"`
		}
		begin := time.Now()
		err := postJSON(client, base, "/v1/tenants/"+names[ti]+"/reports",
			map[string]any{"nodes": nodesIn}, &ack)
		reqHist.Record(float64(time.Since(begin)))
		if err != nil {
			return fmt.Errorf("sending batch to %s: %v", names[ti], err)
		}
		sent += len(nodesIn)
		accepted += ack.Accepted
	}

	// Drain: poll until every tenant's open window has expired and the
	// decision count stops moving.
	deadline := time.Now().Add(*timeout)
	var stats metricsReply
	lastDecisions, stable := uint64(0), 0
	for {
		if err := getJSON(client, base, "/v1/metrics", &stats); err != nil {
			return fmt.Errorf("polling metrics: %v", err)
		}
		total := uint64(0)
		for _, t := range stats.PerTenant {
			total += t.Decisions
		}
		if total == lastDecisions && total > 0 {
			stable++
		} else {
			stable = 0
		}
		lastDecisions = total
		if stable >= 2 {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		pause := 2 * time.Duration(float64(*tout)*float64(stats.UnitNS))
		if pause < 10*time.Millisecond {
			pause = 10 * time.Millisecond
		}
		time.Sleep(pause)
	}

	if *roundtrip {
		for _, name := range names {
			if err := snapshotRoundtrip(client, base, name); err != nil {
				return fmt.Errorf("snapshot roundtrip for %s: %v", name, err)
			}
		}
		fmt.Fprintf(out, "tibfit-load: snapshot roundtrip ok for %d tenants\n", len(names))
	}

	summary := reqHist.Summary()
	fmt.Fprintf(out, "tibfit-load: sent=%d accepted=%d decisions=%d tenants=%d\n",
		sent, accepted, lastDecisions, len(names))
	fmt.Fprintf(out, "tibfit-load: request latency p50=%s p99=%s mean=%s\n",
		time.Duration(summary.P50), time.Duration(summary.P99), time.Duration(summary.Mean))
	fmt.Fprintf(out, "tibfit-load: server ingest p50=%s p99=%s decision p50=%s p99=%s\n",
		time.Duration(stats.IngestNS.P50), time.Duration(stats.IngestNS.P99),
		time.Duration(stats.DecisionNS.P50), time.Duration(stats.DecisionNS.P99))

	if *outPath != "" {
		artifact := map[string]any{
			"schema":      "tibfit-load/v1",
			"sent":        sent,
			"accepted":    accepted,
			"decisions":   lastDecisions,
			"tenants":     len(names),
			"request_ns":  summary,
			"ingest_ns":   stats.IngestNS,
			"decision_ns": stats.DecisionNS,
		}
		buf, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding -out artifact: %v", err)
		}
		if err := os.WriteFile(*outPath, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing -out: %v", err)
		}
	}
	if lastDecisions < uint64(*minDec) {
		return fmt.Errorf("made %d decisions, want at least %d", lastDecisions, *minDec)
	}
	return nil
}

// metricsReply mirrors the server's GET /v1/metrics body (the fields the
// load generator reads).
type metricsReply struct {
	UnitNS     int64                    `json:"unit_ns"`
	IngestNS   metrics.HistogramSummary `json:"ingest_ns"`
	DecisionNS metrics.HistogramSummary `json:"decision_ns"`
	PerTenant  map[string]tenantStats   `json:"per_tenant"`
}

type tenantStats struct {
	Reports   uint64 `json:"reports"`
	Decisions uint64 `json:"decisions"`
}

// snapshotRoundtrip fetches a tenant's sealed snapshot and immediately
// restores it, verifying the serve path end to end: seal, checksum
// verification, version monotonicity.
func snapshotRoundtrip(client *http.Client, base *url.URL, name string) error {
	resp, err := client.Get(base.JoinPath("/v1/tenants/" + name + "/snapshot").String())
	if err != nil {
		return err
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(blob))
	}
	if len(blob) == 0 {
		return fmt.Errorf("snapshot: empty blob")
	}
	req, err := http.NewRequest(http.MethodPut,
		base.JoinPath("/v1/tenants/"+name+"/snapshot").String(), bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err = client.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("restore: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// postJSON posts v to path and decodes the response into reply (when
// non-nil), treating any non-2xx status as an error carrying the body.
func postJSON(client *http.Client, base *url.URL, path string, v any, reply any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := client.Post(base.JoinPath(path).String(), "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	if reply != nil {
		return json.Unmarshal(body, reply)
	}
	return nil
}

// getJSON fetches path and decodes the JSON response.
func getJSON(client *http.Client, base *url.URL, path string, reply any) error {
	resp, err := client.Get(base.JoinPath(path).String())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return json.Unmarshal(body, reply)
}
