// Command tibfit-load is the seeded load generator for tibfit-serve: it
// creates tenants, streams report batches from concurrent closed-loop
// workers drawing on deterministic rngs, reports the sustained
// reports/sec figure for the send phase, waits for the decision windows
// to drain, optionally round-trips every tenant's sealed snapshot, and
// writes the latency-histogram artifact the CI smoke job uploads.
//
// Usage:
//
//	tibfit-load [-addr http://127.0.0.1:8080] [-tenants 4] [-tenant load]
//	            [-scheme tibfit] [-reports 10000] [-nodes 32] [-batch 64]
//	            [-workers 1] [-wire json|batch] [-shards 1]
//	            [-tout 5] [-seed 7] [-out latency.json]
//	            [-min-decisions 1] [-snapshot-roundtrip]
//
// The report stream is a pure function of -seed and -workers: worker w
// seeds its own rng from them, walks the tenants round-robin from
// offset w, and draws reporting nodes Bernoulli(0.6) from the member
// set, so two runs against fresh servers ingest identical streams.
// -wire picks the ingest encoding: "json" posts the classic JSON body
// to /reports; "batch" posts the line format to /reports/batch, the
// zero-alloc hot path.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync"
	"time"

	"github.com/tibfit/tibfit/internal/cli"
	"github.com/tibfit/tibfit/internal/metrics"
	"github.com/tibfit/tibfit/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tibfit-load:", err)
		os.Exit(1)
	}
}

// reportProb is the per-node probability of joining a batch — high
// enough that most batches open a window with a solid reporter side.
const reportProb = 0.6

// Wire formats for -wire.
const (
	wireJSON  = "json"
	wireBatch = "batch"
)

// workerSeedStride separates per-worker rng streams: a large prime, so
// seeds never collide however many workers run.
const workerSeedStride = 1000003

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("tibfit-load", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "http://127.0.0.1:8080", "tibfit-serve base URL")
		tenants   = fs.Int("tenants", 4, "tenants to create and spread load across")
		tenant    = fs.String("tenant", "load", "tenant name prefix (tenants are <prefix>-0..n-1)")
		reports   = fs.Int("reports", 10000, "total reports to send across all tenants")
		nodes     = fs.Int("nodes", 32, "members per tenant")
		batch     = fs.Int("batch", 64, "max reports per ingest request")
		workers   = fs.Int("workers", 1, "concurrent closed-loop send workers")
		wire      = fs.String("wire", wireJSON, `ingest wire format: "json" or "batch" (line-format hot path)`)
		shards    = fs.Int("shards", 1, "shards per tenant (single-writer event locations)")
		tout      = fs.Float64("tout", 5, "tenant T_out in the server's virtual units")
		seed      = fs.Int64("seed", 7, "random seed for the report stream")
		outPath   = fs.String("out", "", "write the latency-histogram JSON artifact here")
		minDec    = fs.Int("min-decisions", 1, "fail unless at least this many decisions were made")
		roundtrip = fs.Bool("snapshot-roundtrip", false, "snapshot and restore every tenant after the run")
		timeout   = fs.Duration("timeout", 60*time.Second, "overall drain deadline after the last report")
	)
	var sf cli.SchemeFlags
	sf.Register(fs, "tibfit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := sf.Resolve()
	if err != nil {
		return err
	}
	base, err := url.Parse(*addr)
	if err != nil || base.Scheme == "" || base.Host == "" {
		return fmt.Errorf("invalid -addr %q: need an absolute URL like http://127.0.0.1:8080", *addr)
	}
	if err := cli.ValidateTenant(*tenant); err != nil {
		return err
	}
	if *tenants <= 0 {
		return fmt.Errorf("-tenants must be positive, got %d", *tenants)
	}
	if *reports <= 0 {
		return fmt.Errorf("-reports must be positive, got %d", *reports)
	}
	if *nodes <= 0 || *batch <= 0 {
		return fmt.Errorf("-nodes and -batch must be positive, got %d and %d", *nodes, *batch)
	}
	if *workers <= 0 {
		return fmt.Errorf("-workers must be positive, got %d", *workers)
	}
	if *wire != wireJSON && *wire != wireBatch {
		return fmt.Errorf("-wire must be %q or %q, got %q", wireJSON, wireBatch, *wire)
	}
	if *shards <= 0 {
		return fmt.Errorf("-shards must be positive, got %d", *shards)
	}

	// One shared client: each worker holds one connection open in its
	// closed loop, so the idle pool must cover the whole fleet.
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *workers + 4,
			MaxIdleConnsPerHost: *workers + 4,
		},
	}
	names := make([]string, *tenants)
	for i := range names {
		names[i] = fmt.Sprintf("%s-%d", *tenant, i)
	}
	for _, name := range names {
		cfg := map[string]any{"scheme": scheme, "tout": *tout, "nodes": *nodes, "shards": *shards}
		if sf.Lambda > 0 {
			cfg["lambda"] = sf.Lambda
		}
		if sf.FaultRate > 0 {
			cfg["fault_rate"] = sf.FaultRate
		}
		if err := postJSON(client, base, "/v1/tenants/"+name, cfg, nil); err != nil {
			return fmt.Errorf("creating tenant %s: %v", name, err)
		}
	}

	// Stream the seeded batches from the worker fleet: the report budget
	// splits across workers (early workers absorb the remainder), each
	// worker runs its own closed loop — build a batch, post, wait for
	// the ack, repeat — with its own rng stream and latency histogram.
	// Request latency is measured client-side per ingest call; the
	// server keeps its own per-report view.
	results := make([]workerResult, *workers)
	sendBegin := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		budget := *reports / *workers
		if w < *reports%*workers {
			budget++
		}
		wg.Add(1)
		go func(w, budget int) {
			defer wg.Done()
			results[w] = sendWorker(client, base, names, workerConfig{
				budget: budget,
				nodes:  *nodes,
				batch:  *batch,
				wire:   *wire,
				seed:   *seed + workerSeedStride*int64(w),
				offset: w % len(names),
			})
		}(w, budget)
	}
	wg.Wait()
	wall := time.Since(sendBegin)

	var reqHist metrics.Histogram
	sent, accepted := 0, 0
	for w := range results {
		if results[w].err != nil {
			return fmt.Errorf("worker %d: %v", w, results[w].err)
		}
		sent += results[w].sent
		accepted += results[w].accepted
		reqHist.Merge(&results[w].hist)
	}
	reportsPerSec := float64(sent) / wall.Seconds()

	// Drain: poll until every tenant's open window has expired and the
	// decision count stops moving.
	deadline := time.Now().Add(*timeout)
	var stats metricsReply
	lastDecisions, stable := uint64(0), 0
	for {
		if err := getJSON(client, base, "/v1/metrics", &stats); err != nil {
			return fmt.Errorf("polling metrics: %v", err)
		}
		total := uint64(0)
		for _, t := range stats.PerTenant {
			total += t.Decisions
		}
		if total == lastDecisions && total > 0 {
			stable++
		} else {
			stable = 0
		}
		lastDecisions = total
		if stable >= 2 {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		pause := 2 * time.Duration(float64(*tout)*float64(stats.UnitNS))
		if pause < 10*time.Millisecond {
			pause = 10 * time.Millisecond
		}
		time.Sleep(pause)
	}

	if *roundtrip {
		for _, name := range names {
			if err := snapshotRoundtrip(client, base, name); err != nil {
				return fmt.Errorf("snapshot roundtrip for %s: %v", name, err)
			}
		}
		fmt.Fprintf(out, "tibfit-load: snapshot roundtrip ok for %d tenants\n", len(names))
	}

	summary := reqHist.Summary()
	fmt.Fprintf(out, "tibfit-load: sent=%d accepted=%d decisions=%d tenants=%d\n",
		sent, accepted, lastDecisions, len(names))
	fmt.Fprintf(out, "tibfit-load: sustained %.0f reports/sec (%d reports in %.3fs, %d workers, wire=%s)\n",
		reportsPerSec, sent, wall.Seconds(), *workers, *wire)
	fmt.Fprintf(out, "tibfit-load: request latency p50=%s p99=%s mean=%s\n",
		time.Duration(summary.P50), time.Duration(summary.P99), time.Duration(summary.Mean))
	fmt.Fprintf(out, "tibfit-load: server ingest p50=%s p99=%s decision p50=%s p99=%s\n",
		time.Duration(stats.IngestNS.P50), time.Duration(stats.IngestNS.P99),
		time.Duration(stats.DecisionNS.P50), time.Duration(stats.DecisionNS.P99))

	if *outPath != "" {
		artifact := map[string]any{
			"schema":          "tibfit-load/v2",
			"sent":            sent,
			"accepted":        accepted,
			"decisions":       lastDecisions,
			"tenants":         len(names),
			"workers":         *workers,
			"wire":            *wire,
			"shards":          *shards,
			"wall_seconds":    wall.Seconds(),
			"reports_per_sec": reportsPerSec,
			"request_ns":      summary,
			"ingest_ns":       stats.IngestNS,
			"decision_ns":     stats.DecisionNS,
		}
		buf, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding -out artifact: %v", err)
		}
		if err := os.WriteFile(*outPath, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing -out: %v", err)
		}
	}
	if lastDecisions < uint64(*minDec) {
		return fmt.Errorf("made %d decisions, want at least %d", lastDecisions, *minDec)
	}
	return nil
}

// workerConfig parameterizes one closed-loop send worker.
type workerConfig struct {
	budget int    // reports this worker owns
	nodes  int    // members per tenant
	batch  int    // max reports per ingest request
	wire   string // wireJSON or wireBatch
	seed   int64  // this worker's private rng seed
	offset int    // first tenant in this worker's round-robin walk
}

// workerResult is one worker's tally: what it sent, what the server
// accepted, its private latency histogram, and the first error that
// stopped it (nil on a clean run).
type workerResult struct {
	sent     int
	accepted int
	hist     metrics.Histogram
	err      error
}

// sendWorker runs one closed loop to completion: draw a Bernoulli batch
// from the worker's own rng, post it on the configured wire, record the
// request latency, and repeat until the budget is spent. Tenants are
// walked round-robin from the worker's offset so the fleet spreads load
// without coordination.
func sendWorker(client *http.Client, base *url.URL, names []string, cfg workerConfig) workerResult {
	var res workerResult
	src := rng.New(cfg.seed)
	scratch := make([]int, 0, cfg.nodes)
	var lineBuf []byte
	for ti := cfg.offset; res.sent < cfg.budget; ti = (ti + 1) % len(names) {
		nodesIn := scratch[:0]
		for id := 0; id < cfg.nodes && res.sent+len(nodesIn) < cfg.budget && len(nodesIn) < cfg.batch; id++ {
			if src.Bernoulli(reportProb) {
				nodesIn = append(nodesIn, id)
			}
		}
		if len(nodesIn) == 0 {
			nodesIn = append(nodesIn, src.Intn(cfg.nodes))
		}
		var ack struct {
			Accepted int `json:"accepted"`
		}
		var err error
		begin := time.Now()
		if cfg.wire == wireBatch {
			lineBuf = appendLines(lineBuf[:0], nodesIn)
			err = postBytes(client, base, "/v1/tenants/"+names[ti]+"/reports/batch", lineBuf, &ack)
		} else {
			err = postJSON(client, base, "/v1/tenants/"+names[ti]+"/reports",
				map[string]any{"nodes": nodesIn}, &ack)
		}
		res.hist.Record(float64(time.Since(begin)))
		if err != nil {
			res.err = fmt.Errorf("sending batch to %s: %v", names[ti], err)
			return res
		}
		res.sent += len(nodesIn)
		res.accepted += ack.Accepted
	}
	return res
}

// appendLines renders nodes in the line wire format — one decimal node
// ID per LF-terminated line — into dst, reusing its capacity.
func appendLines(dst []byte, nodes []int) []byte {
	for _, id := range nodes {
		dst = strconv.AppendInt(dst, int64(id), 10)
		dst = append(dst, '\n')
	}
	return dst
}

// metricsReply mirrors the server's GET /v1/metrics body (the fields the
// load generator reads).
type metricsReply struct {
	UnitNS     int64                    `json:"unit_ns"`
	IngestNS   metrics.HistogramSummary `json:"ingest_ns"`
	DecisionNS metrics.HistogramSummary `json:"decision_ns"`
	PerTenant  map[string]tenantStats   `json:"per_tenant"`
}

type tenantStats struct {
	Reports   uint64 `json:"reports"`
	Decisions uint64 `json:"decisions"`
}

// snapshotRoundtrip fetches a tenant's sealed snapshot and immediately
// restores it, verifying the serve path end to end: seal, checksum
// verification, version monotonicity.
func snapshotRoundtrip(client *http.Client, base *url.URL, name string) error {
	resp, err := client.Get(base.JoinPath("/v1/tenants/" + name + "/snapshot").String())
	if err != nil {
		return err
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(blob))
	}
	if len(blob) == 0 {
		return fmt.Errorf("snapshot: empty blob")
	}
	req, err := http.NewRequest(http.MethodPut,
		base.JoinPath("/v1/tenants/"+name+"/snapshot").String(), bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err = client.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("restore: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// postJSON posts v to path and decodes the response into reply (when
// non-nil), treating any non-2xx status as an error carrying the body.
func postJSON(client *http.Client, base *url.URL, path string, v any, reply any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := client.Post(base.JoinPath(path).String(), "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	if reply != nil {
		return json.Unmarshal(body, reply)
	}
	return nil
}

// postBytes posts a raw line-format body to path and decodes the JSON
// ack into reply, treating any non-2xx status as an error carrying the
// body.
func postBytes(client *http.Client, base *url.URL, path string, payload []byte, reply any) error {
	resp, err := client.Post(base.JoinPath(path).String(), "text/plain", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	if reply != nil {
		return json.Unmarshal(body, reply)
	}
	return nil
}

// getJSON fetches path and decodes the JSON response.
func getJSON(client *http.Client, base *url.URL, path string, reply any) error {
	resp, err := client.Get(base.JoinPath(path).String())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return json.Unmarshal(body, reply)
}
