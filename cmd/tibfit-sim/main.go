// Command tibfit-sim runs the paper's simulation experiments and prints
// the corresponding figure data or a single experiment's summary.
//
// Usage:
//
//	tibfit-sim -fig figure4 [-runs 3] [-events 500] [-seed 1] [-format table|csv]
//	tibfit-sim -exp 1 -faulty 0.7 -ner 0.01 -fa 0.1 [-scheme tibfit]
//	tibfit-sim -exp 2 -faulty 0.5 -level 1 [-scheme dynamic-trust] [-concurrent]
//	tibfit-sim -exp 2 -scheme fuzzy -lambda 0.5 -fr 0.05
//	tibfit-sim -exp 3 [-scheme tibfit]
//	tibfit-sim -track -faulty 0.4 [-scheme baseline]
//	tibfit-sim -sweep lambda -values 0.05,0.1,0.25,0.5 -exp 2
//	tibfit-sim -exp 2 -trace        # stream protocol events to stderr
//	tibfit-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/tibfit/tibfit/internal/cli"
	"github.com/tibfit/tibfit/internal/experiment"
	"github.com/tibfit/tibfit/internal/metrics"
	"github.com/tibfit/tibfit/internal/node"
	"github.com/tibfit/tibfit/internal/stats"
	"github.com/tibfit/tibfit/internal/trace"
	"github.com/tibfit/tibfit/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tibfit-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tibfit-sim", flag.ContinueOnError)
	var (
		fig        = fs.String("fig", "", "figure to regenerate (see -list)")
		exp        = fs.Int("exp", 0, "experiment to run directly (1, 2, or 3)")
		list       = fs.Bool("list", false, "list reproducible figures")
		runs       = fs.Int("runs", 3, "independent replicates to average")
		events     = fs.Int("events", 0, "events per run (0 = experiment default)")
		seed       = fs.Int64("seed", 1, "base random seed")
		format     = fs.String("format", "table", "output format: table, csv, or plot")
		faulty     = fs.Float64("faulty", 0.5, "fraction of nodes compromised (exp 1-2)")
		ner        = fs.Float64("ner", 0.01, "correct-node natural error rate (exp 1)")
		fa         = fs.Float64("fa", 0, "faulty-node false-alarm probability (exp 1)")
		level      = fs.Int("level", 0, "adversary level 0-3 (exp 2-3; 3 = jittering coalition extension)")
		concurrent = fs.Bool("concurrent", false, "concurrent events (exp 2)")
		track      = fs.Bool("track", false, "run the mobile-target tracking scenario")
		sweep      = fs.String("sweep", "", "sweep one parameter of -exp 1 or 2 (see -sweep help)")
		values     = fs.String("values", "", "comma-separated sweep values")
		streamTr   = fs.Bool("trace", false, "stream protocol events to stderr (single run)")
		guard      = fs.Float64("guard", 0, "coincidence-guard distance (exp 2-3 extension; 0 = off)")
		par        = fs.Int("parallel", 0, "campaign workers: figure cells / sweep points run concurrently (1 = sequential, 0 = one per core); output is identical either way")
	)
	var sf cli.SchemeFlags
	sf.Register(fs, experiment.SchemeTIBFIT)
	var sched cli.SchedulerFlag
	sched.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := sf.Resolve()
	if err != nil {
		return err
	}
	if err := sched.Apply(); err != nil {
		return err
	}

	var tr *trace.Trace
	if *streamTr {
		tr = trace.New().Stream(os.Stderr)
		*runs = 1
	}

	emit := func(f metrics.Figure) error {
		switch *format {
		case "table":
			fmt.Print(f.Table())
		case "csv":
			fmt.Print(f.CSV())
		case "plot":
			fmt.Print(f.Plot(64, 16))
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
		return nil
	}

	switch {
	case *list:
		for _, id := range experiment.FigureIDs() {
			fmt.Println(id)
		}
		return nil

	case *fig != "":
		f, err := experiment.Generate(*fig, experiment.FigureOptions{
			Runs: *runs, Events: *events, Seed: *seed, Parallel: *par,
			Scheme: scheme, Lambda: sf.Lambda, FaultRate: sf.FaultRate,
		})
		if err != nil {
			return err
		}
		return emit(f)

	case *sweep == "help":
		fmt.Println("exp 1 parameters:", experiment.SweepParamsExp1())
		fmt.Println("exp 2 parameters:", experiment.SweepParamsExp2())
		return nil

	case *sweep != "":
		vals, err := parseValues(*values)
		if err != nil {
			return err
		}
		var f metrics.Figure
		switch *exp {
		case 1:
			base := experiment.DefaultExp1()
			base.FaultyFraction = *faulty
			base.Scheme = scheme
			sf.ApplyLambda(&base.Lambda)
			base.Runs = *runs
			base.Seed = *seed
			if *events > 0 {
				base.Events = *events
			}
			f, err = experiment.SweepExp1N(*sweep, vals, base, *par)
		case 0, 2:
			base := experiment.DefaultExp2()
			base.FaultyFraction = *faulty
			base.Scheme = scheme
			sf.ApplyLambda(&base.Lambda)
			sf.ApplyFaultRate(&base.FaultRate)
			base.Runs = *runs
			base.Seed = *seed
			if *events > 0 {
				base.Events = *events
			}
			f, err = experiment.SweepExp2N(*sweep, vals, base, *par)
		default:
			return fmt.Errorf("sweeps support -exp 1 or 2, got %d", *exp)
		}
		if err != nil {
			return err
		}
		return emit(f)

	case *track:
		cfg := experiment.DefaultTracking()
		cfg.FaultyFraction = *faulty
		cfg.Scheme = scheme
		sf.ApplyLambda(&cfg.Lambda)
		sf.ApplyFaultRate(&cfg.FaultRate)
		cfg.Runs = *runs
		cfg.Seed = *seed
		if *events > 0 {
			cfg.Emissions = *events
		}
		switch *level {
		case 0:
			cfg.Level = node.Level0
		case 1:
			cfg.Level = node.Level1
		case 2:
			cfg.Level = node.Level2
		default:
			return fmt.Errorf("unknown adversary level %d", *level)
		}
		res, err := experiment.RunTracking(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("tracking  scheme=%s level=%v faulty=%.0f%% emissions=%d\n",
			cfg.Scheme, cfg.Level, 100*cfg.FaultyFraction, cfg.Emissions)
		fmt.Printf("  localized        %.1f%%\n", 100*res.Accuracy)
		fmt.Printf("  mean track err   %.2f units\n", res.MeanTrackErr)
		fmt.Printf("  longest blind    %.0f emissions\n", res.MaxGap)
		fmt.Printf("  false positives  %.3f per emission\n", res.FalsePositiveRate)
		return nil

	case *exp == 1:
		cfg := experiment.DefaultExp1()
		cfg.Trace = tr
		cfg.FaultyFraction = *faulty
		cfg.NER = *ner
		cfg.FalseAlarmProb = *fa
		cfg.Scheme = scheme
		sf.ApplyLambda(&cfg.Lambda)
		cfg.Runs = *runs
		cfg.Seed = *seed
		if *events > 0 {
			cfg.Events = *events
		}
		res, err := experiment.RunExp1(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("experiment 1  scheme=%s faulty=%.0f%% ner=%.1f%% fa=%.0f%%\n",
			cfg.Scheme, 100*cfg.FaultyFraction, 100*cfg.NER, 100*cfg.FalseAlarmProb)
		fmt.Printf("  accuracy         %.1f%% %s\n", 100*res.Accuracy,
			accuracyCI(res.Accuracy, cfg.Events*cfg.Runs))
		fmt.Printf("  false positives  %.3f per event\n", res.FalsePositiveRate)
		fmt.Printf("  mean TI          correct=%.3f faulty=%.3f\n", res.MeanCorrectTI, res.MeanFaultyTI)
		return nil

	case *exp == 2 || *exp == 3:
		cfg := experiment.DefaultExp2()
		cfg.Trace = tr
		cfg.CoincidenceGuard = *guard
		cfg.FaultyFraction = *faulty
		cfg.Scheme = scheme
		sf.ApplyLambda(&cfg.Lambda)
		sf.ApplyFaultRate(&cfg.FaultRate)
		cfg.Concurrent = *concurrent
		cfg.Runs = *runs
		cfg.Seed = *seed
		if *events > 0 {
			cfg.Events = *events
		}
		switch *level {
		case 0:
			cfg.Level = node.Level0
		case 1:
			cfg.Level = node.Level1
		case 2:
			cfg.Level = node.Level2
		case 3:
			cfg.Level = node.Level3
		default:
			return fmt.Errorf("unknown adversary level %d", *level)
		}
		if *exp == 3 {
			decay := workload.DefaultDecay()
			cfg.Decay = &decay
			if *events == 0 {
				cfg.Events = decay.EventsPerStep * 15
			}
		}
		res, err := experiment.RunExp2(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("experiment %d  scheme=%s level=%v faulty=%.0f%% concurrent=%t\n",
			*exp, cfg.Scheme, cfg.Level, 100*cfg.FaultyFraction, cfg.Concurrent)
		fmt.Printf("  accuracy         %.1f%% %s\n", 100*res.Accuracy,
			accuracyCI(res.Accuracy, cfg.Events*cfg.Runs))
		fmt.Printf("  false positives  %.3f per event\n", res.FalsePositiveRate)
		fmt.Printf("  mean loc error   %.2f units\n", res.MeanLocErr)
		fmt.Printf("  mean TI          correct=%.3f faulty=%.3f\n", res.MeanCorrectTI, res.MeanFaultyTI)
		fmt.Printf("  isolated         faulty=%.1f correct=%.1f\n", res.IsolatedFaulty, res.IsolatedCorrect)
		if *exp == 3 {
			fmt.Printf("  windowed accuracy:")
			for _, acc := range res.Windowed {
				fmt.Printf(" %.0f%%", 100*acc)
			}
			fmt.Println()
		}
		return nil

	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -fig, -exp, or -list")
	}
}

// accuracyCI renders the Wilson 95% interval for a detection proportion
// observed over the given number of event trials.
func accuracyCI(rate float64, trials int) string {
	if trials <= 0 {
		return ""
	}
	successes := int(rate*float64(trials) + 0.5)
	if successes > trials {
		successes = trials
	}
	iv := stats.Wilson95(successes, trials)
	return fmt.Sprintf("(95%% CI %.1f-%.1f%%)", iv.Lo*100, iv.Hi*100)
}

// parseValues splits a comma-separated float list.
func parseValues(s string) ([]float64, error) {
	if s == "" {
		return nil, fmt.Errorf("-sweep requires -values v1,v2,...")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad sweep value %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
