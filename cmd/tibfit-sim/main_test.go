package main

import (
	"strings"
	"testing"
)

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"no action", nil},
		{"unknown figure", []string{"-fig", "figure99"}},
		{"bad format", []string{"-fig", "figure10", "-format", "xml"}},
		{"bad level", []string{"-exp", "2", "-level", "7", "-events", "20", "-runs", "1"}},
		{"bad track level", []string{"-track", "-level", "7"}},
		{"sweep without values", []string{"-sweep", "lambda", "-exp", "2"}},
		{"sweep bad values", []string{"-sweep", "lambda", "-values", "a,b", "-exp", "2"}},
		{"sweep bad exp", []string{"-sweep", "lambda", "-values", "0.1", "-exp", "3"}},
		{"sweep unknown param", []string{"-sweep", "bogus", "-values", "0.1", "-exp", "1", "-events", "20", "-runs", "1"}},
		{"bad flag", []string{"-definitely-not-a-flag"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Fatalf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}

func TestRunHappyPaths(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"list", []string{"-list"}},
		{"closed-form figure", []string{"-fig", "figure10"}},
		{"closed-form csv", []string{"-fig", "figure11", "-format", "csv"}},
		{"exp1", []string{"-exp", "1", "-events", "20", "-runs", "1"}},
		{"exp2", []string{"-exp", "2", "-events", "20", "-runs", "1"}},
		{"exp2 level2 baseline", []string{"-exp", "2", "-level", "2", "-scheme", "baseline", "-events", "20", "-runs", "1"}},
		{"exp3", []string{"-exp", "3", "-events", "100", "-runs", "1"}},
		{"track", []string{"-track", "-events", "40", "-runs", "1"}},
		{"sweep help", []string{"-sweep", "help"}},
		{"sweep exp1", []string{"-sweep", "lambda", "-values", "0.1,0.25", "-exp", "1", "-events", "20", "-runs", "1"}},
		{"sweep exp2 csv", []string{"-sweep", "removal", "-values", "0,0.3", "-exp", "2", "-events", "30", "-runs", "1", "-format", "csv"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err != nil {
				t.Fatalf("run(%v) = %v", tt.args, err)
			}
		})
	}
}

func TestParseValues(t *testing.T) {
	got, err := parseValues("0.1, 0.25 ,1")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.25, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseValues = %v", got)
		}
	}
	if _, err := parseValues(""); err == nil || !strings.Contains(err.Error(), "-values") {
		t.Fatalf("empty list error = %v", err)
	}
}
