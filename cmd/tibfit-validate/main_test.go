package main

import (
	"os"
	"testing"
)

func TestValidateQuickPasses(t *testing.T) {
	ok, err := run([]string{"-quick"}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("quick validation reported failures")
	}
}

func TestValidateBadFlag(t *testing.T) {
	if _, err := run([]string{"-nope"}, os.Stdout); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestValidateSeedVariation(t *testing.T) {
	// The claims are not seed-overfit: a different seed still passes.
	ok, err := run([]string{"-quick", "-seed", "99"}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("validation failed under seed 99")
	}
}
