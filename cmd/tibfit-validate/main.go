// Command tibfit-validate reruns the paper's headline claims against the
// live simulation and prints a PASS/FAIL report — the one-shot answer to
// "does this reproduction still reproduce?". It exits non-zero if any
// check fails.
//
// Usage:
//
//	tibfit-validate [-quick] [-seed 1]
//
// -quick shrinks event counts for a ~2s run; the default takes ~30s and
// uses the paper's full event counts with several replicates.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/tibfit/tibfit/internal/analysis"
	"github.com/tibfit/tibfit/internal/experiment"
	"github.com/tibfit/tibfit/internal/node"
	"github.com/tibfit/tibfit/internal/workload"
)

func main() {
	ok, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tibfit-validate:", err)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

// check is one claim: its description, the paper's wording, and a
// function returning (measured summary, pass).
type check struct {
	name  string
	claim string
	run   func() (string, bool, error)
}

func run(args []string, out *os.File) (bool, error) {
	fs := flag.NewFlagSet("tibfit-validate", flag.ContinueOnError)
	var (
		quick = fs.Bool("quick", false, "smaller event counts (~2s)")
		seed  = fs.Int64("seed", 1, "base random seed")
	)
	if err := fs.Parse(args); err != nil {
		return false, err
	}

	runs, e1, e2 := 5, 100, 500
	if *quick {
		runs, e1, e2 = 1, 60, 150
	}

	exp1 := func(mut func(*experiment.Exp1Config)) (experiment.Exp1Result, error) {
		cfg := experiment.DefaultExp1()
		cfg.Runs = runs
		cfg.Events = e1
		cfg.Seed = *seed
		mut(&cfg)
		return experiment.RunExp1(cfg)
	}
	exp2 := func(mut func(*experiment.Exp2Config)) (experiment.Exp2Result, error) {
		cfg := experiment.DefaultExp2()
		cfg.Runs = runs
		cfg.Events = e2
		cfg.Seed = *seed
		mut(&cfg)
		return experiment.RunExp2(cfg)
	}

	checks := []check{
		{
			name:  "exp1-70pct",
			claim: "binary accuracy > 85% with 70% of nodes compromised (fig 2)",
			run: func() (string, bool, error) {
				res, err := exp1(func(c *experiment.Exp1Config) { c.FaultyFraction = 0.7 })
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("accuracy %.1f%%", res.Accuracy*100), res.Accuracy > 0.85, nil
			},
		},
		{
			name:  "exp1-false-alarms-help",
			claim: "false alarms improve reliability at 80% compromise (fig 3)",
			run: func() (string, bool, error) {
				quiet, err := exp1(func(c *experiment.Exp1Config) { c.FaultyFraction = 0.8 })
				if err != nil {
					return "", false, err
				}
				noisy, err := exp1(func(c *experiment.Exp1Config) {
					c.FaultyFraction = 0.8
					c.FalseAlarmProb = 0.75
				})
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("FA0 %.1f%% vs FA75 %.1f%%", quiet.Accuracy*100, noisy.Accuracy*100),
					noisy.Accuracy >= quiet.Accuracy, nil
			},
		},
		{
			name:  "exp2-beats-baseline",
			claim: "TIBFIT above stateless voting past 50% compromise (fig 4)",
			run: func() (string, bool, error) {
				tib, err := exp2(func(c *experiment.Exp2Config) { c.FaultyFraction = 0.55 })
				if err != nil {
					return "", false, err
				}
				base, err := exp2(func(c *experiment.Exp2Config) {
					c.FaultyFraction = 0.55
					c.Scheme = experiment.SchemeBaseline
				})
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("TIBFIT %.1f%% vs baseline %.1f%%", tib.Accuracy*100, base.Accuracy*100),
					tib.Accuracy > base.Accuracy, nil
			},
		},
		{
			name:  "exp2-level1",
			claim: "level-1 adversaries: accuracy > 90% at 58% compromise (fig 5)",
			run: func() (string, bool, error) {
				res, err := exp2(func(c *experiment.Exp2Config) {
					c.FaultyFraction = 0.58
					c.Level = node.Level1
				})
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("accuracy %.1f%%", res.Accuracy*100), res.Accuracy > 0.9, nil
			},
		},
		{
			name:  "exp2-level2",
			claim: "collusion hurts both schemes; TIBFIT still ahead at 50% (fig 6)",
			run: func() (string, bool, error) {
				tib, err := exp2(func(c *experiment.Exp2Config) {
					c.FaultyFraction = 0.5
					c.Level = node.Level2
				})
				if err != nil {
					return "", false, err
				}
				base, err := exp2(func(c *experiment.Exp2Config) {
					c.FaultyFraction = 0.5
					c.Level = node.Level2
					c.Scheme = experiment.SchemeBaseline
				})
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("TIBFIT %.1f%% vs baseline %.1f%%", tib.Accuracy*100, base.Accuracy*100),
					tib.Accuracy > base.Accuracy, nil
			},
		},
		{
			name:  "exp3-decay",
			claim: "gradual compromise: ~80% accuracy at 60% compromised (figs 8-9)",
			run: func() (string, bool, error) {
				decay := workload.DefaultDecay()
				res, err := exp2(func(c *experiment.Exp2Config) {
					c.Decay = &decay
					c.Events = decay.EventsPerStep * 12
				})
				if err != nil {
					return "", false, err
				}
				last := res.Windowed[len(res.Windowed)-1]
				return fmt.Sprintf("windowed accuracy %.1f%% at 60%%", last*100), last >= 0.8, nil
			},
		},
		{
			name:  "analysis-forms",
			claim: "convolution equals the paper's equations 2-3 (fig 10)",
			run: func() (string, bool, error) {
				worst := 0.0
				for m := 0; m <= 10; m++ {
					d := math.Abs(analysis.MajoritySuccess(10, m, 0.95, 0.5) -
						analysis.MajoritySuccessPaperForm(10, m, 0.95, 0.5))
					if d > worst {
						worst = d
					}
				}
				return fmt.Sprintf("max |Δ| %.2g", worst), worst < 1e-9, nil
			},
		},
		{
			name:  "analysis-roots",
			claim: "larger λ tolerates faster compromise (fig 11)",
			run: func() (string, bool, error) {
				prev := math.Inf(1)
				for _, l := range []float64{0.05, 0.1, 0.25, 0.5, 1} {
					k, err := analysis.MinInterCompromiseEvents(l, 10)
					if err != nil {
						return "", false, err
					}
					if k >= prev {
						return fmt.Sprintf("k not decreasing at λ=%v", l), false, nil
					}
					prev = k
				}
				return "roots strictly decreasing", true, nil
			},
		},
		{
			name:  "model-vs-sim",
			claim: "reliability model tracks the simulation at 70% (extension)",
			run: func() (string, bool, error) {
				res, err := exp1(func(c *experiment.Exp1Config) { c.FaultyFraction = 0.7 })
				if err != nil {
					return "", false, err
				}
				pred := analysis.PredictedRunAccuracy(10, 7, e1, 0.99, 0.5, 0.1, 0.01)
				d := math.Abs(pred - res.Accuracy)
				return fmt.Sprintf("model %.1f%% vs sim %.1f%%", pred*100, res.Accuracy*100), d < 0.1, nil
			},
		},
	}

	fmt.Fprintf(out, "tibfit-validate: %d checks (seed %d, quick=%t)\n\n", len(checks), *seed, *quick)
	allOK := true
	for _, c := range checks {
		start := time.Now()
		detail, ok, err := c.run()
		if err != nil {
			return false, fmt.Errorf("%s: %w", c.name, err)
		}
		status := "PASS"
		if !ok {
			status = "FAIL"
			allOK = false
		}
		fmt.Fprintf(out, "%-4s %-24s %-38s %6.2fs\n", status, c.name, detail, time.Since(start).Seconds())
		fmt.Fprintf(out, "     %s\n", c.claim)
	}
	fmt.Fprintln(out)
	if allOK {
		fmt.Fprintln(out, "all headline claims reproduce.")
	} else {
		fmt.Fprintln(out, "SOME CLAIMS FAILED — see above.")
	}
	return allOK, nil
}
