// Command tibfit-lint runs the TIBFIT static-analysis suite — a
// multichecker over the eight analyzers in internal/lint — and exits
// non-zero if any finding survives //lint:allow filtering. It is wired
// into `make lint` and CI as a hard gate; see docs/LINTING.md for the
// rules and the allowlist policy.
//
// Usage:
//
//	tibfit-lint [-list] [-fix] [-sarif file] [packages]
//
// Packages default to ./... and accept the usual "./dir/..." forms,
// resolved against the module root. -fix applies suggested fixes in
// place (findings with a fix count as resolved; the rest still fail
// the gate). -sarif writes the findings as a SARIF 2.1.0 log ("-" for
// stdout) for CI code-scanning upload; it is written even when there
// are no findings, so the upload step never races the gate's exit
// status.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/tibfit/tibfit/internal/lint"
	"github.com/tibfit/tibfit/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tibfit-lint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and their documentation, then exit")
	fix := fs.Bool("fix", false, "apply suggested fixes in place; fixed findings pass the gate")
	sarif := fs.String("sarif", "", "write findings as SARIF 2.1.0 to `file` (\"-\" for stdout)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tibfit-lint [-list] [-fix] [-sarif file] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Runs the static-analysis suite (%d analyzers) over the module.\n", len(lint.Analyzers))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return 0
	}

	ld, err := loader.New(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "tibfit-lint: %v\n", err)
		return 2
	}
	pkgs, err := ld.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tibfit-lint: %v\n", err)
		return 2
	}
	findings := lint.RunSuite(pkgs, ld.Fset, lint.Analyzers)

	if *fix {
		fixed, err := lint.ApplyFixes(findings, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tibfit-lint: %v\n", err)
			return 2
		}
		files := make([]string, 0, len(fixed))
		for file := range fixed {
			files = append(files, file)
		}
		sort.Strings(files)
		for _, file := range files {
			if err := os.WriteFile(file, fixed[file], 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "tibfit-lint: writing %s: %v\n", file, err)
				return 2
			}
			fmt.Printf("tibfit-lint: fixed %s\n", file)
		}
		// Fixed findings are resolved; only fixless ones still gate.
		rest := findings[:0]
		for _, f := range findings {
			if len(f.Fixes) == 0 {
				rest = append(rest, f)
			}
		}
		findings = rest
	}

	if *sarif != "" {
		data, err := lint.SARIF(findings, lint.Analyzers, ld.ModuleRoot())
		if err != nil {
			fmt.Fprintf(os.Stderr, "tibfit-lint: encoding SARIF: %v\n", err)
			return 2
		}
		data = append(data, '\n')
		if *sarif == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*sarif, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tibfit-lint: writing %s: %v\n", *sarif, err)
			return 2
		}
	}

	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tibfit-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
