// Command tibfit-lint runs the TIBFIT determinism lint suite — a
// multichecker over the four analyzers in internal/lint — and exits
// non-zero if any finding survives //lint:allow filtering. It is wired
// into `make lint` and CI as a hard gate; see docs/DETERMINISM.md for
// the rules and the allowlist policy.
//
// Usage:
//
//	tibfit-lint [-list] [packages]
//
// Packages default to ./... and accept the usual "./dir/..." forms,
// resolved against the module root.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tibfit/tibfit/internal/lint"
	"github.com/tibfit/tibfit/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tibfit-lint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and their documentation, then exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tibfit-lint [-list] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Runs the determinism lint suite (%d analyzers) over the module.\n", len(lint.Analyzers))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return 0
	}

	ld, err := loader.New(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "tibfit-lint: %v\n", err)
		return 2
	}
	pkgs, err := ld.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tibfit-lint: %v\n", err)
		return 2
	}
	findings := lint.RunSuite(pkgs, ld.Fset, lint.Analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tibfit-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
