package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExitsZero(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	// internal/rng is the designated randomness wrapper and must
	// always lint clean.
	if code := run([]string{"./internal/rng"}); code != 0 {
		t.Fatalf("run(./internal/rng) = %d, want 0", code)
	}
}

func TestViolatingPackageExitsNonZero(t *testing.T) {
	// The lint fixtures sit under a testdata tree (so ./... skips
	// them), but naming one explicitly loads it under its real
	// internal/ path, where its seeded violations must trip the gate.
	if code := run([]string{"./internal/lint/testdata/src/nondet"}); code != 1 {
		t.Fatalf("run(nondet fixture) = %d, want 1", code)
	}
}

func TestUnknownPatternExitsTwo(t *testing.T) {
	if code := run([]string{"./nosuchdir/..."}); code != 2 {
		t.Fatalf("run(unknown pattern) = %d, want 2", code)
	}
}

// scratchModule builds a throwaway module that shadows the real module
// path, so scope-gated analyzers treat its internal/ tree as simulation
// code, and chdirs into it. Files maps module-relative paths to sources.
func scratchModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module github.com/tibfit/tibfit\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(root)
	return root
}

func TestSARIFFlagWritesLogEvenWhenClean(t *testing.T) {
	scratchModule(t, map[string]string{
		"internal/clean/clean.go": "package clean\n\nfunc Ping() int { return 1 }\n",
	})
	out := filepath.Join(t.TempDir(), "lint.sarif")
	if code := run([]string{"-sarif", out, "./internal/clean"}); code != 0 {
		t.Fatalf("run(-sarif, clean pkg) = %d, want 0", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("SARIF log not written: %v", err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("SARIF log is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) != 1 || len(doc.Runs[0].Results) != 0 {
		t.Errorf("clean run must still emit one run with zero results, got %+v", doc.Runs)
	}
}

func TestFixFlagRewritesAndPassesGate(t *testing.T) {
	root := scratchModule(t, map[string]string{
		"internal/fixme/fixme.go": `package fixme

import "errors"

var ErrGone = errors.New("gone")

func Check(err error) bool {
	return err == ErrGone
}
`,
	})
	target := filepath.Join(root, "internal", "fixme", "fixme.go")

	// Without -fix the errwrap finding fails the gate.
	if code := run([]string{"./internal/fixme"}); code != 1 {
		t.Fatalf("run(fixme) = %d, want 1", code)
	}

	// With -fix the sentinel comparison is rewritten in place and the
	// finding counts as resolved, so the gate passes.
	if code := run([]string{"-fix", "./internal/fixme"}); code != 0 {
		t.Fatalf("run(-fix fixme) = %d, want 0", code)
	}
	fixed, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "errors.Is(err, ErrGone)") {
		t.Errorf("fixme.go not rewritten to errors.Is:\n%s", fixed)
	}

	// Idempotent: the fixed file lints clean.
	if code := run([]string{"./internal/fixme"}); code != 0 {
		t.Fatalf("run(fixme after fix) = %d, want 0", code)
	}
}

func TestFixFlagLeavesUnfixableFindingsFailing(t *testing.T) {
	// fmt.Errorf-without-%w has no machine fix, so -fix must still exit 1.
	scratchModule(t, map[string]string{
		"internal/sever/sever.go": `package sever

import "fmt"

func Wrap(err error) error {
	return fmt.Errorf("settle failed: %v", err)
}
`,
	})
	if code := run([]string{"-fix", "./internal/sever"}); code != 1 {
		t.Fatalf("run(-fix sever) = %d, want 1", code)
	}
}
