package main

import "testing"

func TestListExitsZero(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	// internal/rng is the designated randomness wrapper and must
	// always lint clean.
	if code := run([]string{"./internal/rng"}); code != 0 {
		t.Fatalf("run(./internal/rng) = %d, want 0", code)
	}
}

func TestViolatingPackageExitsNonZero(t *testing.T) {
	// The lint fixtures sit under a testdata tree (so ./... skips
	// them), but naming one explicitly loads it under its real
	// internal/ path, where its seeded violations must trip the gate.
	if code := run([]string{"./internal/lint/testdata/src/nondet"}); code != 1 {
		t.Fatalf("run(nondet fixture) = %d, want 1", code)
	}
}

func TestUnknownPatternExitsTwo(t *testing.T) {
	if code := run([]string{"./nosuchdir/..."}); code != 2 {
		t.Fatalf("run(unknown pattern) = %d, want 2", code)
	}
}
