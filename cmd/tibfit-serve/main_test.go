package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-nope"}},
		{"bad listen", []string{"-listen", "nohost"}},
		{"bad tenant", []string{"-tenant", "UPPER"}},
		{"bad scheme", []string{"-scheme", "magic"}},
		{"zero tout", []string{"-tout", "0"}},
		{"zero nodes", []string{"-nodes", "0"}},
		{"missing snapshot", []string{"-snapshot", "/definitely/not/here.tibs"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args, os.Stdout); err == nil {
				t.Fatalf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}

// TestRunFlagExactMessages pins the complete user-facing error for each
// rejected flag value, the same contract the -scheme and -scheduler
// flags carry elsewhere: the validation layer's own message reaches the
// user unwrapped and unrepaired.
func TestRunFlagExactMessages(t *testing.T) {
	corrupt := filepath.Join(t.TempDir(), "corrupt.tibs")
	if err := os.WriteFile(corrupt, []byte("not a sealed snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		args []string
		want string
	}{
		{
			"listen without port",
			[]string{"-listen", "nohost"},
			"invalid -listen address: address nohost: missing port in address",
		},
		{
			"tenant with bad characters",
			[]string{"-tenant", "team/alpha"},
			`cli: tenant name may use lowercase letters, digits, '-', '_', '.': "team/alpha"`,
		},
		{
			"tenant starting with separator",
			[]string{"-tenant", "-alpha"},
			`cli: tenant name must start with a letter or digit: "-alpha"`,
		},
		{
			"unknown scheme",
			[]string{"-scheme", "fuzy"},
			`decision: unknown scheme "fuzy" (did you mean "fuzzy"?); registered: baseline, dynamic-trust, fuzzy, linear, majority, tibfit`,
		},
		{
			"negative tout",
			[]string{"-tout", "-3"},
			"-tout must be positive, got -3",
		},
		{
			"corrupt snapshot",
			[]string{"-snapshot", corrupt},
			"restoring -snapshot " + corrupt +
				": engine: verifying snapshot: core: snapshot corrupt: 21 bytes is shorter than any valid snapshot",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args, os.Stdout)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want %q", tt.args, tt.want)
			}
			if err.Error() != tt.want {
				t.Fatalf("run(%v)\n got: %s\nwant: %s", tt.args, err, tt.want)
			}
		})
	}
}
