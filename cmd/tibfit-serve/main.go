// Command tibfit-serve is the online decision daemon: the TIBFIT
// arbitration pipeline behind an HTTP API, with per-tenant trust
// namespaces, a pollable decision stream, and sealed snapshot/restore.
// See docs/SERVING.md for the endpoint reference.
//
// Usage:
//
//	tibfit-serve [-listen 127.0.0.1:8080] [-tenant default]
//	             [-scheme tibfit] [-tout 100] [-nodes 16] [-shards 1]
//	             [-unit 1ms] [-snapshot state.tibs] [-save state.tibs]
//
// The daemon boots with one tenant (-tenant), optionally restored from
// a sealed snapshot file (-snapshot); further tenants are created over
// the API. On SIGINT/SIGTERM it shuts down gracefully, saving the boot
// tenant's sealed state to -save when given.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/tibfit/tibfit/internal/cli"
	"github.com/tibfit/tibfit/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tibfit-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("tibfit-serve", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:8080", "host:port to serve on")
		tenant   = fs.String("tenant", "default", "boot tenant name")
		tout     = fs.Float64("tout", 100, "boot tenant T_out, in -unit virtual units")
		nodes    = fs.Int("nodes", 16, "boot tenant member count (IDs 0..n-1)")
		shards   = fs.Int("shards", 1, "boot tenant shard count (single-writer event locations)")
		unit     = fs.Duration("unit", serve.DefaultUnit, "wall duration of one virtual time unit")
		snapshot = fs.String("snapshot", "", "restore the boot tenant from this sealed snapshot file")
		save     = fs.String("save", "", "write the boot tenant's sealed snapshot here on shutdown")
		drain    = fs.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	)
	var sf cli.SchemeFlags
	sf.Register(fs, "tibfit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := sf.Resolve()
	if err != nil {
		return err
	}
	if _, _, err := net.SplitHostPort(*listen); err != nil {
		return fmt.Errorf("invalid -listen address: %v", err)
	}
	if err := cli.ValidateTenant(*tenant); err != nil {
		return err
	}
	if *tout <= 0 {
		return fmt.Errorf("-tout must be positive, got %v", *tout)
	}
	if *nodes <= 0 {
		return fmt.Errorf("-nodes must be positive, got %d", *nodes)
	}
	if *shards <= 0 {
		return fmt.Errorf("-shards must be positive, got %d", *shards)
	}

	srv := serve.NewServer(serve.Config{Unit: *unit})
	defer srv.Close()
	cfg := serve.TenantConfig{
		Scheme: scheme,
		Tout:   *tout,
		Nodes:  *nodes,
		Shards: *shards,
	}
	cfg.Lambda = sf.Lambda
	cfg.FaultRate = sf.FaultRate
	if err := srv.CreateTenant(*tenant, cfg); err != nil {
		return err
	}
	if *snapshot != "" {
		blob, err := os.ReadFile(*snapshot)
		if err != nil {
			return fmt.Errorf("loading -snapshot: %v", err)
		}
		inst, _ := srv.Tenant(*tenant)
		if err := inst.RestoreSealed(blob); err != nil {
			return fmt.Errorf("restoring -snapshot %s: %v", *snapshot, err)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listening on %s: %v", *listen, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(out, "tibfit-serve: listening on %s (tenant %q, scheme %s, tout %v units of %v)\n",
		ln.Addr(), *tenant, scheme, *tout, *unit)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return fmt.Errorf("serving: %v", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(out, "tibfit-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("draining: %v", err)
	}
	if *save != "" {
		inst, ok := srv.Tenant(*tenant)
		if !ok {
			// The boot tenant was deleted over the API during the run;
			// there is no state to save.
			fmt.Fprintf(out, "tibfit-serve: tenant %q no longer exists, skipping -save\n", *tenant)
			return nil
		}
		blob, err := inst.SealedSnapshot()
		if err != nil {
			return fmt.Errorf("sealing shutdown snapshot: %v", err)
		}
		if err := os.WriteFile(*save, blob, 0o644); err != nil {
			return fmt.Errorf("writing -save: %v", err)
		}
		fmt.Fprintf(out, "tibfit-serve: saved %s (%d bytes)\n", *save, len(blob))
	}
	return nil
}
