package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	if err := run([]string{"-nodes", "36", "-events", "30", "-rounds", "2"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultihop(t *testing.T) {
	if err := run([]string{"-nodes", "36", "-events", "30", "-multihop"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"non-square nodes", []string{"-nodes", "37"}},
		{"zero rounds", []string{"-rounds", "0"}},
		{"bad scheme", []string{"-scheme", "magic", "-events", "10"}},
		{"missing load file", []string{"-load", "/definitely/not/here.json"}},
		{"bad flag", []string{"-nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args, os.Stdout); err == nil {
				t.Fatalf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}

// TestRunFlagExactMessages pins the complete user-facing error for each
// rejected resilience/chaos flag value, the same contract the -scheme
// and -scheduler flags carry: the config layer's own message reaches the
// user unwrapped and unrepaired.
func TestRunFlagExactMessages(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{
			"negative retries",
			[]string{"-nodes", "36", "-retries", "-1"},
			"network: ReportRetries must be non-negative, got -1",
		},
		{
			"retries without backoff",
			[]string{"-nodes", "36", "-retries", "2"},
			"network: ReportRetries needs a positive ReportBackoff",
		},
		{
			"NaN backoff",
			[]string{"-nodes", "36", "-retries", "2", "-backoff", "nan"},
			"network: ReportBackoff must be finite, got NaN",
		},
		{
			"negative backoff",
			[]string{"-nodes", "36", "-backoff", "-0.5"},
			"network: ReportBackoff must be non-negative, got -0.5",
		},
		{
			"negative byzheads",
			[]string{"-nodes", "36", "-byzheads", "-3"},
			"chaos: ByzHeads must be non-negative, got -3",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args, os.Stdout)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error", tt.args)
			}
			if err.Error() != tt.want {
				t.Fatalf("run(%v) error = %q, want %q", tt.args, err, tt.want)
			}
		})
	}
}

// TestRunByzantineQuarantine exercises the adversarial-head path end to
// end through the CLI: compromises are planned and the summary reports
// the byzantine counter line.
func TestRunByzantineQuarantine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-nodes", "36", "-events", "40", "-mode", "binary",
		"-byzheads", "2", "-chquarantine"}, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "byzantine: 2 head compromises planned, quarantine=true") {
		t.Fatalf("missing byzantine plan line:\n%s", out)
	}
	if !strings.Contains(out, "byzantine: compromised=2") {
		t.Fatalf("missing byzantine summary line:\n%s", out)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trust.json")
	if err := run([]string{"-nodes", "36", "-events", "40", "-save", path}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version"`) {
		t.Fatalf("saved file lacks version:\n%s", data)
	}
	if err := run([]string{"-nodes", "36", "-events", "20", "-load", path}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}
