package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	if err := run([]string{"-nodes", "36", "-events", "30", "-rounds", "2"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultihop(t *testing.T) {
	if err := run([]string{"-nodes", "36", "-events", "30", "-multihop"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"non-square nodes", []string{"-nodes", "37"}},
		{"zero rounds", []string{"-rounds", "0"}},
		{"bad scheme", []string{"-scheme", "magic", "-events", "10"}},
		{"missing load file", []string{"-load", "/definitely/not/here.json"}},
		{"bad flag", []string{"-nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args, os.Stdout); err == nil {
				t.Fatalf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trust.json")
	if err := run([]string{"-nodes", "36", "-events", "40", "-save", path}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version"`) {
		t.Fatalf("saved file lacks version:\n%s", data)
	}
	if err := run([]string{"-nodes", "36", "-events", "20", "-load", path}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}
