// Command tibfit-net runs the whole-system assembly (figure 1): LEACH
// clusters with trust-vetoed election, base-station trust handoff,
// optional multi-hop relay, and a stream of random events, then prints a
// network-level report. It can also persist the base station's trust
// state for a later run.
//
// Usage:
//
//	tibfit-net [-nodes 64] [-faulty 0.25] [-events 120] [-rounds 4]
//	           [-multihop] [-range 16] [-scheme tibfit] [-seed 7]
//	           [-save trust.json] [-load trust.json]
//	           [-chaos] [-crash 0.2] [-headcrashes 2] [-failover]
//	           [-byzheads 2] [-chquarantine] [-retries 3] [-backoff 0.02]
//	           [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/tibfit/tibfit/internal/chaos"
	"github.com/tibfit/tibfit/internal/cli"
	"github.com/tibfit/tibfit/internal/energy"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/leach"
	"github.com/tibfit/tibfit/internal/network"
	"github.com/tibfit/tibfit/internal/node"
	"github.com/tibfit/tibfit/internal/radio"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/sim"
	"github.com/tibfit/tibfit/internal/trace"
	"github.com/tibfit/tibfit/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tibfit-net:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("tibfit-net", flag.ContinueOnError)
	var (
		nNodes   = fs.Int("nodes", 64, "sensor count (perfect square)")
		faulty   = fs.Float64("faulty", 0.25, "fraction compromised (level 0)")
		events   = fs.Int("events", 120, "events to inject")
		rounds   = fs.Int("rounds", 4, "leadership rounds across the run")
		multihop = fs.Bool("multihop", false, "route reports over the relay mesh")
		rng0     = fs.Int64("seed", 7, "random seed")
		rrange   = fs.Float64("range", 16, "radio range (multihop mode)")
		savePath = fs.String("save", "", "write base-station trust state to this file")
		loadPath = fs.String("load", "", "seed the base station from this file")
		showMap  = fs.Bool("map", false, "render the trust field map after the run")
		mode     = fs.String("mode", "location", "detection mode: location or binary")

		chaosOn   = fs.Bool("chaos", false, "inject the default chaos campaign (crashes, a blackout, duplication)")
		crashFrac = fs.Float64("crash", 0.2, "chaos: fraction of nodes given a crash interval")
		headCr    = fs.Int("headcrashes", 1, "chaos: serving-head crash injections")
		failover  = fs.Bool("failover", false, "enable heartbeat CH failover and ACK/backoff report retries")
		byzHeads  = fs.Int("byzheads", 0, "chaos: serving heads turned Byzantine (inversion, suppression, handoff poisoning/replay)")
		chQuar    = fs.Bool("chquarantine", false, "score heads at the base station; quarantine and re-elect compromised ones")
		retries   = fs.Int("retries", 0, "report retransmissions with ACK (overrides the -failover default when set)")
		backoff   = fs.Float64("backoff", 0, "first report retransmission delay (overrides the -failover default when set)")

		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile after the run to this file")
	)
	var sf cli.SchemeFlags
	sf.Register(fs, "tibfit")
	var sched cli.SchedulerFlag
	sched.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := sf.Resolve()
	if err != nil {
		return err
	}
	if err := sched.Apply(); err != nil {
		return err
	}
	if *rounds < 1 {
		return fmt.Errorf("-rounds must be at least 1")
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tibfit-net: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tibfit-net: memprofile:", err)
			}
			f.Close()
		}()
	}

	kernel := sim.New()
	root := rng.New(*rng0)

	netCfg := network.DefaultConfig()
	netCfg.Scheme = scheme
	netCfg.Trust = sf.ApplyTrust(netCfg.Trust)
	netCfg.Multihop = *multihop
	netCfg.Mode = *mode
	if *failover {
		netCfg.HeartbeatPeriod = netCfg.Tout / 5
		netCfg.HeartbeatMisses = 3
		netCfg.ReportRetries = 3
		netCfg.ReportBackoff = netCfg.Tout / 50
	}
	netCfg.CHQuarantine = *chQuar
	// Explicit -retries/-backoff win over the -failover presets. The
	// values go to network.New unclamped so a negative or NaN argument
	// is rejected with the config's own message instead of being
	// silently repaired.
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "retries":
			netCfg.ReportRetries = *retries
		case "backoff":
			netCfg.ReportBackoff = sim.Duration(*backoff)
		}
	})

	chCfg := radio.DefaultConfig()
	chCfg.DropProb = 0.02
	if *multihop {
		chCfg.Range = *rrange
	}
	channel := radio.NewChannel(chCfg, kernel, root.Split("channel"))

	nodeCfg := node.Config{
		MissProb:     0.25,
		SigmaCorrect: 1.6,
		SigmaFaulty:  4.25,
		SenseRadius:  netCfg.SenseRadius,
		LowerTI:      0.5,
		UpperTI:      0.8,
		Trust:        netCfg.Trust,
	}

	side := 1
	for side*side < *nNodes {
		side++
	}
	if side*side != *nNodes {
		return fmt.Errorf("-nodes must be a perfect square, got %d", *nNodes)
	}
	fieldSide := float64(side) * 10
	area := geo.NewRect(fieldSide, fieldSide)
	positions := workload.GridPlacement(area, *nNodes)
	nFaulty := int(float64(*nNodes)**faulty + 0.5)
	nodes := make([]*node.Node, len(positions))
	for i, p := range positions {
		kind := node.Correct
		if i < nFaulty {
			kind = node.Level0
		}
		n, err := node.New(i, p, kind, nodeCfg, root.Split(fmt.Sprint("node", i)))
		if err != nil {
			return err
		}
		n.AttachBattery(energy.NewBattery(1e7))
		nodes[i] = n
	}

	tr := trace.New()
	net, err := network.New(netCfg, kernel, channel, nodes, root.Split("net"), tr)
	if err != nil {
		return err
	}
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			return err
		}
		loaded, err := leach.LoadStation(f)
		closeErr := f.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
		net.Station().StoreSnapshot(loaded.NewTable().Snapshot())
		if err := net.Recluster(); err != nil {
			return err
		}
		fmt.Fprintf(out, "seeded base station from %s\n", *loadPath)
	}

	fmt.Fprintf(out, "%d nodes (%d faulty), %d clusters, scheme=%s multihop=%t\n",
		*nNodes, nFaulty, len(net.Heads()), scheme, *multihop)

	evSrc := root.Split("events")
	period := 10.0

	var engine *chaos.Engine
	if *chaosOn || *byzHeads != 0 {
		// -byzheads alone gets a compromise-only campaign: no crashes,
		// blackouts or packet perturbation, so a run differs from the
		// fault-free one exactly by the adversarial heads.
		chaosCfg := chaos.Config{Horizon: float64(*events) * period}
		if *chaosOn {
			chaosCfg = chaos.DefaultConfig(float64(*events) * period)
			chaosCfg.CrashFraction = *crashFrac
			chaosCfg.HeadCrashes = *headCr
		}
		chaosCfg.ByzHeads = *byzHeads
		csrc := root.Split("chaos")
		engine, err = chaos.New(chaosCfg, kernel, csrc, tr)
		if err != nil {
			return err
		}
		if err := engine.Arm(net, csrc); err != nil {
			return err
		}
		if *chaosOn {
			channel.SetPerturber(engine)
			fmt.Fprintf(out, "chaos: %d planned faults (crash=%.0f%% headcrashes=%d), failover=%t\n",
				len(engine.Plan()), *crashFrac*100, *headCr, *failover)
		}
		if *byzHeads > 0 {
			fmt.Fprintf(out, "byzantine: %d head compromises planned, quarantine=%t\n",
				*byzHeads, *chQuar)
		}
	}
	rotateEvery := *events / *rounds
	if rotateEvery < 1 {
		rotateEvery = 1
	}
	detected, total := 0, 0
	for i := 0; i < *events; i++ {
		if i > 0 && i%rotateEvery == 0 {
			at := sim.Time(float64(i)*period + period/2)
			if _, err := kernel.At(at, func() {
				if err := net.Recluster(); err != nil {
					panic(err)
				}
			}); err != nil {
				return err
			}
		}
		loc := geo.Point{
			X: evSrc.Uniform(0, fieldSide),
			Y: evSrc.Uniform(0, fieldSide),
		}
		at := sim.Time(float64(i+1) * period)
		i := i
		total++
		if _, err := kernel.At(at, func() { net.InjectEvent(i, loc) }); err != nil {
			return err
		}
		if _, err := kernel.At(at+sim.Time(period/2), func() {
			if *mode == network.ModeBinary {
				// Binary declarations carry no location; match by time.
				for _, d := range net.Declared() {
					if d.Time >= at {
						detected++
						return
					}
				}
				return
			}
			if net.DetectedNear(loc, at, netCfg.RError) {
				detected++
			}
		}); err != nil {
			return err
		}
	}
	kernel.RunAll()

	fmt.Fprintf(out, "detected %d/%d events (%.1f%%) over %d leadership rounds\n",
		detected, total, 100*float64(detected)/float64(total), net.Rounds())
	if engine != nil && *chaosOn {
		st := engine.Stats()
		outage, duplicated := channel.ChaosStats()
		fmt.Fprintf(out, "chaos: crashes=%d (heads=%d) recoveries=%d blackouts=%d outage-drops=%d dup-packets=%d\n",
			st.Crashes, st.HeadCrashes, st.Recoveries, st.Blackouts, outage, duplicated)
		fmt.Fprintf(out, "resilience: failovers=%d orphaned=%d retries=%d depleted=%d\n",
			tr.Count(trace.KindCHFailover), tr.Count(trace.KindClusterOrphaned),
			tr.Count(trace.KindReportRetry), tr.Count(trace.KindNodeDepleted))
	}
	if *byzHeads > 0 || *chQuar {
		fmt.Fprintf(out, "byzantine: compromised=%d escalations=%d quarantined=%d snapshot-rejections=%d\n",
			tr.Count(trace.KindCHByzantine), tr.Count(trace.KindShadowDisagree),
			tr.Count(trace.KindCHQuarantined), tr.Count(trace.KindSnapshotRejected))
	}
	if m := net.Mesh(); m != nil {
		deliv, failed, retries, hops := m.Stats()
		fmt.Fprintf(out, "relay: delivered=%d hops=%d retries=%d failed=%d\n",
			deliv, hops, retries, failed)
	}
	station := net.Station()
	diagnosed := 0
	for i := 0; i < nFaulty; i++ {
		if station.TI(i) < 0.5 {
			diagnosed++
		}
	}
	fmt.Fprintf(out, "diagnosed %d/%d faulty nodes below TI 0.5\n", diagnosed, nFaulty)
	if *showMap {
		fmt.Fprint(out, net.RenderField(2*side, side))
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		if err := station.Save(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "saved base-station trust state to %s\n", *savePath)
	}
	return nil
}
