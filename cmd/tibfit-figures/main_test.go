package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesFigureFiles(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-out", dir,
		"-only", "figure10,figure11-roots",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		"figure10.txt", "figure10.csv",
		"figure11-roots.txt", "figure11-roots.csv",
	} {
		path := filepath.Join(dir, f)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing output %s: %v", f, err)
		}
		if len(data) == 0 {
			t.Fatalf("empty output %s", f)
		}
	}
	// CSV files must have a header and data rows.
	data, _ := os.ReadFile(filepath.Join(dir, "figure10.csv"))
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "x,") {
		t.Fatalf("csv malformed:\n%s", data)
	}
}

func TestRunSimulatedFigureReducedScale(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-out", dir,
		"-only", "figure2",
		"-runs", "1",
		"-events", "20",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figure2.txt")); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-only", "figure99", "-out", t.TempDir()}); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
