// Command tibfit-figures regenerates every figure of the paper in one run
// and writes the data files (one .txt table and one .csv per figure) into
// an output directory. This is the tool EXPERIMENTS.md is produced from.
//
// Usage:
//
//	tibfit-figures [-out figures/] [-runs 3] [-events 0] [-seed 1] [-only figure4,figure5]
//	               [-parallel N]   # campaign workers; output is byte-identical at any N
//	               [-scheme NAME] [-lambda L] [-fr F]  # override the free scheme/params
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/tibfit/tibfit/internal/cli"
	"github.com/tibfit/tibfit/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tibfit-figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tibfit-figures", flag.ContinueOnError)
	var (
		out    = fs.String("out", "figures", "output directory")
		runs   = fs.Int("runs", 3, "independent replicates per data point")
		events = fs.Int("events", 0, "events per run (0 = experiment default)")
		seed   = fs.Int64("seed", 1, "base random seed")
		only   = fs.String("only", "", "comma-separated figure IDs (default: all)")
		par    = fs.Int("parallel", 0, "campaign workers: figure cells simulated concurrently (1 = sequential, 0 = one per core); output is identical either way")
	)
	var sf cli.SchemeFlags
	sf.Register(fs, "")
	var sched cli.SchedulerFlag
	sched.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := sf.Resolve()
	if err != nil {
		return err
	}
	if err := sched.Apply(); err != nil {
		return err
	}

	ids := experiment.FigureIDs()
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	opts := experiment.FigureOptions{
		Runs: *runs, Events: *events, Seed: *seed, Parallel: *par,
		Scheme: scheme, Lambda: sf.Lambda, FaultRate: sf.FaultRate,
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		fig, err := experiment.Generate(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		txt := filepath.Join(*out, id+".txt")
		if err := os.WriteFile(txt, []byte(fig.Table()), 0o644); err != nil {
			return err
		}
		csv := filepath.Join(*out, id+".csv")
		if err := os.WriteFile(csv, []byte(fig.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("%-16s %2d series  %6.2fs  -> %s, %s\n",
			id, len(fig.Series), time.Since(start).Seconds(), txt, csv)
	}
	return nil
}
