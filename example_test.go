package tibfit_test

import (
	"fmt"

	"github.com/tibfit/tibfit"
)

// The core loop: trust-weighted voting with settlement. Three chronic
// liars fabricate an event; the honest majority votes it down and the
// liars pay for it.
func Example() {
	table := tibfit.MustNewTrustTable(tibfit.TrustParams{Lambda: 0.25, FaultRate: 0.1})

	liars := []int{7, 8, 9}
	honest := []int{0, 1, 2, 3, 4, 5, 6}
	for round := 0; round < 4; round++ {
		dec := tibfit.DecideBinary(table, liars, honest)
		tibfit.Apply(table, dec)
	}
	fmt.Printf("liar TI after 4 failed fabrications: %.3f\n", table.TI(7))
	fmt.Printf("honest TI: %.3f\n", table.TI(0))
	// Output:
	// liar TI after 4 failed fabrications: 0.407
	// honest TI: 1.000
}

// DecideBinary weighs reporters against silent event neighbors; the
// heavier cumulative trust wins and ties conservatively reject.
func ExampleDecideBinary() {
	dec := tibfit.DecideBinary(tibfit.Baseline{}, []int{1, 2, 3}, []int{4, 5})
	fmt.Printf("occurred=%t margin=%.0f\n", dec.Occurred, dec.Margin())

	tie := tibfit.DecideBinary(tibfit.Baseline{}, []int{1, 2}, []int{3, 4})
	fmt.Printf("tie occurred=%t\n", tie.Occurred)
	// Output:
	// occurred=true margin=1
	// tie occurred=false
}

// ClusterReports groups location reports into event clusters of radius
// r_error; badly localized reports end up in their own clusters, which
// the subsequent vote throws out.
func ExampleClusterReports() {
	reports := []tibfit.Report{
		{Node: 1, Loc: tibfit.Point{X: 50.2, Y: 49.8}},
		{Node: 2, Loc: tibfit.Point{X: 49.5, Y: 50.4}},
		{Node: 3, Loc: tibfit.Point{X: 50.9, Y: 50.1}},
		{Node: 4, Loc: tibfit.Point{X: 80.0, Y: 12.0}}, // way off
	}
	clusters := tibfit.ClusterReports(reports, 5)
	for _, c := range clusters {
		fmt.Printf("cluster of %d at %v\n", len(c.Reports), c.Center)
	}
	// Output:
	// cluster of 3 at (50.20, 50.10)
	// cluster of 1 at (80.00, 12.00)
}

// MajoritySuccess evaluates the paper's closed-form baseline (§5): the
// probability stateless majority voting detects an event.
func ExampleMajoritySuccess() {
	for _, m := range []int{2, 5, 8} {
		p := tibfit.MajoritySuccess(10, m, 0.95, 0.5)
		fmt.Printf("%d/10 faulty: %.3f\n", m, p)
	}
	// Output:
	// 2/10 faulty: 0.998
	// 5/10 faulty: 0.926
	// 8/10 faulty: 0.610
}

// KMax is the §5 bound on how many events the trust state needs to absorb
// the final tolerable compromise.
func ExampleKMax() {
	fmt.Printf("%.2f events at lambda=0.25\n", tibfit.KMax(0.25))
	// Output:
	// 4.39 events at lambda=0.25
}
