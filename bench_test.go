package tibfit_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each
// benchmark regenerates its artifact end to end (workload generation,
// simulation, aggregation, metric folding); reported ns/op is the cost of
// one full regeneration at the benchmark's (reduced) event count. Run
//
//	go test -bench=. -benchmem
//
// for the full set, or -bench=BenchmarkFigure4 for one figure. The CLI
// tools regenerate the same artifacts at full scale.

import (
	"testing"

	"github.com/tibfit/tibfit"
	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/shadow"
)

// benchOpts keeps per-iteration work bounded while preserving dynamics.
var benchOpts = tibfit.FigureOptions{Runs: 1, Events: 100, Seed: 1}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := tibfit.GenerateFigure(id, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatalf("%s produced no series", id)
		}
	}
}

// BenchmarkTable1Exp1 runs one binary-event simulation at Table 1's exact
// parameters (10 nodes, 100 events, λ=0.1, 50% missed alarms).
func BenchmarkTable1Exp1(b *testing.B) {
	cfg := tibfit.DefaultExp1()
	cfg.FaultyFraction = 0.5
	for i := 0; i < b.N; i++ {
		if _, err := tibfit.RunExp1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Exp2 runs one location-determination simulation at Table
// 2's exact parameters (100 nodes, 100×100 grid, λ=0.25, f_r=0.1).
func BenchmarkTable2Exp2(b *testing.B) {
	cfg := tibfit.DefaultExp2()
	cfg.Events = 100
	for i := 0; i < b.N; i++ {
		if _, err := tibfit.RunExp2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Figures 2-3: experiment 1 (binary events).
func BenchmarkFigure2(b *testing.B) { benchFigure(b, "figure2") }
func BenchmarkFigure3(b *testing.B) { benchFigure(b, "figure3") }

// Figures 4-7: experiment 2 (location determination).
func BenchmarkFigure4(b *testing.B) { benchFigure(b, "figure4") }
func BenchmarkFigure5(b *testing.B) { benchFigure(b, "figure5") }
func BenchmarkFigure6(b *testing.B) { benchFigure(b, "figure6") }
func BenchmarkFigure7(b *testing.B) { benchFigure(b, "figure7") }

// Figures 8-9: experiment 3 (decaying network).
func BenchmarkFigure8(b *testing.B) { benchFigure(b, "figure8") }
func BenchmarkFigure9(b *testing.B) { benchFigure(b, "figure9") }

// Figures 10-11: §5 closed forms.
func BenchmarkFigure10(b *testing.B)      { benchFigure(b, "figure10") }
func BenchmarkFigure11(b *testing.B)      { benchFigure(b, "figure11") }
func BenchmarkFigure11Roots(b *testing.B) { benchFigure(b, "figure11-roots") }

// BenchmarkAblationLinearTI quantifies §3's argument for the exponential
// penalty: the same 70%-compromised binary workload run with the linear
// trust model. Compare against BenchmarkAblationExponentialTI; the
// experiment integration tests assert the accuracy ordering.
func BenchmarkAblationLinearTI(b *testing.B) {
	benchTrustShape(b, true)
}

// BenchmarkAblationExponentialTI is the paper's model, for comparison.
func BenchmarkAblationExponentialTI(b *testing.B) {
	benchTrustShape(b, false)
}

func benchTrustShape(b *testing.B, linear bool) {
	b.Helper()
	cfg := tibfit.DefaultExp1()
	cfg.FaultyFraction = 0.7
	cfg.LinearTI = linear
	for i := 0; i < b.N; i++ {
		res, err := tibfit.RunExp1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Accuracy <= 0 {
			b.Fatal("degenerate accuracy")
		}
	}
}

// BenchmarkAblationLambda sweeps the λ ∈ {0.05 … 1.0} range of figure 11
// on the live simulation rather than the closed form.
func BenchmarkAblationLambda(b *testing.B) {
	lambdas := []float64{0.05, 0.1, 0.25, 0.5, 1.0}
	for i := 0; i < b.N; i++ {
		for _, l := range lambdas {
			cfg := tibfit.DefaultExp1()
			cfg.Lambda = l
			cfg.FaultyFraction = 0.7
			if _, err := tibfit.RunExp1(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationIsolation compares runs with node removal enabled
// (threshold 0.3, the reproduction default) and disabled.
func BenchmarkAblationIsolation(b *testing.B) {
	for _, threshold := range []float64{0, 0.3} {
		threshold := threshold
		name := "disabled"
		if threshold > 0 {
			name = "enabled"
		}
		b.Run(name, func(b *testing.B) {
			cfg := tibfit.DefaultExp2()
			cfg.Events = 100
			cfg.FaultyFraction = 0.5
			cfg.RemovalThreshold = threshold
			for i := 0; i < b.N; i++ {
				if _, err := tibfit.RunExp2(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationShadowCH measures the cost of running every decision
// through the §3.4 replicated shadow-CH panel versus a bare table.
func BenchmarkAblationShadowCH(b *testing.B) {
	reporters := []int{0, 1, 2, 3, 4, 5}
	silent := []int{6, 7, 8, 9}
	b.Run("bare", func(b *testing.B) {
		tab := core.MustNewTable(core.Params{Lambda: 0.25, FaultRate: 0.1})
		for i := 0; i < b.N; i++ {
			d := core.DecideBinary(tab, reporters, silent)
			core.Apply(tab, d)
		}
	})
	b.Run("panel", func(b *testing.B) {
		panel, err := shadow.NewPanel(core.Params{Lambda: 0.25, FaultRate: 0.1}, 0, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			panel.Decide(reporters, silent)
		}
	})
}

// BenchmarkCoreDecide isolates the hot path: one CTI vote plus trust
// settlement over a 10-node neighborhood.
func BenchmarkCoreDecide(b *testing.B) {
	tab := core.MustNewTable(core.Params{Lambda: 0.25, FaultRate: 0.1})
	reporters := []int{0, 1, 2, 3, 4, 5}
	silent := []int{6, 7, 8, 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := core.DecideBinary(tab, reporters, silent)
		core.Apply(tab, d)
	}
}

// BenchmarkClustering isolates the §3.2 K-means heuristic on a realistic
// report mix (12 tight reports plus 3 outliers).
func BenchmarkClustering(b *testing.B) {
	var reports []tibfit.Report
	for i := 0; i < 12; i++ {
		reports = append(reports, tibfit.Report{
			Node: i,
			Loc:  tibfit.Point{X: 50 + float64(i%4), Y: 50 + float64(i/4)},
		})
	}
	reports = append(reports,
		tibfit.Report{Node: 12, Loc: tibfit.Point{X: 80, Y: 20}},
		tibfit.Report{Node: 13, Loc: tibfit.Point{X: 10, Y: 90}},
		tibfit.Report{Node: 14, Loc: tibfit.Point{X: 30, Y: 70}},
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := tibfit.ClusterReports(reports, 5); len(got) == 0 {
			b.Fatal("no clusters")
		}
	}
}

// BenchmarkAblationWeightedCentroid compares plain center-of-gravity
// event locations against the trust-weighted extension under heavy
// contamination (50% compromise, σ_faulty=6, removal disabled so bad
// reports keep flowing).
func BenchmarkAblationWeightedCentroid(b *testing.B) {
	for _, weighted := range []bool{false, true} {
		weighted := weighted
		name := "plain"
		if weighted {
			name = "weighted"
		}
		b.Run(name, func(b *testing.B) {
			cfg := tibfit.DefaultExp2()
			cfg.Events = 100
			cfg.FaultyFraction = 0.5
			cfg.SigmaFaulty = 6
			cfg.RemovalThreshold = 0
			cfg.TrustWeightedCentroid = weighted
			for i := 0; i < b.N; i++ {
				if _, err := tibfit.RunExp2(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationUnreliableCH runs the §3.4 scenario end to end: an
// honest cluster head, a 20%-lying head unprotected, and the same liar
// masked by the shadow panel.
func BenchmarkAblationUnreliableCH(b *testing.B) {
	variants := []struct {
		name   string
		mutate func(*tibfit.Exp1Config)
	}{
		{"honest", func(*tibfit.Exp1Config) {}},
		{"lying", func(c *tibfit.Exp1Config) { c.CHFlipProb = 0.2 }},
		{"lying+shadows", func(c *tibfit.Exp1Config) { c.CHFlipProb = 0.2; c.ShadowCH = true }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			cfg := tibfit.DefaultExp1()
			cfg.FaultyFraction = 0.3
			v.mutate(&cfg)
			for i := 0; i < b.N; i++ {
				if _, err := tibfit.RunExp1(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
