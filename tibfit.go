// Package tibfit is a Go implementation of TIBFIT — Trust Index Based
// Fault Tolerance for arbitrary data faults in event-driven wireless
// sensor networks (Krasniewski, Varadharajan, Rabeler, Bagchi, Hu; DSN
// 2005) — together with the discrete-event simulation substrate, adversary
// models, and experiment harness that reproduce the paper's evaluation.
//
// # Protocol
//
// Sensor nodes report events to a cluster head. The cluster head keeps a
// trust index TI = exp(-λ·v) per node, where the fault accumulator v rises
// by 1-f_r on every report judged faulty and falls by f_r on every report
// judged correct. Event decisions compare the cumulative trust index (CTI)
// of the nodes reporting an event against that of the event neighbors that
// stayed silent; the heavier side wins, and trust is settled accordingly.
// Because the vote is stateful, the network keeps deciding correctly even
// after more than half its nodes are compromised — provided the compromise
// arrives gradually enough for trust to accumulate first.
//
// # Quick start
//
//	table := tibfit.NewTrustTable(tibfit.TrustParams{Lambda: 0.1, FaultRate: 0.01})
//	dec := tibfit.DecideBinary(table, reporters, silent)
//	tibfit.Apply(table, dec)
//	if dec.Occurred { ... }
//
// For location events, cluster the reports first:
//
//	clusters := tibfit.ClusterReports(reports, rError)
//
// and vote per cluster. The aggregator package wires both modes to a
// simulation kernel with T_out windows and the §3.3 concurrent-event
// circle protocol; the experiment runners (RunExp1, RunExp2) and figure
// generators (GenerateFigure) reproduce the paper's evaluation end to end.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-reproduction comparison of every table and figure.
package tibfit

import (
	"github.com/tibfit/tibfit/internal/analysis"
	"github.com/tibfit/tibfit/internal/cluster"
	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/experiment"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/metrics"
	"github.com/tibfit/tibfit/internal/node"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/workload"
)

// Trust-index engine (§3).
type (
	// TrustParams configures the trust-index update rule.
	TrustParams = core.Params
	// TrustTable is the per-node trust state a cluster head maintains.
	TrustTable = core.Table
	// TrustRecord is one node's trust state.
	TrustRecord = core.Record
	// Weigher abstracts the voting-weight policy (TIBFIT or baseline).
	Weigher = core.Weigher
	// Baseline is the stateless majority-voting comparison scheme.
	Baseline = core.Baseline
	// BinaryDecision is the outcome of one CTI vote.
	BinaryDecision = core.BinaryDecision
	// TrustEstimator mirrors the sink-side trust computation, as smart
	// adversaries do to dodge isolation.
	TrustEstimator = core.Estimator
)

// Default protocol constants from the paper's experiments.
const (
	DefaultLambdaBinary      = core.DefaultLambdaBinary
	DefaultLambdaLocation    = core.DefaultLambdaLocation
	DefaultFaultRateLocation = core.DefaultFaultRateLocation
)

// NewTrustTable returns an empty trust table; it fails on invalid params.
func NewTrustTable(p TrustParams) (*TrustTable, error) { return core.NewTable(p) }

// MustNewTrustTable is NewTrustTable for compile-time-constant params.
func MustNewTrustTable(p TrustParams) *TrustTable { return core.MustNewTable(p) }

// NewTrustEstimator returns a node-side trust self-estimator.
func NewTrustEstimator(p TrustParams) *TrustEstimator { return core.NewEstimator(p) }

// DecideBinary runs the §3.1 vote: reporters versus silent event
// neighbors, heavier cumulative trust wins, ties resolve to "no event".
func DecideBinary(w Weigher, reporters, silent []int) BinaryDecision {
	return core.DecideBinary(w, reporters, silent)
}

// Apply commits the trust updates a decision implies.
func Apply(w Weigher, d BinaryDecision) { core.Apply(w, d) }

// CTI sums the vote weights of a node set under a weighing policy.
func CTI(w Weigher, nodes []int) float64 { return core.CTI(w, nodes) }

// Geometry and location-report clustering (§3.2).
type (
	// Point is an absolute position on the deployment plane.
	Point = geo.Point
	// Polar is the (r, θ) offset an event report carries.
	Polar = geo.Polar
	// Report is one resolved location report.
	Report = cluster.Report
	// EventCluster is one group of mutually consistent reports.
	EventCluster = cluster.EventCluster
)

// ClusterReports groups location reports into event clusters of radius
// rError using the paper's K-means-style heuristic.
func ClusterReports(reports []Report, rError float64) []EventCluster {
	return cluster.Cluster(reports, rError)
}

// Adversary models (§2.1).
type (
	// NodeKind identifies a behaviour model (Correct, Level0-2).
	NodeKind = node.Kind
	// SensorNode is a simulated sensor with a behaviour model.
	SensorNode = node.Node
	// NodeConfig holds behaviour parameters.
	NodeConfig = node.Config
	// Coalition coordinates level-2 colluders.
	Coalition = node.Coalition
)

// Behaviour kinds.
const (
	Correct = node.Correct
	Level0  = node.Level0
	Level1  = node.Level1
	Level2  = node.Level2
	// Level3 is the extension adversary: a coalition that jitters its
	// fabrications to evade coincidence detection.
	Level3 = node.Level3
)

// Experiments and figures (§4, §5).
type (
	// Exp1Config configures the binary-event experiment (Table 1).
	Exp1Config = experiment.Exp1Config
	// Exp1Result reports a binary-event run.
	Exp1Result = experiment.Exp1Result
	// Exp2Config configures the location experiments (Table 2) and, with
	// a decay schedule, experiment 3.
	Exp2Config = experiment.Exp2Config
	// Exp2Result reports a location-mode run.
	Exp2Result = experiment.Exp2Result
	// FigureOptions tunes figure regeneration.
	FigureOptions = experiment.FigureOptions
	// Figure is a regenerated paper figure.
	Figure = metrics.Figure
	// Series is one line of a figure.
	Series = metrics.Series
	// DecaySchedule is experiment 3's compromise growth schedule.
	DecaySchedule = workload.DecaySchedule
)

// Scheme names for the experiment configs. Any name registered in the
// decision registry is accepted; DecisionSchemeNames lists them all.
const (
	SchemeTIBFIT   = experiment.SchemeTIBFIT
	SchemeBaseline = experiment.SchemeBaseline
)

// Decision-engine layer: the pluggable voting schemes behind every
// aggregator and experiment.
type (
	// DecisionScheme is the pluggable per-report weighing / window
	// arbitration / post-decision feedback policy.
	DecisionScheme = decision.Scheme
	// DecisionParams configures a scheme instance.
	DecisionParams = decision.Params
)

// NewDecisionScheme builds a registered scheme by name ("tibfit",
// "majority", "linear", "dynamic-trust", "fuzzy", alias "baseline").
func NewDecisionScheme(name string, p DecisionParams) (DecisionScheme, error) {
	return decision.New(name, p)
}

// DecisionSchemeNames lists the registered canonical scheme names, sorted.
func DecisionSchemeNames() []string { return decision.Names() }

// DecisionSchemeTitle returns the scheme's human-readable figure-legend
// title.
func DecisionSchemeTitle(name string) string { return decision.Title(name) }

// Tracking (the §3.2 mobile-target application) and parameter sweeps
// (§7 future work).
type (
	// TrackingConfig configures the mobile-target tracking scenario.
	TrackingConfig = experiment.TrackingConfig
	// TrackingResult reports a tracking run.
	TrackingResult = experiment.TrackingResult
)

// DefaultTracking returns the mobile-target scenario's default config.
func DefaultTracking() TrackingConfig { return experiment.DefaultTracking() }

// RunTracking executes the mobile-target tracking scenario.
func RunTracking(cfg TrackingConfig) (TrackingResult, error) {
	return experiment.RunTracking(cfg)
}

// SweepExp1 varies one binary-experiment parameter over a value list.
// Sweep points fan out on the deterministic campaign pool (one worker
// per core); SweepExp1N picks the worker count explicitly.
func SweepExp1(param string, values []float64, base Exp1Config) (Figure, error) {
	return experiment.SweepExp1(param, values, base)
}

// SweepExp1N is SweepExp1 with an explicit campaign worker count
// (1 = sequential, 0 = one per core). Results are byte-identical at any
// worker count.
func SweepExp1N(param string, values []float64, base Exp1Config, workers int) (Figure, error) {
	return experiment.SweepExp1N(param, values, base, workers)
}

// SweepExp2 varies one location-experiment parameter over a value list.
// Sweep points fan out on the deterministic campaign pool (one worker
// per core); SweepExp2N picks the worker count explicitly.
func SweepExp2(param string, values []float64, base Exp2Config) (Figure, error) {
	return experiment.SweepExp2(param, values, base)
}

// SweepExp2N is SweepExp2 with an explicit campaign worker count
// (1 = sequential, 0 = one per core). Results are byte-identical at any
// worker count.
func SweepExp2N(param string, values []float64, base Exp2Config, workers int) (Figure, error) {
	return experiment.SweepExp2N(param, values, base, workers)
}

// DefaultExp1 returns Table 1's parameters.
func DefaultExp1() Exp1Config { return experiment.DefaultExp1() }

// DefaultExp2 returns Table 2's parameters.
func DefaultExp2() Exp2Config { return experiment.DefaultExp2() }

// DefaultDecay returns experiment 3's compromise schedule.
func DefaultDecay() DecaySchedule { return workload.DefaultDecay() }

// RunExp1 executes the binary-event experiment.
func RunExp1(cfg Exp1Config) (Exp1Result, error) { return experiment.RunExp1(cfg) }

// RunExp2 executes the location experiments (2 and 3).
func RunExp2(cfg Exp2Config) (Exp2Result, error) { return experiment.RunExp2(cfg) }

// FigureIDs lists every reproducible figure.
func FigureIDs() []string { return experiment.FigureIDs() }

// GenerateFigure regenerates one paper figure by ID ("figure2" ...
// "figure11-roots").
func GenerateFigure(id string, opts FigureOptions) (Figure, error) {
	return experiment.Generate(id, opts)
}

// Closed-form analysis (§5).

// MajoritySuccess is the probability stateless majority voting identifies
// an event with n event neighbors, m faulty, correct-report probabilities
// p (correct nodes) and q (faulty nodes) — equations 1-3.
func MajoritySuccess(n, m int, p, q float64) float64 {
	return analysis.MajoritySuccess(n, m, p, q)
}

// MinInterCompromiseEvents solves the §5 transition equation for the
// minimum event spacing between compromises TIBFIT tolerates (figure 11).
func MinInterCompromiseEvents(lambda float64, n int) (float64, error) {
	return analysis.MinInterCompromiseEvents(lambda, n)
}

// KMax is the §5 bound ln(3)/λ on the rounds needed to absorb the final
// tolerable compromise.
func KMax(lambda float64) float64 { return analysis.KMax(lambda) }

// ExpectedTI returns the closed-form expected trust index after k judged
// reports for a node erring at errRate under (λ, f_r).
func ExpectedTI(lambda, fr, errRate float64, k int) float64 {
	return analysis.ExpectedTI(lambda, fr, errRate, k)
}

// ReportsUntilTI returns how many judged reports a node erring at errRate
// needs before sinking to the target trust index (ok=false if it never
// sinks).
func ReportsUntilTI(lambda, fr, errRate, targetTI float64) (int, bool) {
	return analysis.ReportsUntilTI(lambda, fr, errRate, targetTI)
}

// ReliabilityPoint is one sample of the semi-analytic reliability model.
type ReliabilityPoint = analysis.ReliabilityPoint

// TIBFITBinarySuccess is the semi-analytic per-event success probability
// of the trust-weighted vote given population trust levels (the §7
// "predict system reliability" model).
func TIBFITBinarySuccess(n, m int, p, q, tiCorrect, tiFaulty float64) float64 {
	return analysis.TIBFITBinarySuccess(n, m, p, q, tiCorrect, tiFaulty)
}

// ReliabilityCurve predicts TIBFIT's per-event success probability over a
// binary-experiment run via the self-consistent trust recursion.
func ReliabilityCurve(n, m, events int, p, missProb, lambda, fr float64) []ReliabilityPoint {
	return analysis.ReliabilityCurve(n, m, events, p, missProb, lambda, fr)
}

// PredictedRunAccuracy averages the reliability curve — comparable to a
// simulated run's measured accuracy.
func PredictedRunAccuracy(n, m, events int, p, missProb, lambda, fr float64) float64 {
	return analysis.PredictedRunAccuracy(n, m, events, p, missProb, lambda, fr)
}

// EventsToRecover predicts how many events the system needs before its
// per-event success probability reaches target (ok=false if never within
// horizon).
func EventsToRecover(n, m int, p, missProb, lambda, fr, target float64, horizon int) (int, bool) {
	return analysis.EventsToRecover(n, m, p, missProb, lambda, fr, target, horizon)
}

// Location-mode analytics.
type (
	// NeighborHist is the event-neighbor-count distribution of a
	// deployment's geometry.
	NeighborHist = analysis.NeighborHist
	// LocationParams carries per-node useful-report probabilities for the
	// location-mode success model.
	LocationParams = analysis.LocationParams
)

// NeighborCounts integrates the neighbor-count distribution over the
// deployment area on a deterministic evaluation lattice.
func NeighborCounts(area geo.Rect, sensors []Point, senseRadius float64, gridSteps int) (NeighborHist, error) {
	return analysis.NeighborCounts(area, sensors, senseRadius, gridSteps)
}

// LocationSuccess predicts the probability a uniformly placed event is
// detected within r_error, composing neighborhood geometry, the
// hypergeometric compromise split, and the trust-weighted vote.
func LocationSuccess(hist NeighborHist, popN, popFaulty int, p LocationParams) float64 {
	return analysis.LocationSuccess(hist, popN, popFaulty, p)
}

// Hypergeometric returns P(k faulty in a size-n neighborhood drawn from a
// population of popN sensors with popFaulty faulty).
func Hypergeometric(popN, popFaulty, n, k int) float64 {
	return analysis.Hypergeometric(popN, popFaulty, n, k)
}

// RayleighExceedProb is the probability 2-D Gaussian location noise with
// per-axis deviation sigma lands more than r away — Table 2's "error
// rate" column.
func RayleighExceedProb(sigma, r float64) float64 {
	return rng.RayleighExceedProb(sigma, r)
}

// HysteresisCycle describes a smart adversary's lie/recover oscillation.
type HysteresisCycle = analysis.HysteresisCycle

// Hysteresis computes the closed-form §4.2 oscillation: how long a smart
// adversary lies before its self-estimate hits lowerTI, how long it must
// behave to recover past upperTI, and the effective error rate that duty
// cycle leaves it — the mechanism behind figure 5.
func Hysteresis(lambda, fr, errLying, errHonest, lowerTI, upperTI float64) (HysteresisCycle, error) {
	return analysis.Hysteresis(lambda, fr, errLying, errHonest, lowerTI, upperTI)
}
