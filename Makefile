# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race test-schedulers conformance vet lint lint-fix bench bench-report bench-check bench-kernel profile figures validate examples fuzz soak serve load serve-smoke clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static-analysis suite (see docs/LINTING.md) on top of go vet.
lint: vet
	$(GO) run ./cmd/tibfit-lint ./...

# Apply the suite's suggested fixes in place (currently errwrap's
# sentinel-comparison rewrite); findings without a machine fix still fail.
lint-fix:
	$(GO) run ./cmd/tibfit-lint -fix ./...

test:
	$(GO) test ./...

# Full tree under the race detector; internal/experiment/parallel.go and
# internal/trace are the packages that actually exercise it.
test-race:
	$(GO) test -race ./...

# Short mode skips the million-event kernel stress test.
test-short:
	$(GO) test -short ./...

# The whole tree under each event-queue implementation (see
# docs/DETERMINISM.md: runs must be byte-identical under either).
test-schedulers:
	TIBFIT_SCHEDULER=heap $(GO) test ./...
	TIBFIT_SCHEDULER=calendar $(GO) test ./...

# Scheme-conformance harness under the race detector: every registered
# decision scheme against the trust-bound/isolation/purity/determinism
# contract, plus per-scheme campaign byte-identity across worker counts
# (see docs/SCHEMES.md).
conformance:
	$(GO) test -race -count=1 ./internal/decision/
	$(GO) test -race -count=1 -run 'TestScheme' ./internal/experiment/

bench:
	$(GO) test -bench=. -benchmem ./...

# Full harness run: benchmark suite + campaign speedup -> BENCH_<date>.json
# (see docs/PERFORMANCE.md).
bench-report:
	$(GO) run ./cmd/tibfit-bench

# Advisory regression check against the committed baseline (CI uses -quick).
BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
bench-check:
	$(GO) run ./cmd/tibfit-bench -quick -out /tmp/tibfit-bench-check.json \
		-baseline $(BASELINE) -threshold 25

# Just the kernel scheduler matrix: timer-churn populations and the
# skewed-horizon resize stress, heap vs calendar (see docs/PERFORMANCE.md).
bench-kernel:
	$(GO) run ./cmd/tibfit-bench -nocampaign -bench '^kernel/' \
		-out /tmp/tibfit-bench-kernel.json

# CPU+heap profiles of a large tibfit-net run, ready for `go tool pprof`.
profile:
	$(GO) run ./cmd/tibfit-net -nodes 100 -events 400 -rounds 8 \
		-cpuprofile cpu.out -memprofile mem.out
	@echo "wrote cpu.out and mem.out; inspect with: go tool pprof cpu.out"

# Regenerate every paper figure's data files into figures/.
figures:
	$(GO) run ./cmd/tibfit-figures -out figures -runs 3

# Rerun the paper's headline claims against the live simulation.
validate:
	$(GO) run ./cmd/tibfit-validate

examples:
	@for d in examples/*/; do echo "== $$d"; $(GO) run ./$$d || exit 1; done

# Randomized-seed chaos soak under the race detector (see
# docs/RESILIENCE.md). Override SOAK_SEED to replay a failure and
# SOAK_MODE (crash | byzantine | mixed) to pick the fault mix; a plain
# `go test` run of TestChaosSoak keeps the fixed default seed.
SOAK_SEED ?= $(shell date +%s)
SOAK_MODE ?= mixed
soak:
	TIBFIT_SOAK_SEED=$(SOAK_SEED) TIBFIT_SOAK_MODE=$(SOAK_MODE) \
		$(GO) test -race -count=1 -run TestChaosSoak -v ./internal/network/

# Run the online decision daemon (see docs/SERVING.md). Override
# SERVE_FLAGS to pick a scheme, tenant, unit, or snapshot file.
SERVE_FLAGS ?= -listen 127.0.0.1:8080 -tenant default
serve:
	$(GO) run ./cmd/tibfit-serve $(SERVE_FLAGS)

# Seeded load generator against a running daemon (see docs/SERVING.md).
LOAD_FLAGS ?= -addr http://127.0.0.1:8080 -tenants 4 -reports 10000
load:
	$(GO) run ./cmd/tibfit-load $(LOAD_FLAGS)

# End-to-end serving smoke (CI's serve-smoke job): build both binaries,
# boot the daemon, push SMOKE_REPORTS seeded reports across
# SMOKE_TENANTS sharded tenants from a closed-loop worker fleet over the
# line-format batch wire, require decisions on every tenant, roundtrip
# each tenant's sealed snapshot, and leave the latency histograms plus
# the sustained reports/sec figure in serve-latency.json. Override the
# SMOKE_* knobs to rescale; SMOKE_WIRE=json exercises the classic path.
SMOKE_DIR := /tmp/tibfit-serve-smoke
SMOKE_REPORTS ?= 1000000
SMOKE_TENANTS ?= 8
SMOKE_WORKERS ?= 4
SMOKE_SHARDS ?= 4
SMOKE_WIRE ?= batch
serve-smoke:
	$(GO) build -o $(SMOKE_DIR)/tibfit-serve ./cmd/tibfit-serve
	$(GO) build -o $(SMOKE_DIR)/tibfit-load ./cmd/tibfit-load
	@$(SMOKE_DIR)/tibfit-serve -listen 127.0.0.1:18080 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	sleep 1; \
	$(SMOKE_DIR)/tibfit-load -addr http://127.0.0.1:18080 \
		-tenants $(SMOKE_TENANTS) -reports $(SMOKE_REPORTS) \
		-nodes 32 -batch 256 -tout 5 \
		-workers $(SMOKE_WORKERS) -wire $(SMOKE_WIRE) -shards $(SMOKE_SHARDS) \
		-min-decisions $(SMOKE_TENANTS) -snapshot-roundtrip -out serve-latency.json

# Brief continuous fuzzing of the fuzz targets (5s each).
fuzz:
	$(GO) test -fuzz FuzzCluster -fuzztime 5s ./internal/cluster/
	$(GO) test -fuzz FuzzCircleSet -fuzztime 5s ./internal/cluster/
	$(GO) test -fuzz FuzzMajorityForms -fuzztime 5s ./internal/analysis/
	$(GO) test -fuzz FuzzBinomialPMF -fuzztime 5s ./internal/analysis/
	$(GO) test -fuzz FuzzLoadStation -fuzztime 5s ./internal/leach/
	$(GO) test -fuzz FuzzOpenSnapshot -fuzztime 5s ./internal/core/
	$(GO) test -fuzz FuzzGridRange -fuzztime 5s ./internal/geo/
	$(GO) test -fuzz FuzzGridNearest -fuzztime 5s ./internal/geo/

clean:
	rm -rf figures
	$(GO) clean -testcache
