package tibfit_test

import (
	"fmt"

	"github.com/tibfit/tibfit"
)

// The discrete-event kernel: schedule, cancel, run.
func ExampleNewKernel() {
	k := tibfit.NewKernel()
	k.After(2, func() { fmt.Println("second at", k.Now()) })
	k.After(1, func() { fmt.Println("first at", k.Now()) })
	cancelled := k.After(3, func() { fmt.Println("never") })
	cancelled.Stop()
	k.RunAll()
	// Output:
	// first at t=1.000
	// second at t=2.000
}

// Shadow cluster heads mask a lying aggregator: the base station's
// majority of three replicated conclusions stands.
func ExampleNewShadowPanel() {
	alwaysLie := tibfit.FlipCorruptor(1, func(float64) bool { return true })
	panel, err := tibfit.NewShadowPanel(
		tibfit.TrustParams{Lambda: 0.25, FaultRate: 0.1}, 3, alwaysLie, nil)
	if err != nil {
		panic(err)
	}
	rep := panel.Decide([]int{1, 2, 3}, []int{4})
	fmt.Printf("final=%t disagreed=%t demoted=%t\n",
		rep.Final.Occurred, rep.Disagreed, rep.Demoted)
	// Output:
	// final=true disagreed=true demoted=true
}

// The multi-hop relay forwards reports over a chain too long for one hop,
// retrying lost transmissions per link.
func ExampleNewMesh() {
	kernel := tibfit.NewKernel()
	cfg := tibfit.DefaultRadioConfig()
	cfg.Range = 12
	cfg.DropProb = 0
	radio := tibfit.NewRadio(cfg, kernel, tibfit.NewRand(1))

	pos := map[int]tibfit.Point{
		0: {X: 0}, 1: {X: 10}, 2: {X: 20}, 3: {X: 30},
	}
	mesh, err := tibfit.NewMesh(tibfit.DefaultRelayConfig(), radio, kernel, pos)
	if err != nil {
		panic(err)
	}
	if err := mesh.BuildRoutes(0); err != nil {
		panic(err)
	}
	mesh.Send(3, 0, func() { fmt.Println("report reached the sink") }, nil)
	kernel.RunAll()
	hops, _ := mesh.Hops(3, 0)
	fmt.Println("hops:", hops)
	// Output:
	// report reached the sink
	// hops: 3
}

// The closed-form hysteresis: a smart adversary that must keep its trust
// estimate above the isolation threshold can only lie a fraction of the
// time.
func ExampleHysteresis() {
	cycle, err := tibfit.Hysteresis(0.25, 0.1, 0.6, 0.02, 0.5, 0.8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("lies %.0f events, must behave %.0f — duty %.0f%%\n",
		cycle.LieEvents, cycle.RecoverEvents, cycle.Duty*100)
	// Output:
	// lies 4 events, must behave 24 — duty 14%
}
