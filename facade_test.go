package tibfit_test

// A walk across every facade constructor and helper, proving the public
// API surface is wired to the right internals. Behavior is tested in
// depth by the internal packages; this exercises the re-exports.

import (
	"math"
	"testing"

	"github.com/tibfit/tibfit"
)

func TestFacadeSubstrateWalkthrough(t *testing.T) {
	kernel := tibfit.NewKernel()
	rand := tibfit.NewRand(1)
	radio := tibfit.NewRadio(tibfit.DefaultRadioConfig(), kernel, rand.Split("radio"))
	if radio.LossRate() != 0 {
		t.Fatal("fresh radio has losses")
	}

	trust := tibfit.TrustParams{Lambda: 0.25, FaultRate: 0.1}
	station, err := tibfit.NewStation(trust)
	if err != nil {
		t.Fatal(err)
	}
	if station.TI(1) != 1 {
		t.Fatal("fresh station TI != 1")
	}

	nodeCfg := tibfit.NodeConfig{
		SigmaCorrect: 1.6, SigmaFaulty: 4.25, MissProb: 0.25,
		SenseRadius: 20, LowerTI: 0.5, UpperTI: 0.8, Trust: trust,
	}
	var nodes []*tibfit.SensorNode
	for i := 0; i < 9; i++ {
		n, err := tibfit.NewSensorNode(i,
			tibfit.Point{X: float64(10 + i%3*10), Y: float64(10 + i/3*10)},
			tibfit.Correct, nodeCfg, rand.Split(string(rune('a'+i))))
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}

	election, err := tibfit.NewElection(
		tibfit.LEACHConfig{HeadFraction: 0.3}, station, radio, nodes, rand.Split("el"))
	if err != nil {
		t.Fatal(err)
	}
	if res := election.Run(); len(res.Heads) == 0 {
		t.Fatal("no head elected")
	}

	table := tibfit.MustNewTrustTable(trust)
	binAgg, err := tibfit.NewBinaryAggregator(
		tibfit.BinaryAggregatorConfig{Tout: 1, Members: []int{0, 1, 2}},
		table, kernel, nil, nil, tibfit.NewTrace())
	if err != nil {
		t.Fatal(err)
	}
	binAgg.Deliver(0)
	binAgg.Deliver(1)

	locAgg, err := tibfit.NewLocationAggregator(
		tibfit.LocationAggregatorConfig{Tout: 1, RError: 5, SenseRadius: 20},
		table, kernel, tibfit.PosMap{0: {X: 10, Y: 10}}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	locAgg.Deliver(0, tibfit.Polar{R: 1})
	kernel.RunAll()
	if binAgg.Windows() != 1 || locAgg.Rounds() != 1 {
		t.Fatalf("windows=%d rounds=%d", binAgg.Windows(), locAgg.Rounds())
	}
}

func TestFacadeNetworkAndMobility(t *testing.T) {
	kernel := tibfit.NewKernel()
	rand := tibfit.NewRand(2)
	radio := tibfit.NewRadio(tibfit.DefaultRadioConfig(), kernel, rand.Split("radio"))

	netCfg := tibfit.DefaultNetworkConfig()
	var nodes []*tibfit.SensorNode
	nodeCfg := tibfit.NodeConfig{
		SigmaCorrect: 1.6, SigmaFaulty: 4.25, SenseRadius: netCfg.SenseRadius,
		LowerTI: 0.5, UpperTI: 0.8, Trust: netCfg.Trust,
	}
	for i := 0; i < 16; i++ {
		n, err := tibfit.NewSensorNode(i,
			tibfit.Point{X: float64(5 + i%4*10), Y: float64(5 + i/4*10)},
			tibfit.Correct, nodeCfg, rand.Split(string(rune('a'+i))))
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	net, err := tibfit.NewNetwork(netCfg, kernel, radio, nodes, rand.Split("net"), nil)
	if err != nil {
		t.Fatal(err)
	}
	net.InjectEvent(0, tibfit.Point{X: 15, Y: 15})
	kernel.RunAll()
	if len(net.Heads()) == 0 {
		t.Fatal("no heads")
	}

	field := tibfit.NewMobilityField()
	area := tibfit.NewArea(100, 100)
	wp, err := tibfit.NewWaypoint(area, tibfit.Point{X: 50, Y: 50}, 1, 2, rand.Split("wp"))
	if err != nil {
		t.Fatal(err)
	}
	field.Set(0, wp)
	if _, ok := field.At(0, 10); !ok {
		t.Fatal("field lookup failed")
	}
}

func TestFacadeAnalytics(t *testing.T) {
	if p := tibfit.RayleighExceedProb(4.25, 5); p < 0.49 || p > 0.51 {
		t.Fatalf("RayleighExceedProb = %v, want ~0.50", p)
	}
	if p := tibfit.Hypergeometric(10, 4, 2, 2); math.Abs(p-6.0/45) > 1e-12 {
		t.Fatalf("Hypergeometric = %v", p)
	}
	if ti := tibfit.ExpectedTI(0.25, 0.1, 0.5, 10); ti >= 1 || ti <= 0 {
		t.Fatalf("ExpectedTI = %v", ti)
	}
	if n, ok := tibfit.ReportsUntilTI(0.25, 0.1, 0.5, 0.3); !ok || n != 13 {
		t.Fatalf("ReportsUntilTI = %d, %t", n, ok)
	}
	if p := tibfit.TIBFITBinarySuccess(10, 7, 0.99, 0.5, 1, 0); p < 0.97 {
		t.Fatalf("TIBFITBinarySuccess = %v", p)
	}
	curve := tibfit.ReliabilityCurve(10, 7, 50, 0.99, 0.5, 0.1, 0.01)
	if len(curve) != 50 {
		t.Fatalf("curve length %d", len(curve))
	}
	if acc := tibfit.PredictedRunAccuracy(10, 7, 100, 0.99, 0.5, 0.1, 0.01); acc < 0.9 {
		t.Fatalf("PredictedRunAccuracy = %v", acc)
	}

	grid := []tibfit.Point{}
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			grid = append(grid, tibfit.Point{X: float64(5 + x*10), Y: float64(5 + y*10)})
		}
	}
	hist, err := tibfit.NeighborCounts(tibfit.NewArea(100, 100), grid, 20, 60)
	if err != nil {
		t.Fatal(err)
	}
	p := tibfit.LocationParams{PCorrect: 0.95, PFaulty: 0.5, TICorrect: 1, TIFaulty: 1}
	if s := tibfit.LocationSuccess(hist, 100, 30, p); s < 0.8 {
		t.Fatalf("LocationSuccess = %v", s)
	}

	summary := tibfit.Summarize([]float64{1, 2, 3})
	if summary.Mean != 2 {
		t.Fatalf("Summarize mean = %v", summary.Mean)
	}
	if iv := tibfit.Wilson95(90, 100); !iv.Contains(0.9) {
		t.Fatalf("Wilson95 = %v", iv)
	}
	if _, err := tibfit.Hysteresis(0.25, 0.1, 0.05, 0.01, 0.5, 0.8); err == nil {
		t.Fatal("never-sinking hysteresis accepted")
	}
}
