package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 0}, Point{1, 0}, 2},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Fatalf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
		if got := tt.p.Dist2(tt.q); !almostEqual(got, tt.want*tt.want, 1e-12) {
			t.Fatalf("Dist2(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
		}
	}
}

func TestWithin(t *testing.T) {
	p := Point{0, 0}
	if !p.Within(Point{3, 4}, 5) {
		t.Fatal("boundary point not within (inclusive)")
	}
	if p.Within(Point{3, 4}, 4.99) {
		t.Fatal("outside point reported within")
	}
}

func TestIsFinite(t *testing.T) {
	if !(Point{1, 2}).IsFinite() {
		t.Fatal("finite point reported non-finite")
	}
	for _, p := range []Point{
		{math.NaN(), 0}, {0, math.NaN()},
		{math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if p.IsFinite() {
			t.Fatalf("%v reported finite", p)
		}
	}
}

func TestPolarRoundTrip(t *testing.T) {
	origin := Point{10, -3}
	target := Point{-7, 22}
	off := ToPolar(origin, target)
	back := FromPolar(origin, off)
	if !almostEqual(back.X, target.X, 1e-9) || !almostEqual(back.Y, target.Y, 1e-9) {
		t.Fatalf("round trip %v -> %v -> %v", target, off, back)
	}
}

// Property: polar conversion round-trips for arbitrary finite points.
func TestPolarRoundTripProperty(t *testing.T) {
	check := func(ox, oy, tx, ty float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		origin := Point{clamp(ox), clamp(oy)}
		target := Point{clamp(tx), clamp(ty)}
		back := FromPolar(origin, ToPolar(origin, target))
		return back.Dist(target) < 1e-6*(1+target.Dist(Point{}))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: distance is symmetric, non-negative, and satisfies the
// triangle inequality.
func TestDistMetricProperty(t *testing.T) {
	check := func(ax, ay, bx, by, cx, cy float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		return a.Dist(b) >= 0 &&
			almostEqual(a.Dist(b), b.Dist(a), 1e-9) &&
			a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCentroid(t *testing.T) {
	if _, ok := Centroid(nil); ok {
		t.Fatal("Centroid(nil) reported ok")
	}
	cg, ok := Centroid([]Point{{0, 0}, {2, 0}, {1, 3}})
	if !ok || !almostEqual(cg.X, 1, 1e-12) || !almostEqual(cg.Y, 1, 1e-12) {
		t.Fatalf("Centroid = %v, %t", cg, ok)
	}
}

func TestWeightedCentroid(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}}
	cg, ok := WeightedCentroid(pts, []float64{1, 3})
	if !ok || !almostEqual(cg.X, 7.5, 1e-12) {
		t.Fatalf("WeightedCentroid = %v, %t", cg, ok)
	}
	if _, ok := WeightedCentroid(pts, []float64{1}); ok {
		t.Fatal("mismatched lengths reported ok")
	}
	if _, ok := WeightedCentroid(pts, []float64{0, 0}); ok {
		t.Fatal("zero weights reported ok")
	}
	if _, ok := WeightedCentroid(nil, nil); ok {
		t.Fatal("empty input reported ok")
	}
}

func TestRect(t *testing.T) {
	r := NewRect(100, 50)
	if r.Width() != 100 || r.Height() != 50 {
		t.Fatalf("rect dims = %v x %v", r.Width(), r.Height())
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{100, 50}) {
		t.Fatal("rect excludes its corners")
	}
	if r.Contains(Point{-0.1, 0}) || r.Contains(Point{0, 50.1}) {
		t.Fatal("rect contains outside points")
	}
	if got := r.Clamp(Point{-5, 60}); got != (Point{0, 50}) {
		t.Fatalf("Clamp = %v", got)
	}
	if got := r.Clamp(Point{3, 4}); got != (Point{3, 4}) {
		t.Fatalf("Clamp moved interior point: %v", got)
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1.234, 5.678}).String(); got != "(1.23, 5.68)" {
		t.Fatalf("String = %q", got)
	}
}
