// Package geo implements the 2-D geometry used throughout the TIBFIT
// simulation: absolute points on the deployment plane, polar offsets as
// carried in sensor event reports, distances, and centroids.
//
// Sensor nodes report event locations as (r, θ) relative to themselves
// (paper §3.2); the cluster head, which knows node positions, converts the
// polar offsets back to absolute coordinates before clustering.
package geo

import (
	"fmt"
	"math"
)

// Point is an absolute position on the deployment plane.
type Point struct {
	X, Y float64
}

// String renders the point with two decimals, the resolution at which the
// paper reports locations.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for comparison-heavy inner loops such as clustering.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Within reports whether q lies within radius r of p (inclusive).
func (p Point) Within(q Point, r float64) bool {
	return p.Dist2(q) <= r*r
}

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// Polar is an offset expressed as range and bearing, the representation
// event reports carry on the wire (paper §3.2).
type Polar struct {
	R     float64 // range from the reporting node
	Theta float64 // bearing in radians, measured from the +X axis
}

// ToPolar expresses the vector from origin to target as a polar offset.
func ToPolar(origin, target Point) Polar {
	d := target.Sub(origin)
	return Polar{R: math.Hypot(d.X, d.Y), Theta: math.Atan2(d.Y, d.X)}
}

// FromPolar resolves a polar offset against its origin, recovering the
// absolute location. This is the conversion the cluster head performs on
// each incoming location report.
func FromPolar(origin Point, off Polar) Point {
	return Point{
		X: origin.X + off.R*math.Cos(off.Theta),
		Y: origin.Y + off.R*math.Sin(off.Theta),
	}
}

// Centroid returns the arithmetic mean of the given points — the "center
// of gravity" (cg) of an event cluster in the paper's terminology. The
// second return value is false when pts is empty.
func Centroid(pts []Point) (Point, bool) {
	if len(pts) == 0 {
		return Point{}, false
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	return Point{X: sx / n, Y: sy / n}, true
}

// WeightedCentroid returns the weighted mean of pts with the given weights.
// It is used when merging overlapping cluster centers (paper §3.2 step 5).
// The second return value is false when the inputs are empty, mismatched in
// length, or the weights sum to zero.
func WeightedCentroid(pts []Point, weights []float64) (Point, bool) {
	if len(pts) == 0 || len(pts) != len(weights) {
		return Point{}, false
	}
	var sx, sy, sw float64
	for i, p := range pts {
		w := weights[i]
		sx += p.X * w
		sy += p.Y * w
		sw += w
	}
	//lint:allow floateq guards division when every weight is exactly zero; tiny sums are still valid weights
	if sw == 0 {
		return Point{}, false
	}
	return Point{X: sx / sw, Y: sy / sw}, true
}

// Rect is an axis-aligned rectangle, used to describe the deployment area.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning (0,0) to (w,h).
func NewRect(w, h float64) Rect {
	return Rect{Min: Point{0, 0}, Max: Point{w, h}}
}

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the horizontal extent of the rectangle.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of the rectangle.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Clamp returns p moved to the nearest point inside the rectangle.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}
