package geo

import (
	"math"
	"slices"
	"testing"

	"github.com/tibfit/tibfit/internal/rng"
)

// bruteRange is the reference pairwise scan Range replaces: ascending
// index order, exact Dist <= r predicate.
func bruteRange(pts []Point, p Point, r float64) []int {
	var out []int
	for i := range pts {
		if pts[i].Dist(p) <= r {
			out = append(out, i)
		}
	}
	return out
}

// bruteNearestClamped is the reference argmin loop: first strictly
// smaller clamped squared distance wins, so ties keep the lowest index.
func bruteNearestClamped(pts []Point, p Point, clamp float64) (int, bool) {
	if len(pts) == 0 {
		return 0, false
	}
	clamp2 := clamp * clamp
	best, bestE2 := -1, math.Inf(1)
	for i := range pts {
		e2 := pts[i].Dist2(p)
		if e2 < clamp2 {
			e2 = clamp2
		}
		if e2 < bestE2 {
			best, bestE2 = i, e2
		}
	}
	return best, true
}

// rssKey mimics the log-distance path-loss metric affiliation uses:
// non-decreasing in distance, with a clamp plateau below one unit.
func rssKey(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return 27 * math.Log10(d)
}

// bruteNearestByDist is the reference first-strict-winner scan over a
// monotone distance key.
func bruteNearestByDist(pts []Point, p Point, key func(float64) float64) (int, bool) {
	if len(pts) == 0 {
		return 0, false
	}
	best, bestKey := -1, math.Inf(1)
	for i := range pts {
		if k := key(pts[i].Dist(p)); k < bestKey {
			best, bestKey = i, k
		}
	}
	return best, true
}

func bruteAnyWithin2(pts []Point, p Point, r float64) bool {
	for i := range pts {
		if pts[i].Dist2(p) <= r*r {
			return true
		}
	}
	return false
}

// randField places n points uniformly on a w×w area; stride > 0 overwrites
// every stride-th point with an earlier one, manufacturing exact-tie
// clusters that stress the (distance, index) comparator.
func randField(src *rng.Source, n int, w float64, stride int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: src.Uniform(0, w), Y: src.Uniform(0, w)}
	}
	if stride > 0 {
		for i := stride; i < n; i += stride {
			pts[i] = pts[i-stride]
		}
	}
	return pts
}

func TestGridRangeMatchesBrute(t *testing.T) {
	src := rng.New(42)
	g := NewGrid()
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, stride := range []int{0, 3} {
			pts := randField(src.Split("field"), n, 100, stride)
			for _, cell := range []float64{2, 10, 250} {
				g.Rebuild(pts, cell)
				var out []int
				for q := 0; q < 50; q++ {
					p := Point{X: src.Uniform(-30, 130), Y: src.Uniform(-30, 130)}
					r := src.Uniform(0, 40)
					out = g.Range(p, r, out)
					want := bruteRange(pts, p, r)
					if !slices.Equal(out, want) {
						t.Fatalf("n=%d cell=%g p=%v r=%g: grid %v != brute %v", n, cell, p, r, out, want)
					}
					if got := g.AnyWithin2(p, r); got != bruteAnyWithin2(pts, p, r) {
						t.Fatalf("AnyWithin2 n=%d cell=%g p=%v r=%g: got %v", n, cell, p, r, got)
					}
				}
			}
		}
	}
}

func TestGridNearestMatchesBrute(t *testing.T) {
	src := rng.New(7)
	g := NewGrid()
	for _, n := range []int{1, 2, 13, 300, 2000} {
		for _, stride := range []int{0, 2} {
			pts := randField(src.Split("field"), n, 100, stride)
			for _, cell := range []float64{1.5, 12, 400} {
				g.Rebuild(pts, cell)
				for q := 0; q < 80; q++ {
					p := Point{X: src.Uniform(-50, 150), Y: src.Uniform(-50, 150)}
					for _, clamp := range []float64{0, 1, 25} {
						got, ok := g.NearestClamped(p, clamp)
						want, wok := bruteNearestClamped(pts, p, clamp)
						if ok != wok || got != want {
							t.Fatalf("n=%d cell=%g clamp=%g p=%v: grid (%d,%v) != brute (%d,%v)",
								n, cell, clamp, p, got, ok, want, wok)
						}
					}
					got, ok := g.NearestByDist(p, rssKey)
					want, wok := bruteNearestByDist(pts, p, rssKey)
					if ok != wok || got != want {
						t.Fatalf("NearestByDist n=%d cell=%g p=%v: grid (%d,%v) != brute (%d,%v)",
							n, cell, p, got, ok, want, wok)
					}
				}
			}
		}
	}
}

func TestGridNearestQueryAtPoint(t *testing.T) {
	pts := []Point{{0, 0}, {5, 5}, {5, 5}, {9, 1}}
	g := NewGrid()
	g.Rebuild(pts, 2)
	if got, ok := g.Nearest(Point{5, 5}); !ok || got != 1 {
		t.Fatalf("Nearest at duplicate point: got (%d,%v), want (1,true)", got, ok)
	}
	if got, ok := g.Nearest(Point{100, 100}); !ok || got != 1 {
		t.Fatalf("Nearest far outside bounds: got (%d,%v), want (1,true)", got, ok)
	}
}

func TestGridEmptyAndDegenerate(t *testing.T) {
	g := NewGrid()
	g.Rebuild(nil, 5)
	if out := g.Range(Point{1, 2}, 10, nil); len(out) != 0 {
		t.Fatalf("Range on empty grid: %v", out)
	}
	if _, ok := g.Nearest(Point{}); ok {
		t.Fatal("Nearest on empty grid reported ok")
	}
	if g.AnyWithin2(Point{}, 10) {
		t.Fatal("AnyWithin2 on empty grid reported true")
	}
	// All points coincident: one cell, every query resolves to index 0.
	pts := []Point{{3, 3}, {3, 3}, {3, 3}}
	g.Rebuild(pts, 1)
	if got, ok := g.Nearest(Point{50, -20}); !ok || got != 0 {
		t.Fatalf("coincident Nearest: got (%d,%v)", got, ok)
	}
	if out := g.Range(Point{3, 3}, 0, nil); !slices.Equal(out, []int{0, 1, 2}) {
		t.Fatalf("coincident Range r=0: %v", out)
	}
}

func TestGridRebuildReuses(t *testing.T) {
	g := NewGrid()
	src := rng.New(9)
	a := randField(src.Split("a"), 500, 100, 0)
	b := randField(src.Split("b"), 40, 10, 0)
	g.Rebuild(a, 5)
	if got := g.Len(); got != 500 {
		t.Fatalf("Len after first Rebuild: %d", got)
	}
	g.Rebuild(b, 5)
	var out []int
	out = g.Range(Point{5, 5}, 100, out)
	if want := bruteRange(b, Point{5, 5}, 100); !slices.Equal(out, want) {
		t.Fatalf("Range after Rebuild reuse: %v != %v", out, want)
	}
	allocs := testing.AllocsPerRun(20, func() { g.Rebuild(b, 5) })
	if allocs != 0 {
		t.Fatalf("steady-state Rebuild allocates %.0f objects/op, want 0", allocs)
	}
}

func TestGridCellCap(t *testing.T) {
	// Two points 1e9 apart with a 1e-3 cell would want 1e12 columns; the
	// cap must double the cell until the grid fits while queries stay exact.
	pts := []Point{{0, 0}, {1e9, 1e9}, {1e9 - 1, 1e9}}
	g := NewGrid()
	g.Rebuild(pts, 1e-3)
	if g.cols*g.rows > maxGridCells {
		t.Fatalf("cell cap ineffective: %d cells", g.cols*g.rows)
	}
	if got, ok := g.Nearest(Point{1e9, 1e9 - 0.25}); !ok || got != 1 {
		t.Fatalf("Nearest under capped cell: got (%d,%v), want (1,true)", got, ok)
	}
	if out := g.Range(Point{0, 0}, 2, nil); !slices.Equal(out, []int{0}) {
		t.Fatalf("Range under capped cell: %v", out)
	}
}

func TestAutoCell(t *testing.T) {
	if got := AutoCell(nil); got != 1 {
		t.Fatalf("AutoCell(nil) = %g", got)
	}
	if got := AutoCell([]Point{{4, 4}, {4, 4}}); got != 1 {
		t.Fatalf("AutoCell(coincident) = %g", got)
	}
	pts := randField(rng.New(3).Split("f"), 100, 50, 0)
	c := AutoCell(pts)
	if !(c > 0) || c > 50 {
		t.Fatalf("AutoCell = %g, want in (0, 50]", c)
	}
}
