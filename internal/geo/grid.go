package geo

import (
	"math"
	"slices"
)

// maxGridCells caps the bucket array so a pathological coordinate spread
// (a handful of points light-years apart with a tiny cell size) cannot
// allocate an unbounded grid. When the requested cell size would exceed
// the cap the cell is doubled until the grid fits; the result is still a
// pure function of the inputs, so determinism is unaffected.
const maxGridCells = 1 << 22

// Grid is a uniform spatial index over a fixed slice of points — the
// replacement for the O(n²) pairwise scans that cluster formation, event
// injection, and mesh neighbor resolution performed at field scale.
//
// Buckets are stored CSR-style: cell c owns order[start[c]:start[c+1]],
// and within a cell point indices are ascending. Every query visits its
// candidate cells in fixed row-major order (y outer, x inner) and breaks
// distance ties by the smaller point index, so results are byte-identical
// to the brute-force loops they replace (docs/DETERMINISM.md invariant 7).
// The differential fuzz targets in grid_fuzz_test.go pin that equivalence.
//
// A Grid is reusable: Rebuild re-indexes a new point set in place,
// recycling the bucket arrays, so steady-state re-indexing (e.g. k-means
// centers every refinement round) does not allocate.
type Grid struct {
	pts        []Point
	cell       float64
	min        Point
	cols, rows int

	start  []int32 // CSR offsets: len cols*rows+1
	order  []int32 // point indices grouped by cell, ascending within a cell
	cellOf []int32 // scratch: per-point cell index during Rebuild
	cursor []int32 // scratch: per-cell write cursor during Rebuild
}

// NewGrid returns an empty grid; call Rebuild before querying.
func NewGrid() *Grid { return &Grid{} }

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// CellSize returns the effective cell size after the Rebuild cap.
func (g *Grid) CellSize() float64 { return g.cell }

// AutoCell returns a cell size targeting O(1) points per cell for a point
// set with no natural query radius (e.g. cluster-head affiliation, where
// the head density — not a radio range — sets the scale): the larger
// bounding-box extent divided by ceil(sqrt(n)). Falls back to 1 for
// degenerate inputs (empty, coincident, or non-finite extents).
func AutoCell(pts []Point) float64 {
	if len(pts) == 0 {
		return 1
	}
	lo, hi := pts[0], pts[0]
	for _, p := range pts {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
	}
	ext := math.Max(hi.X-lo.X, hi.Y-lo.Y)
	c := ext / math.Ceil(math.Sqrt(float64(len(pts))))
	if !(c > 0) || math.IsInf(c, 0) {
		return 1
	}
	return c
}

// Rebuild re-indexes pts with the given cell size, reusing the grid's
// internal arrays. The grid keeps a reference to pts; callers must not
// mutate the slice while querying. cell must be positive and finite.
func (g *Grid) Rebuild(pts []Point, cell float64) {
	if !(cell > 0) || math.IsInf(cell, 0) {
		panic("geo: grid cell size must be positive and finite")
	}
	g.pts = pts
	n := len(pts)
	if n == 0 {
		g.cell = cell
		g.cols, g.rows = 0, 0
		g.start = g.start[:0]
		g.order = g.order[:0]
		return
	}
	lo, hi := pts[0], pts[0]
	for _, p := range pts {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
	}
	g.min = lo
	// Every stored point maps to [0, cols)×[0, rows): the division is
	// monotone, so int((p.X-lo.X)/cell) <= int((hi.X-lo.X)/cell) = cols-1.
	for {
		g.cols = int((hi.X-lo.X)/cell) + 1
		g.rows = int((hi.Y-lo.Y)/cell) + 1
		if g.cols <= maxGridCells && g.rows <= maxGridCells &&
			g.cols*g.rows <= maxGridCells {
			break
		}
		cell *= 2
	}
	g.cell = cell

	nc := g.cols * g.rows
	g.start = growInt32(g.start, nc+1)
	g.cursor = growInt32(g.cursor, nc)
	g.cellOf = growInt32(g.cellOf, n)
	g.order = growInt32(g.order, n)
	for c := range g.start[:nc+1] {
		g.start[c] = 0
	}
	for i, p := range pts {
		c := int32(g.cellY(p.Y)*g.cols + g.cellX(p.X))
		g.cellOf[i] = c
		g.start[c+1]++
	}
	for c := 0; c < nc; c++ {
		g.start[c+1] += g.start[c]
		g.cursor[c] = g.start[c]
	}
	// Iterating point indices in ascending order fills each cell's span
	// in ascending index order — the within-cell invariant queries rely on.
	for i := range pts {
		c := g.cellOf[i]
		g.order[g.cursor[c]] = int32(i)
		g.cursor[c]++
	}
}

// growInt32 returns s with length n, reallocating only when capacity is
// insufficient.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// cellX maps a stored (in-bounds) x coordinate to its column.
//
//hot:path
func (g *Grid) cellX(x float64) int { return int((x - g.min.X) / g.cell) }

// cellY maps a stored (in-bounds) y coordinate to its row.
//
//hot:path
func (g *Grid) cellY(y float64) int { return int((y - g.min.Y) / g.cell) }

// virtCell maps an arbitrary query coordinate to a virtual cell index,
// which may lie outside [0, cols)×[0, rows). math.Floor (not int
// truncation) keeps negative offsets on the correct side.
//
//hot:path
func (g *Grid) virtCellX(x float64) int { return int(math.Floor((x - g.min.X) / g.cell)) }

//hot:path
func (g *Grid) virtCellY(y float64) int { return int(math.Floor((y - g.min.Y) / g.cell)) }

// Range appends to out the indices of all points p with pts[i].Dist(p) <= r
// — the exact math.Hypot predicate of the brute-force loops it replaces —
// and returns out sorted ascending, the canonical order a brute scan over
// ascending indices produces. Candidate cells are visited in row-major
// order and padded by one cell on every side so float rounding at the disk
// boundary can never exclude a qualifying point.
//
//hot:path
func (g *Grid) Range(p Point, r float64, out []int) []int {
	out = out[:0]
	if len(g.pts) == 0 || !(r >= 0) {
		return out
	}
	x0, x1 := g.clampX(g.virtCellX(p.X-r)-1), g.clampX(g.virtCellX(p.X+r)+1)
	y0, y1 := g.clampY(g.virtCellY(p.Y-r)-1), g.clampY(g.virtCellY(p.Y+r)+1)
	for y := y0; y <= y1; y++ {
		row := y * g.cols
		for x := x0; x <= x1; x++ {
			c := row + x
			for _, id := range g.order[g.start[c]:g.start[c+1]] {
				if g.pts[id].Dist(p) <= r {
					out = append(out, int(id))
				}
			}
		}
	}
	slices.Sort(out)
	return out
}

// AnyWithin2 reports whether any indexed point q satisfies q.Dist2(p) <=
// r*r — the exact squared-distance predicate of the k-means seeding scan.
// The early exit is safe because the result is a bare boolean.
//
//hot:path
func (g *Grid) AnyWithin2(p Point, r float64) bool {
	if len(g.pts) == 0 || !(r >= 0) {
		return false
	}
	r2 := r * r
	x0, x1 := g.clampX(g.virtCellX(p.X-r)-1), g.clampX(g.virtCellX(p.X+r)+1)
	y0, y1 := g.clampY(g.virtCellY(p.Y-r)-1), g.clampY(g.virtCellY(p.Y+r)+1)
	for y := y0; y <= y1; y++ {
		row := y * g.cols
		for x := x0; x <= x1; x++ {
			c := row + x
			for _, id := range g.order[g.start[c]:g.start[c+1]] {
				if g.pts[id].Dist2(p) <= r2 {
					return true
				}
			}
		}
	}
	return false
}

// Nearest returns the index of the point minimizing (Dist2(p), index) —
// the argmin a brute loop keeping the first strictly-smaller squared
// distance produces. ok is false only when the grid is empty.
//
//hot:path
func (g *Grid) Nearest(p Point) (idx int, ok bool) { return g.NearestClamped(p, 0) }

// NearestClamped returns the index of the point minimizing
// (max(Dist2(p), clamp²), index). A positive clamp makes every point
// closer than clamp compare equal — the comparator LEACH affiliation
// needs, because RSS clamps distances below 1 m before the path-loss
// curve and is otherwise strictly decreasing in distance.
//
//hot:path
func (g *Grid) NearestClamped(p Point, clamp float64) (idx int, ok bool) {
	if len(g.pts) == 0 {
		return 0, false
	}
	clamp2 := clamp * clamp
	cx, cy := g.virtCellX(p.X), g.virtCellY(p.Y)
	maxRing := maxInt(maxInt(absInt(cx), absInt(g.cols-1-cx)),
		maxInt(absInt(cy), absInt(g.rows-1-cy)))
	best := -1
	bestE2 := math.Inf(1)
	for m := 0; m <= maxRing; m++ {
		best, bestE2 = g.scanRing(p, cx, cy, m, clamp2, best, bestE2)
		if best >= 0 && m >= 2 {
			// Points in rings > m lie at true distance >= m*cell; the
			// one-ring slack (m-1 instead of m) absorbs any float
			// rounding in the bound itself, so ties at the frontier are
			// still seen and resolved by the (e2, index) comparator.
			lb := float64(m-1) * g.cell
			if lb*lb > bestE2 {
				break
			}
		}
	}
	return best, true
}

// NearestByDist returns the index of the point minimizing
// (key(Dist(p)), index), where key must be non-decreasing in the true
// (math.Hypot) distance. It generalizes Nearest to monotone link metrics:
// LEACH affiliation maximizes received signal strength, which is
// RSS(Dist) with RSS non-increasing, so minimizing key = -RSS(Dist)
// reproduces the brute argmax bit-for-bit — including ties where float
// rounding of the path-loss curve maps distinct distances to the same
// RSS, which the comparator resolves to the smaller index exactly as a
// first-strict-winner scan over ascending indices does. ok is false only
// when the grid is empty.
//
//hot:path
func (g *Grid) NearestByDist(p Point, key func(d float64) float64) (idx int, ok bool) {
	if len(g.pts) == 0 {
		return 0, false
	}
	cx, cy := g.virtCellX(p.X), g.virtCellY(p.Y)
	maxRing := maxInt(maxInt(absInt(cx), absInt(g.cols-1-cx)),
		maxInt(absInt(cy), absInt(g.rows-1-cy)))
	best := -1
	bestKey := math.Inf(1)
	for m := 0; m <= maxRing; m++ {
		best, bestKey = g.scanRingBy(p, cx, cy, m, key, best, bestKey)
		if best >= 0 && m >= 2 {
			// Rings > m hold points at true distance >= m*cell (one-ring
			// slack as in NearestClamped); key is monotone, so once even
			// the slackened bound keys strictly above the incumbent no
			// later ring can win or tie.
			if key(float64(m-1)*g.cell) > bestKey {
				break
			}
		}
	}
	return best, true
}

// scanRingBy is scanRing for the NearestByDist comparator.
//
//hot:path
func (g *Grid) scanRingBy(p Point, cx, cy, m int, key func(d float64) float64, best int, bestKey float64) (int, float64) {
	if m == 0 {
		return g.scanCellBy(p, cx, cy, key, best, bestKey)
	}
	for y := cy - m; y <= cy+m; y++ {
		if y == cy-m || y == cy+m {
			for x := cx - m; x <= cx+m; x++ {
				best, bestKey = g.scanCellBy(p, x, y, key, best, bestKey)
			}
		} else {
			best, bestKey = g.scanCellBy(p, cx-m, y, key, best, bestKey)
			best, bestKey = g.scanCellBy(p, cx+m, y, key, best, bestKey)
		}
	}
	return best, bestKey
}

// scanCellBy folds one cell's points into the running (key, index) minimum.
//
//hot:path
func (g *Grid) scanCellBy(p Point, x, y int, key func(d float64) float64, best int, bestKey float64) (int, float64) {
	if x < 0 || x >= g.cols || y < 0 || y >= g.rows {
		return best, bestKey
	}
	c := y*g.cols + x
	for _, id := range g.order[g.start[c]:g.start[c+1]] {
		k := key(g.pts[id].Dist(p))
		//lint:allow floateq deterministic tie-break: equal keys fall through to the smaller index, mirroring the brute first-strict-win loop
		if k < bestKey || (k == bestKey && int(id) < best) {
			best, bestKey = int(id), k
		}
	}
	return best, bestKey
}

// scanRing scans the cells at Chebyshev distance m from (cx, cy) in
// row-major order, folding each candidate into the (e2, index) minimum.
//
//hot:path
func (g *Grid) scanRing(p Point, cx, cy, m int, clamp2 float64, best int, bestE2 float64) (int, float64) {
	if m == 0 {
		return g.scanCell(p, cx, cy, clamp2, best, bestE2)
	}
	for y := cy - m; y <= cy+m; y++ {
		if y == cy-m || y == cy+m {
			for x := cx - m; x <= cx+m; x++ {
				best, bestE2 = g.scanCell(p, x, y, clamp2, best, bestE2)
			}
		} else {
			best, bestE2 = g.scanCell(p, cx-m, y, clamp2, best, bestE2)
			best, bestE2 = g.scanCell(p, cx+m, y, clamp2, best, bestE2)
		}
	}
	return best, bestE2
}

// scanCell folds one cell's points into the running (e2, index) minimum.
//
//hot:path
func (g *Grid) scanCell(p Point, x, y int, clamp2 float64, best int, bestE2 float64) (int, float64) {
	if x < 0 || x >= g.cols || y < 0 || y >= g.rows {
		return best, bestE2
	}
	c := y*g.cols + x
	for _, id := range g.order[g.start[c]:g.start[c+1]] {
		e2 := g.pts[id].Dist2(p)
		if e2 < clamp2 {
			e2 = clamp2
		}
		//lint:allow floateq deterministic tie-break: equal keys fall through to the smaller index, mirroring the brute first-strict-min loop
		if e2 < bestE2 || (e2 == bestE2 && int(id) < best) {
			best, bestE2 = int(id), e2
		}
	}
	return best, bestE2
}

func (g *Grid) clampX(x int) int { return clampInt(x, 0, g.cols-1) }
func (g *Grid) clampY(y int) int { return clampInt(y, 0, g.rows-1) }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
