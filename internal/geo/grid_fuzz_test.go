package geo

import (
	"math"
	"slices"
	"testing"

	"github.com/tibfit/tibfit/internal/rng"
)

// fuzzField derives a deterministic point set from the fuzz inputs:
// count points uniform on a 100×100 area, with every stride-th point
// duplicated from an earlier one so exact distance ties are common.
func fuzzField(seed int64, count uint16, stride uint8) []Point {
	n := int(count)%512 + 1
	src := rng.New(seed).Split("fuzz-field")
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: src.Uniform(0, 100), Y: src.Uniform(0, 100)}
	}
	if s := int(stride) % 8; s > 1 {
		for i := s; i < n; i += s {
			pts[i] = pts[i-s]
		}
	}
	return pts
}

func fuzzOK(vals ...float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
			return false
		}
	}
	return true
}

// FuzzGridRange pins the grid's range query byte-identical to the
// brute-force pairwise scan: same indices, same (ascending) order, for
// arbitrary query centers, radii, and cell sizes over tie-heavy fields.
func FuzzGridRange(f *testing.F) {
	f.Add(int64(1), uint16(50), uint8(0), 2.0, 10.0, 10.0, 15.0)
	f.Add(int64(9), uint16(300), uint8(3), 12.0, -40.0, 160.0, 80.0)
	f.Add(int64(-4), uint16(2), uint8(2), 500.0, 50.0, 50.0, 0.0)
	f.Fuzz(func(t *testing.T, seed int64, count uint16, stride uint8, cell, qx, qy, r float64) {
		if !fuzzOK(cell, qx, qy, r) || cell <= 1e-6 || r < 0 {
			t.Skip()
		}
		pts := fuzzField(seed, count, stride)
		g := NewGrid()
		g.Rebuild(pts, cell)
		p := Point{X: qx, Y: qy}
		got := g.Range(p, r, nil)
		want := bruteRange(pts, p, r)
		if !slices.Equal(got, want) {
			t.Fatalf("Range(%v, %g): grid %v != brute %v", p, r, got, want)
		}
		if g.AnyWithin2(p, r) != bruteAnyWithin2(pts, p, r) {
			t.Fatalf("AnyWithin2(%v, %g) diverges from brute", p, r)
		}
	})
}

// FuzzGridNearest pins the grid's nearest-neighbor query (plain and
// RSS-clamped) to the brute-force argmin loop, including the
// lowest-index tie-break on exactly equal distances.
func FuzzGridNearest(f *testing.F) {
	f.Add(int64(1), uint16(50), uint8(0), 2.0, 10.0, 10.0, 0.0)
	f.Add(int64(3), uint16(400), uint8(2), 7.0, 120.0, -20.0, 1.0)
	f.Add(int64(-11), uint16(1), uint8(0), 1000.0, 50.0, 50.0, 30.0)
	f.Fuzz(func(t *testing.T, seed int64, count uint16, stride uint8, cell, qx, qy, clamp float64) {
		if !fuzzOK(cell, qx, qy, clamp) || cell <= 1e-6 || clamp < 0 {
			t.Skip()
		}
		pts := fuzzField(seed, count, stride)
		g := NewGrid()
		g.Rebuild(pts, cell)
		p := Point{X: qx, Y: qy}
		got, ok := g.NearestClamped(p, clamp)
		want, wok := bruteNearestClamped(pts, p, clamp)
		if ok != wok || got != want {
			t.Fatalf("NearestClamped(%v, %g): grid (%d,%v) != brute (%d,%v)", p, clamp, got, ok, want, wok)
		}
		got, ok = g.NearestByDist(p, rssKey)
		want, wok = bruteNearestByDist(pts, p, rssKey)
		if ok != wok || got != want {
			t.Fatalf("NearestByDist(%v): grid (%d,%v) != brute (%d,%v)", p, got, ok, want, wok)
		}
	})
}
