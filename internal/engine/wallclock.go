package engine

import (
	"sync"
	"time"

	"github.com/tibfit/tibfit/internal/sim"
)

// WallClock drives the decision pipeline against real time. It maps wall
// time onto the pipeline's virtual sim.Time axis — one virtual unit per
// Unit of wall time, counted from the clock's construction — and runs
// scheduled callbacks off OS one-shot timers.
//
// The kernel's ordering contract (docs/DETERMINISM.md invariant 8) is
// preserved by construction, not by trusting the OS: every AfterFunc
// pushes onto an internal (deadline, seq) min-heap, a single OS timer is
// armed for the earliest deadline only, and a firing drains the heap in
// (deadline, seq) order. Callbacks scheduled for coinciding deadlines
// therefore run in schedule order exactly as they do under *sim.Kernel,
// which is what makes the two drivers decision-equivalent on the same
// report stream (TestEngineMatchesBatchSim).
//
// Callbacks run on the timer goroutine by default. SetExec installs a
// serialization hook — engine.Instance uses it to run expiries under the
// same mutex as report ingest, so pipeline state is never touched from
// two goroutines at once. The heap lock is released before a callback
// runs, so callbacks may re-enter AfterFunc/Now freely.
type WallClock struct {
	unit time.Duration

	mu     sync.Mutex
	start  time.Time
	nowFn  func() time.Time // stubbed by tests; time.Now in production
	arm    bool             // false in deterministic tests: fire() is driven manually
	exec   func(func())
	events []wallEvent // min-heap ordered by (at, seq)
	seq    uint64
	timer  *time.Timer
	firing bool // a drain is active; at most one goroutine runs fire's loop
	closed bool
}

// wallEvent is one pending callback: its virtual deadline and its
// schedule sequence number, the same (time, seq) key the sim kernel
// totals-orders events by.
type wallEvent struct {
	at  sim.Time
	seq uint64
	fn  func()
}

// NewWallClock returns a wall clock mapping one virtual time unit to
// unit of real time (non-positive unit defaults to one second, the
// natural reading of the paper's T_out values as seconds).
func NewWallClock(unit time.Duration) *WallClock {
	if unit <= 0 {
		unit = time.Second
	}
	return &WallClock{
		unit:  unit,
		start: time.Now(),
		nowFn: time.Now,
		arm:   true,
	}
}

// SetExec installs the function that runs fired callbacks. The engine
// instance passes its lock-and-run helper so expiries serialize with
// ingest; nil restores direct execution on the timer goroutine.
func (w *WallClock) SetExec(exec func(func())) {
	w.mu.Lock()
	w.exec = exec
	w.mu.Unlock()
}

// Now returns the current virtual time: wall time since construction,
// in units.
func (w *WallClock) Now() sim.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nowLocked()
}

func (w *WallClock) nowLocked() sim.Time {
	return sim.Time(float64(w.nowFn().Sub(w.start)) / float64(w.unit))
}

// AfterFunc schedules fn to run d virtual units from now. Non-positive
// delays run at the current instant, after callbacks already scheduled
// for it — the same clamp-and-FIFO rule as sim.Kernel.After.
//
//hot:path
func (w *WallClock) AfterFunc(d sim.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	ev := wallEvent{at: w.nowLocked().Add(d), seq: w.seq, fn: fn}
	w.seq++
	w.events = append(w.events, ev)
	w.siftUp(len(w.events) - 1)
	if w.events[0].seq == ev.seq {
		w.rearmLocked()
	}
	w.mu.Unlock()
}

// Close stops the clock: the OS timer is cancelled and pending callbacks
// are dropped. Close is idempotent; AfterFunc after Close is a no-op.
func (w *WallClock) Close() {
	w.mu.Lock()
	w.closed = true
	if w.timer != nil {
		w.timer.Stop()
	}
	w.events = nil
	w.mu.Unlock()
}

// pending returns the number of scheduled, not-yet-fired callbacks.
func (w *WallClock) pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.events)
}

// rearmLocked points the single OS timer at the earliest deadline.
// Callers hold w.mu. A spurious wakeup (the timer fires after a nearer
// deadline replaced the one it was armed for) is harmless: fire
// re-checks dueness under the lock and re-arms.
func (w *WallClock) rearmLocked() {
	if !w.arm || w.firing || len(w.events) == 0 {
		// While a drain is active, re-arming would race a second timer
		// goroutine against it; the drain re-checks the heap top before
		// exiting and re-arms then.
		return
	}
	deadline := w.start.Add(time.Duration(float64(w.events[0].at) * float64(w.unit)))
	delay := deadline.Sub(w.nowFn())
	if delay < 0 {
		delay = 0
	}
	if w.timer == nil {
		w.timer = time.AfterFunc(delay, w.fire)
		return
	}
	w.timer.Stop()
	w.timer.Reset(delay)
}

// fire drains every due callback in (deadline, seq) order, then re-arms
// for the next pending deadline. The lock is dropped around each
// callback (they re-enter AfterFunc to open follow-up windows); dueness
// is re-evaluated from the heap top each iteration, so callbacks a
// firing schedules for the current instant run in this same drain, in
// order.
//
// The firing flag keeps the drain single-threaded: a timer goroutine
// that fires while another drain is mid-callback (a Reset in AfterFunc
// can race an already-fired timer) bails out immediately instead of
// popping events concurrently, which would let coinciding-deadline
// callbacks interleave out of (deadline, seq) order. The active drain
// re-checks the heap before exiting, so no due event is stranded.
func (w *WallClock) fire() {
	w.mu.Lock()
	if w.firing {
		w.mu.Unlock()
		return
	}
	w.firing = true
	for {
		if w.closed || len(w.events) == 0 {
			w.firing = false
			w.mu.Unlock()
			return
		}
		head := w.events[0]
		if head.at > w.nowLocked() {
			w.firing = false
			w.rearmLocked()
			w.mu.Unlock()
			return
		}
		w.popLocked()
		exec := w.exec
		w.mu.Unlock()
		if exec != nil {
			exec(head.fn)
		} else {
			head.fn()
		}
		w.mu.Lock()
	}
}

// evLess orders the heap by (deadline, seq) — the kernel's total order.
// Written without a float equality test: a.at and b.at tie exactly when
// neither is less than the other.
func evLess(a, b wallEvent) bool {
	if a.at < b.at {
		return true
	}
	if b.at < a.at {
		return false
	}
	return a.seq < b.seq
}

func (w *WallClock) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess(w.events[i], w.events[parent]) {
			return
		}
		w.events[i], w.events[parent] = w.events[parent], w.events[i]
		i = parent
	}
}

func (w *WallClock) popLocked() {
	n := len(w.events) - 1
	w.events[0] = w.events[n]
	w.events[n] = wallEvent{}
	w.events = w.events[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && evLess(w.events[l], w.events[min]) {
			min = l
		}
		if r < n && evLess(w.events[r], w.events[min]) {
			min = r
		}
		if min == i {
			return
		}
		w.events[i], w.events[min] = w.events[min], w.events[i]
		i = min
	}
}
