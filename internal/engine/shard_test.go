package engine

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/tibfit/tibfit/internal/aggregator"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/sim"
)

func TestShardMembers(t *testing.T) {
	// Round-robin over sorted order: sorted member i -> shard i%n.
	parts := ShardMembers([]int{30, 10, 50, 20, 40}, 2)
	want := [][]int{{10, 30, 50}, {20, 40}}
	if len(parts) != len(want) {
		t.Fatalf("parts = %v, want %v", parts, want)
	}
	for s := range want {
		if len(parts[s]) != len(want[s]) {
			t.Fatalf("shard %d = %v, want %v", s, parts[s], want[s])
		}
		for k := range want[s] {
			if parts[s][k] != want[s][k] {
				t.Fatalf("shard %d = %v, want %v", s, parts[s], want[s])
			}
		}
	}
	// Clamping: zero and negative mean 1; above the population, the
	// population.
	if got := ShardMembers([]int{1, 2, 3}, 0); len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("n=0: %v, want one shard of 3", got)
	}
	if got := ShardMembers([]int{1, 2, 3}, 99); len(got) != 3 {
		t.Fatalf("n=99: %d shards, want 3 (clamped to population)", len(got))
	}
}

// shardOwners maps each node to its shard index under ShardMembers.
func shardOwners(parts [][]int) map[int]int {
	owner := make(map[int]int)
	for s, part := range parts {
		for _, id := range part {
			owner[id] = s
		}
	}
	return owner
}

// TestShardedEngineMatchesBatchSim is the sharding correctness proof,
// extending the PR-9 online-vs-batch equivalence suite: one seeded
// report stream runs through (a) the batch reference — one shared scheme
// instance behind S independent aggregator.Binary pipelines on one sim
// kernel, each owning one location's member subset — and (b) the sharded
// Instance on a stub-driven WallClock, with per-shard scheme instances
// and per-shard locks. For every registered scheme the two must produce
// bit-identical decision streams, in the clock's (deadline, seq) fan-in
// order, and bit-identical final trust for every member. The shared
// scheme on the batch side is what makes this a real proof: splitting
// one scheme into per-shard instances is only sound because every
// registered scheme keeps per-node state, and any cross-node coupling a
// future scheme smuggled in would diverge here.
func TestShardedEngineMatchesBatchSim(t *testing.T) {
	const (
		nMembers = 11
		nShards  = 4
		nReports = 500
		tout     = sim.Duration(0.7)
		seed     = 43
	)
	stream := seededStream(seed, nReports, nMembers)
	parts := ShardMembers(members(nMembers), nShards)
	owner := shardOwners(parts)
	for _, name := range decision.Names() {
		t.Run(name, func(t *testing.T) {
			// Batch reference: S location pipelines, one shared scheme,
			// one kernel total order.
			k := sim.New()
			scheme, err := decision.New(name, engineParams())
			if err != nil {
				t.Fatal(err)
			}
			var batch []flatDecision
			aggs := make([]*aggregator.Binary, len(parts))
			for s, part := range parts {
				agg, err := aggregator.NewBinary(aggregator.BinaryConfig{
					Tout: tout, Members: part,
				}, scheme, k, func(o aggregator.BinaryOutcome) {
					batch = append(batch, flatten(o.Decision))
				}, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				aggs[s] = agg
			}
			for _, ev := range stream {
				ev := ev
				if _, err := k.At(ev.at, func() { aggs[owner[ev.node]].Deliver(ev.node) }); err != nil {
					t.Fatal(err)
				}
			}
			k.RunAll()

			// Online: the sharded instance on a stubbed wall clock.
			w, advance := stubClock()
			defer w.Close()
			var online []flatDecision
			var seqs []uint64
			inst, err := New(Config{
				Scheme:  name,
				Params:  engineParams(),
				Tout:    tout,
				Members: members(nMembers),
				Shards:  nShards,
				Clock:   w,
				OnDecision: func(d Decision) {
					seqs = append(seqs, d.Seq)
					online = append(online, flatDecision{
						occurred:   d.Occurred,
						ctiFor:     d.CTIFor,
						ctiAgainst: d.CTIAgainst,
						reporters:  intsKey(d.Reporters),
						silent:     intsKey(d.Silent),
					})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer inst.Close()
			if inst.Shards() != nShards {
				t.Fatalf("Shards() = %d, want %d", inst.Shards(), nShards)
			}
			for _, ev := range stream {
				advance(float64(ev.at))
				w.fire()
				if err := inst.Report(ev.node); err != nil {
					t.Fatal(err)
				}
			}
			advance(float64(stream[len(stream)-1].at) + float64(tout) + 1)
			w.fire() // drain every shard's final window

			if len(batch) != len(online) {
				t.Fatalf("batch made %d decisions, online %d", len(batch), len(online))
			}
			for i := range batch {
				if batch[i] != online[i] {
					t.Fatalf("decision %d diverges:\n batch  %+v\n online %+v", i, batch[i], online[i])
				}
			}
			for i, s := range seqs {
				if s != uint64(i+1) {
					t.Fatalf("fan-in seq %d at position %d: the ring must number decisions in drain order", s, i)
				}
			}
			for i := 0; i < nMembers; i++ {
				//lint:allow floateq equivalence demands bit-identical trust, not approximate
				if scheme.TI(i) != inst.TI(i) {
					t.Fatalf("final TI(%d): batch %v, online %v", i, scheme.TI(i), inst.TI(i))
				}
			}
			wantTable := make([]TrustEntry, nMembers)
			for i := range wantTable {
				wantTable[i] = TrustEntry{Node: i, TI: scheme.TI(i), Isolated: scheme.Isolated(i)}
			}
			gotTable := inst.TrustTable()
			for i := range wantTable {
				//lint:allow floateq equivalence demands bit-identical trust, not approximate
				if gotTable[i] != wantTable[i] {
					t.Fatalf("trust row %d: sharded %+v, want %+v", i, gotTable[i], wantTable[i])
				}
			}
		})
	}
}

// TestShardCountOnePinsLegacy pins Shards=1 as the legacy single-lock
// single-window instance: explicitly configured and default-configured
// instances must agree decision for decision on the same stream, and
// both report one shard.
func TestShardCountOnePinsLegacy(t *testing.T) {
	const (
		nMembers = 7
		nReports = 300
		tout     = sim.Duration(0.7)
	)
	stream := seededStream(7, nReports, nMembers)
	run := func(shards int) ([]flatDecision, *Instance) {
		w, advance := stubClock()
		var out []flatDecision
		inst, err := New(Config{
			Scheme:  decision.SchemeTIBFIT,
			Params:  engineParams(),
			Tout:    tout,
			Members: members(nMembers),
			Shards:  shards,
			Clock:   w,
			OnDecision: func(d Decision) {
				out = append(out, flatDecision{
					occurred:   d.Occurred,
					ctiFor:     d.CTIFor,
					ctiAgainst: d.CTIAgainst,
					reporters:  intsKey(d.Reporters),
					silent:     intsKey(d.Silent),
				})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range stream {
			advance(float64(ev.at))
			w.fire()
			if err := inst.Report(ev.node); err != nil {
				t.Fatal(err)
			}
		}
		advance(float64(stream[len(stream)-1].at) + float64(tout) + 1)
		w.fire()
		return out, inst
	}
	explicit, instE := run(1)
	defer instE.Close()
	deflt, instD := run(0)
	defer instD.Close()
	if instE.Shards() != 1 || instD.Shards() != 1 {
		t.Fatalf("Shards() = %d/%d, want 1/1", instE.Shards(), instD.Shards())
	}
	if len(explicit) == 0 || len(explicit) != len(deflt) {
		t.Fatalf("decision counts diverge: explicit %d, default %d", len(explicit), len(deflt))
	}
	for i := range explicit {
		if explicit[i] != deflt[i] {
			t.Fatalf("decision %d diverges between Shards=1 and default", i)
		}
	}
}

// TestInstanceConcurrentStress hammers one sharded instance from many
// goroutines under the race detector: parallel single reports, batches
// crossing shard boundaries, decision polls, trust reads, and sealed
// snapshot/restore cycles, with real wall-clock expiries firing
// throughout. The assertions are deliberately weak — counters move, no
// call panics or deadlocks — because the property under test is the
// locking discipline, not the arithmetic (the equivalence suite owns
// that).
func TestInstanceConcurrentStress(t *testing.T) {
	const (
		nMembers = 64
		nShards  = 8
		writers  = 4
		batches  = 400
	)
	inst, err := New(Config{
		Scheme:  decision.SchemeTIBFIT,
		Params:  engineParams(),
		Tout:    2,
		Members: members(nMembers),
		Shards:  nShards,
		Clock:   NewWallClock(200 * time.Microsecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	var writersWG, pollersWG sync.WaitGroup
	done := make(chan struct{})
	for wkr := 0; wkr < writers; wkr++ {
		writersWG.Add(1)
		go func(seed int64) {
			defer writersWG.Done()
			src := rng.New(seed)
			batch := make([]int, 16)
			for i := 0; i < batches; i++ {
				for j := range batch {
					batch[j] = src.Intn(nMembers)
				}
				if i%7 == 0 {
					batch[src.Intn(len(batch))] = nMembers + 1000 // one bad row
				}
				res := inst.ReportMany(batch)
				if res.Err != nil && !errors.Is(res.Err, ErrUnknownNode) {
					t.Errorf("ReportMany: %v", res.Err)
					return
				}
				if err := inst.Report(src.Intn(nMembers)); err != nil {
					t.Errorf("Report: %v", err)
					return
				}
			}
		}(int64(wkr + 1))
	}
	pollersWG.Add(1)
	go func() { // decision and trust pollers
		defer pollersWG.Done()
		var since uint64
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, d := range inst.DecisionsSince(since) {
				since = d.Seq
			}
			_ = inst.TrustTable()
			_ = inst.IsolatedNodes()
			_ = inst.TI(3)
		}
	}()
	pollersWG.Add(1)
	go func() { // snapshot/restore cycles
		defer pollersWG.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			blob, err := inst.SealedSnapshot()
			if err != nil {
				t.Errorf("SealedSnapshot: %v", err)
				return
			}
			if i%2 == 1 {
				if err := inst.RestoreSealed(blob); err != nil && !errors.Is(err, ErrSnapshotStale) {
					t.Errorf("RestoreSealed: %v", err)
					return
				}
			}
		}
	}()
	// Writers run to completion with the pollers hammering alongside;
	// then the pollers stand down and the instance closes under them.
	writersWG.Wait()
	close(done)
	pollersWG.Wait()
	if got := inst.ReportCount(); got == 0 {
		t.Fatal("no reports accepted under stress")
	}
	inst.Close()
	if err := inst.Report(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Report = %v, want ErrClosed", err)
	}
}
