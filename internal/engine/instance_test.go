package engine

import (
	"errors"
	"math"
	"sort"
	"testing"

	"github.com/tibfit/tibfit/internal/aggregator"
	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/leach"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/sim"
)

// engineParams mirrors the decision package's conformance parameters so
// the same threshold semantics are exercised through the instance.
func engineParams() decision.Params {
	return decision.Params{Trust: core.Params{Lambda: 0.25, FaultRate: 0.1, RemovalThreshold: 0.5}}
}

func members(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// simInstance builds an instance driven by a fresh sim kernel.
func simInstance(t *testing.T, scheme string, tout sim.Duration, n int) (*Instance, *sim.Kernel) {
	t.Helper()
	k := sim.New()
	inst, err := New(Config{
		Scheme:  scheme,
		Params:  engineParams(),
		Tout:    tout,
		Members: members(n),
		Clock:   k,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst, k
}

// TestInstanceConformanceAllSchemes runs the scheme-conformance
// contract through engine.Instance for every registered scheme: a
// seeded report stream drives windows on a sim kernel, and the
// instance's trust observables must honour the bounds, isolation, and
// listing rules the decision-level harness pins.
func TestInstanceConformanceAllSchemes(t *testing.T) {
	const nMembers = 7
	threshold := engineParams().Trust.RemovalThreshold
	for _, name := range decision.Names() {
		t.Run(name, func(t *testing.T) {
			inst, k := simInstance(t, name, 1, nMembers)
			defer inst.Close()
			// 120 windows: in round r, node i reports iff (r+i)%3 != 0,
			// so every node is judged both ways many times and node
			// behaviour differs enough to cross thresholds.
			for r := 0; r < 120; r++ {
				for i := 0; i < nMembers; i++ {
					if (r+i)%3 == 0 {
						continue
					}
					err := inst.Report(i)
					if err != nil && !errors.Is(err, ErrUnknownNode) {
						t.Fatal(err)
					}
				}
				k.RunAll()
				for i := 0; i < nMembers; i++ {
					ti := inst.TI(i)
					if ti < 0 || ti > 1 || math.IsNaN(ti) {
						t.Fatalf("round %d: TI(%d) out of [0,1]: %v", r, i, ti)
					}
				}
			}
			if got := inst.DecisionCount(); got == 0 {
				t.Fatal("no decisions after 120 report rounds")
			}
			iso := inst.IsolatedNodes()
			if !sort.IntsAreSorted(iso) {
				t.Fatalf("IsolatedNodes not sorted: %v", iso)
			}
			table := inst.TrustTable()
			if len(table) != nMembers {
				t.Fatalf("trust table has %d rows, want %d", len(table), nMembers)
			}
			for _, row := range table {
				if row.TI <= threshold && !row.Isolated && row.TI < 1 {
					// A judged node at or below the threshold must be
					// isolated; TI 1 means the scheme is stateless.
					t.Fatalf("node %d at TI %v <= %v but not isolated", row.Node, row.TI, threshold)
				}
			}
		})
	}
}

// streamEvent is one report in the seeded equivalence stream.
type streamEvent struct {
	at   sim.Time
	node int
}

// seededStream generates report arrivals with irregular spacing so no
// report ever coincides exactly with a window expiry (coincidence
// semantics get their own dedicated tests).
func seededStream(seed int64, n, nodes int) []streamEvent {
	src := rng.New(seed)
	out := make([]streamEvent, n)
	t := sim.Time(0)
	for i := range out {
		t = t.Add(sim.Duration(0.05 + 0.4*src.Float64()))
		out[i] = streamEvent{at: t, node: src.Intn(nodes)}
	}
	return out
}

// flatDecision strips a Decision to the fields both drivers must agree
// on bit for bit.
type flatDecision struct {
	occurred           bool
	ctiFor, ctiAgainst float64
	reporters, silent  string
}

func flatten(d core.BinaryDecision) flatDecision {
	return flatDecision{
		occurred:   d.Occurred,
		ctiFor:     d.CTIFor,
		ctiAgainst: d.CTIAgainst,
		reporters:  intsKey(d.Reporters),
		silent:     intsKey(d.Silent),
	}
}

func intsKey(ids []int) string {
	key := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		key = append(key, byte(id), byte(id>>8), ',')
	}
	return string(key)
}

// TestEngineMatchesBatchSim feeds one seeded report stream through the
// batch path (aggregator.Binary directly on a sim kernel) and through
// engine.Instance on a stub-driven WallClock, and asserts both make
// identical decisions and end with identical trust tables — for every
// registered scheme. This is the refactor's payoff criterion: the
// online engine is the batch pipeline, not a reimplementation.
func TestEngineMatchesBatchSim(t *testing.T) {
	const (
		nMembers = 9
		nReports = 400
		tout     = sim.Duration(0.7)
		seed     = 42
	)
	stream := seededStream(seed, nReports, nMembers)
	for _, name := range decision.Names() {
		t.Run(name, func(t *testing.T) {
			// Batch: deliveries scheduled as kernel events, windows and
			// expiries interleaved by the kernel's total order.
			k := sim.New()
			scheme, err := decision.New(name, engineParams())
			if err != nil {
				t.Fatal(err)
			}
			var batch []flatDecision
			agg, err := aggregator.NewBinary(aggregator.BinaryConfig{
				Tout: tout, Members: members(nMembers),
			}, scheme, k, func(o aggregator.BinaryOutcome) {
				batch = append(batch, flatten(o.Decision))
			}, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range stream {
				ev := ev
				if _, err := k.At(ev.at, func() { agg.Deliver(ev.node) }); err != nil {
					t.Fatal(err)
				}
			}
			k.RunAll()

			// Online: the same stream through an Instance on a stubbed
			// wall clock, advanced to each arrival in order.
			w, advance := stubClock()
			defer w.Close()
			var online []flatDecision
			inst, err := New(Config{
				Scheme:  name,
				Params:  engineParams(),
				Tout:    tout,
				Members: members(nMembers),
				Clock:   w,
				OnDecision: func(d Decision) {
					online = append(online, flatDecision{
						occurred:   d.Occurred,
						ctiFor:     d.CTIFor,
						ctiAgainst: d.CTIAgainst,
						reporters:  intsKey(d.Reporters),
						silent:     intsKey(d.Silent),
					})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer inst.Close()
			for _, ev := range stream {
				advance(float64(ev.at))
				w.fire() // run any expiry due before this arrival
				if err := inst.Report(ev.node); err != nil {
					t.Fatal(err)
				}
			}
			advance(float64(stream[len(stream)-1].at) + float64(tout) + 1)
			w.fire() // drain the final window

			if len(batch) != len(online) {
				t.Fatalf("batch made %d decisions, online %d", len(batch), len(online))
			}
			for i := range batch {
				if batch[i] != online[i] {
					t.Fatalf("decision %d diverges:\n batch  %+v\n online %+v", i, batch[i], online[i])
				}
			}
			for i := 0; i < nMembers; i++ {
				//lint:allow floateq equivalence demands bit-identical trust, not approximate
				if scheme.TI(i) != inst.TI(i) {
					t.Fatalf("final TI(%d): batch %v, online %v", i, scheme.TI(i), inst.TI(i))
				}
			}
		})
	}
}

// TestSameInstantOrderSimKernel pins the documented (time, seq)
// resolution of a report landing exactly on its window's expiry, on the
// sim-kernel driver: a report event scheduled before the window opened
// is delivered first and joins the closing window; one scheduled after
// the expiry was armed fires second and opens the next window.
func TestSameInstantOrderSimKernel(t *testing.T) {
	const tout = sim.Duration(5)

	// Case a: the t=5 report was scheduled before the window opened, so
	// its seq precedes the expiry's — it joins window 1.
	inst, k := simInstance(t, decision.SchemeTIBFIT, tout, 2)
	if _, err := k.At(0, func() { _ = inst.Report(0) }); err != nil {
		t.Fatal(err)
	}
	if _, err := k.At(5, func() { _ = inst.Report(1) }); err != nil {
		t.Fatal(err)
	}
	k.RunAll()
	ds := inst.DecisionsSince(0)
	if len(ds) != 1 || intsKey(ds[0].Reporters) != intsKey([]int{0, 1}) {
		t.Fatalf("pre-scheduled same-instant report: decisions %+v, want one window with reporters [0 1]", ds)
	}
	inst.Close()

	// Case b: the t=5 report is scheduled at t=2, after the expiry was
	// armed at t=0 — the expiry's seq precedes it, so window 1 closes
	// with reporter 0 alone and the report opens window 2.
	inst, k = simInstance(t, decision.SchemeTIBFIT, tout, 2)
	defer inst.Close()
	if _, err := k.At(0, func() { _ = inst.Report(0) }); err != nil {
		t.Fatal(err)
	}
	if _, err := k.At(2, func() {
		if _, err := k.At(5, func() { _ = inst.Report(1) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.RunAll()
	ds = inst.DecisionsSince(0)
	if len(ds) != 2 {
		t.Fatalf("post-armed same-instant report: %d decisions, want 2 (expiry first, report reopens)", len(ds))
	}
	if intsKey(ds[0].Reporters) != intsKey([]int{0}) || intsKey(ds[1].Reporters) != intsKey([]int{1}) {
		t.Fatalf("post-armed same-instant report: windows %+v, want [0] then [1]", ds)
	}
}

// TestSameInstantOrderWallClock pins the same contract on the wall
// driver, where ingest is a direct call rather than a scheduled event:
// a Report that reaches the instance before the due expiry is processed
// joins the closing window; one after it opens the next.
func TestSameInstantOrderWallClock(t *testing.T) {
	const tout = sim.Duration(5)
	build := func(t *testing.T) (*Instance, *WallClock, func(float64)) {
		w, advance := stubClock()
		inst, err := New(Config{
			Scheme: decision.SchemeTIBFIT, Params: engineParams(),
			Tout: tout, Members: members(2), Clock: w,
		})
		if err != nil {
			t.Fatal(err)
		}
		return inst, w, advance
	}

	// Case a: ingest wins the race to the instant — joins window 1.
	inst, w, advance := build(t)
	_ = inst.Report(0)
	advance(5)
	_ = inst.Report(1) // expiry not yet processed
	w.fire()
	ds := inst.DecisionsSince(0)
	if len(ds) != 1 || intsKey(ds[0].Reporters) != intsKey([]int{0, 1}) {
		t.Fatalf("ingest-before-expiry: decisions %+v, want one window with reporters [0 1]", ds)
	}
	inst.Close()

	// Case b: the expiry is processed first — the report opens window 2.
	inst, w, advance = build(t)
	defer inst.Close()
	_ = inst.Report(0)
	advance(5)
	w.fire()
	_ = inst.Report(1)
	advance(11)
	w.fire()
	ds = inst.DecisionsSince(0)
	if len(ds) != 2 || intsKey(ds[0].Reporters) != intsKey([]int{0}) ||
		intsKey(ds[1].Reporters) != intsKey([]int{1}) {
		t.Fatalf("expiry-before-ingest: decisions %+v, want [0] then [1]", ds)
	}
}

func TestInstanceRejectsBadConfig(t *testing.T) {
	k := sim.New()
	if _, err := New(Config{Scheme: "tibfit", Params: engineParams(), Tout: 1, Members: members(2)}); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := New(Config{Scheme: "magic", Params: engineParams(), Tout: 1, Members: members(2), Clock: k}); !errors.Is(err, decision.ErrUnknownScheme) {
		t.Fatalf("unknown scheme: err = %v, want ErrUnknownScheme", err)
	}
	if _, err := New(Config{Scheme: "tibfit", Params: engineParams(), Tout: 0, Members: members(2), Clock: k}); err == nil {
		t.Fatal("zero Tout accepted")
	}
	if _, err := New(Config{Scheme: "tibfit", Tout: 1, Members: members(2), Clock: k}); err == nil {
		t.Fatal("zero trust params accepted")
	}
}

func TestInstanceRejectsUnknownNodeAndClosed(t *testing.T) {
	inst, _ := simInstance(t, decision.SchemeTIBFIT, 1, 3)
	if err := inst.Report(99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown node: err = %v, want ErrUnknownNode", err)
	}
	// A batch keeps going past unknown nodes: 99 is one bad row, not a
	// poisoned batch, so 0, 1, and 2 all land.
	if res := inst.ReportMany([]int{0, 1, 99, 2}); res.Accepted != 3 ||
		res.FirstErr != 2 || !errors.Is(res.Err, ErrUnknownNode) {
		t.Fatalf("ReportMany = %+v, want Accepted 3, FirstErr 2, ErrUnknownNode", res)
	}
	if res := inst.ReportMany([]int{0, 1, 2}); res.Accepted != 3 || res.FirstErr != -1 || res.Err != nil {
		t.Fatalf("clean batch: ReportMany = %+v, want Accepted 3, FirstErr -1, nil error", res)
	}
	inst.Close()
	inst.Close() // idempotent
	if err := inst.Report(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed: err = %v, want ErrClosed", err)
	}
	if res := inst.ReportMany([]int{0, 1}); res.Accepted != 0 || !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("closed batch: ReportMany = %+v, want Accepted 0, ErrClosed", res)
	}
	if _, err := inst.SealedSnapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed snapshot: err = %v, want ErrClosed", err)
	}
}

// runWindows drives n single-reporter windows through the instance.
func runWindows(t *testing.T, inst *Instance, k *sim.Kernel, n, reporter int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := inst.Report(reporter); err != nil {
			t.Fatal(err)
		}
		k.RunAll()
	}
}

func TestInstanceSnapshotRestoreRoundTrip(t *testing.T) {
	for _, name := range decision.Names() {
		t.Run(name, func(t *testing.T) {
			inst, k := simInstance(t, name, 1, 4)
			defer inst.Close()
			// Node 3 reports alone repeatedly: the silent majority wins,
			// so node 3 is judged wrong and loses trust.
			runWindows(t, inst, k, 6, 3)
			blob, err := inst.SealedSnapshot()
			if err != nil {
				t.Fatal(err)
			}

			restored, _ := simInstance(t, name, 1, 4)
			defer restored.Close()
			if err := restored.RestoreSealed(blob); err != nil {
				t.Fatal(err)
			}
			want, got := inst.TrustTable(), restored.TrustTable()
			for i := range want {
				//lint:allow floateq restore must reproduce persisted trust exactly
				if want[i] != got[i] {
					t.Fatalf("trust row %d: restored %+v, want %+v", i, got[i], want[i])
				}
			}

			// Replaying the same blob is stale: versions are monotonic.
			if err := restored.RestoreSealed(blob); !errors.Is(err, ErrSnapshotStale) {
				t.Fatalf("replay: err = %v, want ErrSnapshotStale", err)
			}
		})
	}
}

func TestInstanceRestoreRejectsBadBlobs(t *testing.T) {
	inst, k := simInstance(t, decision.SchemeTIBFIT, 1, 4)
	defer inst.Close()
	runWindows(t, inst, k, 3, 2)
	blob, err := inst.SealedSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	fresh, _ := simInstance(t, decision.SchemeTIBFIT, 1, 4)
	defer fresh.Close()

	// Tampered: flip one payload byte, checksum verification fails.
	bad := append([]byte(nil), blob...)
	bad[len(bad)-1] ^= 0x40
	if err := fresh.RestoreSealed(bad); !errors.Is(err, core.ErrSnapshotCorrupt) {
		t.Fatalf("tampered blob: err = %v, want ErrSnapshotCorrupt", err)
	}

	// Wrong role: a term-end upload blob is not restorable state.
	station, err := leach.NewStation(engineParams().Trust)
	if err != nil {
		t.Fatal(err)
	}
	upload := core.SealSnapshot(station.SealKey(), 9, core.RoleUpload, map[int]core.Record{1: {V: 2}})
	if err := fresh.RestoreSealed(upload); !errors.Is(err, leach.ErrSnapshotReplay) {
		t.Fatalf("upload-role blob: err = %v, want ErrSnapshotReplay", err)
	}

	// Truncated.
	if err := fresh.RestoreSealed(blob[:3]); !errors.Is(err, core.ErrSnapshotCorrupt) {
		t.Fatalf("truncated blob: err = %v, want ErrSnapshotCorrupt", err)
	}
}

func TestInstanceDecisionRing(t *testing.T) {
	k := sim.New()
	inst, err := New(Config{
		Scheme: decision.SchemeTIBFIT, Params: engineParams(),
		Tout: 1, Members: members(2), Clock: k, DecisionLog: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	// Both members report every window: everyone is judged correct, so
	// nobody decays into isolation and all ten windows open.
	for i := 0; i < 10; i++ {
		if res := inst.ReportMany([]int{0, 1}); res.Err != nil {
			t.Fatal(res.Err)
		}
		k.RunAll()
	}
	if got := inst.DecisionCount(); got != 10 {
		t.Fatalf("DecisionCount = %d, want 10", got)
	}
	ds := inst.DecisionsSince(0)
	if len(ds) != 4 || ds[0].Seq != 7 || ds[3].Seq != 10 {
		t.Fatalf("ring window: got %d decisions starting at seq %d, want 4 starting at 7",
			len(ds), ds[0].Seq)
	}
	ds = inst.DecisionsSince(8)
	if len(ds) != 2 || ds[0].Seq != 9 || ds[1].Seq != 10 {
		t.Fatalf("DecisionsSince(8): %+v, want seqs 9, 10", ds)
	}
	if ds := inst.DecisionsSince(10); ds != nil {
		t.Fatalf("DecisionsSince(latest) = %+v, want nil", ds)
	}
}
