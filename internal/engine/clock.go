// Package engine is the online decision engine: the trust-indexed
// windowing pipeline of internal/aggregator lifted off the batch
// simulation kernel and behind a narrow Clock seam, so the same
// arbitration, feedback, and snapshot machinery that reproduces the
// paper's figures also serves live traffic (cmd/tibfit-serve).
//
// The package has three pieces:
//
//   - Clock, the timer seam the pipeline is driven through. The
//     simulation kernel is one implementation (*sim.Kernel satisfies
//     Clock directly via Kernel.AfterFunc), which is how the batch path
//     stays byte-identical: it runs the exact code it always ran.
//   - WallClock, the real-time driver: one-shot callbacks against the
//     OS clock, with the kernel's (deadline, seq) tie order enforced by
//     an internal heap rather than trusting OS timer wakeup order.
//   - Instance, one tenant's trust namespace: a decision scheme from the
//     registry, a binary aggregation pipeline on a Clock, the
//     base-station trust ledger (leach.Station) as the durable home of
//     per-node state, and sealed snapshot/restore built on
//     core.SealSnapshot/OpenSnapshot — the §2 CH-handoff machinery
//     reused as the service's persistence format.
//
// See docs/SERVING.md for the service built on top.
package engine

import (
	"github.com/tibfit/tibfit/internal/aggregator"
)

// Clock is the timer seam the decision pipeline runs on. It is the same
// interface the aggregator package declares for itself (the consumer-side
// declaration that keeps the dependency arrow pointing downward); the
// alias makes engine.Clock and aggregator.Clock interchangeable by
// construction, not just structurally.
//
// Implementations must honour the ordering contract of
// docs/DETERMINISM.md invariant 8: callbacks with coinciding deadlines
// fire in the order they were scheduled. *sim.Kernel (virtual time) and
// *WallClock (real time) are the two drivers.
type Clock = aggregator.Clock
