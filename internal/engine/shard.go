package engine

import (
	"sort"
	"sync"

	"github.com/tibfit/tibfit/internal/aggregator"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/sim"
)

// shard is one event location's single-writer slice of an instance: its
// own decision scheme, its own aggregation window, its own lock. TIBFIT
// windows close per event location (paper §3), and every registered
// scheme keeps per-node state only, so partitioning the member population
// across locations preserves every decision and every trust value bit for
// bit — concurrent ingest at different locations simply never contends.
//
// Lock order: an ingest path takes only shard.mu; a window expiry takes
// shard.mu then ringMu (via recordDecision); snapshot/restore take
// stateMu then each shard.mu in index order. No path takes two shard
// locks at once, and nothing takes shard.mu while holding ringMu, so the
// hierarchy stateMu → shard.mu → ringMu is cycle-free.
type shard struct {
	mu     sync.Mutex
	scheme decision.Scheme
	agg    *aggregator.Binary
	// members is this location's population, sorted ascending: the
	// globally-sorted member at index k*S+s lives at position k of shard
	// s, which is how TrustTable places rows without re-sorting.
	members []int
}

// shardClock adapts the tenant's Clock for one shard: expiry callbacks
// are wrapped to run under the shard's lock, so window closes serialize
// with that shard's ingest and nothing else. Deadlines still live on the
// one tenant-wide clock, whose single-drain contract (WallClock's firing
// guard; the sim kernel's single thread) fires all shards' callbacks in
// (deadline, seq) order — the fan-in order of the decision ring.
type shardClock struct {
	in *Instance
	sh *shard
}

func (c shardClock) Now() sim.Time { return c.in.clock.Now() }

func (c shardClock) AfterFunc(d sim.Duration, fn func()) {
	in, sh := c.in, c.sh
	in.clock.AfterFunc(d, func() {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if in.closed.Load() {
			return
		}
		fn()
	})
}

// ShardMembers partitions a member population into n event locations:
// the members are sorted and dealt round-robin, so sorted member i lands
// in shard i%n at position i/n. Round-robin keeps shard populations
// within one of each other for any n, and the inverse index arithmetic
// is what lets snapshot and trust-table walks reassemble global sorted
// order without sorting. n is clamped to [1, len(members)].
func ShardMembers(members []int, n int) [][]int {
	sorted := append([]int(nil), members...)
	sort.Ints(sorted)
	if n > len(sorted) {
		n = len(sorted)
	}
	if n < 1 {
		n = 1
	}
	out := make([][]int, n)
	quota := (len(sorted) + n - 1) / n
	for s := range out {
		out[s] = make([]int, 0, quota)
	}
	for i, id := range sorted {
		out[i%n] = append(out[i%n], id)
	}
	return out
}
