package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/tibfit/tibfit/internal/aggregator"
	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/leach"
	"github.com/tibfit/tibfit/internal/sim"
)

// ErrClosed is returned by operations on a closed instance.
var ErrClosed = errors.New("engine: instance closed")

// ErrUnknownNode is returned when a report names a node outside the
// instance's member set. It is a sentinel (no per-call formatting): the
// rejection sits on the ingest hot path, and the serving layer attaches
// the node ID when it renders the error.
var ErrUnknownNode = errors.New("engine: report from unknown node")

// ErrSnapshotStale is returned by RestoreSealed for a blob that
// authenticated fine but carries a version at or below one already
// restored — the online analogue of the station's replay rejection.
var ErrSnapshotStale = errors.New("engine: snapshot version already restored")

// defaultDecisionLog is the ring capacity for the decision stream when
// Config.DecisionLog is zero: enough for a poller a few seconds behind a
// saturated ingest, small enough to be irrelevant in memory.
const defaultDecisionLog = 4096

// snapshotHandoff is the pseudo head ID the instance uses when asking
// its station to seal state. Real head IDs are non-negative node IDs;
// the instance itself is "head -1".
const snapshotHandoff = -1

// Config configures one engine instance — one tenant's trust namespace.
type Config struct {
	// Scheme is the decision-scheme name, resolved through the
	// internal/decision registry (tibfit, linear, majority, fuzzy,
	// dynamic-trust; see docs/SCHEMES.md).
	Scheme string
	// Params carries the scheme parameters. Params.Trust must validate
	// (the station persists trust under it).
	Params decision.Params
	// Tout is the aggregation window length T_out, in the clock's
	// virtual units.
	Tout sim.Duration
	// Members is the node population this instance arbitrates over.
	Members []int
	// Clock drives window expiry: a *WallClock for live traffic, a
	// *sim.Kernel for replay and equivalence testing.
	Clock Clock
	// DecisionLog bounds the in-memory decision ring exposed through
	// DecisionsSince. Zero means a default; the ring drops the oldest
	// entries once full (pollers that fall further behind miss them).
	DecisionLog int
	// OnDecision, when non-nil, observes every decision as it is made.
	// It runs under the instance lock: it must return promptly and must
	// not call back into the instance.
	OnDecision func(Decision)
}

// Decision is one completed arbitration window, as exposed on the
// decision stream: the aggregator outcome plus a per-instance sequence
// number pollers resume from.
type Decision struct {
	// Seq numbers decisions from 1 in decision order.
	Seq uint64 `json:"seq"`
	// Trigger and Decided are the window-open and window-expiry times on
	// the instance's virtual clock.
	Trigger float64 `json:"trigger"`
	Decided float64 `json:"decided"`
	// Occurred is the arbitration verdict; CTIFor/CTIAgainst the two
	// cumulative-trust sides it weighed.
	Occurred   bool    `json:"occurred"`
	CTIFor     float64 `json:"cti_for"`
	CTIAgainst float64 `json:"cti_against"`
	// Reporters and Silent are the two sides of the vote, sorted by ID.
	Reporters []int `json:"reporters"`
	Silent    []int `json:"silent"`
}

// TrustEntry is one row of an instance's trust table.
type TrustEntry struct {
	Node     int     `json:"node"`
	TI       float64 `json:"ti"`
	Isolated bool    `json:"isolated"`
}

// Instance is one tenant's online decision engine: a decision scheme
// from the registry, a binary aggregation pipeline driven by a Clock,
// and a base-station trust ledger (leach.Station) as the durable home of
// per-node state — the §2 cluster-head machinery re-hosted behind a
// service boundary. All methods are safe for concurrent use; window
// expiries from the clock serialize with ingest through the same lock
// (the instance installs itself as the WallClock's executor).
type Instance struct {
	mu sync.Mutex

	scheme  decision.Scheme
	station *leach.Station
	agg     *aggregator.Binary
	clock   Clock

	members   []int // sorted copy
	memberSet map[int]struct{}

	onDecision func(Decision)

	// Decision ring: log[(seq-1) % cap] holds decision seq once seq is
	// within cap of the newest.
	log     []Decision
	seq     uint64
	reports uint64

	restoredVersion uint64
	closed          bool
}

// New builds an instance. The scheme is constructed through the decision
// registry, so unknown names fail with the registry's did-you-mean error.
func New(cfg Config) (*Instance, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("engine: a Clock is required")
	}
	scheme, err := decision.New(cfg.Scheme, cfg.Params)
	if err != nil {
		return nil, err
	}
	station, err := leach.NewStation(cfg.Params.Trust)
	if err != nil {
		return nil, err
	}
	logCap := cfg.DecisionLog
	if logCap <= 0 {
		logCap = defaultDecisionLog
	}
	in := &Instance{
		scheme:     scheme,
		station:    station,
		clock:      cfg.Clock,
		onDecision: cfg.OnDecision,
		log:        make([]Decision, 0, logCap),
	}
	agg, err := aggregator.NewBinary(aggregator.BinaryConfig{
		Tout:    cfg.Tout,
		Members: cfg.Members,
	}, scheme, cfg.Clock, in.onDecide, nil, nil)
	if err != nil {
		return nil, err
	}
	in.agg = agg
	in.members = append([]int(nil), cfg.Members...)
	sort.Ints(in.members)
	in.memberSet = make(map[int]struct{}, len(in.members))
	for _, id := range in.members {
		in.memberSet[id] = struct{}{}
	}
	// On a wall clock, expiries must not race ingest: route them through
	// the instance lock. The sim kernel is single-threaded by contract,
	// so it has no executor to install.
	if es, ok := cfg.Clock.(interface{ SetExec(func(func())) }); ok {
		es.SetExec(in.run)
	}
	return in, nil
}

// run executes a clock callback under the instance lock — the WallClock
// executor that serializes window expiries with report ingest.
func (in *Instance) run(fn func()) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return
	}
	fn()
}

// onDecide records a completed window on the decision ring. It runs with
// the instance lock held: ingest calls it synchronously when a delivery
// closes a window, and expiries arrive through run.
func (in *Instance) onDecide(o aggregator.BinaryOutcome) {
	in.seq++
	d := Decision{
		Seq:        in.seq,
		Trigger:    float64(o.TriggerTime),
		Decided:    float64(o.DecideTime),
		Occurred:   o.Decision.Occurred,
		CTIFor:     o.Decision.CTIFor,
		CTIAgainst: o.Decision.CTIAgainst,
		Reporters:  append([]int(nil), o.Decision.Reporters...),
		Silent:     append([]int(nil), o.Decision.Silent...),
	}
	if len(in.log) < cap(in.log) {
		in.log = append(in.log, d)
	} else {
		in.log[int((d.Seq-1)%uint64(cap(in.log)))] = d
	}
	if in.onDecision != nil {
		in.onDecision(d)
	}
}

// Report ingests one event report. The first report opens a T_out
// window; the expiry arbitrates. Reports from nodes outside the member
// set are rejected with ErrUnknownNode.
//
//hot:path
func (in *Instance) Report(node int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.reportLocked(node)
}

// ReportMany ingests a batch under one lock acquisition — the bulk
// ingest path the HTTP layer uses. It stops at the first unknown node,
// returning how many reports were accepted alongside the error.
//
//hot:path
func (in *Instance) ReportMany(nodes []int) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, node := range nodes {
		if err := in.reportLocked(node); err != nil {
			return i, err
		}
	}
	return len(nodes), nil
}

//hot:path
func (in *Instance) reportLocked(node int) error {
	if in.closed {
		return ErrClosed
	}
	if _, ok := in.memberSet[node]; !ok {
		return ErrUnknownNode
	}
	in.agg.Deliver(node)
	in.reports++
	return nil
}

// SealedSnapshot captures the tenant's trust state as a sealed blob —
// core.SealSnapshot under the station's key, RoleIssue, a fresh
// monotonic version — suitable for RestoreSealed into a later instance.
// The scheme's live state is flushed into the station ledger first, so
// the blob reflects every decision made so far.
func (in *Instance) SealedSnapshot() ([]byte, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return nil, ErrClosed
	}
	if st, ok := in.scheme.(decision.Stateful); ok {
		in.station.StoreSnapshot(st.Snapshot())
	}
	return in.station.IssueFor(snapshotHandoff, in.members), nil
}

// RestoreSealed verifies a sealed blob and merges its trust records into
// the instance: checksum and role are checked first (tampered or
// truncated blobs fail with core.ErrSnapshotCorrupt; a term-end upload
// blob is not restorable state), then the version must exceed any
// already restored (ErrSnapshotStale). On success the station ledger
// absorbs the records and the scheme's live state is rebuilt from it.
func (in *Instance) RestoreSealed(blob []byte) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return ErrClosed
	}
	version, role, recs, err := core.OpenSnapshot(in.station.SealKey(), blob)
	if err != nil {
		return fmt.Errorf("engine: verifying snapshot: %w", err)
	}
	if role != core.RoleIssue {
		return fmt.Errorf("engine: restore needs station-issued state, got a term-end upload: %w",
			leach.ErrSnapshotReplay)
	}
	if version <= in.restoredVersion {
		return fmt.Errorf("engine: blob version %d, already restored %d: %w",
			version, in.restoredVersion, ErrSnapshotStale)
	}
	in.restoredVersion = version
	in.station.StoreSnapshot(recs)
	if st, ok := in.scheme.(decision.Stateful); ok {
		st.Restore(in.station.SnapshotFor(in.members))
	}
	return nil
}

// DecisionsSince returns decisions with Seq > since, oldest first. The
// ring is bounded (Config.DecisionLog): a poller more than the ring
// capacity behind silently misses the overwritten entries and should
// resume from the first Seq it receives.
func (in *Instance) DecisionsSince(since uint64) []Decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.seq <= since {
		return nil
	}
	first := uint64(1)
	if cap(in.log) > 0 && in.seq > uint64(cap(in.log)) {
		first = in.seq - uint64(cap(in.log)) + 1
	}
	if since+1 > first {
		first = since + 1
	}
	out := make([]Decision, 0, in.seq-first+1)
	for s := first; s <= in.seq; s++ {
		out = append(out, in.log[int((s-1)%uint64(cap(in.log)))])
	}
	return out
}

// DecisionCount returns how many decisions the instance has made.
func (in *Instance) DecisionCount() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}

// ReportCount returns how many reports the instance has accepted.
func (in *Instance) ReportCount() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.reports
}

// Members returns the instance's member IDs, sorted ascending. The
// slice is shared and must not be mutated.
func (in *Instance) Members() []int { return in.members }

// SchemeName returns the canonical name of the instance's scheme.
func (in *Instance) SchemeName() string { return in.scheme.Name() }

// TI returns the scheme's current trust index for a node.
func (in *Instance) TI(node int) float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.scheme.TI(node)
}

// IsolatedNodes returns the sorted IDs of all isolated nodes.
func (in *Instance) IsolatedNodes() []int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.scheme.IsolatedNodes()
}

// TrustTable returns one row per member, sorted by node ID — the
// tenant's live trust state as the HTTP layer serves it.
func (in *Instance) TrustTable() []TrustEntry {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]TrustEntry, len(in.members))
	isolated := make(map[int]struct{})
	for _, id := range in.scheme.IsolatedNodes() {
		isolated[id] = struct{}{}
	}
	for i, id := range in.members {
		_, iso := isolated[id]
		out[i] = TrustEntry{Node: id, TI: in.scheme.TI(id), Isolated: iso}
	}
	return out
}

// Close shuts the instance down: pending windows die, further reports
// fail with ErrClosed. Close is idempotent. It closes a *WallClock
// clock; a shared sim kernel is left to its owner.
func (in *Instance) Close() {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.closed = true
	in.agg.Close()
	in.mu.Unlock()
	if wc, ok := in.clock.(*WallClock); ok {
		wc.Close()
	}
}
