package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/tibfit/tibfit/internal/aggregator"
	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/leach"
	"github.com/tibfit/tibfit/internal/sim"
	"github.com/tibfit/tibfit/internal/sparse"
)

// ErrClosed is returned by operations on a closed instance.
var ErrClosed = errors.New("engine: instance closed")

// ErrUnknownNode is returned when a report names a node outside the
// instance's member set. It is a sentinel (no per-call formatting): the
// rejection sits on the ingest hot path, and the serving layer attaches
// the node ID when it renders the error.
var ErrUnknownNode = errors.New("engine: report from unknown node")

// ErrSnapshotStale is returned by RestoreSealed for a blob that
// authenticated fine but carries a version at or below one already
// restored — the online analogue of the station's replay rejection.
var ErrSnapshotStale = errors.New("engine: snapshot version already restored")

// defaultDecisionLog is the ring capacity for the decision stream when
// Config.DecisionLog is zero: enough for a poller a few seconds behind a
// saturated ingest, small enough to be irrelevant in memory.
const defaultDecisionLog = 4096

// snapshotHandoff is the pseudo head ID the instance uses when asking
// its station to seal state. Real head IDs are non-negative node IDs;
// the instance itself is "head -1".
const snapshotHandoff = -1

// Config configures one engine instance — one tenant's trust namespace.
type Config struct {
	// Scheme is the decision-scheme name, resolved through the
	// internal/decision registry (tibfit, linear, majority, fuzzy,
	// dynamic-trust; see docs/SCHEMES.md).
	Scheme string
	// Params carries the scheme parameters. Params.Trust must validate
	// (the station persists trust under it).
	Params decision.Params
	// Tout is the aggregation window length T_out, in the clock's
	// virtual units.
	Tout sim.Duration
	// Members is the node population this instance arbitrates over.
	Members []int
	// Shards partitions the members into that many event locations, each
	// a single-writer shard with its own lock and aggregation window
	// (ShardMembers defines the assignment), so concurrent ingest at
	// different locations never contends. Values outside [1,
	// len(Members)] are clamped; zero means 1, the legacy single-lock
	// single-window instance.
	Shards int
	// Clock drives window expiry: a *WallClock for live traffic, a
	// *sim.Kernel for replay and equivalence testing.
	Clock Clock
	// DecisionLog bounds the in-memory decision ring exposed through
	// DecisionsSince. Zero means a default; the ring drops the oldest
	// entries once full (pollers that fall further behind miss them).
	DecisionLog int
	// OnDecision, when non-nil, observes every decision as it is made.
	// Calls are serialized by the clock's drain (never concurrent); the
	// callback must return promptly and must not call back into the
	// instance.
	OnDecision func(Decision)
}

// Decision is one completed arbitration window, as exposed on the
// decision stream: the aggregator outcome plus a per-instance sequence
// number pollers resume from.
type Decision struct {
	// Seq numbers decisions from 1 in decision order: the (deadline,
	// seq) order the tenant clock fires window expiries in, across all
	// shards.
	Seq uint64 `json:"seq"`
	// Trigger and Decided are the window-open and window-expiry times on
	// the instance's virtual clock.
	Trigger float64 `json:"trigger"`
	Decided float64 `json:"decided"`
	// Occurred is the arbitration verdict; CTIFor/CTIAgainst the two
	// cumulative-trust sides it weighed.
	Occurred   bool    `json:"occurred"`
	CTIFor     float64 `json:"cti_for"`
	CTIAgainst float64 `json:"cti_against"`
	// Reporters and Silent are the two sides of the vote, sorted by ID.
	Reporters []int `json:"reporters"`
	Silent    []int `json:"silent"`
}

// TrustEntry is one row of an instance's trust table.
type TrustEntry struct {
	Node     int     `json:"node"`
	TI       float64 `json:"ti"`
	Isolated bool    `json:"isolated"`
}

// BatchResult is the per-item outcome of a ReportMany batch: how many
// reports were accepted, and — when not all were — where acceptance
// first failed. A batch keeps going past unknown nodes (each is one bad
// row, not a poisoned batch) and stops only at ErrClosed, so Accepted
// counts every valid report regardless of where the bad rows sat.
type BatchResult struct {
	// Accepted is how many reports the instance ingested.
	Accepted int
	// FirstErr is the index of the first rejected report, -1 when every
	// report was accepted.
	FirstErr int
	// Err is the rejection at FirstErr: ErrUnknownNode or ErrClosed.
	Err error
}

// Instance is one tenant's online decision engine: a decision scheme
// from the registry, a binary aggregation pipeline driven by a Clock,
// and a base-station trust ledger (leach.Station) as the durable home of
// per-node state — the §2 cluster-head machinery re-hosted behind a
// service boundary.
//
// The member population is partitioned into Config.Shards event
// locations (paper §3: aggregation windows close per location), each a
// single-writer shard owning its own scheme state, window, and lock.
// Reports route to their node's shard by binary search and contend only
// with reports for the same location; window expiries fire through the
// tenant's one clock, whose single-drain (deadline, seq) order is what
// fans all shards' decisions into one totally-ordered ring. All methods
// are safe for concurrent use.
type Instance struct {
	shards  []*shard
	shardOf sparse.Vector[int32] // member ID -> shard index
	clock   Clock

	members []int // sorted copy of the full population

	// stateMu serializes snapshot/restore against each other; each walks
	// the shards in index order under stateMu -> shard.mu.
	stateMu         sync.Mutex
	station         *leach.Station
	restoredVersion uint64

	// ringMu guards the decision ring. Appends happen only inside clock
	// drains (windows close only at expiry), which are single-threaded,
	// so the lock exists for reader visibility, not append ordering.
	ringMu     sync.Mutex
	log        []Decision
	seq        uint64
	onDecision func(Decision)

	reports atomic.Uint64
	closed  atomic.Bool
}

// New builds an instance. The scheme is constructed through the decision
// registry, so unknown names fail with the registry's did-you-mean error.
func New(cfg Config) (*Instance, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("engine: a Clock is required")
	}
	station, err := leach.NewStation(cfg.Params.Trust)
	if err != nil {
		return nil, err
	}
	logCap := cfg.DecisionLog
	if logCap <= 0 {
		logCap = defaultDecisionLog
	}
	in := &Instance{
		clock:      cfg.Clock,
		station:    station,
		onDecision: cfg.OnDecision,
		log:        make([]Decision, 0, logCap),
	}
	parts := ShardMembers(cfg.Members, cfg.Shards)
	in.shards = make([]*shard, len(parts))
	for s, part := range parts {
		scheme, err := decision.New(cfg.Scheme, cfg.Params)
		if err != nil {
			return nil, err
		}
		sh := &shard{scheme: scheme, members: part}
		agg, err := aggregator.NewBinary(aggregator.BinaryConfig{
			Tout:    cfg.Tout,
			Members: part,
		}, scheme, shardClock{in: in, sh: sh}, in.recordDecision, nil, nil)
		if err != nil {
			return nil, err
		}
		sh.agg = agg
		in.shards[s] = sh
	}
	in.members = append([]int(nil), cfg.Members...)
	sort.Ints(in.members)
	for i, id := range in.members {
		*in.shardOf.Upsert(id) = int32(i % len(in.shards))
	}
	return in, nil
}

// recordDecision appends a completed window to the decision ring. It runs
// inside a clock drain with the owning shard's lock held; drains are
// single-threaded (WallClock's firing guard, the sim kernel's thread), so
// appends arrive already in (deadline, seq) order and ringMu only
// publishes them to concurrent readers.
func (in *Instance) recordDecision(o aggregator.BinaryOutcome) {
	in.ringMu.Lock()
	in.seq++
	d := Decision{
		Seq:        in.seq,
		Trigger:    float64(o.TriggerTime),
		Decided:    float64(o.DecideTime),
		Occurred:   o.Decision.Occurred,
		CTIFor:     o.Decision.CTIFor,
		CTIAgainst: o.Decision.CTIAgainst,
		Reporters:  append([]int(nil), o.Decision.Reporters...),
		Silent:     append([]int(nil), o.Decision.Silent...),
	}
	if len(in.log) < cap(in.log) {
		in.log = append(in.log, d)
	} else {
		in.log[int((d.Seq-1)%uint64(cap(in.log)))] = d
	}
	in.ringMu.Unlock()
	if in.onDecision != nil {
		in.onDecision(d)
	}
}

// Report ingests one event report, routed to the reporting node's shard.
// The shard's first report opens its T_out window; the expiry arbitrates.
// Reports from nodes outside the member set are rejected with
// ErrUnknownNode.
//
//hot:path
func (in *Instance) Report(node int) error {
	s, ok := in.shardOf.Get(node)
	if !ok {
		if in.closed.Load() {
			return ErrClosed
		}
		return ErrUnknownNode
	}
	sh := in.shards[s]
	sh.mu.Lock()
	if in.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	sh.agg.Deliver(node)
	sh.mu.Unlock()
	in.reports.Add(1)
	return nil
}

// ReportMany ingests a batch — the bulk path the HTTP layer uses. Runs of
// consecutive same-shard reports share one lock acquisition, so a batch
// costs O(runs) lock operations rather than O(len). Unknown nodes are
// skipped (the batch continues; the serving layer returns partial
// accept); a closed instance aborts the remainder. The result carries
// the accepted count and the first rejection.
//
//hot:path
func (in *Instance) ReportMany(nodes []int) BatchResult {
	res := BatchResult{FirstErr: -1}
	i := 0
	for i < len(nodes) {
		s, ok := in.shardOf.Get(nodes[i])
		if !ok {
			if in.closed.Load() {
				if res.Err == nil {
					res.FirstErr, res.Err = i, ErrClosed
				}
				break
			}
			if res.Err == nil {
				res.FirstErr, res.Err = i, ErrUnknownNode
			}
			i++
			continue
		}
		sh := in.shards[s]
		sh.mu.Lock()
		if in.closed.Load() {
			sh.mu.Unlock()
			if res.Err == nil {
				res.FirstErr, res.Err = i, ErrClosed
			}
			break
		}
		for i < len(nodes) {
			s2, ok2 := in.shardOf.Get(nodes[i])
			if !ok2 || s2 != s {
				break
			}
			sh.agg.Deliver(nodes[i])
			res.Accepted++
			i++
		}
		sh.mu.Unlock()
	}
	if res.Accepted > 0 {
		in.reports.Add(uint64(res.Accepted))
	}
	return res
}

// SealedSnapshot captures the tenant's trust state as a sealed blob —
// core.SealSnapshot under the station's key, RoleIssue, a fresh
// monotonic version — suitable for RestoreSealed into a later instance.
// Each shard's live scheme state is flushed into the station ledger
// first, walking shards in index order, so the blob reflects every
// decision made so far across the whole population.
func (in *Instance) SealedSnapshot() ([]byte, error) {
	in.stateMu.Lock()
	defer in.stateMu.Unlock()
	if in.closed.Load() {
		return nil, ErrClosed
	}
	for _, sh := range in.shards {
		sh.mu.Lock()
		if st, ok := sh.scheme.(decision.Stateful); ok {
			in.station.StoreSnapshot(st.Snapshot())
		}
		sh.mu.Unlock()
	}
	return in.station.IssueFor(snapshotHandoff, in.members), nil
}

// RestoreSealed verifies a sealed blob and merges its trust records into
// the instance: checksum and role are checked first (tampered or
// truncated blobs fail with core.ErrSnapshotCorrupt; a term-end upload
// blob is not restorable state), then the version must exceed any
// already restored (ErrSnapshotStale). On success the station ledger
// absorbs the records and each shard's live scheme state is rebuilt from
// its members' slice of the ledger.
func (in *Instance) RestoreSealed(blob []byte) error {
	in.stateMu.Lock()
	defer in.stateMu.Unlock()
	if in.closed.Load() {
		return ErrClosed
	}
	version, role, recs, err := core.OpenSnapshot(in.station.SealKey(), blob)
	if err != nil {
		return fmt.Errorf("engine: verifying snapshot: %w", err)
	}
	if role != core.RoleIssue {
		return fmt.Errorf("engine: restore needs station-issued state, got a term-end upload: %w",
			leach.ErrSnapshotReplay)
	}
	if version <= in.restoredVersion {
		return fmt.Errorf("engine: blob version %d, already restored %d: %w",
			version, in.restoredVersion, ErrSnapshotStale)
	}
	in.restoredVersion = version
	in.station.StoreSnapshot(recs)
	for _, sh := range in.shards {
		sh.mu.Lock()
		if st, ok := sh.scheme.(decision.Stateful); ok {
			st.Restore(in.station.SnapshotFor(sh.members))
		}
		sh.mu.Unlock()
	}
	return nil
}

// DecisionsSince returns decisions with Seq > since, oldest first. The
// ring is bounded (Config.DecisionLog): a poller more than the ring
// capacity behind silently misses the overwritten entries and should
// resume from the first Seq it receives.
func (in *Instance) DecisionsSince(since uint64) []Decision {
	in.ringMu.Lock()
	defer in.ringMu.Unlock()
	if in.seq <= since {
		return nil
	}
	first := uint64(1)
	if cap(in.log) > 0 && in.seq > uint64(cap(in.log)) {
		first = in.seq - uint64(cap(in.log)) + 1
	}
	if since+1 > first {
		first = since + 1
	}
	out := make([]Decision, 0, in.seq-first+1)
	for s := first; s <= in.seq; s++ {
		out = append(out, in.log[int((s-1)%uint64(cap(in.log)))])
	}
	return out
}

// DecisionCount returns how many decisions the instance has made.
func (in *Instance) DecisionCount() uint64 {
	in.ringMu.Lock()
	defer in.ringMu.Unlock()
	return in.seq
}

// ReportCount returns how many reports the instance has accepted.
func (in *Instance) ReportCount() uint64 { return in.reports.Load() }

// Members returns the instance's member IDs, sorted ascending. The
// slice is shared and must not be mutated.
func (in *Instance) Members() []int { return in.members }

// Shards returns how many single-writer shards the population is
// partitioned into.
func (in *Instance) Shards() int { return len(in.shards) }

// SchemeName returns the canonical name of the instance's scheme.
func (in *Instance) SchemeName() string { return in.shards[0].scheme.Name() }

// TI returns the scheme's current trust index for a node. A node outside
// the member set reads through an arbitrary shard's scheme, which — all
// schemes holding per-node state only — answers the default trust, the
// same value the single-lock instance reported.
func (in *Instance) TI(node int) float64 {
	sh := in.shards[0]
	if s, ok := in.shardOf.Get(node); ok {
		sh = in.shards[s]
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.scheme.TI(node)
}

// IsolatedNodes returns the sorted IDs of all isolated nodes.
func (in *Instance) IsolatedNodes() []int {
	var out []int
	for _, sh := range in.shards {
		sh.mu.Lock()
		out = append(out, sh.scheme.IsolatedNodes()...)
		sh.mu.Unlock()
	}
	sort.Ints(out)
	return out
}

// TrustTable returns one row per member, sorted by node ID — the
// tenant's live trust state as the HTTP layer serves it. Each shard is
// locked once; shard s's k-th member is the globally-sorted member
// k*S+s (the ShardMembers round-robin inverse), so rows land in place
// without a sort.
func (in *Instance) TrustTable() []TrustEntry {
	out := make([]TrustEntry, len(in.members))
	nShards := len(in.shards)
	for s, sh := range in.shards {
		sh.mu.Lock()
		for k, id := range sh.members {
			out[k*nShards+s] = TrustEntry{
				Node:     id,
				TI:       sh.scheme.TI(id),
				Isolated: sh.scheme.Isolated(id),
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// Close shuts the instance down: pending windows die, further reports
// fail with ErrClosed. Close is idempotent. It closes a *WallClock
// clock; a shared sim kernel is left to its owner.
func (in *Instance) Close() {
	if in.closed.Swap(true) {
		return
	}
	for _, sh := range in.shards {
		sh.mu.Lock()
		sh.agg.Close()
		sh.mu.Unlock()
	}
	if wc, ok := in.clock.(*WallClock); ok {
		wc.Close()
	}
}
