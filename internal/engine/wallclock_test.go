package engine

import (
	"testing"
	"time"

	"github.com/tibfit/tibfit/internal/sim"
)

// stubClock builds a WallClock whose time is under test control: the OS
// timer is never armed (fire is driven manually) and nowFn reads the
// returned setter's value. One virtual unit is one millisecond.
func stubClock() (*WallClock, func(ms float64)) {
	w := NewWallClock(time.Millisecond)
	start := w.start
	cur := start
	w.mu.Lock()
	w.arm = false
	w.nowFn = func() time.Time { return cur }
	w.mu.Unlock()
	return w, func(ms float64) { cur = start.Add(time.Duration(ms * float64(time.Millisecond))) }
}

func TestWallClockNowTracksStub(t *testing.T) {
	w, advance := stubClock()
	defer w.Close()
	if got := w.Now(); got != 0 {
		t.Fatalf("Now at start = %v, want 0", got)
	}
	advance(250)
	if got := w.Now(); got != 250 {
		t.Fatalf("Now after 250ms = %v, want 250", got)
	}
}

func TestWallClockFiresInDeadlineOrder(t *testing.T) {
	w, advance := stubClock()
	defer w.Close()
	var order []string
	w.AfterFunc(5, func() { order = append(order, "A5") })
	w.AfterFunc(5, func() { order = append(order, "B5") })
	w.AfterFunc(3, func() { order = append(order, "C3") })
	advance(6)
	w.fire()
	want := []string{"C3", "A5", "B5"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v (invariant 8: coinciding deadlines in schedule order)", order, want)
		}
	}
}

func TestWallClockSameInstantReentrantSchedule(t *testing.T) {
	// A callback that schedules more work for the current instant runs
	// it in the same drain, after everything already scheduled for that
	// instant — the kernel's clamp-and-FIFO rule.
	w, advance := stubClock()
	defer w.Close()
	var order []string
	w.AfterFunc(5, func() {
		order = append(order, "A")
		w.AfterFunc(0, func() { order = append(order, "D") })
	})
	w.AfterFunc(5, func() { order = append(order, "B") })
	advance(5)
	w.fire()
	want := "A,B,D"
	got := ""
	for i, s := range order {
		if i > 0 {
			got += ","
		}
		got += s
	}
	if got != want {
		t.Fatalf("drain order %s, want %s", got, want)
	}
}

func TestWallClockFutureEventsStayPending(t *testing.T) {
	w, advance := stubClock()
	defer w.Close()
	fired := 0
	w.AfterFunc(10, func() { fired++ })
	advance(9)
	w.fire()
	if fired != 0 || w.pending() != 1 {
		t.Fatalf("fired=%d pending=%d before deadline, want 0/1", fired, w.pending())
	}
	advance(10)
	w.fire()
	if fired != 1 || w.pending() != 0 {
		t.Fatalf("fired=%d pending=%d at deadline, want 1/0", fired, w.pending())
	}
}

func TestWallClockExecHookSerializes(t *testing.T) {
	w, advance := stubClock()
	defer w.Close()
	var wrapped, ran bool
	w.SetExec(func(fn func()) { wrapped = true; fn() })
	w.AfterFunc(1, func() { ran = true })
	advance(2)
	w.fire()
	if !wrapped || !ran {
		t.Fatalf("wrapped=%t ran=%t, want both true", wrapped, ran)
	}
}

func TestWallClockCloseDropsPending(t *testing.T) {
	w, advance := stubClock()
	fired := false
	w.AfterFunc(1, func() { fired = true })
	w.Close()
	advance(5)
	w.fire()
	if fired {
		t.Fatal("callback fired after Close")
	}
	w.AfterFunc(0, func() { fired = true })
	w.fire()
	if fired || w.pending() != 0 {
		t.Fatal("AfterFunc after Close scheduled work")
	}
}

func TestWallClockNegativeDelayClampsToNow(t *testing.T) {
	w, advance := stubClock()
	defer w.Close()
	fired := false
	advance(10)
	w.AfterFunc(-3, func() { fired = true })
	w.fire()
	if !fired {
		t.Fatal("negative-delay callback did not fire at the current instant")
	}
}

// TestWallClockSingleDrain pins the firing guard: a second fire racing
// an active drain (an armed timer firing while a Reset with a nearer
// deadline spawns another timer goroutine) must bail out instead of
// popping events concurrently, so coinciding-deadline callbacks never
// interleave out of (deadline, seq) order — invariant 8.
func TestWallClockSingleDrain(t *testing.T) {
	w, advance := stubClock()
	defer w.Close()
	var order []string
	w.AfterFunc(5, func() {
		order = append(order, "A")
		// Simulate a raced timer goroutine firing mid-drain, outside
		// the heap lock: it must not pop B out from under this drain.
		w.fire()
		order = append(order, "A-done")
	})
	w.AfterFunc(5, func() { order = append(order, "B") })
	advance(5)
	w.fire()
	want := "A,A-done,B"
	got := ""
	for i, s := range order {
		if i > 0 {
			got += ","
		}
		got += s
	}
	if got != want {
		t.Fatalf("drain order %s, want %s (nested fire must not drain concurrently)", got, want)
	}
	if w.pending() != 0 {
		t.Fatalf("pending = %d after drain, want 0", w.pending())
	}
}

// TestWallClockRealTimer is the one test that exercises the armed OS
// timer end to end: a real NewWallClock must dispatch a callback close
// to its deadline without manual fire calls.
func TestWallClockRealTimer(t *testing.T) {
	w := NewWallClock(time.Millisecond)
	defer w.Close()
	done := make(chan sim.Time, 1)
	w.AfterFunc(5, func() { done <- w.Now() })
	select {
	case at := <-done:
		if at < 5 {
			t.Fatalf("fired at %v, want >= 5 virtual ms", at)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}
