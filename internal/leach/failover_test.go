package leach

import (
	"testing"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/energy"
)

func TestAppointAmongPrefersTrustThenEnergy(t *testing.T) {
	station, err := NewStation(trustParams())
	if err != nil {
		t.Fatal(err)
	}
	nodes := testNodes(t, 4)
	for i, frac := range []float64{0.9, 0.3, 0.6, 0.6} {
		b := energy.NewBattery(100)
		b.Draw(100 * (1 - frac))
		nodes[i].AttachBattery(b)
	}
	// Node 0 has the most energy but a distrusted history.
	station.StoreSnapshot(map[int]core.Record{0: {V: 8, Faulty: 8}})
	e := newElection(t, Config{HeadFraction: 0.5, TIThreshold: 0.5}, station, nodes, 1)

	id, ok := e.AppointAmong([]int{0, 1, 2, 3})
	if !ok {
		t.Fatal("no appointment")
	}
	// 1..3 tie on TI=1; node 2 beats 1 on energy, 3 ties 2 but 2 comes
	// first in the candidate order.
	if id != 2 {
		t.Fatalf("appointed %d, want 2 (trust first, then energy)", id)
	}
}

func TestAppointAmongSkipsDownAndDeadNodes(t *testing.T) {
	station, err := NewStation(trustParams())
	if err != nil {
		t.Fatal(err)
	}
	nodes := testNodes(t, 3)
	drained := energy.NewBattery(1)
	drained.Draw(5)
	nodes[1].AttachBattery(drained)
	e := newElection(t, Config{HeadFraction: 0.5}, station, nodes, 2)
	e.SetLiveness(func(id int) bool { return id != 0 })

	id, ok := e.AppointAmong([]int{0, 1, 2})
	if !ok || id != 2 {
		t.Fatalf("appointed %v (ok=%v), want 2: 0 is down, 1 is dead", id, ok)
	}
	if _, ok := e.AppointAmong([]int{0, 1}); ok {
		t.Fatal("appointed a head from only down/dead candidates")
	}
}

func TestLivenessVetoesSelfElection(t *testing.T) {
	station, err := NewStation(trustParams())
	if err != nil {
		t.Fatal(err)
	}
	nodes := testNodes(t, 4)
	e := newElection(t, Config{HeadFraction: 0.5}, station, nodes, 3)
	e.SetLiveness(func(id int) bool { return id == 1 })
	for round := 0; round < 5; round++ {
		res := e.Run()
		for _, h := range res.Heads {
			if h != 1 {
				t.Fatalf("round %d elected down node %d", round, h)
			}
		}
	}
}

func TestMarkLedAppliesCooloff(t *testing.T) {
	station, err := NewStation(trustParams())
	if err != nil {
		t.Fatal(err)
	}
	nodes := testNodes(t, 2)
	e := newElection(t, Config{HeadFraction: 0.5}, station, nodes, 4)
	// An emergency appointment of node 0 must sit out the next round,
	// exactly as if LEACH had elected it.
	e.MarkLed(0)
	res := e.Run()
	for _, h := range res.Heads {
		if h == 0 {
			t.Fatal("emergency head re-elected inside its cool-off window")
		}
	}
}
