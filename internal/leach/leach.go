// Package leach implements the LEACH-style rotating cluster-head election
// the paper adopts for cluster formation (§2, refs [3][4]), extended with
// TIBFIT's trust-index eligibility rule, plus the base station that
// persists trust state across leadership changes.
//
// Per election round:
//
//  1. Every node that has not served as CH within the last 1/p rounds
//     self-elects with probability T·(residual energy fraction), where
//     T = p/(1 − p·(r mod 1/p)) is LEACH's epoch-ramped threshold —
//     the energy-aware rotation that keeps the expected head count near
//     n·p as the cool-off shrinks the candidate pool.
//  2. The base station vetoes any self-elected node whose persisted trust
//     index is below the eligibility threshold (TIBFIT's addition: "the TI
//     of the node has to be higher than a threshold value to ensure that
//     only sufficiently trusted nodes can become CHs") and re-initiates
//     election if nobody survives the veto.
//  3. Elected heads advertise; every other node affiliates with the head
//     whose advertisement arrives with the strongest received signal.
//  4. An outgoing head uploads its trust table to the base station; an
//     incoming head downloads the state for its cluster.
package leach

import (
	"errors"
	"fmt"
	"sort"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/node"
	"github.com/tibfit/tibfit/internal/radio"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/sparse"
)

// Config parameterizes elections.
type Config struct {
	// HeadFraction is LEACH's p: the desired fraction of nodes serving as
	// cluster heads in any round.
	HeadFraction float64
	// TIThreshold is the minimum persisted trust index a node needs to be
	// eligible for cluster headship (TIBFIT's addition to LEACH).
	TIThreshold float64
	// MaxRetries bounds how many times an election is re-initiated when
	// every self-elected candidate is vetoed or nobody self-elects;
	// afterwards the station appoints the most trusted eligible node
	// directly. Zero means a sensible default.
	MaxRetries int
	// MinHeads re-initiates an election that produced fewer heads than
	// this floor (LEACH's Bernoulli draws leave a long lower tail, and a
	// round with too few heads builds clusters too large for their
	// members to out-vote). Zero or one keeps the historical behaviour:
	// any non-empty head set stands.
	MinHeads int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.HeadFraction <= 0 || c.HeadFraction > 1 {
		return fmt.Errorf("leach: HeadFraction must be in (0,1], got %v", c.HeadFraction)
	}
	if c.TIThreshold < 0 || c.TIThreshold >= 1 {
		return fmt.Errorf("leach: TIThreshold must be in [0,1), got %v", c.TIThreshold)
	}
	if c.MinHeads < 0 {
		return fmt.Errorf("leach: MinHeads must be non-negative, got %d", c.MinHeads)
	}
	return nil
}

const defaultMaxRetries = 8

// DefaultHeadRemovalThreshold quarantines a cluster head once its
// station-side trust index falls to or below this value. It applies
// when the node-trust params leave RemovalThreshold at zero (isolation
// disabled for sensing nodes): a head aggregates for a whole cluster,
// so the station cannot afford to leave head misbehaviour unpunished.
const DefaultHeadRemovalThreshold = 0.5

// defaultSealKey stands in for the provisioned station↔head secret a
// real deployment would burn into each mote; the simulation needs only
// that issuer and verifier agree and tamperers do not know it.
const defaultSealKey = 0x7153_b175_b45e_57a7

// ErrSnapshotReplay marks a sealed snapshot that authenticated fine but
// is the wrong blob: a re-upload of station-issued state, or state from
// an earlier term than the one the station issued to that head.
var ErrSnapshotReplay = errors.New("leach: snapshot replayed or stale")

// Station is the base station: the durable home of trust state between
// cluster-head terms and the authority that vetoes untrusted candidates.
// It also keeps its own trust index per cluster *head* (scored from
// shadow-panel escalations, heartbeat anomalies, and ground-truth
// feedback — see internal/network) and verifies sealed trust-state
// blobs at handoff so a Byzantine head cannot poison or replay the
// persisted state.
type Station struct {
	params core.Params
	// trust is the persisted per-node ledger. At field scale the station
	// sees every node in the deployment, so it lives in a CSR-style
	// sparse vector (internal/sparse): O(live entries) memory, in-order
	// iteration, and cluster-filtered exports that binary-search only the
	// handful of IDs a head actually needs.
	trust sparse.Vector[core.Record]
	// mergeIDs/mergeVals are reusable scratch for canonicalizing map
	// uploads before the sorted merge into trust.
	mergeIDs  []int
	mergeVals []core.Record

	// chTrust scores cluster heads, under the same §3 rule as sensing
	// nodes but with isolation (= quarantine) always enabled.
	chTrust *core.Table

	// Sealed-handoff state: the shared checksum key, the monotonically
	// increasing issue sequence, and the version each serving head was
	// issued (consumed by its term-end upload).
	sealKey       uint64
	seq           uint64
	issuedVersion map[int]uint64
}

// NewStation returns a base station persisting trust under params.
func NewStation(params core.Params) (*Station, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	headParams := params
	//lint:allow floateq zero is the exact "isolation disabled" sentinel, not a computed value
	if headParams.RemovalThreshold == 0 {
		headParams.RemovalThreshold = DefaultHeadRemovalThreshold
	}
	return &Station{
		params:        params,
		chTrust:       core.MustNewTable(headParams),
		sealKey:       defaultSealKey,
		issuedVersion: make(map[int]uint64),
	}, nil
}

// JudgeHead applies one station-side verdict on a cluster head's
// behaviour — a shadow-panel escalation, a missed-heartbeat anomaly, or
// a decision checked against ground truth — under the same §3 update
// rule that scores sensing nodes.
func (s *Station) JudgeHead(id int, correct bool) { s.chTrust.Judge(id, correct) }

// HeadTI returns the station's trust index for a cluster head (1 if the
// head has never been judged).
func (s *Station) HeadTI(id int) float64 { return s.chTrust.TI(id) }

// HeadQuarantined reports whether the head's trust crossed the
// quarantine threshold (or it was quarantined directly).
func (s *Station) HeadQuarantined(id int) bool { return s.chTrust.Isolated(id) }

// QuarantineHead isolates a head immediately — the station's response
// to unforgeable evidence (a rejected snapshot) that should not be
// diluted through gradual penalties.
func (s *Station) QuarantineHead(id int) { s.chTrust.Isolate(id) }

// QuarantinedHeads returns the sorted IDs of all quarantined heads.
func (s *Station) QuarantinedHeads() []int { return s.chTrust.IsolatedNodes() }

// Issue seals the current persisted trust state for a newly appointed
// head: RoleIssue, a fresh version number the station remembers so the
// head's eventual term-end upload must carry it back.
func (s *Station) Issue(head int) []byte {
	s.seq++
	s.issuedVersion[head] = s.seq
	return core.SealSnapshot(s.sealKey, s.seq, core.RoleIssue, s.Snapshot())
}

// IssueFor is Issue restricted to the given node IDs — what a head with a
// known member list is actually owed (§2: the CH "requests the base
// station for TI information for nodes in its cluster"). Sealing a
// 10-node cluster's records instead of the whole field keeps handoff
// O(cluster), and the version bookkeeping is identical to Issue.
func (s *Station) IssueFor(head int, members []int) []byte {
	s.seq++
	s.issuedVersion[head] = s.seq
	return core.SealSnapshot(s.sealKey, s.seq, core.RoleIssue, s.SnapshotFor(members))
}

// StoreSealed verifies and merges a retiring head's sealed trust
// upload. It rejects — with a wrapped error, and without touching the
// persisted state — blobs that fail authentication (ErrSnapshotCorrupt:
// tampered, truncated, mis-keyed) and blobs that authenticate but are
// replays (ErrSnapshotReplay: a re-upload of the issued blob itself, a
// stale version, or an upload from a head that was never issued one).
// A successful upload consumes the issued version, so uploading twice
// is itself a replay.
func (s *Station) StoreSealed(head int, blob []byte) error {
	version, role, recs, err := core.OpenSnapshot(s.sealKey, blob)
	if err != nil {
		return fmt.Errorf("leach: verifying snapshot from head %d: %w", head, err)
	}
	if role != core.RoleUpload {
		return fmt.Errorf("leach: head %d re-uploaded issued state: %w", head, ErrSnapshotReplay)
	}
	issued, ok := s.issuedVersion[head]
	if !ok {
		return fmt.Errorf("leach: head %d uploaded version %d but holds no issued snapshot: %w",
			head, version, ErrSnapshotReplay)
	}
	if version != issued {
		return fmt.Errorf("leach: head %d uploaded version %d, issued %d: %w",
			head, version, issued, ErrSnapshotReplay)
	}
	delete(s.issuedVersion, head)
	s.StoreSnapshot(recs)
	return nil
}

// SealKey returns the station's checksum key, for heads sealing their
// term-end uploads (and for tests forging tampered blobs).
func (s *Station) SealKey() uint64 { return s.sealKey }

// IssuedVersion returns the version the station expects back from the
// head's term-end upload (0 if none is outstanding).
func (s *Station) IssuedVersion(head int) uint64 { return s.issuedVersion[head] }

// StoreSnapshot merges an outgoing cluster head's trust table into the
// station's persisted state (§2: the CH "sends the aggregate TI
// information that it has gathered ... to the base station before ending
// its leadership").
func (s *Station) StoreSnapshot(snap map[int]core.Record) {
	if len(snap) == 0 {
		return
	}
	ids := s.mergeIDs[:0]
	for id := range snap {
		ids = append(ids, id)
	}
	sparse.SortIDs(ids)
	vals := s.mergeVals[:0]
	for _, id := range ids {
		vals = append(vals, snap[id])
	}
	s.mergeIDs, s.mergeVals = ids, vals
	s.trust.MergeSorted(ids, vals)
}

// NewTable builds a trust table for a newly elected cluster head from the
// persisted state (§2: a newly elected CH "requests the base station for
// TI information for nodes in its cluster").
func (s *Station) NewTable() *core.Table {
	t := core.MustNewTable(s.params)
	t.Restore(s.Snapshot())
	return t
}

// Snapshot returns a copy of the persisted trust state, for restoring into
// a newly constructed decision scheme (the generalization of NewTable to
// any trust-carrying scheme).
func (s *Station) Snapshot() map[int]core.Record {
	out := make(map[int]core.Record, s.trust.Len())
	s.trust.Scan(func(id int, r *core.Record) bool {
		out[id] = *r
		return true
	})
	return out
}

// SnapshotFor returns the persisted records for the given node IDs only —
// the member-filtered export a cluster head actually needs. Restoring a
// small cluster's scheme from a million-node ledger must not copy the
// other records; IDs the station has never seen are simply absent (they
// carry full default trust).
func (s *Station) SnapshotFor(ids []int) map[int]core.Record {
	out := make(map[int]core.Record, len(ids))
	for _, id := range ids {
		if r := s.trust.Find(id); r != nil {
			out[id] = *r
		}
	}
	return out
}

// TI returns the persisted trust index for a node (1 if never reported).
//
//hot:path
func (s *Station) TI(nodeID int) float64 {
	if r := s.trust.Find(nodeID); r != nil {
		return s.params.TrustOf(r.V)
	}
	return 1
}

// Eligible reports whether the node's persisted trust passes the
// threshold and it is not isolated — as a sensing node or, since the
// station also scores heads, as a quarantined former head (quarantine
// would be pointless if the next election could hand the aggregation
// point straight back).
func (s *Station) Eligible(nodeID int, threshold float64) bool {
	if s.chTrust.Isolated(nodeID) {
		return false
	}
	if r := s.trust.Find(nodeID); r != nil && r.Isolated {
		return false
	}
	return s.TI(nodeID) >= threshold
}

// Result is the outcome of one election round.
type Result struct {
	// Heads are the elected cluster heads, sorted by ID.
	Heads []int
	// Affiliation maps every non-head node to its chosen head.
	Affiliation map[int]int
	// Vetoed lists self-elected candidates the station rejected on trust
	// grounds this round.
	Vetoed []int
	// Retries is how many re-initiations the round needed.
	Retries int
	// Appointed indicates the station had to appoint a head directly
	// after exhausting retries.
	Appointed bool
}

// Clusters groups node IDs by their head, including the head itself.
// Members are appended in ascending ID order (not map order) so each
// bucket's backing array is built identically on every run.
func (r Result) Clusters() map[int][]int {
	out := make(map[int][]int, len(r.Heads))
	for _, h := range r.Heads {
		out[h] = []int{h}
	}
	ids := make([]int, 0, len(r.Affiliation))
	for id := range r.Affiliation {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		out[r.Affiliation[id]] = append(out[r.Affiliation[id]], id)
	}
	for _, members := range out {
		sort.Ints(members)
	}
	return out
}

// Election runs LEACH rounds over a fixed node population.
type Election struct {
	cfg      Config
	station  *Station
	channel  *radio.Channel
	src      *rng.Source
	nodes    []*node.Node
	byID     map[int]*node.Node
	round    int
	lastled  map[int]int // node ID -> round it last served (1-based)
	liveness func(int) bool

	// headGrid indexes the advertising heads each round so affiliation is
	// a range-limited nearest query per member instead of a member×head
	// pairwise scan; headPts is its reusable position scratch.
	headGrid *geo.Grid
	headPts  []geo.Point
}

// SetLiveness installs a predicate consulted during eligibility checks and
// appointments: a node for which it returns false (crashed, partitioned)
// can neither self-elect nor be appointed. A nil predicate (the default)
// treats every node as up, preserving pre-fault behaviour.
func (e *Election) SetLiveness(up func(int) bool) { e.liveness = up }

func (e *Election) up(id int) bool { return e.liveness == nil || e.liveness(id) }

// NewElection returns an election controller. The channel is used only for
// its signal-strength model during affiliation.
func NewElection(cfg Config, station *Station, channel *radio.Channel,
	nodes []*node.Node, src *rng.Source) (*Election, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if station == nil || channel == nil || src == nil {
		return nil, fmt.Errorf("leach: station, channel, and rng are required")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("leach: need at least one node")
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = defaultMaxRetries
	}
	byID := make(map[int]*node.Node, len(nodes))
	for _, n := range nodes {
		byID[n.ID()] = n
	}
	return &Election{
		cfg:      cfg,
		station:  station,
		channel:  channel,
		src:      src,
		nodes:    nodes,
		byID:     byID,
		lastled:  make(map[int]int),
		headGrid: geo.NewGrid(),
	}, nil
}

// Round returns the number of completed election rounds.
func (e *Election) Round() int { return e.round }

// Run executes one election round and returns its result.
func (e *Election) Run() Result {
	e.round++
	var res Result
	cooloff := int(1 / e.cfg.HeadFraction)
	// Classic LEACH threshold: within each epoch of 1/p rounds, the
	// self-election probability ramps as T = p / (1 - p·(r mod 1/p)).
	// The cool-off shrinks the eligible pool every round of the epoch;
	// without the ramp the expected head count sags from n·p toward
	// n·p² by the epoch's last round, leaving clusters too large for
	// their members to out-vote. Round 1 has T = p exactly, so
	// single-election campaigns are unaffected.
	threshold := e.cfg.HeadFraction /
		(1 - e.cfg.HeadFraction*float64((e.round-1)%cooloff))
	if threshold > 1 {
		threshold = 1
	}
	for attempt := 0; ; attempt++ {
		var heads []int
		for _, n := range e.nodes {
			if !e.eligibleNode(n, cooloff) {
				continue
			}
			p := threshold
			if b := n.Battery(); b != nil {
				p *= b.Fraction()
			}
			if !e.src.Bernoulli(p) {
				continue
			}
			// Base-station veto on trust grounds (§2: "the central base
			// station will cancel this node's effort to become a CH").
			if !e.station.Eligible(n.ID(), e.cfg.TIThreshold) {
				res.Vetoed = append(res.Vetoed, n.ID())
				continue
			}
			heads = append(heads, n.ID())
		}
		if len(heads) > 0 && (len(heads) >= e.cfg.MinHeads || attempt >= e.cfg.MaxRetries) {
			sort.Ints(heads)
			res.Heads = heads
			break
		}
		if attempt >= e.cfg.MaxRetries {
			if id, ok := e.appoint(); ok {
				res.Heads = []int{id}
				res.Appointed = true
			}
			break
		}
		res.Retries++
	}
	res.Affiliation = e.affiliate(res.Heads)
	for _, h := range res.Heads {
		e.lastled[h] = e.round
		if n := e.nodeByID(h); n != nil {
			n.MarkCH()
		}
	}
	sort.Ints(res.Vetoed)
	return res
}

// eligibleNode applies LEACH's rotation rule: a node that has led within
// the cool-off window sits out, and a dead battery disqualifies.
func (e *Election) eligibleNode(n *node.Node, cooloff int) bool {
	if last, ok := e.lastled[n.ID()]; ok && e.round-last < cooloff {
		return false
	}
	if b := n.Battery(); b != nil && !b.Alive() {
		return false
	}
	return e.up(n.ID())
}

// appoint is the station's fallback: pick the eligible node with the
// highest persisted trust (energy as tiebreaker).
func (e *Election) appoint() (int, bool) {
	ids := make([]int, 0, len(e.nodes))
	for _, n := range e.nodes {
		ids = append(ids, n.ID())
	}
	return e.AppointAmong(ids)
}

// AppointAmong runs the station's appointment ranking — highest persisted
// trust, residual energy as tiebreaker — over an explicit candidate set,
// skipping dead, down, and trust-vetoed nodes. It is the emergency
// re-election used when a serving head crashes mid-term: no new LEACH
// round, just the most trusted surviving member of the same cluster. The
// bool is false when no candidate qualifies.
func (e *Election) AppointAmong(ids []int) (int, bool) {
	bestID, bestTI, bestEnergy := -1, -1.0, -1.0
	for _, id := range ids {
		n := e.nodeByID(id)
		if n == nil || !e.up(id) {
			continue
		}
		if b := n.Battery(); b != nil && !b.Alive() {
			continue
		}
		if !e.station.Eligible(id, e.cfg.TIThreshold) {
			continue
		}
		ti := e.station.TI(id)
		energy := 1.0
		if b := n.Battery(); b != nil {
			energy = b.Fraction()
		}
		//lint:allow floateq argmax tie-break over values that are bit-identical across runs
		if ti > bestTI || (ti == bestTI && energy > bestEnergy) {
			bestID, bestTI, bestEnergy = id, ti, energy
		}
	}
	return bestID, bestID >= 0
}

// MarkLed records an out-of-round leadership term (a failover appointment)
// so the LEACH cool-off applies to emergency heads as it does to elected
// ones.
func (e *Election) MarkLed(id int) {
	e.lastled[id] = e.round
	if n := e.nodeByID(id); n != nil {
		n.MarkCH()
	}
}

// affiliate assigns every non-head node to the head whose advertisement it
// receives most strongly (§2: "affiliates itself with a single CH based on
// the strength of the signal received").
//
// The heads are indexed in a spatial grid and each member runs one
// nearest query keyed by -RSS(distance) — RSS is non-increasing in
// distance, so minimizing that key over an expanding cell-ring search is
// the historical member×head argmax scan, bit for bit: the grid breaks
// equal-key ties (the sub-1-unit RSS clamp, float plateaus of the
// path-loss log) toward the smaller head index, which is exactly the
// first-strict-winner rule of the old loop over heads in ascending ID
// order. This turns O(members × heads) affiliation into
// O(members × candidate cells) — the difference between hours and
// seconds on a million-node, ten-thousand-head field.
func (e *Election) affiliate(heads []int) map[int]int {
	out := make(map[int]int, len(e.nodes))
	if len(heads) == 0 {
		return out
	}
	pts := e.headPts[:0]
	for _, h := range heads {
		var p geo.Point
		if n := e.byID[h]; n != nil {
			p = n.Pos()
		}
		pts = append(pts, p)
	}
	e.headPts = pts
	e.headGrid.Rebuild(pts, geo.AutoCell(pts))
	rssKey := func(d float64) float64 { return -e.channel.RSS(d) }
	for _, n := range e.nodes {
		if _, isHead := sort.Find(len(heads), func(i int) int { return n.ID() - heads[i] }); isHead {
			continue
		}
		idx, ok := e.headGrid.NearestByDist(n.Pos(), rssKey)
		if !ok {
			continue
		}
		out[n.ID()] = heads[idx]
	}
	return out
}

func (e *Election) nodeByID(id int) *node.Node { return e.byID[id] }
