// Package leach implements the LEACH-style rotating cluster-head election
// the paper adopts for cluster formation (§2, refs [3][4]), extended with
// TIBFIT's trust-index eligibility rule, plus the base station that
// persists trust state across leadership changes.
//
// Per election round:
//
//  1. Every node that has not served as CH within the last 1/p rounds
//     self-elects with probability p·(residual energy fraction) — LEACH's
//     energy-aware rotation.
//  2. The base station vetoes any self-elected node whose persisted trust
//     index is below the eligibility threshold (TIBFIT's addition: "the TI
//     of the node has to be higher than a threshold value to ensure that
//     only sufficiently trusted nodes can become CHs") and re-initiates
//     election if nobody survives the veto.
//  3. Elected heads advertise; every other node affiliates with the head
//     whose advertisement arrives with the strongest received signal.
//  4. An outgoing head uploads its trust table to the base station; an
//     incoming head downloads the state for its cluster.
package leach

import (
	"fmt"
	"sort"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/node"
	"github.com/tibfit/tibfit/internal/radio"
	"github.com/tibfit/tibfit/internal/rng"
)

// Config parameterizes elections.
type Config struct {
	// HeadFraction is LEACH's p: the desired fraction of nodes serving as
	// cluster heads in any round.
	HeadFraction float64
	// TIThreshold is the minimum persisted trust index a node needs to be
	// eligible for cluster headship (TIBFIT's addition to LEACH).
	TIThreshold float64
	// MaxRetries bounds how many times an election is re-initiated when
	// every self-elected candidate is vetoed or nobody self-elects;
	// afterwards the station appoints the most trusted eligible node
	// directly. Zero means a sensible default.
	MaxRetries int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.HeadFraction <= 0 || c.HeadFraction > 1 {
		return fmt.Errorf("leach: HeadFraction must be in (0,1], got %v", c.HeadFraction)
	}
	if c.TIThreshold < 0 || c.TIThreshold >= 1 {
		return fmt.Errorf("leach: TIThreshold must be in [0,1), got %v", c.TIThreshold)
	}
	return nil
}

const defaultMaxRetries = 8

// Station is the base station: the durable home of trust state between
// cluster-head terms and the authority that vetoes untrusted candidates.
type Station struct {
	params core.Params
	trust  map[int]core.Record
}

// NewStation returns a base station persisting trust under params.
func NewStation(params core.Params) (*Station, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Station{params: params, trust: make(map[int]core.Record)}, nil
}

// StoreSnapshot merges an outgoing cluster head's trust table into the
// station's persisted state (§2: the CH "sends the aggregate TI
// information that it has gathered ... to the base station before ending
// its leadership").
func (s *Station) StoreSnapshot(snap map[int]core.Record) {
	for id, r := range snap {
		s.trust[id] = r
	}
}

// NewTable builds a trust table for a newly elected cluster head from the
// persisted state (§2: a newly elected CH "requests the base station for
// TI information for nodes in its cluster").
func (s *Station) NewTable() *core.Table {
	t := core.MustNewTable(s.params)
	t.Restore(s.trust)
	return t
}

// Snapshot returns a copy of the persisted trust state, for restoring into
// a newly constructed decision scheme (the generalization of NewTable to
// any trust-carrying scheme).
func (s *Station) Snapshot() map[int]core.Record {
	out := make(map[int]core.Record, len(s.trust))
	for id, r := range s.trust {
		out[id] = r
	}
	return out
}

// TI returns the persisted trust index for a node (1 if never reported).
func (s *Station) TI(nodeID int) float64 {
	if r, ok := s.trust[nodeID]; ok {
		tmp := core.MustNewTable(s.params)
		tmp.Restore(map[int]core.Record{nodeID: r})
		return tmp.TI(nodeID)
	}
	return 1
}

// Eligible reports whether the node's persisted trust passes the
// threshold and it is not isolated.
func (s *Station) Eligible(nodeID int, threshold float64) bool {
	if r, ok := s.trust[nodeID]; ok && r.Isolated {
		return false
	}
	return s.TI(nodeID) >= threshold
}

// Result is the outcome of one election round.
type Result struct {
	// Heads are the elected cluster heads, sorted by ID.
	Heads []int
	// Affiliation maps every non-head node to its chosen head.
	Affiliation map[int]int
	// Vetoed lists self-elected candidates the station rejected on trust
	// grounds this round.
	Vetoed []int
	// Retries is how many re-initiations the round needed.
	Retries int
	// Appointed indicates the station had to appoint a head directly
	// after exhausting retries.
	Appointed bool
}

// Clusters groups node IDs by their head, including the head itself.
// Members are appended in ascending ID order (not map order) so each
// bucket's backing array is built identically on every run.
func (r Result) Clusters() map[int][]int {
	out := make(map[int][]int, len(r.Heads))
	for _, h := range r.Heads {
		out[h] = []int{h}
	}
	ids := make([]int, 0, len(r.Affiliation))
	for id := range r.Affiliation {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		out[r.Affiliation[id]] = append(out[r.Affiliation[id]], id)
	}
	for _, members := range out {
		sort.Ints(members)
	}
	return out
}

// Election runs LEACH rounds over a fixed node population.
type Election struct {
	cfg      Config
	station  *Station
	channel  *radio.Channel
	src      *rng.Source
	nodes    []*node.Node
	round    int
	lastled  map[int]int // node ID -> round it last served (1-based)
	liveness func(int) bool
}

// SetLiveness installs a predicate consulted during eligibility checks and
// appointments: a node for which it returns false (crashed, partitioned)
// can neither self-elect nor be appointed. A nil predicate (the default)
// treats every node as up, preserving pre-fault behaviour.
func (e *Election) SetLiveness(up func(int) bool) { e.liveness = up }

func (e *Election) up(id int) bool { return e.liveness == nil || e.liveness(id) }

// NewElection returns an election controller. The channel is used only for
// its signal-strength model during affiliation.
func NewElection(cfg Config, station *Station, channel *radio.Channel,
	nodes []*node.Node, src *rng.Source) (*Election, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if station == nil || channel == nil || src == nil {
		return nil, fmt.Errorf("leach: station, channel, and rng are required")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("leach: need at least one node")
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = defaultMaxRetries
	}
	return &Election{
		cfg:     cfg,
		station: station,
		channel: channel,
		src:     src,
		nodes:   nodes,
		lastled: make(map[int]int),
	}, nil
}

// Round returns the number of completed election rounds.
func (e *Election) Round() int { return e.round }

// Run executes one election round and returns its result.
func (e *Election) Run() Result {
	e.round++
	var res Result
	cooloff := int(1 / e.cfg.HeadFraction)
	for attempt := 0; ; attempt++ {
		var heads []int
		for _, n := range e.nodes {
			if !e.eligibleNode(n, cooloff) {
				continue
			}
			p := e.cfg.HeadFraction
			if b := n.Battery(); b != nil {
				p *= b.Fraction()
			}
			if !e.src.Bernoulli(p) {
				continue
			}
			// Base-station veto on trust grounds (§2: "the central base
			// station will cancel this node's effort to become a CH").
			if !e.station.Eligible(n.ID(), e.cfg.TIThreshold) {
				res.Vetoed = append(res.Vetoed, n.ID())
				continue
			}
			heads = append(heads, n.ID())
		}
		if len(heads) > 0 {
			sort.Ints(heads)
			res.Heads = heads
			break
		}
		if attempt >= e.cfg.MaxRetries {
			if id, ok := e.appoint(); ok {
				res.Heads = []int{id}
				res.Appointed = true
			}
			break
		}
		res.Retries++
	}
	res.Affiliation = e.affiliate(res.Heads)
	for _, h := range res.Heads {
		e.lastled[h] = e.round
		if n := e.nodeByID(h); n != nil {
			n.MarkCH()
		}
	}
	sort.Ints(res.Vetoed)
	return res
}

// eligibleNode applies LEACH's rotation rule: a node that has led within
// the cool-off window sits out, and a dead battery disqualifies.
func (e *Election) eligibleNode(n *node.Node, cooloff int) bool {
	if last, ok := e.lastled[n.ID()]; ok && e.round-last < cooloff {
		return false
	}
	if b := n.Battery(); b != nil && !b.Alive() {
		return false
	}
	return e.up(n.ID())
}

// appoint is the station's fallback: pick the eligible node with the
// highest persisted trust (energy as tiebreaker).
func (e *Election) appoint() (int, bool) {
	ids := make([]int, 0, len(e.nodes))
	for _, n := range e.nodes {
		ids = append(ids, n.ID())
	}
	return e.AppointAmong(ids)
}

// AppointAmong runs the station's appointment ranking — highest persisted
// trust, residual energy as tiebreaker — over an explicit candidate set,
// skipping dead, down, and trust-vetoed nodes. It is the emergency
// re-election used when a serving head crashes mid-term: no new LEACH
// round, just the most trusted surviving member of the same cluster. The
// bool is false when no candidate qualifies.
func (e *Election) AppointAmong(ids []int) (int, bool) {
	bestID, bestTI, bestEnergy := -1, -1.0, -1.0
	for _, id := range ids {
		n := e.nodeByID(id)
		if n == nil || !e.up(id) {
			continue
		}
		if b := n.Battery(); b != nil && !b.Alive() {
			continue
		}
		if !e.station.Eligible(id, e.cfg.TIThreshold) {
			continue
		}
		ti := e.station.TI(id)
		energy := 1.0
		if b := n.Battery(); b != nil {
			energy = b.Fraction()
		}
		//lint:allow floateq argmax tie-break over values that are bit-identical across runs
		if ti > bestTI || (ti == bestTI && energy > bestEnergy) {
			bestID, bestTI, bestEnergy = id, ti, energy
		}
	}
	return bestID, bestID >= 0
}

// MarkLed records an out-of-round leadership term (a failover appointment)
// so the LEACH cool-off applies to emergency heads as it does to elected
// ones.
func (e *Election) MarkLed(id int) {
	e.lastled[id] = e.round
	if n := e.nodeByID(id); n != nil {
		n.MarkCH()
	}
}

// affiliate assigns every non-head node to the head whose advertisement it
// receives most strongly (§2: "affiliates itself with a single CH based on
// the strength of the signal received").
func (e *Election) affiliate(heads []int) map[int]int {
	out := make(map[int]int)
	if len(heads) == 0 {
		return out
	}
	headPos := make(map[int]geo.Point, len(heads))
	for _, h := range heads {
		if n := e.nodeByID(h); n != nil {
			headPos[h] = n.Pos()
		}
	}
	for _, n := range e.nodes {
		if _, isHead := headPos[n.ID()]; isHead {
			continue
		}
		best, bestRSS := -1, 0.0
		for _, h := range heads {
			rss := e.channel.LinkRSS(n.Pos(), headPos[h])
			if best == -1 || rss > bestRSS {
				best, bestRSS = h, rss
			}
		}
		out[n.ID()] = best
	}
	return out
}

func (e *Election) nodeByID(id int) *node.Node {
	for _, n := range e.nodes {
		if n.ID() == id {
			return n
		}
	}
	return nil
}
