package leach

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tibfit/tibfit/internal/core"
)

func TestStationSaveLoadRoundTrip(t *testing.T) {
	params := core.Params{Lambda: 0.25, FaultRate: 0.1, RemovalThreshold: 0.3}
	station, err := NewStation(params)
	if err != nil {
		t.Fatal(err)
	}
	ch := core.MustNewTable(params)
	for i := 0; i < 7; i++ {
		ch.Judge(3, false)
	}
	ch.Judge(5, true)
	for i := 0; i < 30; i++ {
		ch.Judge(9, false) // isolated
	}
	station.StoreSnapshot(ch.Snapshot())

	var buf bytes.Buffer
	if err := station.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{3, 5, 9, 42} {
		if got, want := loaded.TI(id), station.TI(id); got != want {
			t.Fatalf("loaded TI(%d) = %v, want %v", id, got, want)
		}
	}
	if loaded.Eligible(9, 0.1) {
		t.Fatal("isolated node eligible after reload")
	}
	// A table built from the loaded station matches one from the original.
	if got, want := loaded.NewTable().TI(3), station.NewTable().TI(3); got != want {
		t.Fatalf("rebuilt table TI = %v, want %v", got, want)
	}
}

func TestStationSaveIsHumanReadable(t *testing.T) {
	station, _ := NewStation(core.Params{Lambda: 0.25, FaultRate: 0.1})
	ch := core.MustNewTable(core.Params{Lambda: 0.25, FaultRate: 0.1})
	ch.Judge(1, false)
	station.StoreSnapshot(ch.Snapshot())
	var buf bytes.Buffer
	if err := station.Save(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"version": 1`, `"lambda": 0.25`, `"trust"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("save output missing %q:\n%s", want, out)
		}
	}
}

func TestLoadStationRejectsGarbage(t *testing.T) {
	if _, err := LoadStation(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadStation(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := LoadStation(strings.NewReader(`{"version": 1, "params": {}}`)); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestLoadStationEmptyTrust(t *testing.T) {
	doc := `{"version": 1, "params": {"lambda": 0.1, "fault_rate": 0.01}}`
	s, err := LoadStation(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.TI(1) != 1 {
		t.Fatal("fresh station should report full trust")
	}
}
