package leach

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadStation feeds arbitrary bytes to the station loader: it must
// either fail cleanly or produce a station that round-trips, and never
// panic.
func FuzzLoadStation(f *testing.F) {
	f.Add([]byte(`{"version":1,"params":{"lambda":0.25,"fault_rate":0.1}}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"version":1,"params":{"lambda":0.25,"fault_rate":0.1},"trust":{"3":{"V":2,"Faulty":2}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := LoadStation(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that loaded must save and reload identically.
		var buf strings.Builder
		if err := s.Save(&buf); err != nil {
			t.Fatalf("loaded station failed to save: %v", err)
		}
		s2, err := LoadStation(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("saved station failed to reload: %v", err)
		}
		for _, id := range []int{0, 1, 3, 7} {
			if s.TI(id) != s2.TI(id) {
				t.Fatalf("TI(%d) changed across round trip", id)
			}
		}
	})
}
