package leach

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/tibfit/tibfit/internal/core"
)

// The base station is the durable home of trust state (§2): cluster heads
// upload their tables at the end of each term and successors download
// them. A real deployment's base station also survives restarts, so the
// station state is serializable — a versioned JSON document carrying the
// trust parameters and every node record.

// stationFile is the on-disk schema.
type stationFile struct {
	Version int                 `json:"version"`
	Params  stationParams       `json:"params"`
	Trust   map[int]core.Record `json:"trust"`
}

type stationParams struct {
	Lambda           float64 `json:"lambda"`
	FaultRate        float64 `json:"fault_rate"`
	RemovalThreshold float64 `json:"removal_threshold"`
	Linear           bool    `json:"linear,omitempty"`
}

const stationFileVersion = 1

// Save writes the station's persisted trust state to w.
func (s *Station) Save(w io.Writer) error {
	doc := stationFile{
		Version: stationFileVersion,
		Params: stationParams{
			Lambda:           s.params.Lambda,
			FaultRate:        s.params.FaultRate,
			RemovalThreshold: s.params.RemovalThreshold,
			Linear:           s.params.Linear,
		},
		Trust: s.Snapshot(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("leach: saving station state: %w", err)
	}
	return nil
}

// LoadStation reads a station saved with Save. The embedded trust
// parameters are restored with it — a station loaded from disk must judge
// with the same rule that produced its records.
func LoadStation(r io.Reader) (*Station, error) {
	var doc stationFile
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("leach: loading station state: %w", err)
	}
	if doc.Version != stationFileVersion {
		return nil, fmt.Errorf("leach: unsupported station file version %d", doc.Version)
	}
	params := core.Params{
		Lambda:           doc.Params.Lambda,
		FaultRate:        doc.Params.FaultRate,
		RemovalThreshold: doc.Params.RemovalThreshold,
		Linear:           doc.Params.Linear,
	}
	s, err := NewStation(params)
	if err != nil {
		return nil, fmt.Errorf("leach: loaded station has invalid params: %w", err)
	}
	s.StoreSnapshot(doc.Trust)
	return s, nil
}
