package leach

import (
	"testing"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/energy"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/node"
	"github.com/tibfit/tibfit/internal/radio"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/sim"
)

func trustParams() core.Params {
	return core.Params{Lambda: 0.25, FaultRate: 0.1}
}

func testNodes(t *testing.T, n int) []*node.Node {
	t.Helper()
	cfg := node.Config{Trust: trustParams()}
	out := make([]*node.Node, n)
	for i := range out {
		out[i] = node.MustNew(i, geo.Point{X: float64(i * 10), Y: 0}, node.Correct, cfg, rng.New(int64(100+i)))
	}
	return out
}

func testChannel() *radio.Channel {
	return radio.NewChannel(radio.DefaultConfig(), sim.New(), rng.New(7))
}

func newElection(t *testing.T, cfg Config, station *Station, nodes []*node.Node, seed int64) *Election {
	t.Helper()
	e, err := NewElection(cfg, station, testChannel(), nodes, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{HeadFraction: 0.2}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{HeadFraction: 0},
		{HeadFraction: 1.5},
		{HeadFraction: 0.2, TIThreshold: 1},
		{HeadFraction: 0.2, TIThreshold: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestStationPersistsTrust(t *testing.T) {
	station, err := NewStation(trustParams())
	if err != nil {
		t.Fatal(err)
	}
	// First CH term accumulates state, then hands off.
	ch1 := core.MustNewTable(trustParams())
	for i := 0; i < 5; i++ {
		ch1.Judge(3, false)
	}
	station.StoreSnapshot(ch1.Snapshot())

	// Second CH inherits it.
	ch2 := station.NewTable()
	if got, want := ch2.TI(3), ch1.TI(3); got != want {
		t.Fatalf("inherited TI = %v, want %v", got, want)
	}
	if station.TI(3) != ch1.TI(3) {
		t.Fatalf("station TI = %v", station.TI(3))
	}
	if station.TI(99) != 1 {
		t.Fatal("unknown node TI != 1")
	}
}

func TestStationEligibility(t *testing.T) {
	station, _ := NewStation(core.Params{Lambda: 0.25, FaultRate: 0.1, RemovalThreshold: 0.1})
	ch := core.MustNewTable(core.Params{Lambda: 0.25, FaultRate: 0.1, RemovalThreshold: 0.1})
	for i := 0; i < 4; i++ {
		ch.Judge(1, false) // TI = e^{-0.9} ≈ 0.41 after 1 fault; after 4 ≈ 0.41^4
	}
	station.StoreSnapshot(ch.Snapshot())
	if station.Eligible(1, 0.5) {
		t.Fatal("distrusted node eligible at threshold 0.5")
	}
	if !station.Eligible(2, 0.5) {
		t.Fatal("fresh node not eligible")
	}
}

func TestStationIsolatedNeverEligible(t *testing.T) {
	p := core.Params{Lambda: 1, FaultRate: 0, RemovalThreshold: 0.5}
	station, _ := NewStation(p)
	ch := core.MustNewTable(p)
	ch.Judge(1, false)
	if !ch.Isolated(1) {
		t.Fatal("setup: not isolated")
	}
	station.StoreSnapshot(ch.Snapshot())
	if station.Eligible(1, 0) {
		t.Fatal("isolated node eligible")
	}
}

func TestElectionProducesAHead(t *testing.T) {
	nodes := testNodes(t, 10)
	station, _ := NewStation(trustParams())
	e := newElection(t, Config{HeadFraction: 0.2}, station, nodes, 1)
	res := e.Run()
	if len(res.Heads) == 0 {
		t.Fatalf("no head elected: %+v", res)
	}
	// Every non-head node is affiliated with some head.
	headSet := make(map[int]bool)
	for _, h := range res.Heads {
		headSet[h] = true
	}
	for _, n := range nodes {
		if headSet[n.ID()] {
			continue
		}
		if _, ok := res.Affiliation[n.ID()]; !ok {
			t.Fatalf("node %d unaffiliated", n.ID())
		}
	}
}

func TestElectionVetoesDistrusted(t *testing.T) {
	nodes := testNodes(t, 6)
	station, _ := NewStation(trustParams())
	// Destroy node 0-4's trust so only node 5 is eligible.
	ch := core.MustNewTable(trustParams())
	for id := 0; id < 5; id++ {
		for i := 0; i < 20; i++ {
			ch.Judge(id, false)
		}
	}
	station.StoreSnapshot(ch.Snapshot())
	e := newElection(t, Config{HeadFraction: 0.5, TIThreshold: 0.5}, station, nodes, 2)
	for round := 0; round < 20; round++ {
		res := e.Run()
		for _, h := range res.Heads {
			if h != 5 {
				t.Fatalf("round %d elected distrusted head %d", round, h)
			}
		}
	}
}

func TestElectionRotatesHeads(t *testing.T) {
	nodes := testNodes(t, 10)
	station, _ := NewStation(trustParams())
	e := newElection(t, Config{HeadFraction: 0.2}, station, nodes, 3)
	led := make(map[int]bool)
	for round := 0; round < 40; round++ {
		for _, h := range e.Run().Heads {
			led[h] = true
		}
	}
	if len(led) < 5 {
		t.Fatalf("only %d distinct heads over 40 rounds", len(led))
	}
}

func TestElectionCooloff(t *testing.T) {
	nodes := testNodes(t, 4)
	station, _ := NewStation(trustParams())
	e := newElection(t, Config{HeadFraction: 0.5}, station, nodes, 4)
	prev := map[int]bool{}
	for round := 0; round < 20; round++ {
		res := e.Run()
		for _, h := range res.Heads {
			if prev[h] {
				t.Fatalf("round %d re-elected head %d inside cool-off", round, h)
			}
		}
		prev = map[int]bool{}
		for _, h := range res.Heads {
			prev[h] = true
		}
	}
}

func TestElectionAppointsWhenNobodySelfElects(t *testing.T) {
	nodes := testNodes(t, 3)
	station, _ := NewStation(trustParams())
	// Tiny head fraction: self-election essentially never fires, so the
	// station appoints.
	e := newElection(t, Config{HeadFraction: 1e-9, MaxRetries: 2}, station, nodes, 5)
	res := e.Run()
	if !res.Appointed || len(res.Heads) != 1 {
		t.Fatalf("appointment fallback failed: %+v", res)
	}
}

func TestElectionSkipsDeadBatteries(t *testing.T) {
	nodes := testNodes(t, 4)
	for _, n := range nodes[:3] {
		b := energy.NewBattery(1)
		b.Draw(1)
		n.AttachBattery(b)
	}
	nodes[3].AttachBattery(energy.NewBattery(100))
	station, _ := NewStation(trustParams())
	e := newElection(t, Config{HeadFraction: 0.5}, station, nodes, 6)
	for round := 0; round < 10; round++ {
		for _, h := range e.Run().Heads {
			if h != 3 {
				t.Fatalf("dead-battery node %d elected", h)
			}
		}
	}
}

func TestAffiliationPicksStrongestSignal(t *testing.T) {
	nodes := testNodes(t, 5) // positions x = 0, 10, 20, 30, 40
	station, _ := NewStation(trustParams())
	e := newElection(t, Config{HeadFraction: 0.2}, station, nodes, 7)
	aff := e.affiliate([]int{0, 4})
	// Node 1 (x=10) is nearer head 0; node 3 (x=30) nearer head 4.
	if aff[1] != 0 || aff[3] != 4 {
		t.Fatalf("affiliation = %v", aff)
	}
}

func TestResultClusters(t *testing.T) {
	res := Result{
		Heads:       []int{1, 5},
		Affiliation: map[int]int{2: 1, 3: 5, 4: 5},
	}
	clusters := res.Clusters()
	if len(clusters[1]) != 2 || len(clusters[5]) != 3 {
		t.Fatalf("clusters = %v", clusters)
	}
	if clusters[5][0] != 3 || clusters[5][2] != 5 {
		t.Fatalf("cluster members not sorted: %v", clusters[5])
	}
}

func TestNewElectionValidation(t *testing.T) {
	nodes := testNodes(t, 2)
	station, _ := NewStation(trustParams())
	if _, err := NewElection(Config{HeadFraction: 0}, station, testChannel(), nodes, rng.New(1)); err == nil {
		t.Fatal("accepted invalid config")
	}
	if _, err := NewElection(Config{HeadFraction: 0.5}, nil, testChannel(), nodes, rng.New(1)); err == nil {
		t.Fatal("accepted nil station")
	}
	if _, err := NewElection(Config{HeadFraction: 0.5}, station, testChannel(), nil, rng.New(1)); err == nil {
		t.Fatal("accepted empty nodes")
	}
}
