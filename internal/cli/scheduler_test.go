package cli

import (
	"flag"
	"io"
	"strings"
	"testing"

	"github.com/tibfit/tibfit/internal/sim"
)

func parseScheduler(t *testing.T, argv ...string) *SchedulerFlag {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var sched SchedulerFlag
	sched.Register(fs)
	if err := fs.Parse(argv); err != nil {
		t.Fatal(err)
	}
	return &sched
}

// restoreDefaultScheduler snapshots the process default and restores it
// when the test ends: Apply mutates process-global state.
func restoreDefaultScheduler(t *testing.T) {
	t.Helper()
	prev := sim.DefaultScheduler()
	t.Cleanup(func() {
		if err := sim.SetDefaultScheduler(prev); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSchedulerFlagDefaultKeepsProcessDefault(t *testing.T) {
	restoreDefaultScheduler(t)
	sched := parseScheduler(t)
	if sched.Name != "" {
		t.Fatalf("default Name = %q, want empty", sched.Name)
	}
	before := sim.DefaultScheduler()
	if err := sched.Apply(); err != nil {
		t.Fatal(err)
	}
	if got := sim.DefaultScheduler(); got != before {
		t.Fatalf("empty flag changed process default: %q -> %q", before, got)
	}
}

func TestSchedulerFlagAppliesSelection(t *testing.T) {
	restoreDefaultScheduler(t)
	for _, name := range sim.Schedulers() {
		sched := parseScheduler(t, "-scheduler", name)
		if err := sched.Apply(); err != nil {
			t.Fatalf("Apply(%q): %v", name, err)
		}
		if got := sim.DefaultScheduler(); got != name {
			t.Fatalf("process default = %q, want %q", got, name)
		}
	}
}

func TestSchedulerFlagRejectsUnknown(t *testing.T) {
	restoreDefaultScheduler(t)
	sched := parseScheduler(t, "-scheduler", "fibheap")
	err := sched.Apply()
	if err == nil {
		t.Fatal("Apply(fibheap) succeeded")
	}
	for _, name := range sim.Schedulers() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid scheduler %q", err, name)
		}
	}
}

// TestSchedulerFlagUnknownExactMessage pins the full user-facing error: a
// typo on -scheduler must name the flag, quote the bad value, and list
// every valid queue. The help scripts grep for this shape.
func TestSchedulerFlagUnknownExactMessage(t *testing.T) {
	restoreDefaultScheduler(t)
	sched := parseScheduler(t, "-scheduler", "fibheap")
	err := sched.Apply()
	if err == nil {
		t.Fatal("Apply(fibheap) succeeded")
	}
	const want = `-scheduler: sim: unknown scheduler "fibheap" (valid: calendar, heap)`
	if err.Error() != want {
		t.Fatalf("Apply(fibheap) error = %q, want %q", err, want)
	}
	if got := sim.DefaultScheduler(); got != sim.SchedulerCalendar && got != sim.SchedulerHeap {
		t.Fatalf("rejected flag corrupted process default: %q", got)
	}
}
