package cli

import (
	"flag"
	"fmt"
	"strings"

	"github.com/tibfit/tibfit/internal/sim"
)

// SchedulerFlag carries the event-queue selection shared by the cmd
// tools. An empty Name keeps the process default (TIBFIT_SCHEDULER, or
// the calendar queue).
type SchedulerFlag struct {
	// Name is the -scheduler value: one of sim.Schedulers().
	Name string
}

// Register installs -scheduler on the flag set. The default is empty —
// "keep the process default" — so the TIBFIT_SCHEDULER environment
// variable still applies when the flag is absent.
func (s *SchedulerFlag) Register(fs *flag.FlagSet) {
	fs.StringVar(&s.Name, "scheduler", "",
		"event-queue implementation: "+strings.Join(sim.Schedulers(), ", ")+
			" (default: $"+sim.EnvScheduler+" or "+sim.SchedulerCalendar+")")
}

// Apply validates the parsed value and installs it as the process-default
// scheduler, so every kernel the tool builds — including ones deep inside
// the experiment harness — picks it up. An empty value is a no-op.
func (s *SchedulerFlag) Apply() error {
	if s.Name == "" {
		return nil
	}
	if err := sim.SetDefaultScheduler(s.Name); err != nil {
		return fmt.Errorf("-scheduler: %w", err) // sim's error already lists the valid names
	}
	return nil
}
