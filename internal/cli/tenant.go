package cli

import (
	"fmt"
)

// maxTenantLen bounds tenant names; they appear in URL paths and file
// names, so they stay short and unambiguous.
const maxTenantLen = 64

// ValidateTenant checks a tenant name as used by tibfit-serve and
// tibfit-load: 1–64 characters drawn from lowercase letters, digits,
// '-', '_', and '.', not starting with a separator. The rule keeps
// names safe as URL path segments and snapshot file stems without any
// escaping.
func ValidateTenant(name string) error {
	if name == "" {
		return fmt.Errorf("cli: tenant name must not be empty")
	}
	if len(name) > maxTenantLen {
		return fmt.Errorf("cli: tenant name longer than %d characters: %q", maxTenantLen, name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
			if i == 0 {
				return fmt.Errorf("cli: tenant name must start with a letter or digit: %q", name)
			}
		default:
			return fmt.Errorf("cli: tenant name may use lowercase letters, digits, '-', '_', '.': %q", name)
		}
	}
	return nil
}
