// Package cli holds the flag plumbing shared by the tibfit command-line
// tools. Every tool that picks a decision scheme (tibfit-sim, tibfit-net,
// tibfit-figures, tibfit-bench) installs the same -scheme/-lambda/-fr
// trio through SchemeFlags, so the flags parse, validate, and
// "did you mean" identically everywhere.
package cli

import (
	"flag"
	"strings"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
)

// SchemeFlags carries the decision-scheme selection shared by the cmd
// tools. Zero values for Lambda/FaultRate mean "keep the experiment
// default".
type SchemeFlags struct {
	// Scheme is the -scheme value: any name or alias in the decision
	// registry.
	Scheme string
	// Lambda is the -lambda override for the trust decay constant λ
	// (0 keeps the per-experiment default).
	Lambda float64
	// FaultRate is the -fr override for the tolerated natural error rate
	// f_r (0 keeps the per-experiment default).
	FaultRate float64
}

// Register installs -scheme, -lambda, and -fr on the flag set with the
// given default scheme name.
func (s *SchemeFlags) Register(fs *flag.FlagSet, defaultScheme string) {
	fs.StringVar(&s.Scheme, "scheme", defaultScheme,
		"decision scheme: "+strings.Join(decision.Names(), ", ")+" (alias: baseline)")
	fs.Float64Var(&s.Lambda, "lambda", 0,
		"trust decay constant λ (0 = experiment default)")
	fs.Float64Var(&s.FaultRate, "fr", 0,
		"tolerated natural error rate f_r (0 = experiment default)")
}

// Resolve validates the parsed -scheme value against the registry,
// returning its canonical name. Unknown names come back as the registry's
// "did you mean" error. An empty value resolves to itself, meaning "keep
// the per-experiment default".
func (s *SchemeFlags) Resolve() (string, error) {
	if s.Scheme == "" {
		return "", nil
	}
	return decision.Resolve(s.Scheme)
}

// ApplyLambda overwrites lam when -lambda was set.
func (s *SchemeFlags) ApplyLambda(lam *float64) {
	if s.Lambda > 0 {
		*lam = s.Lambda
	}
}

// ApplyFaultRate overwrites fr when -fr was set.
func (s *SchemeFlags) ApplyFaultRate(fr *float64) {
	if s.FaultRate > 0 {
		*fr = s.FaultRate
	}
}

// ApplyTrust overlays the -lambda and -fr overrides onto an experiment's
// default trust parameters, leaving zero-valued flags alone.
func (s *SchemeFlags) ApplyTrust(p core.Params) core.Params {
	if s.Lambda > 0 {
		p.Lambda = s.Lambda
	}
	if s.FaultRate > 0 {
		p.FaultRate = s.FaultRate
	}
	return p
}
