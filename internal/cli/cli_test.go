package cli

import (
	"errors"
	"flag"
	"io"
	"strings"
	"testing"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
)

func parse(t *testing.T, defaultScheme string, argv ...string) *SchemeFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var sf SchemeFlags
	sf.Register(fs, defaultScheme)
	if err := fs.Parse(argv); err != nil {
		t.Fatal(err)
	}
	return &sf
}

func TestRegisterDefaults(t *testing.T) {
	sf := parse(t, "tibfit")
	if sf.Scheme != "tibfit" || sf.Lambda != 0 || sf.FaultRate != 0 {
		t.Fatalf("defaults = %+v", sf)
	}
	scheme, err := sf.Resolve()
	if err != nil || scheme != "tibfit" {
		t.Fatalf("Resolve() = %q, %v", scheme, err)
	}
}

func TestResolveAlias(t *testing.T) {
	sf := parse(t, "tibfit", "-scheme", "baseline")
	scheme, err := sf.Resolve()
	if err != nil || scheme != "majority" {
		t.Fatalf("Resolve(baseline) = %q, %v", scheme, err)
	}
}

// An empty default (tibfit-figures) must resolve to "", meaning "keep each
// figure's own scheme" — critical for byte-identity of the committed
// figures.
func TestResolveEmptyKeepsDefault(t *testing.T) {
	sf := parse(t, "")
	scheme, err := sf.Resolve()
	if err != nil || scheme != "" {
		t.Fatalf("Resolve(\"\") = %q, %v", scheme, err)
	}
}

func TestResolveTypoSuggests(t *testing.T) {
	sf := parse(t, "tibfit", "-scheme", "fuzy")
	if _, err := sf.Resolve(); err == nil ||
		!strings.Contains(err.Error(), `did you mean "fuzzy"`) {
		t.Fatalf("Resolve(fuzy) err = %v", err)
	}
}

// TestResolveTypoExactMessage pins the complete did-you-mean error a user
// sees for a -scheme typo: sentinel prefix, quoted input, suggestion, and
// the full registry listing in sorted order.
func TestResolveTypoExactMessage(t *testing.T) {
	sf := parse(t, "tibfit", "-scheme", "fuzy")
	_, err := sf.Resolve()
	if err == nil {
		t.Fatal("Resolve(fuzy) succeeded")
	}
	if !errors.Is(err, decision.ErrUnknownScheme) {
		t.Fatalf("err = %v, want ErrUnknownScheme", err)
	}
	const want = `decision: unknown scheme "fuzy" (did you mean "fuzzy"?); registered: baseline, dynamic-trust, fuzzy, linear, majority, tibfit`
	if err.Error() != want {
		t.Fatalf("Resolve(fuzy) error = %q, want %q", err, want)
	}
}

// An implausible name gets the listing but no far-fetched suggestion.
func TestResolveImplausibleExactMessage(t *testing.T) {
	sf := parse(t, "tibfit", "-scheme", "zzzzzzzzzzz")
	_, err := sf.Resolve()
	if err == nil {
		t.Fatal("Resolve(zzzzzzzzzzz) succeeded")
	}
	const want = `decision: unknown scheme "zzzzzzzzzzz"; registered: baseline, dynamic-trust, fuzzy, linear, majority, tibfit`
	if err.Error() != want {
		t.Fatalf("Resolve(zzzzzzzzzzz) error = %q, want %q", err, want)
	}
}

func TestApplyOverrides(t *testing.T) {
	sf := parse(t, "tibfit", "-lambda", "0.4", "-fr", "0.02")
	base := core.Params{Lambda: 0.1, FaultRate: 0.05, RemovalThreshold: 0.3}
	got := sf.ApplyTrust(base)
	if got.Lambda != 0.4 || got.FaultRate != 0.02 || got.RemovalThreshold != 0.3 {
		t.Fatalf("ApplyTrust = %+v", got)
	}
	lam, fr := 0.1, 0.05
	sf.ApplyLambda(&lam)
	sf.ApplyFaultRate(&fr)
	if lam != 0.4 || fr != 0.02 {
		t.Fatalf("ApplyLambda/ApplyFaultRate = %v, %v", lam, fr)
	}
}

func TestApplyZeroIsNoOp(t *testing.T) {
	sf := parse(t, "tibfit")
	base := core.Params{Lambda: 0.1, FaultRate: 0.05}
	if got := sf.ApplyTrust(base); got != base {
		t.Fatalf("zero flags changed params: %+v", got)
	}
	lam := 0.1
	sf.ApplyLambda(&lam)
	if lam != 0.1 {
		t.Fatalf("zero -lambda overwrote: %v", lam)
	}
}
