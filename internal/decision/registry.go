package decision

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Canonical scheme names. SchemeBaseline is an alias for SchemeMajority —
// the name the paper's figures use for stateless majority voting.
const (
	SchemeTIBFIT       = "tibfit"
	SchemeMajority     = "majority"
	SchemeBaseline     = "baseline"
	SchemeLinear       = "linear"
	SchemeDynamicTrust = "dynamic-trust"
	SchemeFuzzy        = "fuzzy"
)

// Factory constructs a fresh Scheme instance under the given parameters.
type Factory func(Params) (Scheme, error)

// entry is one registered scheme.
type entry struct {
	title   string
	factory Factory
}

var (
	registry = map[string]entry{}
	aliases  = map[string]string{}
)

// ErrUnknownScheme is returned by New for unregistered names.
var ErrUnknownScheme = errors.New("decision: unknown scheme")

// Register adds a scheme under a unique name. The title is the display
// form figure legends use. Register panics on empty or duplicate names —
// a registration conflict is a programming error, caught at init.
func Register(name, title string, factory Factory) {
	if name == "" || factory == nil {
		panic("decision: Register needs a name and a factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("decision: scheme %q registered twice", name))
	}
	if _, dup := aliases[name]; dup {
		panic(fmt.Sprintf("decision: scheme %q already registered as an alias", name))
	}
	registry[name] = entry{title: title, factory: factory}
}

// RegisterAlias makes alias resolve to an already-registered canonical
// name, with its own display title. It panics on conflicts, like Register.
func RegisterAlias(alias, title, canonical string) {
	if _, ok := registry[canonical]; !ok {
		panic(fmt.Sprintf("decision: alias %q targets unregistered scheme %q", alias, canonical))
	}
	if _, dup := registry[alias]; dup {
		panic(fmt.Sprintf("decision: alias %q collides with a registered scheme", alias))
	}
	if _, dup := aliases[alias]; dup {
		panic(fmt.Sprintf("decision: alias %q registered twice", alias))
	}
	aliases[alias] = canonical
	titles[alias] = title
}

// titles holds display names for aliases (canonical titles live in the
// registry entries).
var titles = map[string]string{}

// Names returns the canonical registered scheme names in sorted order
// (aliases excluded), so iteration over the registry is deterministic.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Known reports whether the name resolves to a registered scheme,
// directly or through an alias.
func Known(name string) bool {
	if _, ok := registry[name]; ok {
		return true
	}
	_, ok := aliases[name]
	return ok
}

// Title returns the display name figure legends use for a scheme.
// Unregistered names render as themselves.
func Title(name string) string {
	if t, ok := titles[name]; ok {
		return t
	}
	if e, ok := registry[name]; ok {
		return e.title
	}
	return name
}

// Resolve maps a name or alias to its canonical registered name. Unknown
// names error with a "did you mean" suggestion and the registered listing,
// so a typo on a -scheme flag is self-explanatory.
func Resolve(name string) (string, error) {
	if canonical, ok := aliases[name]; ok {
		name = canonical
	}
	if _, ok := registry[name]; !ok {
		if s := Suggest(name); s != "" {
			return "", fmt.Errorf("%w %q (did you mean %q?); registered: %s",
				ErrUnknownScheme, name, s, strings.Join(allNames(), ", "))
		}
		return "", fmt.Errorf("%w %q; registered: %s",
			ErrUnknownScheme, name, strings.Join(allNames(), ", "))
	}
	return name, nil
}

// New constructs a scheme by name or alias, with Resolve's error behaviour
// on unknown names.
func New(name string, p Params) (Scheme, error) {
	canonical, err := Resolve(name)
	if err != nil {
		return nil, err
	}
	return registry[canonical].factory(p)
}

// allNames returns canonical names plus aliases, sorted, for error text.
func allNames() []string {
	out := Names()
	for alias := range aliases {
		out = append(out, alias)
	}
	sort.Strings(out)
	return out
}

// Suggest returns the registered name (or alias) closest to the given
// one, or "" when nothing is plausibly close (edit distance > 3).
func Suggest(name string) string {
	best, bestDist := "", 4
	for _, candidate := range allNames() {
		if d := editDistance(name, candidate); d < bestDist {
			best, bestDist = candidate, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between two short names.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
