package decision

import (
	"math"
	"testing"

	"github.com/tibfit/tibfit/internal/core"
)

func TestDynamicEWMA(t *testing.T) {
	s, err := New(SchemeDynamicTrust, Params{Trust: testTrust(), Beta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if ti := s.TI(7); ti != 1 {
		t.Fatalf("fresh TI = %v, want 1", ti)
	}
	s.Judge(7, false) // 0.5·1 + 0 = 0.5
	if ti := s.TI(7); math.Abs(ti-0.5) > 1e-12 {
		t.Fatalf("TI after one fault = %v, want 0.5", ti)
	}
	s.Judge(7, true) // 0.5·0.5 + 0.5 = 0.75
	if ti := s.TI(7); math.Abs(ti-0.75) > 1e-12 {
		t.Fatalf("TI after recovery = %v, want 0.75", ti)
	}
	if s.Isolated(7) || s.Weight(7) != s.TI(7) {
		t.Fatal("non-isolated weight must equal TI")
	}
}

func TestDynamicBetaValidation(t *testing.T) {
	if _, err := New(SchemeDynamicTrust, Params{Trust: testTrust(), Beta: 1.5}); err == nil {
		t.Fatal("accepted beta > 1")
	}
	s, err := New(SchemeDynamicTrust, Params{Trust: testTrust()})
	if err != nil {
		t.Fatal(err)
	}
	s.Judge(1, false)
	if ti := s.TI(1); math.Abs(ti-DefaultBeta) > 1e-12 {
		t.Fatalf("default beta not applied: TI = %v, want %v", ti, DefaultBeta)
	}
}

func TestFuzzyMembershipRamp(t *testing.T) {
	s, err := New(SchemeFuzzy, Params{Trust: testTrust(), FuzzyLow: 0.25, FuzzyHigh: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if ti := s.TI(3); ti != 1 {
		t.Fatalf("fresh TI = %v, want 1 (prior ratio 2/2 above the ramp)", ti)
	}
	// 0 correct, 2 faulty: ratio (0+2)/(0+2+2) = 0.5, mid-ramp -> 0.5.
	s.Judge(3, false)
	s.Judge(3, false)
	if ti := s.TI(3); math.Abs(ti-0.5) > 1e-12 {
		t.Fatalf("mid-ramp TI = %v, want 0.5", ti)
	}
	// 0 correct, 6 faulty: ratio 2/8 = 0.25 <= low -> 0.
	for i := 0; i < 4; i++ {
		s.Judge(3, false)
	}
	if ti := s.TI(3); ti != 0 {
		t.Fatalf("below-ramp TI = %v, want 0", ti)
	}
}

func TestFuzzyRampValidation(t *testing.T) {
	if _, err := New(SchemeFuzzy, Params{Trust: testTrust(), FuzzyLow: 0.8, FuzzyHigh: 0.2}); err == nil {
		t.Fatal("accepted inverted ramp")
	}
	if _, err := New(SchemeFuzzy, Params{Trust: testTrust(), FuzzyLow: 0.1, FuzzyHigh: 1.5}); err == nil {
		t.Fatal("accepted high > 1")
	}
}

func TestStatefulRoundTrip(t *testing.T) {
	for _, name := range Names() {
		p := Params{Trust: testTrust()}
		s, err := New(name, p)
		if err != nil {
			t.Fatal(err)
		}
		st, ok := s.(Stateful)
		if !ok {
			continue // stateless schemes have nothing to hand off
		}
		for i := 0; i < 30; i++ {
			s.Judge(i%5, i%3 != 0)
		}
		snap := st.Snapshot()

		fresh, err := New(name, p)
		if err != nil {
			t.Fatal(err)
		}
		fresh.(Stateful).Restore(snap)
		for id := 0; id < 5; id++ {
			if got, want := fresh.TI(id), s.TI(id); math.Abs(got-want) > 1e-9 {
				t.Errorf("%s: restored TI(%d) = %v, want %v", name, id, got, want)
			}
		}
		// Schemes with exponential trust encode Record.V under the §3
		// convention TI = exp(-λ·V), so the station can hand records to
		// any of them. (The linear ablation decodes its raw v through a
		// linear table instead — its round-trip is covered above.)
		if name == SchemeLinear {
			continue
		}
		for id, r := range snap {
			if got, want := math.Exp(-p.Trust.Lambda*r.V), s.TI(id); math.Abs(got-want) > 1e-9 {
				t.Errorf("%s: station decode of node %d = %v, scheme TI %v", name, id, got, want)
			}
		}
	}
}

func TestAdapt(t *testing.T) {
	if Adapt(nil) != nil {
		t.Fatal("Adapt(nil) must stay nil for constructor validation")
	}

	table := core.MustNewTable(testTrust())
	table.Judge(4, false)
	s := Adapt(table)
	if s.Name() != "tibfit" {
		t.Fatalf("adapted table Name = %q", s.Name())
	}
	if s.TI(4) != table.TI(4) || s.TI(4) >= 1 {
		t.Fatalf("adapted table TI = %v, table %v", s.TI(4), table.TI(4))
	}
	if got := Adapt(s); got != s {
		t.Fatal("Adapt of a Scheme must be the identity")
	}

	b := Adapt(core.Baseline{})
	if b.Name() != "baseline" || b.TI(9) != 1 || b.IsolatedNodes() != nil {
		t.Fatalf("adapted baseline: name=%q TI=%v", b.Name(), b.TI(9))
	}

	w := Adapt(halfWeigher{})
	if w.TI(1) != 0.5 || w.Weight(1) != 0.5 || w.IsolatedNodes() != nil {
		t.Fatalf("fallback adapter: TI=%v Weight=%v", w.TI(1), w.Weight(1))
	}
	if dec := w.Arbitrate([]int{1, 2, 3}, []int{4}); !dec.Occurred {
		t.Fatalf("fallback arbitration = %+v", dec)
	}
}

// halfWeigher exercises Adapt's fallback path for foreign Weigher
// implementations.
type halfWeigher struct{}

func (halfWeigher) Name() string       { return "half" }
func (halfWeigher) Weight(int) float64 { return 0.5 }
func (halfWeigher) Judge(int, bool)    {}
func (halfWeigher) Isolated(int) bool  { return false }
