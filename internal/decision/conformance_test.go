package decision

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"github.com/tibfit/tibfit/internal/core"
)

// The scheme-conformance harness: every registered scheme, whatever its
// trust model, must honour the contract the aggregation pipeline and the
// experiments rely on —
//
//   - trust indices and vote weights stay in [0, 1] over any verdict
//     history;
//   - unknown nodes weigh 1 (full initial trust), are not isolated, and
//     report TI 1;
//   - the removal threshold means one thing everywhere: whenever a judged
//     node's TI sits at or below the threshold it is isolated, an
//     isolated node weighs 0 and ignores further verdicts, and
//     IsolatedNodes() lists exactly the isolated IDs, sorted;
//   - Arbitrate is pure: repeated calls agree, no trust state moves, and
//     caller-owned argument slices come back untouched;
//   - the whole scheme is deterministic: two instances fed the same
//     verdict history agree on every observable.
//
// (Campaign-level byte-identity across -parallel worker counts is pinned
// per scheme in internal/experiment's conformance test, which needs the
// sweep harness.)

// conformanceParams gives every scheme an isolation threshold so the
// shared semantics are exercised.
func conformanceParams() Params {
	return Params{Trust: core.Params{Lambda: 0.25, FaultRate: 0.1, RemovalThreshold: 0.5}}
}

// verdictSequence is a fixed, deterministic interleaving of judgments over
// a small population: node IDs cycle, and every third verdict is faulty
// except node 0, which is always faulty (so somebody crosses the
// threshold).
func verdictSequence(n int) []struct {
	node    int
	correct bool
} {
	out := make([]struct {
		node    int
		correct bool
	}, n)
	for i := range out {
		out[i].node = i % 7
		out[i].correct = out[i].node != 0 && i%3 != 0
	}
	return out
}

func TestConformanceTrustBounds(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, conformanceParams())
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range verdictSequence(400) {
			s.Judge(v.node, v.correct)
			ti, w := s.TI(v.node), s.Weight(v.node)
			if ti < 0 || ti > 1 || math.IsNaN(ti) {
				t.Fatalf("%s: TI out of [0,1] after verdict %d: %v", name, i, ti)
			}
			if w < 0 || w > 1 || math.IsNaN(w) {
				t.Fatalf("%s: Weight out of [0,1] after verdict %d: %v", name, i, w)
			}
		}
	}
}

func TestConformanceUnknownNodes(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, conformanceParams())
		if err != nil {
			t.Fatal(err)
		}
		const stranger = 9999
		if s.TI(stranger) != 1 || s.Weight(stranger) != 1 || s.Isolated(stranger) {
			t.Errorf("%s: unknown node: TI=%v Weight=%v Isolated=%v, want 1/1/false",
				name, s.TI(stranger), s.Weight(stranger), s.Isolated(stranger))
		}
	}
}

func TestConformanceIsolationSemantics(t *testing.T) {
	p := conformanceParams()
	threshold := p.Trust.RemovalThreshold
	for _, name := range Names() {
		s, err := New(name, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range verdictSequence(400) {
			s.Judge(v.node, v.correct)
			// The shared threshold invariant: a judged node at or
			// below the threshold must be isolated (vacuous for
			// stateless schemes, whose TI never leaves 1).
			if s.TI(v.node) <= threshold && !s.Isolated(v.node) {
				t.Fatalf("%s: node %d at TI %v <= %v but not isolated",
					name, v.node, s.TI(v.node), threshold)
			}
			if s.Isolated(v.node) && s.Weight(v.node) != 0 {
				t.Fatalf("%s: isolated node %d weighs %v, want 0",
					name, v.node, s.Weight(v.node))
			}
		}

		iso := s.IsolatedNodes()
		if !sort.IntsAreSorted(iso) {
			t.Fatalf("%s: IsolatedNodes not sorted: %v", name, iso)
		}
		for _, id := range iso {
			if !s.Isolated(id) {
				t.Fatalf("%s: IsolatedNodes lists %d but Isolated(%d) = false", name, id, id)
			}
			// Verdicts on isolated nodes are ignored.
			before := s.TI(id)
			s.Judge(id, true)
			if s.TI(id) != before || !s.Isolated(id) {
				t.Fatalf("%s: verdict on isolated node %d moved state", name, id)
			}
		}
		for id := 0; id < 7; id++ {
			listed := false
			for _, x := range iso {
				if x == id {
					listed = true
				}
			}
			if s.Isolated(id) != listed {
				t.Fatalf("%s: Isolated(%d)=%v but listed=%v", name, id, s.Isolated(id), listed)
			}
		}
	}
}

func TestConformanceArbitratePure(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, conformanceParams())
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range verdictSequence(60) {
			s.Judge(v.node, v.correct)
		}
		reporters := []int{5, 3, 1, 0}
		silent := []int{6, 2, 4}
		repCopy := append([]int(nil), reporters...)
		silCopy := append([]int(nil), silent...)

		tiBefore := make([]float64, 7)
		for id := range tiBefore {
			tiBefore[id] = s.TI(id)
		}
		first := s.Arbitrate(reporters, silent)
		second := s.Arbitrate(reporters, silent)
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("%s: Arbitrate not repeatable:\n%+v\n%+v", name, first, second)
		}
		for id := range tiBefore {
			if s.TI(id) != tiBefore[id] {
				t.Fatalf("%s: Arbitrate moved TI(%d)", name, id)
			}
		}
		if !reflect.DeepEqual(reporters, repCopy) || !reflect.DeepEqual(silent, silCopy) {
			t.Fatalf("%s: Arbitrate mutated caller slices", name)
		}
	}
}

func TestConformanceDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, err := New(name, conformanceParams())
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(name, conformanceParams())
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range verdictSequence(400) {
			a.Judge(v.node, v.correct)
			b.Judge(v.node, v.correct)
		}
		for id := 0; id < 7; id++ {
			if a.TI(id) != b.TI(id) || a.Weight(id) != b.Weight(id) || a.Isolated(id) != b.Isolated(id) {
				t.Fatalf("%s: two identical histories disagree on node %d", name, id)
			}
		}
		if !reflect.DeepEqual(a.IsolatedNodes(), b.IsolatedNodes()) {
			t.Fatalf("%s: isolation sets disagree", name)
		}
		da := a.Arbitrate([]int{1, 2, 3}, []int{4, 5})
		db := b.Arbitrate([]int{1, 2, 3}, []int{4, 5})
		if !reflect.DeepEqual(da, db) {
			t.Fatalf("%s: arbitration disagrees: %+v vs %+v", name, da, db)
		}
	}
}
