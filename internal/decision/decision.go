// Package decision is the pluggable decision-engine layer: the policy
// seam between the aggregation pipeline (windows, report collection,
// verdict broadcast — internal/aggregator) and the question of how a
// window's two sides are weighed, arbitrated, and fed back into per-node
// trust state.
//
// The paper's contribution is exactly such a policy — trust-weighted CTI
// voting (§3) — and the related work swaps the policy while keeping the
// pipeline: Wang & Liu's dynamic-trust event-region detection
// (arXiv:1610.02291) and FAIR's fuzzy-weighted aggregation
// (arXiv:0901.1095) both fit the same seam. Each policy is a Scheme,
// constructed by name through the package registry, so experiments,
// figures, and the command-line tools select decision engines uniformly
// (see docs/SCHEMES.md for each scheme's provenance and parameters).
package decision

import (
	"math"

	"github.com/tibfit/tibfit/internal/core"
)

// Scheme is one decision engine: the per-report vote weights, the window
// arbitration, and the post-decision trust feedback. It extends
// core.Weigher (weigh/judge/isolate) with window arbitration and the
// trust introspection the experiments report on. A Scheme instance holds
// one sink's state and, like core.Table, is not safe for concurrent use.
type Scheme interface {
	core.Weigher

	// TI returns the node's current trust index in [0, 1], ignoring
	// isolation (an isolated node keeps its last index; its *weight* is
	// zero). Unknown nodes have TI 1. Stateless schemes report 1.
	TI(node int) float64

	// IsolatedNodes returns the sorted IDs of all isolated nodes.
	IsolatedNodes() []int

	// Arbitrate runs one window vote over the reporter and silent sides
	// and returns the decision without committing any trust updates. The
	// argument slices may be caller-owned scratch; implementations must
	// copy what they keep (core.DecideBinary already does).
	Arbitrate(reporters, silent []int) core.BinaryDecision
}

// Stateful is implemented by schemes whose per-node trust state survives
// cluster-head rotation through the base station (§2's trust handoff).
// The snapshot uses core.Record with the convention that Record.V is the
// §3 fault accumulator equivalent of the scheme's trust index
// (TI = exp(-λ·V)), so the base station's eligibility checks
// (leach.Station.TI) read any scheme's records correctly.
type Stateful interface {
	Snapshot() map[int]core.Record
	Restore(map[int]core.Record)
}

// Params configures scheme construction. Trust is consulted by every
// trust-carrying scheme; the scheme-specific knobs fall back to their
// documented defaults when zero.
type Params struct {
	// Trust carries the §3 parameters (λ, f_r, removal threshold, linear
	// ablation). Every registered scheme honours Trust.RemovalThreshold
	// with the same semantics: once a judged node's trust index falls to
	// or below the threshold the node is isolated — zero weight, further
	// judgments ignored.
	Trust core.Params

	// Beta is the dynamic-trust scheme's moving-average retention factor
	// in (0, 1): each verdict updates T ← β·T + (1-β)·outcome
	// (arXiv:1610.02291). Zero means DefaultBeta.
	Beta float64

	// FuzzyLow and FuzzyHigh bound the fuzzy scheme's membership ramp
	// over the smoothed correctness ratio (arXiv:0901.1095): ratios at or
	// below FuzzyLow weigh 0, at or above FuzzyHigh weigh 1, linear in
	// between. Zeros mean DefaultFuzzyLow / DefaultFuzzyHigh.
	FuzzyLow  float64
	FuzzyHigh float64
}

// Scheme-specific parameter defaults.
const (
	// DefaultBeta keeps ~85% of the previous trust estimate per verdict,
	// the midpoint of the weighting range arXiv:1610.02291 explores.
	DefaultBeta = 0.85
	// DefaultFuzzyLow / DefaultFuzzyHigh place the fuzzy ramp so a node
	// must be judged correct clearly more often than not to keep weight.
	DefaultFuzzyLow  = 0.25
	DefaultFuzzyHigh = 0.75
)

// minTI floors trust indices before log-encoding them as accumulators;
// below it a persisted record is indistinguishable from "no trust".
const minTI = 1e-12

// vFromTI encodes a trust index as the equivalent §3 fault accumulator
// (TI = exp(-λ·v)) for base-station persistence; see Stateful.
func vFromTI(ti, lambda float64) float64 {
	if ti >= 1 {
		return 0
	}
	if ti < minTI {
		ti = minTI
	}
	return -math.Log(ti) / lambda
}

// tiFromV is the inverse of vFromTI.
func tiFromV(v, lambda float64) float64 {
	if v <= 0 {
		return 1
	}
	return math.Exp(-lambda * v)
}

// Adapt wraps a bare core.Weigher in a Scheme with the canonical CTI
// arbitration, for callers that construct their weigher directly instead
// of through the registry. Known weighers keep their full trust
// introspection; arbitrary implementations fall back to weight-as-trust.
// Adapt(nil) returns nil so constructor validation still fires.
func Adapt(w core.Weigher) Scheme {
	switch t := w.(type) {
	case nil:
		return nil
	case Scheme:
		return t
	case *core.Table:
		return &tableScheme{Table: t, name: t.Name()}
	case core.Baseline:
		return majorityScheme{name: t.Name()}
	default:
		return weigherScheme{w: t}
	}
}

// weigherScheme is Adapt's fallback for arbitrary Weigher implementations.
type weigherScheme struct {
	w core.Weigher
}

func (s weigherScheme) Name() string            { return s.w.Name() }
func (s weigherScheme) Weight(node int) float64 { return s.w.Weight(node) }
func (s weigherScheme) Judge(node int, correct bool) {
	s.w.Judge(node, correct)
}
func (s weigherScheme) Isolated(node int) bool { return s.w.Isolated(node) }

// TI forwards to the weigher's own TI when it has one, else reports the
// vote weight — the best trust estimate a bare weigher exposes.
func (s weigherScheme) TI(node int) float64 {
	if t, ok := s.w.(interface{ TI(int) float64 }); ok {
		return t.TI(node)
	}
	return s.w.Weight(node)
}

func (s weigherScheme) IsolatedNodes() []int {
	if t, ok := s.w.(interface{ IsolatedNodes() []int }); ok {
		return t.IsolatedNodes()
	}
	return nil
}

func (s weigherScheme) Arbitrate(reporters, silent []int) core.BinaryDecision {
	return core.DecideBinary(s.w, reporters, silent)
}
