package decision

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"github.com/tibfit/tibfit/internal/core"
)

func testTrust() core.Params {
	return core.Params{Lambda: 0.25, FaultRate: 0.1}
}

func TestNamesSortedAndCanonical(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	want := []string{SchemeDynamicTrust, SchemeFuzzy, SchemeLinear, SchemeMajority, SchemeTIBFIT}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		if n == SchemeBaseline {
			t.Fatal("Names() must exclude aliases")
		}
	}
}

func TestKnownCoversAliases(t *testing.T) {
	for _, n := range append(Names(), SchemeBaseline) {
		if !Known(n) {
			t.Fatalf("Known(%q) = false", n)
		}
	}
	if Known("nope") {
		t.Fatal(`Known("nope") = true`)
	}
}

// TestTitles pins the legend strings the committed figures depend on: the
// default scheme must render as "TIBFIT" and the alias as "Baseline",
// byte-for-byte.
func TestTitles(t *testing.T) {
	for name, want := range map[string]string{
		SchemeTIBFIT:       "TIBFIT",
		SchemeBaseline:     "Baseline",
		SchemeMajority:     "Majority",
		SchemeLinear:       "Linear",
		SchemeDynamicTrust: "Dynamic trust",
		SchemeFuzzy:        "Fuzzy",
		"unregistered":     "unregistered",
	} {
		if got := Title(name); got != want {
			t.Errorf("Title(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	factory := func(Params) (Scheme, error) { return majorityScheme{name: "x"}, nil }
	mustPanic("duplicate Register", func() { Register(SchemeTIBFIT, "dup", factory) })
	mustPanic("Register over alias", func() { Register(SchemeBaseline, "dup", factory) })
	mustPanic("empty Register", func() { Register("", "dup", factory) })
	mustPanic("nil factory", func() { Register("new-name", "dup", nil) })
	mustPanic("duplicate alias", func() { RegisterAlias(SchemeBaseline, "dup", SchemeMajority) })
	mustPanic("alias over scheme", func() { RegisterAlias(SchemeTIBFIT, "dup", SchemeMajority) })
	mustPanic("alias to unknown", func() { RegisterAlias("other", "dup", "nope") })
}

func TestResolveAlias(t *testing.T) {
	got, err := Resolve(SchemeBaseline)
	if err != nil || got != SchemeMajority {
		t.Fatalf("Resolve(baseline) = %q, %v", got, err)
	}
	got, err = Resolve(SchemeTIBFIT)
	if err != nil || got != SchemeTIBFIT {
		t.Fatalf("Resolve(tibfit) = %q, %v", got, err)
	}
}

func TestNewAliasConstructs(t *testing.T) {
	s, err := New(SchemeBaseline, Params{Trust: testTrust()})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != SchemeMajority {
		t.Fatalf("alias constructed %q, want the canonical %q", s.Name(), SchemeMajority)
	}
}

func TestNewUnknownSuggests(t *testing.T) {
	_, err := New("tibfut", Params{Trust: testTrust()})
	if !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("err = %v, want ErrUnknownScheme", err)
	}
	if !strings.Contains(err.Error(), `did you mean "tibfit"`) {
		t.Fatalf("no suggestion in %q", err)
	}
	if !strings.Contains(err.Error(), SchemeDynamicTrust) {
		t.Fatalf("no registry listing in %q", err)
	}
	if _, err := New("zzzzzzzzzzz", Params{}); err == nil ||
		strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("implausible name still suggested: %v", err)
	}
}

func TestNewPropagatesBadParams(t *testing.T) {
	for _, name := range Names() {
		if name == SchemeMajority {
			continue // stateless, ignores Trust
		}
		if _, err := New(name, Params{Trust: core.Params{Lambda: -1}}); err == nil {
			t.Errorf("%s accepted invalid trust params", name)
		}
	}
}
