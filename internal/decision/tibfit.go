package decision

import (
	"github.com/tibfit/tibfit/internal/core"
)

func init() {
	Register(SchemeTIBFIT, "TIBFIT", func(p Params) (Scheme, error) {
		t, err := core.NewTable(p.Trust)
		if err != nil {
			return nil, err
		}
		return &tableScheme{Table: t, name: SchemeTIBFIT}, nil
	})
	Register(SchemeLinear, "Linear", func(p Params) (Scheme, error) {
		params := p.Trust
		params.Linear = true
		t, err := core.NewTable(params)
		if err != nil {
			return nil, err
		}
		return &tableScheme{Table: t, name: SchemeLinear}, nil
	})
	Register(SchemeMajority, "Majority", func(Params) (Scheme, error) {
		return majorityScheme{name: SchemeMajority}, nil
	})
	RegisterAlias(SchemeBaseline, "Baseline", SchemeMajority)
}

// tableScheme is the canonical TIBFIT scheme (§3): a core.Table carries
// the exponential trust state, core.DecideBinary arbitrates by CTI. The
// table is embedded, not wrapped, so the hot Weight/Judge paths (and the
// table's memoized exp(-λ·v) cache) are exactly the pre-registry code.
// The "linear" registration is the same engine with the §3 linear-penalty
// ablation forced on.
type tableScheme struct {
	*core.Table
	name string
}

var (
	_ Scheme   = (*tableScheme)(nil)
	_ Stateful = (*tableScheme)(nil)
)

// Name identifies the registered scheme ("tibfit" or "linear").
func (s *tableScheme) Name() string { return s.name }

// Arbitrate implements Scheme with the §3.1 CTI face-off.
func (s *tableScheme) Arbitrate(reporters, silent []int) core.BinaryDecision {
	return core.DecideBinary(s.Table, reporters, silent)
}

// majorityScheme is the stateless majority-voting baseline the paper
// compares against: every vote weighs 1, nothing is learned, nobody is
// isolated. Registered as "majority", with "baseline" (the paper's
// figure-legend name) as an alias.
type majorityScheme struct {
	core.Baseline
	name string
}

var _ Scheme = majorityScheme{}

// Name identifies the registered scheme.
func (s majorityScheme) Name() string { return s.name }

// TI implements Scheme: a stateless scheme trusts everyone fully.
func (majorityScheme) TI(int) float64 { return 1 }

// IsolatedNodes implements Scheme: nobody is ever isolated.
func (majorityScheme) IsolatedNodes() []int { return nil }

// Arbitrate implements Scheme: with unit weights the CTI face-off
// degenerates to a head count.
func (s majorityScheme) Arbitrate(reporters, silent []int) core.BinaryDecision {
	return core.DecideBinary(s.Baseline, reporters, silent)
}
