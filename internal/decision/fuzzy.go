package decision

import (
	"fmt"
	"sort"

	"github.com/tibfit/tibfit/internal/core"
)

func init() {
	Register(SchemeFuzzy, "Fuzzy", func(p Params) (Scheme, error) {
		return newFuzzy(p)
	})
}

// fuzzyPrior is the Laplace-style optimistic prior on the correctness
// ratio: counting prior successes makes an unseen node's ratio 1 (full
// trust, like TIBFIT's v=0) and keeps single verdicts from swinging the
// membership to an extreme.
const fuzzyPrior = 2

// fuzzyScheme is the FAIR-style fuzzy reputation weigher
// (arXiv:0901.1095): each node's verdict history is summarized by the
// smoothed correctness ratio
//
//	ratio = (correct + prior) / (correct + faulty + prior)
//
// which a trapezoidal membership function maps to a vote weight — 0 at or
// below FuzzyLow, 1 at or above FuzzyHigh, linear in between. Reports are
// then aggregated through the same CTI arbitration, so chronically wrong
// nodes fade out smoothly instead of at a hard count. The shared
// removal-threshold semantics apply to the membership value.
type fuzzyScheme struct {
	low       float64
	high      float64
	threshold float64
	lambda    float64 // for the Stateful accumulator encoding only
	recs      map[int]*fuzzyRecord
}

type fuzzyRecord struct {
	correct  int
	faulty   int
	isolated bool
}

var (
	_ Scheme   = (*fuzzyScheme)(nil)
	_ Stateful = (*fuzzyScheme)(nil)
)

func newFuzzy(p Params) (*fuzzyScheme, error) {
	if err := p.Trust.Validate(); err != nil {
		return nil, err
	}
	low, high := p.FuzzyLow, p.FuzzyHigh
	//lint:allow floateq zero-value sentinel for "unset"; the ramp bounds are config values stored verbatim
	if low == 0 && high == 0 {
		low, high = DefaultFuzzyLow, DefaultFuzzyHigh
	}
	if low < 0 || high > 1 || low >= high {
		return nil, fmt.Errorf("decision: fuzzy ramp needs 0 <= low < high <= 1, got [%v, %v]", low, high)
	}
	return &fuzzyScheme{
		low:       low,
		high:      high,
		threshold: p.Trust.RemovalThreshold,
		lambda:    p.Trust.Lambda,
		recs:      make(map[int]*fuzzyRecord),
	}, nil
}

// Name implements core.Weigher.
func (s *fuzzyScheme) Name() string { return SchemeFuzzy }

// membership maps a record's verdict counts to the fuzzy weight.
func (s *fuzzyScheme) membership(r *fuzzyRecord) float64 {
	ratio := float64(r.correct+fuzzyPrior) / float64(r.correct+r.faulty+fuzzyPrior)
	switch {
	case ratio <= s.low:
		return 0
	case ratio >= s.high:
		return 1
	default:
		return (ratio - s.low) / (s.high - s.low)
	}
}

// TI implements Scheme: the membership value of the node's history.
func (s *fuzzyScheme) TI(node int) float64 {
	if r, ok := s.recs[node]; ok {
		return s.membership(r)
	}
	return 1
}

// Weight implements core.Weigher.
func (s *fuzzyScheme) Weight(node int) float64 {
	if r, ok := s.recs[node]; ok {
		if r.isolated {
			return 0
		}
		return s.membership(r)
	}
	return 1
}

// Judge implements core.Weigher by updating the verdict counts, then
// isolating on threshold crossing. Verdicts on isolated nodes are
// ignored.
func (s *fuzzyScheme) Judge(node int, correct bool) {
	r, ok := s.recs[node]
	if !ok {
		r = &fuzzyRecord{}
		s.recs[node] = r
	}
	if r.isolated {
		return
	}
	if correct {
		r.correct++
	} else {
		r.faulty++
	}
	if s.threshold > 0 && s.membership(r) <= s.threshold {
		r.isolated = true
	}
}

// Isolated implements core.Weigher.
func (s *fuzzyScheme) Isolated(node int) bool {
	r, ok := s.recs[node]
	return ok && r.isolated
}

// IsolatedNodes implements Scheme.
func (s *fuzzyScheme) IsolatedNodes() []int {
	var out []int
	for id, r := range s.recs {
		if r.isolated {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Arbitrate implements Scheme with the shared CTI face-off over the
// fuzzy weights.
func (s *fuzzyScheme) Arbitrate(reporters, silent []int) core.BinaryDecision {
	return core.DecideBinary(s, reporters, silent)
}

// Snapshot implements Stateful; the verdict counts round-trip exactly and
// V carries the accumulator-encoded membership for station eligibility.
func (s *fuzzyScheme) Snapshot() map[int]core.Record {
	out := make(map[int]core.Record, len(s.recs))
	for id, r := range s.recs {
		out[id] = core.Record{
			V:        vFromTI(s.membership(r), s.lambda),
			Correct:  r.correct,
			Faulty:   r.faulty,
			Isolated: r.isolated,
		}
	}
	return out
}

// Restore implements Stateful, rebuilding memberships from the counts.
func (s *fuzzyScheme) Restore(snap map[int]core.Record) {
	s.recs = make(map[int]*fuzzyRecord, len(snap))
	for id, r := range snap {
		s.recs[id] = &fuzzyRecord{
			correct:  r.Correct,
			faulty:   r.Faulty,
			isolated: r.Isolated,
		}
	}
}
