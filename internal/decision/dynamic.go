package decision

import (
	"fmt"
	"sort"

	"github.com/tibfit/tibfit/internal/core"
)

func init() {
	Register(SchemeDynamicTrust, "Dynamic trust", func(p Params) (Scheme, error) {
		return newDynamic(p)
	})
}

// dynamicScheme is the Wang-&-Liu-style dynamic trust model
// (arXiv:1610.02291): each node carries a trust estimate T ∈ (0, 1],
// updated after every verdict by an exponentially weighted moving
// average toward the verdict's indicator,
//
//	T ← β·T + (1-β)·outcome    (outcome 1 when judged correct, else 0)
//
// so recent behaviour dominates and a recovering node regains trust
// geometrically instead of TIBFIT's slow f_r-per-event earn-back. Votes
// are weighed by T through the same CTI arbitration, and the shared
// removal-threshold semantics apply: once a judged node's T falls to or
// below Trust.RemovalThreshold it is isolated.
type dynamicScheme struct {
	beta      float64
	threshold float64
	lambda    float64 // for the Stateful accumulator encoding only
	recs      map[int]*dynamicRecord
}

type dynamicRecord struct {
	trust    float64
	correct  int
	faulty   int
	isolated bool
}

var (
	_ Scheme   = (*dynamicScheme)(nil)
	_ Stateful = (*dynamicScheme)(nil)
)

func newDynamic(p Params) (*dynamicScheme, error) {
	if err := p.Trust.Validate(); err != nil {
		return nil, err
	}
	beta := p.Beta
	//lint:allow floateq zero-value sentinel for "unset"; Beta is a config value stored verbatim
	if beta == 0 {
		beta = DefaultBeta
	}
	if beta <= 0 || beta >= 1 {
		return nil, fmt.Errorf("decision: Beta must be in (0,1), got %v", beta)
	}
	return &dynamicScheme{
		beta:      beta,
		threshold: p.Trust.RemovalThreshold,
		lambda:    p.Trust.Lambda,
		recs:      make(map[int]*dynamicRecord),
	}, nil
}

// Name implements core.Weigher.
func (s *dynamicScheme) Name() string { return SchemeDynamicTrust }

// rec returns the node's record, creating a fully trusted one on first
// sight (T starts at 1, like TIBFIT's v=0).
func (s *dynamicScheme) rec(node int) *dynamicRecord {
	r, ok := s.recs[node]
	if !ok {
		r = &dynamicRecord{trust: 1}
		s.recs[node] = r
	}
	return r
}

// TI implements Scheme: the current moving-average trust estimate.
func (s *dynamicScheme) TI(node int) float64 {
	if r, ok := s.recs[node]; ok {
		return r.trust
	}
	return 1
}

// Weight implements core.Weigher.
func (s *dynamicScheme) Weight(node int) float64 {
	if r, ok := s.recs[node]; ok {
		if r.isolated {
			return 0
		}
		return r.trust
	}
	return 1
}

// Judge implements core.Weigher with the EWMA update, then isolates on
// threshold crossing. Verdicts on isolated nodes are ignored.
func (s *dynamicScheme) Judge(node int, correct bool) {
	r := s.rec(node)
	if r.isolated {
		return
	}
	if correct {
		r.correct++
		r.trust = s.beta*r.trust + (1 - s.beta)
	} else {
		r.faulty++
		r.trust = s.beta * r.trust
	}
	if s.threshold > 0 && r.trust <= s.threshold {
		r.isolated = true
	}
}

// Isolated implements core.Weigher.
func (s *dynamicScheme) Isolated(node int) bool {
	r, ok := s.recs[node]
	return ok && r.isolated
}

// IsolatedNodes implements Scheme.
func (s *dynamicScheme) IsolatedNodes() []int {
	var out []int
	for id, r := range s.recs {
		if r.isolated {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Arbitrate implements Scheme with the shared CTI face-off over the
// moving-average weights.
func (s *dynamicScheme) Arbitrate(reporters, silent []int) core.BinaryDecision {
	return core.DecideBinary(s, reporters, silent)
}

// Snapshot implements Stateful, log-encoding T into the accumulator
// convention (see Stateful) so station eligibility checks stay correct.
func (s *dynamicScheme) Snapshot() map[int]core.Record {
	out := make(map[int]core.Record, len(s.recs))
	for id, r := range s.recs {
		out[id] = core.Record{
			V:        vFromTI(r.trust, s.lambda),
			Correct:  r.correct,
			Faulty:   r.faulty,
			Isolated: r.isolated,
		}
	}
	return out
}

// Restore implements Stateful.
func (s *dynamicScheme) Restore(snap map[int]core.Record) {
	s.recs = make(map[int]*dynamicRecord, len(snap))
	for id, r := range snap {
		s.recs[id] = &dynamicRecord{
			trust:    tiFromV(r.V, s.lambda),
			correct:  r.Correct,
			faulty:   r.Faulty,
			isolated: r.Isolated,
		}
	}
}
