// Package core implements the TIBFIT trust-index engine — the paper's
// primary contribution (§3).
//
// Every sensing node is assigned a trust index TI ∈ [0, 1] maintained by
// the data sink (cluster head). A per-node fault accumulator v starts at
// zero; each report the sink judges faulty raises v by 1-f_r, each report
// judged correct lowers v by f_r (floored at zero), and
//
//	TI = exp(-λ·v)
//
// so a node erring exactly at the natural error rate f_r has E[Δv] = 0 and
// keeps its trust, while a node erring more often decays exponentially —
// early mistakes are penalized more and are harder to earn back than under
// a linear model (§3). Event decisions weight each node's vote by its TI
// and compare cumulative trust indices (CTI) of the two sides.
//
// The package also provides the stateless majority-voting baseline the
// paper compares against, and the self-estimator that "smart" (level 1/2)
// adversaries use to track what the sink currently thinks of them.
package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/tibfit/tibfit/internal/sparse"
)

// Default protocol constants from the paper's experiments.
const (
	// DefaultLambdaBinary is the λ used in Experiment 1 (Table 1).
	DefaultLambdaBinary = 0.1
	// DefaultLambdaLocation is the λ used in Experiments 2-3 (Table 2).
	DefaultLambdaLocation = 0.25
	// DefaultFaultRateLocation is the f_r used in Experiments 2-3. The
	// paper sets it to 0.1, deliberately above the correct nodes' error
	// rate "to compensate for wireless channel model losses".
	DefaultFaultRateLocation = 0.1
)

// Params configures a trust table.
type Params struct {
	// Lambda is the exponential decay constant λ in TI = exp(-λ·v).
	Lambda float64

	// FaultRate is f_r, the tolerated natural error rate. Each faulty
	// report adds 1-f_r to v; each correct report subtracts f_r.
	FaultRate float64

	// RemovalThreshold isolates a node once its TI falls to or below this
	// value: the sink stops counting its reports and stops updating it.
	// Zero disables isolation (the paper describes isolation as an
	// operator action once TI "falls below a certain threshold").
	RemovalThreshold float64

	// Linear switches to the symmetric additive model §3 argues against:
	// each faulty report steps v up by one, each correct report steps it
	// back down (floored at zero), and TI = max(0, 1-λ·v). Because the
	// floor erases history, "a node that lies 50% of the time would still
	// occasionally have the trust index value of one" (§3) — unlike the
	// exponential model, where each correct report only recovers the small
	// f_r fraction of a fault's penalty. The flag exists for the ablation
	// that quantifies the argument.
	Linear bool
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Lambda <= 0:
		return fmt.Errorf("core: Lambda must be positive, got %v", p.Lambda)
	case p.FaultRate < 0 || p.FaultRate >= 1:
		return fmt.Errorf("core: FaultRate must be in [0,1), got %v", p.FaultRate)
	case p.RemovalThreshold < 0 || p.RemovalThreshold >= 1:
		return fmt.Errorf("core: RemovalThreshold must be in [0,1), got %v", p.RemovalThreshold)
	default:
		return nil
	}
}

// TrustOf converts a fault accumulator to a trust index under p — the
// unmemoized §3 mapping, exported for callers needing a one-off
// conversion without building a Table (e.g. the base station consulting
// an uploaded trust record during head appointment).
func (p Params) TrustOf(v float64) float64 { return p.trustOf(v) }

// trustOf converts a fault accumulator to a trust index under p.
func (p Params) trustOf(v float64) float64 {
	if v < 0 {
		v = 0
	}
	if p.Linear {
		ti := 1 - p.Lambda*v
		if ti < 0 {
			return 0
		}
		return ti
	}
	return math.Exp(-p.Lambda * v)
}

// ExpectedDeltaV returns the expected per-event change in v for a node that
// errs with probability errRate when the table tolerates FaultRate. A node
// erring exactly at the tolerated rate has expectation zero (§3):
//
//	E[Δv] = errRate·(1-f_r) - (1-errRate)·f_r
//
// (The unfloored expectation; the floor at v=0 only helps the node.)
func (p Params) ExpectedDeltaV(errRate float64) float64 {
	return errRate*(1-p.FaultRate) - (1-errRate)*p.FaultRate
}

// Record is the per-node trust state held by the sink.
type Record struct {
	V        float64 // fault accumulator
	Correct  int     // reports judged correct
	Faulty   int     // reports judged faulty
	Isolated bool    // removed from voting after crossing the threshold
}

// Weigher is the voting-weight policy the aggregation pipeline consults.
// The TIBFIT Table and the majority-voting Baseline both implement it, so
// the rest of the system is agnostic to which scheme is running.
type Weigher interface {
	// Weight returns the node's current vote weight in [0, 1].
	Weight(node int) float64
	// Judge records the sink's verdict on the node's behaviour for one
	// event decision (true = the node sided with the winning outcome).
	Judge(node int, correct bool)
	// Isolated reports whether the node has been removed from voting.
	Isolated(node int) bool
	// Name identifies the scheme in experiment output.
	Name() string
}

// Table is the TIBFIT trust table a cluster head maintains for the nodes in
// its cluster. It is not safe for concurrent use; the simulator is
// single-threaded and a real CH is a single mote.
//
// Records live in a CSR-style sparse vector (sorted IDs + binary search,
// internal/sparse) rather than a dense map: memory is O(nodes actually
// judged), Nodes/IsolatedNodes walk the entries already in ID order with
// no sort, and a window-close feedback pass over a cluster's members
// touches each cache line once instead of hashing per report.
type Table struct {
	params Params
	recs   sparse.Vector[Record]
	// tiCache memoizes exp(-λ·v) per distinct accumulator value; see
	// trustOf.
	tiCache map[float64]float64
}

var _ Weigher = (*Table)(nil)

// tiCacheLimit bounds the memo so adversarial v trajectories cannot grow
// it without bound; past the limit, lookups fall through to math.Exp.
const tiCacheLimit = 4096

// NewTable returns an empty trust table. It returns an error if the
// parameters are invalid.
func NewTable(params Params) (*Table, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Table{params: params}, nil
}

// trustOf is the table's memoized view of Params.trustOf. The §3 update
// rule quantizes v onto sums of k·(1-f_r) − m·f_r floored at zero, so a
// whole campaign revisits the same few hundred v values millions of times;
// keying a map on the exact float collapses those math.Exp calls into
// lookups. Linear mode is a multiply and skips the cache.
//
//hot:path
func (t *Table) trustOf(v float64) float64 {
	if t.params.Linear {
		return t.params.trustOf(v)
	}
	if v < 0 {
		v = 0
	}
	if ti, ok := t.tiCache[v]; ok {
		return ti
	}
	ti := t.params.trustOf(v)
	if t.tiCache == nil {
		//lint:allow hotalloc lazy cache built once per table, then pure hits
		t.tiCache = make(map[float64]float64)
	}
	if len(t.tiCache) < tiCacheLimit {
		t.tiCache[v] = ti
	}
	return ti
}

// MustNewTable is NewTable for callers with compile-time-constant params.
func MustNewTable(params Params) *Table {
	t, err := NewTable(params)
	if err != nil {
		panic(err)
	}
	return t
}

// Params returns the table's configuration.
func (t *Table) Params() Params { return t.params }

// Name implements Weigher.
func (t *Table) Name() string { return "tibfit" }

// rec returns the node's record, creating a pristine one on first sight.
// New nodes start with v=0, i.e. full trust (§3). The pointer is only
// valid until the next insertion.
//
//hot:path
func (t *Table) rec(node int) *Record {
	return t.recs.Upsert(node)
}

// TI returns the node's current trust index. Unknown nodes have TI 1.
//
//hot:path
func (t *Table) TI(node int) float64 {
	if r := t.recs.Find(node); r != nil {
		return t.trustOf(r.V)
	}
	return 1
}

// Weight implements Weigher: an isolated node weighs nothing, otherwise
// the weight is the trust index.
//
//hot:path
func (t *Table) Weight(node int) float64 {
	if r := t.recs.Find(node); r != nil {
		if r.Isolated {
			return 0
		}
		return t.trustOf(r.V)
	}
	return 1
}

// V returns the node's fault accumulator (0 for unknown nodes).
func (t *Table) V(node int) float64 {
	if r := t.recs.Find(node); r != nil {
		return r.V
	}
	return 0
}

// Record returns a copy of the node's record and whether it exists.
func (t *Table) Record(node int) (Record, bool) {
	if r := t.recs.Find(node); r != nil {
		return *r, true
	}
	return Record{}, false
}

// Judge implements Weigher by applying the §3 update rule, then isolating
// the node if its TI crossed the removal threshold. Judgments against an
// already-isolated node are ignored: the sink no longer listens to it.
//
//hot:path
func (t *Table) Judge(node int, correct bool) {
	r := t.rec(node)
	if r.Isolated {
		return
	}
	if correct {
		r.Correct++
		if t.params.Linear {
			r.V--
		} else {
			r.V -= t.params.FaultRate
		}
		if r.V < 0 {
			r.V = 0
		}
	} else {
		r.Faulty++
		if t.params.Linear {
			r.V++
		} else {
			r.V += 1 - t.params.FaultRate
		}
	}
	if t.params.RemovalThreshold > 0 && t.trustOf(r.V) <= t.params.RemovalThreshold {
		r.Isolated = true
	}
}

// Isolate removes the node from voting immediately, regardless of its
// accumulator — the operator-action override §3 alludes to, used by the
// base station when it holds unforgeable evidence of misbehaviour (a
// tampered or replayed trust snapshot) that no gradual penalty should
// dilute.
func (t *Table) Isolate(node int) { t.rec(node).Isolated = true }

// Isolated implements Weigher.
func (t *Table) Isolated(node int) bool {
	r := t.recs.Find(node)
	return r != nil && r.Isolated
}

// IsolatedNodes returns the sorted IDs of all isolated nodes. The sparse
// store iterates in ID order, so no sort is needed.
func (t *Table) IsolatedNodes() []int {
	var out []int
	t.recs.Scan(func(id int, r *Record) bool {
		if r.Isolated {
			out = append(out, id)
		}
		return true
	})
	return out
}

// Nodes returns the sorted IDs of all nodes the table has seen.
func (t *Table) Nodes() []int {
	out := make([]int, 0, t.recs.Len())
	return append(out, t.recs.IDs()...)
}

// CTI returns the cumulative trust index of a set of nodes — the sum of
// their vote weights (§3.1). Isolated nodes contribute zero.
//
//hot:path
func (t *Table) CTI(nodes []int) float64 {
	return CTI(t, nodes)
}

// Snapshot exports the table state for transfer to the base station when a
// cluster head's leadership period ends (§2). The returned map is a deep
// copy.
func (t *Table) Snapshot() map[int]Record {
	out := make(map[int]Record, t.recs.Len())
	t.recs.Scan(func(id int, r *Record) bool {
		out[id] = *r
		return true
	})
	return out
}

// Restore replaces the table contents with a previously exported snapshot,
// as a newly elected cluster head does after fetching trust state from the
// base station (§2). Keys are sorted before the rebuild so every insert
// hits the sparse vector's tail fast path and map range order never
// reaches the store.
func (t *Table) Restore(snap map[int]Record) {
	t.recs.Reset()
	ids := make([]int, 0, len(snap))
	for id := range snap {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		*t.recs.Upsert(id) = snap[id]
	}
}

// CTI sums the vote weights of nodes under any weighing policy.
//
//hot:path
func CTI(w Weigher, nodes []int) float64 {
	var sum float64
	for _, id := range nodes {
		sum += w.Weight(id)
	}
	return sum
}

// Baseline is the stateless majority-voting scheme the paper compares
// TIBFIT against: every node's vote always weighs 1, no node is ever
// penalized or isolated.
type Baseline struct{}

var _ Weigher = Baseline{}

// Name implements Weigher.
func (Baseline) Name() string { return "baseline" }

// Weight implements Weigher: every vote counts 1.
func (Baseline) Weight(int) float64 { return 1 }

// Judge implements Weigher as a no-op: the baseline keeps no state.
func (Baseline) Judge(int, bool) {}

// Isolated implements Weigher: the baseline never removes nodes.
func (Baseline) Isolated(int) bool { return false }
