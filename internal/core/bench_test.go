package core

import "testing"

// BenchmarkTableJudgeAndWeight measures the per-verdict trust-update and
// per-vote weight-lookup path. The §3 update rule walks v over a small
// quantized set, so the exp(-λ·v) memo turns nearly every Weight call
// into a map hit.
func BenchmarkTableJudgeAndWeight(b *testing.B) {
	t := MustNewTable(Params{Lambda: 0.25, FaultRate: 0.1})
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		node := i % 64
		t.Judge(node, i%10 != 0) // ~10% faulty, like a correct node near f_r
		sink += t.Weight(node)
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkDecideBinary measures one §3.1 CTI vote over a 24/12 split.
func BenchmarkDecideBinary(b *testing.B) {
	t := MustNewTable(Params{Lambda: 0.1, FaultRate: 0.05})
	reporters := make([]int, 24)
	silent := make([]int, 12)
	for i := range reporters {
		reporters[i] = i
	}
	for i := range silent {
		silent[i] = 24 + i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := DecideBinary(t, reporters, silent)
		Apply(t, dec)
	}
}
