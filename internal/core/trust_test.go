package core

import (
	"math"
	"testing"
	"testing/quick"
)

func testParams() Params {
	return Params{Lambda: 0.1, FaultRate: 0.01}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		params  Params
		wantErr bool
	}{
		{"valid", Params{Lambda: 0.1, FaultRate: 0.01}, false},
		{"valid zero fault rate", Params{Lambda: 0.25, FaultRate: 0}, false},
		{"valid with threshold", Params{Lambda: 0.25, FaultRate: 0.1, RemovalThreshold: 0.3}, false},
		{"zero lambda", Params{Lambda: 0, FaultRate: 0.01}, true},
		{"negative lambda", Params{Lambda: -1, FaultRate: 0.01}, true},
		{"fault rate one", Params{Lambda: 0.1, FaultRate: 1}, true},
		{"negative fault rate", Params{Lambda: 0.1, FaultRate: -0.1}, true},
		{"threshold one", Params{Lambda: 0.1, FaultRate: 0.1, RemovalThreshold: 1}, true},
		{"negative threshold", Params{Lambda: 0.1, FaultRate: 0.1, RemovalThreshold: -0.1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.params.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %t", err, tt.wantErr)
			}
		})
	}
}

func TestNewTableRejectsInvalidParams(t *testing.T) {
	if _, err := NewTable(Params{}); err == nil {
		t.Fatal("NewTable accepted zero params")
	}
}

func TestMustNewTablePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewTable did not panic on invalid params")
		}
	}()
	MustNewTable(Params{})
}

func TestFreshNodeHasFullTrust(t *testing.T) {
	tab := MustNewTable(testParams())
	if ti := tab.TI(7); ti != 1 {
		t.Fatalf("fresh node TI = %v, want 1", ti)
	}
	if v := tab.V(7); v != 0 {
		t.Fatalf("fresh node v = %v, want 0", v)
	}
	if w := tab.Weight(7); w != 1 {
		t.Fatalf("fresh node weight = %v, want 1", w)
	}
}

func TestJudgeFaultyFollowsPaperFormula(t *testing.T) {
	// §3: each faulty report adds 1-f_r to v; TI = exp(-λ·v).
	p := Params{Lambda: 0.1, FaultRate: 0.01}
	tab := MustNewTable(p)
	tab.Judge(1, false)
	wantV := 1 - p.FaultRate
	if v := tab.V(1); math.Abs(v-wantV) > 1e-12 {
		t.Fatalf("v after one faulty report = %v, want %v", v, wantV)
	}
	wantTI := math.Exp(-p.Lambda * wantV)
	if ti := tab.TI(1); math.Abs(ti-wantTI) > 1e-12 {
		t.Fatalf("TI after one faulty report = %v, want %v", ti, wantTI)
	}
}

func TestJudgeCorrectRecoversSlowly(t *testing.T) {
	p := Params{Lambda: 0.1, FaultRate: 0.01}
	tab := MustNewTable(p)
	tab.Judge(1, false)
	before := tab.V(1)
	tab.Judge(1, true)
	wantV := before - p.FaultRate
	if v := tab.V(1); math.Abs(v-wantV) > 1e-12 {
		t.Fatalf("v after recovery = %v, want %v", v, wantV)
	}
	// One faulty report takes (1-f_r)/f_r = 99 correct reports to erase.
	for i := 0; i < 97; i++ {
		tab.Judge(1, true)
	}
	if ti := tab.TI(1); ti >= 1 {
		t.Fatalf("TI fully recovered after 98 correct reports, want < 1 (ti=%v)", ti)
	}
	tab.Judge(1, true)
	if v := tab.V(1); math.Abs(v) > 1e-9 {
		t.Fatalf("v after 100 correct reports = %v, want ~0", v)
	}
}

func TestVFloorsAtZero(t *testing.T) {
	tab := MustNewTable(testParams())
	for i := 0; i < 50; i++ {
		tab.Judge(1, true)
	}
	if v := tab.V(1); v != 0 {
		t.Fatalf("v = %v after only-correct reports, want 0", v)
	}
	if ti := tab.TI(1); ti != 1 {
		t.Fatalf("TI = %v after only-correct reports, want 1", ti)
	}
}

func TestIsolationAtThreshold(t *testing.T) {
	p := Params{Lambda: 0.25, FaultRate: 0.1, RemovalThreshold: 0.3}
	tab := MustNewTable(p)
	// v needed: exp(-0.25 v) <= 0.3 → v >= 4.816; each faulty adds 0.9.
	faults := 0
	for !tab.Isolated(1) {
		tab.Judge(1, false)
		faults++
		if faults > 100 {
			t.Fatal("node never isolated")
		}
	}
	wantFaults := int(math.Ceil(-math.Log(0.3) / 0.25 / 0.9))
	if faults != wantFaults {
		t.Fatalf("isolated after %d faults, want %d", faults, wantFaults)
	}
	if w := tab.Weight(1); w != 0 {
		t.Fatalf("isolated node weight = %v, want 0", w)
	}
	// Further judgments are ignored.
	rec, _ := tab.Record(1)
	tab.Judge(1, true)
	rec2, _ := tab.Record(1)
	if rec2 != rec {
		t.Fatalf("judgment mutated isolated node: %+v -> %+v", rec, rec2)
	}
}

func TestIsolationDisabledByDefault(t *testing.T) {
	tab := MustNewTable(testParams())
	for i := 0; i < 1000; i++ {
		tab.Judge(1, false)
	}
	if tab.Isolated(1) {
		t.Fatal("node isolated with RemovalThreshold = 0")
	}
}

func TestIsolatedNodesSorted(t *testing.T) {
	p := Params{Lambda: 1, FaultRate: 0.1, RemovalThreshold: 0.9}
	tab := MustNewTable(p)
	for _, id := range []int{9, 3, 7} {
		tab.Judge(id, false) // exp(-0.9) ≈ 0.407 <= 0.9 → isolated
	}
	got := tab.IsolatedNodes()
	want := []int{3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("IsolatedNodes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IsolatedNodes() = %v, want %v", got, want)
		}
	}
}

func TestCTISumsWeights(t *testing.T) {
	tab := MustNewTable(Params{Lambda: 0.1, FaultRate: 0.01})
	tab.Judge(1, false)
	want := tab.TI(1) + tab.TI(2) + tab.TI(3)
	if got := tab.CTI([]int{1, 2, 3}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CTI = %v, want %v", got, want)
	}
	if got := tab.CTI(nil); got != 0 {
		t.Fatalf("CTI(nil) = %v, want 0", got)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := Params{Lambda: 0.25, FaultRate: 0.1, RemovalThreshold: 0.1}
	tab := MustNewTable(p)
	tab.Judge(1, false)
	tab.Judge(1, false)
	tab.Judge(2, true)
	for i := 0; i < 20; i++ {
		tab.Judge(3, false)
	}
	snap := tab.Snapshot()

	restored := MustNewTable(p)
	restored.Restore(snap)
	for _, id := range []int{1, 2, 3} {
		if got, want := restored.TI(id), tab.TI(id); got != want {
			t.Fatalf("restored TI(%d) = %v, want %v", id, got, want)
		}
		if got, want := restored.Isolated(id), tab.Isolated(id); got != want {
			t.Fatalf("restored Isolated(%d) = %v, want %v", id, got, want)
		}
	}

	// The snapshot is a deep copy: mutating the original afterwards must
	// not affect the restored table.
	tab.Judge(2, false)
	if restored.V(2) == tab.V(2) {
		t.Fatal("snapshot aliased live records")
	}
}

func TestNodesSorted(t *testing.T) {
	tab := MustNewTable(testParams())
	for _, id := range []int{5, 1, 3} {
		tab.Judge(id, true)
	}
	got := tab.Nodes()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", got, want)
		}
	}
}

func TestLinearModeTrust(t *testing.T) {
	p := Params{Lambda: 0.1, FaultRate: 0, Linear: true}
	tab := MustNewTable(p)
	tab.Judge(1, false) // v = 1
	if got, want := tab.TI(1), 0.9; math.Abs(got-want) > 1e-12 {
		t.Fatalf("linear TI = %v, want %v", got, want)
	}
	for i := 0; i < 20; i++ {
		tab.Judge(1, false)
	}
	if got := tab.TI(1); got != 0 {
		t.Fatalf("linear TI floor = %v, want 0", got)
	}
}

func TestLinearModeForgetsHistory(t *testing.T) {
	// §3's complaint about the linear model: a node that lies half the
	// time can still return to full trust, because each correct report
	// undoes a whole fault. Under the exponential model a fault needs
	// (1-f_r)/f_r correct reports to erase.
	lin := MustNewTable(Params{Lambda: 0.1, FaultRate: 0.01, Linear: true})
	exp := MustNewTable(Params{Lambda: 0.1, FaultRate: 0.01})
	for i := 0; i < 5; i++ {
		lin.Judge(1, false)
		exp.Judge(1, false)
	}
	for i := 0; i < 5; i++ {
		lin.Judge(1, true)
		exp.Judge(1, true)
	}
	if lin.TI(1) != 1 {
		t.Fatalf("linear TI after 5 faults + 5 corrections = %v, want full recovery", lin.TI(1))
	}
	if exp.TI(1) >= 0.7 {
		t.Fatalf("exponential TI recovered too easily: %v", exp.TI(1))
	}
}

func TestExpectedDeltaVZeroAtNaturalRate(t *testing.T) {
	// §3: a node erring exactly at f_r has E[Δv] = 0.
	for _, fr := range []float64{0.01, 0.05, 0.1, 0.5} {
		p := Params{Lambda: 0.1, FaultRate: fr}
		if dv := p.ExpectedDeltaV(fr); math.Abs(dv) > 1e-12 {
			t.Fatalf("ExpectedDeltaV(fr=%v) = %v, want 0", fr, dv)
		}
		if dv := p.ExpectedDeltaV(fr * 2); dv <= 0 {
			t.Fatalf("ExpectedDeltaV above natural rate = %v, want > 0", dv)
		}
		if dv := p.ExpectedDeltaV(fr / 2); dv >= 0 {
			t.Fatalf("ExpectedDeltaV below natural rate = %v, want < 0", dv)
		}
	}
}

func TestBaselineProperties(t *testing.T) {
	var b Baseline
	if b.Name() != "baseline" {
		t.Fatalf("Name() = %q", b.Name())
	}
	if b.Weight(42) != 1 {
		t.Fatal("baseline weight != 1")
	}
	b.Judge(42, false) // must be a no-op
	if b.Weight(42) != 1 || b.Isolated(42) {
		t.Fatal("baseline kept state after Judge")
	}
}

// Property: TI is always in [0, 1] and non-increasing in v, for both the
// exponential and linear penalty models.
func TestTrustBoundsProperty(t *testing.T) {
	check := func(lambda, v1, v2 float64, linear bool) bool {
		lambda = 0.01 + math.Abs(math.Mod(lambda, 5))
		v1 = math.Abs(math.Mod(v1, 100))
		v2 = math.Abs(math.Mod(v2, 100))
		p := Params{Lambda: lambda, FaultRate: 0.1, Linear: linear}
		lo, hi := v1, v2
		if lo > hi {
			lo, hi = hi, lo
		}
		tLo, tHi := p.trustOf(lo), p.trustOf(hi)
		return tLo >= 0 && tLo <= 1 && tHi >= 0 && tHi <= 1 && tHi <= tLo
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: any sequence of verdicts keeps v non-negative and counts
// consistent with the number of verdicts applied.
func TestJudgeSequenceProperty(t *testing.T) {
	check := func(verdicts []bool) bool {
		tab := MustNewTable(Params{Lambda: 0.25, FaultRate: 0.1})
		for _, ok := range verdicts {
			tab.Judge(1, ok)
		}
		rec, found := tab.Record(1)
		if len(verdicts) == 0 {
			return !found
		}
		return rec.V >= 0 && rec.Correct+rec.Faulty == len(verdicts)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the node-side estimator tracks the sink's trust value exactly
// when it observes the same verdict sequence.
func TestEstimatorMirrorsTableProperty(t *testing.T) {
	check := func(verdicts []bool) bool {
		p := Params{Lambda: 0.25, FaultRate: 0.1}
		tab := MustNewTable(p)
		est := NewEstimator(p)
		for _, ok := range verdicts {
			tab.Judge(1, ok)
			est.Observe(ok)
		}
		return math.Abs(tab.TI(1)-est.TI()) < 1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
