package core

import (
	"errors"
	"math"
	"testing"
)

func sampleRecs() map[int]Record {
	return map[int]Record{
		3:  {V: 0.9, Correct: 4, Faulty: 1},
		7:  {V: 0, Correct: 12},
		11: {V: 4.5, Correct: 2, Faulty: 5, Isolated: true},
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	const key, version = 0xfeedbeef, 42
	blob := SealSnapshot(key, version, RoleUpload, sampleRecs())
	gotVer, gotRole, recs, err := OpenSnapshot(key, blob)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	if gotVer != version || gotRole != RoleUpload {
		t.Fatalf("got version %d role %d, want %d %d", gotVer, gotRole, version, RoleUpload)
	}
	want := sampleRecs()
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for id, w := range want {
		if recs[id] != w {
			t.Errorf("node %d: got %+v, want %+v", id, recs[id], w)
		}
	}
}

func TestSealSnapshotDeterministic(t *testing.T) {
	a := SealSnapshot(1, 7, RoleIssue, sampleRecs())
	b := SealSnapshot(1, 7, RoleIssue, sampleRecs())
	if string(a) != string(b) {
		t.Fatal("equal state sealed to different bytes")
	}
}

func TestOpenSnapshotRejections(t *testing.T) {
	const key = uint64(99)
	valid := SealSnapshot(key, 5, RoleUpload, sampleRecs())

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'

	badRole := append([]byte(nil), valid...)
	badRole[4] = 9 // breaks the checksum too, but the role check fires first

	nanV := SealSnapshot(key, 5, RoleUpload, map[int]Record{1: {V: math.NaN()}})
	negV := SealSnapshot(key, 5, RoleUpload, map[int]Record{1: {V: -1}})
	negCount := SealSnapshot(key, 5, RoleUpload, map[int]Record{1: {Correct: -2}})

	cases := []struct {
		name string
		blob []byte
	}{
		{"nil", nil},
		{"empty", []byte{}},
		{"short", valid[:10]},
		{"truncated", valid[:len(valid)-3]},
		{"trailing", append(append([]byte(nil), valid...), 0)},
		{"bit-flipped", flipped},
		{"bad-magic", badMagic},
		{"bad-role", badRole},
		{"wrong-key", func() []byte { return SealSnapshot(key+1, 5, RoleUpload, sampleRecs()) }()},
		{"nan-v", nanV},
		{"neg-v", negV},
		{"neg-count", negCount},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := OpenSnapshot(key, tc.blob)
			if err == nil {
				t.Fatal("OpenSnapshot accepted a corrupt blob")
			}
			if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("error %v does not wrap ErrSnapshotCorrupt", err)
			}
		})
	}
}

func TestOpenSnapshotEmpty(t *testing.T) {
	blob := SealSnapshot(0, 1, RoleIssue, nil)
	ver, role, recs, err := OpenSnapshot(0, blob)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	if ver != 1 || role != RoleIssue || len(recs) != 0 {
		t.Fatalf("got version %d role %d %d records", ver, role, len(recs))
	}
}

// FuzzOpenSnapshot pins the decoder's core contract: arbitrary bytes
// either decode cleanly or fail with an error wrapping
// ErrSnapshotCorrupt — never a panic — and anything that decodes must
// re-seal to the same bytes under the same key.
func FuzzOpenSnapshot(f *testing.F) {
	const key = uint64(0x71bf17)
	valid := SealSnapshot(key, 9, RoleUpload, sampleRecs())
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:snapshotHeaderLen])
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[7] ^= 0xff
	f.Add(mut)
	f.Fuzz(func(t *testing.T, blob []byte) {
		ver, role, recs, err := OpenSnapshot(key, blob)
		if err != nil {
			if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("error %v does not wrap ErrSnapshotCorrupt", err)
			}
			return
		}
		resealed := SealSnapshot(key, ver, role, recs)
		if string(resealed) != string(blob) {
			t.Fatalf("accepted blob does not round-trip: %x vs %x", blob, resealed)
		}
	})
}
