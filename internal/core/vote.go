package core

import (
	"fmt"
	"sort"
)

// BinaryDecision is the outcome of one CTI vote over an event-neighbor set
// (§3.1). Reporters claimed the event happened; Silent event neighbors did
// not report within T_out.
type BinaryDecision struct {
	// Occurred is the sink's conclusion.
	Occurred bool
	// CTIFor is the cumulative trust of the reporting set R.
	CTIFor float64
	// CTIAgainst is the cumulative trust of the non-reporting set NR.
	CTIAgainst float64
	// Reporters and Silent are the two sides of the vote, sorted by ID,
	// with isolated nodes already excluded.
	Reporters []int
	Silent    []int
}

// String summarizes the decision for traces.
func (d BinaryDecision) String() string {
	return fmt.Sprintf("occurred=%t ctiFor=%.3f ctiAgainst=%.3f |R|=%d |NR|=%d",
		d.Occurred, d.CTIFor, d.CTIAgainst, len(d.Reporters), len(d.Silent))
}

// Margin returns CTIFor - CTIAgainst; positive margins mean the event was
// declared.
func (d BinaryDecision) Margin() float64 { return d.CTIFor - d.CTIAgainst }

// DecideBinary runs the §3.1 vote: the event-neighbor set is partitioned
// into reporters and silent nodes, the side with the higher CTI wins, and
// ties resolve to "no event" (a conservative choice the paper leaves
// unspecified). Isolated nodes are excluded from both sides before
// weighing. The function does not update trust state; call Apply with the
// returned decision to do that, so that shadow cluster heads can evaluate
// a decision without committing it.
func DecideBinary(w Weigher, reporters, silent []int) BinaryDecision {
	d := BinaryDecision{
		Reporters: filterActive(w, reporters),
		Silent:    filterActive(w, silent),
	}
	d.CTIFor = CTI(w, d.Reporters)
	d.CTIAgainst = CTI(w, d.Silent)
	d.Occurred = d.CTIFor > d.CTIAgainst
	return d
}

// Apply commits the trust updates implied by a decision: nodes that sided
// with the winning outcome are judged correct, the rest faulty (§3.1).
func Apply(w Weigher, d BinaryDecision) {
	for _, id := range d.Reporters {
		w.Judge(id, d.Occurred)
	}
	for _, id := range d.Silent {
		w.Judge(id, !d.Occurred)
	}
}

// filterActive drops isolated nodes and returns a sorted copy.
func filterActive(w Weigher, nodes []int) []int {
	out := make([]int, 0, len(nodes))
	for _, id := range nodes {
		if !w.Isolated(id) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Estimator mirrors the sink-side trust computation from a node's own
// vantage point. Smart adversaries (level 1 and 2, §2.1) use it to keep
// their trust "at a reasonably high level where [they estimate they] will
// not be detected and isolated": whenever the node observes the sink's
// broadcast decision it learns whether its own report sided with the
// outcome, which is exactly the information the sink used, so the estimate
// tracks the sink's value without error (up to packets the channel drops).
type Estimator struct {
	params Params
	v      float64
}

// NewEstimator returns an estimator replicating a table with params.
func NewEstimator(params Params) *Estimator {
	return &Estimator{params: params}
}

// TI returns the node's current estimate of its own trust index.
func (e *Estimator) TI() float64 { return e.params.trustOf(e.v) }

// Observe folds in one overheard verdict about the node's own behaviour,
// applying the same update rule as the sink (including the Linear ablation
// mode, so the mirror stays exact under either model).
func (e *Estimator) Observe(correct bool) {
	if correct {
		if e.params.Linear {
			e.v--
		} else {
			e.v -= e.params.FaultRate
		}
		if e.v < 0 {
			e.v = 0
		}
	} else {
		if e.params.Linear {
			e.v++
		} else {
			e.v += 1 - e.params.FaultRate
		}
	}
}
