package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDecideBinaryMajorityOfEqualWeights(t *testing.T) {
	tests := []struct {
		name      string
		reporters []int
		silent    []int
		want      bool
	}{
		{"clear majority reports", []int{1, 2, 3}, []int{4}, true},
		{"clear majority silent", []int{1}, []int{2, 3, 4}, false},
		{"tie resolves to no event", []int{1, 2}, []int{3, 4}, false},
		{"no reports", nil, []int{1, 2}, false},
		{"all report", []int{1, 2}, nil, true},
		{"nobody involved", nil, nil, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := DecideBinary(Baseline{}, tt.reporters, tt.silent)
			if d.Occurred != tt.want {
				t.Fatalf("Occurred = %t, want %t (%v)", d.Occurred, tt.want, d)
			}
		})
	}
}

func TestDecideBinarySmallTrustedGroupBeatsLargeUntrusted(t *testing.T) {
	// §3.1: "a smaller group of reliable nodes can win the vote against a
	// larger group of unreliable nodes based on higher TI".
	p := Params{Lambda: 0.25, FaultRate: 0.1}
	tab := MustNewTable(p)
	unreliable := []int{10, 11, 12, 13, 14}
	for _, id := range unreliable {
		for i := 0; i < 10; i++ {
			tab.Judge(id, false)
		}
	}
	reliable := []int{1, 2, 3}
	d := DecideBinary(tab, reliable, unreliable)
	if !d.Occurred {
		t.Fatalf("3 reliable nodes lost to 5 distrusted nodes: %v", d)
	}
	if d.CTIFor <= d.CTIAgainst {
		t.Fatalf("CTIFor %v <= CTIAgainst %v", d.CTIFor, d.CTIAgainst)
	}
}

func TestDecideBinaryExcludesIsolated(t *testing.T) {
	p := Params{Lambda: 1, FaultRate: 0, RemovalThreshold: 0.5}
	tab := MustNewTable(p)
	tab.Judge(9, false) // TI = e^-1 ≈ 0.37 → isolated
	if !tab.Isolated(9) {
		t.Fatal("setup: node 9 not isolated")
	}
	d := DecideBinary(tab, []int{9, 1}, []int{2, 3})
	for _, id := range d.Reporters {
		if id == 9 {
			t.Fatal("isolated node included in reporter set")
		}
	}
	if len(d.Reporters) != 1 || len(d.Silent) != 2 {
		t.Fatalf("unexpected partition: %v", d)
	}
}

func TestDecideBinarySortsSides(t *testing.T) {
	d := DecideBinary(Baseline{}, []int{5, 1, 3}, []int{9, 7})
	for i := 1; i < len(d.Reporters); i++ {
		if d.Reporters[i-1] > d.Reporters[i] {
			t.Fatalf("reporters not sorted: %v", d.Reporters)
		}
	}
	for i := 1; i < len(d.Silent); i++ {
		if d.Silent[i-1] > d.Silent[i] {
			t.Fatalf("silent not sorted: %v", d.Silent)
		}
	}
}

func TestApplySettlesTrust(t *testing.T) {
	p := Params{Lambda: 0.25, FaultRate: 0.1}

	t.Run("event occurred", func(t *testing.T) {
		tab := MustNewTable(p)
		d := DecideBinary(tab, []int{1, 2, 3}, []int{4})
		if !d.Occurred {
			t.Fatal("setup: expected event")
		}
		Apply(tab, d)
		for _, id := range []int{1, 2, 3} {
			if tab.V(id) != 0 {
				t.Fatalf("winner %d penalized: v=%v", id, tab.V(id))
			}
		}
		if want := 1 - p.FaultRate; math.Abs(tab.V(4)-want) > 1e-12 {
			t.Fatalf("loser v = %v, want %v", tab.V(4), want)
		}
	})

	t.Run("event rejected", func(t *testing.T) {
		tab := MustNewTable(p)
		d := DecideBinary(tab, []int{1}, []int{2, 3, 4})
		if d.Occurred {
			t.Fatal("setup: expected rejection")
		}
		Apply(tab, d)
		if want := 1 - p.FaultRate; math.Abs(tab.V(1)-want) > 1e-12 {
			t.Fatalf("false reporter v = %v, want %v", tab.V(1), want)
		}
		for _, id := range []int{2, 3, 4} {
			if tab.V(id) != 0 {
				t.Fatalf("correct silent node %d penalized", id)
			}
		}
	})
}

func TestDecisionMarginAndString(t *testing.T) {
	d := DecideBinary(Baseline{}, []int{1, 2, 3}, []int{4})
	if got, want := d.Margin(), 2.0; got != want {
		t.Fatalf("Margin() = %v, want %v", got, want)
	}
	if s := d.String(); !strings.Contains(s, "occurred=true") {
		t.Fatalf("String() = %q", s)
	}
}

// Property: the vote outcome is exactly CTIFor > CTIAgainst, and both CTIs
// are the sums of the respective sides' weights.
func TestDecideBinaryConsistencyProperty(t *testing.T) {
	check := func(rep, sil []uint8, faults []uint8) bool {
		p := Params{Lambda: 0.25, FaultRate: 0.1}
		tab := MustNewTable(p)
		for _, f := range faults {
			tab.Judge(int(f%16), false)
		}
		reporters := make([]int, 0, len(rep))
		for _, r := range rep {
			reporters = append(reporters, int(r%16))
		}
		silent := make([]int, 0, len(sil))
		for _, s := range sil {
			silent = append(silent, int(s%16)+16) // disjoint from reporters
		}
		d := DecideBinary(tab, reporters, silent)
		var fore, against float64
		for _, id := range d.Reporters {
			fore += tab.Weight(id)
		}
		for _, id := range d.Silent {
			against += tab.Weight(id)
		}
		return math.Abs(fore-d.CTIFor) < 1e-9 &&
			math.Abs(against-d.CTIAgainst) < 1e-9 &&
			d.Occurred == (d.CTIFor > d.CTIAgainst)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: under the TIBFIT update rule, a node that always lies while a
// trustworthy majority holds loses trust monotonically.
func TestLiarTrustMonotoneProperty(t *testing.T) {
	check := func(rounds uint8) bool {
		p := Params{Lambda: 0.1, FaultRate: 0.05}
		tab := MustNewTable(p)
		prev := tab.TI(0)
		for i := 0; i < int(rounds%64); i++ {
			d := DecideBinary(tab, []int{0}, []int{1, 2, 3})
			Apply(tab, d)
			cur := tab.TI(0)
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorFloorsAtZero(t *testing.T) {
	est := NewEstimator(Params{Lambda: 0.25, FaultRate: 0.1})
	for i := 0; i < 10; i++ {
		est.Observe(true)
	}
	if est.TI() != 1 {
		t.Fatalf("estimator TI = %v after only-correct observations, want 1", est.TI())
	}
}
