package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sealed trust-state snapshots. §2's CH handoff moves the trust table
// through the base station as an opaque blob; a Byzantine head that can
// tamper with, or replay, that blob launders arbitrary trust state into
// the next head's table. SealSnapshot/OpenSnapshot make the blob
// self-authenticating: a fixed magic, a role byte separating
// station-issued state from head-uploaded state, a monotonically
// increasing version stamp the station checks against the version it
// issued, and a keyed checksum over everything. OpenSnapshot rejects
// anything malformed with a wrapped error — never a panic — so a
// hostile blob costs the station one decode, not the process.
//
// Wire format (all integers little-endian):
//
//	magic   [4]byte  "TIBS"
//	role    byte     RoleIssue | RoleUpload
//	version uint64   station-assigned handoff sequence number
//	count   uint32   number of records
//	records count × { id int64, v float64 bits, correct int64,
//	                  faulty int64, isolated byte }
//	sum     uint64   FNV-64a over key bytes ++ all preceding bytes
const snapshotMagic = "TIBS"

// Snapshot roles: the direction the blob is travelling. A head that
// replays the blob the station issued to it as its own upload fails the
// role check even though the checksum is intact.
const (
	RoleIssue  byte = 1 // station → newly appointed head
	RoleUpload byte = 2 // retiring head → station
)

// ErrSnapshotCorrupt is wrapped by every OpenSnapshot rejection:
// truncation, bad magic, absurd counts, non-finite accumulators,
// checksum mismatch. errors.Is(err, ErrSnapshotCorrupt) identifies them
// all.
var ErrSnapshotCorrupt = errors.New("core: snapshot corrupt")

const (
	snapshotHeaderLen = 4 + 1 + 8 + 4 // magic + role + version + count
	snapshotRecLen    = 8 + 8 + 8 + 8 + 1
	snapshotSumLen    = 8
)

// SealSnapshot encodes trust records as a sealed blob keyed on key.
// Records are emitted in ascending node-ID order so equal state seals to
// equal bytes.
func SealSnapshot(key, version uint64, role byte, recs map[int]Record) []byte {
	ids := make([]int, 0, len(recs))
	for id := range recs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	buf := make([]byte, 0, snapshotHeaderLen+len(ids)*snapshotRecLen+snapshotSumLen)
	buf = append(buf, snapshotMagic...)
	buf = append(buf, role)
	buf = binary.LittleEndian.AppendUint64(buf, version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		r := recs[id]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(id)))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.V))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(r.Correct)))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(r.Faulty)))
		if r.Isolated {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return binary.LittleEndian.AppendUint64(buf, snapshotSum(key, buf))
}

// OpenSnapshot decodes and authenticates a sealed blob. Any deviation
// from the format — wrong magic or role, truncated or trailing bytes,
// non-finite or negative accumulators, duplicate node IDs, checksum
// mismatch — returns an error wrapping ErrSnapshotCorrupt.
func OpenSnapshot(key uint64, blob []byte) (version uint64, role byte, recs map[int]Record, err error) {
	if len(blob) < snapshotHeaderLen+snapshotSumLen {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes is shorter than any valid snapshot", ErrSnapshotCorrupt, len(blob))
	}
	if string(blob[:4]) != snapshotMagic {
		return 0, 0, nil, fmt.Errorf("%w: bad magic %q", ErrSnapshotCorrupt, blob[:4])
	}
	role = blob[4]
	if role != RoleIssue && role != RoleUpload {
		return 0, 0, nil, fmt.Errorf("%w: unknown role %d", ErrSnapshotCorrupt, role)
	}
	version = binary.LittleEndian.Uint64(blob[5:])
	count := binary.LittleEndian.Uint32(blob[13:])
	want := snapshotHeaderLen + int64(count)*snapshotRecLen + snapshotSumLen
	if int64(len(blob)) != want {
		return 0, 0, nil, fmt.Errorf("%w: %d records need %d bytes, got %d",
			ErrSnapshotCorrupt, count, want, len(blob))
	}
	body := blob[:len(blob)-snapshotSumLen]
	sum := binary.LittleEndian.Uint64(blob[len(blob)-snapshotSumLen:])
	if snapshotSum(key, body) != sum {
		return 0, 0, nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}
	recs = make(map[int]Record, count)
	off := snapshotHeaderLen
	for i := uint32(0); i < count; i++ {
		id := int(int64(binary.LittleEndian.Uint64(blob[off:])))
		v := math.Float64frombits(binary.LittleEndian.Uint64(blob[off+8:]))
		correct := int64(binary.LittleEndian.Uint64(blob[off+16:]))
		faulty := int64(binary.LittleEndian.Uint64(blob[off+24:]))
		iso := blob[off+32]
		off += snapshotRecLen
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return 0, 0, nil, fmt.Errorf("%w: node %d has invalid accumulator %v", ErrSnapshotCorrupt, id, v)
		}
		if correct < 0 || faulty < 0 {
			return 0, 0, nil, fmt.Errorf("%w: node %d has negative verdict counts", ErrSnapshotCorrupt, id)
		}
		if iso > 1 {
			return 0, 0, nil, fmt.Errorf("%w: node %d has invalid isolation byte %d", ErrSnapshotCorrupt, id, iso)
		}
		if _, dup := recs[id]; dup {
			return 0, 0, nil, fmt.Errorf("%w: duplicate record for node %d", ErrSnapshotCorrupt, id)
		}
		recs[id] = Record{V: v, Correct: int(correct), Faulty: int(faulty), Isolated: iso == 1}
	}
	return version, role, recs, nil
}

// snapshotSum is FNV-64a over the key bytes followed by the body. The
// key models the pairwise station↔head secret a deployment would
// provision; without it a tamperer could just recompute the sum.
func snapshotSum(key uint64, body []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var keyb [8]byte
	binary.LittleEndian.PutUint64(keyb[:], key)
	sum := uint64(offset64)
	for _, b := range keyb {
		sum = (sum ^ uint64(b)) * prime64
	}
	for _, b := range body {
		sum = (sum ^ uint64(b)) * prime64
	}
	return sum
}
