package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/tibfit/tibfit/internal/rng"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSampleMoments(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if !almostEqual(s.Var(), 32.0/7, 1e-12) {
		t.Fatalf("Var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Var() != 0 || s.StdErr() != 0 {
		t.Fatal("empty sample not zero-valued")
	}
	s.Add(3)
	if s.Var() != 0 || s.Std() != 0 {
		t.Fatal("single observation has nonzero spread")
	}
	iv := s.CI95()
	if iv.Lo != 3 || iv.Hi != 3 {
		t.Fatalf("degenerate CI = %v", iv)
	}
}

func TestCI95CoversTrueMean(t *testing.T) {
	// Monte-Carlo coverage check: the 95% interval over 10 normal draws
	// should contain the true mean roughly 95% of the time.
	src := rng.New(1)
	covered := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		var s Sample
		for j := 0; j < 10; j++ {
			s.Add(src.Gaussian(7, 3))
		}
		if s.CI95().Contains(7) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.93 || rate > 0.97 {
		t.Fatalf("CI95 coverage = %v, want ~0.95", rate)
	}
}

func TestWilson95(t *testing.T) {
	iv := Wilson95(50, 100)
	if !iv.Contains(0.5) {
		t.Fatalf("Wilson(50/100) = %v does not contain 0.5", iv)
	}
	if iv.Width() > 0.25 {
		t.Fatalf("Wilson(50/100) too wide: %v", iv)
	}
	// Near the boundary the interval must stay inside [0, 1] and remain
	// non-degenerate.
	hi := Wilson95(100, 100)
	if hi.Hi != 1 || hi.Lo >= 1 || hi.Lo < 0.9 {
		t.Fatalf("Wilson(100/100) = %v", hi)
	}
	lo := Wilson95(0, 100)
	if lo.Lo != 0 || lo.Hi <= 0 || lo.Hi > 0.1 {
		t.Fatalf("Wilson(0/100) = %v", lo)
	}
}

func TestWilson95Panics(t *testing.T) {
	for _, c := range []struct{ s, n int }{{-1, 10}, {11, 10}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for %d/%d", c.s, c.n)
				}
			}()
			Wilson95(c.s, c.n)
		}()
	}
}

func TestWilsonCoverage(t *testing.T) {
	// Coverage of Wilson intervals over Bernoulli(0.9) samples of size 50.
	src := rng.New(2)
	covered := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		succ := 0
		for j := 0; j < 50; j++ {
			if src.Bernoulli(0.9) {
				succ++
			}
		}
		if Wilson95(succ, 50).Contains(0.9) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.99 {
		t.Fatalf("Wilson coverage = %v, want ~0.95", rate)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.3); !almostEqual(got, 3, 1e-12) {
		t.Fatalf("interpolated = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if !s.CI.Contains(3) {
		t.Fatalf("CI %v misses the mean", s.CI)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: Welford moments match the two-pass computation.
func TestWelfordMatchesTwoPassProperty(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e6))
		}
		if len(xs) < 2 {
			return true
		}
		var s Sample
		var sum float64
		for _, x := range xs {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs)-1)
		scale := 1 + math.Abs(mean) + variance
		return almostEqual(s.Mean(), mean, 1e-9*scale) &&
			almostEqual(s.Var(), variance, 1e-6*scale)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	check := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e6))
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Abs(math.Mod(q1, 1))
		b := math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		qa, qb := Quantile(xs, a), Quantile(xs, b)
		lo, hi := Quantile(xs, 0), Quantile(xs, 1)
		return qa <= qb+1e-9 && qa >= lo-1e-9 && qb <= hi+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
