// Package stats provides the small statistical toolkit the experiment
// harness uses to report replicate variability: sample moments, normal
// and t-approximate confidence intervals for means, and Wilson score
// intervals for proportions (detection accuracy is a proportion, and
// Wilson behaves sanely near 0 and 1 where the naive normal interval
// does not).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations with Welford's algorithm, which stays
// numerically stable for long runs.
type Sample struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds in one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Sample) Mean() float64 { return s.mean }

// Min and Max return the extremes (0 when empty).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 { return s.max }

// Var returns the unbiased sample variance (0 for fewer than 2 points).
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 { return math.Sqrt(s.Var()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether x lies inside the interval (inclusive).
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// String renders the interval as "[lo, hi]".
func (iv Interval) String() string { return fmt.Sprintf("[%.4f, %.4f]", iv.Lo, iv.Hi) }

// tCritical95 holds two-sided 95% critical values of Student's t for
// small degrees of freedom; beyond the table the normal value applies.
var tCritical95 = []float64{
	0,      // df 0 (unused)
	12.706, // 1
	4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

const z95 = 1.959964

// CI95 returns the two-sided 95% confidence interval for the mean using
// Student's t for small samples. Fewer than two observations yield a
// degenerate interval at the mean.
func (s *Sample) CI95() Interval {
	if s.n < 2 {
		return Interval{Lo: s.mean, Hi: s.mean}
	}
	df := s.n - 1
	crit := z95
	if df < len(tCritical95) {
		crit = tCritical95[df]
	}
	half := crit * s.StdErr()
	return Interval{Lo: s.mean - half, Hi: s.mean + half}
}

// Wilson95 returns the Wilson score 95% interval for a proportion with
// successes out of trials. It panics on invalid counts.
func Wilson95(successes, trials int) Interval {
	if trials <= 0 || successes < 0 || successes > trials {
		panic(fmt.Sprintf("stats: invalid proportion %d/%d", successes, trials))
	}
	p := float64(successes) / float64(trials)
	n := float64(trials)
	z := z95
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	lo := center - half
	hi := center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{Lo: lo, Hi: hi}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It returns 0 for empty input
// and panics on out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the descriptive statistics the CLI prints for a
// replicate set.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	CI     Interval
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	var s Sample
	for _, x := range xs {
		s.Add(x)
	}
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		Std:    s.Std(),
		Min:    s.Min(),
		Max:    s.Max(),
		Median: Quantile(xs, 0.5),
		CI:     s.CI95(),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f±%.4f std=%.4f min=%.4f med=%.4f max=%.4f",
		s.N, s.Mean, s.CI.Width()/2, s.Std, s.Min, s.Median, s.Max)
}

// ApproxEqualTol is the default relative tolerance for ApproxEqual.
// TI/CTI values accumulate through at most a few thousand multiply-add
// steps, so anything within ~1e-9 relative is numerical noise, not a
// protocol-level difference.
const ApproxEqualTol = 1e-9

// ApproxEqual reports whether a and b are equal up to ApproxEqualTol,
// relative to their magnitude (absolute near zero). It is the approved
// epsilon helper the floateq lint rule points at: protocol code must
// not compare floats with == or != directly, because TI and CTI values
// differ in the last ulp across algebraically equivalent refactors.
// NaN is not approximately equal to anything, including itself.
func ApproxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale <= 1 {
		return diff <= ApproxEqualTol
	}
	return diff <= ApproxEqualTol*scale
}
