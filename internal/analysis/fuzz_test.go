package analysis

import (
	"math"
	"testing"
)

// FuzzMajorityForms cross-checks the convolution implementation against
// the paper's explicit equation-2/3 forms on arbitrary parameters, and
// pins the probability axioms.
func FuzzMajorityForms(f *testing.F) {
	f.Add(uint8(10), uint8(5), 0.95, 0.5)
	f.Add(uint8(1), uint8(0), 0.0, 1.0)
	f.Add(uint8(19), uint8(19), 0.5, 0.5)
	f.Fuzz(func(t *testing.T, n, m uint8, p, q float64) {
		nn := int(n%24) + 1
		mm := int(m) % (nn + 1)
		if math.IsNaN(p) || math.IsInf(p, 0) || math.IsNaN(q) || math.IsInf(q, 0) {
			t.Skip()
		}
		pp := math.Abs(math.Mod(p, 1))
		qq := math.Abs(math.Mod(q, 1))
		a := MajoritySuccess(nn, mm, pp, qq)
		b := MajoritySuccessPaperForm(nn, mm, pp, qq)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("forms disagree: %v vs %v (n=%d m=%d p=%v q=%v)", a, b, nn, mm, pp, qq)
		}
		if a < 0 || a > 1 {
			t.Fatalf("probability out of range: %v", a)
		}
	})
}

// FuzzBinomialPMF pins the PMF axioms on arbitrary inputs.
func FuzzBinomialPMF(f *testing.F) {
	f.Add(uint8(10), 0.3)
	f.Fuzz(func(t *testing.T, n uint8, p float64) {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Skip()
		}
		nn := int(n%64) + 1
		pp := math.Abs(math.Mod(p, 1))
		var sum float64
		for k := 0; k <= nn; k++ {
			v := BinomialPMF(nn, pp, k)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("PMF(%d, %v, %d) = %v", nn, pp, k, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("PMF sums to %v", sum)
		}
	})
}
