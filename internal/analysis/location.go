package analysis

import (
	"fmt"
	"math"

	"github.com/tibfit/tibfit/internal/geo"
)

// Location-mode reliability prediction. Experiment 2's accuracy is driven
// by per-event quorum geometry: an event drawn uniformly over the field
// sees however many sensors fall within r_s of it, the compromised subset
// of that neighborhood follows a hypergeometric draw from the population,
// and the CTI vote at the true event's cluster then plays out as in the
// binary model with location-aware report probabilities:
//
//	p = (1 - channel loss) · P(honest noise ≤ r_error)
//	q = (1 - miss) · (1 - channel loss) · P(faulty noise ≤ r_error)
//
// (a report farther than r_error from the true location leaves the
// event's cluster and votes against it, which is the same as silence for
// this candidate). Composing the three stages gives a closed-form
// predictor for figure 4's curves.

// NeighborHist is the distribution of event-neighbor counts: Prob[k] is
// the probability a uniformly placed event has exactly k sensors in range.
type NeighborHist struct {
	Prob []float64
	Mean float64
}

// NeighborCounts integrates the neighbor-count distribution over the
// deployment area on a uniform evaluation lattice of gridSteps×gridSteps
// event positions — deterministic numerical integration, no sampling.
func NeighborCounts(area geo.Rect, sensors []geo.Point, senseRadius float64, gridSteps int) (NeighborHist, error) {
	if len(sensors) == 0 {
		return NeighborHist{}, fmt.Errorf("analysis: no sensors")
	}
	if senseRadius <= 0 || gridSteps < 2 {
		return NeighborHist{}, fmt.Errorf("analysis: need positive radius and ≥2 grid steps")
	}
	hist := make([]float64, len(sensors)+1)
	total := 0
	for i := 0; i < gridSteps; i++ {
		for j := 0; j < gridSteps; j++ {
			ev := geo.Point{
				X: area.Min.X + (float64(i)+0.5)*area.Width()/float64(gridSteps),
				Y: area.Min.Y + (float64(j)+0.5)*area.Height()/float64(gridSteps),
			}
			k := 0
			for _, s := range sensors {
				if s.Within(ev, senseRadius) {
					k++
				}
			}
			hist[k]++
			total++
		}
	}
	out := NeighborHist{Prob: make([]float64, len(hist))}
	for k, c := range hist {
		p := c / float64(total)
		out.Prob[k] = p
		out.Mean += float64(k) * p
	}
	return out, nil
}

// Hypergeometric returns P(drawing k faulty in a neighborhood of size n
// from a population of popN sensors of which popFaulty are faulty).
func Hypergeometric(popN, popFaulty, n, k int) float64 {
	if k < 0 || k > n || k > popFaulty || n-k > popN-popFaulty {
		return 0
	}
	// C(popFaulty,k)·C(popN-popFaulty,n-k)/C(popN,n) in log space.
	lg := logChoose(popFaulty, k) + logChoose(popN-popFaulty, n-k) - logChoose(popN, n)
	return expSafe(lg)
}

func expSafe(lg float64) float64 {
	// math.Exp of very negative values underflows to 0, which is fine.
	return math.Exp(lg)
}

// LocationParams carries the per-node probabilities of a useful report.
type LocationParams struct {
	// PCorrect is a correct neighbor's probability of contributing a
	// within-r_error report: (1-loss)·P(|noise| ≤ r_error).
	PCorrect float64
	// PFaulty is a lying neighbor's same probability:
	// (1-miss)·(1-loss)·P(|noise| ≤ r_error).
	PFaulty float64
	// TICorrect and TIFaulty are the populations' trust levels (1 at the
	// start of a run; feed ExpectedTI trajectories for later epochs).
	TICorrect float64
	TIFaulty  float64
}

// LocationSuccess predicts the probability an event is detected within
// r_error: the neighbor count is drawn from hist, its faulty split is
// hypergeometric, and the trust-weighted vote follows TIBFITBinarySuccess.
// Neighborhoods with no sensors can never be detected.
func LocationSuccess(hist NeighborHist, popN, popFaulty int, p LocationParams) float64 {
	var success float64
	for n, pn := range hist.Prob {
		//lint:allow floateq skipping exactly-zero probability terms; any nonzero value must contribute
		if pn == 0 || n == 0 {
			continue
		}
		for m := 0; m <= n; m++ {
			pm := Hypergeometric(popN, popFaulty, n, m)
			//lint:allow floateq skipping exactly-zero probability terms; any nonzero value must contribute
			if pm == 0 {
				continue
			}
			success += pn * pm * TIBFITBinarySuccess(n, m, p.PCorrect, p.PFaulty, p.TICorrect, p.TIFaulty)
		}
	}
	return success
}
