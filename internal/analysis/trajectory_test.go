package analysis

import (
	"math"
	"testing"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/rng"
)

func TestExpectedVDrift(t *testing.T) {
	// Erring exactly at the natural rate: zero drift.
	if v := ExpectedV(0.1, 0.1, 100); v != 0 {
		t.Fatalf("E[v] at natural rate = %v", v)
	}
	// A 50%-miss faulty node under f_r = 0.1 drifts at 0.4/report.
	if v := ExpectedV(0.1, 0.5, 10); math.Abs(v-4) > 1e-12 {
		t.Fatalf("E[v] = %v, want 4", v)
	}
	// Better-than-natural behaviour clamps to the floor.
	if v := ExpectedV(0.1, 0.01, 100); v != 0 {
		t.Fatalf("E[v] below natural rate = %v", v)
	}
}

func TestExpectedVPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ExpectedV(0.1, 0.5, -1)
}

func TestExpectedTIMonotone(t *testing.T) {
	prev := 1.0
	for k := 0; k <= 50; k += 5 {
		ti := ExpectedTI(0.25, 0.1, 0.5, k)
		if ti > prev+1e-12 {
			t.Fatalf("expected TI rose at k=%d", k)
		}
		prev = ti
	}
}

// TestExpectedTIMatchesSimulation cross-validates the closed form against
// the live trust table: simulate many independent nodes judged by coin
// flips and compare the sample-mean TI with the analytic curve.
func TestExpectedTIMatchesSimulation(t *testing.T) {
	const (
		lambda  = 0.25
		fr      = 0.1
		errRate = 0.5
		k       = 20
		nodes   = 4000
	)
	params := core.Params{Lambda: lambda, FaultRate: fr}
	tab := core.MustNewTable(params)
	src := rng.New(42)
	var sum float64
	for n := 0; n < nodes; n++ {
		for i := 0; i < k; i++ {
			tab.Judge(n, !src.Bernoulli(errRate))
		}
		sum += tab.TI(n)
	}
	sample := sum / nodes
	analytic := ExpectedTI(lambda, fr, errRate, k)
	// exp(-λ E[v]) vs E[exp(-λ v)]: Jensen puts the analytic value below
	// the sample mean, but within a tight band at these parameters.
	if sample < analytic-1e-9 {
		t.Fatalf("sample mean %v below the analytic lower bound %v", sample, analytic)
	}
	if sample-analytic > 0.07 {
		t.Fatalf("analytic %v too far below sample mean %v", analytic, sample)
	}
}

func TestReportsUntilTI(t *testing.T) {
	// 50%-miss node, λ=0.25, f_r=0.1: drift 0.4/report; to reach TI 0.3
	// needs v = -ln(0.3)/0.25 ≈ 4.816 → 13 reports.
	n, ok := ReportsUntilTI(0.25, 0.1, 0.5, 0.3)
	if !ok || n != 13 {
		t.Fatalf("ReportsUntilTI = %d, %t, want 13", n, ok)
	}
	// Verify against the live table.
	tab := core.MustNewTable(core.Params{Lambda: 0.25, FaultRate: 0.1})
	reports := 0
	faults := 0
	for tab.TI(1) > 0.3 {
		// Deterministic alternation at the 50% rate: fault, correct, ...
		tab.Judge(1, faults%2 == 1)
		faults++
		reports++
		if reports > 100 {
			t.Fatal("never reached target")
		}
	}
	// The closed form counts total reports at the per-report drift of
	// 0.4; the alternating pattern realizes the same drift, so the live
	// count lands within a small pattern-phase slack of the prediction.
	if reports < n-3 || reports > n+3 {
		t.Fatalf("live table took %d reports, closed form predicts ~%d", reports, n)
	}

	if _, ok := ReportsUntilTI(0.25, 0.1, 0.05, 0.3); ok {
		t.Fatal("node erring below natural rate reported as sinking")
	}
	if _, ok := ReportsUntilTI(0, 0.1, 0.5, 0.3); ok {
		t.Fatal("invalid lambda accepted")
	}
}

func TestCTITrajectoryGeometricSum(t *testing.T) {
	// Closed geometric sum: Σ r^i = r(1-r^n)/(1-r) with r = e^{-kλ}.
	lambda, k := 0.25, 3.0
	r := math.Exp(-k * lambda)
	want := r * (1 - math.Pow(r, 5)) / (1 - r)
	if got := CTITrajectory(lambda, k, 5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CTITrajectory = %v, want %v", got, want)
	}
	if got := CTITrajectory(lambda, k, 0); got != 0 {
		t.Fatalf("empty trajectory = %v", got)
	}
}

func TestDecayHoldsMatchesRootThreshold(t *testing.T) {
	// §5: compromises spaced k events apart are absorbable exactly when k
	// exceeds the root of the transition function. Check both sides of
	// the threshold with the worst case the analysis uses (honest side
	// shrunk to 3, faulty side at N-3 with the full trajectory).
	const n = 10
	lambda := 0.25
	root, err := MinInterCompromiseEvents(lambda, n)
	if err != nil {
		t.Fatal(err)
	}
	if !DecayHoldsAt(lambda, root*1.2, 3, n-2) {
		t.Fatal("condition fails above the root")
	}
	if DecayHoldsAt(lambda, root*0.5, 3, n-2) {
		t.Fatal("condition holds well below the root")
	}
}
