package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestBinomialPMFKnownValues(t *testing.T) {
	tests := []struct {
		n    int
		p    float64
		k    int
		want float64
	}{
		{4, 0.5, 2, 0.375},
		{4, 0.5, 0, 0.0625},
		{4, 0.5, 4, 0.0625},
		{10, 0.1, 0, math.Pow(0.9, 10)},
		{3, 0.25, 1, 3 * 0.25 * 0.75 * 0.75},
	}
	for _, tt := range tests {
		if got := BinomialPMF(tt.n, tt.p, tt.k); !almostEqual(got, tt.want, 1e-12) {
			t.Fatalf("PMF(%d, %v, %d) = %v, want %v", tt.n, tt.p, tt.k, got, tt.want)
		}
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if BinomialPMF(5, 0.5, -1) != 0 || BinomialPMF(5, 0.5, 6) != 0 {
		t.Fatal("out-of-range k not zero")
	}
	if BinomialPMF(5, 0, 0) != 1 || BinomialPMF(5, 0, 1) != 0 {
		t.Fatal("p=0 edge wrong")
	}
	if BinomialPMF(5, 1, 5) != 1 || BinomialPMF(5, 1, 4) != 0 {
		t.Fatal("p=1 edge wrong")
	}
}

// Property: the PMF sums to 1 over its support.
func TestBinomialPMFSumsToOneProperty(t *testing.T) {
	check := func(n uint8, p float64) bool {
		nn := 1 + int(n%40)
		pp := math.Abs(math.Mod(p, 1))
		var sum float64
		for k := 0; k <= nn; k++ {
			sum += BinomialPMF(nn, pp, k)
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMajoritySuccessNoFaulty(t *testing.T) {
	// With no faulty nodes and p=1 the vote always succeeds.
	if got := MajoritySuccess(10, 0, 1, 0.5); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("P = %v, want 1", got)
	}
	// With p=0 nobody reports: never a majority.
	if got := MajoritySuccess(10, 0, 0, 0.5); got != 0 {
		t.Fatalf("P = %v, want 0", got)
	}
}

func TestMajoritySuccessAllFaulty(t *testing.T) {
	// All nodes faulty with q=0.5 and N=10: success needs ≥6 of Bin(10,½).
	want := 0.0
	for k := 6; k <= 10; k++ {
		want += BinomialPMF(10, 0.5, k)
	}
	if got := MajoritySuccess(10, 10, 0.99, 0.5); !almostEqual(got, want, 1e-12) {
		t.Fatalf("P = %v, want %v", got, want)
	}
}

func TestMajoritySuccessMonotoneInFaulty(t *testing.T) {
	// With p > q, more faulty nodes can never help.
	prev := 1.0
	for m := 0; m <= 10; m++ {
		cur := MajoritySuccess(10, m, 0.95, 0.5)
		if cur > prev+1e-12 {
			t.Fatalf("P(success) increased at m=%d: %v > %v", m, cur, prev)
		}
		prev = cur
	}
}

func TestMajoritySuccessSteepDropPastHalf(t *testing.T) {
	// §5: "accuracy begins to fall off steeply once fifty percent of the
	// network is compromised."
	at50 := MajoritySuccess(10, 5, 0.95, 0.5)
	at80 := MajoritySuccess(10, 8, 0.95, 0.5)
	if at50 < 0.8 {
		t.Fatalf("P at 50%% = %v, expected still serviceable", at50)
	}
	if at80 > at50-0.2 {
		t.Fatalf("P at 80%% = %v vs %v at 50%%, expected a steep drop", at80, at50)
	}
}

func TestMajoritySuccessPanicsOnBadInput(t *testing.T) {
	for _, f := range []func(){
		func() { MajoritySuccess(0, 0, 0.5, 0.5) },
		func() { MajoritySuccess(5, -1, 0.5, 0.5) },
		func() { MajoritySuccess(5, 6, 0.5, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

// Property: the direct convolution equals the paper's explicit equation
// 2/3 double sums.
func TestConvolutionMatchesPaperFormProperty(t *testing.T) {
	check := func(n uint8, m uint8, p, q float64) bool {
		nn := 1 + int(n%20)
		mm := int(m) % (nn + 1)
		pp := math.Abs(math.Mod(p, 1))
		qq := math.Abs(math.Mod(q, 1))
		return almostEqual(
			MajoritySuccess(nn, mm, pp, qq),
			MajoritySuccessPaperForm(nn, mm, pp, qq),
			1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure10CurveShape(t *testing.T) {
	curve := Figure10Curve(10, 0.99, 0.5)
	if len(curve) != 11 {
		t.Fatalf("curve has %d points", len(curve))
	}
	if curve[0].FaultyPercent != 0 || curve[10].FaultyPercent != 100 {
		t.Fatalf("x range = %v .. %v", curve[0].FaultyPercent, curve[10].FaultyPercent)
	}
	if curve[0].Success < 0.99 {
		t.Fatalf("accuracy with no faults = %v", curve[0].Success)
	}
	// Figure 10's headline: the knee is past 50%.
	if curve[5].Success < 0.8 {
		t.Fatalf("accuracy at 50%% = %v, want ≥ 0.8", curve[5].Success)
	}
	// With q=0.5 faulty nodes still report truthfully half the time, so
	// the curve bottoms out near P(Bin(10,½) ≥ 6) ≈ 0.38, not zero.
	if curve[9].Success > 0.6 {
		t.Fatalf("accuracy at 90%% = %v, want steep drop", curve[9].Success)
	}
}

func TestFigure10HigherPIsBetter(t *testing.T) {
	lo := Figure10Curve(10, 0.85, 0.5)
	hi := Figure10Curve(10, 0.99, 0.5)
	for i := range lo {
		if lo[i].Success > hi[i].Success+1e-12 {
			t.Fatalf("p=0.85 beats p=0.99 at %v%%", lo[i].FaultyPercent)
		}
	}
}

func TestTransitionFProperties(t *testing.T) {
	// f(0) = 0 by construction.
	if got := TransitionF(0, 0.25, 10); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("f(0) = %v", got)
	}
	// f dips negative just above zero and approaches 1 as k → ∞.
	if TransitionF(0.5, 0.25, 10) >= 0 {
		t.Fatal("f not negative in the dip")
	}
	if got := TransitionF(1000, 0.25, 10); !almostEqual(got, 1, 1e-9) {
		t.Fatalf("f(∞) = %v", got)
	}
}

func TestMinInterCompromiseEventsIsRoot(t *testing.T) {
	for _, lambda := range []float64{0.05, 0.1, 0.25, 0.5, 1.0} {
		k, err := MinInterCompromiseEvents(lambda, 10)
		if err != nil {
			t.Fatalf("lambda=%v: %v", lambda, err)
		}
		if k <= 0 {
			t.Fatalf("lambda=%v: root %v not positive", lambda, k)
		}
		if f := TransitionF(k, lambda, 10); !almostEqual(f, 0, 1e-9) {
			t.Fatalf("lambda=%v: f(root) = %v", lambda, f)
		}
	}
}

func TestMinInterCompromiseEventsDecreasesWithLambda(t *testing.T) {
	// §5: "as λ increases, the frequency of nodes failing that can be
	// tolerated increases" — i.e. the required spacing k shrinks.
	prev := math.Inf(1)
	for _, lambda := range []float64{0.05, 0.1, 0.25, 0.5, 1.0} {
		k, err := MinInterCompromiseEvents(lambda, 10)
		if err != nil {
			t.Fatal(err)
		}
		if k >= prev {
			t.Fatalf("k(λ=%v) = %v not below %v", lambda, k, prev)
		}
		prev = k
	}
}

func TestMinInterCompromiseEventsScaleInvariance(t *testing.T) {
	// f depends on k only through kλ, so k·λ is constant across λ.
	k1, _ := MinInterCompromiseEvents(0.1, 10)
	k2, _ := MinInterCompromiseEvents(0.2, 10)
	if !almostEqual(k1*0.1, k2*0.2, 1e-6) {
		t.Fatalf("kλ not invariant: %v vs %v", k1*0.1, k2*0.2)
	}
}

func TestMinInterCompromiseEventsErrors(t *testing.T) {
	if _, err := MinInterCompromiseEvents(0, 10); err == nil {
		t.Fatal("accepted λ=0")
	}
	if _, err := MinInterCompromiseEvents(0.25, 2); err == nil {
		t.Fatal("accepted n<3")
	}
}

func TestKMax(t *testing.T) {
	if got, want := KMax(0.25), math.Log(3)/0.25; !almostEqual(got, want, 1e-12) {
		t.Fatalf("KMax = %v, want %v", got, want)
	}
	// 3·e^{-λ·k_max} = 1 by definition.
	if got := 3 * math.Exp(-0.25*KMax(0.25)); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("3e^{-λ k_max} = %v", got)
	}
}

func TestKMaxPanicsOnBadLambda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	KMax(0)
}

func TestFigure11CurveSampling(t *testing.T) {
	pts := Figure11Curve(0.25, 10, 25, 10)
	if len(pts) != 25 {
		t.Fatalf("got %d samples", len(pts))
	}
	if pts[0].K != 0 || !almostEqual(pts[24].K, 10, 1e-12) {
		t.Fatalf("k range = %v .. %v", pts[0].K, pts[24].K)
	}
	// Minimum sample count is clamped.
	if got := Figure11Curve(0.25, 10, 1, 10); len(got) != 2 {
		t.Fatalf("clamped samples = %d", len(got))
	}
}
