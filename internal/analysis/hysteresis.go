package analysis

import (
	"fmt"
	"math"
)

// Smart adversaries (§2.1 levels 1-2) run a trust hysteresis: lie while
// their self-estimated TI is above lowerTI, behave until it recovers past
// upperTI (§4.2 uses 0.5 and 0.8). This file derives the closed-form
// consequences — the duty cycle of the lying phase and the adversary's
// effective error rate — which is the mechanism behind figure 5's result
// that TIBFIT forces level-1 nodes "to lie less frequently and therefore
// helps to improve the accuracy of the event determination."

// HysteresisCycle describes one full lie/recover oscillation.
type HysteresisCycle struct {
	// LieEvents is the expected number of judged events spent in the
	// lying phase before the estimate hits lowerTI.
	LieEvents float64
	// RecoverEvents is the expected number spent behaving correctly
	// until the estimate recovers past upperTI.
	RecoverEvents float64
	// Duty is LieEvents / (LieEvents + RecoverEvents): the fraction of
	// judged events during which the node is actually lying.
	Duty float64
	// EffectiveErrRate is Duty × errWhileLying — the error rate the rest
	// of the system actually experiences from this adversary.
	EffectiveErrRate float64
}

// Hysteresis computes the §4.2 oscillation for an adversary whose reports
// are judged wrong with probability errLying while lying and errHonest
// while behaving (errHonest < f_r, or recovery never happens). lambda and
// fr are the trust parameters the adversary mirrors; lowerTI < upperTI
// are the thresholds.
//
// Derivation: the estimator's accumulator must climb from
// v_hi = -ln(upperTI)/λ to v_lo = -ln(lowerTI)/λ during the lying phase,
// at expected drift errLying·(1-f_r) - (1-errLying)·f_r per judged event,
// and descend the same distance during recovery at drift
// (1-errHonest)·f_r - errHonest·(1-f_r).
func Hysteresis(lambda, fr, errLying, errHonest, lowerTI, upperTI float64) (HysteresisCycle, error) {
	switch {
	case lambda <= 0:
		return HysteresisCycle{}, fmt.Errorf("analysis: lambda must be positive, got %v", lambda)
	case lowerTI <= 0 || upperTI >= 1 || lowerTI >= upperTI:
		return HysteresisCycle{}, fmt.Errorf("analysis: need 0 < lowerTI < upperTI < 1, got %v, %v", lowerTI, upperTI)
	}
	lieDrift := errLying*(1-fr) - (1-errLying)*fr
	if lieDrift <= 0 {
		return HysteresisCycle{}, fmt.Errorf("analysis: lying drift %v not positive — the adversary never sinks", lieDrift)
	}
	recoverDrift := (1-errHonest)*fr - errHonest*(1-fr)
	if recoverDrift <= 0 {
		return HysteresisCycle{}, fmt.Errorf("analysis: recovery drift %v not positive — the adversary never recovers", recoverDrift)
	}
	span := (-math.Log(lowerTI) + math.Log(upperTI)) / lambda // v_lo - v_hi
	cycle := HysteresisCycle{
		LieEvents:     span / lieDrift,
		RecoverEvents: span / recoverDrift,
	}
	cycle.Duty = cycle.LieEvents / (cycle.LieEvents + cycle.RecoverEvents)
	cycle.EffectiveErrRate = cycle.Duty * errLying
	return cycle, nil
}

// Table2Level1Cycle evaluates the hysteresis at the paper's experiment-2
// parameters: λ=0.25, f_r=0.1, thresholds 0.5/0.8, a level-1 node whose
// lying reports are judged wrong roughly 62% of the time (25% deliberate
// drops plus honest-looking reports that still miss r_error at σ=4.25),
// and whose honest-phase reports err ~5%.
func Table2Level1Cycle() HysteresisCycle {
	c, err := Hysteresis(0.25, 0.1, 0.62, 0.05, 0.5, 0.8)
	if err != nil {
		panic(err) // constants are valid by construction
	}
	return c
}
