package analysis

import (
	"math"
	"testing"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/node"
	"github.com/tibfit/tibfit/internal/rng"
)

func TestHysteresisValidation(t *testing.T) {
	cases := []struct {
		name                                          string
		lambda, fr, errLying, errHonest, lower, upper float64
	}{
		{"zero lambda", 0, 0.1, 0.5, 0.01, 0.5, 0.8},
		{"inverted thresholds", 0.25, 0.1, 0.5, 0.01, 0.8, 0.5},
		{"upper at one", 0.25, 0.1, 0.5, 0.01, 0.5, 1},
		{"never sinks", 0.25, 0.1, 0.05, 0.01, 0.5, 0.8},
		{"never recovers", 0.25, 0.1, 0.5, 0.5, 0.5, 0.8},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Hysteresis(tt.lambda, tt.fr, tt.errLying, tt.errHonest, tt.lower, tt.upper); err == nil {
				t.Fatal("invalid parameters accepted")
			}
		})
	}
}

func TestHysteresisAlgebra(t *testing.T) {
	// λ=0.25, thresholds 0.5/0.8: span = (ln 0.8 - ln 0.5)/0.25 = 1.880.
	// errLying=0.5, fr=0.1: lie drift 0.4 → 4.70 events to sink.
	// errHonest=0, recovery drift 0.1 → 18.8 events to recover.
	c, err := Hysteresis(0.25, 0.1, 0.5, 0, 0.5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	span := (math.Log(0.8) - math.Log(0.5)) / 0.25
	if math.Abs(c.LieEvents-span/0.4) > 1e-9 {
		t.Fatalf("LieEvents = %v", c.LieEvents)
	}
	if math.Abs(c.RecoverEvents-span/0.1) > 1e-9 {
		t.Fatalf("RecoverEvents = %v", c.RecoverEvents)
	}
	wantDuty := (span / 0.4) / (span/0.4 + span/0.1)
	if math.Abs(c.Duty-wantDuty) > 1e-9 {
		t.Fatalf("Duty = %v, want %v", c.Duty, wantDuty)
	}
	if math.Abs(c.EffectiveErrRate-wantDuty*0.5) > 1e-9 {
		t.Fatalf("EffectiveErrRate = %v", c.EffectiveErrRate)
	}
	// The paper's insight, quantified: hysteresis caps this adversary's
	// effective error rate at a fifth of its lying-phase rate.
	if c.Duty > 0.25 {
		t.Fatalf("duty cycle %v, expected the recovery phase to dominate", c.Duty)
	}
}

// TestHysteresisMatchesNodeSimulation drives a real level-1 node through
// the verdict loop the model assumes and compares its measured lying duty
// cycle against the closed form.
func TestHysteresisMatchesNodeSimulation(t *testing.T) {
	const (
		lambda    = 0.25
		fr        = 0.1
		errLying  = 0.6
		errHonest = 0.02
		lower     = 0.5
		upper     = 0.8
	)
	model, err := Hysteresis(lambda, fr, errLying, errHonest, lower, upper)
	if err != nil {
		t.Fatal(err)
	}

	cfg := node.Config{
		SenseRadius: 20,
		LowerTI:     lower,
		UpperTI:     upper,
		Trust:       core.Params{Lambda: lambda, FaultRate: fr},
	}
	n := node.MustNew(1, geo.Point{}, node.Level1, cfg, rng.New(1))
	src := rng.New(2)

	const events = 200000
	lying := 0
	for i := 0; i < events; i++ {
		wasLying := n.Lying()
		if wasLying {
			lying++
		}
		errRate := errHonest
		if wasLying {
			errRate = errLying
		}
		n.ObserveVerdict(!src.Bernoulli(errRate))
	}
	measured := float64(lying) / events
	if math.Abs(measured-model.Duty) > 0.03 {
		t.Fatalf("measured duty %v vs model %v", measured, model.Duty)
	}
}

func TestTable2Level1Cycle(t *testing.T) {
	c := Table2Level1Cycle()
	if c.Duty <= 0 || c.Duty >= 0.5 {
		t.Fatalf("Table 2 level-1 duty = %v, expected a minority of the time", c.Duty)
	}
	// Effective error rate lands well under the natural-rate-compensated
	// f_r=0.1's tolerance ceiling... no: it should land well under the
	// lying-phase rate; the point is the cap.
	if c.EffectiveErrRate >= 0.62/2 {
		t.Fatalf("effective error rate %v not meaningfully capped", c.EffectiveErrRate)
	}
}
