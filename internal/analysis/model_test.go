package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTIBFITSuccessReducesToBaselineAtFullTrust(t *testing.T) {
	// With both populations at trust 1, the CTI vote is one-node-one-vote
	// with a strict-majority threshold — not identical to §5's ⌊N/2⌋+1
	// rule for even splits, but equal wherever the reporting count can't
	// tie. For odd N the two coincide exactly.
	for _, n := range []int{9, 11, 15} {
		for m := 0; m <= n; m++ {
			got := TIBFITBinarySuccess(n, m, 0.95, 0.5, 1, 1)
			want := MajoritySuccess(n, m, 0.95, 0.5)
			// The CTI rule declares when reporters strictly outweigh the
			// silent side: R > N/2, identical to ⌊N/2⌋+1 for odd N.
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("n=%d m=%d: CTI model %v != baseline %v", n, m, got, want)
			}
		}
	}
}

func TestTIBFITSuccessImprovesAsFaultyTrustDecays(t *testing.T) {
	prev := 0.0
	for i, tf := range []float64{1, 0.8, 0.5, 0.2, 0.05, 0} {
		p := TIBFITBinarySuccess(10, 7, 0.99, 0.5, 1, tf)
		if i > 0 && p < prev-1e-12 {
			t.Fatalf("success fell to %v as faulty trust decayed to %v", p, tf)
		}
		prev = p
	}
	// Fully discredited faulty nodes: only correct reports matter, and
	// p=0.99 of 3 correct nodes beats an empty silent side almost surely.
	if final := TIBFITBinarySuccess(10, 7, 0.99, 0.5, 1, 0); final < 0.97 {
		t.Fatalf("success with discredited liars = %v", final)
	}
}

func TestTIBFITSuccessPanics(t *testing.T) {
	for _, f := range []func(){
		func() { TIBFITBinarySuccess(0, 0, 0.5, 0.5, 1, 1) },
		func() { TIBFITBinarySuccess(5, 6, 0.5, 0.5, 1, 1) },
		func() { TIBFITBinarySuccess(5, 2, 0.5, 0.5, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

// Property: the model output is a probability and is monotone in the
// correct population's trust.
func TestTIBFITSuccessBoundsProperty(t *testing.T) {
	check := func(n, m uint8, p, q, tc, tf float64) bool {
		nn := int(n%15) + 1
		mm := int(m) % (nn + 1)
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0.5
			}
			return math.Abs(math.Mod(v, 1))
		}
		pp, qq, tcc, tff := clamp(p), clamp(q), clamp(tc), clamp(tf)
		v := TIBFITBinarySuccess(nn, mm, pp, qq, tcc, tff)
		if v < 0 || v > 1 {
			return false
		}
		// More correct-side trust never hurts.
		hi := TIBFITBinarySuccess(nn, mm, pp, qq, math.Min(1, tcc+0.3), tff)
		return hi >= v-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReliabilityCurveShape(t *testing.T) {
	curve := ReliabilityCurve(10, 7, 100, 0.99, 0.5, 0.1, 0.01)
	if len(curve) != 100 {
		t.Fatalf("curve length %d", len(curve))
	}
	if curve[0].PSuccess >= curve[99].PSuccess {
		t.Fatalf("reliability did not improve: %v .. %v",
			curve[0].PSuccess, curve[99].PSuccess)
	}
	// Early the model matches the stateless baseline (trust still 1).
	if math.Abs(curve[0].PSuccess-curve[0].PBaseline) > 1e-9 {
		t.Fatalf("event 0: model %v != baseline %v", curve[0].PSuccess, curve[0].PBaseline)
	}
	// Late in the run TIBFIT is far above the baseline.
	if curve[99].PSuccess < curve[99].PBaseline+0.2 {
		t.Fatalf("event 99: model %v vs baseline %v", curve[99].PSuccess, curve[99].PBaseline)
	}
	if ReliabilityCurve(10, 7, 0, 0.99, 0.5, 0.1, 0.01) != nil {
		t.Fatal("zero-event curve not nil")
	}
}

func TestEventsToRecover(t *testing.T) {
	k, ok := EventsToRecover(10, 7, 0.99, 0.5, 0.1, 0.01, 0.99, 500)
	if !ok {
		t.Fatal("model never recovers")
	}
	if k <= 0 || k > 200 {
		t.Fatalf("recovery at event %d, want a few dozen", k)
	}
	// A hopeless configuration (everyone faulty) never recovers: with all
	// nodes on the same trajectory the vote stays a coin flip.
	if _, ok := EventsToRecover(10, 10, 0.99, 0.5, 0.1, 0.01, 0.99, 200); ok {
		t.Fatal("all-faulty network reported recoverable")
	}
}
