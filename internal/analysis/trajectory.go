package analysis

import (
	"fmt"
	"math"
)

// This file extends §5 with the expected trust-index trajectory — the
// closed form behind the paper's narrative that "correctly functioning
// nodes will have a TI approaching one while faulty and malicious nodes
// will have a lower TI" (§3), and behind the CTI race in the decay
// analysis. The experiment suite cross-validates these curves against the
// live simulation.

// ExpectedV returns E[v] after k judged reports for a node whose reports
// are judged faulty with probability errRate, under fault rate fr,
// ignoring the floor at zero (the floor only helps, so this is an upper
// bound on v and thus a lower bound on TI):
//
//	E[v_k] = k · (errRate·(1-fr) - (1-errRate)·fr)
//
// clamped below at zero because v can never be negative in expectation
// once the drift is toward the floor.
func ExpectedV(fr, errRate float64, k int) float64 {
	if k < 0 {
		panic(fmt.Sprintf("analysis: negative report count %d", k))
	}
	drift := errRate*(1-fr) - (1-errRate)*fr
	v := float64(k) * drift
	if v < 0 {
		return 0
	}
	return v
}

// ExpectedTI returns the trust index at the expected fault accumulator
// after k judged reports: exp(-λ·E[v_k]). By Jensen's inequality this is
// a lower bound on E[exp(-λ·v_k)] for the unfloored walk, and simulation
// confirms it tracks the sample mean tightly for the paper's parameter
// ranges (see TestExpectedTIMatchesSimulation).
func ExpectedTI(lambda, fr, errRate float64, k int) float64 {
	if lambda <= 0 {
		panic(fmt.Sprintf("analysis: lambda must be positive, got %v", lambda))
	}
	return math.Exp(-lambda * ExpectedV(fr, errRate, k))
}

// ReportsUntilTI returns the expected number of judged reports before a
// node erring at errRate sinks to the target trust index. It returns
// ok=false when the node's drift is non-positive (it never sinks —
// erring at or below the natural rate keeps trust at one).
func ReportsUntilTI(lambda, fr, errRate, targetTI float64) (int, bool) {
	if lambda <= 0 || targetTI <= 0 || targetTI >= 1 {
		return 0, false
	}
	drift := errRate*(1-fr) - (1-errRate)*fr
	if drift <= 0 {
		return 0, false
	}
	vNeeded := -math.Log(targetTI) / lambda
	return int(math.Ceil(vNeeded / drift)), true
}

// CTITrajectory returns the §5 decay-analysis cumulative trust of the
// faulty side after the network has been corrupted one node per k events
// for steps compromises: e^{-kλ} + e^{-2kλ} + ... + e^{-steps·kλ},
// assuming (as §5 does) that faulty nodes always fail once compromised.
func CTITrajectory(lambda, k float64, steps int) float64 {
	var sum float64
	for i := 1; i <= steps; i++ {
		sum += math.Exp(-float64(i) * k * lambda)
	}
	return sum
}

// DecayHoldsAt reports whether the §5 condition for continued 100%
// accuracy holds when nCorrect honest nodes (TI 1) face a faulty side
// whose compromises arrived k events apart, steps compromises in: the
// honest CTI must exceed the faulty CTI by more than 2, the §5 margin
// for surviving the *next* compromise flipping a node across.
func DecayHoldsAt(lambda, k float64, nCorrect, steps int) bool {
	return float64(nCorrect)-1 > CTITrajectory(lambda, k, steps)+1
}
