package analysis

import (
	"math"
	"testing"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/workload"
)

func table2Hist(t *testing.T) NeighborHist {
	t.Helper()
	area := geo.NewRect(100, 100)
	sensors := workload.GridPlacement(area, 100)
	hist, err := NeighborCounts(area, sensors, 20, 200)
	if err != nil {
		t.Fatal(err)
	}
	return hist
}

func TestNeighborCountsTable2Geometry(t *testing.T) {
	hist := table2Hist(t)
	// Mean neighborhood: density 0.01/unit² × π·400 ≈ 12.6, reduced by
	// boundary clipping (events near edges see truncated disks).
	if hist.Mean < 9 || hist.Mean > 12.6 {
		t.Fatalf("mean neighbors = %v, want ~10-12", hist.Mean)
	}
	var sum float64
	for _, p := range hist.Prob {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("distribution sums to %v", sum)
	}
	// On this grid every field point is within 20 of some sensor.
	if hist.Prob[0] != 0 {
		t.Fatalf("P(no neighbors) = %v on a 10x10 grid with r_s=20", hist.Prob[0])
	}
}

func TestNeighborCountsValidation(t *testing.T) {
	area := geo.NewRect(10, 10)
	if _, err := NeighborCounts(area, nil, 5, 10); err == nil {
		t.Fatal("no sensors accepted")
	}
	if _, err := NeighborCounts(area, []geo.Point{{X: 1, Y: 1}}, 0, 10); err == nil {
		t.Fatal("zero radius accepted")
	}
	if _, err := NeighborCounts(area, []geo.Point{{X: 1, Y: 1}}, 5, 1); err == nil {
		t.Fatal("single grid step accepted")
	}
}

func TestHypergeometricAxioms(t *testing.T) {
	// Sums to one over k.
	var sum float64
	for k := 0; k <= 12; k++ {
		sum += Hypergeometric(100, 40, 12, k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("hypergeometric sums to %v", sum)
	}
	// Known value: drawing 2 from a 4/6 split, P(both faulty) =
	// C(4,2)/C(10,2) = 6/45.
	if got, want := Hypergeometric(10, 4, 2, 2), 6.0/45; math.Abs(got-want) > 1e-12 {
		t.Fatalf("P = %v, want %v", got, want)
	}
	// Impossible draws are zero.
	if Hypergeometric(10, 2, 5, 3) != 0 {
		t.Fatal("drew more faulty than exist")
	}
	if Hypergeometric(10, 9, 5, 0) != 0 {
		t.Fatal("drew more correct than exist")
	}
}

// TestLocationSuccessMatchesSimulationEarly cross-validates the location
// model against experiment 2's measured early-window accuracy (both
// populations still at full trust), across the compromise sweep.
func TestLocationSuccessMatchesSimulationEarly(t *testing.T) {
	hist := table2Hist(t)
	const (
		loss   = 0.005
		miss   = 0.25
		sigmaC = 1.6
		sigmaF = 4.25
		rErr   = 5.0
	)
	params := LocationParams{
		PCorrect:  (1 - loss) * (1 - rng.RayleighExceedProb(sigmaC, rErr)),
		PFaulty:   (1 - miss) * (1 - loss) * (1 - rng.RayleighExceedProb(sigmaF, rErr)),
		TICorrect: 1,
		TIFaulty:  1,
	}
	// The baseline scheme holds trust at 1 forever, so the full-trust
	// model should track the baseline's whole-run accuracy. The model is
	// a mild upper bound: it counts every within-r_error report as a
	// clean vote, while in the simulation noisy-but-in-tolerance faulty
	// reports also drag the declared centroid, losing a few extra events
	// at heavy compromise. Tolerances widen accordingly.
	tests := []struct {
		faulty   int
		simulted float64 // measured figure-4 baseline numbers (3 runs)
		tol      float64
	}{
		{10, 0.996, 0.03},
		{40, 0.892, 0.06},
		{50, 0.791, 0.09},
		{58, 0.679, 0.12},
	}
	for _, tt := range tests {
		got := LocationSuccess(hist, 100, tt.faulty, params)
		if math.Abs(got-tt.simulted) > tt.tol {
			t.Fatalf("faulty=%d: model %.3f vs simulated baseline %.3f (tol %.2f)",
				tt.faulty, got, tt.simulted, tt.tol)
		}
		if got < tt.simulted-0.02 {
			t.Fatalf("faulty=%d: model %.3f below simulation %.3f — should be an upper bound",
				tt.faulty, got, tt.simulted)
		}
	}
}

func TestLocationSuccessImprovesWithTrustDecay(t *testing.T) {
	hist := table2Hist(t)
	base := LocationParams{PCorrect: 0.95, PFaulty: 0.5, TICorrect: 1, TIFaulty: 1}
	decayed := base
	decayed.TIFaulty = 0.1
	before := LocationSuccess(hist, 100, 58, base)
	after := LocationSuccess(hist, 100, 58, decayed)
	if after <= before {
		t.Fatalf("trust decay did not help: %v -> %v", before, after)
	}
	if after < 0.95 {
		t.Fatalf("discredited liars should leave accuracy high, got %v", after)
	}
}
