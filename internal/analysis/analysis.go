// Package analysis implements the paper's §5 mathematical analysis: the
// closed-form success probability of stateless majority voting with a
// mixture of correct and faulty reporters (equations 1-3, plotted as
// figure 10), the failure-tolerance-rate equation whose roots figure 11
// plots, and the k_max = ln3/λ bound on the final tolerated compromise.
package analysis

import (
	"fmt"
	"math"
)

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p). Out-of-range k
// yields 0. The implementation works in log space to stay stable for the
// larger n values the sweep benchmarks use.
func BinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lg)
}

// logChoose returns ln C(n, k) via the log-gamma function.
func logChoose(n, k int) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// MajoritySuccess returns the probability that stateless majority voting
// identifies a binary event with n event neighbors of which m are faulty,
// where a correct node reports correctly with probability p and a faulty
// node with probability q (§5, equations 1-3).
//
// Let X ~ Bin(n-m, p) be correct reports from correct nodes and
// Y ~ Bin(m, q) from faulty nodes; success is Z = X+Y ≥ ⌊n/2⌋+1. The
// implementation convolves the two binomials directly, which is
// numerically identical to the paper's double sums (the equivalence is
// asserted by a test that also evaluates the explicit equation 2/3 forms).
func MajoritySuccess(n, m int, p, q float64) float64 {
	if n <= 0 || m < 0 || m > n {
		panic(fmt.Sprintf("analysis: invalid population n=%d m=%d", n, m))
	}
	need := n/2 + 1
	var total float64
	for k := 0; k <= n-m; k++ {
		pk := BinomialPMF(n-m, p, k)
		//lint:allow floateq skipping exactly-zero PMF terms; any nonzero value must contribute
		if pk == 0 {
			continue
		}
		for i := max(0, need-k); i <= m; i++ {
			total += pk * BinomialPMF(m, q, i)
		}
	}
	if total > 1 {
		total = 1 // guard against accumulated rounding above 1
	}
	return total
}

// MajoritySuccessPaperForm evaluates the paper's explicit equations 2 and
// 3 (the m ≤ n-m and m > n-m branches). It exists to cross-validate
// MajoritySuccess: both must agree to floating-point tolerance.
func MajoritySuccessPaperForm(n, m int, p, q float64) float64 {
	if n <= 0 || m < 0 || m > n {
		panic(fmt.Sprintf("analysis: invalid population n=%d m=%d", n, m))
	}
	floorHalf := n / 2
	ceilHalf := (n + 1) / 2
	var total float64
	if m <= n-m {
		// Equation 2: outer index over correct-node report counts.
		for j := 1; j <= ceilHalf; j++ {
			z := floorHalf + j
			lo := max(0, z-m)
			hi := min(z, n-m)
			for k := lo; k <= hi; k++ {
				i := z - k
				total += BinomialPMF(n-m, p, k) * BinomialPMF(m, q, i)
			}
		}
	} else {
		// Equation 3: outer index over faulty-node report counts.
		for j := 1; j <= ceilHalf; j++ {
			z := floorHalf + j
			lo := max(0, z-(n-m))
			hi := min(z, m)
			for k := lo; k <= hi; k++ {
				i := z - k
				total += BinomialPMF(m, q, k) * BinomialPMF(n-m, p, i)
			}
		}
	}
	if total > 1 {
		total = 1
	}
	return total
}

// Figure10Point is one sample of the figure 10 curves.
type Figure10Point struct {
	FaultyPercent float64
	Success       float64
}

// Figure10Curve returns the expected accuracy of the stateless baseline as
// the faulty fraction grows, for n event neighbors, faulty-node report
// probability q, and correct-node report probability p — the curves of
// figure 10 (n=10, q=0.5, p ∈ {0.99, 0.95, 0.90, 0.85}).
func Figure10Curve(n int, p, q float64) []Figure10Point {
	out := make([]Figure10Point, 0, n+1)
	for m := 0; m <= n; m++ {
		out = append(out, Figure10Point{
			FaultyPercent: 100 * float64(m) / float64(n),
			Success:       MajoritySuccess(n, m, p, q),
		})
	}
	return out
}

// TransitionF evaluates f(k) = e^{-kλ(N-1)} - 2e^{-kλ} + 1, the §5
// expression whose positive root is the number of events k between
// successive compromises that TIBFIT needs to keep deciding correctly
// while the network decays from N-1 correct nodes down to 3.
func TransitionF(k, lambda float64, n int) float64 {
	return math.Exp(-k*lambda*float64(n-1)) - 2*math.Exp(-k*lambda) + 1
}

// MinInterCompromiseEvents solves TransitionF(k) = 0 for the meaningful
// positive root by bisection: the minimum number of events between
// compromises that the trust state can absorb (figure 11's x-axis
// crossings). It returns an error when no sign change exists for the
// given parameters (e.g. n < 3, where the expression has no positive
// root).
//
// f(0) = 0 is a trivial root; for λ > 0 and n ≥ 3 the function dips
// negative just above zero and re-crosses at the root the paper plots.
func MinInterCompromiseEvents(lambda float64, n int) (float64, error) {
	if lambda <= 0 {
		return 0, fmt.Errorf("analysis: lambda must be positive, got %v", lambda)
	}
	if n < 3 {
		return 0, fmt.Errorf("analysis: need at least 3 nodes, got %d", n)
	}
	// Find a bracketing interval: start just above zero (negative side)
	// and grow until f is positive.
	lo := 1e-9 / lambda
	if TransitionF(lo, lambda, n) >= 0 {
		return 0, fmt.Errorf("analysis: no negative dip for lambda=%v n=%d", lambda, n)
	}
	hi := 1 / lambda
	for i := 0; TransitionF(hi, lambda, n) < 0; i++ {
		hi *= 2
		if i > 200 {
			return 0, fmt.Errorf("analysis: failed to bracket root for lambda=%v n=%d", lambda, n)
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TransitionF(mid, lambda, n) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// KMax returns k_max = ln(3)/λ, the §5 bound on the rounds needed before
// the system with three remaining correct nodes can tolerate its final
// compromise (solving 3·e^{-k·λ} = 1).
func KMax(lambda float64) float64 {
	if lambda <= 0 {
		panic(fmt.Sprintf("analysis: lambda must be positive, got %v", lambda))
	}
	return math.Log(3) / lambda
}

// Figure11Point is one sample of a figure 11 curve.
type Figure11Point struct {
	K float64
	F float64
}

// Figure11Curve samples f(k) over [0, kMax] at the given number of points
// for one λ — the raw curves of figure 11, whose x-axis crossings are the
// tolerable compromise rates.
func Figure11Curve(lambda float64, n, samples int, kMax float64) []Figure11Point {
	if samples < 2 {
		samples = 2
	}
	out := make([]Figure11Point, 0, samples)
	for i := 0; i < samples; i++ {
		k := kMax * float64(i) / float64(samples-1)
		out = append(out, Figure11Point{K: k, F: TransitionF(k, lambda, n)})
	}
	return out
}
