package analysis

import (
	"fmt"
	"math"
)

// The paper's future work asks for "a more extensive theoretical model to
// demonstrate correctness and predict system reliability" (§7). This file
// supplies the binary-mode version: a semi-analytic predictor of TIBFIT's
// per-event success probability that composes the §5 binomial machinery
// with the expected trust trajectories, and is cross-validated against
// the live simulation by the test suite.
//
// Model. At event k there are N-m correct nodes with trust t_c and m
// faulty nodes with trust t_f (use ExpectedTI to follow the trajectory).
// A correct node reports with probability p; a faulty node with
// probability q. With X ~ Bin(N-m, p) correct reporters and Y ~ Bin(m, q)
// faulty reporters, the event is declared iff
//
//	X·t_c + Y·t_f > (N-m-X)·t_c + (m-Y)·t_f
//
// i.e. the reporting side's CTI beats the silent side's. The predictor
// enumerates the (X, Y) lattice — O(N·m) per evaluation.

// TIBFITBinarySuccess returns the probability that the trust-weighted
// vote declares a real event, given the population split, the per-node
// report probabilities, and the current trust levels of the two
// populations. With t_c = t_f = 1 it reduces exactly to the §5 baseline
// MajoritySuccess (a property the tests pin).
func TIBFITBinarySuccess(n, m int, p, q, tiCorrect, tiFaulty float64) float64 {
	if n <= 0 || m < 0 || m > n {
		panic(fmt.Sprintf("analysis: invalid population n=%d m=%d", n, m))
	}
	if tiCorrect < 0 || tiFaulty < 0 {
		panic("analysis: trust levels must be non-negative")
	}
	nc := n - m
	var success float64
	for x := 0; x <= nc; x++ {
		px := BinomialPMF(nc, p, x)
		//lint:allow floateq skipping exactly-zero PMF terms; any nonzero value must contribute
		if px == 0 {
			continue
		}
		for y := 0; y <= m; y++ {
			py := BinomialPMF(m, q, y)
			//lint:allow floateq skipping exactly-zero PMF terms; any nonzero value must contribute
			if py == 0 {
				continue
			}
			forCTI := float64(x)*tiCorrect + float64(y)*tiFaulty
			againstCTI := float64(nc-x)*tiCorrect + float64(m-y)*tiFaulty
			if forCTI > againstCTI {
				success += px * py
			}
		}
	}
	if success > 1 {
		success = 1
	}
	return success
}

// ReliabilityPoint is one sample of a predicted reliability curve.
type ReliabilityPoint struct {
	Event     int
	TICorrect float64
	TIFaulty  float64
	PSuccess  float64
	PBaseline float64
}

// ReliabilityCurve predicts TIBFIT's per-event success probability over a
// run of the binary experiment: N event neighbors, m level-0 faulty nodes
// compromised from event zero, faulty miss probability missProb, correct
// report probability p, trust parameters (λ, f_r).
//
// The trust trajectories are computed self-consistently, because verdicts
// depend on vote outcomes which depend on trust: at each event the model
// evaluates the success probability P from the current expected trust
// levels, then advances both populations' expected fault accumulators
// using the exact judged-wrong probabilities the protocol induces —
//
//	w_faulty  = P·(1-q) + (1-P)·q     (silent when the event is declared,
//	                                   or reporting when it is rejected)
//	w_correct = P·(1-p) + (1-P)·p
//
// with q = 1-missProb. This captures the coupling the naive trajectory
// misses: when a heavily compromised network loses votes, the silent
// liars are *rewarded* and the honest reporters punished, which slows
// recovery exactly as the simulation shows. The baseline column holds
// the §5 stateless result — constant, since majority voting is memoryless.
func ReliabilityCurve(n, m, events int, p, missProb, lambda, fr float64) []ReliabilityPoint {
	if events <= 0 {
		return nil
	}
	q := 1 - missProb
	base := MajoritySuccess(n, m, p, q)
	out := make([]ReliabilityPoint, 0, events)
	var vC, vF float64
	step := func(v, wrong float64) float64 {
		v += wrong*(1-fr) - (1-wrong)*fr
		if v < 0 {
			return 0
		}
		return v
	}
	for k := 0; k < events; k++ {
		tc := math.Exp(-lambda * vC)
		tf := math.Exp(-lambda * vF)
		prob := TIBFITBinarySuccess(n, m, p, q, tc, tf)
		out = append(out, ReliabilityPoint{
			Event:     k,
			TICorrect: tc,
			TIFaulty:  tf,
			PSuccess:  prob,
			PBaseline: base,
		})
		vF = step(vF, prob*(1-q)+(1-prob)*q)
		vC = step(vC, prob*(1-p)+(1-prob)*p)
	}
	return out
}

// PredictedRunAccuracy averages the reliability curve — the number to
// compare against a simulated run's measured accuracy.
func PredictedRunAccuracy(n, m, events int, p, missProb, lambda, fr float64) float64 {
	curve := ReliabilityCurve(n, m, events, p, missProb, lambda, fr)
	if len(curve) == 0 {
		return 0
	}
	var sum float64
	for _, pt := range curve {
		sum += pt.PSuccess
	}
	return sum / float64(len(curve))
}

// EventsToRecover predicts how many events the model needs before the
// per-event success probability climbs back above the target, for a
// network that starts with m-of-n faulty. It returns ok=false if the
// model never reaches the target within horizon events.
func EventsToRecover(n, m int, p, missProb, lambda, fr, target float64, horizon int) (int, bool) {
	for _, pt := range ReliabilityCurve(n, m, horizon, p, missProb, lambda, fr) {
		if pt.PSuccess >= target {
			return pt.Event, true
		}
	}
	return 0, false
}
