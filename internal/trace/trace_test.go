package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Emit(1, KindDecision, 3, "hello")
	if tr.Count(KindDecision) != 0 {
		t.Fatal("nil trace counted")
	}
	if tr.Records() != nil || tr.Summary() != "" {
		t.Fatal("nil trace returned data")
	}
}

func TestCountsWithoutKeep(t *testing.T) {
	tr := New()
	tr.Emit(1, KindDecision, -1, "a")
	tr.Emit(2, KindDecision, -1, "b")
	tr.Emit(3, KindReportSent, 5, "c")
	if tr.Count(KindDecision) != 2 || tr.Count(KindReportSent) != 1 {
		t.Fatalf("counts: decision=%d sent=%d", tr.Count(KindDecision), tr.Count(KindReportSent))
	}
	if len(tr.Records()) != 0 {
		t.Fatal("records retained without Keep")
	}
}

func TestKeepRetainsRecords(t *testing.T) {
	tr := New().Keep()
	tr.Emit(1.5, KindTrustUpdate, 7, "ti=%.2f", 0.25)
	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	r := recs[0]
	if r.Time != 1.5 || r.Kind != KindTrustUpdate || r.Node != 7 || r.Msg != "ti=0.25" {
		t.Fatalf("record = %+v", r)
	}
}

func TestFilter(t *testing.T) {
	tr := New().Keep()
	tr.Emit(1, KindDecision, -1, "a")
	tr.Emit(2, KindReportSent, 1, "b")
	tr.Emit(3, KindDecision, -1, "c")
	got := tr.Filter(KindDecision)
	if len(got) != 2 || got[0].Msg != "a" || got[1].Msg != "c" {
		t.Fatalf("Filter = %v", got)
	}
}

func TestStream(t *testing.T) {
	var sb strings.Builder
	tr := New().Stream(&sb)
	tr.Emit(1, KindCHElected, -1, "node 4 leads")
	out := sb.String()
	if !strings.Contains(out, "ch-elected") || !strings.Contains(out, "node 4 leads") {
		t.Fatalf("streamed %q", out)
	}
}

func TestSummaryIsSortedAndComplete(t *testing.T) {
	tr := New()
	tr.Emit(1, KindDecision, -1, "")
	tr.Emit(2, KindCompromise, 1, "")
	tr.Emit(3, KindDecision, -1, "")
	if got, want := tr.Summary(), "compromise=1 decision=2"; got != want {
		t.Fatalf("Summary = %q, want %q", got, want)
	}
}

func TestKindStrings(t *testing.T) {
	if KindShadowDisagree.String() != "shadow-disagree" {
		t.Fatalf("kind name = %q", KindShadowDisagree)
	}
	if got := Kind(999).String(); got != "kind(999)" {
		t.Fatalf("unknown kind = %q", got)
	}
}

func TestRecordStringFormats(t *testing.T) {
	withNode := Record{Time: 1, Kind: KindReportSent, Node: 3, Msg: "x"}
	if s := withNode.String(); !strings.Contains(s, "node=3") {
		t.Fatalf("String = %q", s)
	}
	noNode := Record{Time: 1, Kind: KindDecision, Node: -1, Msg: "y"}
	if s := noNode.String(); strings.Contains(s, "node=") {
		t.Fatalf("String = %q", s)
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := New().Keep()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Emit(0, KindReportSent, j, "")
			}
		}()
	}
	wg.Wait()
	if tr.Count(KindReportSent) != 800 {
		t.Fatalf("count = %d, want 800", tr.Count(KindReportSent))
	}
	if len(tr.Records()) != 800 {
		t.Fatalf("records = %d, want 800", len(tr.Records()))
	}
}
