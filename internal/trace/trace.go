// Package trace provides a lightweight structured event trace for the
// simulator. Components emit typed records (report sent, packet dropped,
// decision made, trust updated, CH rotated); a Trace either discards them
// (the default, for benchmark runs), retains them for assertions in tests,
// or streams them to an io.Writer for the CLI's -trace flag.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Kind classifies a trace record.
type Kind int

// Record kinds, one per observable protocol action.
const (
	KindEventOccurred Kind = iota + 1
	KindReportSent
	KindReportDropped
	KindReportDelivered
	KindDecision
	KindTrustUpdate
	KindNodeIsolated
	KindCHElected
	KindCHDemoted
	KindShadowDisagree
	KindCompromise
	KindNodeCrashed
	KindNodeRecovered
	KindNodeDepleted
	KindCHCrashed
	KindCHFailover
	KindClusterOrphaned
	KindBlackout
	KindReportRetry
	KindCHByzantine
	KindCHQuarantined
	KindSnapshotRejected
)

var kindNames = map[Kind]string{
	KindEventOccurred:    "event",
	KindReportSent:       "report-sent",
	KindReportDropped:    "report-dropped",
	KindReportDelivered:  "report-delivered",
	KindDecision:         "decision",
	KindTrustUpdate:      "trust-update",
	KindNodeIsolated:     "node-isolated",
	KindCHElected:        "ch-elected",
	KindCHDemoted:        "ch-demoted",
	KindShadowDisagree:   "shadow-disagree",
	KindCompromise:       "compromise",
	KindNodeCrashed:      "node-crashed",
	KindNodeRecovered:    "node-recovered",
	KindNodeDepleted:     "node-depleted",
	KindCHCrashed:        "ch-crashed",
	KindCHFailover:       "ch-failover",
	KindClusterOrphaned:  "cluster-orphaned",
	KindBlackout:         "blackout",
	KindReportRetry:      "report-retry",
	KindCHByzantine:      "ch-byzantine",
	KindCHQuarantined:    "ch-quarantined",
	KindSnapshotRejected: "snapshot-rejected",
}

// String returns the stable lowercase name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Record is a single trace entry.
type Record struct {
	Time float64 // virtual time of the action
	Kind Kind
	Node int    // node involved, or -1 when not applicable
	Msg  string // human-readable detail
}

// String renders the record in the one-line format the CLI prints.
func (r Record) String() string {
	if r.Node >= 0 {
		return fmt.Sprintf("%10.3f %-16s node=%-3d %s", r.Time, r.Kind, r.Node, r.Msg)
	}
	return fmt.Sprintf("%10.3f %-16s          %s", r.Time, r.Kind, r.Msg)
}

// Trace collects records. The zero value discards everything; use Keep or
// Stream to retain or emit records. Trace is safe for concurrent use so
// that tests exercising multiple goroutines can share one.
type Trace struct {
	mu     sync.Mutex
	keep   bool
	out    io.Writer
	recs   []Record
	counts map[Kind]int
}

// New returns a discarding trace that still counts records by kind.
func New() *Trace {
	return &Trace{counts: make(map[Kind]int)}
}

// Keep makes the trace retain full records in memory (for tests).
func (t *Trace) Keep() *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.keep = true
	return t
}

// Stream makes the trace write each record to w as it is emitted.
func (t *Trace) Stream(w io.Writer) *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.out = w
	return t
}

// Verbose reports whether emitted records are retained or streamed. Hot
// paths pair it with Hit to skip message formatting — and the argument
// boxing Emit's variadic signature forces at the call site — when records
// are only counted. A nil Trace is not verbose.
func (t *Trace) Verbose() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.keep || t.out != nil
}

// Hit counts one action without building a record: the allocation-free
// Emit for counting-only traces. A nil Trace discards silently.
func (t *Trace) Hit(kind Kind) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.counts == nil {
		t.counts = make(map[Kind]int)
	}
	t.counts[kind]++
}

// Emit records one action. A nil Trace discards silently, so components can
// hold a *Trace without nil checks at every call site.
func (t *Trace) Emit(now float64, kind Kind, node int, format string, args ...any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.counts == nil {
		t.counts = make(map[Kind]int)
	}
	t.counts[kind]++
	if !t.keep && t.out == nil {
		return
	}
	r := Record{Time: now, Kind: kind, Node: node, Msg: fmt.Sprintf(format, args...)}
	if t.keep {
		t.recs = append(t.recs, r)
	}
	if t.out != nil {
		fmt.Fprintln(t.out, r)
	}
}

// Count returns how many records of the given kind were emitted.
func (t *Trace) Count(kind Kind) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[kind]
}

// Records returns a copy of the retained records (empty unless Keep was
// called before emission).
func (t *Trace) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, len(t.recs))
	copy(out, t.recs)
	return out
}

// Filter returns the retained records of one kind, in emission order.
func (t *Trace) Filter(kind Kind) []Record {
	var out []Record
	for _, r := range t.Records() {
		if r.Kind == kind {
			out = append(out, r)
		}
	}
	return out
}

// Summary returns "kind=count" pairs sorted by kind name, used by the CLI
// to print a one-line digest after a run.
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pairs := make([]string, 0, len(t.counts))
	for k, n := range t.counts {
		pairs = append(pairs, fmt.Sprintf("%s=%d", k, n))
	}
	sort.Strings(pairs)
	out := ""
	for i, p := range pairs {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}
