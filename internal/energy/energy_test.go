package energy

import (
	"testing"
	"testing/quick"
)

func TestBatteryLifecycle(t *testing.T) {
	b := NewBattery(100)
	if !b.Alive() || b.Residual() != 100 || b.Fraction() != 1 {
		t.Fatalf("fresh battery: %v", b)
	}
	if !b.Draw(30) {
		t.Fatal("Draw reported dead battery")
	}
	if b.Residual() != 70 || b.Spent() != 30 {
		t.Fatalf("after draw: residual=%v spent=%v", b.Residual(), b.Spent())
	}
	if b.Fraction() != 0.7 {
		t.Fatalf("fraction = %v", b.Fraction())
	}
}

func TestBatteryFloorsAtZero(t *testing.T) {
	b := NewBattery(10)
	if b.Draw(25) {
		t.Fatal("overdraw left battery alive")
	}
	if b.Residual() != 0 || b.Spent() != 10 {
		t.Fatalf("after overdraw: residual=%v spent=%v", b.Residual(), b.Spent())
	}
}

func TestBatteryIgnoresNegativeDraw(t *testing.T) {
	b := NewBattery(10)
	b.Draw(-5)
	if b.Residual() != 10 {
		t.Fatalf("negative draw changed residual: %v", b.Residual())
	}
}

func TestNegativeCapacityClamps(t *testing.T) {
	b := NewBattery(-5)
	if b.Alive() || b.Capacity() != 0 || b.Fraction() != 0 {
		t.Fatalf("negative capacity battery: %v", b)
	}
}

func TestBatteryString(t *testing.T) {
	b := NewBattery(100)
	b.Draw(25)
	if got := b.String(); got != "75.0/100.0" {
		t.Fatalf("String = %q", got)
	}
}

func TestTxCostGrowsWithDistanceAndBits(t *testing.T) {
	m := DefaultModel()
	if m.TxCost(100, 50) <= m.TxCost(100, 10) {
		t.Fatal("tx cost not increasing with distance")
	}
	if m.TxCost(200, 10) <= m.TxCost(100, 10) {
		t.Fatal("tx cost not increasing with bits")
	}
	if m.TxCost(100, 0) != m.ElecPerBit*100 {
		t.Fatal("zero-distance tx cost should be electronics only")
	}
}

func TestRxCost(t *testing.T) {
	m := DefaultModel()
	if m.RxCost(100) != m.ElecPerBit*100 {
		t.Fatalf("rx cost = %v", m.RxCost(100))
	}
}

// Property: draws never make residual negative and spent never exceeds
// capacity.
func TestBatteryInvariantProperty(t *testing.T) {
	check := func(capacity float64, draws []float64) bool {
		if capacity < 0 {
			capacity = -capacity
		}
		b := NewBattery(capacity)
		for _, d := range draws {
			b.Draw(d)
		}
		slack := 1e-9 + 1e-12*b.Capacity()
		return b.Residual() >= 0 && b.Spent() <= b.Capacity()+slack &&
			b.Residual()+b.Spent() <= b.Capacity()+slack
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
