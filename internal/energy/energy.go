// Package energy implements the first-order radio energy model that LEACH
// cluster-head election depends on (Heinzelman et al., the paper's refs
// [3][4]). Each node has a battery; transmitting costs electronics energy
// plus amplifier energy proportional to distance squared, receiving costs
// electronics energy. LEACH rotates cluster headship toward nodes with more
// residual energy, which this package makes observable.
package energy

import "fmt"

// Model holds the per-operation costs of the first-order radio model. All
// energies are in abstract joule-like units; only ratios matter to LEACH.
type Model struct {
	// ElecPerBit is the energy to run the transmit or receive electronics
	// for one bit.
	ElecPerBit float64
	// AmpPerBitPerDist2 is the transmit amplifier energy per bit per
	// squared unit of distance.
	AmpPerBitPerDist2 float64
	// IdlePerTick is the background drain per virtual time unit.
	IdlePerTick float64
	// SensePerEvent is the cost of one sensing operation.
	SensePerEvent float64
}

// DefaultModel returns the canonical LEACH first-order parameters scaled to
// the reproduction's abstract units (50 nJ/bit electronics, 100 pJ/bit/m²
// amplifier, in nanojoule units).
func DefaultModel() Model {
	return Model{
		ElecPerBit:        50,
		AmpPerBitPerDist2: 0.1,
		IdlePerTick:       0.01,
		SensePerEvent:     5,
	}
}

// TxCost returns the energy to transmit bits over distance d.
func (m Model) TxCost(bits int, d float64) float64 {
	b := float64(bits)
	return m.ElecPerBit*b + m.AmpPerBitPerDist2*b*d*d
}

// RxCost returns the energy to receive bits.
func (m Model) RxCost(bits int) float64 {
	return m.ElecPerBit * float64(bits)
}

// Battery tracks residual energy for one node. The zero value is a dead
// battery; construct with NewBattery.
type Battery struct {
	capacity float64
	residual float64
	spent    float64
}

// NewBattery returns a battery with the given initial capacity.
func NewBattery(capacity float64) *Battery {
	if capacity < 0 {
		capacity = 0
	}
	return &Battery{capacity: capacity, residual: capacity}
}

// Residual returns the remaining energy.
func (b *Battery) Residual() float64 { return b.residual }

// Capacity returns the initial energy.
func (b *Battery) Capacity() float64 { return b.capacity }

// Spent returns the total energy drawn so far (capped at capacity).
func (b *Battery) Spent() float64 { return b.spent }

// Fraction returns residual/capacity in [0,1]; a zero-capacity battery
// reports 0.
func (b *Battery) Fraction() float64 {
	//lint:allow floateq zero-capacity sentinel; capacity is a config value stored verbatim
	if b.capacity == 0 {
		return 0
	}
	return b.residual / b.capacity
}

// Alive reports whether any energy remains.
func (b *Battery) Alive() bool { return b.residual > 0 }

// Draw removes amount from the battery, flooring at zero, and reports
// whether the battery is still alive afterwards. Negative draws are
// ignored — energy harvesting is out of scope for the paper.
func (b *Battery) Draw(amount float64) bool {
	if amount > 0 {
		if amount > b.residual {
			amount = b.residual
		}
		b.residual -= amount
		b.spent += amount
	}
	return b.Alive()
}

// String renders the battery as "residual/capacity".
func (b *Battery) String() string {
	return fmt.Sprintf("%.1f/%.1f", b.residual, b.capacity)
}
