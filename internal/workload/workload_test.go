package workload

import (
	"math"
	"testing"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
)

func TestGridPlacement(t *testing.T) {
	area := geo.NewRect(100, 100)
	pts := GridPlacement(area, 100)
	if len(pts) != 100 {
		t.Fatalf("got %d points", len(pts))
	}
	// 10×10 lattice with 10-unit spacing, offset 5: first point (5,5),
	// last point (95,95).
	if pts[0] != (geo.Point{X: 5, Y: 5}) || pts[99] != (geo.Point{X: 95, Y: 95}) {
		t.Fatalf("corners = %v, %v", pts[0], pts[99])
	}
	seen := make(map[geo.Point]bool, len(pts))
	for _, p := range pts {
		if !area.Contains(p) {
			t.Fatalf("point %v outside area", p)
		}
		if seen[p] {
			t.Fatalf("duplicate point %v", p)
		}
		seen[p] = true
	}
}

func TestGridPlacementPanicsOnNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-square n")
		}
	}()
	GridPlacement(geo.NewRect(10, 10), 7)
}

func TestUniformPlacement(t *testing.T) {
	area := geo.NewRect(50, 30)
	pts := UniformPlacement(area, 500, rng.New(1))
	if len(pts) != 500 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !area.Contains(p) {
			t.Fatalf("point %v outside area", p)
		}
	}
}

func TestGeneratorSingleEvents(t *testing.T) {
	area := geo.NewRect(100, 100)
	g := NewGenerator(area, 10, rng.New(2))
	var lastID = -1
	for i := 0; i < 20; i++ {
		batch := g.Batch(i)
		if len(batch) != 1 {
			t.Fatalf("batch %d has %d events", i, len(batch))
		}
		ev := batch[0]
		if ev.Time != 10*float64(i+1) {
			t.Fatalf("event %d at %v, want %v", i, ev.Time, 10*float64(i+1))
		}
		if !area.Contains(ev.Loc) {
			t.Fatalf("event outside area: %v", ev.Loc)
		}
		if ev.ID != lastID+1 {
			t.Fatalf("non-monotonic ID %d after %d", ev.ID, lastID)
		}
		lastID = ev.ID
	}
}

func TestGeneratorConcurrentSeparation(t *testing.T) {
	area := geo.NewRect(100, 100)
	g := NewGenerator(area, 10, rng.New(3))
	g.Concurrent = true
	g.MinSeparation = 5
	for i := 0; i < 200; i++ {
		batch := g.Batch(i)
		if len(batch) != 2 {
			t.Fatalf("batch %d has %d events", i, len(batch))
		}
		if batch[0].Time != batch[1].Time {
			t.Fatal("concurrent events not simultaneous")
		}
		if d := batch[0].Loc.Dist(batch[1].Loc); d < 5 {
			t.Fatalf("concurrent events only %v apart", d)
		}
		if batch[1].ID != batch[0].ID+1 {
			t.Fatal("IDs not consecutive within batch")
		}
	}
}

func TestGeneratorPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for period <= 0")
		}
	}()
	NewGenerator(geo.NewRect(1, 1), 0, rng.New(1))
}

func TestDecayScheduleValues(t *testing.T) {
	d := DefaultDecay()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		event int
		want  float64
	}{
		{0, 0.05},
		{49, 0.05},
		{50, 0.10},
		{99, 0.10},
		{100, 0.15},
		{699, 0.70},
		{700, 0.75},  // schedule reaches the cap
		{5000, 0.75}, // capped
	}
	for _, tt := range tests {
		if got := d.FractionAt(tt.event); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("FractionAt(%d) = %v, want %v", tt.event, got, tt.want)
		}
	}
}

func TestDecayCompromisedAt(t *testing.T) {
	d := DefaultDecay()
	if got := d.CompromisedAt(0, 100); got != 5 {
		t.Fatalf("CompromisedAt(0) = %d, want 5", got)
	}
	if got := d.CompromisedAt(75, 100); got != 10 {
		t.Fatalf("CompromisedAt(75) = %d, want 10", got)
	}
	if got := d.CompromisedAt(10000, 100); got != 75 {
		t.Fatalf("CompromisedAt(cap) = %d, want 75", got)
	}
	if got := d.CompromisedAt(10000, 4); got != 3 {
		t.Fatalf("CompromisedAt with 4 nodes = %d, want 3", got)
	}
}

func TestDecayValidate(t *testing.T) {
	bad := []DecaySchedule{
		{InitialFraction: -0.1, MaxFraction: 0.5, StepFraction: 0.1, EventsPerStep: 10},
		{InitialFraction: 0.6, MaxFraction: 0.5, StepFraction: 0.1, EventsPerStep: 10},
		{InitialFraction: 0.1, MaxFraction: 0.5, StepFraction: -0.1, EventsPerStep: 10},
		{InitialFraction: 0.1, MaxFraction: 0.5, StepFraction: 0.1, EventsPerStep: 0},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Fatalf("case %d: invalid schedule accepted", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() []Event {
		g := NewGenerator(geo.NewRect(100, 100), 10, rng.New(42))
		var out []Event
		for i := 0; i < 10; i++ {
			out = append(out, g.Batch(i)...)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different event streams")
		}
	}
}

func TestHotspotGenerator(t *testing.T) {
	area := geo.NewRect(100, 100)
	g := NewGenerator(area, 10, rng.New(9))
	hot := geo.Point{X: 30, Y: 70}
	g.Hotspot = &hot
	g.HotspotSigma = 8
	var sumD float64
	const n = 500
	for i := 0; i < n; i++ {
		ev := g.Batch(i)[0]
		if !area.Contains(ev.Loc) {
			t.Fatalf("hotspot event left the area: %v", ev.Loc)
		}
		sumD += ev.Loc.Dist(hot)
	}
	// Mean radial distance of a clamped 2-D Gaussian with σ=8 ≈ 10; a
	// uniform draw would average ~52 from this corner-ish point.
	if mean := sumD / n; mean > 20 {
		t.Fatalf("mean distance from hotspot = %v, not concentrated", mean)
	}
}
