// Package workload generates the paper's simulation inputs: node
// placements, event streams (single and concurrent), and the compromise
// schedules that convert correct nodes to faulty ones over time
// (experiment 3's decaying network).
package workload

import (
	"fmt"
	"math"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
)

// GridPlacement returns n node positions on a regular √n×√n lattice
// centered in the cells of the area — experiment 2's "100 nodes placed
// uniformly on a 100×100 grid". It panics unless n is a perfect square.
func GridPlacement(area geo.Rect, n int) []geo.Point {
	side := int(math.Round(math.Sqrt(float64(n))))
	if side*side != n {
		panic(fmt.Sprintf("workload: GridPlacement needs a perfect square, got %d", n))
	}
	dx := area.Width() / float64(side)
	dy := area.Height() / float64(side)
	out := make([]geo.Point, 0, n)
	for j := 0; j < side; j++ {
		for i := 0; i < side; i++ {
			out = append(out, geo.Point{
				X: area.Min.X + (float64(i)+0.5)*dx,
				Y: area.Min.Y + (float64(j)+0.5)*dy,
			})
		}
	}
	return out
}

// UniformPlacement returns n node positions drawn uniformly from the area
// (the random deployment of §2).
func UniformPlacement(area geo.Rect, n int, src *rng.Source) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Point{
			X: src.Uniform(area.Min.X, area.Max.X),
			Y: src.Uniform(area.Min.Y, area.Max.Y),
		}
	}
	return out
}

// Event is one ground-truth occurrence the generator schedules.
type Event struct {
	ID   int
	Time float64
	Loc  geo.Point
}

// Generator produces event locations uniformly over the deployment area at
// regular intervals, as the paper's event generator does (§4). With
// Concurrent set, each interval produces two simultaneous events no closer
// than MinSeparation (§3.3's assumption that concurrent events cannot
// occur within r_error of each other).
type Generator struct {
	// Area is the deployment region events are drawn from.
	Area geo.Rect
	// Period is the virtual-time spacing between event batches.
	Period float64
	// Start is the time of the first batch.
	Start float64
	// Concurrent makes each batch two simultaneous events.
	Concurrent bool
	// MinSeparation is the minimum distance between concurrent events.
	MinSeparation float64
	// Hotspot, when non-nil, concentrates events around this point with
	// per-axis deviation HotspotSigma (clamped to the area) instead of
	// drawing uniformly. Trust is earned per neighborhood, so hotspot
	// workloads train the protocol unevenly — a system-parameter
	// exploration beyond the paper's uniform generator.
	Hotspot      *geo.Point
	HotspotSigma float64

	src  *rng.Source
	next int
}

// NewGenerator returns a generator drawing randomness from src.
func NewGenerator(area geo.Rect, period float64, src *rng.Source) *Generator {
	if period <= 0 {
		panic(fmt.Sprintf("workload: period must be positive, got %v", period))
	}
	return &Generator{Area: area, Period: period, Start: period, src: src}
}

// Batch returns the i-th event batch (0-based): one event, or two
// simultaneous events when Concurrent is set. Event IDs are globally
// unique and increase monotonically.
func (g *Generator) Batch(i int) []Event {
	t := g.Start + float64(i)*g.Period
	first := Event{ID: g.next, Time: t, Loc: g.draw()}
	g.next++
	if !g.Concurrent {
		return []Event{first}
	}
	second := Event{ID: g.next, Time: t}
	for {
		second.Loc = g.draw()
		if second.Loc.Dist(first.Loc) >= g.MinSeparation {
			break
		}
	}
	g.next++
	return []Event{first, second}
}

func (g *Generator) draw() geo.Point {
	if g.Hotspot != nil {
		return g.Area.Clamp(geo.Point{
			X: g.src.Gaussian(g.Hotspot.X, g.HotspotSigma),
			Y: g.src.Gaussian(g.Hotspot.Y, g.HotspotSigma),
		})
	}
	return geo.Point{
		X: g.src.Uniform(g.Area.Min.X, g.Area.Max.X),
		Y: g.src.Uniform(g.Area.Min.Y, g.Area.Max.Y),
	}
}

// DecaySchedule describes experiment 3's linear compromise growth: the
// network starts with InitialFraction of its nodes faulty, and after every
// EventsPerStep events another StepFraction is compromised, capped at
// MaxFraction.
type DecaySchedule struct {
	InitialFraction float64
	StepFraction    float64
	EventsPerStep   int
	MaxFraction     float64
}

// DefaultDecay returns the paper's experiment 3 schedule: 5% initial, +5%
// every 50 events, up to 75%.
func DefaultDecay() DecaySchedule {
	return DecaySchedule{
		InitialFraction: 0.05,
		StepFraction:    0.05,
		EventsPerStep:   50,
		MaxFraction:     0.75,
	}
}

// Validate reports whether the schedule is usable.
func (d DecaySchedule) Validate() error {
	if d.InitialFraction < 0 || d.InitialFraction > 1 ||
		d.MaxFraction < d.InitialFraction || d.MaxFraction > 1 {
		return fmt.Errorf("workload: fractions must satisfy 0 <= initial <= max <= 1")
	}
	if d.StepFraction < 0 {
		return fmt.Errorf("workload: StepFraction must be non-negative")
	}
	if d.EventsPerStep <= 0 {
		return fmt.Errorf("workload: EventsPerStep must be positive")
	}
	return nil
}

// FractionAt returns the compromised fraction in effect while processing
// the event with the given 0-based index.
func (d DecaySchedule) FractionAt(eventIndex int) float64 {
	steps := eventIndex / d.EventsPerStep
	f := d.InitialFraction + float64(steps)*d.StepFraction
	if f > d.MaxFraction {
		return d.MaxFraction
	}
	return f
}

// CompromisedAt returns how many of n nodes are compromised while
// processing the event with the given 0-based index.
func (d DecaySchedule) CompromisedAt(eventIndex, n int) int {
	c := int(math.Round(d.FractionAt(eventIndex) * float64(n)))
	if c > n {
		c = n
	}
	return c
}
