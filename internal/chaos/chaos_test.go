package chaos

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/radio"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/sim"
)

// toyTarget records the fault calls the engine makes, so tests need no
// network.
type toyTarget struct {
	ids        []int
	heads      []int
	crashed    map[int]bool
	crashes    []int
	recoveries []int
}

func newToyTarget(n int, heads ...int) *toyTarget {
	t := &toyTarget{crashed: make(map[int]bool), heads: heads}
	for i := 0; i < n; i++ {
		t.ids = append(t.ids, i)
	}
	return t
}

func (t *toyTarget) NodeIDs() []int { return t.ids }

func (t *toyTarget) Heads() []int {
	var up []int
	for _, h := range t.heads {
		if !t.crashed[h] {
			up = append(up, h)
		}
	}
	return up
}

func (t *toyTarget) CrashNode(id int) {
	if t.crashed[id] {
		return
	}
	t.crashed[id] = true
	t.crashes = append(t.crashes, id)
}

func (t *toyTarget) RecoverNode(id int) {
	if !t.crashed[id] {
		return
	}
	t.crashed[id] = false
	t.recoveries = append(t.recoveries, id)
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if err := DefaultConfig(100).Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []Config{
		{CrashFraction: -0.1},
		{CrashFraction: 1.1},
		{CrashFraction: math.NaN()},
		{Horizon: math.Inf(1), CrashFraction: 0.5},
		{Horizon: 10, DupProb: 2},
		{Horizon: 10, HeadCrashes: -1},
		{Horizon: 10, Blackouts: 1}, // missing BlackoutLen
		{Horizon: 10, DelayJitter: -1},
		{CrashFraction: 0.5},        // enabled but no horizon
		{Horizon: 10, ByzHeads: -1}, // negative compromise count
		{Behaviors: []Behavior{99}}, // out-of-range behavior
		{Behaviors: []Behavior{0}},  // zero is not a behavior either
		{ByzHeads: 1},               // enabled but no horizon
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestZeroConfigSchedulesNothing(t *testing.T) {
	kernel := sim.New()
	e, err := New(Config{}, kernel, rng.New(1).Split("chaos"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Arm(newToyTarget(8), rng.New(1).Split("chaos")); err != nil {
		t.Fatal(err)
	}
	if len(e.Plan()) != 0 {
		t.Fatalf("zero config planned faults: %v", e.Plan())
	}
	if p := e.Perturb(geo.Point{}, geo.Point{X: 1}); p != (radio.Perturbation{}) {
		t.Fatalf("zero config perturbed a packet: %+v", p)
	}
}

func TestPlanIsSeedDeterministic(t *testing.T) {
	build := func() []Fault {
		kernel := sim.New()
		src := rng.New(42).Split("chaos")
		e, err := New(DefaultConfig(500), kernel, src, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Arm(newToyTarget(20, 3, 11), src); err != nil {
			t.Fatal(err)
		}
		return e.Plan()
	}
	a, b := build(), build()
	if len(a) == 0 {
		t.Fatal("default config planned no faults")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", a, b)
	}
}

func TestCrashAndRecoverFire(t *testing.T) {
	kernel := sim.New()
	src := rng.New(7).Split("chaos")
	cfg := Config{Horizon: 100, CrashFraction: 1, MeanDowntime: 5}
	e, err := New(cfg, kernel, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	target := newToyTarget(10)
	if err := e.Arm(target, src); err != nil {
		t.Fatal(err)
	}
	kernel.RunAll()
	if len(target.crashes) != 10 {
		t.Fatalf("crashes = %v, want all 10 nodes", target.crashes)
	}
	if len(target.recoveries) != 10 {
		t.Fatalf("recoveries = %v, want all 10 nodes", target.recoveries)
	}
	st := e.Stats()
	if st.Crashes != 10 || st.Recoveries != 10 {
		t.Fatalf("stats = %+v", st)
	}
	sort.Ints(target.crashes)
	if !reflect.DeepEqual(target.crashes, target.ids) {
		t.Fatalf("crash victims = %v", target.crashes)
	}
}

func TestCrashStopNeverRecovers(t *testing.T) {
	kernel := sim.New()
	src := rng.New(7).Split("chaos")
	e, err := New(Config{Horizon: 100, CrashFraction: 0.5}, kernel, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	target := newToyTarget(10)
	if err := e.Arm(target, src); err != nil {
		t.Fatal(err)
	}
	kernel.RunAll()
	if len(target.crashes) != 5 || len(target.recoveries) != 0 {
		t.Fatalf("crashes = %v recoveries = %v, want 5 crash-stops",
			target.crashes, target.recoveries)
	}
}

func TestHeadCrashPicksServingHead(t *testing.T) {
	kernel := sim.New()
	src := rng.New(9).Split("chaos")
	e, err := New(Config{Horizon: 100, HeadCrashes: 2}, kernel, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	target := newToyTarget(12, 2, 7, 9)
	if err := e.Arm(target, src); err != nil {
		t.Fatal(err)
	}
	kernel.RunAll()
	if e.Stats().HeadCrashes != 2 {
		t.Fatalf("stats = %+v, want 2 head crashes", e.Stats())
	}
	for _, id := range target.crashes {
		if id != 2 && id != 7 && id != 9 {
			t.Fatalf("head crash hit non-head %d", id)
		}
	}
}

func TestBlackoutWindowDropsPackets(t *testing.T) {
	kernel := sim.New()
	src := rng.New(3).Split("chaos")
	cfg := Config{Horizon: 100, Blackouts: 1, BlackoutLen: 10}
	e, err := New(cfg, kernel, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Arm(newToyTarget(4), src); err != nil {
		t.Fatal(err)
	}
	var w struct{ start, end float64 }
	for _, f := range e.Plan() {
		switch f.Kind {
		case "blackout-start":
			w.start = float64(f.At)
		case "blackout-end":
			w.end = float64(f.At)
		}
	}
	if w.end != w.start+10 {
		t.Fatalf("blackout window = %+v", w)
	}
	var inside, after bool
	mid := sim.Time(w.start + 5)
	if _, err := kernel.At(mid, func() {
		inside = e.Perturb(geo.Point{}, geo.Point{X: 1}).Drop
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := kernel.At(sim.Time(w.end+1), func() {
		after = e.Perturb(geo.Point{}, geo.Point{X: 1}).Drop
	}); err != nil {
		t.Fatal(err)
	}
	kernel.RunAll()
	if !inside {
		t.Error("packet inside the blackout window was not dropped")
	}
	if after {
		t.Error("packet after the blackout window was dropped")
	}
}

func TestDuplicationAndJitter(t *testing.T) {
	kernel := sim.New()
	src := rng.New(5).Split("chaos")
	cfg := Config{Horizon: 100, DupProb: 1, DelayJitter: 0.5}
	e, err := New(cfg, kernel, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Arm(newToyTarget(4), src); err != nil {
		t.Fatal(err)
	}
	p := e.Perturb(geo.Point{}, geo.Point{X: 1})
	if !p.Duplicate {
		t.Error("DupProb=1 did not duplicate")
	}
	if p.ExtraDelay < 0 || float64(p.ExtraDelay) > 0.5 {
		t.Errorf("ExtraDelay = %v outside [0, 0.5]", p.ExtraDelay)
	}
}

// toyByzTarget extends the toy target with compromise recording.
type toyByzTarget struct {
	*toyTarget
	compromised map[int]Behavior
}

func newToyByzTarget(n int, heads ...int) *toyByzTarget {
	return &toyByzTarget{toyTarget: newToyTarget(n, heads...), compromised: make(map[int]Behavior)}
}

func (t *toyByzTarget) CompromiseHead(id int, b Behavior) { t.compromised[id] = b }

// TestArmRequiresByzantineTarget pins the configuration error: ByzHeads
// against a target without CompromiseHead must fail at Arm, not at fire
// time.
func TestArmRequiresByzantineTarget(t *testing.T) {
	kernel := sim.New()
	src := rng.New(3).Split("chaos")
	e, err := New(Config{Horizon: 100, ByzHeads: 1}, kernel, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = e.Arm(newToyTarget(8, 2), src)
	if err == nil {
		t.Fatal("Arm accepted a plain Target with ByzHeads configured")
	}
	if !strings.Contains(err.Error(), "ByzantineTarget") {
		t.Fatalf("err = %v, want a ByzantineTarget complaint", err)
	}
}

// TestByzantineCompromiseFires runs a compromise-only campaign against
// the toy target: every planned compromise lands on a serving head with
// a behavior from the configured pool, and the engine counts it.
func TestByzantineCompromiseFires(t *testing.T) {
	kernel := sim.New()
	src := rng.New(9).Split("chaos")
	cfg := Config{Horizon: 100, ByzHeads: 2, Behaviors: []Behavior{BehaviorInvert, BehaviorPoison}}
	e, err := New(cfg, kernel, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	target := newToyByzTarget(8, 2, 5)
	if err := e.Arm(target, src); err != nil {
		t.Fatal(err)
	}
	for _, f := range e.Plan() {
		if !strings.HasPrefix(f.Kind, "byz-head/") {
			t.Fatalf("compromise-only campaign planned %q", f.Kind)
		}
	}
	kernel.RunAll()
	if e.Stats().Byzantine != 2 {
		t.Fatalf("byzantine count = %d, want 2", e.Stats().Byzantine)
	}
	if len(target.compromised) == 0 {
		t.Fatal("no head compromised")
	}
	for id, b := range target.compromised {
		if id != 2 && id != 5 {
			t.Errorf("compromised non-head %d", id)
		}
		if b != BehaviorInvert && b != BehaviorPoison {
			t.Errorf("behavior %v outside the configured pool", b)
		}
	}
}

// TestByzHeadsLeaveLegacySchedule pins the draw-order contract: adding
// compromises to an existing campaign must leave its crash and blackout
// schedule byte-identical, because every byz draw happens strictly
// after the legacy classes.
func TestByzHeadsLeaveLegacySchedule(t *testing.T) {
	build := func(byz int) []Fault {
		kernel := sim.New()
		src := rng.New(11).Split("chaos")
		cfg := DefaultConfig(400)
		cfg.ByzHeads = byz
		e, err := New(cfg, kernel, src, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Arm(newToyByzTarget(16, 1, 6), src); err != nil {
			t.Fatal(err)
		}
		var legacy []Fault
		for _, f := range e.Plan() {
			if !strings.HasPrefix(f.Kind, "byz-head/") {
				legacy = append(legacy, f)
			}
		}
		return legacy
	}
	plain, withByz := build(0), build(3)
	if len(plain) == 0 {
		t.Fatal("default config planned no legacy faults")
	}
	if !reflect.DeepEqual(plain, withByz) {
		t.Fatalf("enabling ByzHeads shifted the legacy schedule:\n%v\n%v", plain, withByz)
	}
}
