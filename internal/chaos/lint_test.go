package chaos

import (
	"testing"

	"github.com/tibfit/tibfit/internal/lint"
	"github.com/tibfit/tibfit/internal/lint/loader"
)

// TestLintClean pins the package to the determinism lint suite: the
// fault injector exists to make chaos reproducible, so any wall-clock,
// global-rand, or unsorted-map-order use in it is a bug by definition.
func TestLintClean(t *testing.T) {
	ld, err := loader.New(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("./internal/chaos")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader matched no packages")
	}
	for _, f := range lint.RunSuite(pkgs, ld.Fset, lint.Analyzers) {
		t.Errorf("lint finding: %s", f)
	}
}
