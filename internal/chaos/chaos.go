// Package chaos is the deterministic fault-injection subsystem: it
// schedules crash-stop faults the paper's evaluation never exercises —
// node crash/recover intervals, cluster-head crashes mid-term, radio
// blackout windows, and packet duplication/delay bursts — so the
// resilience machinery in internal/network (heartbeat failover, ACK +
// backoff reporting, graceful aggregator degradation) can be driven and
// measured.
//
// Every draw comes from named internal/rng splits of one source, and the
// whole fault plan is computed up front in Arm, so a chaos campaign is a
// pure function of its seed exactly like every other component (see
// docs/DETERMINISM.md). With a zero Config the engine schedules nothing
// and perturbs nothing: runs are byte-identical to runs without it.
package chaos

import (
	"fmt"
	"math"
	"sort"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/radio"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/sim"
	"github.com/tibfit/tibfit/internal/trace"
)

// Target is the system under chaos. internal/network.Network implements
// it; the indirection keeps this package free of a network dependency so
// tests can drive toy targets.
type Target interface {
	// NodeIDs returns every node's ID, sorted ascending.
	NodeIDs() []int
	// Heads returns the currently serving cluster heads, sorted.
	Heads() []int
	// CrashNode makes the node fail-stop: it stops sensing, transmitting,
	// and (if a head) aggregating. Crashing a crashed node is a no-op.
	CrashNode(id int)
	// RecoverNode brings a crashed node back. Recovering an alive node is
	// a no-op.
	RecoverNode(id int)
}

// Behavior is one adversarial cluster-head behavior — the Byzantine
// counterpart of the fail-stop fault classes. Unlike a crash, a
// compromised head keeps running the protocol; it just runs it wrong.
type Behavior int

// The adversarial behaviors a compromised head exhibits.
const (
	// BehaviorInvert makes the head broadcast the inverse of its honest
	// arbitration — the lying-CH attack §3.4's shadow panel exists for —
	// and settle member trust against the lie.
	BehaviorInvert Behavior = iota + 1
	// BehaviorSuppress makes the head silently drop a deterministic
	// subset (even node IDs) of member reports before aggregation,
	// starving the vote it then decides with a clear conscience.
	BehaviorSuppress
	// BehaviorPoison makes the head upload a tampered trust snapshot at
	// handoff, slandering its members so the next head inherits poisoned
	// state.
	BehaviorPoison
	// BehaviorReplay makes the head re-upload the stale snapshot it was
	// issued at election, erasing every verdict of its term.
	BehaviorReplay
)

// allBehaviors is the default compromise pool when Config.Behaviors is
// empty.
var allBehaviors = []Behavior{BehaviorInvert, BehaviorSuppress, BehaviorPoison, BehaviorReplay}

// String returns the stable lowercase name of the behavior.
func (b Behavior) String() string {
	switch b {
	case BehaviorInvert:
		return "invert"
	case BehaviorSuppress:
		return "suppress"
	case BehaviorPoison:
		return "poison"
	case BehaviorReplay:
		return "replay"
	}
	return fmt.Sprintf("behavior(%d)", int(b))
}

// ByzantineTarget is the optional Target extension for adversarial head
// compromise. Arm requires it when Config.ByzHeads is positive.
type ByzantineTarget interface {
	Target
	// CompromiseHead turns the node into a Byzantine head exhibiting the
	// behavior from the compromise onward (a crash clears it — the
	// adversary loses the mote along with everyone else).
	CompromiseHead(id int, b Behavior)
}

// Config describes one chaos campaign. The zero value injects nothing.
type Config struct {
	// Horizon is the virtual-time span over which fault times are drawn.
	// It must be positive when any fault class is enabled.
	Horizon float64

	// CrashFraction is the fraction of nodes given one crash interval
	// each, starting at a uniform time within the horizon.
	CrashFraction float64

	// MeanDowntime is the mean of the exponentially distributed downtime
	// after each node crash. Zero or negative means crash-stop: the node
	// never recovers (dead battery, hardware failure).
	MeanDowntime float64

	// HeadCrashes is the number of cluster-head crash injections: at each
	// drawn time, one currently serving head (chosen uniformly) crashes —
	// the mid-aggregation-window failure the failover path exists for.
	HeadCrashes int

	// HeadCrashDowntime is the mean downtime after a head crash (same
	// semantics as MeanDowntime).
	HeadCrashDowntime float64

	// Blackouts is the number of radio blackout windows: spans during
	// which every transmission on the perturbed channel is swallowed.
	Blackouts int

	// BlackoutLen is the duration of each blackout window.
	BlackoutLen float64

	// DupProb is the per-packet duplication probability outside
	// blackouts.
	DupProb float64

	// DelayJitter is the maximum uniform extra per-packet delay — a
	// congestion model coarse enough to reorder packets without starving
	// them.
	DelayJitter float64

	// ByzHeads is the number of Byzantine head compromises: at each
	// drawn time, one currently serving head (chosen uniformly at fire
	// time) turns adversarial. Requires the target to implement
	// ByzantineTarget.
	ByzHeads int

	// Behaviors is the pool compromises draw from; empty means all
	// registered behaviors.
	Behaviors []Behavior
}

// enabled reports whether any fault class is configured.
func (c Config) enabled() bool {
	return c.CrashFraction > 0 || c.HeadCrashes > 0 || c.Blackouts > 0 ||
		c.DupProb > 0 || c.DelayJitter > 0 || c.ByzHeads > 0
}

// Validate reports whether the configuration is usable. NaN and ±Inf
// are rejected explicitly: a NaN fraction slips through plain range
// comparisons (NaN < 0 and NaN > 1 are both false) and would otherwise
// poison every draw made from it.
func (c Config) Validate() error {
	for _, f := range [...]struct {
		name string
		v    float64
	}{
		{"Horizon", c.Horizon},
		{"CrashFraction", c.CrashFraction},
		{"MeanDowntime", c.MeanDowntime},
		{"HeadCrashDowntime", c.HeadCrashDowntime},
		{"BlackoutLen", c.BlackoutLen},
		{"DupProb", c.DupProb},
		{"DelayJitter", c.DelayJitter},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("chaos: %s must be finite, got %v", f.name, f.v)
		}
	}
	switch {
	case c.CrashFraction < 0 || c.CrashFraction > 1:
		return fmt.Errorf("chaos: CrashFraction must be in [0,1], got %v", c.CrashFraction)
	case c.DupProb < 0 || c.DupProb > 1:
		return fmt.Errorf("chaos: DupProb must be in [0,1], got %v", c.DupProb)
	case c.HeadCrashes < 0 || c.Blackouts < 0:
		return fmt.Errorf("chaos: HeadCrashes and Blackouts must be non-negative")
	case c.ByzHeads < 0:
		return fmt.Errorf("chaos: ByzHeads must be non-negative, got %d", c.ByzHeads)
	case c.Blackouts > 0 && c.BlackoutLen <= 0:
		return fmt.Errorf("chaos: Blackouts need a positive BlackoutLen")
	case c.DelayJitter < 0:
		return fmt.Errorf("chaos: DelayJitter must be non-negative")
	case c.enabled() && c.Horizon <= 0:
		return fmt.Errorf("chaos: enabled fault classes need a positive Horizon")
	}
	for _, b := range c.Behaviors {
		if b < BehaviorInvert || b > BehaviorReplay {
			return fmt.Errorf("chaos: unknown behavior %d in Behaviors", int(b))
		}
	}
	return nil
}

// DefaultConfig returns a modest campaign: a fifth of the nodes crash
// and recover, one head crash, one short blackout, light duplication.
// The horizon must still be set by the caller to the run length.
func DefaultConfig(horizon float64) Config {
	return Config{
		Horizon:           horizon,
		CrashFraction:     0.2,
		MeanDowntime:      horizon / 10,
		HeadCrashes:       1,
		HeadCrashDowntime: horizon / 10,
		Blackouts:         1,
		BlackoutLen:       horizon / 50,
		DupProb:           0.02,
		DelayJitter:       0.002,
	}
}

// Fault is one entry of the precomputed fault plan, exposed for tests
// and for the CLI's plan dump.
type Fault struct {
	// At is the injection time.
	At sim.Time
	// Kind is "crash", "recover", "head-crash", "byz-head",
	// "blackout-start", or "blackout-end". Byzantine entries suffix the
	// drawn behavior, e.g. "byz-head/invert".
	Kind string
	// Node is the victim node, or -1 when resolved at fire time (head
	// crashes) or not applicable (blackouts).
	Node int
}

// window is one blackout span [start, end).
type window struct{ start, end float64 }

// Stats counts injected faults.
type Stats struct {
	Crashes     int // node crashes injected (including head crashes)
	Recoveries  int // recoveries injected
	HeadCrashes int // head crashes resolved against a serving head
	Blackouts   int // blackout windows entered
	Byzantine   int // head compromises resolved against a serving head
}

// Engine schedules the faults of one campaign on a kernel and perturbs
// a radio channel. It implements radio.Perturber.
type Engine struct {
	cfg    Config
	kernel *sim.Kernel
	tr     *trace.Trace

	headSrc *rng.Source // fire-time head picks
	pktSrc  *rng.Source // per-packet duplication and jitter draws
	byzSrc  *rng.Source // fire-time Byzantine victim picks (nil unless armed)

	plan      []Fault
	blackouts []window
	stats     Stats
}

// New returns an engine for one campaign. The source must be a named
// split of the campaign seed; the engine derives its own child streams
// so packet perturbation and schedule drawing cannot perturb each other.
func New(cfg Config, kernel *sim.Kernel, src *rng.Source, tr *trace.Trace) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if kernel == nil || src == nil {
		return nil, fmt.Errorf("chaos: kernel and rng are required")
	}
	return &Engine{
		cfg:     cfg,
		kernel:  kernel,
		tr:      tr,
		headSrc: src.Split("head-pick"),
		pktSrc:  src.Split("packets"),
	}, nil
}

// Plan returns the precomputed fault plan in schedule order (valid after
// Arm).
func (e *Engine) Plan() []Fault {
	out := make([]Fault, len(e.plan))
	copy(out, e.plan)
	return out
}

// Stats returns cumulative injection counters.
func (e *Engine) Stats() Stats { return e.stats }

// Arm draws the whole fault plan from the schedule stream and registers
// it on the kernel against the target. It draws nothing at fire time
// except the head-crash victim pick (which must see the then-current
// head set). Call it once, before running the kernel; the src passed to
// New is not consumed after Arm returns.
func (e *Engine) Arm(target Target, src *rng.Source) error {
	if target == nil {
		return fmt.Errorf("chaos: nil target")
	}
	sched := src.Split("schedule")

	// Node crash/recover intervals.
	ids := target.NodeIDs()
	nVictims := int(e.cfg.CrashFraction*float64(len(ids)) + 0.5)
	if nVictims > len(ids) {
		nVictims = len(ids)
	}
	if nVictims > 0 {
		perm := sched.Perm(len(ids))
		for i := 0; i < nVictims; i++ {
			id := ids[perm[i]]
			at := sim.Time(sched.Uniform(0, e.cfg.Horizon))
			e.addFault(Fault{At: at, Kind: "crash", Node: id}, func() {
				e.stats.Crashes++
				target.CrashNode(id)
			})
			if e.cfg.MeanDowntime > 0 {
				down := e.cfg.MeanDowntime * sched.ExpFloat64()
				e.addFault(Fault{At: at.Add(sim.Duration(down)), Kind: "recover", Node: id}, func() {
					e.stats.Recoveries++
					target.RecoverNode(id)
				})
			}
		}
	}

	// Cluster-head crashes: victim resolved at fire time so the pick
	// lands on whoever is actually serving.
	for i := 0; i < e.cfg.HeadCrashes; i++ {
		at := sim.Time(sched.Uniform(0, e.cfg.Horizon))
		var down float64
		if e.cfg.HeadCrashDowntime > 0 {
			down = e.cfg.HeadCrashDowntime * sched.ExpFloat64()
		}
		e.addFault(Fault{At: at, Kind: "head-crash", Node: -1}, func() {
			heads := target.Heads()
			if len(heads) == 0 {
				return
			}
			id := heads[e.headSrc.Intn(len(heads))]
			e.stats.Crashes++
			e.stats.HeadCrashes++
			target.CrashNode(id)
			if down > 0 {
				e.kernel.After(sim.Duration(down), func() {
					e.stats.Recoveries++
					target.RecoverNode(id)
				})
			}
		})
	}

	// Radio blackout windows.
	for i := 0; i < e.cfg.Blackouts; i++ {
		start := sched.Uniform(0, e.cfg.Horizon)
		w := window{start: start, end: start + e.cfg.BlackoutLen}
		e.blackouts = append(e.blackouts, w)
		e.addFault(Fault{At: sim.Time(w.start), Kind: "blackout-start", Node: -1}, func() {
			e.stats.Blackouts++
			e.tr.Emit(float64(e.kernel.Now()), trace.KindBlackout, -1,
				"radio blackout for %v", sim.Duration(e.cfg.BlackoutLen))
		})
		e.addFault(Fault{At: sim.Time(w.end), Kind: "blackout-end", Node: -1}, func() {
			e.tr.Emit(float64(e.kernel.Now()), trace.KindBlackout, -1, "radio restored")
		})
	}

	// Byzantine head compromises: behavior drawn now, victim resolved at
	// fire time against the then-serving head set (like head crashes).
	// Both the "byz-pick" split and every byz draw happen only when
	// ByzHeads is configured, and strictly after all legacy draw
	// classes, so adding compromises to an existing campaign leaves its
	// crash/blackout schedule byte-identical.
	if e.cfg.ByzHeads > 0 {
		bt, ok := target.(ByzantineTarget)
		if !ok {
			return fmt.Errorf("chaos: ByzHeads configured but target %T does not implement ByzantineTarget", target)
		}
		e.byzSrc = src.Split("byz-pick")
		pool := e.cfg.Behaviors
		if len(pool) == 0 {
			pool = allBehaviors
		}
		for i := 0; i < e.cfg.ByzHeads; i++ {
			at := sim.Time(sched.Uniform(0, e.cfg.Horizon))
			b := pool[sched.Intn(len(pool))]
			e.addFault(Fault{At: at, Kind: "byz-head/" + b.String(), Node: -1}, func() {
				heads := bt.Heads()
				if len(heads) == 0 {
					return
				}
				id := heads[e.byzSrc.Intn(len(heads))]
				e.stats.Byzantine++
				bt.CompromiseHead(id, b)
			})
		}
	}
	sort.Slice(e.blackouts, func(i, j int) bool { return e.blackouts[i].start < e.blackouts[j].start })
	sort.SliceStable(e.plan, func(i, j int) bool { return e.plan[i].At < e.plan[j].At })
	return nil
}

// addFault records the plan entry and schedules its action. (Crash and
// recovery trace records are the target's job — it knows the node's
// role; the engine traces only blackouts.)
func (e *Engine) addFault(f Fault, fire func()) {
	e.plan = append(e.plan, f)
	at := f.At
	if at < e.kernel.Now() {
		at = e.kernel.Now()
	}
	// Scheduling at or after now never fails.
	if _, err := e.kernel.At(at, fire); err != nil {
		panic(err)
	}
}

// Perturb implements radio.Perturber: swallow packets inside blackout
// windows, otherwise duplicate and jitter per config. Draws come from
// the engine's dedicated packet stream.
func (e *Engine) Perturb(from, to geo.Point) radio.Perturbation {
	var p radio.Perturbation
	now := float64(e.kernel.Now())
	for _, w := range e.blackouts {
		if now >= w.start && now < w.end {
			p.Drop = true
			return p
		}
		if w.start > now {
			break
		}
	}
	if e.cfg.DupProb > 0 && e.pktSrc.Bernoulli(e.cfg.DupProb) {
		p.Duplicate = true
	}
	if e.cfg.DelayJitter > 0 {
		p.ExtraDelay = sim.Duration(e.pktSrc.Uniform(0, e.cfg.DelayJitter))
	}
	return p
}
