package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestAccuracy(t *testing.T) {
	var a Accuracy
	if a.Rate() != 0 {
		t.Fatal("empty accuracy rate != 0")
	}
	a.Record(true)
	a.Record(true)
	a.Record(false)
	a.Record(true)
	if a.Rate() != 0.75 {
		t.Fatalf("rate = %v", a.Rate())
	}
	if got := a.String(); !strings.Contains(got, "75.0%") || !strings.Contains(got, "3/4") {
		t.Fatalf("String = %q", got)
	}
}

func TestDetectionLocError(t *testing.T) {
	var d Detection
	d.RecordEvent(true, 2)
	d.RecordEvent(true, 4)
	d.RecordEvent(false, math.NaN())
	if d.MeanLocErr() != 3 {
		t.Fatalf("MeanLocErr = %v", d.MeanLocErr())
	}
	if d.Accuracy.Rate() != 2.0/3 {
		t.Fatalf("accuracy = %v", d.Accuracy.Rate())
	}
	d.RecordFalsePositive()
	if d.FalsePositives != 1 {
		t.Fatalf("false positives = %d", d.FalsePositives)
	}
}

func TestDetectionMeanLocErrEmpty(t *testing.T) {
	var d Detection
	if d.MeanLocErr() != 0 {
		t.Fatal("empty MeanLocErr != 0")
	}
}

func TestWindowedAccuracy(t *testing.T) {
	var d Detection
	// 10 events: first 5 all detected, next 5 none.
	for i := 0; i < 5; i++ {
		d.RecordEvent(true, 0)
	}
	for i := 0; i < 5; i++ {
		d.RecordEvent(false, 0)
	}
	got := d.WindowedAccuracy(5)
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("WindowedAccuracy = %v", got)
	}
	// Trailing partial window.
	d.RecordEvent(true, 0)
	got = d.WindowedAccuracy(5)
	if len(got) != 3 || got[2] != 1 {
		t.Fatalf("WindowedAccuracy with partial = %v", got)
	}
	if d.EventCount() != 11 {
		t.Fatalf("EventCount = %d", d.EventCount())
	}
}

func TestWindowedAccuracyEdges(t *testing.T) {
	var d Detection
	if d.WindowedAccuracy(5) != nil {
		t.Fatal("empty detection produced windows")
	}
	d.RecordEvent(true, 0)
	if d.WindowedAccuracy(0) != nil {
		t.Fatal("zero window size produced windows")
	}
}

func TestSeriesYAt(t *testing.T) {
	var s Series
	s.Add(10, 0.5)
	s.Add(20, 0.9)
	if y, ok := s.YAt(20); !ok || y != 0.9 {
		t.Fatalf("YAt(20) = %v, %t", y, ok)
	}
	if _, ok := s.YAt(15); ok {
		t.Fatal("YAt found missing x")
	}
}

func testFigure() Figure {
	s1 := Series{Label: "tibfit"}
	s1.Add(10, 99)
	s1.Add(20, 95)
	s2 := Series{Label: "baseline"}
	s2.Add(10, 98)
	s2.Add(30, 60)
	return Figure{
		ID: "figX", Title: "test", XLabel: "% faulty", YLabel: "accuracy",
		Series: []Series{s1, s2},
	}
}

func TestFigureLookup(t *testing.T) {
	f := testFigure()
	if s, ok := f.Lookup("baseline"); !ok || s.Label != "baseline" {
		t.Fatal("Lookup failed")
	}
	if _, ok := f.Lookup("missing"); ok {
		t.Fatal("Lookup found missing series")
	}
}

func TestFigureTable(t *testing.T) {
	out := testFigure().Table()
	for _, want := range []string{"figX", "tibfit", "baseline", "99.0000", "60.0000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// x=20 exists only in series 1; series 2's cell must be a dash.
	lines := strings.Split(out, "\n")
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "20") && strings.Contains(l, "-") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing-dash row not rendered:\n%s", out)
	}
}

func TestFigureCSV(t *testing.T) {
	out := testFigure().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv has %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "x,tibfit,baseline" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "10,99.000000,98.000000") {
		t.Fatalf("row = %q", lines[1])
	}
	// Missing cells are empty, x axis is the sorted union.
	if !strings.HasPrefix(lines[2], "20,95.000000,") {
		t.Fatalf("row = %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "30,,60.000000") {
		t.Fatalf("row = %q", lines[3])
	}
}

func TestCSVEscapesCommasInLabels(t *testing.T) {
	s := Series{Label: "a,b"}
	s.Add(1, 2)
	f := Figure{Series: []Series{s}}
	if !strings.Contains(f.CSV(), "a;b") {
		t.Fatal("comma in label not escaped")
	}
}
