package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the figure as an ASCII chart: one mark per series per x
// position, y scaled into the given height. It is the CLI's -plot view,
// letting a terminal user see the paper's curve shapes without leaving
// the shell. Width counts the plot columns (x positions are mapped
// linearly), height the rows. Series are marked with successive letters
// shown in the legend.
func (f Figure) Plot(width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	xs := f.xAxis()
	if len(xs) == 0 {
		return fmt.Sprintf("# %s — no data\n", f.ID)
	}
	xMin, xMax := xs[0], xs[len(xs)-1]
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			yMin = math.Min(yMin, p.Y)
			yMax = math.Max(yMax, p.Y)
		}
	}
	//lint:allow floateq degenerate-axis sentinel; near-equal ranges still plot fine
	if yMin == yMax {
		yMin, yMax = yMin-1, yMax+1
	}
	//lint:allow floateq degenerate-axis sentinel; near-equal ranges still plot fine
	if xMin == xMax {
		xMin, xMax = xMin-1, xMax+1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xMin) / (xMax - xMin) * float64(width-1)))
		return clampInt(c, 0, width-1)
	}
	row := func(y float64) int {
		// Row 0 is the top of the chart.
		r := int(math.Round((yMax - y) / (yMax - yMin) * float64(height-1)))
		return clampInt(r, 0, height-1)
	}

	for si, s := range f.Series {
		mark := byte('a' + si%26)
		// Draw segments between consecutive points so sparse series read
		// as lines rather than dots.
		for i := 0; i < len(s.Points); i++ {
			p := s.Points[i]
			grid[row(p.Y)][col(p.X)] = mark
			if i == 0 {
				continue
			}
			q := s.Points[i-1]
			c0, c1 := col(q.X), col(p.X)
			for c := c0 + 1; c < c1; c++ {
				frac := float64(c-c0) / float64(c1-c0)
				y := q.Y + (p.Y-q.Y)*frac
				if grid[row(y)][c] == ' ' {
					grid[row(y)][c] = mark
				}
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", f.ID, f.Title)
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.4g", yMax)
		case height - 1:
			label = fmt.Sprintf("%8.4g", yMin)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, line)
	}
	fmt.Fprintf(&b, "%8s  %-*.4g%*.4g\n", "", width/2, xMin, width-width/2, xMax)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", byte('a'+si%26), s.Label)
	}
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
