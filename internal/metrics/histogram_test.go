package metrics

import (
	"math"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Summary()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("empty summary = %+v, want zeros", s)
	}
}

func TestHistogramExactStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{10, 20, 30, 40} {
		h.Record(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if h.Mean() != 25 {
		t.Fatalf("Mean = %v, want 25", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("Min/Max = %v/%v, want 10/40", h.Min(), h.Max())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(float64(i))
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	// Interpolation stays inside the bucket containing the exact
	// quantile, so the estimate must land in that bucket's range (the
	// exact quantiles are 500.5 and 990, in buckets [256,512) and
	// [512,1024) clamped to max). An off-by-one-octave bucket mapping
	// would report ~250 and ~507 and fail both checks.
	if p50 < 256 || p50 > 512 {
		t.Fatalf("p50 = %v, want in [256, 512] around exact 500.5", p50)
	}
	if p99 < 512 || p99 > 1000 {
		t.Fatalf("p99 = %v, want in [512, 1000] around exact 990", p99)
	}
	if p99 < p50 {
		t.Fatalf("p99 %v < p50 %v", p99, p50)
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatalf("extreme quantiles %v/%v, want %v/%v",
			h.Quantile(0), h.Quantile(1), h.Min(), h.Max())
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Record(5000)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 5000 {
			t.Fatalf("Quantile(%v) = %v, want 5000", q, got)
		}
	}
}

func TestHistogramRejectsNaNClampsNegative(t *testing.T) {
	var h Histogram
	h.Record(math.NaN())
	if h.Count() != 0 {
		t.Fatal("NaN recorded")
	}
	h.Record(-50)
	if h.Count() != 1 || h.Min() != 0 {
		t.Fatalf("negative clamp: count=%d min=%v, want 1/0", h.Count(), h.Min())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(100)
		b.Record(1000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	if a.Min() != 100 || a.Max() != 1000 {
		t.Fatalf("merged min/max = %v/%v, want 100/1000", a.Min(), a.Max())
	}
	if mean := a.Mean(); mean != 550 {
		t.Fatalf("merged mean = %v, want 550", mean)
	}
	a.Merge(nil) // no-op
	if a.Count() != 200 {
		t.Fatal("nil merge changed state")
	}
}

func TestHistogramHugeValues(t *testing.T) {
	var h Histogram
	h.Record(math.MaxFloat64)
	h.Record(1)
	if h.Count() != 2 || h.Max() != math.MaxFloat64 {
		t.Fatalf("huge value mishandled: count=%d max=%v", h.Count(), h.Max())
	}
	if got := h.Quantile(0.99); math.IsNaN(got) || got < 1 {
		t.Fatalf("Quantile on huge values = %v", got)
	}
}
