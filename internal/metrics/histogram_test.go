package metrics

import (
	"math"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Summary()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("empty summary = %+v, want zeros", s)
	}
}

func TestHistogramExactStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{10, 20, 30, 40} {
		h.Record(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if h.Mean() != 25 {
		t.Fatalf("Mean = %v, want 25", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("Min/Max = %v/%v, want 10/40", h.Min(), h.Max())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(float64(i))
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	// Interpolation stays inside the bucket containing the exact
	// quantile, so the estimate must land in that bucket's range (the
	// exact quantiles are 500.5 and 990, in buckets [256,512) and
	// [512,1024) clamped to max). An off-by-one-octave bucket mapping
	// would report ~250 and ~507 and fail both checks.
	if p50 < 256 || p50 > 512 {
		t.Fatalf("p50 = %v, want in [256, 512] around exact 500.5", p50)
	}
	if p99 < 512 || p99 > 1000 {
		t.Fatalf("p99 = %v, want in [512, 1000] around exact 990", p99)
	}
	if p99 < p50 {
		t.Fatalf("p99 %v < p50 %v", p99, p50)
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatalf("extreme quantiles %v/%v, want %v/%v",
			h.Quantile(0), h.Quantile(1), h.Min(), h.Max())
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Record(5000)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 5000 {
			t.Fatalf("Quantile(%v) = %v, want 5000", q, got)
		}
	}
}

func TestHistogramRejectsNaNClampsNegative(t *testing.T) {
	var h Histogram
	h.Record(math.NaN())
	if h.Count() != 0 {
		t.Fatal("NaN recorded")
	}
	h.Record(-50)
	if h.Count() != 1 || h.Min() != 0 {
		t.Fatalf("negative clamp: count=%d min=%v, want 1/0", h.Count(), h.Min())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(100)
		b.Record(1000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	if a.Min() != 100 || a.Max() != 1000 {
		t.Fatalf("merged min/max = %v/%v, want 100/1000", a.Min(), a.Max())
	}
	if mean := a.Mean(); mean != 550 {
		t.Fatalf("merged mean = %v, want 550", mean)
	}
	a.Merge(nil) // no-op
	if a.Count() != 200 {
		t.Fatal("nil merge changed state")
	}
}

// TestHistogramSmallCountExactQuantiles pins the serve-latency.json
// regression: 356 decision latencies clustered just above a power-of-two
// bucket floor all land in one octave bucket, and bucket interpolation
// overshoots past max so every quantile clamps to it — p50 == p99 == max.
// With the exact reservoir, small counts must report true order-statistic
// quantiles instead.
func TestHistogramSmallCountExactQuantiles(t *testing.T) {
	var h Histogram
	const n = 356
	// All values sit in bucket [2^31, 2^32) — ~2.2e9ns decision latencies.
	for i := 0; i < n; i++ {
		h.Record(2.2e9 + float64(i)*1e5)
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	max := h.Max()
	if !(p50 < p99 && p99 < max) {
		t.Fatalf("small-count quantiles collapsed: p50=%v p99=%v max=%v", p50, p99, max)
	}
	// Exact order statistics: pos = q*(n-1), linear interpolation.
	wantP50 := 2.2e9 + 0.50*float64(n-1)*1e5
	wantP99 := 2.2e9 + 0.99*float64(n-1)*1e5
	if math.Abs(p50-wantP50) > 1 {
		t.Fatalf("p50 = %v, want %v", p50, wantP50)
	}
	if math.Abs(p99-wantP99) > 1 {
		t.Fatalf("p99 = %v, want %v", p99, wantP99)
	}
}

// TestHistogramReservoirToBucketTransition walks the count across the
// reservoir capacity and checks quantiles stay sane on both sides.
func TestHistogramReservoirToBucketTransition(t *testing.T) {
	var h Histogram
	for i := 1; i <= histReservoir; i++ {
		h.Record(float64(i))
	}
	// Exactly at capacity: still exact.
	wantP50 := 0.50 * float64(histReservoir-1)
	if got := h.Quantile(0.50); math.Abs(got-(1+wantP50)) > 1e-9 {
		t.Fatalf("at-capacity p50 = %v, want %v", got, 1+wantP50)
	}
	// One past capacity: bucket path, must stay ordered and in range.
	h.Record(float64(histReservoir + 1))
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < h.Min() || p99 > h.Max() || p99 < p50 {
		t.Fatalf("bucket-path quantiles out of order: p50=%v p99=%v min=%v max=%v",
			p50, p99, h.Min(), h.Max())
	}
}

func TestHistogramRecordN(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Record(250)
	}
	a.Record(900)
	b.RecordN(250, 10)
	b.RecordN(900, 1)
	if a.Count() != b.Count() || a.Mean() != b.Mean() || a.Min() != b.Min() || a.Max() != b.Max() {
		t.Fatalf("RecordN diverges from repeated Record: %+v vs %+v", a.Summary(), b.Summary())
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("Quantile(%v): Record=%v RecordN=%v", q, a.Quantile(q), b.Quantile(q))
		}
	}
	b.RecordN(500, 0) // no-op
	if b.Count() != 11 {
		t.Fatal("RecordN(_, 0) changed state")
	}
}

// TestHistogramMergeKeepsExactSamples checks that merging two small
// histograms preserves exact quantiles when the union still fits the
// reservoir — the per-worker merge path in tibfit-load.
func TestHistogramMergeKeepsExactSamples(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(2.2e9 + float64(i)*1e5)  // worker 1's cluster
		b.Record(2.25e9 + float64(i)*1e5) // worker 2's, interleaved octave
	}
	a.Merge(&b)
	p50, p99 := a.Quantile(0.50), a.Quantile(0.99)
	if !(p50 < p99 && p99 < a.Max()) {
		t.Fatalf("merged small-count quantiles collapsed: p50=%v p99=%v max=%v", p50, p99, a.Max())
	}
}

func TestHistogramHugeValues(t *testing.T) {
	var h Histogram
	h.Record(math.MaxFloat64)
	h.Record(1)
	if h.Count() != 2 || h.Max() != math.MaxFloat64 {
		t.Fatalf("huge value mishandled: count=%d max=%v", h.Count(), h.Max())
	}
	if got := h.Quantile(0.99); math.IsNaN(got) || got < 1 {
		t.Fatalf("Quantile on huge values = %v", got)
	}
}
