package metrics

import (
	"strings"
	"testing"
)

func TestPlotRendersAllSeries(t *testing.T) {
	out := testFigure().Plot(40, 10)
	if !strings.Contains(out, "a = tibfit") || !strings.Contains(out, "b = baseline") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatalf("marks missing:\n%s", out)
	}
	// Axis labels carry the y extremes (99 max, 60 min).
	if !strings.Contains(out, "99") || !strings.Contains(out, "60") {
		t.Fatalf("y labels missing:\n%s", out)
	}
}

func TestPlotEmptyFigure(t *testing.T) {
	f := Figure{ID: "empty"}
	out := f.Plot(40, 10)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty figure plot = %q", out)
	}
}

func TestPlotSinglePointSeries(t *testing.T) {
	s := Series{Label: "one"}
	s.Add(5, 5)
	f := Figure{ID: "single", Series: []Series{s}}
	out := f.Plot(20, 5)
	if !strings.Contains(out, "a = one") {
		t.Fatalf("plot = %q", out)
	}
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	out := testFigure().Plot(1, 1)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + at least 4 rows + x axis + 2 legend lines.
	if len(lines) < 8 {
		t.Fatalf("clamped plot too small:\n%s", out)
	}
}

func TestPlotFlatSeries(t *testing.T) {
	s := Series{Label: "flat"}
	s.Add(0, 7)
	s.Add(10, 7)
	f := Figure{ID: "flat", Series: []Series{s}}
	out := f.Plot(20, 6)
	if !strings.Contains(out, "a") {
		t.Fatalf("flat series not drawn:\n%s", out)
	}
}

func TestPlotInterpolatesBetweenPoints(t *testing.T) {
	s := Series{Label: "line"}
	s.Add(0, 0)
	s.Add(100, 100)
	f := Figure{ID: "line", Series: []Series{s}}
	out := f.Plot(30, 10)
	marks := strings.Count(out, "a") - 1 // minus the legend's "a"
	if marks < 10 {
		t.Fatalf("only %d interpolated marks:\n%s", marks, out)
	}
}
