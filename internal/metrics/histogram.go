package metrics

import (
	"math"
	"sort"
)

// histBuckets is the fixed bucket count of Histogram: one power-of-two
// bucket per float64 exponent from 2^0 up, which spans sub-nanosecond to
// ~584 years when values are nanoseconds.
const histBuckets = 64

// histReservoir is the exact-sample capacity: histograms at or below
// this count answer quantiles from the sorted samples themselves rather
// than by bucket interpolation. Octave buckets collapse at small counts
// — a few hundred values in one power-of-two bucket interpolate to the
// bucket's geometry, not the data's, which is how serve-latency.json
// once reported p50 == p99 == max at count 356 — so small counts keep
// every observation.
const histReservoir = 512

// Histogram is a fixed-size log-bucketed latency histogram: bucket i
// counts values in [2^i, 2^(i+1)) for i > 0 (bucket 0 absorbs
// everything below 2, the last bucket everything at or above 2^63).
// Recording is allocation-free and O(1), so it sits on the serving hot
// path. Count, sum, min, and max are exact at any size; quantiles are
// exact up to histReservoir observations (an in-struct reservoir keeps
// every sample) and approximate above it (linear interpolation within a
// power-of-two bucket, so the relative error is bounded by the bucket
// width).
//
// The zero value is ready to use. Histogram is not safe for concurrent
// use; callers lock around it (internal/serve) or merge per-worker
// histograms afterwards (Merge).
type Histogram struct {
	buckets   [histBuckets]uint64
	reservoir [histReservoir]float64
	count     uint64
	sum       float64
	min       float64
	max       float64
}

// bucketOf maps a value to its bucket index via the float64 exponent.
func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	_, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	if exp > histBuckets {
		exp = histBuckets
	}
	return exp - 1
}

// Record adds one observation. NaN is ignored; negative values clamp to
// zero (a latency below the clock's resolution, not an error).
//
//hot:path
func (h *Histogram) Record(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if h.count < histReservoir {
		h.reservoir[h.count] = v
	}
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
}

// RecordN adds n identical observations in O(1) — the amortized form
// batch ingest uses: one wall-clock measurement per batch, attributed to
// every report it covered, without n lock-held Record calls.
//
//hot:path
func (h *Histogram) RecordN(v float64, n uint64) {
	if n == 0 || math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	for i := h.count; i < histReservoir && i < h.count+n; i++ {
		h.reservoir[i] = v
	}
	h.buckets[bucketOf(v)] += n
	h.count += n
	h.sum += v * float64(n)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact mean of recorded observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the exact extremes (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest recorded observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns the q-quantile (q in [0, 1]): exact (linear
// interpolation between order statistics) while every observation still
// fits the reservoir, bucket interpolation clamped to the exact observed
// extremes above that.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	if h.count <= histReservoir {
		return h.exactQuantile(q)
	}
	rank := q * float64(h.count)
	var cum float64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo, hi := bucketBounds(i)
			v := lo + (hi-lo)*(rank-cum)/float64(n)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// exactQuantile answers from the sorted reservoir: the standard
// order-statistic estimate interpolating between the two samples
// straddling rank q·(n-1). Callers guarantee 0 < q < 1 and
// 0 < count <= histReservoir. Not a hot path: quantiles are read at
// summary time, not per report.
func (h *Histogram) exactQuantile(q float64) float64 {
	n := int(h.count)
	sorted := make([]float64, n)
	copy(sorted, h.reservoir[:n])
	sort.Float64s(sorted)
	pos := q * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(i)
	return sorted[i] + (sorted[i+1]-sorted[i])*frac
}

// bucketBounds returns bucket i's value range [lo, hi), matching
// bucketOf: values v with frexp exponent exp (v in [2^(exp-1), 2^exp))
// land in bucket exp-1, i.e. bucket i holds [2^i, 2^(i+1)).
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 2
	}
	return math.Ldexp(1, i), math.Ldexp(1, i+1)
}

// Merge folds other's observations into h — how per-worker histograms
// combine into one report without sharing a lock on the hot path. While
// the combined count fits the reservoir the merge keeps exact samples,
// so quantiles of merged small histograms stay exact too.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	if h.count < histReservoir {
		copy(h.reservoir[h.count:], other.reservoir[:min(other.count, histReservoir)])
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	h.count += other.count
	h.sum += other.sum
}

// HistogramSummary is the JSON shape of a histogram: the p50/p99/mean
// triple the serving layer and the bench matrix report, plus exact
// count and extremes.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Summary snapshots the histogram's summary statistics.
func (h *Histogram) Summary() HistogramSummary {
	return HistogramSummary{
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		Min:   h.min,
		Max:   h.max,
	}
}
