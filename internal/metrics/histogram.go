package metrics

import (
	"math"
)

// histBuckets is the fixed bucket count of Histogram: one power-of-two
// bucket per float64 exponent from 2^0 up, which spans sub-nanosecond to
// ~584 years when values are nanoseconds.
const histBuckets = 64

// Histogram is a fixed-size log-bucketed latency histogram: bucket i
// counts values in [2^i, 2^(i+1)) for i > 0 (bucket 0 absorbs
// everything below 2, the last bucket everything at or above 2^63).
// Recording is allocation-free and O(1), so it sits on the serving hot
// path; quantiles are approximate (linear interpolation within a
// power-of-two bucket, so the relative error is bounded by the bucket
// width) while count, sum, min, and max are exact.
//
// The zero value is ready to use. Histogram is not safe for concurrent
// use; callers lock around it (internal/serve) or merge per-worker
// histograms afterwards (Merge).
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// bucketOf maps a value to its bucket index via the float64 exponent.
func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	_, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	if exp > histBuckets {
		exp = histBuckets
	}
	return exp - 1
}

// Record adds one observation. NaN is ignored; negative values clamp to
// zero (a latency below the clock's resolution, not an error).
//
//hot:path
func (h *Histogram) Record(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact mean of recorded observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the exact extremes (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest recorded observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns the q-quantile (q in [0, 1]) by linear interpolation
// within the containing bucket, clamped to the exact observed extremes.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	var cum float64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo, hi := bucketBounds(i)
			v := lo + (hi-lo)*(rank-cum)/float64(n)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// bucketBounds returns bucket i's value range [lo, hi), matching
// bucketOf: values v with frexp exponent exp (v in [2^(exp-1), 2^exp))
// land in bucket exp-1, i.e. bucket i holds [2^i, 2^(i+1)).
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 2
	}
	return math.Ldexp(1, i), math.Ldexp(1, i+1)
}

// Merge folds other's observations into h — how per-worker histograms
// combine into one report without sharing a lock on the hot path.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	h.count += other.count
	h.sum += other.sum
}

// HistogramSummary is the JSON shape of a histogram: the p50/p99/mean
// triple the serving layer and the bench matrix report, plus exact
// count and extremes.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Summary snapshots the histogram's summary statistics.
func (h *Histogram) Summary() HistogramSummary {
	return HistogramSummary{
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		Min:   h.min,
		Max:   h.max,
	}
}
