// Package metrics implements the accuracy accounting the paper's
// evaluation reports: per-event detection outcomes, localization error,
// false-positive counts, windowed time series for the decay experiment,
// and (x, y) series for regenerating figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Accuracy accumulates binary detection outcomes.
type Accuracy struct {
	Detected int
	Total    int
}

// Record adds one ground-truth event's outcome.
func (a *Accuracy) Record(detected bool) {
	a.Total++
	if detected {
		a.Detected++
	}
}

// Rate returns Detected/Total (0 when empty).
func (a Accuracy) Rate() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Detected) / float64(a.Total)
}

// String renders the accuracy as a percentage.
func (a Accuracy) String() string {
	return fmt.Sprintf("%.1f%% (%d/%d)", 100*a.Rate(), a.Detected, a.Total)
}

// Detection summarizes a full run of a location or binary experiment.
type Detection struct {
	Accuracy Accuracy
	// FalsePositives counts declared events that matched no ground-truth
	// occurrence.
	FalsePositives int
	// LocErrSum/LocErrCount accumulate localization error over correctly
	// detected events.
	LocErrSum   float64
	LocErrCount int
	// Windowed accumulates per-event outcomes for time-series views.
	outcomes []bool
}

// RecordEvent adds a ground-truth event's outcome, with the localization
// error when it was detected.
func (d *Detection) RecordEvent(detected bool, locErr float64) {
	d.Accuracy.Record(detected)
	d.outcomes = append(d.outcomes, detected)
	if detected && !math.IsNaN(locErr) {
		d.LocErrSum += locErr
		d.LocErrCount++
	}
}

// RecordFalsePositive counts one unmatched declared event.
func (d *Detection) RecordFalsePositive() { d.FalsePositives++ }

// MeanLocErr returns the mean localization error over detections.
func (d Detection) MeanLocErr() float64 {
	if d.LocErrCount == 0 {
		return 0
	}
	return d.LocErrSum / float64(d.LocErrCount)
}

// WindowedAccuracy returns detection accuracy over consecutive windows of
// the given number of events — the view experiment 3's figures plot
// against time. A trailing partial window is included.
func (d Detection) WindowedAccuracy(window int) []float64 {
	if window <= 0 || len(d.outcomes) == 0 {
		return nil
	}
	var out []float64
	for start := 0; start < len(d.outcomes); start += window {
		end := start + window
		if end > len(d.outcomes) {
			end = len(d.outcomes)
		}
		hits := 0
		for _, ok := range d.outcomes[start:end] {
			if ok {
				hits++
			}
		}
		out = append(out, float64(hits)/float64(end-start))
	}
	return out
}

// EventCount returns the number of recorded ground-truth events.
func (d Detection) EventCount() int { return len(d.outcomes) }

// Point is one (x, y) sample of a figure series.
type Point struct {
	X, Y float64
}

// Series is one named line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Add appends one sample.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// YAt returns the series value at x (exact match) and whether it exists.
func (s Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		//lint:allow floateq documented exact-match lookup on axis values that are stored verbatim
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Figure is a reproducible paper figure: named series over a common axis.
type Figure struct {
	ID     string // e.g. "figure2"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Lookup returns the series with the given label.
func (f Figure) Lookup(label string) (Series, bool) {
	for _, s := range f.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}

// Table renders the figure as an aligned text table: one row per x value,
// one column per series — the form in which the reproduction reports the
// paper's plots.
func (f Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "# x: %s, y: %s\n", f.XLabel, f.YLabel)

	xs := f.xAxis()
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %22s", s.Label)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12.4g", x)
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, " %22.4f", y)
			} else {
				fmt.Fprintf(&b, " %22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with a header row.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString("x")
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(strings.ReplaceAll(s.Label, ",", ";"))
	}
	b.WriteByte('\n')
	for _, x := range f.xAxis() {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			b.WriteByte(',')
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, "%.6f", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// xAxis returns the sorted union of all series' x values.
func (f Figure) xAxis() []float64 {
	seen := make(map[float64]bool)
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}
