package aggregator

import (
	"fmt"
	"sort"

	"github.com/tibfit/tibfit/internal/cluster"
	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/sim"
	"github.com/tibfit/tibfit/internal/trace"
)

// LocationConfig configures a location-determination aggregator.
type LocationConfig struct {
	// Tout is the aggregation window (and per-circle timer) length.
	Tout sim.Duration
	// RError is the localization tolerance r_error: the radius of event
	// clusters and the bound within which a detection counts as correct.
	RError float64
	// SenseRadius is r_s: nodes within this distance of an event are its
	// event neighbors and are expected to report it.
	SenseRadius float64
	// Concurrent enables the §3.3 circle protocol, which separates events
	// that occur within T_out of each other. When false, the aggregator
	// uses a single window per quiet period (§3.2's simplifying
	// assumption that events are at least T_out apart).
	Concurrent bool
	// TrustWeightedCentroid declares each accepted event at the
	// trust-weighted average of its cluster's report locations instead of
	// the plain center of gravity. This is an extension beyond the paper
	// (in the spirit of Wagner's resilient aggregation, the paper's ref
	// [10]): reports from distrusted nodes that survived clustering stop
	// dragging the declared location. The vote itself is unchanged.
	TrustWeightedCentroid bool

	// Clusterer, when non-nil, is a shared clustering engine whose scratch
	// buffers are reused across aggregation rounds (and across aggregators,
	// when several cluster heads run on one single-threaded kernel). Nil
	// gives the aggregator a private one.
	Clusterer *cluster.Clusterer

	// CoincidenceGuard, when positive, is the §7 "more robust against
	// level 2" extension: reports whose locations are mutually within
	// this distance are implausibly coincident — honest location noise
	// (σ ≥ 1.6 in Table 2) makes even two reports landing within half a
	// unit of each other a percent-level coincidence, and a whole clique
	// essentially impossible — so each coincident group contributes the
	// weight of its single most trusted member to the vote: a clique
	// that speaks with one voice is one witness, not many. Groups still
	// receive individual verdicts afterwards. Zero disables the guard
	// (the paper's protocol).
	CoincidenceGuard float64
}

// Validate reports whether the configuration is usable.
func (c LocationConfig) Validate() error {
	switch {
	case c.Tout <= 0:
		return fmt.Errorf("aggregator: Tout must be positive, got %v", c.Tout)
	case c.RError <= 0:
		return fmt.Errorf("aggregator: RError must be positive, got %v", c.RError)
	case c.SenseRadius <= 0:
		return fmt.Errorf("aggregator: SenseRadius must be positive, got %v", c.SenseRadius)
	default:
		return nil
	}
}

// Candidate is the vote result for one event cluster.
type Candidate struct {
	// Loc is the cluster's center of gravity — the declared event
	// location when Occurred is true.
	Loc geo.Point
	// Occurred is the CTI vote outcome.
	Occurred bool
	// Decision is the underlying vote.
	Decision core.BinaryDecision
	// RangeViolators are reporters whose own position is farther than the
	// sensing radius from the candidate location — a detectable false
	// alarm ("reports an event outside of its sensing radius", §2.1).
	// They are judged faulty without joining the vote.
	RangeViolators []int
}

// String summarizes the candidate for traces.
func (c Candidate) String() string {
	return fmt.Sprintf("loc=%v occurred=%t ctiFor=%.2f ctiAgainst=%.2f violators=%d",
		c.Loc, c.Occurred, c.Decision.CTIFor, c.Decision.CTIAgainst, len(c.RangeViolators))
}

// LocationOutcome describes one completed aggregation round: every
// candidate event cluster the reports formed and the verdicts rendered.
type LocationOutcome struct {
	TriggerTime sim.Time
	DecideTime  sim.Time
	Candidates  []Candidate
}

// Declared returns the locations of candidates the vote accepted.
func (o LocationOutcome) Declared() []geo.Point {
	var out []geo.Point
	for _, c := range o.Candidates {
		if c.Occurred {
			out = append(out, c.Loc)
		}
	}
	return out
}

// Location is the §3.2/§3.3 location-determination aggregator.
type Location struct {
	pipeline
	cfg       LocationConfig
	pos       Positions
	onDecide  func(LocationOutcome)
	clusterer *cluster.Clusterer

	// Single-window mode state (the window lifecycle itself lives in the
	// shared pipeline).
	pending []cluster.Report

	// Concurrent mode state.
	circles *cluster.CircleSet

	// scr is per-round working storage, reused across aggregation rounds
	// so the decide path stops allocating maps and slices per event. The
	// aggregator is single-threaded (one per cluster head on one kernel),
	// so one scratch set suffices; anything that escapes into a Candidate
	// is copied out exactly sized.
	scr locScratch
}

// locScratch collects every map and slice the decide path fills and drops
// within one round.
type locScratch struct {
	seen      map[int]bool // dedupeByNode
	reported  map[int]bool // decideGroup
	memberSet map[int]bool // decideCandidate
	members   []int
	violators []int
	silent    []int
	inSide    map[int]bool // guardedCTI
	reps      []cluster.Report
	parent    []int
	groupMax  map[int]float64
	roots     []int
	pts       []geo.Point // trustWeightedCenter
	weights   []float64
	ctis      []float64 // decideGroup sort keys
}

// byCTI sorts clusters by descending cumulative trust, carrying the
// precomputed keys along with their clusters.
type byCTI struct {
	clusters []cluster.EventCluster
	cti      []float64
}

func (s byCTI) Len() int           { return len(s.clusters) }
func (s byCTI) Less(i, j int) bool { return s.cti[i] > s.cti[j] }
func (s byCTI) Swap(i, j int) {
	s.clusters[i], s.clusters[j] = s.clusters[j], s.clusters[i]
	s.cti[i], s.cti[j] = s.cti[j], s.cti[i]
}

// resetBoolSet returns m emptied for reuse, allocating only on first use.
func resetBoolSet(m map[int]bool, sizeHint int) map[int]bool {
	if m == nil {
		return make(map[int]bool, sizeHint)
	}
	clear(m)
	return m
}

// NewLocation returns a location aggregator over the given known positions,
// running the given decision scheme on the given clock (the simulation
// kernel in batch runs; any other Clock driver online).
func NewLocation(cfg LocationConfig, scheme decision.Scheme, clock Clock, pos Positions,
	onDecide func(LocationOutcome), feedback Feedback, tr *trace.Trace) (*Location, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if scheme == nil || clock == nil || pos == nil {
		return nil, fmt.Errorf("aggregator: scheme, clock, and positions are required")
	}
	l := &Location{
		pipeline: pipeline{
			scheme:   scheme,
			clock:    clock,
			feedback: feedback,
			tr:       tr,
		},
		cfg:       cfg,
		pos:       pos,
		onDecide:  onDecide,
		clusterer: cfg.Clusterer,
	}
	if l.clusterer == nil {
		l.clusterer = cluster.NewClusterer()
	}
	if cfg.Concurrent {
		l.circles = cluster.NewCircleSet(cfg.RError, cfg.Tout)
	}
	return l, nil
}

// Rounds returns how many aggregation rounds have completed.
func (l *Location) Rounds() int { return l.decided }

// Deliver hands the aggregator one location report that survived the
// channel: the sender and the polar offset it transmitted. The aggregator
// resolves the offset against the sender's known position (§3.2). Reports
// from unknown or isolated senders are discarded.
func (l *Location) Deliver(nodeID int, off geo.Polar) {
	if l.closed {
		return
	}
	origin, ok := l.pos.Pos(nodeID)
	if !ok || l.scheme.Isolated(nodeID) {
		return
	}
	rep := cluster.Report{Node: nodeID, Loc: geo.FromPolar(origin, off)}
	if l.tr.Verbose() {
		l.tr.Emit(float64(l.clock.Now()), trace.KindReportDelivered, nodeID, "loc=%v", rep.Loc)
	} else {
		l.tr.Hit(trace.KindReportDelivered)
	}
	if l.cfg.Concurrent {
		l.deliverConcurrent(rep)
		return
	}
	l.openWindow(l.cfg.Tout, l.closeWindow)
	l.pending = append(l.pending, rep)
}

// deliverConcurrent routes the report through the §3.3 circle protocol,
// scheduling a collection pass at each new circle's deadline.
func (l *Location) deliverConcurrent(rep cluster.Report) {
	c, isNew := l.circles.Add(rep, l.clock.Now())
	if isNew {
		trigger := l.clock.Now()
		deadline := c.Deadline
		l.clock.AfterFunc(deadline.Sub(l.clock.Now()), func() {
			for _, group := range l.circles.Collect(l.clock.Now()) {
				l.decideGroup(group, trigger)
			}
		})
	}
}

// closeWindow ends a single-mode window and decides its reports.
func (l *Location) closeWindow() {
	reports := l.pending
	l.pending = nil
	l.windowOpen = false
	l.decideGroup(reports, l.windowTrigger)
}

// decideGroup decides one group of reports unless the aggregator died
// before its deadline fired.
//
// decideGroup is the heart of location-mode TIBFIT: cluster the reports,
// then hold one trust vote per candidate cluster.
//
// For each candidate (strongest cumulative trust first):
//
//   - Reporters whose own position is farther than the sensing radius from
//     the candidate location are judged faulty outright — the CH knows node
//     positions, so claiming an event one could not have sensed is a
//     self-evident false alarm (§2.1).
//   - R is the remaining cluster members; NR is every other event neighbor
//     of the candidate location (silent nodes and nodes whose reports
//     placed the event elsewhere — both contradict this candidate).
//   - The higher CTI wins (§3.1 applied per candidate); trust updates and
//     the decision broadcast follow.
//
// A node can receive verdicts from several candidates in one round (e.g.
// correct for its own cluster and faulty as a silent neighbor of a winning
// fabricated cluster) — each candidate is an independent event decision,
// exactly as §3.3 treats concurrent events.
func (l *Location) decideGroup(reports []cluster.Report, trigger sim.Time) {
	if l.closed || len(reports) == 0 {
		return
	}
	l.scr.seen = resetBoolSet(l.scr.seen, len(reports))
	reports = dedupeByNode(reports, l.scr.seen)
	clusters := l.clusterer.Cluster(reports, l.cfg.RError)

	// Strongest candidates first: order by cumulative trust of members.
	// The keys are computed once per cluster (weights do not change while
	// sorting); summing in the clusters' node-sorted report order matches
	// core.CTI over Nodes(), which the comparator used to recompute per
	// comparison.
	l.scr.ctis = l.scr.ctis[:0]
	for _, ec := range clusters {
		var cti float64
		for _, r := range ec.Reports {
			cti += l.scheme.Weight(r.Node)
		}
		l.scr.ctis = append(l.scr.ctis, cti)
	}
	sort.Stable(byCTI{clusters, l.scr.ctis})

	l.scr.reported = resetBoolSet(l.scr.reported, len(reports))
	reported := l.scr.reported
	for _, r := range reports {
		reported[r.Node] = true
	}

	out := LocationOutcome{TriggerTime: trigger, DecideTime: l.clock.Now()}
	verbose := l.tr.Verbose()
	for _, ec := range clusters {
		cand := l.decideCandidate(ec, reported)
		out.Candidates = append(out.Candidates, cand)
		if verbose {
			l.tr.Emit(float64(l.clock.Now()), trace.KindDecision, -1, "%v", cand)
		} else {
			l.tr.Hit(trace.KindDecision)
		}
	}
	l.decided++
	if l.onDecide != nil {
		l.onDecide(out)
	}
}

// decideCandidate votes on a single event cluster.
func (l *Location) decideCandidate(ec cluster.EventCluster, reported map[int]bool) Candidate {
	cg := ec.Center
	// A reporter whose own position is beyond r_s + r_error of the
	// candidate location could not have sensed any event this cluster
	// might represent: the true event lies within r_error of the center
	// of gravity, and sensing reaches r_s. The slack of r_error keeps
	// borderline-but-honest neighbors out of the violator set.
	maxSense := l.cfg.SenseRadius + l.cfg.RError
	s := &l.scr
	s.members, s.violators = s.members[:0], s.violators[:0]
	for _, rep := range ec.Reports {
		p, ok := l.pos.Pos(rep.Node)
		if !ok {
			continue
		}
		if p.Dist(cg) > maxSense {
			s.violators = append(s.violators, rep.Node)
			continue
		}
		s.members = append(s.members, rep.Node)
	}
	s.memberSet = resetBoolSet(s.memberSet, len(s.members))
	memberSet := s.memberSet
	for _, id := range s.members {
		memberSet[id] = true
	}

	// Event neighbors of the candidate location that are not members of
	// this cluster vote against it: silence and contradictory reports
	// both count as "did not confirm this event".
	s.silent = s.silent[:0]
	for _, id := range l.pos.IDs() {
		if memberSet[id] {
			continue
		}
		p, _ := l.pos.Pos(id)
		if p.Dist(cg) <= l.cfg.SenseRadius {
			s.silent = append(s.silent, id)
		}
	}

	// Arbitrate copies both sides (filterActive), so the scratch slices
	// stay ours to reuse.
	dec := l.scheme.Arbitrate(s.members, s.silent)
	if l.cfg.CoincidenceGuard > 0 {
		// Re-weigh the reporting side with coincident cliques collapsed
		// to their strongest member, then re-decide on the adjusted CTI.
		dec.CTIFor = l.guardedCTI(ec, dec.Reporters)
		dec.Occurred = dec.CTIFor > dec.CTIAgainst
	}
	loc := cg
	if l.cfg.TrustWeightedCentroid && dec.Occurred {
		if w, ok := l.trustWeightedCenter(ec, memberSet); ok {
			loc = w
		}
	}
	l.settle(dec)
	sort.Ints(s.violators)
	for _, id := range s.violators {
		l.judge(id, false)
	}
	// The violator list escapes into the Candidate; copy it exactly sized
	// (nil when empty, like the pre-scratch code).
	violators := append([]int(nil), s.violators...)
	return Candidate{Loc: loc, Occurred: dec.Occurred, Decision: dec, RangeViolators: violators}
}

// guardedCTI sums the reporting side's weights with coincident report
// groups (mutually within CoincidenceGuard) each capped at their single
// heaviest member.
func (l *Location) guardedCTI(ec cluster.EventCluster, reporters []int) float64 {
	s := &l.scr
	s.inSide = resetBoolSet(s.inSide, len(reporters))
	inSide := s.inSide
	for _, id := range reporters {
		inSide[id] = true
	}
	s.reps = s.reps[:0]
	for _, r := range ec.Reports {
		if inSide[r.Node] {
			s.reps = append(s.reps, r)
		}
	}
	reps := s.reps
	// Union-find over coincident pairs.
	s.parent = s.parent[:0]
	for i := range reps {
		s.parent = append(s.parent, i)
	}
	parent := s.parent
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	eps := l.cfg.CoincidenceGuard
	for i := range reps {
		for j := i + 1; j < len(reps); j++ {
			if reps[i].Loc.Dist(reps[j].Loc) <= eps {
				parent[find(i)] = find(j)
			}
		}
	}
	if s.groupMax == nil {
		s.groupMax = make(map[int]float64)
	} else {
		clear(s.groupMax)
	}
	groupMax := s.groupMax
	for i, r := range reps {
		root := find(i)
		if w := l.scheme.Weight(r.Node); w > groupMax[root] {
			groupMax[root] = w
		}
	}
	roots := s.roots[:0]
	for root := range groupMax {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	s.roots = roots
	var sum float64
	for _, root := range roots {
		sum += groupMax[root]
	}
	return sum
}

// trustWeightedCenter averages the member reports weighted by the
// reporters' current trust, using pre-settlement weights so this round's
// verdicts do not feed back into its own location estimate.
func (l *Location) trustWeightedCenter(ec cluster.EventCluster, members map[int]bool) (geo.Point, bool) {
	s := &l.scr
	s.pts, s.weights = s.pts[:0], s.weights[:0]
	for _, rep := range ec.Reports {
		if !members[rep.Node] {
			continue
		}
		s.pts = append(s.pts, rep.Loc)
		s.weights = append(s.weights, l.scheme.Weight(rep.Node))
	}
	return geo.WeightedCentroid(s.pts, s.weights)
}

// dedupeByNode keeps each node's first report in a round; a node sends at
// most one report per event, so duplicates can only arise from replayed
// traffic, which the sink ignores. seen is caller-provided (emptied)
// scratch.
func dedupeByNode(reports []cluster.Report, seen map[int]bool) []cluster.Report {
	out := reports[:0]
	for _, r := range reports {
		if seen[r.Node] {
			continue
		}
		seen[r.Node] = true
		out = append(out, r)
	}
	return out
}
