package aggregator

import (
	"testing"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/sim"
)

func testTrustParams() core.Params {
	return core.Params{Lambda: 0.25, FaultRate: 0.1}
}

func newBinaryHarness(t *testing.T, members []int) (*Binary, *core.Table, *sim.Kernel, *[]BinaryOutcome) {
	t.Helper()
	kernel := sim.New()
	table := core.MustNewTable(testTrustParams())
	var outcomes []BinaryOutcome
	b, err := NewBinary(
		BinaryConfig{Tout: 1, Members: members},
		decision.Adapt(table), kernel,
		func(o BinaryOutcome) { outcomes = append(outcomes, o) },
		nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return b, table, kernel, &outcomes
}

func TestNewBinaryValidation(t *testing.T) {
	kernel := sim.New()
	table := core.MustNewTable(testTrustParams())
	if _, err := NewBinary(BinaryConfig{Tout: 0, Members: []int{1}}, decision.Adapt(table), kernel, nil, nil, nil); err == nil {
		t.Fatal("accepted zero Tout")
	}
	if _, err := NewBinary(BinaryConfig{Tout: 1}, decision.Adapt(table), kernel, nil, nil, nil); err == nil {
		t.Fatal("accepted empty members")
	}
	if _, err := NewBinary(BinaryConfig{Tout: 1, Members: []int{1}}, nil, kernel, nil, nil, nil); err == nil {
		t.Fatal("accepted nil weigher")
	}
	if _, err := NewBinary(BinaryConfig{Tout: 1, Members: []int{1}}, decision.Adapt(table), nil, nil, nil, nil); err == nil {
		t.Fatal("accepted nil kernel")
	}
}

func TestBinaryWindowDeclaresEvent(t *testing.T) {
	members := []int{0, 1, 2, 3, 4}
	b, table, kernel, outcomes := newBinaryHarness(t, members)

	// 3 of 5 report.
	for _, id := range []int{0, 1, 2} {
		b.Deliver(id)
	}
	kernel.RunAll()

	if len(*outcomes) != 1 {
		t.Fatalf("got %d outcomes", len(*outcomes))
	}
	o := (*outcomes)[0]
	if !o.Decision.Occurred {
		t.Fatalf("event not declared: %v", o)
	}
	if o.TriggerTime != 0 || o.DecideTime != 1 {
		t.Fatalf("window times = %v, %v", o.TriggerTime, o.DecideTime)
	}
	// Winners keep full trust; silent losers are penalized.
	for _, id := range []int{0, 1, 2} {
		if table.V(id) != 0 {
			t.Fatalf("reporter %d penalized", id)
		}
	}
	for _, id := range []int{3, 4} {
		if table.V(id) == 0 {
			t.Fatalf("silent node %d not penalized", id)
		}
	}
}

func TestBinaryLoneFalseAlarmRejected(t *testing.T) {
	members := []int{0, 1, 2, 3, 4}
	b, table, kernel, outcomes := newBinaryHarness(t, members)
	b.Deliver(4)
	kernel.RunAll()
	o := (*outcomes)[0]
	if o.Decision.Occurred {
		t.Fatalf("lone false alarm won: %v", o)
	}
	if table.V(4) == 0 {
		t.Fatal("false alarmer not penalized")
	}
	if table.V(0) != 0 {
		t.Fatal("silent majority penalized")
	}
}

func TestBinaryReportsAfterWindowStartNewWindow(t *testing.T) {
	members := []int{0, 1, 2}
	b, _, kernel, outcomes := newBinaryHarness(t, members)
	b.Deliver(0)
	kernel.Run(1) // close the first window
	b.Deliver(1)
	b.Deliver(2)
	kernel.RunAll()
	if len(*outcomes) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(*outcomes))
	}
	if (*outcomes)[0].Decision.Occurred {
		t.Fatal("first lone report won")
	}
	if !(*outcomes)[1].Decision.Occurred {
		t.Fatal("second window with 2/3 reports lost")
	}
	if b.Windows() != 2 {
		t.Fatalf("Windows() = %d", b.Windows())
	}
}

func TestBinaryDuplicateDeliveriesCountOnce(t *testing.T) {
	members := []int{0, 1, 2}
	b, _, kernel, outcomes := newBinaryHarness(t, members)
	b.Deliver(0)
	b.Deliver(0)
	b.Deliver(0)
	kernel.RunAll()
	o := (*outcomes)[0]
	if len(o.Decision.Reporters) != 1 {
		t.Fatalf("duplicates inflated reporters: %v", o.Decision.Reporters)
	}
}

func TestBinaryIgnoresIsolatedReporters(t *testing.T) {
	members := []int{0, 1, 2}
	kernel := sim.New()
	table := core.MustNewTable(core.Params{Lambda: 1, FaultRate: 0, RemovalThreshold: 0.5})
	table.Judge(0, false) // isolate node 0
	if !table.Isolated(0) {
		t.Fatal("setup: node not isolated")
	}
	var outcomes []BinaryOutcome
	b, err := NewBinary(BinaryConfig{Tout: 1, Members: members}, decision.Adapt(table), kernel,
		func(o BinaryOutcome) { outcomes = append(outcomes, o) }, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Deliver(0) // must not even open a window
	kernel.RunAll()
	if len(outcomes) != 0 {
		t.Fatalf("isolated node opened a window: %v", outcomes)
	}
}

func TestBinaryFeedbackBroadcast(t *testing.T) {
	members := []int{0, 1, 2}
	kernel := sim.New()
	table := core.MustNewTable(testTrustParams())
	verdicts := make(map[int]bool)
	b, err := NewBinary(BinaryConfig{Tout: 1, Members: members}, decision.Adapt(table), kernel,
		nil, func(id int, correct bool) { verdicts[id] = correct }, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Deliver(0)
	b.Deliver(1)
	kernel.RunAll()
	want := map[int]bool{0: true, 1: true, 2: false}
	for id, correct := range want {
		if got, ok := verdicts[id]; !ok || got != correct {
			t.Fatalf("verdict[%d] = %v, want %v", id, got, correct)
		}
	}
}

func TestBinaryTrustedMinorityWins(t *testing.T) {
	// After the faulty majority's trust decays, 2 reliable reporters must
	// outvote 3 distrusted silent nodes — the paper's core claim.
	members := []int{0, 1, 2, 3, 4}
	b, table, kernel, outcomes := newBinaryHarness(t, members)
	for _, id := range []int{2, 3, 4} {
		for i := 0; i < 12; i++ {
			table.Judge(id, false)
		}
	}
	b.Deliver(0)
	b.Deliver(1)
	kernel.RunAll()
	o := (*outcomes)[0]
	if !o.Decision.Occurred {
		t.Fatalf("trusted minority lost: %v", o.Decision)
	}
}

func TestPosMap(t *testing.T) {
	m := PosMap{1: {X: 1}, 2: {X: 2}}
	if p, ok := m.Pos(1); !ok || p.X != 1 {
		t.Fatal("Pos lookup failed")
	}
	if _, ok := m.Pos(9); ok {
		t.Fatal("Pos found missing node")
	}
	if len(m.IDs()) != 2 {
		t.Fatalf("IDs = %v", m.IDs())
	}
}

var _ Positions = PosMap(nil) // interface compliance

var _ = geo.Point{} // keep geo import for the location tests in this package
