// Package aggregator implements the cluster-head side of TIBFIT: collecting
// event reports off the channel, running the T_out aggregation windows, and
// turning trust-weighted votes into event decisions.
//
// Two aggregators are provided, mirroring the paper's two detection modes:
//
//   - Binary (§3.1): every cluster member is an event neighbor of every
//     event; the first report opens a T_out window; at expiry the reporter
//     set R and silent set NR face off by cumulative trust index.
//   - Location (§3.2, §3.3): reports carry (r, θ) offsets; the aggregator
//     resolves them to absolute coordinates, groups them — either one
//     window at a time or with the concurrent-event circle protocol — runs
//     the K-means-style clustering, and holds one CTI vote per candidate
//     event cluster, using CH-known node positions to derive each
//     candidate's event-neighbor set.
//
// Both aggregators share one windowing-and-feedback pipeline and are
// agnostic to the decision engine via decision.Scheme: the scheme weighs
// each report, arbitrates each window, and absorbs the post-decision trust
// feedback, which is how the paper's TIBFIT-vs-baseline comparisons (and
// the extension schemes in docs/SCHEMES.md) run through identical code.
package aggregator

import (
	"fmt"
	"sort"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/sim"
	"github.com/tibfit/tibfit/internal/trace"
)

// Feedback receives the per-node verdicts implied by each decision. The
// cluster head broadcasts its decisions; every one-hop member overhears
// them, which is how smart adversaries maintain their trust estimates. The
// simulator delivers that broadcast as a direct callback.
type Feedback func(node int, correct bool)

// BinaryOutcome describes one completed binary aggregation window.
type BinaryOutcome struct {
	// TriggerTime is the arrival of the report that opened the window.
	TriggerTime sim.Time
	// DecideTime is when the window expired and the vote ran.
	DecideTime sim.Time
	// Decision is the CTI vote result.
	Decision core.BinaryDecision
}

// String summarizes the outcome for traces.
func (o BinaryOutcome) String() string {
	return fmt.Sprintf("trigger=%v decide=%v %v", o.TriggerTime, o.DecideTime, o.Decision)
}

// BinaryDecider lets a caller replace the default decide-and-settle step
// — the hook through which the §3.4 shadow-cluster-head panel (or a fault
// injector standing in for a compromised cluster head) takes over the
// decision while the aggregator keeps owning windows and timers. The
// implementation must apply its own trust updates; the returned decision
// is what the cluster head announces. The reporters and silent slices are
// scratch the aggregator reuses between windows — implementations must
// copy anything they keep past the call (core.DecideBinary already does).
type BinaryDecider interface {
	DecideAndSettle(reporters, silent []int) core.BinaryDecision
}

// BinaryConfig configures a binary aggregator.
type BinaryConfig struct {
	// Tout is the aggregation window length T_out.
	Tout sim.Duration
	// Members is the cluster's node set; in the paper's binary experiment
	// every member is an event neighbor of every event.
	Members []int
	// Decider, when non-nil, replaces the default vote+settle step.
	Decider BinaryDecider
	// Alive, when non-nil, reports whether a member is currently able to
	// report (not crashed, battery not depleted). Members for which it
	// returns false are excluded from the silent (NR) set instead of
	// voting "no event" with full CTI weight — the graceful-degradation
	// rule for crash faults. Nil preserves the paper's behaviour: every
	// non-reporter counts against the event.
	Alive func(id int) bool
}

// Binary is the §3.1 binary-event aggregator.
type Binary struct {
	pipeline
	cfg      BinaryConfig
	onDecide func(BinaryOutcome)

	// Report bookkeeping is positional: memberPos maps a member ID to its
	// index in cfg.Members, marks[i] records whether member i reported in
	// the open window, and marked lists the set positions so the window
	// reset touches O(reported) cells instead of clearing a map. Window
	// close is then a single ordered pass over cfg.Members with no hashing.
	memberPos map[int]int
	marks     []bool
	marked    []int

	// scrR and scrNR are the per-window R/NR scratch slices, reused
	// across windows: every consumer of the two sides (Arbitrate and
	// the BinaryDecider implementations) copies what it keeps, so the
	// backing arrays stay ours.
	scrR  []int
	scrNR []int
}

// NewBinary returns a binary aggregator running the given decision scheme
// on the given clock — the simulation kernel in batch runs, a wall-clock
// driver in the online engine. onDecide is invoked after every completed
// window; feedback (optional) receives per-node verdicts.
func NewBinary(cfg BinaryConfig, scheme decision.Scheme, clock Clock,
	onDecide func(BinaryOutcome), feedback Feedback, tr *trace.Trace) (*Binary, error) {
	if cfg.Tout <= 0 {
		return nil, fmt.Errorf("aggregator: Tout must be positive, got %v", cfg.Tout)
	}
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("aggregator: binary aggregator needs at least one member")
	}
	if scheme == nil || clock == nil {
		return nil, fmt.Errorf("aggregator: scheme and clock are required")
	}
	members := make([]int, len(cfg.Members))
	copy(members, cfg.Members)
	cfg.Members = members
	memberPos := make(map[int]int, len(members))
	for i, id := range members {
		memberPos[id] = i
	}
	return &Binary{
		pipeline: pipeline{
			scheme:   scheme,
			clock:    clock,
			feedback: feedback,
			tr:       tr,
		},
		cfg:       cfg,
		onDecide:  onDecide,
		memberPos: memberPos,
		marks:     make([]bool, len(members)),
		marked:    make([]int, 0, len(members)),
		scrR:      make([]int, 0, len(cfg.Members)),
		scrNR:     make([]int, 0, len(cfg.Members)),
	}, nil
}

// Windows returns how many aggregation windows have completed.
func (b *Binary) Windows() int { return b.decided }

// Deliver hands the aggregator one event report that survived the channel.
// The first report of a window opens it and schedules the T_out expiry.
func (b *Binary) Deliver(nodeID int) {
	if b.closed {
		return
	}
	if b.scheme.Isolated(nodeID) {
		return // the sink no longer listens to isolated nodes
	}
	b.openWindow(b.cfg.Tout, b.closeWindow)
	if pos, ok := b.memberPos[nodeID]; ok && !b.marks[pos] {
		b.marks[pos] = true
		b.marked = append(b.marked, pos)
	}
	if b.tr.Verbose() {
		b.tr.Emit(float64(b.clock.Now()), trace.KindReportDelivered, nodeID, "binary report")
	} else {
		b.tr.Hit(trace.KindReportDelivered)
	}
}

// closeWindow runs the §3.1 vote at T_out expiry.
func (b *Binary) closeWindow() {
	if b.closed {
		return
	}
	reporters := b.scrR[:0]
	silent := b.scrNR[:0]
	for i, id := range b.cfg.Members {
		switch {
		case b.marks[i]:
			reporters = append(reporters, id)
		case b.cfg.Alive != nil && !b.cfg.Alive(id):
			// Crashed or depleted: silence carries no information, so the
			// member neither votes "no event" nor has its trust judged.
		default:
			silent = append(silent, id)
		}
	}
	var dec core.BinaryDecision
	if b.cfg.Decider != nil {
		dec = b.cfg.Decider.DecideAndSettle(reporters, silent)
		// The decision broadcast still reaches every member.
		b.relay(dec)
	} else {
		dec = b.scheme.Arbitrate(reporters, silent)
		b.settle(dec)
	}
	b.decided++
	out := BinaryOutcome{
		TriggerTime: b.windowTrigger,
		DecideTime:  b.clock.Now(),
		Decision:    dec,
	}
	if b.tr.Verbose() {
		b.tr.Emit(float64(b.clock.Now()), trace.KindDecision, -1, "%v", dec)
	} else {
		b.tr.Hit(trace.KindDecision)
	}
	b.windowOpen = false
	for _, pos := range b.marked {
		b.marks[pos] = false
	}
	b.marked = b.marked[:0]
	b.scrR, b.scrNR = reporters, silent
	if b.onDecide != nil {
		b.onDecide(out)
	}
}

// Positions exposes the CH's knowledge of cluster-node locations (§2: "the
// locations of the nodes at a given time are known to the CHs").
type Positions interface {
	// Pos returns the node's position and whether the node is known.
	Pos(nodeID int) (geo.Point, bool)
	// IDs returns all known node IDs.
	IDs() []int
}

// PosMap is a map-backed Positions implementation.
type PosMap map[int]geo.Point

// Pos implements Positions.
func (m PosMap) Pos(nodeID int) (geo.Point, bool) {
	p, ok := m[nodeID]
	return p, ok
}

// IDs implements Positions, returning the node IDs in ascending order
// so callers iterating them stay deterministic.
func (m PosMap) IDs() []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
