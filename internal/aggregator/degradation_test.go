package aggregator

import (
	"testing"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/sim"
)

// TestBinaryAliveHookExcludesDownMembers pins graceful degradation: a
// member the Alive hook reports down is left out of the non-reporter
// set, so its silence is neither voted nor trust-penalized.
func TestBinaryAliveHookExcludesDownMembers(t *testing.T) {
	members := []int{0, 1, 2, 3, 4}
	kernel := sim.New()
	table := core.MustNewTable(testTrustParams())
	downed := map[int]bool{3: true, 4: true}
	var outcomes []BinaryOutcome
	b, err := NewBinary(
		BinaryConfig{Tout: 1, Members: members, Alive: func(id int) bool { return !downed[id] }},
		decision.Adapt(table), kernel,
		func(o BinaryOutcome) { outcomes = append(outcomes, o) },
		nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 of the 3 live members report; the 2 down members are silent.
	b.Deliver(0)
	b.Deliver(1)
	kernel.RunAll()

	if len(outcomes) != 1 || !outcomes[0].Decision.Occurred {
		t.Fatalf("outcomes = %+v, want one declared event", outcomes)
	}
	d := outcomes[0].Decision
	if len(d.Silent) != 1 || d.Silent[0] != 2 {
		t.Fatalf("silent set = %v, want only the live non-reporter 2", d.Silent)
	}
	for id := range downed {
		if _, seen := table.Record(id); seen {
			t.Fatalf("down member %d was trust-judged for its silence", id)
		}
	}
	// The live non-reporter loses trust as usual.
	if table.V(2) == 0 {
		t.Fatal("live silent member escaped the penalty")
	}
}

// TestBinaryNilAliveMatchesPaper pins the compatibility default: without
// an Alive hook every silent member lands in the non-reporter set.
func TestBinaryNilAliveMatchesPaper(t *testing.T) {
	members := []int{0, 1, 2}
	b, table, kernel, outcomes := newBinaryHarness(t, members)
	b.Deliver(0)
	b.Deliver(1)
	kernel.RunAll()
	if len(*outcomes) != 1 {
		t.Fatalf("outcomes = %d", len(*outcomes))
	}
	if table.V(2) == 0 {
		t.Fatal("silent member escaped the penalty without an Alive hook")
	}
}

// TestBinaryCloseKillsPendingWindow pins crash semantics: a closed
// aggregator (dead head) absorbs deliveries and never decides.
func TestBinaryCloseKillsPendingWindow(t *testing.T) {
	members := []int{0, 1, 2}
	b, _, kernel, outcomes := newBinaryHarness(t, members)
	b.Deliver(0)
	b.Deliver(1)
	b.Close()
	if !b.Closed() {
		t.Fatal("Closed() false after Close")
	}
	b.Deliver(2)
	kernel.RunAll()
	if len(*outcomes) != 0 {
		t.Fatalf("closed aggregator still decided: %+v", *outcomes)
	}
}

// TestLocationCloseKillsPendingWindow is the location-mode twin.
func TestLocationCloseKillsPendingWindow(t *testing.T) {
	kernel := sim.New()
	table := core.MustNewTable(testTrustParams())
	pos := PosMap{0: {X: 0, Y: 0}, 1: {X: 1, Y: 0}, 2: {X: 0, Y: 1}}
	var decided int
	l, err := NewLocation(LocationConfig{Tout: 1, RError: 5, SenseRadius: 20}, decision.Adapt(table), kernel, pos,
		func(o LocationOutcome) { decided++ }, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Deliver(0, geo.Polar{R: 1})
	l.Deliver(1, geo.Polar{R: 1})
	l.Close()
	if !l.Closed() {
		t.Fatal("Closed() false after Close")
	}
	l.Deliver(2, geo.Polar{R: 1})
	kernel.RunAll()
	if decided != 0 {
		t.Fatalf("closed location aggregator still decided %d times", decided)
	}
}
