package aggregator

import (
	"testing"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/sim"
)

// benchGrid builds a g×g grid of node positions spaced 10 units apart.
func benchGrid(g int) PosMap {
	pos := make(PosMap, g*g)
	id := 0
	for y := 0; y < g; y++ {
		for x := 0; x < g; x++ {
			pos[id] = geo.Point{X: float64(10 + x*10), Y: float64(10 + y*10)}
			id++
		}
	}
	return pos
}

// BenchmarkLocationRound measures one full location aggregation round —
// deliver reports from a 5×5 grid, close the window, cluster, and vote —
// the per-event hot path of Experiments 2-3. The scratch-buffer diet
// shows up in allocs/op here.
func BenchmarkLocationRound(b *testing.B) {
	kernel := sim.New()
	table := core.MustNewTable(core.Params{Lambda: 0.25, FaultRate: 0.1})
	pos := benchGrid(5)
	agg, err := NewLocation(
		LocationConfig{Tout: 1, RError: 5, SenseRadius: 25},
		decision.Adapt(table), kernel, pos, nil, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	event := geo.Point{X: 30, Y: 30}
	ids := pos.IDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range ids {
			origin := pos[id]
			if origin.Dist(event) <= 25 {
				agg.Deliver(id, geo.ToPolar(origin, event))
			}
		}
		kernel.RunAll()
	}
	if agg.Rounds() != b.N {
		b.Fatalf("rounds = %d, want %d", agg.Rounds(), b.N)
	}
}

// BenchmarkBinaryWindow measures one binary aggregation window over a
// 25-member cluster: deliver, expire, vote, settle.
func BenchmarkBinaryWindow(b *testing.B) {
	kernel := sim.New()
	table := core.MustNewTable(core.Params{Lambda: 0.1, FaultRate: 0.05})
	members := make([]int, 25)
	for i := range members {
		members[i] = i
	}
	agg, err := NewBinary(
		BinaryConfig{Tout: 1, Members: members},
		decision.Adapt(table), kernel, nil, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range members[:18] {
			agg.Deliver(id)
		}
		kernel.RunAll()
	}
	if agg.Windows() != b.N {
		b.Fatalf("windows = %d, want %d", agg.Windows(), b.N)
	}
}
