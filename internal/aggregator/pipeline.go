package aggregator

import (
	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/sim"
	"github.com/tibfit/tibfit/internal/trace"
)

// pipeline is the windowing-and-feedback machinery shared by the binary
// and location aggregators: the decision scheme, the simulation kernel,
// the T_out window lifecycle, the verdict settlement (trust updates plus
// the overheard decision broadcast), and the lifecycle/accounting state.
// What differs between the two aggregators — how reports accumulate and
// how the two sides of a vote are formed — stays in Binary and Location;
// everything downstream of "we have the two sides" lives here.
type pipeline struct {
	scheme   decision.Scheme
	kernel   *sim.Kernel
	feedback Feedback
	tr       *trace.Trace

	windowOpen    bool
	windowTrigger sim.Time
	decided       int
	closed        bool
}

// Close marks the aggregator dead: its cluster head crashed, so buffered
// reports and any pending window or circle deadline die with it. Close is
// idempotent and irreversible; failover builds a fresh aggregator for the
// new head.
func (p *pipeline) Close() { p.closed = true }

// Closed reports whether Close has been called.
func (p *pipeline) Closed() bool { return p.closed }

// openWindow starts a T_out window at the current time if none is open,
// scheduling expire at its deadline.
func (p *pipeline) openWindow(tout sim.Duration, expire func()) {
	if p.windowOpen {
		return
	}
	p.windowOpen = true
	p.windowTrigger = p.kernel.Now()
	p.kernel.After(tout, expire)
}

// judge commits one verdict to the scheme and relays it to the feedback
// sink — the decision broadcast every one-hop member overhears.
//
//hot:path
func (p *pipeline) judge(node int, correct bool) {
	p.scheme.Judge(node, correct)
	if p.feedback != nil {
		p.feedback(node, correct)
	}
}

// settle commits a decision's implied verdicts: reporters were correct iff
// the event occurred, silent event neighbors iff it did not.
//
//hot:path
func (p *pipeline) settle(d core.BinaryDecision) {
	for _, id := range d.Reporters {
		p.judge(id, d.Occurred)
	}
	for _, id := range d.Silent {
		p.judge(id, !d.Occurred)
	}
}

// relay broadcasts a decision's verdicts without judging — for the
// BinaryDecider path, where the decider already applied its own trust
// updates but the broadcast still reaches every member.
func (p *pipeline) relay(d core.BinaryDecision) {
	if p.feedback == nil {
		return
	}
	for _, id := range d.Reporters {
		p.feedback(id, d.Occurred)
	}
	for _, id := range d.Silent {
		p.feedback(id, !d.Occurred)
	}
}
