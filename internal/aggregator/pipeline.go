package aggregator

import (
	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/sim"
	"github.com/tibfit/tibfit/internal/trace"
)

// Clock is the narrow time seam the windowing pipeline runs on: a
// readable current time and one-shot timers. It is all the decision path
// knows about time — the pipeline never touches the simulation kernel
// directly — so the same windowing, arbitration, and feedback code runs
// batch (driven by *sim.Kernel, which satisfies Clock via AfterFunc) and
// online (driven by engine.WallClock against real time).
//
// The ordering contract callbacks rely on (docs/DETERMINISM.md,
// invariant 8): callbacks whose deadlines coincide fire in the order
// they were scheduled — the kernel's (time, seq) total order, which the
// wall-clock driver reproduces with its own (deadline, seq) heap. A
// report and a window expiry landing at the same instant therefore
// resolve in schedule order: a report event enqueued before the window
// opened is delivered first and joins the closing window, while one
// enqueued after the expiry was armed arrives second and opens the
// next window. Both drivers pin this in
// internal/engine's same-instant regression tests.
//
// This is the consumer-side declaration of the seam; internal/engine
// re-exports the identical interface as engine.Clock next to its clock
// drivers, keeping the dependency arrow pointing downward.
type Clock interface {
	// Now returns the current time in virtual units.
	Now() sim.Time
	// AfterFunc schedules fn to run d units from now. Non-positive d
	// means "at the current instant, after already-scheduled work".
	AfterFunc(d sim.Duration, fn func())
}

// pipeline is the windowing-and-feedback machinery shared by the binary
// and location aggregators: the decision scheme, the Clock that drives
// the T_out window lifecycle, the verdict settlement (trust updates plus
// the overheard decision broadcast), and the lifecycle/accounting state.
// What differs between the two aggregators — how reports accumulate and
// how the two sides of a vote are formed — stays in Binary and Location;
// everything downstream of "we have the two sides" lives here.
type pipeline struct {
	scheme   decision.Scheme
	clock    Clock
	feedback Feedback
	tr       *trace.Trace

	windowOpen    bool
	windowTrigger sim.Time
	decided       int
	closed        bool
}

// Close marks the aggregator dead: its cluster head crashed, so buffered
// reports and any pending window or circle deadline die with it. Close is
// idempotent and irreversible; failover builds a fresh aggregator for the
// new head.
func (p *pipeline) Close() { p.closed = true }

// Closed reports whether Close has been called.
func (p *pipeline) Closed() bool { return p.closed }

// openWindow starts a T_out window at the current time if none is open,
// scheduling expire at its deadline.
func (p *pipeline) openWindow(tout sim.Duration, expire func()) {
	if p.windowOpen {
		return
	}
	p.windowOpen = true
	p.windowTrigger = p.clock.Now()
	p.clock.AfterFunc(tout, expire)
}

// judge commits one verdict to the scheme and relays it to the feedback
// sink — the decision broadcast every one-hop member overhears.
//
//hot:path
func (p *pipeline) judge(node int, correct bool) {
	p.scheme.Judge(node, correct)
	if p.feedback != nil {
		p.feedback(node, correct)
	}
}

// settle commits a decision's implied verdicts: reporters were correct iff
// the event occurred, silent event neighbors iff it did not.
//
//hot:path
func (p *pipeline) settle(d core.BinaryDecision) {
	for _, id := range d.Reporters {
		p.judge(id, d.Occurred)
	}
	for _, id := range d.Silent {
		p.judge(id, !d.Occurred)
	}
}

// relay broadcasts a decision's verdicts without judging — for the
// BinaryDecider path, where the decider already applied its own trust
// updates but the broadcast still reaches every member.
func (p *pipeline) relay(d core.BinaryDecision) {
	if p.feedback == nil {
		return
	}
	for _, id := range d.Reporters {
		p.feedback(id, d.Occurred)
	}
	for _, id := range d.Silent {
		p.feedback(id, !d.Occurred)
	}
}
