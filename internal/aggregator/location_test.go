package aggregator

import (
	"math"
	"testing"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/sim"
)

// locHarness wires a location aggregator over a 3×3 grid of nodes spaced
// 10 units apart, sensing radius 20, r_error 5.
type locHarness struct {
	agg      *Location
	table    *core.Table
	kernel   *sim.Kernel
	pos      PosMap
	outcomes []LocationOutcome
	verdicts map[int][]bool
}

func newLocHarness(t *testing.T, concurrent bool) *locHarness {
	t.Helper()
	h := &locHarness{
		kernel:   sim.New(),
		table:    core.MustNewTable(testTrustParams()),
		pos:      make(PosMap),
		verdicts: make(map[int][]bool),
	}
	id := 0
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			h.pos[id] = geo.Point{X: float64(10 + x*10), Y: float64(10 + y*10)}
			id++
		}
	}
	agg, err := NewLocation(
		LocationConfig{Tout: 1, RError: 5, SenseRadius: 20, Concurrent: concurrent},
		decision.Adapt(h.table), h.kernel, h.pos,
		func(o LocationOutcome) { h.outcomes = append(h.outcomes, o) },
		func(id int, correct bool) { h.verdicts[id] = append(h.verdicts[id], correct) },
		nil)
	if err != nil {
		t.Fatal(err)
	}
	h.agg = agg
	return h
}

// report sends node id's report claiming the event is at loc.
func (h *locHarness) report(id int, loc geo.Point) {
	h.agg.Deliver(id, geo.ToPolar(h.pos[id], loc))
}

func TestNewLocationValidation(t *testing.T) {
	kernel := sim.New()
	table := core.MustNewTable(testTrustParams())
	pos := PosMap{}
	bad := []LocationConfig{
		{Tout: 0, RError: 5, SenseRadius: 20},
		{Tout: 1, RError: 0, SenseRadius: 20},
		{Tout: 1, RError: 5, SenseRadius: 0},
	}
	for i, cfg := range bad {
		if _, err := NewLocation(cfg, decision.Adapt(table), kernel, pos, nil, nil, nil); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	good := LocationConfig{Tout: 1, RError: 5, SenseRadius: 20}
	if _, err := NewLocation(good, nil, kernel, pos, nil, nil, nil); err == nil {
		t.Fatal("accepted nil weigher")
	}
	if _, err := NewLocation(good, decision.Adapt(table), nil, pos, nil, nil, nil); err == nil {
		t.Fatal("accepted nil kernel")
	}
	if _, err := NewLocation(good, decision.Adapt(table), kernel, nil, nil, nil, nil); err == nil {
		t.Fatal("accepted nil positions")
	}
}

func TestLocationDetectsWellReportedEvent(t *testing.T) {
	h := newLocHarness(t, false)
	ev := geo.Point{X: 20, Y: 20} // center node's position: everyone senses it
	for id := 0; id < 9; id++ {
		h.report(id, geo.Point{X: ev.X + 0.5, Y: ev.Y - 0.5})
	}
	h.kernel.RunAll()

	if len(h.outcomes) != 1 {
		t.Fatalf("got %d outcomes", len(h.outcomes))
	}
	declared := h.outcomes[0].Declared()
	if len(declared) != 1 {
		t.Fatalf("declared %v", declared)
	}
	if declared[0].Dist(ev) > 5 {
		t.Fatalf("declared at %v, true %v", declared[0], ev)
	}
	for id := 0; id < 9; id++ {
		if h.table.V(id) != 0 {
			t.Fatalf("reporter %d penalized", id)
		}
	}
}

func TestLocationSilentNeighborsPenalized(t *testing.T) {
	h := newLocHarness(t, false)
	ev := geo.Point{X: 20, Y: 20}
	for id := 0; id < 6; id++ { // 6 report, 3 stay silent
		h.report(id, ev)
	}
	h.kernel.RunAll()
	for id := 6; id < 9; id++ {
		if h.table.V(id) == 0 {
			t.Fatalf("silent event neighbor %d not penalized", id)
		}
	}
}

func TestLocationOutlierThrownOutAndPenalized(t *testing.T) {
	// §3.2: "This design successfully throws out event reports from nodes
	// that make a localization error of more than r_error."
	h := newLocHarness(t, false)
	ev := geo.Point{X: 20, Y: 20}
	for id := 0; id < 8; id++ {
		h.report(id, ev)
	}
	h.report(8, geo.Point{X: 32, Y: 32}) // badly localized (node 8 is at (30,30))
	h.kernel.RunAll()

	declared := h.outcomes[0].Declared()
	if len(declared) != 1 {
		t.Fatalf("declared %v", declared)
	}
	if h.table.V(8) == 0 {
		t.Fatal("outlier not penalized")
	}
	if h.table.V(0) != 0 {
		t.Fatal("accurate reporter penalized")
	}
}

func TestLocationFabricatedClusterRejected(t *testing.T) {
	// A minority fabricating a common location loses the CTI vote against
	// the silent honest neighbors of that location.
	h := newLocHarness(t, false)
	lie := geo.Point{X: 20, Y: 20}
	h.report(0, lie)
	h.report(1, lie)
	h.kernel.RunAll()

	if got := h.outcomes[0].Declared(); len(got) != 0 {
		t.Fatalf("fabricated event declared: %v", got)
	}
	if h.table.V(0) == 0 || h.table.V(1) == 0 {
		t.Fatal("fabricators not penalized")
	}
}

func TestLocationRangeViolatorJudgedFaulty(t *testing.T) {
	h := newLocHarness(t, false)
	// Node 0 sits at (10,10); it claims an event at (48, 48): farther
	// than senseRadius+rError from it. Honest nodes near the claim can't
	// exist (no event), so the cluster is node 0 alone.
	claim := geo.Point{X: 48, Y: 48}
	if h.pos[0].Dist(claim) <= 25 {
		t.Fatal("setup: claim not a range violation")
	}
	h.report(0, claim)
	h.kernel.RunAll()

	if len(h.outcomes) != 1 {
		t.Fatalf("got %d outcomes", len(h.outcomes))
	}
	cand := h.outcomes[0].Candidates[0]
	if len(cand.RangeViolators) != 1 || cand.RangeViolators[0] != 0 {
		t.Fatalf("violators = %v", cand.RangeViolators)
	}
	if cand.Occurred {
		t.Fatal("range violation declared an event")
	}
	if h.table.V(0) == 0 {
		t.Fatal("violator not penalized")
	}
	if len(h.verdicts[0]) == 0 || h.verdicts[0][0] {
		t.Fatalf("violator verdicts = %v, want faulty", h.verdicts[0])
	}
}

func TestLocationIsolatedReporterIgnored(t *testing.T) {
	kernel := sim.New()
	table := core.MustNewTable(core.Params{Lambda: 1, FaultRate: 0, RemovalThreshold: 0.5})
	table.Judge(3, false)
	pos := PosMap{3: {X: 10, Y: 10}}
	var outcomes []LocationOutcome
	agg, err := NewLocation(LocationConfig{Tout: 1, RError: 5, SenseRadius: 20},
		decision.Adapt(table), kernel, pos, func(o LocationOutcome) { outcomes = append(outcomes, o) }, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg.Deliver(3, geo.Polar{R: 1})
	kernel.RunAll()
	if len(outcomes) != 0 {
		t.Fatal("isolated node's report processed")
	}
}

func TestLocationUnknownSenderIgnored(t *testing.T) {
	h := newLocHarness(t, false)
	h.agg.Deliver(999, geo.Polar{R: 1})
	h.kernel.RunAll()
	if len(h.outcomes) != 0 {
		t.Fatal("unknown sender's report processed")
	}
}

func TestLocationTwoConcurrentEvents(t *testing.T) {
	h := newLocHarness(t, true)
	evA := geo.Point{X: 12, Y: 12}
	evB := geo.Point{X: 38, Y: 38}
	// Every node reports the event it senses; nodes 5, 7, 8 are event
	// neighbors of B, the rest of A.
	for _, id := range []int{0, 1, 2, 3, 4, 6} {
		h.report(id, evA)
	}
	for _, id := range []int{5, 7, 8} {
		h.report(id, evB)
	}
	h.kernel.RunAll()

	var declared []geo.Point
	for _, o := range h.outcomes {
		declared = append(declared, o.Declared()...)
	}
	if len(declared) != 2 {
		t.Fatalf("declared %d events: %v", len(declared), declared)
	}
	foundA, foundB := false, false
	for _, d := range declared {
		if d.Dist(evA) <= 5 {
			foundA = true
		}
		if d.Dist(evB) <= 5 {
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Fatalf("concurrent events not separated: %v", declared)
	}
}

func TestLocationConcurrentRoundsCount(t *testing.T) {
	h := newLocHarness(t, true)
	h.report(0, geo.Point{X: 12, Y: 12})
	h.kernel.RunAll()
	if h.agg.Rounds() != 1 {
		t.Fatalf("Rounds() = %d", h.agg.Rounds())
	}
}

func TestLocationPolarConversionAccuracy(t *testing.T) {
	// The CH must resolve (r, θ) against the *sender's* position.
	h := newLocHarness(t, false)
	ev := geo.Point{X: 20, Y: 20}
	off := geo.ToPolar(h.pos[8], ev) // node 8 at (30,30)
	h.agg.Deliver(8, off)
	h.kernel.RunAll()
	cand := h.outcomes[0].Candidates[0]
	if cand.Loc.Dist(ev) > 1e-9 {
		t.Fatalf("resolved %v, want %v", cand.Loc, ev)
	}
}

func TestLocationDecisionMarginMath(t *testing.T) {
	h := newLocHarness(t, false)
	ev := geo.Point{X: 20, Y: 20}
	for id := 0; id < 9; id++ {
		h.report(id, ev)
	}
	h.kernel.RunAll()
	cand := h.outcomes[0].Candidates[0]
	if math.Abs(cand.Decision.CTIFor-9) > 1e-9 || cand.Decision.CTIAgainst != 0 {
		t.Fatalf("CTIs = %v / %v", cand.Decision.CTIFor, cand.Decision.CTIAgainst)
	}
}

func TestTrustWeightedCentroidPullsTowardTrusted(t *testing.T) {
	// Two trusted reporters at the true location, one distrusted reporter
	// pulling the plain centroid away: the weighted location must land
	// nearer the trusted pair.
	kernel := sim.New()
	table := core.MustNewTable(testTrustParams())
	for i := 0; i < 10; i++ {
		table.Judge(2, false) // node 2 is heavily distrusted
	}
	pos := PosMap{
		0: {X: 10, Y: 10},
		1: {X: 20, Y: 10},
		2: {X: 15, Y: 20},
	}
	var outcomes []LocationOutcome
	agg, err := NewLocation(
		LocationConfig{Tout: 1, RError: 5, SenseRadius: 25, TrustWeightedCentroid: true},
		decision.Adapt(table), kernel, pos,
		func(o LocationOutcome) { outcomes = append(outcomes, o) }, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	truth := geo.Point{X: 15, Y: 12}
	skewed := geo.Point{X: 18, Y: 15} // node 2's bad report, within r_error
	agg.Deliver(0, geo.ToPolar(pos[0], truth))
	agg.Deliver(1, geo.ToPolar(pos[1], truth))
	agg.Deliver(2, geo.ToPolar(pos[2], skewed))
	kernel.RunAll()

	if len(outcomes) != 1 || len(outcomes[0].Declared()) != 1 {
		t.Fatalf("outcomes = %v", outcomes)
	}
	declared := outcomes[0].Declared()[0]
	plainCG, _ := geo.Centroid([]geo.Point{truth, truth, skewed})
	if declared.Dist(truth) >= plainCG.Dist(truth) {
		t.Fatalf("weighted location %v no closer to truth than plain cg %v",
			declared, plainCG)
	}
}

func TestTrustWeightedCentroidOffByDefault(t *testing.T) {
	h := newLocHarness(t, false)
	// The default harness config leaves the option unset; declared
	// locations are plain centroids.
	ev := geo.Point{X: 20, Y: 20}
	for id := 0; id < 9; id++ {
		h.report(id, geo.Point{X: ev.X + float64(id%3) - 1, Y: ev.Y})
	}
	h.kernel.RunAll()
	declared := h.outcomes[0].Declared()
	if len(declared) != 1 {
		t.Fatalf("declared = %v", declared)
	}
	cg, _ := geo.Centroid(func() []geo.Point {
		var pts []geo.Point
		for id := 0; id < 9; id++ {
			pts = append(pts, geo.Point{X: ev.X + float64(id%3) - 1, Y: ev.Y})
		}
		return pts
	}())
	if declared[0].Dist(cg) > 1e-9 {
		t.Fatalf("default location %v is not the plain centroid %v", declared[0], cg)
	}
}

// TestDeclaredCandidatesSeparated: within one aggregation round, candidate
// locations inherit the clustering invariant — pairwise farther apart than
// r_error — so the CH can never declare two "events" on top of each other.
func TestDeclaredCandidatesSeparated(t *testing.T) {
	h := newLocHarness(t, false)
	// A messy round: two tight groups plus scattered outliers.
	h.report(0, geo.Point{X: 12, Y: 12})
	h.report(1, geo.Point{X: 13, Y: 12})
	h.report(3, geo.Point{X: 12, Y: 13})
	h.report(5, geo.Point{X: 38, Y: 38})
	h.report(7, geo.Point{X: 39, Y: 38})
	h.report(8, geo.Point{X: 37, Y: 39})
	h.report(2, geo.Point{X: 25, Y: 24})
	h.report(6, geo.Point{X: 24, Y: 40})
	h.kernel.RunAll()

	if len(h.outcomes) != 1 {
		t.Fatalf("got %d outcomes", len(h.outcomes))
	}
	cands := h.outcomes[0].Candidates
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			if d := cands[i].Loc.Dist(cands[j].Loc); d <= 5 {
				t.Fatalf("candidates %v and %v only %v apart", cands[i].Loc, cands[j].Loc, d)
			}
		}
	}
}
