package sparse

import (
	"slices"
	"testing"

	"github.com/tibfit/tibfit/internal/rng"
)

func TestVectorMatchesMap(t *testing.T) {
	src := rng.New(11)
	var v Vector[float64]
	ref := map[int]float64{}
	for op := 0; op < 5000; op++ {
		id := src.Intn(300)
		switch src.Intn(3) {
		case 0: // upsert-write
			val := src.Float64()
			*v.Upsert(id) = val
			ref[id] = val
		case 1: // find
			got := v.Find(id)
			want, ok := ref[id]
			if ok != (got != nil) {
				t.Fatalf("op %d: Find(%d) presence %v, want %v", op, id, got != nil, ok)
			}
			if ok && *got != want {
				t.Fatalf("op %d: Find(%d) = %g, want %g", op, id, *got, want)
			}
		case 2: // read-modify-write through Upsert
			*v.Upsert(id) += 1
			ref[id]++
		}
	}
	if v.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", v.Len(), len(ref))
	}
	ids := v.IDs()
	if !slices.IsSorted(ids) {
		t.Fatalf("IDs not sorted: %v", ids)
	}
	for i, id := range ids {
		_, val := v.At(i)
		if *val != ref[id] {
			t.Fatalf("At(%d): id %d = %g, want %g", i, id, *val, ref[id])
		}
	}
	seen := 0
	v.Scan(func(id int, val *float64) bool {
		if *val != ref[id] {
			t.Fatalf("Scan: id %d = %g, want %g", id, *val, ref[id])
		}
		seen++
		return true
	})
	if seen != len(ref) {
		t.Fatalf("Scan visited %d entries, want %d", seen, len(ref))
	}
}

func TestGetMatchesFind(t *testing.T) {
	var v Vector[int32]
	for _, id := range []int{4, 9, 1, 100, 42} {
		*v.Upsert(id) = int32(id * 10)
	}
	for id := 0; id <= 110; id++ {
		got, ok := v.Get(id)
		p := v.Find(id)
		if ok != (p != nil) {
			t.Fatalf("Get(%d) presence %v disagrees with Find %v", id, ok, p)
		}
		if ok && got != *p {
			t.Fatalf("Get(%d) = %d, Find = %d", id, got, *p)
		}
		if !ok && got != 0 {
			t.Fatalf("Get(%d) miss = %d, want zero value", id, got)
		}
	}
}

func TestUpsertTailFastPathDoesNotShift(t *testing.T) {
	var v Vector[int]
	for id := 0; id < 1000; id += 2 {
		*v.Upsert(id) = id * 10
	}
	allocs := testing.AllocsPerRun(100, func() {
		// Overwrites of existing tail entries must not grow or shift.
		*v.Upsert(998) = 7
	})
	if allocs != 0 {
		t.Fatalf("tail overwrite allocates %.0f objects/op, want 0", allocs)
	}
	if got := v.Find(996); got == nil || *got != 9960 {
		t.Fatalf("neighbor entry disturbed: %v", got)
	}
}

func TestMergeSorted(t *testing.T) {
	var v Vector[string]
	*v.Upsert(2) = "b"
	*v.Upsert(5) = "e"
	*v.Upsert(9) = "i"
	v.MergeSorted([]int{1, 5, 10}, []string{"A", "E", "J"})
	wantIDs := []int{1, 2, 5, 9, 10}
	if !slices.Equal(v.IDs(), wantIDs) {
		t.Fatalf("merged IDs %v, want %v", v.IDs(), wantIDs)
	}
	for i, want := range []string{"A", "b", "E", "i", "J"} {
		_, val := v.At(i)
		if *val != want {
			t.Fatalf("entry %d = %q, want %q", i, *val, want)
		}
	}
	// Tail-append fast path.
	v.MergeSorted([]int{11, 12}, []string{"K", "L"})
	if v.Len() != 7 || *v.Find(12) != "L" {
		t.Fatalf("tail merge failed: len=%d", v.Len())
	}
	// Empty merge is a no-op.
	v.MergeSorted(nil, nil)
	if v.Len() != 7 {
		t.Fatalf("empty merge changed len to %d", v.Len())
	}
}

func TestMergeSortedRejectsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MergeSorted accepted an unsorted input")
		}
	}()
	var v Vector[int]
	v.MergeSorted([]int{3, 3}, []int{1, 2})
}

func TestResetAndClone(t *testing.T) {
	var v Vector[int]
	*v.Upsert(4) = 40
	*v.Upsert(8) = 80
	c := v.Clone()
	v.Reset()
	if v.Len() != 0 {
		t.Fatalf("Reset left %d entries", v.Len())
	}
	if c.Len() != 2 || *c.Find(4) != 40 || *c.Find(8) != 80 {
		t.Fatal("Clone does not survive Reset of the original")
	}
	*v.Upsert(1) = 10
	if c.Find(1) != nil {
		t.Fatal("Clone aliases the original's storage")
	}
}
