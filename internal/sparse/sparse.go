// Package sparse provides CSR-style sparse vectors — parallel slices of
// sorted integer IDs and values, looked up by binary search — modeled on
// the entry vectors of go-eigentrust's pkg/sparse.
//
// The trust tables (core.Table, the station's CH-trust ledger) use these
// in place of dense maps so that memory is O(live entries), iteration is
// a cache-friendly in-order walk with no sort at the call site, and a
// window-close feedback pass touches each cache line exactly once. ID
// order is the only iteration order, so replacing a map can never leak
// map-range nondeterminism into campaign output.
package sparse

import "sort"

// Vector is a sparse vector of V keyed by non-negative integer ID.
// Entries are stored in ascending ID order. The zero value is empty and
// ready to use.
type Vector[V any] struct {
	ids  []int
	vals []V
}

// Len returns the number of live entries.
func (v *Vector[V]) Len() int { return len(v.ids) }

// search returns the insertion position of id in the sorted ID slice.
//
//hot:path
func (v *Vector[V]) search(id int) int {
	// Inlined sort.SearchInts: the comparison is a machine int compare,
	// and the explicit loop keeps the hot lookup free of func values.
	lo, hi := 0, len(v.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Find returns a pointer to the value stored for id, or nil when absent.
// The pointer is invalidated by the next mutating call.
//
//hot:path
func (v *Vector[V]) Find(id int) *V {
	i := v.search(id)
	if i < len(v.ids) && v.ids[i] == id {
		return &v.vals[i]
	}
	return nil
}

// Get returns the value stored for id by value, with a presence flag —
// the read-only lookup concurrent readers use (Find's pointer would
// alias the vector's storage; a copied value cannot). The vector itself
// must still be immutable or externally synchronized while Get runs.
//
//hot:path
func (v *Vector[V]) Get(id int) (V, bool) {
	i := v.search(id)
	if i < len(v.ids) && v.ids[i] == id {
		return v.vals[i], true
	}
	var zero V
	return zero, false
}

// Upsert returns a pointer to the value stored for id, inserting a zero
// value first when absent. Appending in ascending ID order hits the O(1)
// tail fast path; out-of-order inserts shift the tail. The pointer is
// invalidated by the next mutating call.
//
//hot:path
func (v *Vector[V]) Upsert(id int) *V {
	if n := len(v.ids); n == 0 || v.ids[n-1] < id {
		var zero V
		v.ids = append(v.ids, id)
		v.vals = append(v.vals, zero)
		return &v.vals[len(v.vals)-1]
	}
	i := v.search(id)
	if i < len(v.ids) && v.ids[i] == id {
		return &v.vals[i]
	}
	var zero V
	v.ids = append(v.ids, 0)
	v.vals = append(v.vals, zero)
	copy(v.ids[i+1:], v.ids[i:])
	copy(v.vals[i+1:], v.vals[i:])
	v.ids[i] = id
	v.vals[i] = zero
	return &v.vals[i]
}

// IDs returns the live IDs in ascending order. The slice is a view into
// the vector's storage: callers must not modify it, and it is invalidated
// by the next mutating call.
func (v *Vector[V]) IDs() []int { return v.ids }

// At returns the i-th entry in ID order.
//
//hot:path
func (v *Vector[V]) At(i int) (int, *V) { return v.ids[i], &v.vals[i] }

// Scan calls fn for each entry in ascending ID order until fn returns
// false. This is the one-pass cache-line walk window close uses.
//
//hot:path
func (v *Vector[V]) Scan(fn func(id int, val *V) bool) {
	for i := range v.ids {
		if !fn(v.ids[i], &v.vals[i]) {
			return
		}
	}
}

// Reset empties the vector, keeping capacity for reuse.
func (v *Vector[V]) Reset() {
	v.ids = v.ids[:0]
	v.vals = v.vals[:0]
}

// Clone returns a deep copy of the vector's structure. Values are copied
// by assignment; pointer-typed V still aliases the pointees.
func (v *Vector[V]) Clone() Vector[V] {
	var c Vector[V]
	c.ids = append(c.ids, v.ids...)
	c.vals = append(c.vals, v.vals...)
	return c
}

// MergeSorted overwrites (or inserts) the given entries, which must be
// sorted by ascending ID with no duplicates, in one linear merge pass —
// O(existing + new) instead of O(new × existing) repeated Upserts. It
// panics when the input violates the ordering contract, because a
// silently mis-merged trust ledger would be far harder to debug.
func (v *Vector[V]) MergeSorted(ids []int, vals []V) {
	if len(ids) != len(vals) {
		panic("sparse: MergeSorted length mismatch")
	}
	if len(ids) == 0 {
		return
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			panic("sparse: MergeSorted input not strictly ascending")
		}
	}
	// Fast path: everything lands after the current tail.
	if n := len(v.ids); n == 0 || v.ids[n-1] < ids[0] {
		v.ids = append(v.ids, ids...)
		v.vals = append(v.vals, vals...)
		return
	}
	mergedIDs := make([]int, 0, len(v.ids)+len(ids))
	mergedVals := make([]V, 0, len(v.vals)+len(vals))
	i, j := 0, 0
	for i < len(v.ids) && j < len(ids) {
		switch {
		case v.ids[i] < ids[j]:
			mergedIDs = append(mergedIDs, v.ids[i])
			mergedVals = append(mergedVals, v.vals[i])
			i++
		case v.ids[i] > ids[j]:
			mergedIDs = append(mergedIDs, ids[j])
			mergedVals = append(mergedVals, vals[j])
			j++
		default: // overwrite
			mergedIDs = append(mergedIDs, ids[j])
			mergedVals = append(mergedVals, vals[j])
			i++
			j++
		}
	}
	mergedIDs = append(mergedIDs, v.ids[i:]...)
	mergedVals = append(mergedVals, v.vals[i:]...)
	mergedIDs = append(mergedIDs, ids[j:]...)
	mergedVals = append(mergedVals, vals[j:]...)
	v.ids, v.vals = mergedIDs, mergedVals
}

// SortIDs sorts ids ascending in place — the helper callers use to
// canonicalize map keys before a MergeSorted or an ordered rebuild.
func SortIDs(ids []int) { sort.Ints(ids) }
