package node

import (
	"math"
	"testing"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/energy"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
)

func testConfig() Config {
	return Config{
		NER:            0.01,
		MissProb:       0.5,
		FalseAlarmProb: 0.1,
		SigmaCorrect:   1.6,
		SigmaFaulty:    4.25,
		SenseRadius:    20,
		LowerTI:        0.5,
		UpperTI:        0.8,
		Trust:          core.Params{Lambda: 0.25, FaultRate: 0.1},
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"valid", func(*Config) {}, false},
		{"NER above one", func(c *Config) { c.NER = 1.5 }, true},
		{"negative miss", func(c *Config) { c.MissProb = -0.1 }, true},
		{"FA above one", func(c *Config) { c.FalseAlarmProb = 2 }, true},
		{"negative sigma", func(c *Config) { c.SigmaCorrect = -1 }, true},
		{"inverted hysteresis", func(c *Config) { c.LowerTI, c.UpperTI = 0.9, 0.5 }, true},
		{"bad collusion prob", func(c *Config) { c.CollusionSilenceProb = -1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %t", err, tt.wantErr)
			}
		})
	}
}

func TestNewRejectsNilSource(t *testing.T) {
	if _, err := New(1, geo.Point{}, Correct, testConfig(), nil); err == nil {
		t.Fatal("New accepted nil rng")
	}
}

func TestKindPredicates(t *testing.T) {
	tests := []struct {
		kind   Kind
		faulty bool
		smart  bool
		name   string
	}{
		{Correct, false, false, "correct"},
		{Level0, true, false, "level0"},
		{Level1, true, true, "level1"},
		{Level2, true, true, "level2"},
		{Level3, true, true, "level3"},
	}
	for _, tt := range tests {
		if tt.kind.Faulty() != tt.faulty || tt.kind.Smart() != tt.smart {
			t.Fatalf("%v: Faulty=%t Smart=%t", tt.kind, tt.kind.Faulty(), tt.kind.Smart())
		}
		if tt.kind.String() != tt.name {
			t.Fatalf("String() = %q, want %q", tt.kind.String(), tt.name)
		}
	}
}

func TestCorrectNodeBinaryRates(t *testing.T) {
	cfg := testConfig()
	cfg.NER = 0.05
	n := MustNew(1, geo.Point{}, Correct, cfg, rng.New(1))
	const trials = 100000
	misses, falseAlarms := 0, 0
	for i := 0; i < trials; i++ {
		if !n.SenseBinary(true) {
			misses++
		}
		if n.SenseBinary(false) {
			falseAlarms++
		}
	}
	if rate := float64(misses) / trials; math.Abs(rate-0.05) > 0.005 {
		t.Fatalf("miss rate = %v, want ~0.05", rate)
	}
	if rate := float64(falseAlarms) / trials; math.Abs(rate-0.05) > 0.005 {
		t.Fatalf("false-alarm rate = %v, want ~0.05", rate)
	}
}

func TestLevel0BinaryRates(t *testing.T) {
	n := MustNew(1, geo.Point{}, Level0, testConfig(), rng.New(2))
	const trials = 100000
	misses, falseAlarms := 0, 0
	for i := 0; i < trials; i++ {
		if !n.SenseBinary(true) {
			misses++
		}
		if n.SenseBinary(false) {
			falseAlarms++
		}
	}
	if rate := float64(misses) / trials; math.Abs(rate-0.5) > 0.01 {
		t.Fatalf("miss rate = %v, want ~0.5", rate)
	}
	if rate := float64(falseAlarms) / trials; math.Abs(rate-0.1) > 0.01 {
		t.Fatalf("false-alarm rate = %v, want ~0.1", rate)
	}
}

func TestCorrectNodeLocationNoise(t *testing.T) {
	cfg := testConfig()
	n := MustNew(1, geo.Point{X: 50, Y: 50}, Correct, cfg, rng.New(3))
	ev := geo.Point{X: 55, Y: 50}
	const trials = 50000
	var sumErr float64
	sends := 0
	for i := 0; i < trials; i++ {
		loc, ok := n.SenseLocation(i, ev)
		if !ok {
			continue
		}
		sends++
		sumErr += loc.Dist(ev)
	}
	if sends != trials {
		t.Fatalf("correct node dropped %d reports", trials-sends)
	}
	// Mean radial error of a 2-D Gaussian is σ·sqrt(π/2).
	want := cfg.SigmaCorrect * math.Sqrt(math.Pi/2)
	if got := sumErr / float64(sends); math.Abs(got-want) > 0.05 {
		t.Fatalf("mean radial error = %v, want ~%v", got, want)
	}
}

func TestLevel0LocationDropsAndNoise(t *testing.T) {
	cfg := testConfig()
	cfg.MissProb = 0.25
	n := MustNew(1, geo.Point{X: 50, Y: 50}, Level0, cfg, rng.New(4))
	ev := geo.Point{X: 55, Y: 50}
	const trials = 50000
	sends := 0
	var sumErr float64
	for i := 0; i < trials; i++ {
		loc, ok := n.SenseLocation(i, ev)
		if !ok {
			continue
		}
		sends++
		sumErr += loc.Dist(ev)
	}
	if rate := 1 - float64(sends)/trials; math.Abs(rate-0.25) > 0.01 {
		t.Fatalf("drop rate = %v, want ~0.25", rate)
	}
	want := cfg.SigmaFaulty * math.Sqrt(math.Pi/2)
	if got := sumErr / float64(sends); math.Abs(got-want) > 0.1 {
		t.Fatalf("mean radial error = %v, want ~%v", got, want)
	}
}

func TestSmartNodeHysteresis(t *testing.T) {
	cfg := testConfig()
	n := MustNew(1, geo.Point{}, Level1, cfg, rng.New(5))
	if !n.Lying() {
		t.Fatal("level-1 node not lying initially")
	}
	// Faulty verdicts push the estimate down to lowerTI → honest phase.
	for n.TrustEstimate() > cfg.LowerTI {
		n.ObserveVerdict(false)
	}
	if n.Lying() {
		t.Fatalf("still lying at estimate %v <= lowerTI", n.TrustEstimate())
	}
	// Correct verdicts recover the estimate past upperTI → lying resumes.
	for n.TrustEstimate() < cfg.UpperTI {
		n.ObserveVerdict(true)
	}
	if !n.Lying() {
		t.Fatalf("not lying again at estimate %v >= upperTI", n.TrustEstimate())
	}
	// In between the thresholds the phase is sticky.
	n.ObserveVerdict(false) // estimate dips below upper but above lower
	if est := n.TrustEstimate(); est > cfg.LowerTI && est < cfg.UpperTI && !n.Lying() {
		t.Fatal("phase flipped inside the hysteresis band")
	}
}

func TestCorrectNodeIgnoresVerdicts(t *testing.T) {
	n := MustNew(1, geo.Point{}, Correct, testConfig(), rng.New(6))
	n.ObserveVerdict(false)
	if n.TrustEstimate() != 1 || n.Lying() {
		t.Fatal("correct node reacted to verdicts")
	}
}

func TestCompromiseTransitions(t *testing.T) {
	n := MustNew(1, geo.Point{}, Correct, testConfig(), rng.New(7))
	if n.Kind() != Correct || n.Lying() {
		t.Fatal("bad initial state")
	}
	n.Compromise(Level1)
	if n.Kind() != Level1 || !n.Lying() || n.TrustEstimate() != 1 {
		t.Fatal("compromise to level1 failed")
	}
	n.Compromise(Level0)
	if n.Kind() != Level0 || !n.Lying() {
		t.Fatal("compromise to level0 failed")
	}
}

func TestCoalitionPlanIsSharedPerEvent(t *testing.T) {
	cfg := testConfig()
	cfg.CollusionSilenceProb = 0.5
	src := rng.New(8)
	coal := NewCoalition(cfg, 5, src)
	a := MustNew(1, geo.Point{X: 10, Y: 10}, Level2, cfg, rng.New(9))
	b := MustNew(2, geo.Point{X: 12, Y: 10}, Level2, cfg, rng.New(10))
	a.JoinCoalition(coal)
	b.JoinCoalition(coal)
	if coal.Size() != 2 {
		t.Fatalf("coalition size = %d", coal.Size())
	}
	for ev := 0; ev < 50; ev++ {
		p1 := coal.Plan(ev, geo.Point{X: 11, Y: 10})
		p2 := coal.Plan(ev, geo.Point{X: 11, Y: 10})
		if p1 != p2 {
			t.Fatalf("plan not stable for event %d: %v vs %v", ev, p1, p2)
		}
	}
}

func TestCoalitionLieDistance(t *testing.T) {
	cfg := testConfig()
	cfg.CollusionSilenceProb = 0 // always fabricate
	coal := NewCoalition(cfg, 5, rng.New(11))
	ev := geo.Point{X: 50, Y: 50}
	for i := 0; i < 200; i++ {
		p := coal.Plan(i, ev)
		if p.Silent {
			t.Fatal("silence despite CollusionSilenceProb = 0")
		}
		d := p.Lie.Dist(ev)
		if d < 2*5 || d > 4*5 {
			t.Fatalf("lie at distance %v, want within [10, 20]", d)
		}
	}
}

func TestLevel2MembersReportCommonLieOrNothing(t *testing.T) {
	cfg := testConfig()
	cfg.CollusionSilenceProb = 0
	coal := NewCoalition(cfg, 5, rng.New(12))
	members := make([]*Node, 4)
	for i := range members {
		members[i] = MustNew(i, geo.Point{X: 45 + float64(i)*2, Y: 50}, Level2, cfg, rng.New(int64(20+i)))
		members[i].JoinCoalition(coal)
	}
	ev := geo.Point{X: 50, Y: 50}
	for round := 0; round < 50; round++ {
		var reported []geo.Point
		for _, m := range members {
			if loc, ok := m.SenseLocation(round, ev); ok {
				reported = append(reported, loc)
			}
		}
		for i := 1; i < len(reported); i++ {
			if reported[i] != reported[0] {
				t.Fatalf("colluders reported different locations: %v", reported)
			}
		}
	}
}

func TestLevel2MemberStaysSilentOutsideSenseRadius(t *testing.T) {
	cfg := testConfig()
	cfg.CollusionSilenceProb = 0
	cfg.SenseRadius = 6 // tight radius: most fabrications are out of range
	coal := NewCoalition(cfg, 5, rng.New(13))
	n := MustNew(1, geo.Point{X: 50, Y: 50}, Level2, cfg, rng.New(14))
	n.JoinCoalition(coal)
	ev := geo.Point{X: 50, Y: 50}
	for round := 0; round < 200; round++ {
		loc, ok := n.SenseLocation(round, ev)
		if !ok {
			continue
		}
		if n.Pos().Dist(loc) > cfg.SenseRadius {
			t.Fatalf("colluder reported %v outside its sensing radius", loc)
		}
	}
}

func TestReportOffsetRoundTrip(t *testing.T) {
	n := MustNew(1, geo.Point{X: 30, Y: 40}, Correct, testConfig(), rng.New(15))
	loc := geo.Point{X: 35, Y: 44}
	off := n.ReportOffset(loc)
	back := geo.FromPolar(n.Pos(), off)
	if back.Dist(loc) > 1e-9 {
		t.Fatalf("offset round trip %v -> %v", loc, back)
	}
}

func TestBatteryDrainOnSense(t *testing.T) {
	n := MustNew(1, geo.Point{X: 50, Y: 50}, Correct, testConfig(), rng.New(16))
	b := energy.NewBattery(100)
	n.AttachBattery(b)
	_, _ = n.SenseLocation(0, geo.Point{X: 51, Y: 50})
	if b.Residual() >= 100 {
		t.Fatal("sensing did not draw energy")
	}
}

func TestMarkCH(t *testing.T) {
	n := MustNew(1, geo.Point{}, Correct, testConfig(), rng.New(17))
	n.MarkCH()
	n.MarkCH()
	if n.TimesCH() != 2 {
		t.Fatalf("TimesCH = %d", n.TimesCH())
	}
}

func TestLevel3JittersCommonLie(t *testing.T) {
	cfg := testConfig()
	cfg.CollusionSilenceProb = 0
	cfg.CollusionJitter = 1.5
	coal := NewCoalition(cfg, 5, rng.New(31))
	members := make([]*Node, 3)
	for i := range members {
		members[i] = MustNew(i, geo.Point{X: 48 + float64(i)*2, Y: 50}, Level3, cfg, rng.New(int64(40+i)))
		members[i].JoinCoalition(coal)
	}
	ev := geo.Point{X: 50, Y: 50}
	identical, spreadSum, rounds := 0, 0.0, 0
	for round := 0; round < 200; round++ {
		var locs []geo.Point
		for _, m := range members {
			if loc, ok := m.SenseLocation(round, ev); ok {
				locs = append(locs, loc)
			}
		}
		if len(locs) < 2 {
			continue
		}
		rounds++
		for i := 1; i < len(locs); i++ {
			if locs[i] == locs[0] {
				identical++
			}
			spreadSum += locs[i].Dist(locs[0])
		}
	}
	if identical > 0 {
		t.Fatalf("%d exactly coincident level-3 reports", identical)
	}
	if rounds == 0 {
		t.Fatal("no multi-reporter rounds")
	}
	// Mean pairwise spread ≈ σ√2·√(π/2) ≈ 2.66 for σ=1.5 per axis.
	mean := spreadSum / float64(rounds*2)
	if mean < 1 || mean > 5 {
		t.Fatalf("level-3 spread = %v, want ~2.7", mean)
	}
}
