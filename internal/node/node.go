// Package node implements the sensor-node behaviour models of the paper's
// failure taxonomy (§2.1):
//
//   - Correct nodes err only at their natural error rate (missed reports in
//     binary mode, Gaussian location noise in location mode).
//   - Level 0 ("naïve") faulty nodes err randomly with no strategy: missed
//     alarms, false alarms, and inflated location noise.
//   - Level 1 ("smart independent") nodes lie like level 0, but each tracks
//     an estimate of its own trust index and stops lying whenever the
//     estimate falls to lowerTI, behaving correctly until it recovers past
//     upperTI — trying to stay useful to the adversary without being
//     isolated.
//   - Level 2 ("smart colluding") nodes additionally coordinate: for each
//     event the coalition either has every lying member report one common
//     fabricated location or has them all stay silent.
//
// Compromise is dynamic: a correct node can be converted to any faulty kind
// mid-run (experiment 3's decaying network).
package node

import (
	"fmt"
	"math"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/energy"
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
)

// Kind identifies a behaviour model.
type Kind int

// Behaviour kinds, in increasing order of adversarial sophistication.
const (
	Correct Kind = iota + 1
	Level0
	Level1
	Level2
	// Level3 extends level 2 per §7's "more types of intelligent models
	// involving different levels of collusion": the coalition still
	// fabricates one common location, but each member transmits it with
	// small independent jitter — enough to defeat coincidence detection,
	// small enough that the fabricated reports still cluster together.
	Level3
)

// String returns the paper's name for the kind.
func (k Kind) String() string {
	switch k {
	case Correct:
		return "correct"
	case Level0:
		return "level0"
	case Level1:
		return "level1"
	case Level2:
		return "level2"
	case Level3:
		return "level3"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Faulty reports whether the kind is one of the faulty models.
func (k Kind) Faulty() bool {
	return k == Level0 || k == Level1 || k == Level2 || k == Level3
}

// Smart reports whether the kind tracks its own trust estimate.
func (k Kind) Smart() bool { return k == Level1 || k == Level2 || k == Level3 }

// Colluding reports whether the kind coordinates through a coalition.
func (k Kind) Colluding() bool { return k == Level2 || k == Level3 }

// Config holds the behavioural parameters shared by a population of nodes.
// Experiments fill it from Table 1 or Table 2.
type Config struct {
	// NER is the natural error rate of correct nodes in binary mode: the
	// probability of missing a real event, and of raising a false alarm
	// in a quiet period (Table 1: 0, 1, or 5%).
	NER float64

	// MissProb is the probability a (lying) faulty node suppresses its
	// report of a real event (Table 1: 50%; Table 2: 25%).
	MissProb float64

	// FalseAlarmProb is the probability a (lying) faulty node reports a
	// nonexistent event during a quiet period in binary mode (Table 1:
	// 0, 10, or 75%).
	FalseAlarmProb float64

	// SigmaCorrect is the per-axis standard deviation of a correct node's
	// location noise (Table 2: 1.6 or 2.0).
	SigmaCorrect float64

	// SigmaFaulty is the per-axis standard deviation of a lying node's
	// location noise (Table 2: 4.25 or 6.0).
	SigmaFaulty float64

	// SenseRadius is the protocol's sensing radius r_s, which the
	// adversary is assumed to know: a smart colluder will not transmit a
	// fabricated location outside its own sensing radius, since the
	// cluster head can detect that from known node positions.
	SenseRadius float64

	// LowerTI and UpperTI are the smart-adversary hysteresis thresholds
	// (§4.2: 0.5 and 0.8). A lying smart node switches to correct
	// behaviour when its TI estimate reaches LowerTI and resumes lying
	// once the estimate recovers past UpperTI.
	LowerTI float64
	UpperTI float64

	// Trust configures the self-estimator smart nodes run; it must match
	// the cluster head's parameters for the estimate to track reality.
	Trust core.Params

	// CollusionSilenceProb is the probability a level-2/3 coalition
	// chooses "all silent" over "all report the common fabricated
	// location" for a given event.
	CollusionSilenceProb float64

	// CollusionJitter is the per-axis standard deviation of the
	// independent noise level-3 colluders add to the common fabricated
	// location — the coincidence-guard evasion. Zero (the level-2 value)
	// means exact coincidence.
	CollusionJitter float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"NER", c.NER},
		{"MissProb", c.MissProb},
		{"FalseAlarmProb", c.FalseAlarmProb},
		{"CollusionSilenceProb", c.CollusionSilenceProb},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("node: %s must be in [0,1], got %v", p.name, p.v)
		}
	}
	if c.SigmaCorrect < 0 || c.SigmaFaulty < 0 {
		return fmt.Errorf("node: sigmas must be non-negative")
	}
	if c.LowerTI > c.UpperTI {
		return fmt.Errorf("node: LowerTI (%v) must not exceed UpperTI (%v)", c.LowerTI, c.UpperTI)
	}
	return nil
}

// Node is one sensor node: identity, position, behaviour model, battery,
// and — for smart kinds — the trust self-estimate and hysteresis state.
type Node struct {
	id   int
	pos  geo.Point
	kind Kind
	cfg  Config
	src  *rng.Source

	battery   *energy.Battery
	est       *core.Estimator
	lying     bool
	coalition *Coalition

	timesCH int // how many times this node has served as cluster head
}

// New returns a node with the given identity, position, and behaviour. The
// random source must be unique to the node for runs to be reproducible.
func New(id int, pos geo.Point, kind Kind, cfg Config, src *rng.Source) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("node: nil rng source for node %d", id)
	}
	n := &Node{id: id, pos: pos, kind: Correct, cfg: cfg, src: src}
	if kind != Correct {
		n.Compromise(kind)
	}
	return n, nil
}

// MustNew is New for tests and examples with known-good configs.
func MustNew(id int, pos geo.Point, kind Kind, cfg Config, src *rng.Source) *Node {
	n, err := New(id, pos, kind, cfg, src)
	if err != nil {
		panic(err)
	}
	return n
}

// ID returns the node's identity.
func (n *Node) ID() int { return n.id }

// Pos returns the node's position, which the simulator treats as ground
// truth known to the cluster head (the paper assumes localization is
// solved, §2).
func (n *Node) Pos() geo.Point { return n.pos }

// Kind returns the node's current behaviour model.
func (n *Node) Kind() Kind { return n.kind }

// Lying reports whether a smart node is currently in its lying phase.
// Level-0 nodes always lie; correct nodes never do.
func (n *Node) Lying() bool {
	switch n.kind {
	case Correct:
		return false
	case Level0:
		return true
	default:
		return n.lying
	}
}

// TrustEstimate returns a smart node's current self-estimate of its trust
// index, or 1 for kinds that do not track one.
func (n *Node) TrustEstimate() float64 {
	if n.est == nil {
		return 1
	}
	return n.est.TI()
}

// AttachBattery gives the node an energy budget (used by LEACH election).
func (n *Node) AttachBattery(b *energy.Battery) { n.battery = b }

// Battery returns the node's battery, or nil if none is attached.
func (n *Node) Battery() *energy.Battery { return n.battery }

// TimesCH returns how many times the node has served as cluster head.
func (n *Node) TimesCH() int { return n.timesCH }

// MarkCH records one term of cluster-head service.
func (n *Node) MarkCH() { n.timesCH++ }

// Compromise converts the node to the given faulty kind (experiment 3's
// network decay). Smart kinds start in the lying phase with a fresh trust
// estimate seeded from full trust — the adversary compromises a node whose
// trust record it inherits, and the estimator converges as soon as the
// node overhears its first few verdicts.
func (n *Node) Compromise(kind Kind) {
	n.kind = kind
	if kind.Smart() {
		n.est = core.NewEstimator(n.cfg.Trust)
		n.lying = true
	} else {
		n.est = nil
		n.lying = kind == Level0
	}
}

// JoinCoalition registers the node with a colluding coalition. It is a
// no-op for non-colluding kinds.
func (n *Node) JoinCoalition(c *Coalition) {
	if !n.kind.Colluding() || c == nil {
		return
	}
	n.coalition = c
	c.add(n)
}

// ObserveVerdict feeds the node the verdict it overheard about its own
// behaviour in the cluster head's decision broadcast. Smart nodes fold it
// into their trust estimate and run the §4.2 hysteresis: stop lying at
// lowerTI, resume past upperTI.
func (n *Node) ObserveVerdict(correct bool) {
	if n.est == nil {
		return
	}
	n.est.Observe(correct)
	ti := n.est.TI()
	if n.lying && ti <= n.cfg.LowerTI {
		n.lying = false
	} else if !n.lying && ti >= n.cfg.UpperTI {
		n.lying = true
	}
}

// SenseBinary decides whether the node reports during one binary-mode
// opportunity. eventOccurred says whether a real event is in progress
// (true) or this is a quiet period (false). The return value is whether
// the node transmits an event report.
func (n *Node) SenseBinary(eventOccurred bool) bool {
	if n.Lying() {
		if eventOccurred {
			return !n.src.Bernoulli(n.cfg.MissProb)
		}
		return n.src.Bernoulli(n.cfg.FalseAlarmProb)
	}
	// Correct behaviour (including smart nodes in their honest phase):
	// err at the natural error rate in either direction.
	if eventOccurred {
		return !n.src.Bernoulli(n.cfg.NER)
	}
	return n.src.Bernoulli(n.cfg.NER)
}

// SenseLocation decides the node's response to a real event at ev in
// location mode. It returns the absolute location the node would report
// and whether it transmits at all. Correct behaviour adds per-axis
// Gaussian noise of SigmaCorrect; lying behaviour either suppresses the
// report (MissProb) or inflates the noise to SigmaFaulty; level-2 liars
// follow their coalition's per-event plan instead.
func (n *Node) SenseLocation(eventID int, ev geo.Point) (geo.Point, bool) {
	if n.battery != nil {
		n.battery.Draw(energy.DefaultModel().SensePerEvent)
	}
	if n.Lying() {
		if n.kind.Colluding() && n.coalition != nil {
			plan := n.coalition.Plan(eventID, ev)
			if plan.Silent {
				return geo.Point{}, false
			}
			lie := plan.Lie
			if n.kind == Level3 && n.cfg.CollusionJitter > 0 {
				lie = n.noisy(lie, n.cfg.CollusionJitter)
			}
			// A smart colluder never claims an event it could not have
			// sensed — the cluster head would catch the range violation
			// from known positions. It stays silent instead.
			if n.cfg.SenseRadius > 0 && n.pos.Dist(lie) > n.cfg.SenseRadius {
				return geo.Point{}, false
			}
			return lie, true
		}
		if n.src.Bernoulli(n.cfg.MissProb) {
			return geo.Point{}, false
		}
		return n.noisy(ev, n.cfg.SigmaFaulty), true
	}
	return n.noisy(ev, n.cfg.SigmaCorrect), true
}

// ReportOffset converts an absolute report location into the polar (r, θ)
// offset the node actually transmits (§3.2).
func (n *Node) ReportOffset(loc geo.Point) geo.Polar {
	return geo.ToPolar(n.pos, loc)
}

func (n *Node) noisy(p geo.Point, sigma float64) geo.Point {
	return geo.Point{
		X: n.src.Gaussian(p.X, sigma),
		Y: n.src.Gaussian(p.Y, sigma),
	}
}

// Plan is a level-2 coalition's per-event instruction.
type Plan struct {
	Silent bool
	Lie    geo.Point
}

// Coalition coordinates level-2 nodes. The paper assumes colluders share
// an undetectable side channel; the coalition object is that channel. For
// each event the coalition flips one coin: with CollusionSilenceProb all
// lying members stay silent, otherwise they all report one common
// fabricated location displaced 2-4 error radii from the truth — far
// enough to form a separate (false) event cluster, close enough that the
// colluders remain event neighbors of the true location.
type Coalition struct {
	cfg     Config
	rError  float64
	src     *rng.Source
	members []*Node
	plans   map[int]Plan
}

// NewCoalition returns an empty coalition. rError is the protocol's
// localization tolerance, which the adversary is assumed to know.
func NewCoalition(cfg Config, rError float64, src *rng.Source) *Coalition {
	return &Coalition{cfg: cfg, rError: rError, src: src, plans: make(map[int]Plan)}
}

func (c *Coalition) add(n *Node) { c.members = append(c.members, n) }

// Size returns the number of registered members.
func (c *Coalition) Size() int { return len(c.members) }

// Plan returns the coalition's instruction for the given event, computing
// it on first request and replaying it for every member thereafter.
func (c *Coalition) Plan(eventID int, ev geo.Point) Plan {
	if p, ok := c.plans[eventID]; ok {
		return p
	}
	var p Plan
	if c.src.Bernoulli(c.cfg.CollusionSilenceProb) {
		p = Plan{Silent: true}
	} else {
		dist := c.src.Uniform(2*c.rError, 4*c.rError)
		theta := c.src.Uniform(0, 2*math.Pi)
		p = Plan{Lie: geo.FromPolar(ev, geo.Polar{R: dist, Theta: theta})}
	}
	c.plans[eventID] = p
	return p
}
