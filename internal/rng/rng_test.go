package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitIsDeterministic(t *testing.T) {
	a := Split(42, "channel")
	b := Split(42, "channel")
	for i := 0; i < 50; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, name) produced different streams")
		}
	}
}

func TestSplitNamesAreIndependent(t *testing.T) {
	a := Split(42, "channel")
	b := Split(42, "nodes")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/64 identical draws across differently named streams", same)
	}
}

func TestSourceSplitChildDiffersFromParent(t *testing.T) {
	parent := New(7)
	child := parent.Split("x")
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Int63() == child.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/64 identical draws between parent and child", same)
	}
}

func TestBernoulliBounds(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) fired")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) did not fire")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(<0) fired")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(>1) did not fire")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(2)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestUniformPanicsOnInvertedRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(5, -2) did not panic")
		}
	}()
	New(1).Uniform(5, -2)
}

func TestGaussianMoments(t *testing.T) {
	s := New(4)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Gaussian(3, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Gaussian mean = %v, want ~3", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Fatalf("Gaussian std = %v, want ~2", std)
	}
}

func TestGaussianZeroSigma(t *testing.T) {
	s := New(5)
	if v := s.Gaussian(7, 0); v != 7 {
		t.Fatalf("Gaussian(7, 0) = %v", v)
	}
	if v := s.Gaussian(7, -1); v != 7 {
		t.Fatalf("Gaussian(7, -1) = %v", v)
	}
}

func TestRayleighMatchesExceedProb(t *testing.T) {
	// Empirical exceed rate must match the closed form the paper's Table
	// 2 relies on: P(R > r) = exp(-r²/2σ²).
	s := New(6)
	const n = 200000
	sigma, r := 4.25, 5.0
	exceed := 0
	for i := 0; i < n; i++ {
		if s.Rayleigh(sigma) > r {
			exceed++
		}
	}
	got := float64(exceed) / n
	want := RayleighExceedProb(sigma, r)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("Rayleigh exceed rate = %v, want %v", got, want)
	}
}

func TestRayleighExceedProbEdges(t *testing.T) {
	if got := RayleighExceedProb(0, 1); got != 0 {
		t.Fatalf("zero-sigma exceed of positive r = %v", got)
	}
	if got := RayleighExceedProb(0, 0); got != 1 {
		t.Fatalf("zero-sigma exceed of 0 = %v", got)
	}
	if got := RayleighExceedProb(2, 0); got != 1 {
		t.Fatalf("exceed of r=0 = %v, want 1", got)
	}
}

// TestTable2ErrorRates documents the Gaussian/Rayleigh relationship that
// Table 2's "error rate" column encodes: a node with per-axis σ reports
// more than r_error = 5 units off with probability exp(-25/2σ²).
func TestTable2ErrorRates(t *testing.T) {
	tests := []struct {
		sigma float64
		want  float64
	}{
		{1.6, math.Exp(-25.0 / (2 * 1.6 * 1.6))},
		{2.0, math.Exp(-25.0 / (2 * 2.0 * 2.0))},
		{4.25, math.Exp(-25.0 / (2 * 4.25 * 4.25))},
		{6.0, math.Exp(-25.0 / (2 * 6.0 * 6.0))},
	}
	for _, tt := range tests {
		if got := RayleighExceedProb(tt.sigma, 5); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("exceed(σ=%v) = %v, want %v", tt.sigma, got, tt.want)
		}
	}
	// Sanity: correct nodes err far less often than faulty ones.
	if RayleighExceedProb(2.0, 5) >= RayleighExceedProb(4.25, 5) {
		t.Fatal("correct σ errs at least as often as faulty σ")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(7)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

// Property: Float64 stays in [0, 1) for arbitrary seeds.
func TestFloat64RangeProperty(t *testing.T) {
	check := func(seed int64) bool {
		s := New(seed)
		for i := 0; i < 20; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Rayleigh samples are non-negative.
func TestRayleighNonNegativeProperty(t *testing.T) {
	check := func(seed int64, sigma float64) bool {
		s := New(seed)
		sigma = math.Abs(math.Mod(sigma, 100))
		for i := 0; i < 20; i++ {
			if s.Rayleigh(sigma) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
