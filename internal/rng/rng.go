// Package rng provides deterministic, splittable pseudo-random streams for
// the simulator. Every stochastic component of a simulation (channel drops,
// node noise, adversary coin flips, workload placement) draws from its own
// named stream so that changing one component's consumption pattern does not
// perturb the others. This keeps experiment runs reproducible and makes
// regression tests stable across refactors.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand with the
// distribution helpers the TIBFIT simulation needs (Bernoulli trials,
// Gaussian location noise, uniform placement). A Source is not safe for
// concurrent use; the simulator is single-threaded by design.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with the given seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream from a parent seed and a name.
// The same (seed, name) pair always yields the same stream, and distinct
// names yield streams that are uncorrelated for practical purposes.
func Split(seed int64, name string) *Source {
	h := fnv.New64a()
	// The write to an fnv hash never fails.
	_, _ = h.Write([]byte(name))
	return New(seed ^ int64(h.Sum64()))
}

// Split derives a child stream from this source and a name. The child is
// seeded from the parent's next value combined with the name hash, so the
// derivation itself is deterministic.
func (s *Source) Split(name string) *Source {
	return Split(s.r.Int63(), name)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Bernoulli returns true with probability p. Probabilities outside [0, 1]
// are clamped: p <= 0 never fires and p >= 1 always fires.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// Uniform returns a uniform value in [lo, hi). It panics if hi < lo.
func (s *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Uniform called with hi < lo")
	}
	return lo + (hi-lo)*s.r.Float64()
}

// Gaussian returns a normal sample with the given mean and standard
// deviation. A non-positive sigma returns the mean exactly, which lets
// callers express "no noise" without branching.
func (s *Source) Gaussian(mean, sigma float64) float64 {
	if sigma <= 0 {
		return mean
	}
	return mean + sigma*s.r.NormFloat64()
}

// Rayleigh returns a Rayleigh-distributed sample with scale sigma. The
// radial error of a 2-D Gaussian with per-axis deviation sigma is Rayleigh
// distributed; the paper uses this fact to convert location-noise standard
// deviations into "probability of reporting more than r_error away".
func (s *Source) Rayleigh(sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	u := s.r.Float64()
	// Guard against log(0); Float64 returns values in [0,1) so 1-u is in
	// (0,1] and only the u==0 case needs no care at all.
	return sigma * math.Sqrt(-2*math.Log(1-u))
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (s *Source) ExpFloat64() float64 { return s.r.ExpFloat64() }

// RayleighExceedProb returns the probability that a Rayleigh(sigma) sample
// exceeds r — that is, the probability a node whose 2-D Gaussian location
// noise has per-axis deviation sigma reports more than r away from the true
// event location. This is the closed form the paper's Table 2 alludes to.
func RayleighExceedProb(sigma, r float64) float64 {
	if sigma <= 0 {
		if r > 0 {
			return 0
		}
		return 1
	}
	return math.Exp(-r * r / (2 * sigma * sigma))
}
