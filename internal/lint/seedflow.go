package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/tibfit/tibfit/internal/lint/analysis"
)

// randConstructors are the math/rand and math/rand/v2 generator
// constructors. A simulation component that builds one directly owns a
// private seed that the experiment harness cannot see or split, so the
// run is no longer a pure function of the campaign seed.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// seedFlowExempt lists the packages allowed to construct raw
// generators: internal/rng is the single designated wrapper. Exempt
// packages also export no taint facts — calling into internal/rng is
// the approved path, not a leak.
var seedFlowExempt = map[string]bool{
	ModulePath + "/internal/rng": true,
}

// constructsRandFact marks a function whose body constructs a raw
// math/rand generator, directly or through any chain of static calls.
// The fact flows along the import graph, so a simulation package
// calling an innocuous-looking helper in another package is caught even
// though the construction site itself is elsewhere (possibly outside
// the simulation scope, where direct-construction reporting does not
// apply).
type constructsRandFact struct {
	// Via names the construction, e.g. "math/rand.NewSource" or the
	// intermediate callee for indirect taint.
	Via string
}

func (*constructsRandFact) AFact() {}

// SeedFlow flags simulation components that construct randomness
// outside the internal/rng seed-derivation tree — directly, or by
// calling (possibly across packages) a function that does.
var SeedFlow = &analysis.Analyzer{
	Name: "seedflow",
	Doc: "forbid raw math/rand generator construction outside internal/rng, interprocedurally\n\n" +
		"Every stochastic component must draw from a named internal/rng.Source\n" +
		"split from the campaign seed, so that one seed determines the whole\n" +
		"run. Constructing rand.New/rand.NewSource (or reading crypto/rand)\n" +
		"inside a simulation package smuggles in an unmanaged stream; so does\n" +
		"calling a helper — in this package or any imported one — whose call\n" +
		"chain constructs one. Taint is propagated as object facts along the\n" +
		"import graph (exempt: internal/rng, the designated wrapper).",
	FactTypes: []analysis.Fact{(*constructsRandFact)(nil)},
	Run:       runSeedFlow,
}

func runSeedFlow(pass *analysis.Pass) (interface{}, error) {
	pkg := pass.Pkg.Path()
	if seedFlowExempt[pkg] {
		return nil, nil
	}
	report := inSimulationScope(pkg)

	// Phase 1: per-function direct taint, reported at the construction
	// site when the package is in scope. Facts are computed for every
	// module package so helpers outside the simulation scope still
	// carry their taint to in-scope callers.
	taint := map[*types.Func]string{} // tainted function -> via
	type callSite struct {
		caller *types.Func
		callee *types.Func
		pos    token.Pos
	}
	var calls []callSite
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.SelectorExpr:
					switch q := pkgQualifier(pass.TypesInfo, v); {
					case strings.HasPrefix(q, "math/rand") && randConstructors[v.Sel.Name]:
						if fn != nil {
							taint[fn] = q + "." + v.Sel.Name
						}
						if report {
							pass.Reportf(v.Pos(),
								"%s.%s constructs a generator outside the internal/rng seed tree; derive a stream with rng.New or Source.Split instead",
								q, v.Sel.Name)
						}
					case q == "crypto/rand":
						if fn != nil {
							taint[fn] = "crypto/rand"
						}
						if report {
							pass.Reportf(v.Pos(),
								"crypto/rand is inherently nonreproducible; simulation code must draw from internal/rng")
						}
					}
				case *ast.CompositeLit:
					if t := pass.TypesInfo.TypeOf(v); t != nil && isMathRandType(t) {
						if fn != nil {
							taint[fn] = "composite literal of " + t.String()
						}
						if report {
							pass.Reportf(v.Pos(),
								"composite literal of a math/rand type bypasses internal/rng seed derivation")
						}
					}
				case *ast.CallExpr:
					if callee := staticCallee(pass.TypesInfo, v); callee != nil && fn != nil {
						calls = append(calls, callSite{caller: fn, callee: callee, pos: v.Pos()})
					}
				}
				return true
			})
		}
	}

	// Phase 2: pull in cross-package taint, then iterate same-package
	// call chains to a fixpoint so helper->helper->construction chains
	// taint the outermost entry point too.
	calleeTaint := func(callee *types.Func) (string, bool) {
		if via, ok := taint[callee]; ok {
			return via, true
		}
		if callee.Pkg() != nil && callee.Pkg() != pass.Pkg && !seedFlowExempt[callee.Pkg().Path()] {
			var fact constructsRandFact
			if pass.ImportObjectFact(callee, &fact) {
				return fact.Via, true
			}
		}
		return "", false
	}
	for changed := true; changed; {
		changed = false
		for _, cs := range calls {
			if _, done := taint[cs.caller]; done {
				continue
			}
			if _, ok := calleeTaint(cs.callee); ok {
				taint[cs.caller] = funcDisplayName(cs.callee)
				changed = true
			}
		}
	}

	// Phase 3: in-scope call sites of tainted callees in *other*
	// packages are findings — the construction site itself is either
	// out of scope or already reported in its own package's pass.
	if report {
		for _, cs := range calls {
			if cs.callee.Pkg() == pass.Pkg {
				continue
			}
			if via, ok := calleeTaint(cs.callee); ok {
				pass.Reportf(cs.pos,
					"call to %s constructs a math/rand generator outside the internal/rng seed tree (via %s); derive a stream with rng.New or Source.Split instead",
					funcDisplayName(cs.callee), via)
			}
		}
	}

	// Phase 4: export this package's taint for downstream importers.
	exported := make([]*types.Func, 0, len(taint))
	for fn := range taint {
		exported = append(exported, fn)
	}
	sort.Slice(exported, func(i, j int) bool { return exported[i].Pos() < exported[j].Pos() })
	for _, fn := range exported {
		pass.ExportObjectFact(fn, &constructsRandFact{Via: taint[fn]})
	}
	return nil, nil
}

// staticCallee resolves a call expression to the package-level function
// or method it statically invokes, or nil for builtins, function
// values, and interface calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn == nil {
		return nil
	}
	// Interface methods have no body to taint; only concrete functions
	// and methods carry facts.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if _, isIface := recv.Type().Underlying().(*types.Interface); isIface {
			return nil
		}
	}
	return fn
}

// funcDisplayName renders a function for diagnostics: pkgpath.Func or
// (pkgpath.Recv).Method.
func funcDisplayName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	name := fn.Pkg().Path() + "." + fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		name = "(" + types.TypeString(recv.Type(), nil) + ")." + fn.Name()
	}
	return name
}

// isMathRandType reports whether t is a named type defined in math/rand
// or math/rand/v2.
func isMathRandType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && strings.HasPrefix(obj.Pkg().Path(), "math/rand")
}
