package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/tibfit/tibfit/internal/lint/analysis"
)

// randConstructors are the math/rand and math/rand/v2 generator
// constructors. A simulation component that builds one directly owns a
// private seed that the experiment harness cannot see or split, so the
// run is no longer a pure function of the campaign seed.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// seedFlowExempt lists the packages allowed to construct raw
// generators: internal/rng is the single designated wrapper.
var seedFlowExempt = map[string]bool{
	ModulePath + "/internal/rng": true,
}

// SeedFlow flags simulation components that construct randomness
// outside the internal/rng seed-derivation tree.
var SeedFlow = &analysis.Analyzer{
	Name: "seedflow",
	Doc: "forbid raw math/rand generator construction outside internal/rng\n\n" +
		"Every stochastic component must draw from a named internal/rng.Source\n" +
		"split from the campaign seed, so that one seed determines the whole\n" +
		"run. Constructing rand.New/rand.NewSource (or reading crypto/rand)\n" +
		"inside a simulation package smuggles in an unmanaged stream.",
	Run: runSeedFlow,
}

func runSeedFlow(pass *analysis.Pass) (interface{}, error) {
	pkg := pass.Pkg.Path()
	if !inSimulationScope(pkg) || seedFlowExempt[pkg] {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SelectorExpr:
				switch q := pkgQualifier(pass.TypesInfo, v); {
				case strings.HasPrefix(q, "math/rand") && randConstructors[v.Sel.Name]:
					pass.Reportf(v.Pos(),
						"%s.%s constructs a generator outside the internal/rng seed tree; derive a stream with rng.New or Source.Split instead",
						q, v.Sel.Name)
				case q == "crypto/rand":
					pass.Reportf(v.Pos(),
						"crypto/rand is inherently nonreproducible; simulation code must draw from internal/rng")
				}
			case *ast.CompositeLit:
				if t := pass.TypesInfo.TypeOf(v); t != nil && isMathRandType(t) {
					pass.Reportf(v.Pos(),
						"composite literal of a math/rand type bypasses internal/rng seed derivation")
				}
			}
			return true
		})
	}
	return nil, nil
}

// isMathRandType reports whether t is a named type defined in math/rand
// or math/rand/v2.
func isMathRandType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && strings.HasPrefix(obj.Pkg().Path(), "math/rand")
}
