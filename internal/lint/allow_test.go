package lint

import (
	"strings"
	"testing"
)

// The //lint:allow escape hatch is itself contract-tested: placement
// matters (same line or the line directly above — nothing else), the
// rule name must match the diagnostic being excused, and a directive
// that excuses nothing is reported stale.

func TestAllowOnLineAbove(t *testing.T) {
	src := `package p

func f(x float64) bool {
	//lint:allow floateq exact sentinel comparison is intended
	return x == 0
}
`
	if findings := checkSource(t, ModulePath+"/internal/fake", src); len(findings) != 0 {
		t.Fatalf("allow on the line above did not suppress: %v", findings)
	}
}

func TestAllowOnSameLine(t *testing.T) {
	src := `package p

func f(x float64) bool {
	return x == 0 //lint:allow floateq exact sentinel comparison is intended
}
`
	if findings := checkSource(t, ModulePath+"/internal/fake", src); len(findings) != 0 {
		t.Fatalf("allow on the same line did not suppress: %v", findings)
	}
}

func TestAllowTwoLinesAboveDoesNotSuppress(t *testing.T) {
	src := `package p

func f(x float64) bool {
	//lint:allow floateq too far away to apply

	return x == 0
}
`
	findings := checkSource(t, ModulePath+"/internal/fake", src)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (live floateq + stale allow): %v", len(findings), findings)
	}
	if findings[0].Rule != "lintdirective" || !strings.Contains(findings[0].Message, "stale //lint:allow floateq") {
		t.Errorf("finding 0 = %v, want stale-allow report", findings[0])
	}
	if findings[1].Rule != "floateq" {
		t.Errorf("finding 1 = %v, want the unsuppressed floateq diagnostic", findings[1])
	}
}

func TestAllowWrongRuleDoesNotSuppress(t *testing.T) {
	src := `package p

func f(x float64) bool {
	//lint:allow maprange wrong rule for this diagnostic
	return x == 0
}
`
	findings := checkSource(t, ModulePath+"/internal/fake", src)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (live floateq + stale maprange allow): %v", len(findings), findings)
	}
	if findings[0].Rule != "lintdirective" || !strings.Contains(findings[0].Message, "stale //lint:allow maprange") {
		t.Errorf("finding 0 = %v, want stale-allow report for the mismatched rule", findings[0])
	}
	if findings[1].Rule != "floateq" {
		t.Errorf("finding 1 = %v, want the unsuppressed floateq diagnostic", findings[1])
	}
}

func TestStaleAllowReported(t *testing.T) {
	src := `package p

func f(x float64) float64 {
	//lint:allow floateq nothing here triggers floateq anymore
	return x + 1
}
`
	findings := checkSource(t, ModulePath+"/internal/fake", src)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 stale-allow report: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Rule != RuleLintDirective {
		t.Errorf("rule = %q, want %q", f.Rule, RuleLintDirective)
	}
	want := "stale //lint:allow floateq: no floateq diagnostic on this line or the one below; delete the directive"
	if f.Message != want {
		t.Errorf("message = %q, want %q", f.Message, want)
	}
	if f.Pos.Line != 4 {
		t.Errorf("reported at line %d, want 4 (the directive's own line)", f.Pos.Line)
	}
}

// TestStaleAllowOnlyForRulesThatRan guards single-analyzer runs (the
// linttest harness): an allow for a rule whose analyzer did not run in
// this suite invocation must not be called stale.
func TestStaleAllowOnlyForRulesThatRan(t *testing.T) {
	src := `package p

func f(x float64) float64 {
	//lint:allow floateq would be stale under the full suite
	return x + 1
}
`
	// Run only maprange: the floateq allow cannot be judged, so no
	// findings at all.
	fsetFindings := checkSourceWith(t, ModulePath+"/internal/fake", src, MapRange)
	if len(fsetFindings) != 0 {
		t.Fatalf("single-analyzer run judged a foreign allow: %v", fsetFindings)
	}
}
