package lint

import (
	"encoding/json"
	"flag"
	"go/token"
	"os"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite SARIF golden file")

func sarifFixtureFindings() []Finding {
	return []Finding{
		{
			Pos:     token.Position{Filename: "/repo/internal/core/trust.go", Line: 12, Column: 7},
			Rule:    "floateq",
			Message: "raw float equality in a vote path",
		},
		{
			Pos:     token.Position{Filename: "/repo/internal/sim/sim.go", Line: 40, Column: 2},
			Rule:    "hotalloc",
			Message: "map literal allocates in hot path dispatch (annotated //hot:path); preallocate outside the dispatch loop",
		},
		{
			// A finding outside the module root keeps its absolute path.
			Pos:     token.Position{Filename: "/elsewhere/x.go", Line: 3, Column: 1},
			Rule:    "errwrap",
			Message: "comparing an error to sentinel ErrX with == fails on wrapped errors; use errors.Is",
		},
	}
}

// TestSARIFGolden pins the exact SARIF 2.1.0 document the CI gate
// uploads: schema/version header, one rule per analyzer with its doc
// split into short/full descriptions, SRCROOT-relative URIs, and the
// findings in suite order. Regenerate with go test -run SARIF -update.
func TestSARIFGolden(t *testing.T) {
	got, err := SARIF(sarifFixtureFindings(), Analyzers, "/repo")
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	const golden = "testdata/sarif.golden"
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("SARIF output drifted from %s (regenerate with -update):\n--- got ---\n%s", golden, got)
	}
}

// TestSARIFShape spot-checks structural invariants independent of the
// golden bytes, so a legitimate golden refresh cannot hide a regression.
func TestSARIFShape(t *testing.T) {
	data, err := SARIF(sarifFixtureFindings(), Analyzers, "/repo")
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	var doc struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "tibfit-lint" {
		t.Errorf("driver = %q, want tibfit-lint", run.Tool.Driver.Name)
	}
	if got, want := len(run.Tool.Driver.Rules), len(Analyzers); got != want {
		t.Errorf("rules = %d, want one per analyzer (%d)", got, want)
	}
	if len(run.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(run.Results))
	}
	first := run.Results[0].Locations[0].PhysicalLocation
	if first.ArtifactLocation.URI != "internal/core/trust.go" {
		t.Errorf("uri = %q, want module-relative internal/core/trust.go", first.ArtifactLocation.URI)
	}
	if first.ArtifactLocation.URIBaseID != "SRCROOT" {
		t.Errorf("uriBaseId = %q, want SRCROOT", first.ArtifactLocation.URIBaseID)
	}
	if first.Region.StartLine != 12 {
		t.Errorf("startLine = %d, want 12", first.Region.StartLine)
	}
	outside := run.Results[2].Locations[0].PhysicalLocation.ArtifactLocation
	if outside.URI != "/elsewhere/x.go" {
		t.Errorf("out-of-root uri = %q, want absolute /elsewhere/x.go", outside.URI)
	}
	for _, res := range run.Results {
		if res.Level != "error" {
			t.Errorf("result %s level = %q, want error", res.RuleID, res.Level)
		}
	}
}
