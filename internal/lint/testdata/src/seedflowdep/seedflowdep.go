// Package seedflowdep is a dependency fixture for seedflow's
// interprocedural mode. It is loaded under a fake path OUTSIDE the
// simulation scope, so its raw generator construction draws no direct
// diagnostic — but analyzing it exports constructsRand facts, and the
// in-scope consumer fixture is flagged at its call sites.
package seedflowdep

import "math/rand"

// NewNoise builds a private generator: tainted directly.
func NewNoise(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Indirect taints transitively through the same-package call chain.
func Indirect(seed int64) *rand.Rand {
	return NewNoise(seed + 1)
}

// Clean is an innocent helper; callers are not flagged.
func Clean(x float64) float64 {
	return x * 2
}
