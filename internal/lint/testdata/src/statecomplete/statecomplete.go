// Package statecomplete is a lint fixture for the statecomplete
// analyzer: a stateful scheme whose Snapshot/Restore pair silently
// drops two of the fields its Judge method mutates.
package statecomplete

// rec is per-node trust state reachable from the scheme's fields.
type rec struct {
	trust   float64
	correct int
	faulty  int // want `rec\.faulty is written in Judge but never serialized in leaky\.Snapshot` `rec\.faulty is written in Judge but never rebuilt in leaky\.Restore`
}

// leaky is the seeded defect: rounds and rec.faulty are mutated while
// judging but dropped by the snapshot/restore pair.
type leaky struct {
	recs   map[int]*rec
	rounds int // want `leaky\.rounds is written in Judge but never serialized in leaky\.Snapshot` `leaky\.rounds is written in Judge but never rebuilt in leaky\.Restore`
}

func (s *leaky) Judge(node int, correct bool) {
	r := s.recs[node]
	if r == nil {
		r = &rec{trust: 1}
		s.recs[node] = r
	}
	if correct {
		r.trust += 0.1
		r.correct++
	} else {
		r.trust -= 0.5
		r.faulty++
	}
	s.rounds++
}

func (s *leaky) Snapshot() map[int]rec {
	out := make(map[int]rec, len(s.recs))
	for id, r := range s.recs {
		out[id] = rec{trust: r.trust, correct: r.correct}
	}
	return out
}

func (s *leaky) Restore(snap map[int]rec) {
	s.recs = make(map[int]*rec, len(snap))
	for id, r := range snap {
		s.recs[id] = &rec{trust: r.trust, correct: r.correct}
	}
}

// complete mirrors the real schemes: every mutated field round-trips,
// via a whole-value copy in Snapshot and an assignment in Restore.
type completeRec struct {
	v       float64
	correct int
}

type complete struct {
	recs map[int]*completeRec
}

func (s *complete) Judge(node int, correct bool) {
	r := s.recs[node]
	if correct {
		r.correct++
		r.v--
	} else {
		r.v++
	}
}

func (s *complete) Snapshot() map[int]completeRec {
	out := make(map[int]completeRec, len(s.recs))
	for id, r := range s.recs {
		out[id] = *r
	}
	return out
}

func (s *complete) Restore(snap map[int]completeRec) {
	s.recs = make(map[int]*completeRec, len(snap))
	for id, r := range snap {
		rc := r
		s.recs[id] = &rc
	}
}

// stateless has decision methods but no snapshot/restore pair, so it is
// out of the analyzer's jurisdiction entirely.
type stateless struct {
	hits int
}

func (s *stateless) Judge(node int, correct bool) {
	s.hits++
}

// allowed demonstrates the escape hatch on a deliberately ephemeral
// field (a memo cache that is cheap to rebuild from scratch).
type allowed struct {
	v float64
	//lint:allow statecomplete memo cache, rebuilt lazily after failover
	memo float64
}

func (s *allowed) Judge(node int, correct bool) {
	s.v++
	s.memo = s.v * 2
}

func (s *allowed) Snapshot() map[int]float64 {
	return map[int]float64{0: s.v}
}

func (s *allowed) Restore(snap map[int]float64) {
	s.v = snap[0]
}
