// Package hotallocdep is a dependency fixture for the hotalloc
// analyzer: it declares the named Handler type and a dispatch
// registrar, so analyzing it exports a registersHandler fact that the
// consumer fixture (loaded afterwards) imports.
package hotallocdep

// Handler mirrors sim.Handler: the named function type whose parameters
// mark dispatch registration.
type Handler func()

// Kernel mirrors the simulation kernel's registration surface.
type Kernel struct {
	queue []Handler
}

// After registers fn for dispatch; its Handler parameter is what makes
// it a registrar.
func (k *Kernel) After(d float64, fn Handler) {
	k.queue = append(k.queue, fn)
}
