// Package seedflowinterproc is the in-scope consumer fixture for
// seedflow's fact propagation: the raw construction happens two hops
// away in an out-of-scope helper package, and the diagnostics land on
// this package's call sites.
package seedflowinterproc

import (
	dep "github.com/tibfit/tibfit/examples/linttestdata/seedflowdep"
)

func useHelper() float64 {
	g := dep.NewNoise(42) // want `call to .*seedflowdep\.NewNoise constructs a math/rand generator outside the internal/rng seed tree \(via math/rand\.NewSource\)`
	return g.Float64()
}

func useIndirect() float64 {
	g := dep.Indirect(7) // want `call to .*seedflowdep\.Indirect constructs a math/rand generator outside the internal/rng seed tree`
	return g.Float64()
}

// localWrapper is tainted transitively inside this package; the finding
// stays on the cross-package call site, not on the wrapper's callers —
// the wrapper itself would be caught in any package that imports this
// one.
func localWrapper() float64 {
	return useHelper()
}

func cleanCall(x float64) float64 {
	return dep.Clean(x)
}

func allowedHelper() float64 {
	//lint:allow seedflow fixture exercises the escape hatch across packages
	g := dep.NewNoise(99)
	return g.Float64()
}
