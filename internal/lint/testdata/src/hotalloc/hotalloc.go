// Package hotalloc is a lint fixture for the hotalloc analyzer:
// //hot:path annotation, intra-package propagation, //hot:init
// exemption, cross-package handler registration via facts, and every
// allocation construct the rule flags.
package hotalloc

import (
	"fmt"

	dep "github.com/tibfit/tibfit/internal/linttestdata/hotallocdep"
)

type payload struct {
	id int
}

type table struct {
	cache map[int]float64
	buf   []int
}

// dispatch is the seeded hot function: every per-event allocation kind
// in one body.
//
//hot:path
func (t *table) dispatch(id int) {
	p := &payload{id: id} // want `&hotalloc\.payload composite literal escapes to the heap in hot path dispatch`
	_ = p
	s := []int{1, 2, 3} // want `slice literal allocates in hot path dispatch`
	_ = s
	m := map[int]int{} // want `map literal allocates in hot path dispatch`
	_ = m
	c := make(map[int]float64) // want `make\(map\) allocates in hot path dispatch`
	_ = c
	ch := make(chan int) // want `make\(chan\) allocates in hot path dispatch`
	_ = ch
	var grow []int
	grow = append(grow, id) // want `append to grow may reallocate per event in hot path dispatch`
	_ = grow
	fmt.Println(id) // want `fmt\.Println allocates and boxes its arguments in hot path dispatch`
	t.helper(id)
	t.coldStart()
}

// helper is hot by propagation: dispatch calls it.
func (t *table) helper(id int) {
	t.cache[id] = box(id) // want `arguments box into \.\.\.interface\{\} in hot path helper \(called from hot dispatch\)`
}

// coldStart is lazily-called one-time setup; //hot:init stops
// propagation, so its allocations are fine.
//
//hot:init
func (t *table) coldStart() {
	if t.cache == nil {
		t.cache = make(map[int]float64)
	}
}

// box models a logging-style sink with a variadic interface signature.
func box(args ...interface{}) float64 {
	return float64(len(args))
}

// scratch shows the sanctioned idioms: capacity-sized locals and
// field/parameter appends are exempt, and the escape hatch works.
//
//hot:path
func (t *table) scratch(in []int, id int) []int {
	sized := make([]int, 0, 8)
	sized = append(sized, id)
	in = append(in, id)
	t.buf = append(t.buf, id)
	//lint:allow hotalloc deliberate per-call handle, pinned by a bench
	h := &payload{id: id}
	_ = h
	return sized
}

// schedule registers handlers with the dep kernel; the closure body is
// hot purely via the imported registersHandler fact.
func schedule(k *dep.Kernel, id int) {
	k.After(1, func() {
		evs := map[int]int{id: id} // want `map literal allocates in hot path handler literal`
		_ = evs
	})
	k.After(2, namedHandler)
}

// namedHandler becomes hot by being registered as a handler.
func namedHandler() {
	fmt.Print("fired") // want `fmt\.Print allocates and boxes its arguments in hot path namedHandler`
}

// cold is never hot: the same constructs draw no findings.
func cold(id int) *payload {
	m := map[int]int{}
	_ = m
	fmt.Println(id)
	return &payload{id: id}
}
