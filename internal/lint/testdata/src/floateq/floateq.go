// Package floateq is a lint fixture for the floateq analyzer.
package floateq

// Positive cases: exact float comparisons in ordinary code.

func equal(a, b float64) bool {
	return a == b // want `exact floating-point == comparison`
}

func notEqual(a, b float32) bool {
	return a != b // want `exact floating-point != comparison`
}

func againstZero(ti float64) bool {
	return ti == 0 // want `exact floating-point == comparison`
}

// Negative cases: integer comparisons, constant folding, the NaN
// idiom, approved epsilon helpers, and allow-annotated sentinels.

func intEqual(a, b int) bool {
	return a == b
}

const halfLife = 0.5

var widerThanHalf = halfLife == 0.25

func isNaN(x float64) bool {
	return x != x
}

func approxEqual(a, b float64) bool {
	return a == b || a-b < 1e-9 && b-a < 1e-9
}

func sentinel(capacity float64) bool {
	//lint:allow floateq deliberate sentinel; fixture exercises the escape hatch
	return capacity == 0
}
