// Package errwrap is a lint fixture for the errwrap analyzer: sentinel
// comparisons with ==/!= (carrying suggested fixes) and fmt.Errorf
// calls that format errors without %w.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrTimeout is a sentinel in the repo's convention: package-level,
// error-typed, Err-prefixed.
var ErrTimeout = errors.New("errwrap: window timed out")

// errInternal is lowercase, so it does not match the sentinel
// convention and draws no comparison findings.
var errInternal = errors.New("errwrap: internal")

func compare(err error) bool {
	return err == ErrTimeout // want `comparing an error to sentinel ErrTimeout with == fails on wrapped errors; use errors\.Is`
}

func compareFlipped(err error) bool {
	return ErrTimeout == err // want `comparing an error to sentinel ErrTimeout with == fails on wrapped errors`
}

func compareNeq(err error) bool {
	return err != ErrTimeout // want `comparing an error to sentinel ErrTimeout with != fails on wrapped errors`
}

func nilChecks(err error) bool {
	return err == nil || err != nil
}

func notSentinel(err error) bool {
	return err == errInternal
}

func approved(err error) bool {
	return errors.Is(err, ErrTimeout)
}

func severs(err error) error {
	return fmt.Errorf("settle failed: %v", err) // want `fmt\.Errorf formats error err without %w, severing the errors\.Is/As chain`
}

func wraps(err error) error {
	return fmt.Errorf("settle failed: %w", err)
}

func noErrorArgs(n int) error {
	return fmt.Errorf("bad count: %d", n)
}

func allowed(err error) bool {
	//lint:allow errwrap identity check against the exact instance is intended here
	return err == ErrTimeout
}
