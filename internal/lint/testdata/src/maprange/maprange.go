// Package maprange is a lint fixture for the maprange analyzer.
package maprange

import (
	"fmt"
	"sort"
)

// Positive cases: order-sensitive bodies.

func collectUnsorted(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map`
	}
	return keys
}

func printing(m map[int]string) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over map`
	}
}

func floatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum inside range over map`
	}
	return sum
}

func sending(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `send inside range over map`
	}
}

// Negative cases: the collect-then-sort idiom, purely local appends,
// integer accumulation, and map-to-map transfers are all fine.

func collectThenSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func localAppend(m map[int][]int) {
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		_ = doubled
	}
}

func intCount(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func invert(m map[int]string) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func allowedAppend(m map[int]string) []int {
	var keys []int
	for k := range m {
		//lint:allow maprange fixture exercises the escape hatch
		keys = append(keys, k)
	}
	return keys
}
