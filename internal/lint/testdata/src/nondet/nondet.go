// Package nondet is a lint fixture for the nondeterminism analyzer.
// It is loaded under a fake import path inside internal/, so the
// simulation-scope rules apply.
package nondet

import (
	"math/rand"
	"time"
)

// Positive cases: wall-clock reads and global rand draws.

func wallClock() int64 {
	now := time.Now()            // want `time\.Now depends on wall-clock time`
	time.Sleep(time.Millisecond) // want `time\.Sleep depends on wall-clock time`
	elapsed := time.Since(now)   // want `time\.Since depends on wall-clock time`
	return int64(elapsed)
}

func globalRand() int {
	x := rand.Intn(10)                 // want `math/rand\.Intn draws from the global math/rand source`
	f := rand.Float64()                // want `math/rand\.Float64 draws from the global math/rand source`
	rand.Shuffle(3, func(i, j int) {}) // want `math/rand\.Shuffle draws from the global math/rand source`
	return x + int(f)
}

func takenAsValue() func() float64 {
	return rand.Float64 // want `math/rand\.Float64 draws from the global math/rand source`
}

// Negative cases: deterministic time values and seeded generator
// method calls are fine, and an allow directive suppresses a deliberate
// exception.

func durations() time.Duration {
	return 3 * time.Second
}

func seededMethods() int {
	r := rand.New(rand.NewSource(42)) // seedflow's concern, not this analyzer's
	return r.Intn(10)
}

func allowed() time.Time {
	//lint:allow nondeterminism fixture exercises the escape hatch
	return time.Now()
}
