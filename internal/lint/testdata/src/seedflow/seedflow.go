// Package seedflow is a lint fixture for the seedflow analyzer. The
// negative cases import the real internal/rng to show the approved
// construction path.
package seedflow

import (
	cryptorand "crypto/rand"
	"math/rand"

	"github.com/tibfit/tibfit/internal/rng"
)

// Positive cases: raw generator construction and crypto randomness.

func rawGenerator(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `rand\.New constructs a generator outside the internal/rng seed tree` `rand\.NewSource constructs a generator outside the internal/rng seed tree`
}

func zipf(r *rand.Rand) *rand.Zipf {
	return rand.NewZipf(r, 1.1, 1, 100) // want `rand\.NewZipf constructs a generator outside the internal/rng seed tree`
}

func cryptoBytes() []byte {
	buf := make([]byte, 8)
	_, _ = cryptorand.Read(buf) // want `crypto/rand is inherently nonreproducible`
	return buf
}

// Negative cases: drawing from internal/rng streams is the approved
// path, and method calls on an existing generator are not construction.

func approved(seed int64) float64 {
	s := rng.New(seed)
	child := s.Split("noise")
	return child.Float64()
}

func methods(r *rand.Rand) int {
	return r.Intn(10)
}

func allowedConstruction(seed int64) *rand.Rand {
	//lint:allow seedflow fixture exercises the escape hatch
	return rand.New(rand.NewSource(seed))
}
