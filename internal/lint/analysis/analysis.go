// Package analysis is a self-contained, stdlib-only subset of
// golang.org/x/tools/go/analysis. The repository's build environment is
// hermetic (no module proxy), so the real x/tools dependency cannot be
// vendored; this package mirrors its API shape — Analyzer, Pass,
// Diagnostic, Fact, SuggestedFix, Reportf — closely enough that swapping
// the import path to golang.org/x/tools/go/analysis later is mechanical.
//
// The mirror grew with the suite. The original four determinism
// analyzers were single-pass syntactic/type checks over one package at
// a time; the cross-package analyzers (seedflow's interprocedural
// taint, hotalloc's callgraph reachability) additionally need facts —
// serializable observations attached to objects or packages that flow
// along the import graph, dependency-first — and the autofix pipeline
// needs diagnostics to carry suggested textual edits. Both are modeled
// on the x/tools originals; because the whole module is analyzed in one
// process, facts are held in memory instead of being gob-encoded.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis pass: a named check with documentation
// and a Run function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph documentation string, shown by the
	// multichecker's -help output.
	Doc string

	// FactTypes lists the fact types the analyzer exports and imports.
	// Like x/tools, declaring them is what opts the analyzer into the
	// dependency-ordered fact flow; each entry is a pointer to a zero
	// value of the type.
	FactTypes []Fact

	// Run applies the check to a single package. Diagnostics are
	// delivered via pass.Report; the interface{} result exists only
	// for API compatibility with x/tools and is ignored.
	Run func(*Pass) (interface{}, error)
}

// Fact is an observation an analyzer attaches to a types.Object or a
// package while analyzing one package, to be imported when analyzing a
// package that depends on it. The AFact marker method mirrors x/tools;
// fact types are pointers to structs.
type Fact interface {
	AFact()
}

// Pass provides one analyzer invocation with a fully type-checked
// package and a sink for diagnostics.
type Pass struct {
	// Analyzer is the currently running analyzer.
	Analyzer *Analyzer

	// Fset maps token.Pos values in Files to file positions.
	Fset *token.FileSet

	// Files is the package's parsed syntax.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds type and object resolution for Files.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The multichecker installs a
	// collector here; tests install their own.
	Report func(Diagnostic)

	// ExportObjectFact associates fact with obj for importing passes.
	// The runner installs the fact store; obj must belong to this
	// package. Nil outside a suite run.
	ExportObjectFact func(obj types.Object, fact Fact)

	// ImportObjectFact copies the fact of this analyzer previously
	// exported for obj into the pointer fact, reporting whether one
	// existed. obj may belong to this package or any dependency
	// analyzed earlier. Nil outside a suite run.
	ImportObjectFact func(obj types.Object, fact Fact) bool

	// ExportPackageFact associates fact with the current package.
	ExportPackageFact func(fact Fact)

	// ImportPackageFact copies the fact previously exported for pkg
	// into fact, reporting whether one existed.
	ImportPackageFact func(pkg *types.Package, fact Fact) bool
}

// Diagnostic is one reported problem, optionally carrying machine-
// applicable fixes.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional: token.NoPos means unknown
	Message string

	// SuggestedFixes are alternative edits that resolve the problem;
	// the multichecker's -fix mode applies the first one.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one machine-applicable resolution of a diagnostic: a
// message and a set of non-overlapping edits within the diagnosed
// package's files.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText. Pos == End
// inserts; empty NewText deletes.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
