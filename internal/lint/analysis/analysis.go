// Package analysis is a self-contained, stdlib-only subset of
// golang.org/x/tools/go/analysis. The repository's build environment is
// hermetic (no module proxy), so the real x/tools dependency cannot be
// vendored; this package mirrors its API shape — Analyzer, Pass,
// Diagnostic, Reportf — closely enough that swapping the import path to
// golang.org/x/tools/go/analysis later is mechanical.
//
// Only the pieces the TIBFIT lint suite needs are present: there is no
// Fact machinery, no Requires graph, and no ResultOf plumbing, because
// the four determinism analyzers are all single-pass syntactic/type
// checks over one package at a time.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis pass: a named check with documentation
// and a Run function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph documentation string, shown by the
	// multichecker's -help output.
	Doc string

	// Run applies the check to a single package. Diagnostics are
	// delivered via pass.Report; the interface{} result exists only
	// for API compatibility with x/tools and is ignored.
	Run func(*Pass) (interface{}, error)
}

// Pass provides one analyzer invocation with a fully type-checked
// package and a sink for diagnostics.
type Pass struct {
	// Analyzer is the currently running analyzer.
	Analyzer *Analyzer

	// Fset maps token.Pos values in Files to file positions.
	Fset *token.FileSet

	// Files is the package's parsed syntax.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds type and object resolution for Files.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The multichecker installs a
	// collector here; tests install their own.
	Report func(Diagnostic)
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
