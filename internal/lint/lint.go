// Package lint is the TIBFIT static-analysis suite: eight analyzers
// that enforce the reproducibility and fault-tolerance discipline the
// simulation's validation claims rest on. Trust-index trajectories and
// CTI votes must be bit-identical across runs; a single wall-clock
// read, a draw from the global math/rand source, an unsorted map
// iteration feeding output, or a raw float equality in a vote path
// silently breaks that. Beyond determinism, the suite proves snapshot
// completeness for stateful schemes (statecomplete), polices per-event
// allocation on the dispatch hot path (hotalloc), and enforces the
// sentinel-error wrapping contract (errwrap).
//
// Analyzers run over all packages in dependency order and exchange
// facts along the import graph (see the analysis subpackage), so
// cross-package properties — a helper two imports away constructing a
// raw generator, a handler registered with the kernel dispatcher —
// are visible where they matter.
//
// The suite runs via cmd/tibfit-lint (wired into `make lint` and CI;
// -fix applies suggested fixes, -sarif emits SARIF 2.1.0 for code
// scanning). Deliberate exceptions are annotated in the source with
//
//	//lint:allow <rule> <reason>
//
// on the offending line or the line above it; the lintdirective rule
// keeps the escape hatch itself honest. docs/LINTING.md catalogues the
// rules; docs/DETERMINISM.md documents the underlying invariants.
package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/tibfit/tibfit/internal/lint/analysis"
)

// ModulePath is the import-path prefix of this module; the analyzers
// use it to recognize simulation packages and intra-module imports.
const ModulePath = "github.com/tibfit/tibfit"

// Analyzers is the full suite, in the order the multichecker runs it.
var Analyzers = []*analysis.Analyzer{
	Nondeterminism,
	MapRange,
	FloatEq,
	SeedFlow,
	StateComplete,
	HotAlloc,
	ErrWrap,
	LintDirective,
}

// inSimulationScope reports whether a package is part of the simulation
// core the determinism rules apply to: everything under internal/
// except the packages that exist precisely to encapsulate the
// forbidden operations. cmd/ and examples/ are out of scope (timing
// prints and demo output are fine there).
func inSimulationScope(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, ModulePath+"/internal/")
}

// pkgQualifier resolves a selector like pkg.Name to the imported
// package path when pkg is a package name in scope. It returns "" for
// method calls and field selections.
func pkgQualifier(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// rootIdent returns the leftmost identifier of an lvalue-ish
// expression: x, x.f, x[i], and parenthesized forms all resolve to x.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
