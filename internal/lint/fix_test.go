package lint

import (
	"strings"
	"testing"
)

// memReader serves fixture sources to ApplyFixes without touching disk.
func memReader(files map[string]string) func(string) ([]byte, error) {
	return func(name string) ([]byte, error) {
		src, ok := files[name]
		if !ok {
			return nil, &fileNotFound{name}
		}
		return []byte(src), nil
	}
}

type fileNotFound struct{ name string }

func (e *fileNotFound) Error() string { return "no fixture file " + e.name }

func fixFinding(file string, start, end int, newText string) Finding {
	return Finding{
		Rule:    "errwrap",
		Message: "test finding",
		Fixes: []Fix{{
			Message: "rewrite",
			Edits:   []Edit{{Filename: file, Start: start, End: end, NewText: newText}},
		}},
	}
}

func TestApplyFixesRewrites(t *testing.T) {
	src := "aaa bbb ccc\n"
	out, err := ApplyFixes([]Finding{
		fixFinding("f.go", 4, 7, "BBB"),
		fixFinding("f.go", 0, 3, "AA"),
	}, memReader(map[string]string{"f.go": src}))
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if got, want := string(out["f.go"]), "AA BBB ccc\n"; got != want {
		t.Errorf("fixed = %q, want %q", got, want)
	}
}

func TestApplyFixesCollapsesDuplicates(t *testing.T) {
	// Two findings proposing the identical rewrite (same bytes, same
	// replacement) must collapse, not collide.
	out, err := ApplyFixes([]Finding{
		fixFinding("f.go", 0, 3, "xyz"),
		fixFinding("f.go", 0, 3, "xyz"),
	}, memReader(map[string]string{"f.go": "abc def\n"}))
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if got, want := string(out["f.go"]), "xyz def\n"; got != want {
		t.Errorf("fixed = %q, want %q", got, want)
	}
}

func TestApplyFixesRejectsOverlap(t *testing.T) {
	_, err := ApplyFixes([]Finding{
		fixFinding("f.go", 0, 5, "x"),
		fixFinding("f.go", 3, 8, "y"),
	}, memReader(map[string]string{"f.go": "abcdefghij\n"}))
	if err == nil || !strings.Contains(err.Error(), "overlapping fixes") {
		t.Fatalf("err = %v, want overlapping-fixes error", err)
	}
}

func TestApplyFixesSkipsFindingsWithoutFixes(t *testing.T) {
	out, err := ApplyFixes([]Finding{
		{Rule: "floateq", Message: "no machine fix"},
	}, memReader(map[string]string{}))
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(out) != 0 {
		t.Errorf("rewrote %d files, want 0", len(out))
	}
}
