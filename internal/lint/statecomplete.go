package lint

import (
	"go/ast"
	"go/types"

	"github.com/tibfit/tibfit/internal/lint/analysis"
)

// StateComplete proves snapshot completeness for stateful decision
// schemes: every mutable field a scheme writes while judging must be
// serialized by Snapshot and rebuilt by Restore, or a cluster-head
// failover silently resets part of the trust state.
var StateComplete = &analysis.Analyzer{
	Name: "statecomplete",
	Doc: "stateful schemes must snapshot and restore every field their decision methods mutate\n\n" +
		"A type with both Snapshot and Restore methods participates in\n" +
		"cluster-head failover: the outgoing head serializes its trust state\n" +
		"and the successor rebuilds it. Any struct field written inside\n" +
		"Weight, Judge, or Arbitrate — on the scheme itself or on any\n" +
		"same-package struct reachable from its fields — must therefore be\n" +
		"mentioned in both Snapshot and Restore (directly, as a composite\n" +
		"literal key, or via a whole-struct copy). A field that is mutated\n" +
		"but never carried across the handoff is a silent state reset.",
	Run: runStateComplete,
}

// mutatorMethods are the decision-path methods whose writes constitute
// trust state that must survive a failover.
var mutatorMethods = map[string]bool{
	"Weight":    true,
	"Judge":     true,
	"Arbitrate": true,
}

// schemeMethods gathers the per-type method declarations StateComplete
// cares about.
type schemeMethods struct {
	named     *types.Named
	snapshot  *ast.FuncDecl
	restore   *ast.FuncDecl
	mutators  []*ast.FuncDecl
	declOrder int
}

func runStateComplete(pass *analysis.Pass) (interface{}, error) {
	byType := map[*types.Named]*schemeMethods{}
	var order []*types.Named
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			named := receiverNamed(pass.TypesInfo, fd)
			if named == nil {
				continue
			}
			sm := byType[named]
			if sm == nil {
				sm = &schemeMethods{named: named, declOrder: len(order)}
				byType[named] = sm
				order = append(order, named)
			}
			switch {
			case fd.Name.Name == "Snapshot":
				sm.snapshot = fd
			case fd.Name.Name == "Restore":
				sm.restore = fd
			case mutatorMethods[fd.Name.Name]:
				sm.mutators = append(sm.mutators, fd)
			}
		}
	}

	for _, named := range order {
		sm := byType[named]
		if sm.snapshot == nil || sm.restore == nil || len(sm.mutators) == 0 {
			continue
		}
		owners := reachableStructs(named, pass.Pkg)
		fieldOwner := map[*types.Var]*types.Named{}
		for _, o := range owners {
			st, ok := o.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				fieldOwner[st.Field(i)] = o
			}
		}

		written := map[*types.Var]string{} // field -> mutator method name
		var writtenOrder []*types.Var
		for _, m := range sm.mutators {
			for _, fv := range writtenFields(pass.TypesInfo, m.Body, fieldOwner) {
				if _, seen := written[fv]; !seen {
					written[fv] = m.Name.Name
					writtenOrder = append(writtenOrder, fv)
				}
			}
		}
		if len(written) == 0 {
			continue
		}

		snapCov := coveredFields(pass.TypesInfo, sm.snapshot.Body, fieldOwner)
		restCov := coveredFields(pass.TypesInfo, sm.restore.Body, fieldOwner)
		for _, fv := range writtenOrder {
			owner := fieldOwner[fv]
			if !snapCov[fv] {
				pass.Reportf(fv.Pos(),
					"%s.%s is written in %s but never serialized in %s.Snapshot; the field resets on cluster-head failover",
					owner.Obj().Name(), fv.Name(), written[fv], named.Obj().Name())
			}
			if !restCov[fv] {
				pass.Reportf(fv.Pos(),
					"%s.%s is written in %s but never rebuilt in %s.Restore; the field resets on cluster-head failover",
					owner.Obj().Name(), fv.Name(), written[fv], named.Obj().Name())
			}
		}
	}
	return nil, nil
}

// receiverNamed resolves a method declaration to its receiver's named
// type, unwrapping a pointer receiver.
func receiverNamed(info *types.Info, fd *ast.FuncDecl) *types.Named {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// reachableStructs returns the named struct types in pkg reachable from
// root through its field types (pointers, slices, arrays, and maps are
// walked through), root included. These are the structs whose fields
// count as the scheme's own state.
func reachableStructs(root *types.Named, pkg *types.Package) []*types.Named {
	var out []*types.Named
	seen := map[*types.Named]bool{}
	var visitType func(t types.Type)
	visitNamed := func(n *types.Named) {
		if seen[n] || n.Obj().Pkg() != pkg {
			return
		}
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			return
		}
		seen[n] = true
		out = append(out, n)
		for i := 0; i < st.NumFields(); i++ {
			visitType(st.Field(i).Type())
		}
	}
	visitType = func(t types.Type) {
		switch v := t.(type) {
		case *types.Named:
			visitNamed(v)
		case *types.Pointer:
			visitType(v.Elem())
		case *types.Slice:
			visitType(v.Elem())
		case *types.Array:
			visitType(v.Elem())
		case *types.Map:
			visitType(v.Key())
			visitType(v.Elem())
		}
	}
	visitNamed(root)
	return out
}

// writtenFields collects the state-struct fields assigned in body, in
// source order. A write is an assignment or inc/dec whose left-hand
// side is rooted in a field selector: s.trust = x, r.correct++,
// s.recs[id] = r (a write through the recs field).
func writtenFields(info *types.Info, body *ast.BlockStmt, fieldOwner map[*types.Var]*types.Named) []*types.Var {
	var out []*types.Var
	record := func(expr ast.Expr) {
		if fv := lvalueField(info, expr, fieldOwner); fv != nil {
			out = append(out, fv)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(v.X)
		}
		return true
	})
	return out
}

// lvalueField unwraps an assignment target down to the state-struct
// field it writes through, or nil.
func lvalueField(info *types.Info, expr ast.Expr, fieldOwner map[*types.Var]*types.Named) *types.Var {
	for {
		switch v := expr.(type) {
		case *ast.ParenExpr:
			expr = v.X
		case *ast.StarExpr:
			expr = v.X
		case *ast.IndexExpr:
			expr = v.X
		case *ast.SelectorExpr:
			if fv, ok := info.Uses[v.Sel].(*types.Var); ok && fv.IsField() {
				if _, owned := fieldOwner[fv]; owned {
					return fv
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// coveredFields collects the state-struct fields body mentions. A field
// is covered by a direct selector (snap.trust), a composite-literal key
// (&rec{trust: v}), or a whole-struct value copy: any expression whose
// type is one of the state structs (out[id] = *r, rc := r) carries
// every field of that struct at once.
func coveredFields(info *types.Info, body *ast.BlockStmt, fieldOwner map[*types.Var]*types.Named) map[*types.Var]bool {
	covered := map[*types.Var]bool{}
	coverWhole := func(named *types.Named) {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			covered[st.Field(i)] = true
		}
	}
	structSet := map[*types.Named]bool{}
	for _, owner := range fieldOwner {
		structSet[owner] = true
	}
	// A selector base (the r in r.trust) is a value of the struct type
	// but only touches one field, and an assignment target (out[id] = ...)
	// receives whatever the right-hand side carries; neither is itself a
	// whole-value copy.
	selBase := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SelectorExpr:
			selBase[ast.Unparen(v.X)] = true
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				selBase[ast.Unparen(lhs)] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			// Uses covers both selector fields and composite-literal keys.
			if fv, ok := info.Uses[id].(*types.Var); ok && fv.IsField() {
				if _, owned := fieldOwner[fv]; owned {
					covered[fv] = true
				}
			}
		}
		expr, ok := n.(ast.Expr)
		if !ok || selBase[expr] {
			return true
		}
		named, ok := info.TypeOf(expr).(*types.Named)
		if !ok || !structSet[named] {
			return true
		}
		if lit, isLit := expr.(*ast.CompositeLit); isLit {
			// A keyed composite literal covers only the fields it names
			// (already collected via Uses); an unkeyed one must list every
			// field to compile, so it covers the whole struct.
			if len(lit.Elts) > 0 && !hasKeyedElts(lit) {
				coverWhole(named)
			}
			return true
		}
		// Whole-value copies (out[id] = *r, rc := r) carry every field.
		// Only value expressions count: a mention of the type itself
		// (make(map[int]rec)) types identically but copies nothing.
		// Identifiers live in Uses rather than Types, so check there.
		if id, isIdent := expr.(*ast.Ident); isIdent {
			if _, isVar := info.Uses[id].(*types.Var); isVar {
				coverWhole(named)
			}
			return true
		}
		if tv, recorded := info.Types[expr]; recorded && tv.IsValue() {
			coverWhole(named)
		}
		return true
	})
	return covered
}

func hasKeyedElts(lit *ast.CompositeLit) bool {
	for _, el := range lit.Elts {
		if _, ok := el.(*ast.KeyValueExpr); ok {
			return true
		}
	}
	return false
}
