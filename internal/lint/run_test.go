package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"github.com/tibfit/tibfit/internal/lint/analysis"
	"github.com/tibfit/tibfit/internal/lint/loader"
)

// checkSource type-checks one source string under the given import path
// and runs the full suite over it, returning the surviving findings.
func checkSource(t *testing.T, pkgPath, src string) []Finding {
	t.Helper()
	return checkSourceWith(t, pkgPath, src, Analyzers...)
}

// checkSourceWith is checkSource restricted to the given analyzers.
func checkSourceWith(t *testing.T, pkgPath, src string, analyzers ...*analysis.Analyzer) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", nil)}
	tpkg, err := conf.Check(pkgPath, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	pkg := &loader.Package{PkgPath: pkgPath, Syntax: []*ast.File{file}, Types: tpkg, TypesInfo: info}
	return RunSuite([]*loader.Package{pkg}, fset, analyzers)
}

func TestAllowDirectiveValidation(t *testing.T) {
	src := `package p

func f(x float64) float64 {
	//lint:allow
	_ = x
	//lint:allow nosuchrule because reasons
	_ = x
	//lint:allow floateq deliberate sentinel for the test
	if x == 0 {
		return 1
	}
	return x
}
`
	findings := checkSource(t, ModulePath+"/internal/fake", src)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (malformed + unknown rule): %v", len(findings), findings)
	}
	if findings[0].Rule != "lintdirective" || !strings.Contains(findings[0].Message, "malformed") {
		t.Errorf("finding 0 = %v, want malformed-directive error", findings[0])
	}
	if findings[1].Rule != "lintdirective" || !strings.Contains(findings[1].Message, "nosuchrule") {
		t.Errorf("finding 1 = %v, want unknown-rule error", findings[1])
	}
}

func TestScopeGating(t *testing.T) {
	src := `package p

import "time"

func f() int64 { return time.Now().UnixNano() }
`
	cases := []struct {
		pkgPath string
		want    int
	}{
		{ModulePath + "/internal/core", 1},
		{ModulePath + "/internal/trace", 0}, // wall-clock stamps allowlisted
		{ModulePath + "/cmd/tibfit-figures", 0},
		{"example.com/other", 0},
	}
	for _, tc := range cases {
		if got := len(checkSource(t, tc.pkgPath, src)); got != tc.want {
			t.Errorf("package %s: got %d findings, want %d", tc.pkgPath, got, tc.want)
		}
	}
}

func TestRandExemption(t *testing.T) {
	src := `package p

import "math/rand"

func f(seed int64) float64 { return rand.New(rand.NewSource(seed)).Float64() }
`
	if got := len(checkSource(t, ModulePath+"/internal/rng", src)); got != 0 {
		t.Errorf("internal/rng: got %d findings, want 0 (rng is the designated wrapper)", got)
	}
	if got := len(checkSource(t, ModulePath+"/internal/node", src)); got == 0 {
		t.Error("internal/node: raw rand construction not flagged")
	}
}
