package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"github.com/tibfit/tibfit/internal/lint/analysis"
	"github.com/tibfit/tibfit/internal/lint/loader"
)

// Finding is one diagnostic after allow-directive filtering, resolved
// to a file position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Message)
}

// allowKey identifies one source line.
type allowKey struct {
	file string
	line int
}

// RunSuite runs every analyzer over every package, applies
// //lint:allow suppressions, and returns the surviving findings sorted
// by position. Malformed allow directives are themselves findings
// (rule "lintdirective"), so a typo cannot silently disable a rule.
func RunSuite(pkgs []*loader.Package, fset *token.FileSet, analyzers []*analysis.Analyzer) []Finding {
	var findings []Finding
	allows := map[allowKey]map[string]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			findings = append(findings, collectAllows(fset, file, allows)...)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				if allowed(allows, pos, a.Name) {
					return
				}
				findings = append(findings, Finding{Pos: pos, Rule: a.Name, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				findings = append(findings, Finding{
					Rule:    a.Name,
					Message: fmt.Sprintf("analyzer failed: %v", err),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return findings
}

// allowed reports whether a finding at pos is suppressed by an allow
// directive on the same line or the line immediately above.
func allowed(allows map[allowKey]map[string]bool, pos token.Position, rule string) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if rules := allows[allowKey{pos.Filename, line}]; rules[rule] {
			return true
		}
	}
	return false
}

// collectAllows records every well-formed
//
//	//lint:allow <rule> <reason>
//
// directive in file into allows (keyed by the directive's own line) and
// returns a finding for each malformed one. The reason is mandatory:
// an allow without a justification is treated as an error, not a
// suppression.
func collectAllows(fset *token.FileSet, file *ast.File, allows map[allowKey]map[string]bool) []Finding {
	knownRules := map[string]bool{}
	for _, a := range Analyzers {
		knownRules[a.Name] = true
	}
	var findings []Finding
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//lint:allow")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			switch {
			case len(fields) < 2:
				findings = append(findings, Finding{
					Pos:  pos,
					Rule: "lintdirective",
					Message: "malformed //lint:allow directive: want `//lint:allow <rule> <reason>` " +
						"(the reason is mandatory)",
				})
			case !knownRules[fields[0]]:
				findings = append(findings, Finding{
					Pos:     pos,
					Rule:    "lintdirective",
					Message: fmt.Sprintf("//lint:allow names unknown rule %q", fields[0]),
				})
			default:
				key := allowKey{pos.Filename, pos.Line}
				if allows[key] == nil {
					allows[key] = map[string]bool{}
				}
				allows[key][fields[0]] = true
			}
		}
	}
	return findings
}
