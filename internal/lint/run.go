package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/tibfit/tibfit/internal/lint/analysis"
	"github.com/tibfit/tibfit/internal/lint/loader"
)

// Finding is one diagnostic after allow-directive filtering, resolved
// to a file position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string

	// Fixes carries the diagnostic's machine-applicable resolutions
	// with positions resolved to file offsets, ready for ApplyFixes.
	Fixes []Fix
}

// Fix is one resolved suggested fix.
type Fix struct {
	Message string
	Edits   []Edit
}

// Edit replaces bytes [Start, End) of Filename with NewText.
type Edit struct {
	Filename string
	Start    int
	End      int
	NewText  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Message)
}

// allowKey identifies one source line.
type allowKey struct {
	file string
	line int
}

// allowEntry is one well-formed //lint:allow directive, tracked so
// directives that suppress nothing are themselves reported as stale.
type allowEntry struct {
	pos  token.Position
	used bool
}

// allowTable maps directive lines to the rules they allow.
type allowTable map[allowKey]map[string]*allowEntry

// RunSuite runs every analyzer over every package in dependency order
// (so facts exported while analyzing a package are visible to packages
// that import it), applies //lint:allow suppressions, and returns the
// surviving findings sorted by position. Directive hygiene is enforced
// on two sides: malformed or unknown-rule directives are findings of
// the LintDirective analyzer, and a well-formed directive that
// suppressed no diagnostic of any analyzer in this run is reported
// stale — an allow must always be justified by a live finding.
func RunSuite(pkgs []*loader.Package, fset *token.FileSet, analyzers []*analysis.Analyzer) []Finding {
	var findings []Finding
	allows := allowTable{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			collectAllows(fset, file, allows)
		}
	}
	facts := newFactStore()
	ranRules := map[string]bool{}
	for _, a := range analyzers {
		ranRules[a.Name] = true
	}
	for _, pkg := range topoOrder(pkgs) {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			facts.install(pass)
			pass.Report = func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				if allows.suppress(pos, a.Name) {
					return
				}
				findings = append(findings, Finding{
					Pos:     pos,
					Rule:    a.Name,
					Message: d.Message,
					Fixes:   resolveFixes(fset, d.SuggestedFixes),
				})
			}
			if _, err := a.Run(pass); err != nil {
				findings = append(findings, Finding{
					Rule:    a.Name,
					Message: fmt.Sprintf("analyzer failed: %v", err),
				})
			}
		}
	}
	keys := make([]allowKey, 0, len(allows))
	for key := range allows {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, key := range keys {
		rules := make([]string, 0, len(allows[key]))
		for rule := range allows[key] {
			rules = append(rules, rule)
		}
		sort.Strings(rules)
		for _, rule := range rules {
			entry := allows[key][rule]
			if ranRules[rule] && !entry.used {
				findings = append(findings, Finding{
					Pos:  entry.pos,
					Rule: RuleLintDirective,
					Message: fmt.Sprintf(
						"stale //lint:allow %s: no %s diagnostic on this line or the one below; delete the directive",
						rule, rule),
				})
			}
		}
	}
	sortFindings(findings)
	return findings
}

// topoOrder returns pkgs sorted dependency-first: a package appears
// after every package it imports that is also in pkgs, so fact flow
// along the import graph sees exporter before importer. The traversal
// is deterministic (input order, then import order).
func topoOrder(pkgs []*loader.Package) []*loader.Package {
	byTypes := make(map[*types.Package]*loader.Package, len(pkgs))
	for _, p := range pkgs {
		byTypes[p.Types] = p
	}
	ordered := make([]*loader.Package, 0, len(pkgs))
	visited := map[*loader.Package]bool{}
	var visit func(p *loader.Package)
	visit = func(p *loader.Package) {
		if visited[p] {
			return
		}
		visited[p] = true
		for _, imp := range p.Types.Imports() {
			if dep, ok := byTypes[imp]; ok {
				visit(dep)
			}
		}
		ordered = append(ordered, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return ordered
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// resolveFixes converts pos-based suggested fixes to offset-based ones
// that survive without the FileSet.
func resolveFixes(fset *token.FileSet, fixes []analysis.SuggestedFix) []Fix {
	if len(fixes) == 0 {
		return nil
	}
	out := make([]Fix, 0, len(fixes))
	for _, sf := range fixes {
		fix := Fix{Message: sf.Message}
		for _, te := range sf.TextEdits {
			start := fset.Position(te.Pos)
			end := start
			if te.End.IsValid() {
				end = fset.Position(te.End)
			}
			fix.Edits = append(fix.Edits, Edit{
				Filename: start.Filename,
				Start:    start.Offset,
				End:      end.Offset,
				NewText:  string(te.NewText),
			})
		}
		out = append(out, fix)
	}
	return out
}

// suppress reports whether a finding at pos is suppressed by an allow
// directive on the same line or the line immediately above, marking the
// directive used.
func (t allowTable) suppress(pos token.Position, rule string) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if entry := t[allowKey{pos.Filename, line}][rule]; entry != nil {
			entry.used = true
			return true
		}
	}
	return false
}

// parseAllowDirective splits one comment into its //lint:allow payload.
// ok is false for comments that are not directives at all; rule is ""
// for a malformed directive (missing rule or mandatory reason).
func parseAllowDirective(c *ast.Comment) (rule string, ok bool) {
	rest, isDirective := strings.CutPrefix(c.Text, "//lint:allow")
	if !isDirective {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", true
	}
	return fields[0], true
}

// collectAllows records every well-formed
//
//	//lint:allow <rule> <reason>
//
// directive in file into allows, keyed by the directive's own line.
// Malformed directives and unknown rule names are skipped here; the
// LintDirective analyzer reports them.
func collectAllows(fset *token.FileSet, file *ast.File, allows allowTable) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rule, ok := parseAllowDirective(c)
			if !ok || rule == "" || !knownRule(rule) {
				continue
			}
			pos := fset.Position(c.Pos())
			key := allowKey{pos.Filename, pos.Line}
			if allows[key] == nil {
				allows[key] = map[string]*allowEntry{}
			}
			allows[key][rule] = &allowEntry{pos: pos}
		}
	}
}

// knownRule reports whether name is a rule of the full suite.
func knownRule(name string) bool {
	for _, a := range Analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}
