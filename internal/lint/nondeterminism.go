package lint

import (
	"go/ast"
	"strings"

	"github.com/tibfit/tibfit/internal/lint/analysis"
)

// wallClockFuncs are the time-package entry points that read or depend
// on the wall clock. Any of them inside a simulation package makes a
// run unreproducible (and time.Sleep additionally couples results to
// scheduler behavior).
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// globalRandFuncs are the package-level math/rand (and math/rand/v2)
// functions that draw from the shared process-wide source. They are
// unseeded (or racily shared) and therefore forbidden everywhere in the
// simulation; internal/rng wraps an explicit per-stream source instead.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "IntN": true, "Int32": true,
	"Int32N": true, "Int64": true, "Int64N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true, "N": true,
}

// nondetTimeExempt lists simulation packages allowed to touch the wall
// clock: internal/trace stamps emitted trace records with real time for
// operator convenience (the stamps are not simulation inputs);
// internal/engine hosts the real-time WallClock driver (the batch path
// never routes through it — the sim kernel is its own Clock); and
// internal/serve measures request latency for the serving histograms.
var nondetTimeExempt = map[string]bool{
	ModulePath + "/internal/trace":  true,
	ModulePath + "/internal/engine": true,
	ModulePath + "/internal/serve":  true,
}

// nondetRandExempt lists simulation packages allowed to reference
// math/rand: internal/rng is the designated wrapper.
var nondetRandExempt = map[string]bool{
	ModulePath + "/internal/rng": true,
}

// Nondeterminism forbids wall-clock reads and global math/rand draws in
// simulation packages.
var Nondeterminism = &analysis.Analyzer{
	Name: "nondeterminism",
	Doc: "forbid time.Now/time.Sleep and global math/rand in internal simulation packages\n\n" +
		"Simulation results must be bit-identical across runs. Wall-clock reads and\n" +
		"draws from the process-wide rand source make them depend on when and where\n" +
		"the process runs. Use simulated time and internal/rng.Source streams.\n" +
		"Exempt: internal/trace (wall-clock stamps on trace records), internal/rng.",
	Run: runNondeterminism,
}

func runNondeterminism(pass *analysis.Pass) (interface{}, error) {
	pkg := pass.Pkg.Path()
	if !inSimulationScope(pkg) {
		return nil, nil
	}
	checkTime := !nondetTimeExempt[pkg]
	checkRand := !nondetRandExempt[pkg]
	if !checkTime && !checkRand {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch q := pkgQualifier(pass.TypesInfo, sel); {
			case q == "time" && checkTime && wallClockFuncs[sel.Sel.Name]:
				pass.Reportf(sel.Pos(),
					"time.%s depends on wall-clock time; simulation code must be reproducible — thread simulated time instead (see docs/DETERMINISM.md)",
					sel.Sel.Name)
			case strings.HasPrefix(q, "math/rand") && checkRand && globalRandFuncs[sel.Sel.Name]:
				pass.Reportf(sel.Pos(),
					"%s.%s draws from the global math/rand source; use a named internal/rng.Source stream instead",
					q, sel.Sel.Name)
			}
			return true
		})
	}
	return nil, nil
}
