package lint_test

import (
	"testing"

	"github.com/tibfit/tibfit/internal/lint"
	"github.com/tibfit/tibfit/internal/lint/linttest"
)

// Each fixture is loaded under a fake import path inside internal/ so
// the analyzers' simulation-scope gating applies; every fixture mixes
// positive (`// want`) and negative cases, including the //lint:allow
// escape hatch.

func TestNondeterminism(t *testing.T) {
	linttest.Run(t, lint.Nondeterminism, "testdata/src/nondet",
		lint.ModulePath+"/internal/linttestdata/nondet")
}

func TestMapRange(t *testing.T) {
	linttest.Run(t, lint.MapRange, "testdata/src/maprange",
		lint.ModulePath+"/internal/linttestdata/maprange")
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, lint.FloatEq, "testdata/src/floateq",
		lint.ModulePath+"/internal/linttestdata/floateq")
}

func TestSeedFlow(t *testing.T) {
	linttest.Run(t, lint.SeedFlow, "testdata/src/seedflow",
		lint.ModulePath+"/internal/linttestdata/seedflow")
}
