package lint_test

import (
	"testing"

	"github.com/tibfit/tibfit/internal/lint"
	"github.com/tibfit/tibfit/internal/lint/linttest"
)

// Each fixture is loaded under a fake import path inside internal/ so
// the analyzers' simulation-scope gating applies; every fixture mixes
// positive (`// want`) and negative cases, including the //lint:allow
// escape hatch.

func TestNondeterminism(t *testing.T) {
	linttest.Run(t, lint.Nondeterminism, "testdata/src/nondet",
		lint.ModulePath+"/internal/linttestdata/nondet")
}

func TestMapRange(t *testing.T) {
	linttest.Run(t, lint.MapRange, "testdata/src/maprange",
		lint.ModulePath+"/internal/linttestdata/maprange")
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, lint.FloatEq, "testdata/src/floateq",
		lint.ModulePath+"/internal/linttestdata/floateq")
}

func TestSeedFlow(t *testing.T) {
	linttest.Run(t, lint.SeedFlow, "testdata/src/seedflow",
		lint.ModulePath+"/internal/linttestdata/seedflow")
}

// TestSeedFlowInterprocedural exercises fact propagation: the raw
// construction lives in a dep fixture loaded OUTSIDE the simulation
// scope (no direct diagnostics there), and the in-scope consumer is
// flagged at its cross-package call sites via imported facts.
func TestSeedFlowInterprocedural(t *testing.T) {
	linttest.RunDeps(t, lint.SeedFlow, "testdata/src/seedflowinterproc",
		lint.ModulePath+"/internal/linttestdata/seedflowinterproc",
		linttest.Dep{
			Dir:     "testdata/src/seedflowdep",
			PkgPath: lint.ModulePath + "/examples/linttestdata/seedflowdep",
		})
}

func TestStateComplete(t *testing.T) {
	linttest.Run(t, lint.StateComplete, "testdata/src/statecomplete",
		lint.ModulePath+"/internal/linttestdata/statecomplete")
}

// TestHotAlloc covers the annotation roots, intra-package propagation,
// the //hot:init stop, and handler literals made hot by the
// registersHandler fact imported from the dep fixture.
func TestHotAlloc(t *testing.T) {
	linttest.RunDeps(t, lint.HotAlloc, "testdata/src/hotalloc",
		lint.ModulePath+"/internal/linttestdata/hotalloc",
		linttest.Dep{
			Dir:     "testdata/src/hotallocdep",
			PkgPath: lint.ModulePath + "/internal/linttestdata/hotallocdep",
		})
}

func TestErrWrap(t *testing.T) {
	linttest.Run(t, lint.ErrWrap, "testdata/src/errwrap",
		lint.ModulePath+"/internal/linttestdata/errwrap")
}

// TestErrWrapFix applies the suggested fixes and compares against the
// golden: == / != sentinel comparisons rewrite to errors.Is, everything
// else (including the //lint:allow'd comparison) is left alone.
func TestErrWrapFix(t *testing.T) {
	linttest.RunFix(t, lint.ErrWrap, "testdata/src/errwrap",
		lint.ModulePath+"/internal/linttestdata/errwrap")
}
