package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/tibfit/tibfit/internal/lint/analysis"
)

// MapRange flags `for ... range` loops over maps whose bodies are
// order-sensitive: appending to an outer slice with no subsequent sort,
// writing output, sending on a channel, or accumulating floats (float
// addition is not associative, so even a "commutative" sum changes in
// the low bits with iteration order). Map iteration order is
// deliberately randomized by the runtime, so each of these makes output
// differ between runs.
var MapRange = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flag order-sensitive bodies of range-over-map loops\n\n" +
		"Go randomizes map iteration order per run. A loop over a map may not\n" +
		"append to an outer slice (unless the slice is sorted immediately after\n" +
		"the loop), write output, send on a channel, or accumulate floats.\n" +
		"Iterate sorted keys instead, or sort the collected result.",
	Run: runMapRange,
}

func runMapRange(pass *analysis.Pass) (interface{}, error) {
	if !inSimulationScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rs, enclosingStmts(stack, rs))
			return true
		})
	}
	return nil, nil
}

// checkMapRangeBody reports the order-sensitive operations in one
// range-over-map body. following is the statement list after the range
// statement in its enclosing block, used to recognize the
// collect-then-sort idiom.
func checkMapRangeBody(pass *analysis.Pass, rs *ast.RangeStmt, following []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			// A nested map range reports on its own; don't also
			// attribute its body to the outer loop.
			if v != rs {
				if t := pass.TypesInfo.TypeOf(v.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.SendStmt:
			pass.Reportf(v.Pos(),
				"send inside range over map delivers values in nondeterministic order; iterate sorted keys instead")
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, v, following)
		case *ast.CallExpr:
			if name, ok := outputCall(pass.TypesInfo, v); ok {
				pass.Reportf(v.Pos(),
					"%s inside range over map writes output in nondeterministic order; iterate sorted keys instead", name)
			}
		}
		return true
	})
}

// checkMapRangeAssign flags appends to outer slices (without a
// subsequent sort) and float accumulation into outer variables.
func checkMapRangeAssign(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, following []ast.Stmt) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass.TypesInfo, call) || i >= len(as.Lhs) {
				continue
			}
			target := rootIdent(as.Lhs[i])
			obj := objectOf(pass.TypesInfo, target)
			if obj == nil || declaredInside(obj, rs.Body) {
				continue
			}
			if sortedAfter(pass.TypesInfo, following, obj) {
				continue
			}
			pass.Reportf(as.Pos(),
				"append to %s inside range over map collects in nondeterministic order; sort %s after the loop or iterate sorted keys",
				target.Name, target.Name)
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		target := rootIdent(as.Lhs[0])
		obj := objectOf(pass.TypesInfo, target)
		if obj == nil || declaredInside(obj, rs.Body) {
			return
		}
		if t := pass.TypesInfo.TypeOf(as.Lhs[0]); t != nil && isFloat(t) {
			pass.Reportf(as.Pos(),
				"float accumulation into %s inside range over map is order-sensitive (float addition is not associative); iterate sorted keys",
				target.Name)
		}
	}
}

// outputCall reports whether a call writes externally visible output
// whose order would leak map iteration order: fmt printing (not
// Sprint*, which only builds a value) and common writer/encoder
// methods.
func outputCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if q := pkgQualifier(info, sel); q != "" {
		if q == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
			return "fmt." + name, true
		}
		return "", false
	}
	// Method call: flag the write/encode family on any receiver
	// (strings.Builder, bufio.Writer, csv.Writer, json.Encoder, ...).
	switch name {
	case "Write", "WriteString", "WriteRune", "WriteByte", "Encode",
		"Print", "Printf", "Println":
		return "method " + name, true
	}
	return "", false
}

// sortedAfter reports whether one of the statements following the loop
// sorts the append target (sort.* or slices.Sort* with the target
// anywhere in the arguments, or a Sort method on the target).
func sortedAfter(info *types.Info, following []ast.Stmt, target types.Object) bool {
	for _, stmt := range following {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			q := pkgQualifier(info, sel)
			isSortCall := q == "sort" ||
				(q == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort")) ||
				(q == "" && strings.Contains(sel.Sel.Name, "Sort"))
			if !isSortCall {
				return true
			}
			for _, arg := range call.Args {
				if mentions(info, arg, target) {
					found = true
					return false
				}
			}
			if q == "" && mentions(info, sel.X, target) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// mentions reports whether expr references obj anywhere.
func mentions(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objectOf(info, id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// enclosingStmts returns the statements after stmt in its nearest
// enclosing statement list (block, case clause, or comm clause), given
// the ancestor stack built during traversal.
func enclosingStmts(stack []ast.Node, stmt ast.Stmt) []ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch v := stack[i].(type) {
		case *ast.BlockStmt:
			list = v.List
		case *ast.CaseClause:
			list = v.Body
		case *ast.CommClause:
			list = v.Body
		default:
			continue
		}
		for j, s := range list {
			if s == stmt {
				return list[j+1:]
			}
		}
	}
	return nil
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func declaredInside(obj types.Object, body *ast.BlockStmt) bool {
	return obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
