package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"github.com/tibfit/tibfit/internal/lint/analysis"
)

// ErrWrap enforces the sentinel-error contract: sentinels are wrapped
// with %w and tested with errors.Is/As, never compared with ==.
var ErrWrap = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "sentinel errors must be wrapped with %w and matched with errors.Is, never ==\n\n" +
		"The kernel and scheme registry return wrapped sentinels\n" +
		"(ErrNonFiniteTime, ErrPastTime, ErrUnknownScheme, ...) so callers can\n" +
		"attach context with fmt.Errorf(\"...: %w\", err) without breaking\n" +
		"matching. That contract has two sides: comparing a received error to\n" +
		"a sentinel with == silently fails on any wrapped value (use\n" +
		"errors.Is), and formatting an error into a new one with %v or %s\n" +
		"strips the chain errors.Is needs (use %w). == against a sentinel\n" +
		"carries a suggested fix applied by tibfit-lint -fix when the file\n" +
		"already imports errors.",
	Run: runErrWrap,
}

func runErrWrap(pass *analysis.Pass) (interface{}, error) {
	if !inSimulationScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		hasErrorsImport := fileImports(file, "errors")
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				if v.Op != token.EQL && v.Op != token.NEQ {
					return true
				}
				sentinel, other := sentinelOperand(pass.TypesInfo, v)
				if sentinel == nil {
					return true
				}
				d := analysis.Diagnostic{
					Pos: v.Pos(),
					End: v.End(),
					Message: "comparing an error to sentinel " + sentinel.Name() +
						" with " + v.Op.String() + " fails on wrapped errors; use errors.Is",
				}
				if hasErrorsImport {
					// Rewriting is only safe when the file already imports
					// errors; otherwise the fix would not compile.
					neg := ""
					if v.Op == token.NEQ {
						neg = "!"
					}
					d.SuggestedFixes = []analysis.SuggestedFix{{
						Message: "replace with errors.Is",
						TextEdits: []analysis.TextEdit{{
							Pos: v.Pos(),
							End: v.End(),
							NewText: []byte(neg + "errors.Is(" + exprString(pass.Fset, other) +
								", " + exprString(pass.Fset, sentinelExpr(v, other)) + ")"),
						}},
					}}
				}
				pass.Report(d)
			case *ast.CallExpr:
				checkErrorfWrap(pass, v)
			}
			return true
		})
	}
	return nil, nil
}

// sentinelOperand returns the sentinel-error object of a == / !=
// comparison and the opposing operand, or nil if neither side is a
// sentinel (a package-level error variable named Err...).
func sentinelOperand(info *types.Info, cmp *ast.BinaryExpr) (*types.Var, ast.Expr) {
	if isSentinelError(info, cmp.X) {
		if isNilExpr(info, cmp.Y) {
			return nil, nil
		}
		return sentinelVar(info, cmp.X), cmp.Y
	}
	if isSentinelError(info, cmp.Y) {
		if isNilExpr(info, cmp.X) {
			return nil, nil
		}
		return sentinelVar(info, cmp.Y), cmp.X
	}
	return nil, nil
}

func sentinelExpr(cmp *ast.BinaryExpr, other ast.Expr) ast.Expr {
	if other == cmp.Y {
		return cmp.X
	}
	return cmp.Y
}

// isSentinelError reports whether expr denotes a package-level error
// variable following the ErrXxx naming convention.
func isSentinelError(info *types.Info, expr ast.Expr) bool {
	return sentinelVar(info, expr) != nil
}

func sentinelVar(info *types.Info, expr ast.Expr) *types.Var {
	var id *ast.Ident
	switch v := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return nil
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return nil
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	if !strings.HasPrefix(obj.Name(), "Err") || obj.Name() == "Err" {
		return nil
	}
	if !types.AssignableTo(obj.Type(), errorType) {
		return nil
	}
	return obj
}

var errorType = types.Universe.Lookup("error").Type()

func isNilExpr(info *types.Info, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// checkErrorfWrap flags fmt.Errorf calls that format an error value
// without %w, which strips the unwrap chain.
func checkErrorfWrap(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" || pkgQualifier(pass.TypesInfo, sel) != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING || strings.Contains(lit.Value, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil || !types.AssignableTo(t, errorType) {
			continue
		}
		// A bare nil assignable to error is not an error value.
		if isNilExpr(pass.TypesInfo, arg) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"fmt.Errorf formats error %s without %%w, severing the errors.Is/As chain; wrap it with %%w",
			exprString(pass.Fset, arg))
	}
}

// fileImports reports whether file imports the given path.
func fileImports(file *ast.File, path string) bool {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return true
		}
	}
	return false
}

// exprString renders an expression as source text for diagnostics and
// suggested fixes.
func exprString(fset *token.FileSet, expr ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, expr); err != nil {
		return "<expr>"
	}
	return buf.String()
}
