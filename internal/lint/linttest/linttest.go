// Package linttest is a stdlib-only stand-in for
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer
// over a testdata package and checks the reported diagnostics against
// `// want` comments in the fixture source.
//
// Expectation syntax matches analysistest: a line comment
//
//	// want `regex` `another regex`
//
// on an offending line declares that the analyzer must report one
// diagnostic per regex on that line, and the regex must match the
// message. Lines without a want comment must produce no diagnostics.
// //lint:allow filtering is applied before matching, so fixtures can
// also exercise the allowlist policy.
//
// Dep fixtures (RunDeps) exercise fact propagation: dependency packages
// load first under their own fake import paths, so facts exported while
// analyzing them are visible to the package under test, exactly as in a
// real multi-package run. RunFix checks suggested fixes against
// <file>.golden siblings, mirroring analysistest's -fix golden flow.
package linttest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/tibfit/tibfit/internal/lint"
	"github.com/tibfit/tibfit/internal/lint/analysis"
	"github.com/tibfit/tibfit/internal/lint/loader"
)

// Dep names one dependency fixture: the directory to load and the fake
// import path to load it under (which must match what the package under
// test imports).
type Dep struct {
	Dir     string
	PkgPath string
}

// Run loads the package in dir under the fake import path pkgPath,
// applies the analyzer (with //lint:allow filtering), and diffs the
// findings against the fixture's want comments. pkgPath controls the
// analyzer's package-scope gating, so fixtures usually claim a path
// under <module>/internal/.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	RunDeps(t, a, dir, pkgPath)
}

// RunDeps is Run with dependency fixtures: each dep loads first under
// its fake import path, the suite analyzes deps and the main package in
// dependency order (propagating facts), and want comments are honored
// across every fixture file, dep files included.
func RunDeps(t *testing.T, a *analysis.Analyzer, dir, pkgPath string, deps ...Dep) {
	t.Helper()
	pkgs, fset := loadFixture(t, dir, pkgPath, deps)

	wants := map[string][]*want{}
	for _, pkg := range pkgs {
		collectWants(t, fset, pkg, wants)
	}
	findings := lint.RunSuite(pkgs, fset, []*analysis.Analyzer{a})
	diffWants(t, wants, findings)
}

// RunFix runs the analyzer over the fixture, applies every suggested
// fix, and compares each rewritten file against its <file>.golden
// sibling. Files without a golden sibling must come through unchanged.
func RunFix(t *testing.T, a *analysis.Analyzer, dir, pkgPath string, deps ...Dep) {
	t.Helper()
	pkgs, fset := loadFixture(t, dir, pkgPath, deps)
	findings := lint.RunSuite(pkgs, fset, []*analysis.Analyzer{a})

	fixed, err := lint.ApplyFixes(findings, nil)
	if err != nil {
		t.Fatalf("linttest: applying fixes: %v", err)
	}
	for file, got := range fixed {
		golden := file + ".golden"
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Errorf("fix rewrote %s but no golden exists: %v", filepath.Base(file), err)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("fixed %s does not match %s:\n--- got ---\n%s\n--- want ---\n%s",
				filepath.Base(file), filepath.Base(golden), got, want)
		}
	}
	// Every golden must correspond to a rewritten file, or the fixture
	// has rotted.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: reading %s: %v", dir, err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".golden") {
			continue
		}
		src := filepath.Join(dir, strings.TrimSuffix(e.Name(), ".golden"))
		if _, ok := fixed[src]; !ok {
			t.Errorf("golden %s exists but no fix rewrote %s", e.Name(), filepath.Base(src))
		}
	}
}

// loadFixture loads dep fixtures then the package under test, returning
// the packages in dependency order.
func loadFixture(t *testing.T, dir, pkgPath string, deps []Dep) ([]*loader.Package, *token.FileSet) {
	t.Helper()
	ld, err := loader.New(".")
	if err != nil {
		t.Fatalf("linttest: creating loader: %v", err)
	}
	var pkgs []*loader.Package
	for _, dep := range deps {
		p, err := ld.LoadDir(dep.Dir, dep.PkgPath)
		if err != nil {
			t.Fatalf("linttest: loading dep %s: %v", dep.Dir, err)
		}
		if p == nil {
			t.Fatalf("linttest: no Go files in dep %s", dep.Dir)
		}
		pkgs = append(pkgs, p)
	}
	pkg, err := ld.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("linttest: loading %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("linttest: no Go files in %s", dir)
	}
	return append(pkgs, pkg), ld.Fset
}

// diffWants reports findings without expectations and expectations
// without findings.
func diffWants(t *testing.T, wants map[string][]*want, findings []lint.Finding) {
	t.Helper()
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		if !consumeWant(wants[key], f.Message) {
			t.Errorf("unexpected diagnostic at %s: %s: %s", key, f.Rule, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing diagnostic at %s: want match for %q", key, w.re.String())
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// consumeWant marks the first unmatched expectation matching msg.
func consumeWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants extracts the `// want` expectations of every fixture
// file into wants, keyed by "filename:line".
func collectWants(t *testing.T, fset *token.FileSet, pkg *loader.Package, wants map[string][]*want) {
	t.Helper()
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pat := range splitPatterns(rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
}

// splitPatterns splits `want` payloads into their quoted regexes,
// accepting both backquotes and double quotes.
func splitPatterns(s string) []string {
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		q := s[0]
		if q != '`' && q != '"' {
			return pats
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			return pats
		}
		pats = append(pats, s[1:1+end])
		s = s[2+end:]
	}
}
