// Package linttest is a stdlib-only stand-in for
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer
// over a testdata package and checks the reported diagnostics against
// `// want` comments in the fixture source.
//
// Expectation syntax matches analysistest: a line comment
//
//	// want `regex` `another regex`
//
// on an offending line declares that the analyzer must report one
// diagnostic per regex on that line, and the regex must match the
// message. Lines without a want comment must produce no diagnostics.
// //lint:allow filtering is applied before matching, so fixtures can
// also exercise the allowlist policy.
package linttest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"github.com/tibfit/tibfit/internal/lint"
	"github.com/tibfit/tibfit/internal/lint/analysis"
	"github.com/tibfit/tibfit/internal/lint/loader"
)

// Run loads the package in dir under the fake import path pkgPath,
// applies the analyzer (with //lint:allow filtering), and diffs the
// findings against the fixture's want comments. pkgPath controls the
// analyzer's package-scope gating, so fixtures usually claim a path
// under <module>/internal/.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	ld, err := loader.New(".")
	if err != nil {
		t.Fatalf("linttest: creating loader: %v", err)
	}
	pkg, err := ld.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("linttest: loading %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("linttest: no Go files in %s", dir)
	}

	wants := collectWants(t, ld.Fset, pkg)
	findings := lint.RunSuite([]*loader.Package{pkg}, ld.Fset, []*analysis.Analyzer{a})

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		if !consumeWant(wants[key], f.Message) {
			t.Errorf("unexpected diagnostic at %s: %s: %s", key, f.Rule, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing diagnostic at %s: want match for %q", key, w.re.String())
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// consumeWant marks the first unmatched expectation matching msg.
func consumeWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants extracts the `// want` expectations of every fixture
// file, keyed by "filename:line".
func collectWants(t *testing.T, fset *token.FileSet, pkg *loader.Package) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pat := range splitPatterns(rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns splits `want` payloads into their quoted regexes,
// accepting both backquotes and double quotes.
func splitPatterns(s string) []string {
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		q := s[0]
		if q != '`' && q != '"' {
			return pats
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			return pats
		}
		pats = append(pats, s[1:1+end])
		s = s[2+end:]
	}
}
