package lint

import (
	"fmt"
	"go/types"
	"reflect"

	"github.com/tibfit/tibfit/internal/lint/analysis"
)

// factStore holds the per-run fact graph: observations each analyzer
// attached to objects and packages, visible to later passes over
// packages that import the exporting one. The suite analyzes the whole
// module in one process (see the loader), so facts live in memory;
// x/tools would gob-encode them between compilations, which is why the
// API still copies facts through pointers instead of returning them.
type factStore struct {
	object map[objectFactKey]analysis.Fact
	pkg    map[pkgFactKey]analysis.Fact
}

type objectFactKey struct {
	analyzer *analysis.Analyzer
	object   types.Object
	factType reflect.Type
}

type pkgFactKey struct {
	analyzer *analysis.Analyzer
	pkg      *types.Package
	factType reflect.Type
}

func newFactStore() *factStore {
	return &factStore{
		object: map[objectFactKey]analysis.Fact{},
		pkg:    map[pkgFactKey]analysis.Fact{},
	}
}

// install wires the store into a pass, scoping exports to the pass's
// analyzer and package.
func (s *factStore) install(pass *analysis.Pass) {
	a := pass.Analyzer
	pass.ExportObjectFact = func(obj types.Object, fact analysis.Fact) {
		if obj == nil {
			panic("lint: ExportObjectFact(nil)")
		}
		if obj.Pkg() != pass.Pkg {
			panic(fmt.Sprintf("lint: analyzer %s exporting fact for object %v of foreign package %v",
				a.Name, obj, obj.Pkg()))
		}
		s.object[objectFactKey{a, obj, factType(a, fact)}] = fact
	}
	pass.ImportObjectFact = func(obj types.Object, fact analysis.Fact) bool {
		stored, ok := s.object[objectFactKey{a, obj, factType(a, fact)}]
		if !ok {
			return false
		}
		copyFact(stored, fact)
		return true
	}
	pass.ExportPackageFact = func(fact analysis.Fact) {
		s.pkg[pkgFactKey{a, pass.Pkg, factType(a, fact)}] = fact
	}
	pass.ImportPackageFact = func(pkg *types.Package, fact analysis.Fact) bool {
		stored, ok := s.pkg[pkgFactKey{a, pkg, factType(a, fact)}]
		if !ok {
			return false
		}
		copyFact(stored, fact)
		return true
	}
}

// factType validates that the analyzer declared the fact's type in
// FactTypes (the x/tools contract that keeps fact flow auditable) and
// returns its reflect key.
func factType(a *analysis.Analyzer, fact analysis.Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t.Kind() != reflect.Ptr {
		panic(fmt.Sprintf("lint: analyzer %s fact %T is not a pointer", a.Name, fact))
	}
	for _, declared := range a.FactTypes {
		if reflect.TypeOf(declared) == t {
			return t
		}
	}
	panic(fmt.Sprintf("lint: analyzer %s did not declare fact type %T in FactTypes", a.Name, fact))
}

// copyFact copies the stored fact's value into the caller's pointer.
func copyFact(stored, dst analysis.Fact) {
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(stored)
	if dv.Type() != sv.Type() {
		panic(fmt.Sprintf("lint: fact type mismatch: have %T, want %T", stored, dst))
	}
	dv.Elem().Set(sv.Elem())
}
