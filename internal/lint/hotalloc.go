package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/tibfit/tibfit/internal/lint/analysis"
)

// registersHandlerFact marks a function that takes an event handler and
// schedules it for kernel dispatch — Kernel.At, Kernel.After, and any
// wrapper with a parameter of a named function type called Handler.
// Function literals passed to such a function run on the simulator's
// hot dispatch path, so they inherit hotness across package boundaries.
type registersHandlerFact struct{}

func (*registersHandlerFact) AFact() {}

// HotAlloc flags per-event allocation in hot paths: functions annotated
// //hot:path, their same-package static callees, and handlers passed to
// kernel dispatch registration (found via registersHandler facts).
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbid per-event heap allocation in //hot:path functions and kernel dispatch handlers\n\n" +
		"The allocation diet keeps the event loop at a fixed allocs/op budget;\n" +
		"one innocent &T{} or fmt.Sprintf inside a handler undoes it at every\n" +
		"event. Hot code is: any function annotated //hot:path, every\n" +
		"same-package function it statically calls, and function literals\n" +
		"registered with a kernel dispatch function (identified by a\n" +
		"registersHandler fact exported from the package that declares the\n" +
		"Handler type). Propagation stops at functions annotated //hot:init:\n" +
		"lazily-called one-time setup whose allocations are not per-event.\n" +
		"Inside hot code the analyzer flags heap-escaping\n" +
		"composite literals, map and channel allocation, append to a local\n" +
		"slice made without capacity, boxing into ...interface{}, and any fmt\n" +
		"call. Deliberate one-time allocations take //lint:allow hotalloc.",
	FactTypes: []analysis.Fact{(*registersHandlerFact)(nil)},
	Run:       runHotAlloc,
}

// hotPathDirective is the annotation that marks a function as being on
// the event-dispatch hot path.
const hotPathDirective = "//hot:path"

// hotInitDirective marks a function that hot code calls lazily but that
// runs a bounded number of times (first-use initialization). Hotness
// does not propagate into it, so its one-time allocations need no
// allows.
const hotInitDirective = "//hot:init"

func runHotAlloc(pass *analysis.Pass) (interface{}, error) {
	// Export registersHandler facts for functions with a parameter of a
	// named function type called Handler declared in this package, so
	// downstream packages recognize dispatch registration.
	registrars := map[*types.Func]bool{}
	for _, name := range pass.Pkg.Scope().Names() {
		switch obj := pass.Pkg.Scope().Lookup(name).(type) {
		case *types.Func:
			if takesHandlerParam(obj, pass.Pkg) {
				registrars[obj] = true
			}
		case *types.TypeName:
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			for i := 0; i < named.NumMethods(); i++ {
				if m := named.Method(i); takesHandlerParam(m, pass.Pkg) {
					registrars[m] = true
				}
			}
		}
	}
	exported := make([]*types.Func, 0, len(registrars))
	for fn := range registrars {
		exported = append(exported, fn)
	}
	sort.Slice(exported, func(i, j int) bool { return exported[i].Pos() < exported[j].Pos() })
	for _, fn := range exported {
		pass.ExportObjectFact(fn, &registersHandlerFact{})
	}

	isRegistrar := func(fn *types.Func) bool {
		if registrars[fn] {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
			var fact registersHandlerFact
			return pass.ImportObjectFact(fn, &fact)
		}
		return false
	}

	// Gather the package's function declarations, the //hot:path roots
	// among them, and the static call edges between them.
	decls := map[*types.Func]*ast.FuncDecl{}
	hot := map[*types.Func]string{} // hot function -> why
	var hotOrder []*types.Func
	markHot := func(fn *types.Func, why string) {
		if fn == nil {
			return
		}
		if _, ok := hot[fn]; !ok {
			hot[fn] = why
			hotOrder = append(hotOrder, fn)
		}
	}
	type edge struct{ caller, callee *types.Func }
	var edges []edge
	// hotLits are function literals registered as dispatch handlers,
	// checked directly since literals cannot carry annotations.
	type hotLit struct {
		lit *ast.FuncLit
		why string
	}
	var hotLits []hotLit

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			decls[fn] = fd
			if hasDirective(fd, hotPathDirective) {
				markHot(fn, "annotated "+hotPathDirective)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := staticCallee(pass.TypesInfo, call); callee != nil {
					edges = append(edges, edge{caller: fn, callee: callee})
					if isRegistrar(callee) {
						for _, arg := range call.Args {
							switch a := ast.Unparen(arg).(type) {
							case *ast.FuncLit:
								hotLits = append(hotLits, hotLit{lit: a, why: "handler registered with " + funcDisplayName(callee)})
							case *ast.Ident, *ast.SelectorExpr:
								if h := staticFuncValue(pass.TypesInfo, a); h != nil && h.Pkg() == pass.Pkg {
									markHot(h, "handler registered with "+funcDisplayName(callee))
								}
							}
						}
					}
				}
				return true
			})
		}
	}

	// Intra-package propagation: hot functions make their same-package
	// static callees hot, to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			if _, callerHot := hot[e.caller]; !callerHot {
				continue
			}
			if _, calleeHot := hot[e.callee]; calleeHot {
				continue
			}
			if e.callee.Pkg() != pass.Pkg {
				continue
			}
			if fd, hasBody := decls[e.callee]; !hasBody || hasDirective(fd, hotInitDirective) {
				continue
			}
			markHot(e.callee, "called from hot "+e.caller.Name())
			changed = true
		}
	}

	checked := map[ast.Node]bool{}
	for _, fn := range hotOrder {
		fd := decls[fn]
		if fd == nil || checked[fd.Body] {
			continue
		}
		checked[fd.Body] = true
		checkHotBody(pass, fd.Body, fn.Name(), hot[fn])
	}
	for _, hl := range hotLits {
		if checked[hl.lit.Body] {
			continue
		}
		checked[hl.lit.Body] = true
		checkHotBody(pass, hl.lit.Body, "handler literal", hl.why)
	}
	return nil, nil
}

// takesHandlerParam reports whether fn has a parameter whose type is a
// named function type called Handler declared in pkg.
func takesHandlerParam(fn *types.Func, pkg *types.Package) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		named, ok := sig.Params().At(i).Type().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() != "Handler" || obj.Pkg() != pkg {
			continue
		}
		if _, isFunc := named.Underlying().(*types.Signature); isFunc {
			return true
		}
	}
	return false
}

// hasDirective reports whether the declaration's doc comment carries
// the given directive line.
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// staticFuncValue resolves an expression used as a function value to
// the declared function it denotes, or nil.
func staticFuncValue(info *types.Info, expr ast.Expr) *types.Func {
	var id *ast.Ident
	switch v := expr.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// checkHotBody reports per-event allocation constructs inside one hot
// function body.
func checkHotBody(pass *analysis.Pass, body *ast.BlockStmt, name, why string) {
	// Local slices made with an explicit capacity are the sanctioned
	// append targets; collect them first.
	withCap := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinMake(pass.TypesInfo, call) || len(call.Args) < 3 {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := objectOf(pass.TypesInfo, id); obj != nil {
					withCap[obj] = true
				}
			}
		}
		return true
	})

	reported := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return true
			}
			if lit, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
				reported[lit] = true
				pass.Reportf(v.Pos(),
					"&%s composite literal escapes to the heap in hot path %s (%s); reuse a pooled or preallocated value",
					typeLabel(pass.TypesInfo, lit), name, why)
			}
		case *ast.CompositeLit:
			if reported[v] {
				return true
			}
			switch pass.TypesInfo.TypeOf(v).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(v.Pos(),
					"slice literal allocates in hot path %s (%s); preallocate outside the dispatch loop", name, why)
			case *types.Map:
				pass.Reportf(v.Pos(),
					"map literal allocates in hot path %s (%s); preallocate outside the dispatch loop", name, why)
			}
		case *ast.CallExpr:
			switch {
			case isBuiltinMake(pass.TypesInfo, v):
				switch pass.TypesInfo.TypeOf(v).Underlying().(type) {
				case *types.Map:
					pass.Reportf(v.Pos(),
						"make(map) allocates in hot path %s (%s); hoist the map out of the per-event path", name, why)
				case *types.Chan:
					pass.Reportf(v.Pos(),
						"make(chan) allocates in hot path %s (%s); hoist the channel out of the per-event path", name, why)
				}
			case isBuiltinAppend(pass.TypesInfo, v):
				if len(v.Args) == 0 {
					return true
				}
				id := rootIdent(v.Args[0])
				if id == nil {
					return true
				}
				obj := objectOf(pass.TypesInfo, id)
				if obj == nil || withCap[obj] || !declaredInside(obj, body) {
					// Fields, parameters, and capacity-sized locals follow
					// the scratch-buffer idiom; only bare locals grow.
					return true
				}
				pass.Reportf(v.Pos(),
					"append to %s may reallocate per event in hot path %s (%s); make it with capacity or reuse a scratch buffer",
					id.Name, name, why)
			default:
				if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok && pkgQualifier(pass.TypesInfo, sel) == "fmt" {
					pass.Reportf(v.Pos(),
						"fmt.%s allocates and boxes its arguments in hot path %s (%s); format outside the dispatch loop",
						sel.Sel.Name, name, why)
					return true
				}
				if boxesIntoEmptyInterface(pass.TypesInfo, v) {
					pass.Reportf(v.Pos(),
						"arguments box into ...interface{} in hot path %s (%s); avoid variadic interface calls per event", name, why)
				}
			}
		}
		return true
	})
}

// typeLabel renders a composite literal's type for a diagnostic.
func typeLabel(info *types.Info, lit *ast.CompositeLit) string {
	if t := info.TypeOf(lit); t != nil {
		return types.TypeString(t, func(p *types.Package) string { return p.Name() })
	}
	return "T"
}

// isBuiltinMake reports whether call invokes the make builtin.
func isBuiltinMake(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "make"
}

// boxesIntoEmptyInterface reports whether the call passes concrete
// arguments into a ...interface{} parameter.
func boxesIntoEmptyInterface(info *types.Info, call *ast.CallExpr) bool {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis.IsValid() {
		return false
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	slice, ok := last.Type().(*types.Slice)
	if !ok {
		return false
	}
	iface, ok := slice.Elem().Underlying().(*types.Interface)
	if !ok || !iface.Empty() {
		return false
	}
	fixed := sig.Params().Len() - 1
	for i := fixed; i < len(call.Args); i++ {
		if t := info.TypeOf(call.Args[i]); t != nil {
			if _, isIface := t.Underlying().(*types.Interface); !isIface {
				return true
			}
		}
	}
	return false
}
