package lint

import (
	"github.com/tibfit/tibfit/internal/lint/analysis"
)

// RuleLintDirective is the rule ID covering //lint:allow hygiene. The
// analyzer below reports malformed directives and unknown rule names;
// the suite runner reports stale directives under the same rule (a
// directive is stale when no analyzer in the run produced a diagnostic
// it suppressed — staleness is a whole-run property, so it cannot live
// in a per-package pass).
const RuleLintDirective = "lintdirective"

// LintDirective validates the //lint:allow escape hatch itself: a typo
// in the directive or the rule name must be an error, never a silent
// non-suppression that lets the underlying finding be missed — or,
// worse, a silent suppression of nothing that rots in the tree.
var LintDirective = &analysis.Analyzer{
	Name: RuleLintDirective,
	Doc: "validate //lint:allow directives: well-formed, known rule, not stale\n\n" +
		"The escape hatch is `//lint:allow <rule> <reason>` on the offending\n" +
		"line or the line above. The reason is mandatory; the rule must name an\n" +
		"analyzer of the suite; and (checked by the suite runner) the directive\n" +
		"must actually suppress a diagnostic — stale allows are reported so\n" +
		"suppressions cannot outlive the code they excused.",
}

// Run is wired in init: runLintDirective consults the Analyzers slice
// (which contains LintDirective itself), so a literal initializer would
// be an initialization cycle.
func init() { LintDirective.Run = runLintDirective }

func runLintDirective(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rule, ok := parseAllowDirective(c)
				switch {
				case !ok:
					continue
				case rule == "":
					pass.Reportf(c.Pos(),
						"malformed //lint:allow directive: want `//lint:allow <rule> <reason>` (the reason is mandatory)")
				case !knownRule(rule):
					pass.Reportf(c.Pos(), "//lint:allow names unknown rule %q", rule)
				}
			}
		}
	}
	return nil, nil
}
