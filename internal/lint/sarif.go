package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"

	"github.com/tibfit/tibfit/internal/lint/analysis"
)

// SARIF renders findings as a SARIF 2.1.0 log — the static-analysis
// interchange format CI code-scanning uploads consume, so lint findings
// annotate the offending lines of a pull request instead of living only
// in a job log. root is the module root; file paths are emitted
// relative to it (with the SRCROOT uriBaseId convention) so the log is
// machine-independent. Output is deterministic: rules sorted by ID,
// results in the findings' already-sorted order.
func SARIF(findings []Finding, analyzers []*analysis.Analyzer, root string) ([]byte, error) {
	driver := sarifDriver{
		Name:           "tibfit-lint",
		InformationURI: "https://github.com/tibfit/tibfit/blob/main/docs/LINTING.md",
	}
	ruleIndex := map[string]int{}
	for _, a := range analyzers {
		short, full, _ := strings.Cut(a.Doc, "\n\n")
		ruleIndex[a.Name] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: short},
			FullDescription:  sarifText{Text: strings.TrimSpace(full)},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		res := sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifText{Text: f.Message},
		}
		if idx, ok := ruleIndex[f.Rule]; ok {
			res.RuleIndex = &idx
		}
		if f.Pos.Filename != "" {
			res.Locations = []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       sarifURI(root, f.Pos.Filename),
						URIBaseID: "SRCROOT",
					},
					Region: sarifRegion{
						StartLine:   f.Pos.Line,
						StartColumn: f.Pos.Column,
					},
				},
			}}
		}
		results = append(results, res)
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: driver},
			OriginalURIBaseIDs: map[string]sarifArtifactLocation{
				"SRCROOT": {URI: "file://" + filepath.ToSlash(root) + "/"},
			},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// sarifURI renders a finding path relative to the module root, slashed.
func sarifURI(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

// The SARIF 2.1.0 subset the suite emits. Field order here is emission
// order, pinned by the golden test.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool               sarifTool                        `json:"tool"`
	OriginalURIBaseIDs map[string]sarifArtifactLocation `json:"originalUriBaseIds,omitempty"`
	Results            []sarifResult                    `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
	FullDescription  sarifText `json:"fullDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex *int            `json:"ruleIndex,omitempty"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}
