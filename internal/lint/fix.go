package lint

import (
	"fmt"
	"os"
	"sort"
)

// ApplyFixes applies the first suggested fix of every finding that has
// one, returning the rewritten contents keyed by filename. Sources are
// read through the given reader (nil means os.ReadFile), so tests can
// fix in-memory fixtures. Overlapping edits are an error rather than a
// silent misapplication: two analyzers proposing conflicting rewrites
// of the same bytes need a human.
func ApplyFixes(findings []Finding, read func(string) ([]byte, error)) (map[string][]byte, error) {
	if read == nil {
		read = os.ReadFile
	}
	edits := map[string][]Edit{}
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			continue
		}
		for _, e := range f.Fixes[0].Edits {
			if e.Filename == "" || e.Start < 0 || e.End < e.Start {
				return nil, fmt.Errorf("lint: malformed edit %+v for %s finding at %s", e, f.Rule, f.Pos)
			}
			edits[e.Filename] = append(edits[e.Filename], e)
		}
	}
	out := map[string][]byte{}
	for file, list := range edits {
		src, err := read(file)
		if err != nil {
			return nil, fmt.Errorf("lint: reading %s for -fix: %w", file, err)
		}
		fixed, err := applyEdits(src, list)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", file, err)
		}
		out[file] = fixed
	}
	return out, nil
}

// applyEdits splices the edits into src, back to front so earlier
// offsets stay valid.
func applyEdits(src []byte, edits []Edit) ([]byte, error) {
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].Start != edits[j].Start {
			return edits[i].Start < edits[j].Start
		}
		return edits[i].End < edits[j].End
	})
	for i := 1; i < len(edits); i++ {
		prev, cur := edits[i-1], edits[i]
		if cur.Start == prev.Start && cur.End == prev.End && cur.NewText == prev.NewText {
			// Identical duplicate edits (two findings proposing the same
			// rewrite) collapse into one.
			edits = append(edits[:i], edits[i+1:]...)
			i--
			continue
		}
		if cur.Start < prev.End {
			return nil, fmt.Errorf("overlapping fixes at byte %d (%q) and byte %d (%q)",
				prev.Start, prev.NewText, cur.Start, cur.NewText)
		}
	}
	for i := len(edits) - 1; i >= 0; i-- {
		e := edits[i]
		if e.End > len(src) {
			return nil, fmt.Errorf("edit [%d,%d) beyond file length %d", e.Start, e.End, len(src))
		}
		var buf []byte
		buf = append(buf, src[:e.Start]...)
		buf = append(buf, e.NewText...)
		buf = append(buf, src[e.End:]...)
		src = buf
	}
	return src, nil
}
