package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/tibfit/tibfit/internal/lint/analysis"
)

// floatEqHelperFuncs are the approved epsilon-comparison helpers: raw
// float equality is allowed only inside them (they are the one place
// the tolerance policy lives). stats.ApproxEqual is the canonical one.
var floatEqHelperFuncs = map[string]bool{
	"ApproxEqual": true,
	"approxEqual": true,
	"AlmostEqual": true,
	"almostEqual": true,
}

// FloatEq flags == and != between floating-point expressions. TI and
// CTI values accumulate through long multiply chains, so two
// mathematically equal trust values routinely differ in the last ulp;
// an exact comparison in a vote or trust path then flips decisions
// depending on refactor-level association changes. Compare through
// stats.ApproxEqual, or annotate deliberate exact comparisons (e.g.
// against a sentinel the code itself assigned) with //lint:allow.
var FloatEq = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flag exact floating-point equality outside approved epsilon helpers\n\n" +
		"TI/CTI comparisons drive every vote; exact float equality makes them\n" +
		"sensitive to ulp-level noise. Use stats.ApproxEqual, or //lint:allow\n" +
		"floateq <reason> for deliberate sentinel comparisons. The x != x NaN\n" +
		"idiom and constant-vs-constant comparisons are not flagged.",
	Run: runFloatEq,
}

func runFloatEq(pass *analysis.Pass) (interface{}, error) {
	if !inSimulationScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && floatEqHelperFuncs[fd.Name.Name] {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				checkFloatEq(pass, be)
				return true
			})
		}
	}
	return nil, nil
}

func checkFloatEq(pass *analysis.Pass, be *ast.BinaryExpr) {
	xtv, xok := pass.TypesInfo.Types[be.X]
	ytv, yok := pass.TypesInfo.Types[be.Y]
	if !xok || !yok {
		return
	}
	if !isFloat(xtv.Type) && !isFloat(ytv.Type) {
		return
	}
	// Constant folding happens at compile time; comparing two
	// constants is exact by construction.
	if xtv.Value != nil && ytv.Value != nil {
		return
	}
	// x != x is the portable NaN test; leave it alone.
	if be.Op == token.NEQ && sameObject(pass.TypesInfo, be.X, be.Y) {
		return
	}
	pass.Reportf(be.Pos(),
		"exact floating-point %s comparison; ulp-level noise flips it — use stats.ApproxEqual or annotate a deliberate sentinel check with //lint:allow floateq <reason>",
		be.Op)
}

// sameObject reports whether two expressions are the same plain
// identifier (resolving to one object).
func sameObject(info *types.Info, x, y ast.Expr) bool {
	xi, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	yi, ok := y.(*ast.Ident)
	if !ok {
		return false
	}
	xo := objectOf(info, xi)
	return xo != nil && xo == objectOf(info, yi)
}
