// Package loader type-checks the packages of this module from source
// using only the standard library, standing in for
// golang.org/x/tools/go/packages in the hermetic build environment. It
// walks the module tree, parses every non-test file, topologically sorts
// packages by their intra-module imports, and type-checks each one;
// imports outside the module (the standard library — the module has no
// external dependencies) are resolved through the compiler's export
// data via go/importer.
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the package's import path.
	PkgPath string
	// Dir is the directory holding the package's files.
	Dir string
	// Syntax is the parsed files, in filename order.
	Syntax []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo records type and object resolution for Syntax.
	TypesInfo *types.Info
}

// Loader loads and caches packages of a single module.
type Loader struct {
	// Fset is shared by every package the loader touches, so token.Pos
	// values from different packages stay comparable.
	Fset *token.FileSet

	// IncludeTests includes _test.go files of the package under load
	// (in-package tests only; external _test packages are skipped).
	IncludeTests bool

	modRoot string
	modPath string
	std     types.Importer
	cache   map[string]*Package // by import path
	loading map[string]bool     // cycle detection
}

// New returns a loader rooted at the module containing dir.
func New(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	path, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modRoot: root,
		modPath: path,
		std:     importer.ForCompiler(fset, "gc", nil),
		cache:   map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// ModulePath returns the module's declared path.
func (l *Loader) ModulePath() string { return l.modPath }

// ModuleRoot returns the absolute directory of the module's go.mod;
// SARIF output relativizes file paths against it.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// Load resolves the given patterns against the module and returns the
// matched packages, type-checked, in import-path order. Supported
// pattern forms are "./...", "./dir/...", and "./dir" (all relative to
// the module root); a bare "." means the root package.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.matchDirs(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir, l.pkgPathFor(dir))
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// LoadDir loads the single package in dir under the given import path,
// type-checking its intra-module dependencies as needed. It returns
// (nil, nil) when the directory holds no buildable Go files.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	if pkg, ok := l.cache[pkgPath]; ok {
		return pkg, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("loader: import cycle through %s", pkgPath)
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		return l.importPkg(path)
	})}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", pkgPath, err)
	}
	pkg := &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.cache[pkgPath] = pkg
	return pkg, nil
}

// importPkg resolves one import path: intra-module imports load from
// source, everything else (the standard library) comes from compiler
// export data.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rest, ok := strings.CutPrefix(path, l.modPath); ok && (rest == "" || rest[0] == '/') {
		dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(rest, "/")))
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("loader: no Go files in %s", dir)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// parseDir parses the buildable Go files of dir (no external test
// packages, no files excluded by an ignore build tag).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.IncludeTests {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if hasIgnoreTag(f) {
			continue
		}
		// In-package tests share the package name; external test
		// packages (package foo_test) would need their own type-check
		// universe, so they are skipped.
		if pkgName == "" && !strings.HasSuffix(name, "_test.go") {
			pkgName = f.Name.Name
		}
		if pkgName != "" && f.Name.Name != pkgName {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// matchDirs expands patterns into package directories.
func (l *Loader) matchDirs(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	all, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		switch {
		case pat == "..." || pat == "":
			for _, d := range all {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			matched := false
			for _, d := range all {
				if d == prefix || strings.HasPrefix(d, prefix+string(filepath.Separator)) {
					add(d)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("loader: pattern %q matched no packages", pat)
			}
		case pat == ".":
			add(l.modRoot)
		default:
			add(filepath.Join(l.modRoot, filepath.FromSlash(pat)))
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// packageDirs lists every directory in the module that contains
// buildable Go files, skipping testdata, vendor, and hidden trees.
func (l *Loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.modRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// pkgPathFor maps a directory inside the module to its import path.
func (l *Loader) pkgPathFor(dir string) string {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("loader: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("loader: no module directive in %s", gomod)
}

// hasIgnoreTag reports whether a file opts out of the build via
// a `//go:build ignore` constraint.
func hasIgnoreTag(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if strings.HasPrefix(text, "//go:build") && strings.Contains(text, "ignore") {
				return true
			}
		}
	}
	return false
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
