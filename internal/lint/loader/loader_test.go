package loader

import (
	"strings"
	"testing"
)

func TestLoadSinglePackage(t *testing.T) {
	ld, err := New(".")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got, want := ld.ModulePath(), "github.com/tibfit/tibfit"; got != want {
		t.Fatalf("ModulePath = %q, want %q", got, want)
	}
	pkgs, err := ld.Load("./internal/rng")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.PkgPath != "github.com/tibfit/tibfit/internal/rng" {
		t.Errorf("PkgPath = %q", pkg.PkgPath)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("Source") == nil {
		t.Error("type-checked package is missing the Source type")
	}
	if len(pkg.Syntax) == 0 {
		t.Error("no syntax trees loaded")
	}
}

func TestLoadRecursivePattern(t *testing.T) {
	ld, err := New(".")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pkgs, err := ld.Load("./internal/lint/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// lint, lint/analysis, lint/linttest, lint/loader — testdata trees
	// must be excluded.
	if len(pkgs) < 4 {
		t.Fatalf("got %d packages, want >= 4", len(pkgs))
	}
	for _, pkg := range pkgs {
		if strings.Contains(pkg.PkgPath, "testdata") {
			t.Errorf("testdata package leaked into Load: %s", pkg.PkgPath)
		}
	}
}

func TestLoadTransitiveDeps(t *testing.T) {
	ld, err := New(".")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// experiment imports most of the module; loading it exercises the
	// topological intra-module import resolution.
	pkgs, err := ld.Load("./internal/experiment")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
}

func TestLoadUnknownPattern(t *testing.T) {
	ld, err := New(".")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := ld.Load("./nosuchdir/..."); err == nil {
		t.Error("Load of unknown recursive pattern succeeded, want error")
	}
}
