package radio

import (
	"testing"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/sim"
)

// benchTopology is a star of members around one cluster head — the pair
// population Send prices over and over in a campaign.
func benchTopology(n int) (head geo.Point, members []geo.Point) {
	src := rng.New(1)
	head = geo.Point{X: 50, Y: 50}
	members = make([]geo.Point, n)
	for i := range members {
		members[i] = geo.Point{X: src.Uniform(0, 100), Y: src.Uniform(0, 100)}
	}
	return head, members
}

// BenchmarkSend measures the steady-state cost of pricing and scheduling
// one member→CH transmission with the link cache warm (the campaign
// regime: static positions, repeated pairs).
func BenchmarkSend(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Range = 200
	k := sim.New()
	ch := NewChannel(cfg, k, rng.New(1))
	head, members := benchTopology(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Send(members[i%len(members)], head, func() {})
		if k.Pending() > 4096 {
			b.StopTimer()
			k.RunAll()
			b.StartTimer()
		}
	}
}

// BenchmarkLinkRSS measures the affiliation hot loop: ranking one member
// against one advertising head, memoized.
func BenchmarkLinkRSS(b *testing.B) {
	cfg := DefaultConfig()
	k := sim.New()
	ch := NewChannel(cfg, k, rng.New(1))
	head, members := benchTopology(64)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += ch.LinkRSS(members[i%len(members)], head)
	}
	_ = sink
}

// BenchmarkRSSUncached is the baseline the memoization is measured
// against: the raw distance + log10 per call.
func BenchmarkRSSUncached(b *testing.B) {
	cfg := DefaultConfig()
	k := sim.New()
	ch := NewChannel(cfg, k, rng.New(1))
	head, members := benchTopology(64)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += ch.RSS(members[i%len(members)].Dist(head))
	}
	_ = sink
}
