// Package radio models the wireless channel between sensor nodes and their
// cluster head.
//
// The paper's evaluation runs over the ns-2 802.11 wireless model and notes
// only one channel artefact that matters to the protocol: "correct nodes'
// packets are naturally dropped less than 1% of the time" (Table 2
// discussion). This package reproduces that behaviour with an explicit,
// tunable model: a disk connectivity range, a per-packet drop probability,
// a log-distance received-signal-strength estimate (used by LEACH
// affiliation), and a distance-proportional propagation delay. Substituting
// this for ns-2 preserves everything TIBFIT's logic can observe.
package radio

import (
	"math"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/sim"
)

// Config describes the channel.
type Config struct {
	// Range is the maximum one-hop communication distance. Transmissions
	// to receivers beyond Range are never delivered. Zero means unlimited
	// range (the paper's clusters are one-hop by construction).
	Range float64

	// DropProb is the probability an otherwise-deliverable packet is lost.
	// Table 2's "< 1%" natural loss corresponds to values like 0.005-0.01.
	DropProb float64

	// BaseDelay is the fixed per-packet latency (MAC + processing).
	BaseDelay sim.Duration

	// DelayPerUnit is the additional latency per unit of distance. Keeping
	// it small but non-zero preserves ns-2's property that reports from
	// different distances arrive at distinct times.
	DelayPerUnit sim.Duration

	// TxPower is the transmit power in dBm used for the RSS estimate.
	TxPower float64

	// PathLossExp is the log-distance path-loss exponent (typically 2-4).
	PathLossExp float64
}

// DefaultConfig returns the channel used by the reproduction experiments:
// one-hop clusters, 0.5% natural loss, small distance-dependent delays.
func DefaultConfig() Config {
	return Config{
		Range:        0, // one-hop by construction
		DropProb:     0.005,
		BaseDelay:    0.001,
		DelayPerUnit: 0.0001,
		TxPower:      0,
		PathLossExp:  2.7,
	}
}

// Outcome describes what happened to one transmission.
type Outcome int

// Transmission outcomes.
const (
	// Delivered means the packet reached the receiver.
	Delivered Outcome = iota + 1
	// DroppedLoss means the packet was lost to channel noise.
	DroppedLoss
	// DroppedRange means the receiver was outside communication range.
	DroppedRange
	// DroppedOutage means an injected channel fault (a blackout or
	// partition window from a Perturber) swallowed the packet.
	DroppedOutage
)

// String returns a stable lowercase name for the outcome.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case DroppedLoss:
		return "dropped-loss"
	case DroppedRange:
		return "dropped-range"
	case DroppedOutage:
		return "dropped-outage"
	default:
		return "unknown"
	}
}

// Perturbation describes what an injected fault does to one otherwise
// in-range transmission. The zero value leaves the packet alone.
type Perturbation struct {
	// Drop swallows the packet (blackout / partition window).
	Drop bool
	// Duplicate delivers a second copy of the packet shortly after the
	// first — the classic at-least-once channel artefact receivers must
	// absorb.
	Duplicate bool
	// ExtraDelay is added to the propagation delay (congestion burst).
	ExtraDelay sim.Duration
}

// Perturber is consulted once per transmission by a channel it is
// installed on; the chaos engine implements it. Implementations must be
// deterministic functions of their own seeded streams and the virtual
// clock so that runs stay reproducible.
type Perturber interface {
	Perturb(from, to geo.Point) Perturbation
}

// linkKey identifies a directed position pair for the link-cost cache.
type linkKey struct {
	from, to geo.Point
}

// linkCost caches the pure geometry-derived quantities for one link. Nodes
// are static for the lifetime of a round, so the same member→CH pair is
// priced thousands of times per campaign; caching turns the repeated
// hypot/multiply (and, for affiliation, log10) into a table hit. rss is
// filled lazily — most links are only ever sent over, never RSS-ranked.
type linkCost struct {
	dist   float64
	delay  sim.Duration
	hasRSS bool
	rss    float64
}

// linkEntry is one slot of the direct-mapped link cache. A plain Go map
// would work but its generic memhash of the 32-byte key costs more than
// the float math it saves; a direct-mapped table with a four-word FNV mix
// keeps a hit cheaper than one math.Hypot.
type linkEntry struct {
	used bool
	key  linkKey
	cost linkCost
}

// linkCacheSize is the slot count (power of two for mask indexing). The
// experiments' live pair populations — members × advertising heads — are
// a few thousand at most; colliding pairs just alternate recomputing.
const linkCacheSize = 4096

// linkHash mixes the four coordinate words FNV-style into a slot index.
func linkHash(a, b geo.Point) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h = (h ^ math.Float64bits(a.X)) * prime
	h = (h ^ math.Float64bits(a.Y)) * prime
	h = (h ^ math.Float64bits(b.X)) * prime
	h = (h ^ math.Float64bits(b.Y)) * prime
	return h ^ (h >> 32)
}

// Channel is a stochastic wireless channel bound to a simulation kernel.
type Channel struct {
	cfg       Config
	kernel    *sim.Kernel
	src       *rng.Source
	perturber Perturber
	links     []linkEntry

	sent       int
	delivered  int
	lost       int
	outOfRange int
	outage     int
	duplicated int
}

// NewChannel returns a channel using the given kernel and random stream.
func NewChannel(cfg Config, kernel *sim.Kernel, src *rng.Source) *Channel {
	return &Channel{cfg: cfg, kernel: kernel, src: src, links: make([]linkEntry, linkCacheSize)}
}

// link returns the cached geometry costs for the pair, computing and
// memoizing them on first use. The returned pointer stays valid until the
// slot is evicted by a colliding pair, so callers use it immediately.
// Lookup is a deterministic pure function of the coordinates — no map
// iteration, no randomized hashing — so it cannot perturb run order.
func (c *Channel) link(a, b geo.Point) *linkCost {
	if c.links == nil {
		c.links = make([]linkEntry, linkCacheSize)
	}
	e := &c.links[linkHash(a, b)&(linkCacheSize-1)]
	if e.used && e.key.from == a && e.key.to == b {
		return &e.cost
	}
	d := a.Dist(b)
	e.used = true
	e.key = linkKey{from: a, to: b}
	e.cost = linkCost{
		dist:  d,
		delay: c.cfg.BaseDelay + sim.Duration(d)*c.cfg.DelayPerUnit,
	}
	return &e.cost
}

// Config returns the channel configuration.
func (c *Channel) Config() Config { return c.cfg }

// SetPerturber installs a fault injector consulted on every send. A nil
// perturber (the default) leaves the channel byte-identical to a channel
// without the hook: no extra random draws, no behaviour change.
func (c *Channel) SetPerturber(p Perturber) { c.perturber = p }

// InRange reports whether two positions can communicate directly.
func (c *Channel) InRange(a, b geo.Point) bool {
	return c.cfg.Range <= 0 || c.link(a, b).dist <= c.cfg.Range
}

// Delay returns the propagation delay between two positions.
func (c *Channel) Delay(a, b geo.Point) sim.Duration {
	return c.link(a, b).delay
}

// RSS returns the received signal strength in dBm at distance d using the
// log-distance path-loss model. Nodes affiliate with the CH whose
// advertisement has the strongest RSS (paper §2). Distances below one unit
// clamp to one to keep the logarithm bounded.
func (c *Channel) RSS(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return c.cfg.TxPower - 10*c.cfg.PathLossExp*math.Log10(d)
}

// LinkRSS returns the received signal strength at b for a transmission
// from a — RSS(a.Dist(b)) with the distance and logarithm memoized.
// LEACH affiliation ranks every member against every advertising CH each
// round, so this is the hot path for the log10.
//
//hot:path
func (c *Channel) LinkRSS(a, b geo.Point) float64 {
	lc := c.link(a, b)
	if !lc.hasRSS {
		lc.rss = c.RSS(lc.dist)
		lc.hasRSS = true
	}
	return lc.rss
}

// Send transmits a packet from src to dst positions and schedules deliver
// at the receive time if the packet survives. It returns the outcome
// immediately (the simulator is omniscient; the model is not).
//
//hot:path
func (c *Channel) Send(from, to geo.Point, deliver sim.Handler) Outcome {
	c.sent++
	// One cache probe prices the whole transmission: the range check and
	// the delay share the same memoized distance.
	lc := c.link(from, to)
	if c.cfg.Range > 0 && lc.dist > c.cfg.Range {
		c.outOfRange++
		return DroppedRange
	}
	var pert Perturbation
	if c.perturber != nil {
		pert = c.perturber.Perturb(from, to)
	}
	if pert.Drop {
		c.outage++
		return DroppedOutage
	}
	if c.src.Bernoulli(c.cfg.DropProb) {
		c.lost++
		return DroppedLoss
	}
	c.delivered++
	d := lc.delay + pert.ExtraDelay
	c.kernel.After(d, deliver)
	if pert.Duplicate {
		c.duplicated++
		// The copy trails the original by one base delay; receivers
		// (aggregators, relays) are idempotent and absorb it.
		c.kernel.After(d+c.cfg.BaseDelay, deliver)
	}
	return Delivered
}

// Stats reports cumulative channel counters.
func (c *Channel) Stats() (sent, delivered, lost, outOfRange int) {
	return c.sent, c.delivered, c.lost, c.outOfRange
}

// ChaosStats reports cumulative injected-fault counters: packets
// swallowed by outage windows and packets duplicated.
func (c *Channel) ChaosStats() (outage, duplicated int) {
	return c.outage, c.duplicated
}

// LossRate returns the observed fraction of sent packets lost to noise.
func (c *Channel) LossRate() float64 {
	if c.sent == 0 {
		return 0
	}
	return float64(c.lost) / float64(c.sent)
}
