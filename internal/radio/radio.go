// Package radio models the wireless channel between sensor nodes and their
// cluster head.
//
// The paper's evaluation runs over the ns-2 802.11 wireless model and notes
// only one channel artefact that matters to the protocol: "correct nodes'
// packets are naturally dropped less than 1% of the time" (Table 2
// discussion). This package reproduces that behaviour with an explicit,
// tunable model: a disk connectivity range, a per-packet drop probability,
// a log-distance received-signal-strength estimate (used by LEACH
// affiliation), and a distance-proportional propagation delay. Substituting
// this for ns-2 preserves everything TIBFIT's logic can observe.
package radio

import (
	"math"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/sim"
)

// Config describes the channel.
type Config struct {
	// Range is the maximum one-hop communication distance. Transmissions
	// to receivers beyond Range are never delivered. Zero means unlimited
	// range (the paper's clusters are one-hop by construction).
	Range float64

	// DropProb is the probability an otherwise-deliverable packet is lost.
	// Table 2's "< 1%" natural loss corresponds to values like 0.005-0.01.
	DropProb float64

	// BaseDelay is the fixed per-packet latency (MAC + processing).
	BaseDelay sim.Duration

	// DelayPerUnit is the additional latency per unit of distance. Keeping
	// it small but non-zero preserves ns-2's property that reports from
	// different distances arrive at distinct times.
	DelayPerUnit sim.Duration

	// TxPower is the transmit power in dBm used for the RSS estimate.
	TxPower float64

	// PathLossExp is the log-distance path-loss exponent (typically 2-4).
	PathLossExp float64
}

// DefaultConfig returns the channel used by the reproduction experiments:
// one-hop clusters, 0.5% natural loss, small distance-dependent delays.
func DefaultConfig() Config {
	return Config{
		Range:        0, // one-hop by construction
		DropProb:     0.005,
		BaseDelay:    0.001,
		DelayPerUnit: 0.0001,
		TxPower:      0,
		PathLossExp:  2.7,
	}
}

// Outcome describes what happened to one transmission.
type Outcome int

// Transmission outcomes.
const (
	// Delivered means the packet reached the receiver.
	Delivered Outcome = iota + 1
	// DroppedLoss means the packet was lost to channel noise.
	DroppedLoss
	// DroppedRange means the receiver was outside communication range.
	DroppedRange
	// DroppedOutage means an injected channel fault (a blackout or
	// partition window from a Perturber) swallowed the packet.
	DroppedOutage
)

// String returns a stable lowercase name for the outcome.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case DroppedLoss:
		return "dropped-loss"
	case DroppedRange:
		return "dropped-range"
	case DroppedOutage:
		return "dropped-outage"
	default:
		return "unknown"
	}
}

// Perturbation describes what an injected fault does to one otherwise
// in-range transmission. The zero value leaves the packet alone.
type Perturbation struct {
	// Drop swallows the packet (blackout / partition window).
	Drop bool
	// Duplicate delivers a second copy of the packet shortly after the
	// first — the classic at-least-once channel artefact receivers must
	// absorb.
	Duplicate bool
	// ExtraDelay is added to the propagation delay (congestion burst).
	ExtraDelay sim.Duration
}

// Perturber is consulted once per transmission by a channel it is
// installed on; the chaos engine implements it. Implementations must be
// deterministic functions of their own seeded streams and the virtual
// clock so that runs stay reproducible.
type Perturber interface {
	Perturb(from, to geo.Point) Perturbation
}

// Channel is a stochastic wireless channel bound to a simulation kernel.
type Channel struct {
	cfg       Config
	kernel    *sim.Kernel
	src       *rng.Source
	perturber Perturber

	sent       int
	delivered  int
	lost       int
	outOfRange int
	outage     int
	duplicated int
}

// NewChannel returns a channel using the given kernel and random stream.
func NewChannel(cfg Config, kernel *sim.Kernel, src *rng.Source) *Channel {
	return &Channel{cfg: cfg, kernel: kernel, src: src}
}

// Config returns the channel configuration.
func (c *Channel) Config() Config { return c.cfg }

// SetPerturber installs a fault injector consulted on every send. A nil
// perturber (the default) leaves the channel byte-identical to a channel
// without the hook: no extra random draws, no behaviour change.
func (c *Channel) SetPerturber(p Perturber) { c.perturber = p }

// InRange reports whether two positions can communicate directly.
func (c *Channel) InRange(a, b geo.Point) bool {
	return c.cfg.Range <= 0 || a.Dist(b) <= c.cfg.Range
}

// Delay returns the propagation delay between two positions.
func (c *Channel) Delay(a, b geo.Point) sim.Duration {
	return c.cfg.BaseDelay + sim.Duration(a.Dist(b))*c.cfg.DelayPerUnit
}

// RSS returns the received signal strength in dBm at distance d using the
// log-distance path-loss model. Nodes affiliate with the CH whose
// advertisement has the strongest RSS (paper §2). Distances below one unit
// clamp to one to keep the logarithm bounded.
func (c *Channel) RSS(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return c.cfg.TxPower - 10*c.cfg.PathLossExp*math.Log10(d)
}

// Send transmits a packet from src to dst positions and schedules deliver
// at the receive time if the packet survives. It returns the outcome
// immediately (the simulator is omniscient; the model is not).
func (c *Channel) Send(from, to geo.Point, deliver sim.Handler) Outcome {
	c.sent++
	if !c.InRange(from, to) {
		c.outOfRange++
		return DroppedRange
	}
	var pert Perturbation
	if c.perturber != nil {
		pert = c.perturber.Perturb(from, to)
	}
	if pert.Drop {
		c.outage++
		return DroppedOutage
	}
	if c.src.Bernoulli(c.cfg.DropProb) {
		c.lost++
		return DroppedLoss
	}
	c.delivered++
	d := c.Delay(from, to) + pert.ExtraDelay
	c.kernel.After(d, deliver)
	if pert.Duplicate {
		c.duplicated++
		// The copy trails the original by one base delay; receivers
		// (aggregators, relays) are idempotent and absorb it.
		c.kernel.After(d+c.cfg.BaseDelay, deliver)
	}
	return Delivered
}

// Stats reports cumulative channel counters.
func (c *Channel) Stats() (sent, delivered, lost, outOfRange int) {
	return c.sent, c.delivered, c.lost, c.outOfRange
}

// ChaosStats reports cumulative injected-fault counters: packets
// swallowed by outage windows and packets duplicated.
func (c *Channel) ChaosStats() (outage, duplicated int) {
	return c.outage, c.duplicated
}

// LossRate returns the observed fraction of sent packets lost to noise.
func (c *Channel) LossRate() float64 {
	if c.sent == 0 {
		return 0
	}
	return float64(c.lost) / float64(c.sent)
}
