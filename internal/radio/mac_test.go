package radio

import (
	"testing"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/sim"
)

func newContending(window sim.Duration, capture float64, seed int64) (*ContendingChannel, *sim.Kernel) {
	k := sim.New()
	cfg := DefaultConfig()
	cfg.DropProb = 0
	ch := NewChannel(cfg, k, rng.New(seed))
	return NewContendingChannel(ch, MACConfig{CollisionWindow: window, CaptureProb: capture}), k
}

func TestZeroWindowPassesThrough(t *testing.T) {
	c, k := newContending(0, 0, 1)
	delivered := 0
	sink := geo.Point{X: 0, Y: 0}
	for i := 0; i < 20; i++ {
		c.Send(geo.Point{X: 1, Y: 0}, sink, func() { delivered++ })
	}
	k.RunAll()
	if delivered != 20 || c.Collisions() != 0 {
		t.Fatalf("delivered=%d collisions=%d", delivered, c.Collisions())
	}
}

func TestSimultaneousBurstCollides(t *testing.T) {
	c, k := newContending(0.01, 0, 2)
	delivered := 0
	sink := geo.Point{X: 0, Y: 0}
	// Ten nodes at the same distance answer at the same instant: their
	// arrivals coincide, so all but the first collide.
	for i := 0; i < 10; i++ {
		c.Send(geo.Point{X: 5, Y: 0}, sink, func() { delivered++ })
	}
	k.RunAll()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (first wins)", delivered)
	}
	if c.Collisions() != 9 {
		t.Fatalf("collisions = %d, want 9", c.Collisions())
	}
}

func TestSpacedTransmissionsSurvive(t *testing.T) {
	c, k := newContending(0.01, 0, 3)
	delivered := 0
	sink := geo.Point{X: 0, Y: 0}
	for i := 0; i < 10; i++ {
		i := i
		// Senders back off well beyond the window.
		_, _ = k.At(sim.Time(float64(i)*0.1), func() {
			c.Send(geo.Point{X: 5, Y: 0}, sink, func() { delivered++ })
		})
	}
	k.RunAll()
	if delivered != 10 || c.Collisions() != 0 {
		t.Fatalf("delivered=%d collisions=%d", delivered, c.Collisions())
	}
}

func TestDistinctReceiversDoNotContend(t *testing.T) {
	c, k := newContending(0.01, 0, 4)
	delivered := 0
	for i := 0; i < 5; i++ {
		sink := geo.Point{X: 0, Y: float64(100 * i)}
		c.Send(geo.Point{X: 5, Y: float64(100 * i)}, sink, func() { delivered++ })
	}
	k.RunAll()
	if delivered != 5 {
		t.Fatalf("delivered = %d, want 5", delivered)
	}
}

func TestCaptureEffect(t *testing.T) {
	c, k := newContending(0.01, 1, 5) // every collision captured
	delivered := 0
	sink := geo.Point{X: 0, Y: 0}
	for i := 0; i < 10; i++ {
		c.Send(geo.Point{X: 5, Y: 0}, sink, func() { delivered++ })
	}
	k.RunAll()
	if delivered != 10 {
		t.Fatalf("delivered = %d with full capture, want 10", delivered)
	}
	if c.Collisions() != 0 {
		t.Fatalf("captured packets counted as collisions: %d", c.Collisions())
	}
}

func TestCollisionsCountInChannelStats(t *testing.T) {
	c, k := newContending(0.01, 0, 6)
	sink := geo.Point{X: 0, Y: 0}
	for i := 0; i < 4; i++ {
		c.Send(geo.Point{X: 5, Y: 0}, sink, func() {})
	}
	k.RunAll()
	sent, deliveredN, lost, _ := c.Stats()
	if sent != 4 || deliveredN != 1 || lost != 3 {
		t.Fatalf("stats = sent %d delivered %d lost %d", sent, deliveredN, lost)
	}
}
