package radio

import (
	"math"
	"testing"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/sim"
)

func newTestChannel(cfg Config, seed int64) (*Channel, *sim.Kernel) {
	k := sim.New()
	return NewChannel(cfg, k, rng.New(seed)), k
}

func TestSendDeliversAndSchedules(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropProb = 0
	ch, k := newTestChannel(cfg, 1)
	delivered := false
	out := ch.Send(geo.Point{X: 0, Y: 0}, geo.Point{X: 10, Y: 0}, func() { delivered = true })
	if out != Delivered {
		t.Fatalf("outcome = %v", out)
	}
	if delivered {
		t.Fatal("delivery ran synchronously")
	}
	k.RunAll()
	if !delivered {
		t.Fatal("delivery never ran")
	}
	wantDelay := cfg.BaseDelay + 10*cfg.DelayPerUnit
	if got := k.Now(); math.Abs(float64(got)-float64(wantDelay)) > 1e-12 {
		t.Fatalf("delivery at %v, want %v", got, wantDelay)
	}
}

func TestSendRespectsRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Range = 5
	ch, k := newTestChannel(cfg, 2)
	out := ch.Send(geo.Point{X: 0, Y: 0}, geo.Point{X: 10, Y: 0}, func() { t.Fatal("delivered out of range") })
	if out != DroppedRange {
		t.Fatalf("outcome = %v", out)
	}
	k.RunAll()
	_, _, _, oor := ch.Stats()
	if oor != 1 {
		t.Fatalf("outOfRange = %d", oor)
	}
}

func TestUnlimitedRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropProb = 0
	ch, _ := newTestChannel(cfg, 3)
	if !ch.InRange(geo.Point{X: 0, Y: 0}, geo.Point{X: 1e6, Y: 0}) {
		t.Fatal("zero Range should mean unlimited")
	}
}

func TestDropRateMatchesConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropProb = 0.1
	ch, k := newTestChannel(cfg, 4)
	const n = 50000
	for i := 0; i < n; i++ {
		ch.Send(geo.Point{X: 0, Y: 0}, geo.Point{X: 1, Y: 0}, func() {})
	}
	k.RunAll()
	if rate := ch.LossRate(); math.Abs(rate-0.1) > 0.01 {
		t.Fatalf("loss rate = %v, want ~0.1", rate)
	}
	sent, delivered, lost, oor := ch.Stats()
	if sent != n || delivered+lost != n || oor != 0 {
		t.Fatalf("stats inconsistent: %d %d %d %d", sent, delivered, lost, oor)
	}
}

func TestLossRateEmptyChannel(t *testing.T) {
	ch, _ := newTestChannel(DefaultConfig(), 5)
	if ch.LossRate() != 0 {
		t.Fatal("empty channel loss rate != 0")
	}
}

func TestRSSDecreasesWithDistance(t *testing.T) {
	ch, _ := newTestChannel(DefaultConfig(), 6)
	prev := ch.RSS(1)
	for _, d := range []float64{2, 5, 10, 50, 100} {
		cur := ch.RSS(d)
		if cur >= prev {
			t.Fatalf("RSS(%v) = %v not below RSS at shorter distance %v", d, cur, prev)
		}
		prev = cur
	}
}

func TestRSSClampsShortDistances(t *testing.T) {
	ch, _ := newTestChannel(DefaultConfig(), 7)
	if ch.RSS(0) != ch.RSS(1) || ch.RSS(0.5) != ch.RSS(1) {
		t.Fatal("sub-unit distances not clamped")
	}
}

func TestDelayGrowsWithDistance(t *testing.T) {
	ch, _ := newTestChannel(DefaultConfig(), 8)
	if ch.Delay(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 0}) <= ch.Delay(geo.Point{X: 0, Y: 0}, geo.Point{X: 1, Y: 0}) {
		t.Fatal("delay not increasing with distance")
	}
}

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{Delivered, "delivered"},
		{DroppedLoss, "dropped-loss"},
		{DroppedRange, "dropped-range"},
		{Outcome(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Fatalf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestChannelDeterminism(t *testing.T) {
	run := func() []Outcome {
		cfg := DefaultConfig()
		cfg.DropProb = 0.5
		ch, _ := newTestChannel(cfg, 42)
		out := make([]Outcome, 100)
		for i := range out {
			out[i] = ch.Send(geo.Point{X: 0, Y: 0}, geo.Point{X: 1, Y: 0}, func() {})
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different channel behaviour")
		}
	}
}
