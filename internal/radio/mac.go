package radio

import (
	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/sim"
)

// The paper's evaluation ran over ns-2's 802.11 MAC, where simultaneous
// transmissions toward one receiver contend and can collide. The default
// Channel folds that into the flat DropProb; this file adds an explicit
// opt-in collision model for experiments that want burst traffic (ten
// nodes answering one event within microseconds) to hurt the way a real
// MAC makes it hurt.
//
// Model: each receiver has a contention window W. When a packet's
// arrival lands within W of another packet's arrival at the same
// receiver, the later packet collides and is lost unless it survives the
// capture probability (the chance the radio locks onto the stronger
// signal anyway). Senders in the simulation pre-jitter their
// transmissions (as CSMA backoff does), so the window is the residual
// vulnerability, not the full packet airtime.

// MACConfig tunes the collision model.
type MACConfig struct {
	// CollisionWindow is the receiver-side vulnerability window in
	// virtual time units. Zero disables collision modelling.
	CollisionWindow sim.Duration
	// CaptureProb is the probability a colliding packet survives anyway
	// (capture effect). Zero means every collision destroys the packet.
	CaptureProb float64
}

// ContendingChannel wraps a Channel with receiver-side collisions.
type ContendingChannel struct {
	*Channel
	mac MACConfig

	// lastArrival tracks the most recent scheduled arrival per receiver.
	// Receivers are identified by their position (the simulation's
	// cluster heads are stationary within a term).
	lastArrival map[geo.Point]sim.Time
	collisions  int
}

// NewContendingChannel wraps ch with the given MAC model.
func NewContendingChannel(ch *Channel, mac MACConfig) *ContendingChannel {
	return &ContendingChannel{
		Channel:     ch,
		mac:         mac,
		lastArrival: make(map[geo.Point]sim.Time),
	}
}

// Collisions returns how many packets the MAC destroyed.
func (c *ContendingChannel) Collisions() int { return c.collisions }

// Send transmits like Channel.Send, then applies the collision rule: if
// the packet's arrival falls within the collision window of the previous
// arrival at the same receiver, it is lost unless captured.
func (c *ContendingChannel) Send(from, to geo.Point, deliver sim.Handler) Outcome {
	if c.mac.CollisionWindow <= 0 {
		return c.Channel.Send(from, to, deliver)
	}
	arrival := c.kernel.Now().Add(c.Delay(from, to))
	prev, seen := c.lastArrival[to]
	collides := seen && arrival.Sub(prev) < c.mac.CollisionWindow && arrival >= prev
	c.lastArrival[to] = arrival
	if collides && !c.src.Bernoulli(c.mac.CaptureProb) {
		c.collisions++
		c.sent++
		c.lost++
		return DroppedLoss
	}
	return c.Channel.Send(from, to, deliver)
}
