package radio

import (
	"testing"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
	"github.com/tibfit/tibfit/internal/sim"
)

// TestLinkCacheMatchesFormulas pins the memoized link accessors to the raw
// formulas bit-for-bit: caching is a pure perf change and must never alter
// an observable value, including on repeat hits.
func TestLinkCacheMatchesFormulas(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Range = 50
	ch, _ := newTestChannel(cfg, 1)
	src := rng.New(42)
	points := make([]geo.Point, 32)
	for i := range points {
		points[i] = geo.Point{X: src.Uniform(0, 100), Y: src.Uniform(0, 100)}
	}
	for pass := 0; pass < 3; pass++ { // pass 0 fills the cache, 1-2 hit it
		for _, a := range points {
			for _, b := range points {
				d := a.Dist(b)
				wantDelay := cfg.BaseDelay + sim.Duration(d)*cfg.DelayPerUnit
				//lint:allow floateq memoized value must be the identical bits
				if got := ch.Delay(a, b); got != wantDelay {
					t.Fatalf("pass %d Delay(%v,%v) = %v, want %v", pass, a, b, got, wantDelay)
				}
				//lint:allow floateq memoized value must be the identical bits
				if got := ch.LinkRSS(a, b); got != ch.RSS(d) {
					t.Fatalf("pass %d LinkRSS(%v,%v) = %v, want %v", pass, a, b, got, ch.RSS(d))
				}
				if got, want := ch.InRange(a, b), d <= cfg.Range; got != want {
					t.Fatalf("pass %d InRange(%v,%v) = %v, want %v", pass, a, b, got, want)
				}
			}
		}
	}
}

// TestLinkCacheEviction floods the direct-mapped cache with far more
// pairs than it has slots, forcing collisions and evictions, and checks
// the cache stays bounded and every answer stays exact throughout.
func TestLinkCacheEviction(t *testing.T) {
	cfg := DefaultConfig()
	ch, _ := newTestChannel(cfg, 1)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 3*linkCacheSize; i++ {
			a := geo.Point{X: float64(i), Y: float64(i % 7)}
			b := geo.Point{X: 0, Y: 1}
			d := a.Dist(b)
			want := cfg.BaseDelay + sim.Duration(d)*cfg.DelayPerUnit
			//lint:allow floateq memoized value must be the identical bits
			if got := ch.Delay(a, b); got != want {
				t.Fatalf("pass %d Delay(%v) = %v, want %v", pass, a, got, want)
			}
		}
	}
	if got := len(ch.links); got != linkCacheSize {
		t.Fatalf("cache has %d slots, want fixed %d", got, linkCacheSize)
	}
}

// TestZeroValueChannelLinkLazyInit: a Channel built without NewChannel
// (tests do this) must lazily allocate its cache rather than crash.
func TestZeroValueChannelLinkLazyInit(t *testing.T) {
	ch := &Channel{cfg: DefaultConfig()}
	a, b := geo.Point{X: 3, Y: 4}, geo.Point{X: 0, Y: 0}
	want := ch.cfg.BaseDelay + sim.Duration(5)*ch.cfg.DelayPerUnit
	//lint:allow floateq memoized value must be the identical bits
	if got := ch.Delay(a, b); got != want {
		t.Fatalf("Delay = %v, want %v", got, want)
	}
}

// TestSendUsesCachedLink checks Send's outcomes and delivery times are
// unchanged by the cache: a warm channel and a cold channel given the same
// rng stream behave identically.
func TestSendUsesCachedLink(t *testing.T) {
	run := func(warm bool) (outs []Outcome, times []float64) {
		cfg := DefaultConfig()
		cfg.Range = 80
		cfg.DropProb = 0.2
		ch, k := newTestChannel(cfg, 7)
		pts := []geo.Point{{X: 0, Y: 0}, {X: 30, Y: 40}, {X: 90, Y: 0}, {X: 10, Y: 10}}
		if warm {
			for _, a := range pts {
				for _, b := range pts {
					ch.Delay(a, b) // prime the cache without touching the rng
				}
			}
		}
		for i := 0; i < 200; i++ {
			from, to := pts[i%len(pts)], pts[(i+1)%len(pts)]
			outs = append(outs, ch.Send(from, to, func() {}))
		}
		k.RunAll()
		times = append(times, float64(k.Now()))
		return outs, times
	}
	coldOuts, coldTimes := run(false)
	warmOuts, warmTimes := run(true)
	for i := range coldOuts {
		if coldOuts[i] != warmOuts[i] {
			t.Fatalf("send %d: cold=%v warm=%v", i, coldOuts[i], warmOuts[i])
		}
	}
	//lint:allow floateq warm and cold runs must be byte-identical
	if coldTimes[0] != warmTimes[0] {
		t.Fatalf("final clock diverged: cold=%v warm=%v", coldTimes[0], warmTimes[0])
	}
}
