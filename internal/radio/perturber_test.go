package radio

import (
	"testing"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/sim"
)

// scriptedPerturber replays a fixed perturbation for every packet.
type scriptedPerturber struct{ p Perturbation }

func (s scriptedPerturber) Perturb(from, to geo.Point) Perturbation { return s.p }

func TestPerturberDropSwallowsPacket(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropProb = 0
	ch, k := newTestChannel(cfg, 1)
	ch.SetPerturber(scriptedPerturber{Perturbation{Drop: true}})
	out := ch.Send(geo.Point{}, geo.Point{X: 10}, func() { t.Fatal("dropped packet delivered") })
	if out != DroppedOutage {
		t.Fatalf("outcome = %v, want %v", out, DroppedOutage)
	}
	k.RunAll()
	outage, duplicated := ch.ChaosStats()
	if outage != 1 || duplicated != 0 {
		t.Fatalf("ChaosStats = %d, %d", outage, duplicated)
	}
}

func TestPerturberDuplicateDeliversTwice(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropProb = 0
	ch, k := newTestChannel(cfg, 2)
	ch.SetPerturber(scriptedPerturber{Perturbation{Duplicate: true}})
	deliveries := 0
	if out := ch.Send(geo.Point{}, geo.Point{X: 10}, func() { deliveries++ }); out != Delivered {
		t.Fatalf("outcome = %v", out)
	}
	k.RunAll()
	if deliveries != 2 {
		t.Fatalf("deliveries = %d, want 2 (original + duplicate)", deliveries)
	}
	if _, duplicated := ch.ChaosStats(); duplicated != 1 {
		t.Fatalf("duplicated = %d", duplicated)
	}
}

func TestPerturberExtraDelayShiftsArrival(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropProb = 0
	ch, k := newTestChannel(cfg, 3)
	const jitter = 0.25
	ch.SetPerturber(scriptedPerturber{Perturbation{ExtraDelay: jitter}})
	var arrived sim.Time
	ch.Send(geo.Point{}, geo.Point{X: 10}, func() { arrived = k.Now() })
	k.RunAll()
	want := sim.Time(float64(cfg.BaseDelay+10*cfg.DelayPerUnit) + jitter)
	if arrived != want {
		t.Fatalf("arrival at %v, want %v", arrived, want)
	}
}

// TestNilPerturberDrawsNothing pins the byte-identity guarantee: a
// channel without a perturber must consume exactly the same rng stream
// as one built before the perturber hook existed.
func TestNilPerturberDrawsNothing(t *testing.T) {
	cfg := DefaultConfig()
	run := func(set bool) []Outcome {
		ch, k := newTestChannel(cfg, 7)
		if set {
			ch.SetPerturber(nil)
		}
		var outs []Outcome
		for i := 0; i < 200; i++ {
			outs = append(outs, ch.Send(geo.Point{}, geo.Point{X: float64(i % 30)}, func() {}))
		}
		k.RunAll()
		return outs
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d: outcome %v with nil perturber set, %v without", i, b[i], a[i])
		}
	}
}
