package cluster

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
)

const rError = 5.0

func reportsAt(locs ...geo.Point) []Report {
	out := make([]Report, len(locs))
	for i, l := range locs {
		out[i] = Report{Node: i, Loc: l}
	}
	return out
}

func TestClusterEmpty(t *testing.T) {
	if got := Cluster(nil, rError); got != nil {
		t.Fatalf("Cluster(nil) = %v", got)
	}
}

func TestClusterPanicsOnBadRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for rError <= 0")
		}
	}()
	Cluster(reportsAt(geo.Point{}), 0)
}

func TestClusterSingleReport(t *testing.T) {
	cs := Cluster(reportsAt(geo.Point{X: 3, Y: 4}), rError)
	if len(cs) != 1 {
		t.Fatalf("got %d clusters, want 1", len(cs))
	}
	if cs[0].Center != (geo.Point{X: 3, Y: 4}) {
		t.Fatalf("center = %v", cs[0].Center)
	}
}

func TestClusterTightGroupIsOne(t *testing.T) {
	cs := Cluster(reportsAt(
		geo.Point{X: 0, Y: 0}, geo.Point{X: 1, Y: 1}, geo.Point{X: 2, Y: 0}, geo.Point{X: 1, Y: -1},
	), rError)
	if len(cs) != 1 {
		t.Fatalf("got %d clusters, want 1: %v", len(cs), cs)
	}
	if len(cs[0].Reports) != 4 {
		t.Fatalf("cluster has %d reports, want 4", len(cs[0].Reports))
	}
}

func TestClusterTwoDistantGroups(t *testing.T) {
	cs := Cluster(reportsAt(
		geo.Point{X: 0, Y: 0}, geo.Point{X: 1, Y: 0}, geo.Point{X: 0, Y: 1},
		geo.Point{X: 50, Y: 50}, geo.Point{X: 51, Y: 50},
	), rError)
	if len(cs) != 2 {
		t.Fatalf("got %d clusters, want 2: %v", len(cs), cs)
	}
	// Largest first.
	if len(cs[0].Reports) != 3 || len(cs[1].Reports) != 2 {
		t.Fatalf("cluster sizes = %d, %d", len(cs[0].Reports), len(cs[1].Reports))
	}
}

func TestClusterOutlierFormsOwnCluster(t *testing.T) {
	// §3.2: reports localized more than r_error away form separate
	// clusters and get thrown out by the subsequent vote.
	cs := Cluster(reportsAt(
		geo.Point{X: 0, Y: 0}, geo.Point{X: 1, Y: 0}, geo.Point{X: 0, Y: 1}, geo.Point{X: 1, Y: 1},
		geo.Point{X: 20, Y: 0},
	), rError)
	if len(cs) != 2 {
		t.Fatalf("got %d clusters, want 2: %v", len(cs), cs)
	}
	outlier := cs[1]
	if len(outlier.Reports) != 1 || outlier.Reports[0].Node != 4 {
		t.Fatalf("outlier cluster = %v", outlier)
	}
}

func TestClusterCenterIsCentroid(t *testing.T) {
	cs := Cluster(reportsAt(geo.Point{X: 0, Y: 0}, geo.Point{X: 2, Y: 0}, geo.Point{X: 1, Y: 3}), rError)
	if len(cs) != 1 {
		t.Fatalf("got %d clusters", len(cs))
	}
	want := geo.Point{X: 1, Y: 1}
	if cs[0].Center.Dist(want) > 1e-9 {
		t.Fatalf("center = %v, want %v", cs[0].Center, want)
	}
}

func TestClusterNodesSorted(t *testing.T) {
	reports := []Report{
		{Node: 9, Loc: geo.Point{X: 0, Y: 0}},
		{Node: 2, Loc: geo.Point{X: 1, Y: 0}},
		{Node: 5, Loc: geo.Point{X: 0, Y: 1}},
	}
	cs := Cluster(reports, rError)
	ids := cs[0].Nodes()
	want := []int{2, 5, 9}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", ids, want)
		}
	}
}

func TestClusterThreeGroups(t *testing.T) {
	cs := Cluster(reportsAt(
		geo.Point{X: 0, Y: 0}, geo.Point{X: 1, Y: 1},
		geo.Point{X: 30, Y: 0}, geo.Point{X: 31, Y: 1},
		geo.Point{X: 0, Y: 30}, geo.Point{X: 1, Y: 31},
	), rError)
	if len(cs) != 3 {
		t.Fatalf("got %d clusters, want 3: %v", len(cs), cs)
	}
}

// TestClusterSeparationInvariant verifies the §3.2 postcondition on random
// inputs: final cluster centers are pairwise more than r_error apart, every
// report belongs to exactly one cluster, and no report is closer to another
// cluster's center than to its own.
func TestClusterSeparationInvariant(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 200; trial++ {
		n := 1 + src.Intn(40)
		reports := make([]Report, n)
		for i := range reports {
			reports[i] = Report{
				Node: i,
				Loc:  geo.Point{X: src.Uniform(0, 100), Y: src.Uniform(0, 100)},
			}
		}
		cs := Cluster(reports, rError)

		total := 0
		for _, c := range cs {
			total += len(c.Reports)
		}
		if total != n {
			t.Fatalf("trial %d: %d reports in clusters, want %d", trial, total, n)
		}

		for i := range cs {
			for j := i + 1; j < len(cs); j++ {
				if d := cs[i].Center.Dist(cs[j].Center); d <= rError {
					t.Fatalf("trial %d: centers %v and %v only %v apart",
						trial, cs[i].Center, cs[j].Center, d)
				}
			}
		}

		for ci, c := range cs {
			for _, r := range c.Reports {
				own := r.Loc.Dist(c.Center)
				for cj, other := range cs {
					if cj == ci {
						continue
					}
					if r.Loc.Dist(other.Center) < own-1e-9 {
						t.Fatalf("trial %d: report %v closer to cluster %d than its own %d",
							trial, r, cj, ci)
					}
				}
			}
		}
	}
}

// Property: clustering is insensitive to report order up to cluster
// identity (same partition of node IDs).
func TestClusterOrderInsensitiveProperty(t *testing.T) {
	check := func(seed int64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(20)
		reports := make([]Report, n)
		for i := range reports {
			reports[i] = Report{
				Node: i,
				Loc:  geo.Point{X: src.Uniform(0, 60), Y: src.Uniform(0, 60)},
			}
		}
		a := Cluster(reports, rError)

		shuffled := make([]Report, n)
		copy(shuffled, reports)
		src.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b := Cluster(shuffled, rError)

		return partitionSignature(a) == partitionSignature(b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// partitionSignature fingerprints cluster constituency for the
// order-insensitivity check: sorted member lists, cluster order ignored.
func partitionSignature(cs []EventCluster) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = fmt.Sprint(c.Nodes())
	}
	sort.Strings(parts)
	return fmt.Sprint(parts)
}

func TestFarthestPair(t *testing.T) {
	reports := reportsAt(geo.Point{X: 0, Y: 0}, geo.Point{X: 1, Y: 1}, geo.Point{X: 10, Y: 0})
	ai, bi, d2 := farthestPair(reports)
	if ai != 0 || bi != 2 {
		t.Fatalf("farthest pair = (%d, %d)", ai, bi)
	}
	if math.Abs(d2-100) > 1e-9 {
		t.Fatalf("d2 = %v, want 100", d2)
	}
}

func TestMergeCentersCombinesClose(t *testing.T) {
	clusters := []EventCluster{
		{Center: geo.Point{X: 0, Y: 0}, Reports: make([]Report, 3)},
		{Center: geo.Point{X: 4, Y: 0}, Reports: make([]Report, 1)},
		{Center: geo.Point{X: 50, Y: 0}, Reports: make([]Report, 2)},
	}
	centers := new(Clusterer).mergeCenters(clusters, rError)
	if len(centers) != 2 {
		t.Fatalf("got %d centers, want 2: %v", len(centers), centers)
	}
	// Weighted average of (0,0)x3 and (4,0)x1 is (1,0).
	if centers[0].Dist(geo.Point{X: 1, Y: 0}) > 1e-9 {
		t.Fatalf("merged center = %v, want (1,0)", centers[0])
	}
}
