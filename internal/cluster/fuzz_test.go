package cluster

import (
	"math"
	"testing"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/sim"
)

// FuzzCluster drives the §3.2 heuristic with arbitrary report coordinates
// and checks its invariants never break: every report lands in exactly
// one cluster, and final centers stay pairwise more than r_error apart.
func FuzzCluster(f *testing.F) {
	f.Add(int64(1), uint8(5), 5.0)
	f.Add(int64(42), uint8(30), 1.0)
	f.Add(int64(-7), uint8(2), 100.0)
	f.Fuzz(func(t *testing.T, seed int64, count uint8, rErr float64) {
		if math.IsNaN(rErr) || math.IsInf(rErr, 0) || rErr <= 0 || rErr > 1e6 {
			t.Skip()
		}
		n := int(count%64) + 1
		// A tiny deterministic generator from the seed; positions may
		// coincide, sit on a line, or collapse to one point — all legal.
		reports := make([]Report, n)
		state := uint64(seed)
		next := func() float64 {
			state = state*6364136223846793005 + 1442695040888963407
			return float64(state%2000000)/1000 - 1000
		}
		for i := range reports {
			reports[i] = Report{Node: i, Loc: geo.Point{X: next(), Y: next()}}
		}

		clusters := Cluster(reports, rErr)

		total := 0
		seen := make(map[int]bool)
		for _, c := range clusters {
			total += len(c.Reports)
			for _, r := range c.Reports {
				if seen[r.Node] {
					t.Fatalf("node %d appears in two clusters", r.Node)
				}
				seen[r.Node] = true
			}
			if !c.Center.IsFinite() {
				t.Fatalf("non-finite center %v", c.Center)
			}
		}
		if total != n {
			t.Fatalf("%d reports clustered, want %d", total, n)
		}
		for i := range clusters {
			for j := i + 1; j < len(clusters); j++ {
				if d := clusters[i].Center.Dist(clusters[j].Center); d <= rErr {
					t.Fatalf("centers %v apart, want > %v", d, rErr)
				}
			}
		}
	})
}

// FuzzCircleSet checks the §3.3 circle bookkeeping against arbitrary
// report sequences: Collect never returns a report twice and never loses
// one once its component's deadlines have all passed.
func FuzzCircleSet(f *testing.F) {
	f.Add(int64(3), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, count uint8) {
		n := int(count%48) + 1
		s := NewCircleSet(5, 1)
		state := uint64(seed)
		next := func(mod int) float64 {
			state = state*6364136223846793005 + 1442695040888963407
			return float64(state % uint64(mod))
		}
		now := 0.0
		collected := make(map[int]bool)
		added := 0
		for i := 0; i < n; i++ {
			now += next(100) / 100
			s.Add(Report{Node: i, Loc: geo.Point{X: next(60), Y: next(60)}}, simTime(now))
			added++
			for _, group := range s.Collect(simTime(now)) {
				for _, r := range group {
					if collected[r.Node] {
						t.Fatalf("report %d collected twice", r.Node)
					}
					collected[r.Node] = true
				}
			}
		}
		// Far-future collect drains everything still open.
		for _, group := range s.Collect(simTime(now + 1e6)) {
			for _, r := range group {
				if collected[r.Node] {
					t.Fatalf("report %d collected twice at drain", r.Node)
				}
				collected[r.Node] = true
			}
		}
		if len(collected) != added {
			t.Fatalf("collected %d of %d reports", len(collected), added)
		}
		if s.Open() != 0 {
			t.Fatalf("%d circles leaked", s.Open())
		}
	})
}

// simTime converts a float test time into the kernel's Time type.
func simTime(v float64) sim.Time { return sim.Time(v) }
