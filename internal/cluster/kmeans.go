// Package cluster implements the spatial grouping machinery of TIBFIT's
// location-determination mode: the K-means-style heuristic that organizes
// location reports into event clusters (paper §3.2), and the symbolic
// circle bookkeeping that separates concurrent events before clustering
// (paper §3.3).
package cluster

import (
	"fmt"
	"sort"

	"github.com/tibfit/tibfit/internal/geo"
)

// Report is one location report as seen by the cluster head after polar
// conversion: which node sent it and the absolute location it indicates.
type Report struct {
	Node int
	Loc  geo.Point
}

// EventCluster is one group of mutually consistent reports. Center is the
// cluster's center of gravity (cg) — the average location indicated by the
// member reports — which the protocol takes as the event location.
type EventCluster struct {
	Center  geo.Point
	Reports []Report
}

// Nodes returns the sorted IDs of the nodes whose reports are members.
func (c EventCluster) Nodes() []int {
	out := make([]int, 0, len(c.Reports))
	for _, r := range c.Reports {
		out = append(out, r.Node)
	}
	sort.Ints(out)
	return out
}

// String summarizes the cluster for traces.
func (c EventCluster) String() string {
	return fmt.Sprintf("cg=%v n=%d", c.Center, len(c.Reports))
}

// maxRounds bounds the refinement loop. The paper's heuristic converges in
// a handful of rounds on its workloads; the bound only guards against
// pathological oscillation on adversarial inputs.
const maxRounds = 64

// Cluster groups event reports into disjoint event clusters of radius
// rError following §3.2:
//
//  1. Seed centers with the farthest pair of reports.
//  2. Promote any report farther than rError from every current center to
//     a new center, until no report can form a separate cluster.
//  3. Assign every report to its nearest center and recompute each
//     cluster's center of gravity.
//  4. While two or more centers lie within rError of each other, replace
//     them with their weighted average and repeat the assignment round,
//     until cluster constituency stops changing.
//
// The result is a set of clusters whose centers are pairwise more than
// rError apart, covering every report. Reports from nodes whose
// localization error exceeds rError land in separate (typically tiny)
// clusters, which the subsequent CTI vote throws out — this is the
// mechanism by which TIBFIT discards badly localized reports.
//
// A nil or empty input yields no clusters. rError must be positive.
func Cluster(reports []Report, rError float64) []EventCluster {
	if len(reports) == 0 {
		return nil
	}
	if rError <= 0 {
		panic(fmt.Sprintf("cluster: rError must be positive, got %v", rError))
	}
	// Canonicalize processing order so the heuristic's tie-breaks (and
	// therefore its output) do not depend on report arrival order.
	sorted := make([]Report, len(reports))
	copy(sorted, reports)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })
	reports = sorted
	centers := seedCenters(reports, rError)
	var clusters []EventCluster
	prev := ""
	for round := 0; round < maxRounds; round++ {
		clusters = assign(reports, centers)
		centers = mergeCenters(clusters, rError)
		sig := signature(clusters)
		if sig == prev && len(centers) == len(clusters) {
			break
		}
		prev = sig
	}
	// Final assignment against the merged centers so that the returned
	// clusters are consistent with the centers' separation invariant.
	clusters = assign(reports, centers)
	for i := range clusters {
		cg, _ := geo.Centroid(locations(clusters[i].Reports))
		clusters[i].Center = cg
	}
	sortClusters(clusters)
	return clusters
}

// seedCenters performs steps 1-2: farthest-pair seeding plus promotion of
// every report that cannot be covered by an existing center.
func seedCenters(reports []Report, rError float64) []geo.Point {
	if len(reports) == 1 {
		return []geo.Point{reports[0].Loc}
	}
	ai, bi, maxD2 := farthestPair(reports)
	if maxD2 <= rError*rError {
		// All reports are mutually within rError: a single cluster.
		cg, _ := geo.Centroid(locations(reports))
		return []geo.Point{cg}
	}
	centers := []geo.Point{reports[ai].Loc, reports[bi].Loc}
	for _, r := range reports {
		if minDist2(r.Loc, centers) > rError*rError {
			centers = append(centers, r.Loc)
		}
	}
	return centers
}

// farthestPair returns the indices of the two reports with the greatest
// pairwise distance and that squared distance. O(n²), as in the paper's
// step 1 which sorts all pairwise distances.
func farthestPair(reports []Report) (ai, bi int, maxD2 float64) {
	for i := range reports {
		for j := i + 1; j < len(reports); j++ {
			if d2 := reports[i].Loc.Dist2(reports[j].Loc); d2 > maxD2 {
				ai, bi, maxD2 = i, j, d2
			}
		}
	}
	return ai, bi, maxD2
}

// assign groups every report with its nearest center (step 4) and sets
// each cluster's center to the member centroid.
func assign(reports []Report, centers []geo.Point) []EventCluster {
	members := make([][]Report, len(centers))
	for _, r := range reports {
		best, bestD2 := 0, r.Loc.Dist2(centers[0])
		for ci := 1; ci < len(centers); ci++ {
			if d2 := r.Loc.Dist2(centers[ci]); d2 < bestD2 {
				best, bestD2 = ci, d2
			}
		}
		members[best] = append(members[best], r)
	}
	clusters := make([]EventCluster, 0, len(centers))
	for _, m := range members {
		if len(m) == 0 {
			continue // a merged-away or out-competed center
		}
		cg, _ := geo.Centroid(locations(m))
		clusters = append(clusters, EventCluster{Center: cg, Reports: m})
	}
	return clusters
}

// mergeCenters implements step 5: while any two centers lie within rError,
// replace them with their weighted average (weights = member counts).
func mergeCenters(clusters []EventCluster, rError float64) []geo.Point {
	type wc struct {
		p geo.Point
		w float64
	}
	cs := make([]wc, len(clusters))
	for i, c := range clusters {
		cs[i] = wc{p: c.Center, w: float64(len(c.Reports))}
	}
	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				if cs[i].p.Dist(cs[j].p) <= rError {
					w := cs[i].w + cs[j].w
					avg, ok := geo.WeightedCentroid(
						[]geo.Point{cs[i].p, cs[j].p},
						[]float64{cs[i].w, cs[j].w})
					if !ok {
						avg = cs[i].p
						w = 1
					}
					cs[i] = wc{p: avg, w: w}
					cs = append(cs[:j], cs[j+1:]...)
					merged = true
					break outer
				}
			}
		}
	}
	out := make([]geo.Point, len(cs))
	for i, c := range cs {
		out[i] = c.p
	}
	return out
}

// signature fingerprints cluster constituency for convergence detection.
func signature(clusters []EventCluster) string {
	parts := make([]string, len(clusters))
	for i, c := range clusters {
		ids := c.Nodes()
		parts[i] = fmt.Sprint(ids)
	}
	sort.Strings(parts)
	return fmt.Sprint(parts)
}

// sortClusters orders clusters by descending size then by center for
// deterministic output.
func sortClusters(clusters []EventCluster) {
	sort.Slice(clusters, func(i, j int) bool {
		if len(clusters[i].Reports) != len(clusters[j].Reports) {
			return len(clusters[i].Reports) > len(clusters[j].Reports)
		}
		ci, cj := clusters[i].Center, clusters[j].Center
		//lint:allow floateq total-order tie-break comparator; exact comparison is the point
		if ci.X != cj.X {
			return ci.X < cj.X
		}
		return ci.Y < cj.Y
	})
}

func locations(reports []Report) []geo.Point {
	out := make([]geo.Point, len(reports))
	for i, r := range reports {
		out[i] = r.Loc
	}
	return out
}

func minDist2(p geo.Point, centers []geo.Point) float64 {
	best := p.Dist2(centers[0])
	for _, c := range centers[1:] {
		if d2 := p.Dist2(c); d2 < best {
			best = d2
		}
	}
	return best
}
