// Package cluster implements the spatial grouping machinery of TIBFIT's
// location-determination mode: the K-means-style heuristic that organizes
// location reports into event clusters (paper §3.2), and the symbolic
// circle bookkeeping that separates concurrent events before clustering
// (paper §3.3).
package cluster

import (
	"fmt"
	"sort"

	"github.com/tibfit/tibfit/internal/geo"
)

// Report is one location report as seen by the cluster head after polar
// conversion: which node sent it and the absolute location it indicates.
type Report struct {
	Node int
	Loc  geo.Point
}

// EventCluster is one group of mutually consistent reports. Center is the
// cluster's center of gravity (cg) — the average location indicated by the
// member reports — which the protocol takes as the event location.
//
// Clusters built by Cluster list Reports in ascending Node order (the
// canonical processing order), so per-member iteration is deterministic
// without re-sorting.
type EventCluster struct {
	Center  geo.Point
	Reports []Report
}

// Nodes returns the sorted IDs of the nodes whose reports are members.
func (c EventCluster) Nodes() []int {
	out := make([]int, 0, len(c.Reports))
	for _, r := range c.Reports {
		out = append(out, r.Node)
	}
	sort.Ints(out)
	return out
}

// String summarizes the cluster for traces.
func (c EventCluster) String() string {
	return fmt.Sprintf("cg=%v n=%d", c.Center, len(c.Reports))
}

// maxRounds bounds the refinement loop. The paper's heuristic converges in
// a handful of rounds on its workloads; the bound only guards against
// pathological oscillation on adversarial inputs.
const maxRounds = 64

// Cluster groups event reports into disjoint event clusters of radius
// rError following §3.2:
//
//  1. Seed centers with the farthest pair of reports.
//  2. Promote any report farther than rError from every current center to
//     a new center, until no report can form a separate cluster.
//  3. Assign every report to its nearest center and recompute each
//     cluster's center of gravity.
//  4. While two or more centers lie within rError of each other, replace
//     them with their weighted average and repeat the assignment round,
//     until cluster constituency stops changing.
//
// The result is a set of clusters whose centers are pairwise more than
// rError apart, covering every report. Reports from nodes whose
// localization error exceeds rError land in separate (typically tiny)
// clusters, which the subsequent CTI vote throws out — this is the
// mechanism by which TIBFIT discards badly localized reports.
//
// A nil or empty input yields no clusters. rError must be positive.
func Cluster(reports []Report, rError float64) []EventCluster {
	if len(reports) == 0 {
		return nil
	}
	if rError <= 0 {
		panic(fmt.Sprintf("cluster: rError must be positive, got %v", rError))
	}
	// Canonicalize processing order so the heuristic's tie-breaks (and
	// therefore its output) do not depend on report arrival order.
	sorted := make([]Report, len(reports))
	copy(sorted, reports)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })
	reports = sorted
	centers := seedCenters(reports, rError)
	var clusters []EventCluster
	var sig sigScratch
	// Member-list scratch for the refinement rounds: centers never grow
	// after seeding, so one buffer sized to the seed count serves every
	// round. The final assignment below allocates fresh lists, because
	// those escape to the caller.
	scratch := make([][]Report, len(centers))
	for round := 0; round < maxRounds; round++ {
		clusters = assign(reports, centers, scratch)
		centers = mergeCenters(clusters, rError)
		if sig.converged(clusters) && len(centers) == len(clusters) {
			break
		}
	}
	// Final assignment against the merged centers so that the returned
	// clusters are consistent with the centers' separation invariant.
	clusters = assign(reports, centers, nil)
	for i := range clusters {
		clusters[i].Center = reportCentroid(clusters[i].Reports)
	}
	sortClusters(clusters)
	return clusters
}

// seedCenters performs steps 1-2: farthest-pair seeding plus promotion of
// every report that cannot be covered by an existing center.
func seedCenters(reports []Report, rError float64) []geo.Point {
	if len(reports) == 1 {
		return []geo.Point{reports[0].Loc}
	}
	ai, bi, maxD2 := farthestPair(reports)
	if maxD2 <= rError*rError {
		// All reports are mutually within rError: a single cluster.
		return []geo.Point{reportCentroid(reports)}
	}
	centers := []geo.Point{reports[ai].Loc, reports[bi].Loc}
	for _, r := range reports {
		if minDist2(r.Loc, centers) > rError*rError {
			centers = append(centers, r.Loc)
		}
	}
	return centers
}

// farthestPair returns the indices of the two reports with the greatest
// pairwise distance and that squared distance. O(n²), as in the paper's
// step 1 which sorts all pairwise distances.
func farthestPair(reports []Report) (ai, bi int, maxD2 float64) {
	for i := range reports {
		for j := i + 1; j < len(reports); j++ {
			if d2 := reports[i].Loc.Dist2(reports[j].Loc); d2 > maxD2 {
				ai, bi, maxD2 = i, j, d2
			}
		}
	}
	return ai, bi, maxD2
}

// assign groups every report with its nearest center (step 4) and sets
// each cluster's center to the member centroid. Because reports arrive in
// ascending Node order, each member list is node-sorted by construction.
// scratch, when large enough, provides reusable member-list storage for
// rounds whose clusters do not outlive the refinement loop; pass nil when
// the result escapes.
func assign(reports []Report, centers []geo.Point, scratch [][]Report) []EventCluster {
	var members [][]Report
	if cap(scratch) >= len(centers) {
		members = scratch[:len(centers)]
		for i := range members {
			members[i] = members[i][:0]
		}
	} else {
		members = make([][]Report, len(centers))
	}
	for _, r := range reports {
		best, bestD2 := 0, r.Loc.Dist2(centers[0])
		for ci := 1; ci < len(centers); ci++ {
			if d2 := r.Loc.Dist2(centers[ci]); d2 < bestD2 {
				best, bestD2 = ci, d2
			}
		}
		members[best] = append(members[best], r)
	}
	clusters := make([]EventCluster, 0, len(centers))
	for _, m := range members {
		if len(m) == 0 {
			continue // a merged-away or out-competed center
		}
		clusters = append(clusters, EventCluster{Center: reportCentroid(m), Reports: m})
	}
	return clusters
}

// mergeCenters implements step 5: while any two centers lie within rError,
// replace them with their weighted average (weights = member counts).
func mergeCenters(clusters []EventCluster, rError float64) []geo.Point {
	type wc struct {
		p geo.Point
		w float64
	}
	cs := make([]wc, len(clusters))
	for i, c := range clusters {
		cs[i] = wc{p: c.Center, w: float64(len(c.Reports))}
	}
	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				if cs[i].p.Dist(cs[j].p) <= rError {
					w := cs[i].w + cs[j].w
					avg, ok := geo.WeightedCentroid(
						[]geo.Point{cs[i].p, cs[j].p},
						[]float64{cs[i].w, cs[j].w})
					if !ok {
						avg = cs[i].p
						w = 1
					}
					cs[i] = wc{p: avg, w: w}
					cs = append(cs[:j], cs[j+1:]...)
					merged = true
					break outer
				}
			}
		}
	}
	out := make([]geo.Point, len(cs))
	for i, c := range cs {
		out[i] = c.p
	}
	return out
}

// sigScratch detects convergence of the refinement loop by comparing
// cluster constituency between consecutive rounds. It replaces a
// string-based fingerprint that allocated on every round: the partition is
// flattened into reusable int buffers — clusters visited in order of their
// smallest member ID, each contributing its member IDs plus a -1
// separator — and two rounds converge when the flattened forms match.
// (Partitions are equal iff these canonical forms are equal.)
type sigScratch struct {
	idx       []int
	cur, prev []int
	seeded    bool
}

// converged folds in the current round's clusters and reports whether the
// constituency is unchanged from the previous round.
func (s *sigScratch) converged(clusters []EventCluster) bool {
	// Order clusters by smallest member; Reports are node-sorted, so that
	// is Reports[0]. Insertion sort: the cluster count is tiny and the
	// order is nearly stable across rounds.
	s.idx = s.idx[:0]
	for i := range clusters {
		s.idx = append(s.idx, i)
	}
	for i := 1; i < len(s.idx); i++ {
		for j := i; j > 0 && clusters[s.idx[j]].Reports[0].Node < clusters[s.idx[j-1]].Reports[0].Node; j-- {
			s.idx[j], s.idx[j-1] = s.idx[j-1], s.idx[j]
		}
	}
	s.cur = s.cur[:0]
	for _, ci := range s.idx {
		for _, r := range clusters[ci].Reports {
			s.cur = append(s.cur, r.Node)
		}
		s.cur = append(s.cur, -1)
	}
	same := s.seeded && len(s.cur) == len(s.prev)
	if same {
		for i, v := range s.cur {
			if s.prev[i] != v {
				same = false
				break
			}
		}
	}
	s.cur, s.prev = s.prev, s.cur
	s.seeded = true
	return same
}

// sortClusters orders clusters by descending size then by center for
// deterministic output.
func sortClusters(clusters []EventCluster) {
	sort.Slice(clusters, func(i, j int) bool {
		if len(clusters[i].Reports) != len(clusters[j].Reports) {
			return len(clusters[i].Reports) > len(clusters[j].Reports)
		}
		ci, cj := clusters[i].Center, clusters[j].Center
		//lint:allow floateq total-order tie-break comparator; exact comparison is the point
		if ci.X != cj.X {
			return ci.X < cj.X
		}
		return ci.Y < cj.Y
	})
}

// reportCentroid is geo.Centroid over the report locations without
// materializing an intermediate point slice; the summation order is the
// same, so the result is bit-identical.
func reportCentroid(reports []Report) geo.Point {
	var sx, sy float64
	for _, r := range reports {
		sx += r.Loc.X
		sy += r.Loc.Y
	}
	n := float64(len(reports))
	return geo.Point{X: sx / n, Y: sy / n}
}

func minDist2(p geo.Point, centers []geo.Point) float64 {
	best := p.Dist2(centers[0])
	for _, c := range centers[1:] {
		if d2 := p.Dist2(c); d2 < best {
			best = d2
		}
	}
	return best
}
