// Package cluster implements the spatial grouping machinery of TIBFIT's
// location-determination mode: the K-means-style heuristic that organizes
// location reports into event clusters (paper §3.2), and the symbolic
// circle bookkeeping that separates concurrent events before clustering
// (paper §3.3).
package cluster

import (
	"fmt"
	"sort"

	"github.com/tibfit/tibfit/internal/geo"
)

// Report is one location report as seen by the cluster head after polar
// conversion: which node sent it and the absolute location it indicates.
type Report struct {
	Node int
	Loc  geo.Point
}

// EventCluster is one group of mutually consistent reports. Center is the
// cluster's center of gravity (cg) — the average location indicated by the
// member reports — which the protocol takes as the event location.
//
// Clusters built by Cluster list Reports in ascending Node order (the
// canonical processing order), so per-member iteration is deterministic
// without re-sorting.
type EventCluster struct {
	Center  geo.Point
	Reports []Report
}

// Nodes returns the sorted IDs of the nodes whose reports are members.
func (c EventCluster) Nodes() []int {
	out := make([]int, 0, len(c.Reports))
	for _, r := range c.Reports {
		out = append(out, r.Node)
	}
	sort.Ints(out)
	return out
}

// String summarizes the cluster for traces.
func (c EventCluster) String() string {
	return fmt.Sprintf("cg=%v n=%d", c.Center, len(c.Reports))
}

// maxRounds bounds the refinement loop. The paper's heuristic converges in
// a handful of rounds on its workloads; the bound only guards against
// pathological oscillation on adversarial inputs.
const maxRounds = 64

// gridMinPoints is the input size at which the heuristic's inner scans
// switch from the exact brute loops to the spatial grid. The grid paths
// are byte-identical to the brute ones by construction (same float
// predicates, same tie-breaks — pinned by the geo differential fuzzers),
// but keeping paper-scale inputs on the historical code path makes the
// golden-figure guarantee unconditional and skips the grid's constant
// overhead where n is tiny.
const gridMinPoints = 48

// hullMinPoints is the input size at which farthest-pair seeding switches
// from the O(n²) scan to a convex-hull pass. Unlike the grid paths this
// is not bit-for-bit against brute in adversarial ulp-tie cases, so the
// threshold sits far above every golden-pinned workload.
const hullMinPoints = 4096

// Cluster groups event reports into disjoint event clusters of radius
// rError following §3.2. It is the convenience wrapper over a throwaway
// Clusterer; callers that cluster repeatedly (the location aggregation
// pipeline, every Recluster round) should hold a Clusterer and reuse its
// scratch.
//
// A nil or empty input yields no clusters. rError must be positive.
func Cluster(reports []Report, rError float64) []EventCluster {
	var c Clusterer
	return c.Cluster(reports, rError)
}

// Clusterer runs the §3.2 heuristic with persistent scratch: the sorted
// report copy, per-center member lists, the convergence fingerprint, the
// center buffers, and the spatial grid survive across calls, so a
// steady-state Cluster call allocates only the escaping result. A
// Clusterer is not safe for concurrent use; give each goroutine its own.
type Clusterer struct {
	sorted  []Report
	scratch [][]Report
	sig     sigScratch

	// seedPts and mergePts alternate as center storage: seedPts carries
	// the seeded centers into the refinement loop, mergePts the merged
	// centers between rounds. They must be distinct: assign still reads
	// one while mergeCenters writes the other.
	seedPts  []geo.Point
	mergePts []geo.Point
	wcs      []wc

	grid     *geo.Grid
	gridPts  []geo.Point
	rangeIDs []int
}

// NewClusterer returns a Clusterer with empty scratch.
func NewClusterer() *Clusterer { return &Clusterer{} }

// lazyGrid returns the reusable spatial index, allocating it on the first
// call that reaches grid scale.
func (c *Clusterer) lazyGrid() *geo.Grid {
	if c.grid == nil {
		c.grid = geo.NewGrid()
	}
	return c.grid
}

// Cluster groups event reports into disjoint event clusters of radius
// rError following §3.2:
//
//  1. Seed centers with the farthest pair of reports.
//  2. Promote any report farther than rError from every current center to
//     a new center, until no report can form a separate cluster.
//  3. Assign every report to its nearest center and recompute each
//     cluster's center of gravity.
//  4. While two or more centers lie within rError of each other, replace
//     them with their weighted average and repeat the assignment round,
//     until cluster constituency stops changing.
//
// The result is a set of clusters whose centers are pairwise more than
// rError apart, covering every report. Reports from nodes whose
// localization error exceeds rError land in separate (typically tiny)
// clusters, which the subsequent CTI vote throws out — this is the
// mechanism by which TIBFIT discards badly localized reports.
func (c *Clusterer) Cluster(reports []Report, rError float64) []EventCluster {
	if len(reports) == 0 {
		return nil
	}
	if rError <= 0 {
		panic(fmt.Sprintf("cluster: rError must be positive, got %v", rError))
	}
	// Canonicalize processing order so the heuristic's tie-breaks (and
	// therefore its output) do not depend on report arrival order.
	c.sorted = append(c.sorted[:0], reports...)
	sort.Slice(c.sorted, func(i, j int) bool { return c.sorted[i].Node < c.sorted[j].Node })
	reports = c.sorted
	centers := c.seedCenters(reports, rError)
	var clusters []EventCluster
	c.sig.reset()
	// Member-list scratch for the refinement rounds: centers never grow
	// after seeding, so one buffer sized to the seed count serves every
	// round. The final assignment below allocates fresh lists, because
	// those escape to the caller.
	if cap(c.scratch) < len(centers) {
		c.scratch = make([][]Report, len(centers))
	}
	for round := 0; round < maxRounds; round++ {
		clusters = c.assign(reports, centers, c.scratch)
		centers = c.mergeCenters(clusters, rError)
		if c.sig.converged(clusters) && len(centers) == len(clusters) {
			break
		}
	}
	// Final assignment against the merged centers so that the returned
	// clusters are consistent with the centers' separation invariant.
	clusters = c.assign(reports, centers, nil)
	for i := range clusters {
		clusters[i].Center = reportCentroid(clusters[i].Reports)
	}
	sortClusters(clusters)
	return clusters
}

// seedCenters performs steps 1-2: farthest-pair seeding plus promotion of
// every report that cannot be covered by an existing center. At grid
// scale the "is any center within rError" membership test runs against
// the index over already-promoted centers plus a linear tail of pending
// ones, re-indexing geometrically; the promote/skip decision per report
// is the exact brute predicate either way.
func (c *Clusterer) seedCenters(reports []Report, rError float64) []geo.Point {
	if len(reports) == 1 {
		c.seedPts = append(c.seedPts[:0], reports[0].Loc)
		return c.seedPts
	}
	ai, bi, maxD2 := farthestPair(reports)
	r2 := rError * rError
	if maxD2 <= r2 {
		// All reports are mutually within rError: a single cluster.
		c.seedPts = append(c.seedPts[:0], reportCentroid(reports))
		return c.seedPts
	}
	centers := append(c.seedPts[:0], reports[ai].Loc, reports[bi].Loc)
	if len(reports) < gridMinPoints {
		for _, r := range reports {
			if minDist2(r.Loc, centers) > r2 {
				centers = append(centers, r.Loc)
			}
		}
		c.seedPts = centers
		return centers
	}
	g := c.lazyGrid()
	built := len(centers)
	g.Rebuild(centers[:built], rError)
	for _, r := range reports {
		covered := g.AnyWithin2(r.Loc, rError)
		if !covered {
			for _, p := range centers[built:] {
				if r.Loc.Dist2(p) <= r2 {
					covered = true
					break
				}
			}
		}
		if covered {
			continue
		}
		centers = append(centers, r.Loc)
		if len(centers)-built >= 32+built/4 {
			built = len(centers)
			g.Rebuild(centers[:built], rError)
		}
	}
	c.seedPts = centers
	return centers
}

// farthestPair returns the indices of the two reports with the greatest
// pairwise distance and that squared distance — the lexicographically
// first such pair, as the paper's step 1 sort would list it. Small inputs
// scan all O(n²) pairs; past hullMinPoints the diameter is taken over the
// convex hull (the true farthest pair is always hull-to-hull).
func farthestPair(reports []Report) (ai, bi int, maxD2 float64) {
	if len(reports) >= hullMinPoints {
		return farthestPairHull(reports)
	}
	for i := range reports {
		for j := i + 1; j < len(reports); j++ {
			if d2 := reports[i].Loc.Dist2(reports[j].Loc); d2 > maxD2 {
				ai, bi, maxD2 = i, j, d2
			}
		}
	}
	return ai, bi, maxD2
}

// farthestPairHull computes the diameter pair via a monotone-chain convex
// hull: O(n log n) for the sort, O(h²) over the hull vertices — h is tiny
// for the uniform fields where n reaches this scale. Ties on the squared
// distance resolve to the lexicographically smallest index pair.
func farthestPairHull(reports []Report) (ai, bi int, maxD2 float64) {
	idx := make([]int, len(reports))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := reports[idx[a]].Loc, reports[idx[b]].Loc
		//lint:allow floateq total-order sort comparator; exact comparison is the point
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		//lint:allow floateq total-order sort comparator; exact comparison is the point
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return idx[a] < idx[b]
	})
	cross := func(o, a, b geo.Point) float64 {
		return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
	}
	var hull []int
	// Lower then upper chain; non-left turns (including collinear points)
	// pop, so only extreme vertices survive.
	for _, i := range idx {
		for len(hull) >= 2 &&
			cross(reports[hull[len(hull)-2]].Loc, reports[hull[len(hull)-1]].Loc, reports[i].Loc) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, i)
	}
	lower := len(hull) + 1
	for k := len(idx) - 2; k >= 0; k-- {
		i := idx[k]
		for len(hull) >= lower &&
			cross(reports[hull[len(hull)-2]].Loc, reports[hull[len(hull)-1]].Loc, reports[i].Loc) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, i)
	}
	hull = hull[:len(hull)-1] // last point repeats the first
	ai, bi, maxD2 = 0, 0, -1
	for x := 0; x < len(hull); x++ {
		for y := x + 1; y < len(hull); y++ {
			i, j := hull[x], hull[y]
			if i > j {
				i, j = j, i
			}
			d2 := reports[i].Loc.Dist2(reports[j].Loc)
			//lint:allow floateq deterministic tie-break toward the lexicographically smallest pair
			if d2 > maxD2 || (d2 == maxD2 && (i < ai || (i == ai && j < bi))) {
				ai, bi, maxD2 = i, j, d2
			}
		}
	}
	if maxD2 < 0 {
		return 0, 0, 0
	}
	return ai, bi, maxD2
}

// assign groups every report with its nearest center (step 4) and sets
// each cluster's center to the member centroid. Because reports arrive in
// ascending Node order, each member list is node-sorted by construction.
// scratch, when large enough, provides reusable member-list storage for
// rounds whose clusters do not outlive the refinement loop; pass nil when
// the result escapes. At grid scale the per-report argmin runs as a
// nearest query whose (distance², index) comparator is the brute loop's
// first-strict-min rule exactly.
func (c *Clusterer) assign(reports []Report, centers []geo.Point, scratch [][]Report) []EventCluster {
	var members [][]Report
	if cap(scratch) >= len(centers) {
		members = scratch[:len(centers)]
		for i := range members {
			members[i] = members[i][:0]
		}
	} else {
		members = make([][]Report, len(centers))
	}
	if len(centers) >= gridMinPoints {
		g := c.lazyGrid()
		g.Rebuild(centers, geo.AutoCell(centers))
		for _, r := range reports {
			best, _ := g.Nearest(r.Loc)
			members[best] = append(members[best], r)
		}
	} else {
		for _, r := range reports {
			best, bestD2 := 0, r.Loc.Dist2(centers[0])
			for ci := 1; ci < len(centers); ci++ {
				if d2 := r.Loc.Dist2(centers[ci]); d2 < bestD2 {
					best, bestD2 = ci, d2
				}
			}
			members[best] = append(members[best], r)
		}
	}
	clusters := make([]EventCluster, 0, len(centers))
	for _, m := range members {
		if len(m) == 0 {
			continue // a merged-away or out-competed center
		}
		clusters = append(clusters, EventCluster{Center: reportCentroid(m), Reports: m})
	}
	return clusters
}

// wc is a weighted center during step-5 merging.
type wc struct {
	p geo.Point
	w float64
}

// mergeCenters implements step 5: while any two centers lie within rError,
// replace them with their weighted average (weights = member counts). The
// historical loop restarts its lexicographic pair scan from the top after
// every merge; the grid path finds the same first qualifying pair via a
// range query per center, re-indexing after each merge.
func (c *Clusterer) mergeCenters(clusters []EventCluster, rError float64) []geo.Point {
	cs := c.wcs[:0]
	for _, cl := range clusters {
		cs = append(cs, wc{p: cl.Center, w: float64(len(cl.Reports))})
	}
	if len(cs) >= gridMinPoints {
		cs = c.mergeCentersGrid(cs, rError)
	} else {
		merged := true
		for merged {
			merged = false
		outer:
			for i := 0; i < len(cs); i++ {
				for j := i + 1; j < len(cs); j++ {
					if cs[i].p.Dist(cs[j].p) <= rError {
						cs = mergePair(cs, i, j)
						merged = true
						break outer
					}
				}
			}
		}
	}
	c.wcs = cs
	out := c.mergePts[:0]
	for _, w := range cs {
		out = append(out, w.p)
	}
	c.mergePts = out
	return out
}

// mergeCentersGrid is the grid-indexed pair search: for each center in
// ascending index order, the range query returns in-range partners in
// ascending index order, so the first partner with the larger index is
// the same pair the brute lexicographic scan finds. The query radius and
// the math.Hypot predicate match the brute comparison bit for bit.
func (c *Clusterer) mergeCentersGrid(cs []wc, rError float64) []wc {
	g := c.lazyGrid()
	for {
		pts := c.gridPts[:0]
		for _, w := range cs {
			pts = append(pts, w.p)
		}
		c.gridPts = pts
		g.Rebuild(pts, rError)
		merged := false
	scan:
		for i := 0; i < len(cs); i++ {
			c.rangeIDs = g.Range(pts[i], rError, c.rangeIDs)
			for _, j := range c.rangeIDs {
				if j <= i {
					continue
				}
				cs = mergePair(cs, i, j)
				merged = true
				break scan
			}
		}
		if !merged {
			return cs
		}
	}
}

// mergePair folds center j into center i (weighted average) and removes j.
func mergePair(cs []wc, i, j int) []wc {
	w := cs[i].w + cs[j].w
	avg, ok := geo.WeightedCentroid(
		[]geo.Point{cs[i].p, cs[j].p},
		[]float64{cs[i].w, cs[j].w})
	if !ok {
		avg = cs[i].p
		w = 1
	}
	cs[i] = wc{p: avg, w: w}
	return append(cs[:j], cs[j+1:]...)
}

// sigScratch detects convergence of the refinement loop by comparing
// cluster constituency between consecutive rounds. It replaces a
// string-based fingerprint that allocated on every round: the partition is
// flattened into reusable int buffers — clusters visited in order of their
// smallest member ID, each contributing its member IDs plus a -1
// separator — and two rounds converge when the flattened forms match.
// (Partitions are equal iff these canonical forms are equal.)
type sigScratch struct {
	idx       []int
	cur, prev []int
	seeded    bool
}

// reset forgets the previous run's partition so a reused Clusterer cannot
// see a stale fingerprint as first-round convergence.
func (s *sigScratch) reset() { s.seeded = false }

// converged folds in the current round's clusters and reports whether the
// constituency is unchanged from the previous round.
func (s *sigScratch) converged(clusters []EventCluster) bool {
	// Order clusters by smallest member; Reports are node-sorted, so that
	// is Reports[0]. Insertion sort: the cluster count is tiny and the
	// order is nearly stable across rounds.
	s.idx = s.idx[:0]
	for i := range clusters {
		s.idx = append(s.idx, i)
	}
	for i := 1; i < len(s.idx); i++ {
		for j := i; j > 0 && clusters[s.idx[j]].Reports[0].Node < clusters[s.idx[j-1]].Reports[0].Node; j-- {
			s.idx[j], s.idx[j-1] = s.idx[j-1], s.idx[j]
		}
	}
	s.cur = s.cur[:0]
	for _, ci := range s.idx {
		for _, r := range clusters[ci].Reports {
			s.cur = append(s.cur, r.Node)
		}
		s.cur = append(s.cur, -1)
	}
	same := s.seeded && len(s.cur) == len(s.prev)
	if same {
		for i, v := range s.cur {
			if s.prev[i] != v {
				same = false
				break
			}
		}
	}
	s.cur, s.prev = s.prev, s.cur
	s.seeded = true
	return same
}

// sortClusters orders clusters by descending size then by center for
// deterministic output.
func sortClusters(clusters []EventCluster) {
	sort.Slice(clusters, func(i, j int) bool {
		if len(clusters[i].Reports) != len(clusters[j].Reports) {
			return len(clusters[i].Reports) > len(clusters[j].Reports)
		}
		ci, cj := clusters[i].Center, clusters[j].Center
		//lint:allow floateq total-order tie-break comparator; exact comparison is the point
		if ci.X != cj.X {
			return ci.X < cj.X
		}
		return ci.Y < cj.Y
	})
}

// reportCentroid is geo.Centroid over the report locations without
// materializing an intermediate point slice; the summation order is the
// same, so the result is bit-identical.
func reportCentroid(reports []Report) geo.Point {
	var sx, sy float64
	for _, r := range reports {
		sx += r.Loc.X
		sy += r.Loc.Y
	}
	n := float64(len(reports))
	return geo.Point{X: sx / n, Y: sy / n}
}

func minDist2(p geo.Point, centers []geo.Point) float64 {
	best := p.Dist2(centers[0])
	for _, c := range centers[1:] {
		if d2 := p.Dist2(c); d2 < best {
			best = d2
		}
	}
	return best
}
