package cluster

import (
	"fmt"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/sim"
)

// Circle is the symbolic circle of radius rError the cluster head draws
// around the first report of a suspected event (paper §3.3). Reports that
// land inside the circle join it; its timer expires T_out after the
// anchoring report arrived.
type Circle struct {
	Center   geo.Point // location of the anchoring (first) report
	Deadline sim.Time  // anchor arrival time + T_out
	Reports  []Report
}

// String summarizes the circle for traces.
func (c *Circle) String() string {
	return fmt.Sprintf("center=%v deadline=%v n=%d", c.Center, c.Deadline, len(c.Reports))
}

// CircleSet tracks the open circles for the concurrent-event protocol. The
// aggregation rule from §3.3:
//
//  1. The first report anchors a circle of radius rError with its own
//     T_out timer; later reports within rError of the anchor join it.
//  2. A report outside every open circle anchors a new circle with its own
//     timer.
//  3. When a circle's timer expires, its reports are clustered — unless it
//     overlaps other circles, in which case the cluster head waits for all
//     timers in the overlapping group and clusters the union.
//
// Overlap is transitive for the purpose of rule 3, so readiness is decided
// per connected component of the overlap graph.
type CircleSet struct {
	rError float64
	tout   sim.Duration
	open   []*Circle
}

// NewCircleSet returns an empty circle tracker.
func NewCircleSet(rError float64, tout sim.Duration) *CircleSet {
	if rError <= 0 {
		panic(fmt.Sprintf("cluster: rError must be positive, got %v", rError))
	}
	return &CircleSet{rError: rError, tout: tout}
}

// Open returns the number of circles currently open.
func (s *CircleSet) Open() int { return len(s.open) }

// Add routes a report arriving at time now into an existing circle or a
// new one. It returns the circle the report joined and whether the circle
// is new (its deadline timer still needs scheduling).
func (s *CircleSet) Add(r Report, now sim.Time) (c *Circle, isNew bool) {
	for _, c := range s.open {
		if c.Center.Within(r.Loc, s.rError) {
			c.Reports = append(c.Reports, r)
			return c, false
		}
	}
	c = &Circle{Center: r.Loc, Deadline: now.Add(s.tout), Reports: []Report{r}}
	s.open = append(s.open, c)
	return c, true
}

// Collect removes and returns every connected overlap component in which
// all circle deadlines have passed by now. Each returned group is the
// union of the component's reports, ready for the §3.2 clustering pass.
// Components still waiting on a timer are left open.
func (s *CircleSet) Collect(now sim.Time) [][]Report {
	if len(s.open) == 0 {
		return nil
	}
	comps := s.components()
	var groups [][]Report
	taken := make(map[*Circle]bool)
	for _, comp := range comps {
		ready := true
		for _, c := range comp {
			if c.Deadline > now {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		var union []Report
		for _, c := range comp {
			union = append(union, c.Reports...)
			taken[c] = true
		}
		groups = append(groups, union)
	}
	if len(taken) > 0 {
		kept := s.open[:0]
		for _, c := range s.open {
			if !taken[c] {
				kept = append(kept, c)
			}
		}
		s.open = kept
	}
	return groups
}

// NextDeadline returns the earliest deadline among open circles, or ok =
// false when none are open. The aggregator uses it to schedule its next
// collection timer.
func (s *CircleSet) NextDeadline() (t sim.Time, ok bool) {
	if len(s.open) == 0 {
		return 0, false
	}
	t = s.open[0].Deadline
	for _, c := range s.open[1:] {
		if c.Deadline < t {
			t = c.Deadline
		}
	}
	return t, true
}

// components partitions open circles into connected components of the
// overlap graph. Two circles of radius rError overlap when their centers
// are within 2·rError.
func (s *CircleSet) components() [][]*Circle {
	n := len(s.open)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	touch := 2 * s.rError
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s.open[i].Center.Dist(s.open[j].Center) <= touch {
				union(i, j)
			}
		}
	}
	groups := make(map[int][]*Circle)
	for i, c := range s.open {
		r := find(i)
		groups[r] = append(groups[r], c)
	}
	out := make([][]*Circle, 0, len(groups))
	for i := 0; i < n; i++ {
		if find(i) == i {
			out = append(out, groups[i])
		}
	}
	return out
}
