package cluster

import (
	"testing"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/sim"
)

const tout = sim.Duration(1)

func TestCircleSetPanicsOnBadRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for rError <= 0")
		}
	}()
	NewCircleSet(0, tout)
}

func TestFirstReportAnchorsCircle(t *testing.T) {
	s := NewCircleSet(rError, tout)
	c, isNew := s.Add(Report{Node: 1, Loc: geo.Point{X: 10, Y: 10}}, 0)
	if !isNew {
		t.Fatal("first report did not create a circle")
	}
	if c.Center != (geo.Point{X: 10, Y: 10}) {
		t.Fatalf("center = %v", c.Center)
	}
	if c.Deadline != sim.Time(tout) {
		t.Fatalf("deadline = %v, want %v", c.Deadline, tout)
	}
	if s.Open() != 1 {
		t.Fatalf("Open() = %d", s.Open())
	}
}

func TestNearbyReportJoinsCircle(t *testing.T) {
	s := NewCircleSet(rError, tout)
	first, _ := s.Add(Report{Node: 1, Loc: geo.Point{X: 10, Y: 10}}, 0)
	second, isNew := s.Add(Report{Node: 2, Loc: geo.Point{X: 12, Y: 11}}, 0.5)
	if isNew || second != first {
		t.Fatal("report within rError did not join the anchor circle")
	}
	if len(first.Reports) != 2 {
		t.Fatalf("circle has %d reports, want 2", len(first.Reports))
	}
	// Joining must not extend the anchor's deadline (§3.3: the timer
	// belongs to the anchoring report).
	if first.Deadline != sim.Time(tout) {
		t.Fatalf("deadline moved to %v", first.Deadline)
	}
}

func TestDistantReportAnchorsNewCircle(t *testing.T) {
	s := NewCircleSet(rError, tout)
	_, _ = s.Add(Report{Node: 1, Loc: geo.Point{X: 10, Y: 10}}, 0)
	c2, isNew := s.Add(Report{Node: 2, Loc: geo.Point{X: 40, Y: 40}}, 0.25)
	if !isNew {
		t.Fatal("distant report joined the wrong circle")
	}
	if c2.Deadline != sim.Time(0.25)+sim.Time(tout) {
		t.Fatalf("second circle deadline = %v", c2.Deadline)
	}
	if s.Open() != 2 {
		t.Fatalf("Open() = %d", s.Open())
	}
}

func TestCollectSingleCircle(t *testing.T) {
	s := NewCircleSet(rError, tout)
	_, _ = s.Add(Report{Node: 1, Loc: geo.Point{X: 10, Y: 10}}, 0)
	if groups := s.Collect(0.5); groups != nil {
		t.Fatalf("collected before deadline: %v", groups)
	}
	groups := s.Collect(1)
	if len(groups) != 1 || len(groups[0]) != 1 {
		t.Fatalf("Collect = %v", groups)
	}
	if s.Open() != 0 {
		t.Fatalf("Open() after collect = %d", s.Open())
	}
}

func TestCollectWaitsForOverlappingCircles(t *testing.T) {
	// §3.3 rule 4: overlapping circles are clustered together, after all
	// their timers have expired.
	s := NewCircleSet(rError, tout)
	_, _ = s.Add(Report{Node: 1, Loc: geo.Point{X: 10, Y: 10}}, 0)
	// 8 < 2·rError away: overlapping, anchored later.
	_, _ = s.Add(Report{Node: 2, Loc: geo.Point{X: 18, Y: 10}}, 0.8)

	if groups := s.Collect(1); groups != nil {
		t.Fatalf("collected overlapping component before all deadlines: %v", groups)
	}
	groups := s.Collect(1.8)
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1 merged", len(groups))
	}
	if len(groups[0]) != 2 {
		t.Fatalf("merged group has %d reports, want 2", len(groups[0]))
	}
}

func TestCollectIndependentComponentsSeparately(t *testing.T) {
	s := NewCircleSet(rError, tout)
	_, _ = s.Add(Report{Node: 1, Loc: geo.Point{X: 0, Y: 0}}, 0)
	_, _ = s.Add(Report{Node: 2, Loc: geo.Point{X: 50, Y: 0}}, 0.5)
	groups := s.Collect(1)
	if len(groups) != 1 {
		t.Fatalf("got %d groups at t=1, want 1", len(groups))
	}
	if groups[0][0].Node != 1 {
		t.Fatalf("wrong circle collected first: %v", groups)
	}
	if s.Open() != 1 {
		t.Fatalf("Open() = %d, want the later circle still open", s.Open())
	}
	groups = s.Collect(1.5)
	if len(groups) != 1 || groups[0][0].Node != 2 {
		t.Fatalf("second collect = %v", groups)
	}
}

func TestOverlapIsTransitive(t *testing.T) {
	// Circles A-B overlap and B-C overlap but A-C do not; all three must
	// form one component.
	s := NewCircleSet(rError, tout)
	_, _ = s.Add(Report{Node: 1, Loc: geo.Point{X: 0, Y: 0}}, 0)
	_, _ = s.Add(Report{Node: 2, Loc: geo.Point{X: 9, Y: 0}}, 0.1)
	_, _ = s.Add(Report{Node: 3, Loc: geo.Point{X: 18, Y: 0}}, 0.2)
	groups := s.Collect(1.2)
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("transitive overlap not merged: %v", groups)
	}
}

func TestNextDeadline(t *testing.T) {
	s := NewCircleSet(rError, tout)
	if _, ok := s.NextDeadline(); ok {
		t.Fatal("empty set reported a deadline")
	}
	_, _ = s.Add(Report{Node: 1, Loc: geo.Point{X: 0, Y: 0}}, 2)
	_, _ = s.Add(Report{Node: 2, Loc: geo.Point{X: 50, Y: 0}}, 1)
	d, ok := s.NextDeadline()
	if !ok || d != sim.Time(1)+sim.Time(tout) {
		t.Fatalf("NextDeadline = %v, %t", d, ok)
	}
}
