package cluster

import (
	"fmt"
	"testing"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
)

// BenchmarkClusterScaling measures the §3.2 heuristic over report counts
// spanning one neighborhood (12) to a whole dense field (200), with a
// quarter of the reports scattered as outliers.
func BenchmarkClusterScaling(b *testing.B) {
	for _, n := range []int{12, 50, 200} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := rng.New(1)
			reports := make([]Report, n)
			for i := range reports {
				loc := geo.Point{X: 50 + src.Gaussian(0, 2), Y: 50 + src.Gaussian(0, 2)}
				if i%4 == 0 {
					loc = geo.Point{X: src.Uniform(0, 100), Y: src.Uniform(0, 100)}
				}
				reports[i] = Report{Node: i, Loc: loc}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := Cluster(reports, 5); len(got) == 0 {
					b.Fatal("no clusters")
				}
			}
		})
	}
}

// BenchmarkCircleSet measures the concurrent-event bookkeeping under a
// steady report stream.
func BenchmarkCircleSet(b *testing.B) {
	src := rng.New(2)
	locs := make([]geo.Point, 256)
	for i := range locs {
		locs[i] = geo.Point{X: src.Uniform(0, 100), Y: src.Uniform(0, 100)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewCircleSet(5, 1)
		now := 0.0
		for j := 0; j < 64; j++ {
			now += 0.1
			s.Add(Report{Node: j, Loc: locs[j%len(locs)]}, simTime(now))
			s.Collect(simTime(now))
		}
		s.Collect(simTime(now + 10))
	}
}
