package cluster

import (
	"reflect"
	"sort"
	"testing"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
)

// bruteCluster is the pre-grid reference implementation of the §3.2
// heuristic — the exact historical code path, kept here so the
// grid-routed Clusterer can be pinned byte-identical to it at scales
// above gridMinPoints (below it, Clusterer runs these loops itself).
func bruteCluster(reports []Report, rError float64) []EventCluster {
	if len(reports) == 0 {
		return nil
	}
	sorted := make([]Report, len(reports))
	copy(sorted, reports)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })
	reports = sorted
	centers := bruteSeed(reports, rError)
	var clusters []EventCluster
	var sig sigScratch
	scratch := make([][]Report, len(centers))
	for round := 0; round < maxRounds; round++ {
		clusters = bruteAssign(reports, centers, scratch)
		centers = bruteMerge(clusters, rError)
		if sig.converged(clusters) && len(centers) == len(clusters) {
			break
		}
	}
	clusters = bruteAssign(reports, centers, nil)
	for i := range clusters {
		clusters[i].Center = reportCentroid(clusters[i].Reports)
	}
	sortClusters(clusters)
	return clusters
}

func bruteSeed(reports []Report, rError float64) []geo.Point {
	if len(reports) == 1 {
		return []geo.Point{reports[0].Loc}
	}
	ai, bi, maxD2 := bruteFarthest(reports)
	if maxD2 <= rError*rError {
		return []geo.Point{reportCentroid(reports)}
	}
	centers := []geo.Point{reports[ai].Loc, reports[bi].Loc}
	for _, r := range reports {
		if minDist2(r.Loc, centers) > rError*rError {
			centers = append(centers, r.Loc)
		}
	}
	return centers
}

func bruteFarthest(reports []Report) (ai, bi int, maxD2 float64) {
	for i := range reports {
		for j := i + 1; j < len(reports); j++ {
			if d2 := reports[i].Loc.Dist2(reports[j].Loc); d2 > maxD2 {
				ai, bi, maxD2 = i, j, d2
			}
		}
	}
	return ai, bi, maxD2
}

func bruteAssign(reports []Report, centers []geo.Point, scratch [][]Report) []EventCluster {
	var members [][]Report
	if cap(scratch) >= len(centers) {
		members = scratch[:len(centers)]
		for i := range members {
			members[i] = members[i][:0]
		}
	} else {
		members = make([][]Report, len(centers))
	}
	for _, r := range reports {
		best, bestD2 := 0, r.Loc.Dist2(centers[0])
		for ci := 1; ci < len(centers); ci++ {
			if d2 := r.Loc.Dist2(centers[ci]); d2 < bestD2 {
				best, bestD2 = ci, d2
			}
		}
		members[best] = append(members[best], r)
	}
	clusters := make([]EventCluster, 0, len(centers))
	for _, m := range members {
		if len(m) == 0 {
			continue
		}
		clusters = append(clusters, EventCluster{Center: reportCentroid(m), Reports: m})
	}
	return clusters
}

func bruteMerge(clusters []EventCluster, rError float64) []geo.Point {
	cs := make([]wc, len(clusters))
	for i, c := range clusters {
		cs[i] = wc{p: c.Center, w: float64(len(c.Reports))}
	}
	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				if cs[i].p.Dist(cs[j].p) <= rError {
					cs = mergePair(cs, i, j)
					merged = true
					break outer
				}
			}
		}
	}
	out := make([]geo.Point, len(cs))
	for i, c := range cs {
		out[i] = c.p
	}
	return out
}

// blobField scatters count reports around nblobs event sites plus a
// sprinkle of uniform stragglers — dense enough that seeding promotes
// many centers and merging actually fires at grid scale.
func blobField(src *rng.Source, count, nblobs int, area, spread float64) []Report {
	sites := make([]geo.Point, nblobs)
	for i := range sites {
		sites[i] = geo.Point{X: src.Uniform(0, area), Y: src.Uniform(0, area)}
	}
	out := make([]Report, count)
	for i := range out {
		var p geo.Point
		if src.Bernoulli(0.9) {
			s := sites[src.Intn(nblobs)]
			p = geo.Point{X: s.X + src.Gaussian(0, spread), Y: s.Y + src.Gaussian(0, spread)}
		} else {
			p = geo.Point{X: src.Uniform(0, area), Y: src.Uniform(0, area)}
		}
		out[i] = Report{Node: i, Loc: p}
	}
	return out
}

// TestClustererMatchesBruteAtScale pins the grid-routed paths (seeding
// promotion, nearest-center assignment, pair merging) byte-identical to
// the historical brute implementation above gridMinPoints.
func TestClustererMatchesBruteAtScale(t *testing.T) {
	src := rng.New(99)
	cl := NewClusterer()
	for _, tc := range []struct {
		count, nblobs int
		area, spread  float64
		rError        float64
	}{
		{count: 60, nblobs: 4, area: 200, spread: 2, rError: 5},
		{count: 300, nblobs: 12, area: 400, spread: 3, rError: 8},
		{count: 1000, nblobs: 40, area: 1000, spread: 2, rError: 6},
		{count: 500, nblobs: 3, area: 50, spread: 4, rError: 5}, // heavy merging
	} {
		reports := blobField(src.Split("case"), tc.count, tc.nblobs, tc.area, tc.spread)
		got := cl.Cluster(reports, tc.rError)
		want := bruteCluster(reports, tc.rError)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("count=%d nblobs=%d: grid-routed clusters diverge from brute (%d vs %d clusters)",
				tc.count, tc.nblobs, len(got), len(want))
		}
	}
}

// TestClustererReuseMatchesFresh pins the scratch-reuse behaviour: a
// Clusterer that has already processed other inputs must produce exactly
// what a fresh one does.
func TestClustererReuseMatchesFresh(t *testing.T) {
	src := rng.New(5)
	a := blobField(src.Split("a"), 200, 8, 300, 2)
	b := blobField(src.Split("b"), 30, 2, 60, 3)
	reused := NewClusterer()
	reused.Cluster(a, 7)
	got := reused.Cluster(b, 4)
	want := Cluster(b, 4)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("reused Clusterer diverges from a fresh one")
	}
	gotA := reused.Cluster(a, 7)
	if !reflect.DeepEqual(gotA, Cluster(a, 7)) {
		t.Fatal("reused Clusterer diverges on second pass over the same input")
	}
}

// TestFarthestPairHullMatchesBrute checks the hull diameter path against
// the O(n²) scan just below its activation threshold would be too slow;
// instead both are run on a shared mid-size field.
func TestFarthestPairHullMatchesBrute(t *testing.T) {
	src := rng.New(21)
	for _, n := range []int{5, 64, 500} {
		reports := blobField(src.Split("f"), n, 6, 500, 4)
		hai, hbi, hd2 := farthestPairHull(reports)
		bai, bbi, bd2 := bruteFarthest(reports)
		if hd2 != bd2 {
			t.Fatalf("n=%d: hull d2 %v != brute %v", n, hd2, bd2)
		}
		if hai != bai || hbi != bbi {
			// Equal-distance pairs may differ only if the distances tie.
			if reports[hai].Loc.Dist2(reports[hbi].Loc) != bd2 {
				t.Fatalf("n=%d: hull pair (%d,%d) != brute (%d,%d)", n, hai, hbi, bai, bbi)
			}
		}
	}
}
