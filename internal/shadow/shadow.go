// Package shadow implements §3.4's defense against unreliable cluster
// heads. Two shadow cluster heads (SCHs) — the most trusted nodes within
// one hop of the CH — overhear all traffic in and out of the CH and
// replicate its entire computation, short of transmitting results. When
// the CH broadcasts a conclusion that differs from an SCH's own, the SCHs
// escalate their results to the base station, which majority-votes the
// three conclusions, adopts the winner, penalizes the outvoted CH's trust,
// and triggers re-election. The scheme masks a single faulty CH.
package shadow

import (
	"fmt"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/decision"
)

// Corruptor decides whether the primary CH corrupts a given decision; the
// simulation injects fault behaviour through it. A nil Corruptor means the
// primary is honest.
type Corruptor func(round int, honest core.BinaryDecision) (core.BinaryDecision, bool)

// FlipCorruptor returns a Corruptor that inverts the occurrence bit with
// probability p using coin, modelling an arbitrarily faulty CH that lies
// about its conclusion.
func FlipCorruptor(p float64, coin func(p float64) bool) Corruptor {
	return func(_ int, honest core.BinaryDecision) (core.BinaryDecision, bool) {
		if !coin(p) {
			return honest, false
		}
		corrupted := honest
		corrupted.Occurred = !corrupted.Occurred
		return corrupted, true
	}
}

// Report is the outcome of one replicated decision round.
type Report struct {
	// Final is the decision the base station accepted.
	Final core.BinaryDecision
	// Disagreed says the SCHs contradicted the CH's broadcast and the
	// base station had to vote.
	Disagreed bool
	// Demoted says the round ended the primary's term (the base station
	// prompts re-election after an exposed corruption).
	Demoted bool
}

// Panel is the replicated decision pipeline: the primary CH plus two
// shadow replicas, all holding identical trust state, plus the base
// station's vote. Only binary conclusions are compared — the same
// mechanism guards location decisions in the paper, and the simulation's
// location experiments exercise it through the binary vote each candidate
// cluster reduces to. The replicas run any registered decision scheme;
// NewPanel builds the paper's configuration (three TIBFIT trust tables).
type Panel struct {
	replicas      []decision.Scheme // index 0 is the primary's scheme
	corrupt       Corruptor
	shadowCorrupt [2]Corruptor // optional liars among the shadows
	station       StationPenalty

	rounds       int
	disagreement int
	demotions    int
	primaryNode  int // node ID serving as primary, for the penalty hook
}

// StationPenalty lets the panel report an exposed CH to the base station
// (which reduces that node's persisted trust). Optional.
type StationPenalty func(primaryNode int)

// NewPanel returns a panel of one primary and two shadow replicas running
// the canonical TIBFIT scheme with fresh trust state under params.
func NewPanel(params core.Params, primaryNode int, corrupt Corruptor, penalty StationPenalty) (*Panel, error) {
	return NewPanelScheme(decision.SchemeTIBFIT, decision.Params{Trust: params},
		primaryNode, corrupt, penalty)
}

// NewPanelScheme returns a panel whose three replicas each run a fresh
// instance of the named registered scheme.
func NewPanelScheme(scheme string, params decision.Params, primaryNode int,
	corrupt Corruptor, penalty StationPenalty) (*Panel, error) {
	replicas := make([]decision.Scheme, 3)
	for i := range replicas {
		s, err := decision.New(scheme, params)
		if err != nil {
			return nil, err
		}
		replicas[i] = s
	}
	return &Panel{
		replicas:    replicas,
		corrupt:     corrupt,
		station:     penalty,
		primaryNode: primaryNode,
	}, nil
}

// Restore loads the same persisted trust snapshot into every replica, as
// happens when a new CH (and its shadows) fetch state from the base
// station. Stateless schemes have nothing to restore.
func (p *Panel) Restore(snap map[int]core.Record) {
	for _, r := range p.replicas {
		if s, ok := r.(decision.Stateful); ok {
			s.Restore(snap)
		}
	}
}

// Snapshot exports the authoritative (shadow-verified) trust state, or nil
// for stateless schemes.
func (p *Panel) Snapshot() map[int]core.Record {
	if s, ok := p.replicas[1].(decision.Stateful); ok {
		return s.Snapshot()
	}
	return nil
}

// Stats returns the number of rounds, disagreements, and demotions so far.
func (p *Panel) Stats() (rounds, disagreements, demotions int) {
	return p.rounds, p.disagreement, p.demotions
}

// Primary exposes the primary's decision scheme (shared with the
// aggregator that drives the cluster in a live simulation).
func (p *Panel) Primary() decision.Scheme { return p.replicas[0] }

// SetPrimaryNode records which node currently serves as primary, so that a
// demotion penalizes the right identity.
func (p *Panel) SetPrimaryNode(nodeID int) { p.primaryNode = nodeID }

// SetShadowCorruptor installs a liar among the shadows: idx 0 or 1
// selects the first or second SCH, whose *escalated* conclusion the
// corruptor may tamper with. The 2-of-3 vote masks a single lying
// shadow exactly as it masks a lying primary — but without a demotion,
// since the primary's broadcast matches the majority.
func (p *Panel) SetShadowCorruptor(idx int, c Corruptor) {
	p.shadowCorrupt[idx] = c
}

// Decide runs one replicated binary decision. All three replicas evaluate
// the identical overheard inputs; the primary's (possibly corrupted)
// conclusion is broadcast; the shadows compare and escalate. The returned
// report carries the base station's final decision, which is also the
// decision applied to every replica's trust state — state divergence would
// otherwise compound a single CH fault into lasting damage.
func (p *Panel) Decide(reporters, silent []int) Report {
	p.rounds++
	honest := p.replicas[0].Arbitrate(reporters, silent)
	broadcast := honest
	corrupted := false
	if p.corrupt != nil {
		broadcast, corrupted = p.corrupt(p.rounds, honest)
	}

	// Shadows replicate the computation on identical inputs and state —
	// their honest conclusions equal the primary's honest one — but a
	// compromised shadow may lie in its escalation.
	shadow1 := p.replicas[1].Arbitrate(reporters, silent)
	shadow2 := p.replicas[2].Arbitrate(reporters, silent)
	if c := p.shadowCorrupt[0]; c != nil {
		shadow1, _ = c(p.rounds, shadow1)
	}
	if c := p.shadowCorrupt[1]; c != nil {
		shadow2, _ = c(p.rounds, shadow2)
	}

	rep := Report{Final: broadcast}
	if shadow1.Occurred != broadcast.Occurred || shadow2.Occurred != broadcast.Occurred {
		// SCHs send their own computations to the base station, which
		// takes the majority of the three conclusions. The final decision
		// is based on the honest replicated computation (identical across
		// honest replicas), with the occurrence bit set by the vote —
		// never on a single escalation, which could itself be the lie.
		rep.Disagreed = true
		p.disagreement++
		votes := 0
		for _, d := range []core.BinaryDecision{broadcast, shadow1, shadow2} {
			if d.Occurred {
				votes++
			}
		}
		rep.Final = honest
		rep.Final.Occurred = votes >= 2
		if rep.Final.Occurred != broadcast.Occurred || corrupted {
			rep.Demoted = true
			p.demotions++
			if p.station != nil {
				p.station(p.primaryNode)
			}
		}
	}

	for _, r := range p.replicas {
		core.Apply(r, rep.Final)
	}
	return rep
}

// DecideAndSettle adapts the panel to the aggregator's BinaryDecider
// hook: the replicated decision runs, trust settles on the base station's
// final outcome in every replica, and that outcome is announced.
func (p *Panel) DecideAndSettle(reporters, silent []int) core.BinaryDecision {
	return p.Decide(reporters, silent).Final
}

// String summarizes panel statistics.
func (p *Panel) String() string {
	return fmt.Sprintf("rounds=%d disagreements=%d demotions=%d",
		p.rounds, p.disagreement, p.demotions)
}
