package shadow

import (
	"strings"
	"testing"

	"github.com/tibfit/tibfit/internal/core"
	"github.com/tibfit/tibfit/internal/rng"
)

func params() core.Params {
	return core.Params{Lambda: 0.25, FaultRate: 0.1}
}

func TestNewPanelRejectsBadParams(t *testing.T) {
	if _, err := NewPanel(core.Params{}, 0, nil, nil); err == nil {
		t.Fatal("accepted invalid params")
	}
}

func TestHonestPanelNeverDisagrees(t *testing.T) {
	p, err := NewPanel(params(), 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		rep := p.Decide([]int{1, 2, 3}, []int{4, 5})
		if rep.Disagreed || rep.Demoted {
			t.Fatalf("round %d: honest CH flagged: %+v", i, rep)
		}
		if !rep.Final.Occurred {
			t.Fatalf("round %d: majority reporters lost", i)
		}
	}
	rounds, dis, dem := p.Stats()
	if rounds != 50 || dis != 0 || dem != 0 {
		t.Fatalf("stats = %d %d %d", rounds, dis, dem)
	}
}

func TestCorruptPrimaryIsExposedAndOutvoted(t *testing.T) {
	demoted := []int{}
	corrupt := FlipCorruptor(1, func(float64) bool { return true }) // always lie
	p, err := NewPanel(params(), 42, corrupt, func(id int) { demoted = append(demoted, id) })
	if err != nil {
		t.Fatal(err)
	}
	rep := p.Decide([]int{1, 2, 3}, []int{4})
	if !rep.Disagreed {
		t.Fatal("corruption not detected")
	}
	if !rep.Demoted {
		t.Fatal("corrupt primary not demoted")
	}
	// The base station's majority (the two shadows) must prevail: 3
	// reporters vs 1 silent → event occurred, despite the primary's flip.
	if !rep.Final.Occurred {
		t.Fatalf("final decision followed the corrupt primary: %+v", rep)
	}
	if len(demoted) != 1 || demoted[0] != 42 {
		t.Fatalf("penalty hook calls = %v", demoted)
	}
}

func TestLyingShadowIsOutvoted(t *testing.T) {
	// Satellite pin of the 2-of-3 semantics when a *shadow*, not the
	// primary, is the liar: the escalation fires (Disagreed), the
	// majority of honest primary + honest shadow prevails, and the
	// primary — whose broadcast matched the majority — is not demoted.
	for idx := 0; idx < 2; idx++ {
		demoted := []int{}
		p, err := NewPanel(params(), 42, nil, func(id int) { demoted = append(demoted, id) })
		if err != nil {
			t.Fatal(err)
		}
		p.SetShadowCorruptor(idx, FlipCorruptor(1, func(float64) bool { return true }))
		rep := p.Decide([]int{1, 2, 3}, []int{4})
		if !rep.Disagreed {
			t.Fatalf("shadow %d: lying escalation not flagged", idx)
		}
		if rep.Demoted {
			t.Fatalf("shadow %d: honest primary demoted", idx)
		}
		if !rep.Final.Occurred {
			t.Fatalf("shadow %d: final decision followed the lying shadow: %+v", idx, rep)
		}
		if len(demoted) != 0 {
			t.Fatalf("shadow %d: penalty hook fired for honest primary: %v", idx, demoted)
		}
	}
}

func TestLyingShadowDoesNotPoisonTrustState(t *testing.T) {
	// The masked lying shadow must leave the settled trust state equal
	// to an all-honest panel's: the final decision is based on the
	// honest replicated computation, not the tampered escalation.
	liar, _ := NewPanel(params(), 0, nil, nil)
	liar.SetShadowCorruptor(1, FlipCorruptor(1, func(float64) bool { return true }))
	honest, _ := NewPanel(params(), 0, nil, nil)
	for i := 0; i < 20; i++ {
		liar.Decide([]int{1, 2, 3}, []int{4})
		honest.Decide([]int{1, 2, 3}, []int{4})
	}
	a := liar.Snapshot()
	b := honest.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(a), len(b))
	}
	for id, rec := range b {
		if a[id] != rec {
			t.Fatalf("node %d state diverged: %+v vs %+v", id, a[id], rec)
		}
	}
}

func TestCorruptionDoesNotPoisonTrustState(t *testing.T) {
	// The single-CH-failure masking property (§3.4): trust state after a
	// masked corruption equals the state of an all-honest panel.
	corrupt := FlipCorruptor(1, func(float64) bool { return true })
	corruptPanel, _ := NewPanel(params(), 0, corrupt, nil)
	honestPanel, _ := NewPanel(params(), 0, nil, nil)
	for i := 0; i < 20; i++ {
		corruptPanel.Decide([]int{1, 2, 3}, []int{4})
		honestPanel.Decide([]int{1, 2, 3}, []int{4})
	}
	a := corruptPanel.Snapshot()
	b := honestPanel.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(a), len(b))
	}
	for id, rec := range b {
		if a[id] != rec {
			t.Fatalf("node %d state diverged: %+v vs %+v", id, a[id], rec)
		}
	}
}

func TestProbabilisticCorruptor(t *testing.T) {
	src := rng.New(9)
	corrupt := FlipCorruptor(0.3, src.Bernoulli)
	p, _ := NewPanel(params(), 0, corrupt, nil)
	for i := 0; i < 500; i++ {
		p.Decide([]int{1, 2}, []int{3})
	}
	_, dis, _ := p.Stats()
	if dis < 100 || dis > 200 {
		t.Fatalf("disagreements = %d over 500 rounds at p=0.3", dis)
	}
}

func TestRestoreLoadsAllReplicas(t *testing.T) {
	seed := core.MustNewTable(params())
	for i := 0; i < 8; i++ {
		seed.Judge(7, false)
	}
	snap := seed.Snapshot()

	p, _ := NewPanel(params(), 0, nil, nil)
	p.Restore(snap)
	// A vote involving node 7 must reflect the restored distrust in both
	// primary and shadows: 2 fresh reporters beat distrusted node 7 + 1.
	rep := p.Decide([]int{1, 2}, []int{7, 3})
	if !rep.Final.Occurred {
		t.Fatalf("restored trust not applied: %+v", rep.Final)
	}
	if rep.Disagreed {
		t.Fatal("replicas disagreed after identical restore")
	}
	if p.Primary().TI(7) >= 0.5 {
		t.Fatal("primary table missing restored state")
	}
}

func TestSetPrimaryNodeRoutesPenalty(t *testing.T) {
	var got []int
	corrupt := FlipCorruptor(1, func(float64) bool { return true })
	p, _ := NewPanel(params(), 1, corrupt, func(id int) { got = append(got, id) })
	p.Decide([]int{1, 2}, []int{3})
	p.SetPrimaryNode(9)
	p.Decide([]int{1, 2}, []int{3})
	if len(got) != 2 || got[0] != 1 || got[1] != 9 {
		t.Fatalf("penalties = %v", got)
	}
}

func TestPanelString(t *testing.T) {
	p, _ := NewPanel(params(), 0, nil, nil)
	p.Decide([]int{1}, nil)
	if s := p.String(); !strings.Contains(s, "rounds=1") {
		t.Fatalf("String = %q", s)
	}
}
