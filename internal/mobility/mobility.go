// Package mobility implements position-over-time models for mobile
// networks and mobile targets.
//
// The paper's system model allows motion explicitly: "The network could
// be stationary or mobile, as long as it is possible for the CH to
// estimate the positions of its cluster nodes during decision making"
// (§2), and the location-determination extension is motivated by "a
// network ... attempting to track a mobile sensor node that is
// transmitting a signal as it moves throughout the network" (§3.2). This
// package provides the trajectory models (static, linear with wall
// bounce, random waypoint) and the time-indexed Positions view the
// cluster head uses when nodes move.
package mobility

import (
	"fmt"
	"math"
	"sort"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
)

// Model yields a position for any virtual time. Implementations must be
// deterministic: the same model queried at the same time always returns
// the same position (the simulator may query out of order).
type Model interface {
	At(t float64) geo.Point
}

// Static is a model that never moves.
type Static geo.Point

// At implements Model.
func (s Static) At(float64) geo.Point { return geo.Point(s) }

// Linear moves at a constant velocity from a start point, reflecting off
// the walls of a bounding area so trajectories stay in-field forever.
type Linear struct {
	Start geo.Point
	// Vel is the velocity in units per virtual time unit.
	Vel  geo.Point
	Area geo.Rect
}

// At implements Model by folding the unbounded linear position back into
// the area with mirror reflections.
func (l Linear) At(t float64) geo.Point {
	return geo.Point{
		X: reflect(l.Start.X+l.Vel.X*t, l.Area.Min.X, l.Area.Max.X),
		Y: reflect(l.Start.Y+l.Vel.Y*t, l.Area.Min.Y, l.Area.Max.Y),
	}
}

// reflect maps an unbounded coordinate into [lo, hi] as if the particle
// bounced elastically off the walls.
func reflect(x, lo, hi float64) float64 {
	w := hi - lo
	if w <= 0 {
		return lo
	}
	// Position within a double-width period [0, 2w): first half moves
	// forward, second half moves back.
	p := math.Mod(x-lo, 2*w)
	if p < 0 {
		p += 2 * w
	}
	if p > w {
		p = 2*w - p
	}
	return lo + p
}

// Waypoint is the random-waypoint model: pick a uniform destination and a
// speed, travel in a straight line, repeat. Legs are generated lazily and
// cached so queries at any time are deterministic.
type Waypoint struct {
	area     geo.Rect
	minSpeed float64
	maxSpeed float64
	src      *rng.Source

	legs []leg // legs[i].from departs at legs[i].start
}

type leg struct {
	start float64 // departure time
	end   float64 // arrival time
	from  geo.Point
	to    geo.Point
}

// NewWaypoint returns a random-waypoint model starting at start at time
// zero. Speeds are drawn uniformly from [minSpeed, maxSpeed].
func NewWaypoint(area geo.Rect, start geo.Point, minSpeed, maxSpeed float64, src *rng.Source) (*Waypoint, error) {
	if minSpeed <= 0 || maxSpeed < minSpeed {
		return nil, fmt.Errorf("mobility: need 0 < minSpeed <= maxSpeed, got %v, %v", minSpeed, maxSpeed)
	}
	if src == nil {
		return nil, fmt.Errorf("mobility: nil rng source")
	}
	w := &Waypoint{area: area, minSpeed: minSpeed, maxSpeed: maxSpeed, src: src}
	w.legs = []leg{{start: 0, end: 0, from: area.Clamp(start), to: area.Clamp(start)}}
	w.extend() // first real leg
	return w, nil
}

// extend appends one more leg after the current last one.
func (w *Waypoint) extend() {
	last := w.legs[len(w.legs)-1]
	dest := geo.Point{
		X: w.src.Uniform(w.area.Min.X, w.area.Max.X),
		Y: w.src.Uniform(w.area.Min.Y, w.area.Max.Y),
	}
	speed := w.src.Uniform(w.minSpeed, w.maxSpeed)
	dist := last.to.Dist(dest)
	dur := dist / speed
	if dur <= 0 {
		dur = 1e-9
	}
	w.legs = append(w.legs, leg{
		start: last.end,
		end:   last.end + dur,
		from:  last.to,
		to:    dest,
	})
}

// At implements Model. Querying a time before zero returns the start.
func (w *Waypoint) At(t float64) geo.Point {
	if t <= 0 {
		return w.legs[0].from
	}
	for w.legs[len(w.legs)-1].end < t {
		w.extend()
	}
	// Binary search would be asymptotically nicer; trajectories in the
	// experiments have tens of legs, so a scan is simpler and fine.
	for _, l := range w.legs {
		if t <= l.end {
			//lint:allow floateq zero-duration-leg guard against dividing by an exact zero below
			if l.end == l.start {
				return l.to
			}
			frac := (t - l.start) / (l.end - l.start)
			return geo.Point{
				X: l.from.X + (l.to.X-l.from.X)*frac,
				Y: l.from.Y + (l.to.Y-l.from.Y)*frac,
			}
		}
	}
	return w.legs[len(w.legs)-1].to
}

// Legs returns how many trajectory legs have been generated so far.
func (w *Waypoint) Legs() int { return len(w.legs) }

// Field tracks a population of mobile nodes and exposes the CH-side view:
// positions at a given decision time (§2's "the CH to estimate the
// positions of its cluster nodes during decision making").
type Field struct {
	models map[int]Model
}

// NewField returns an empty field.
func NewField() *Field { return &Field{models: make(map[int]Model)} }

// Set registers (or replaces) a node's mobility model.
func (f *Field) Set(nodeID int, m Model) { f.models[nodeID] = m }

// At returns the node's position at time t.
func (f *Field) At(nodeID int, t float64) (geo.Point, bool) {
	m, ok := f.models[nodeID]
	if !ok {
		return geo.Point{}, false
	}
	return m.At(t), true
}

// Snapshot captures every node's position at time t as a plain map —
// the view a cluster head works from during one decision.
func (f *Field) Snapshot(t float64) map[int]geo.Point {
	out := make(map[int]geo.Point, len(f.models))
	for id, m := range f.models {
		out[id] = m.At(t)
	}
	return out
}

// IDs returns the registered node IDs in ascending order, so callers
// iterating them stay deterministic.
func (f *Field) IDs() []int {
	out := make([]int, 0, len(f.models))
	for id := range f.models {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Clock adapts a Field to the aggregator's Positions interface at a
// caller-controlled time: the experiment advances Now as virtual time
// progresses, and the cluster head resolves reports against positions as
// of the decision it is making.
type Clock struct {
	Field *Field
	Now   func() float64
}

// Pos implements aggregator.Positions.
func (c Clock) Pos(nodeID int) (geo.Point, bool) {
	return c.Field.At(nodeID, c.Now())
}

// IDs implements aggregator.Positions.
func (c Clock) IDs() []int { return c.Field.IDs() }
