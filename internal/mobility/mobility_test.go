package mobility

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/tibfit/tibfit/internal/geo"
	"github.com/tibfit/tibfit/internal/rng"
)

var area = geo.NewRect(100, 100)

func TestStatic(t *testing.T) {
	m := Static(geo.Point{X: 3, Y: 4})
	if m.At(0) != m.At(1e6) {
		t.Fatal("static model moved")
	}
}

func TestLinearStraightLine(t *testing.T) {
	m := Linear{Start: geo.Point{X: 10, Y: 10}, Vel: geo.Point{X: 1, Y: 2}, Area: area}
	p := m.At(5)
	if p != (geo.Point{X: 15, Y: 20}) {
		t.Fatalf("At(5) = %v", p)
	}
}

func TestLinearReflectsOffWalls(t *testing.T) {
	m := Linear{Start: geo.Point{X: 90, Y: 50}, Vel: geo.Point{X: 10, Y: 0}, Area: area}
	// After 1 unit it hits x=100; after 2 it should be back at 90.
	if p := m.At(2); math.Abs(p.X-90) > 1e-9 {
		t.Fatalf("At(2) = %v, want x=90", p)
	}
	// It must never leave the area, even over long horizons.
	for tm := 0.0; tm < 100; tm += 0.7 {
		if p := m.At(tm); !area.Contains(p) {
			t.Fatalf("left the area at t=%v: %v", tm, p)
		}
	}
}

func TestLinearDegenerateArea(t *testing.T) {
	m := Linear{Start: geo.Point{X: 5, Y: 5}, Vel: geo.Point{X: 1, Y: 1},
		Area: geo.Rect{Min: geo.Point{X: 5, Y: 5}, Max: geo.Point{X: 5, Y: 5}}}
	if p := m.At(10); p != (geo.Point{X: 5, Y: 5}) {
		t.Fatalf("degenerate area position = %v", p)
	}
}

func TestWaypointValidation(t *testing.T) {
	if _, err := NewWaypoint(area, geo.Point{}, 0, 1, rng.New(1)); err == nil {
		t.Fatal("accepted zero minSpeed")
	}
	if _, err := NewWaypoint(area, geo.Point{}, 2, 1, rng.New(1)); err == nil {
		t.Fatal("accepted max < min")
	}
	if _, err := NewWaypoint(area, geo.Point{}, 1, 2, nil); err == nil {
		t.Fatal("accepted nil rng")
	}
}

func TestWaypointStaysInArea(t *testing.T) {
	w, err := NewWaypoint(area, geo.Point{X: 50, Y: 50}, 1, 5, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for tm := 0.0; tm < 500; tm += 1.3 {
		if p := w.At(tm); !area.Contains(p) {
			t.Fatalf("left the area at t=%v: %v", tm, p)
		}
	}
	if w.Legs() < 5 {
		t.Fatalf("only %d legs after 500 time units", w.Legs())
	}
}

func TestWaypointDeterministicQueries(t *testing.T) {
	w, err := NewWaypoint(area, geo.Point{X: 50, Y: 50}, 1, 5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Query far ahead first, then earlier times: answers must match a
	// fresh model queried in order.
	late := w.At(200)
	early := w.At(10)

	w2, _ := NewWaypoint(area, geo.Point{X: 50, Y: 50}, 1, 5, rng.New(3))
	if got := w2.At(10); got != early {
		t.Fatalf("out-of-order query changed t=10: %v vs %v", got, early)
	}
	if got := w2.At(200); got != late {
		t.Fatalf("out-of-order query changed t=200: %v vs %v", got, late)
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	w, err := NewWaypoint(area, geo.Point{X: 50, Y: 50}, 2, 4, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.25
	prev := w.At(0)
	for tm := dt; tm < 200; tm += dt {
		cur := w.At(tm)
		if v := prev.Dist(cur) / dt; v > 4+1e-6 {
			t.Fatalf("speed %v exceeds max 4 at t=%v", v, tm)
		}
		prev = cur
	}
}

func TestWaypointBeforeZero(t *testing.T) {
	w, _ := NewWaypoint(area, geo.Point{X: 7, Y: 9}, 1, 2, rng.New(5))
	if p := w.At(-5); p != (geo.Point{X: 7, Y: 9}) {
		t.Fatalf("At(-5) = %v", p)
	}
}

func TestFieldSnapshotAndClock(t *testing.T) {
	f := NewField()
	f.Set(1, Static(geo.Point{X: 1, Y: 1}))
	f.Set(2, Linear{Start: geo.Point{X: 0, Y: 0}, Vel: geo.Point{X: 1, Y: 0}, Area: area})

	snap := f.Snapshot(10)
	if snap[1] != (geo.Point{X: 1, Y: 1}) || snap[2] != (geo.Point{X: 10, Y: 0}) {
		t.Fatalf("snapshot = %v", snap)
	}
	if len(f.IDs()) != 2 {
		t.Fatalf("IDs = %v", f.IDs())
	}
	if _, ok := f.At(99, 0); ok {
		t.Fatal("unknown node found")
	}

	now := 0.0
	clock := Clock{Field: f, Now: func() float64 { return now }}
	if p, ok := clock.Pos(2); !ok || p.X != 0 {
		t.Fatalf("clock at 0 = %v", p)
	}
	now = 5
	if p, _ := clock.Pos(2); p.X != 5 {
		t.Fatalf("clock at 5 = %v", p)
	}
	if len(clock.IDs()) != 2 {
		t.Fatal("clock IDs wrong")
	}
}

// Property: reflect always lands in [lo, hi] and is continuous at the
// walls (reflect(hi+d) == reflect(hi-d)).
func TestReflectProperty(t *testing.T) {
	check := func(x, d float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 1e9)
		v := reflect(x, 10, 20)
		if v < 10-1e-9 || v > 20+1e-9 {
			return false
		}
		d = math.Abs(math.Mod(d, 5))
		return math.Abs(reflect(20+d, 10, 20)-reflect(20-d, 10, 20)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
