package sim

import "container/heap"

// heapQueue is the binary-heap scheduler: a container/heap ordered by the
// (time, sequence) total order. Push, pop, and remove are O(log n) in the
// standing event population; there is no auxiliary state to adapt, which
// makes it the simplest correct implementation and the reference the
// calendar queue is differentially tested against.
type heapQueue struct {
	q eventQueue
}

func newHeapQueue() *heapQueue {
	return &heapQueue{q: make(eventQueue, 0, initialQueueCap)}
}

func (h *heapQueue) push(ev *event) { heap.Push(&h.q, ev) }

func (h *heapQueue) popUntil(horizon Time) *event {
	if len(h.q) == 0 || h.q[0].at > horizon {
		return nil
	}
	return heap.Pop(&h.q).(*event)
}

func (h *heapQueue) remove(ev *event) { heap.Remove(&h.q, ev.index) }

func (h *heapQueue) len() int { return len(h.q) }

// eventQueue implements heap.Interface ordered by (time, sequence).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	//lint:allow floateq total-order tie-break comparator; exact comparison is the point
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
