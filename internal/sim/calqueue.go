package sim

import "math"

// calQueue is the ns-2-style calendar-queue scheduler (R. Brown, "Calendar
// Queues: A Fast O(1) Priority Queue Implementation for the Simulation
// Event Set Problem", CACM 1988): events hash by time into one "day"
// bucket of a circular calendar whose "year" spans nbuckets × width time
// units. Push inserts into the target bucket's sorted chain; pop scans at
// most one year of days from the cursor. With bucket count tracking the
// population (doubling/halving on over/under-population) and bucket width
// tracking the inter-event gap near the head of the queue, both are O(1)
// amortized — versus the heap's O(log n) — once thousands of timers stand
// in the queue.
//
// Determinism contract: dispatch order is the exact (at, seq) total order
// the heap produces, so any run is byte-identical under either scheduler.
// Two properties make that exact rather than approximate:
//
//   - Every queued event carries its virtual day number ev.vb =
//     floor(at/width), recomputed under the current width on every (re-)
//     insertion. floor is monotone, so vb orders consistently with time,
//     and equal times always share a day — the year scan below never has
//     to compare a float against an accumulated bucket-top edge, which is
//     where naive calendar queues lose exactness.
//   - Within a bucket the chain is kept sorted by (at, seq), so the chain
//     head is the day's true minimum and equal-time events dispatch FIFO.
//
// The year scan pops the first head whose vb matches the cursor's day; if
// a whole year passes without a hit (a sparse far-future population), a
// direct search over bucket heads — each already its bucket's minimum —
// finds the exact global minimum.
type calQueue struct {
	buckets []calBucket
	// width is the current bucket ("day") width in time units, > 0.
	width float64
	// n is the queued event count.
	n int
	// cur is the virtual day of the last popped event: the year scan
	// resumes here. Queued events always have vb >= cur because the
	// kernel never schedules before the clock.
	cur int64
	// lastAt is the time of the last popped event; resizes re-derive cur
	// from it under the new width.
	lastAt Time
	// resizing suppresses nested resizes while newWidth samples the
	// queue through the normal pop/insert path.
	resizing bool
}

// calBucket is one day's chain, doubly linked through the event records
// themselves (no per-entry allocation) and kept sorted by (at, seq).
type calBucket struct {
	head, tail *event
}

const (
	// calMinBuckets floors the calendar size; tiny queues stay tiny.
	calMinBuckets = 4
	// calInitWidth is the day width before the first adaptive estimate.
	calInitWidth = 1.0
	// calSampleMax caps how many head events newWidth inspects, keeping
	// resize cost O(population) for the relink plus O(1) for the width
	// estimate (ns-2 samples 25 the same way).
	calSampleMax = 25
)

func newCalQueue() *calQueue {
	return &calQueue{
		buckets: make([]calBucket, calMinBuckets),
		width:   calInitWidth,
	}
}

func (c *calQueue) len() int { return c.n }

// vbOf maps a time to its virtual day under the current width. Values so
// far in the future that the day number would overflow int64 clamp to
// MaxInt64; clamped events all share one day and are ordered exactly by
// the in-bucket sort and the direct-search fallback.
func (c *calQueue) vbOf(at Time) int64 {
	q := math.Floor(float64(at) / c.width)
	if q >= math.MaxInt64 {
		return math.MaxInt64
	}
	if q < 0 {
		return 0
	}
	return int64(q)
}

// eventAfter reports whether a orders strictly after b in the (at, seq)
// total order every scheduler must honor.
func eventAfter(a, b *event) bool {
	//lint:allow floateq total-order tie-break comparator; exact comparison is the point
	if a.at != b.at {
		return a.at > b.at
	}
	return a.seq > b.seq
}

func (c *calQueue) push(ev *event) {
	ev.vb = c.vbOf(ev.at)
	c.insert(ev)
	c.n++
	if !c.resizing && c.n > 2*len(c.buckets) {
		c.resize(2 * len(c.buckets))
	}
}

// insert links ev into its day's chain, scanning from the tail: pushes
// land at or near the end of their bucket in the common case (monotone
// schedules, FIFO ties), so the scan is O(1) amortized.
func (c *calQueue) insert(ev *event) {
	i := int(ev.vb % int64(len(c.buckets)))
	ev.index = i
	b := &c.buckets[i]
	p := b.tail
	for p != nil && eventAfter(p, ev) {
		p = p.prev
	}
	if p == nil { // new chain head
		ev.prev = nil
		ev.next = b.head
		if b.head != nil {
			b.head.prev = ev
		} else {
			b.tail = ev
		}
		b.head = ev
	} else { // after p
		ev.prev = p
		ev.next = p.next
		if p.next != nil {
			p.next.prev = ev
		} else {
			b.tail = ev
		}
		p.next = ev
	}
}

// unlink removes ev from its day's chain and marks it off-queue.
func (c *calQueue) unlink(ev *event) {
	b := &c.buckets[ev.index]
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		b.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		b.tail = ev.prev
	}
	ev.prev, ev.next = nil, nil
	ev.index = -1
	c.n--
}

func (c *calQueue) remove(ev *event) {
	c.unlink(ev)
	c.maybeShrink()
}

func (c *calQueue) maybeShrink() {
	if !c.resizing && len(c.buckets) > calMinBuckets && c.n < len(c.buckets)/2 {
		c.resize(len(c.buckets) / 2)
	}
}

func (c *calQueue) popUntil(horizon Time) *event {
	if c.n == 0 {
		return nil
	}
	nb := int64(len(c.buckets))
	vb := c.cur
	for k := int64(0); k < nb; k++ {
		b := &c.buckets[int(vb%nb)]
		if head := b.head; head != nil && head.vb == vb {
			if head.at > horizon {
				return nil
			}
			c.cur = vb
			c.lastAt = head.at
			c.unlink(head)
			c.maybeShrink()
			return head
		}
		if vb == math.MaxInt64 {
			break // clamp region: only the direct search orders it exactly
		}
		vb++
	}
	// A whole year without a hit: the population is sparse relative to
	// the calendar span. Fall back to an exact direct search over the
	// bucket heads (each already its bucket's minimum).
	var min *event
	for i := range c.buckets {
		if h := c.buckets[i].head; h != nil && (min == nil || eventAfter(min, h)) {
			min = h
		}
	}
	if min.at > horizon {
		return nil
	}
	c.cur = min.vb
	c.lastAt = min.at
	c.unlink(min)
	c.maybeShrink()
	return min
}

// resize rebuilds the calendar with nb buckets and a freshly estimated
// width, relinking every queued event. The per-bucket sorted insert makes
// the result independent of the relink walk order, so resizing never
// perturbs dispatch order.
func (c *calQueue) resize(nb int) {
	if nb < calMinBuckets {
		nb = calMinBuckets
	}
	if nb == len(c.buckets) {
		return
	}
	c.resizing = true
	c.width = c.newWidth()
	old := c.buckets
	c.buckets = make([]calBucket, nb)
	for i := range old {
		for ev := old[i].head; ev != nil; {
			next := ev.next
			ev.prev, ev.next = nil, nil
			ev.vb = c.vbOf(ev.at)
			c.insert(ev)
			ev = next
		}
	}
	c.cur = c.vbOf(c.lastAt)
	c.resizing = false
}

// newWidth estimates the day width that keeps head-of-queue days at O(1)
// occupancy: it pops a small sample of the earliest events through the
// normal path, re-inserts them, and returns three times the average gap
// between consecutive sampled times after trimming outlier gaps (Brown's
// estimator, as in ns-2). Sampling at the head rather than across the
// whole population keeps one far-future stray from inflating the width
// and collapsing the near-term events into a single day.
func (c *calQueue) newWidth() float64 {
	if c.n < 2 {
		return c.width
	}
	s := 5 + c.n/10
	if s > calSampleMax {
		s = calSampleMax
	}
	if s > c.n {
		s = c.n
	}
	saveCur, saveLast := c.cur, c.lastAt
	sample := make([]*event, 0, calSampleMax)
	for len(sample) < s {
		sample = append(sample, c.popUntil(End))
	}
	for _, ev := range sample {
		// Width is unchanged here, but re-deriving vb keeps insert's
		// preconditions obvious.
		ev.vb = c.vbOf(ev.at)
		c.insert(ev)
		c.n++
	}
	c.cur, c.lastAt = saveCur, saveLast

	var sum float64
	for i := 1; i < len(sample); i++ {
		sum += float64(sample[i].at - sample[i-1].at)
	}
	avg := sum / float64(len(sample)-1)
	if !(avg > 0) || math.IsInf(avg, 0) {
		return c.width // all sampled events simultaneous (or degenerate)
	}
	// Trim gaps >= 2×avg — they separate event clusters rather than
	// describe intra-cluster spacing — and average the rest.
	var trimmed float64
	count := 0
	for i := 1; i < len(sample); i++ {
		if g := float64(sample[i].at - sample[i-1].at); g < 2*avg {
			trimmed += g
			count++
		}
	}
	refined := avg
	if count > 0 && trimmed > 0 {
		refined = trimmed / float64(count)
	}
	w := 3 * refined
	if !(w > 0) || math.IsInf(w, 0) {
		return c.width
	}
	return w
}
