// Package sim implements the discrete-event simulation kernel that replaces
// ns-2 as the substrate for the TIBFIT reproduction.
//
// The kernel is deliberately minimal and deterministic: a virtual clock, a
// pluggable event queue with stable FIFO ordering among simultaneous
// events, and cancellable timers. All model randomness lives in the rng
// package; the kernel itself is fully deterministic, so a simulation run is
// a pure function of its configuration and seed.
//
// Two event-queue implementations sit behind the scheduler interface: a
// binary heap (O(log n) per operation) and an ns-2-style calendar queue
// (O(1) amortized, the default — see calqueue.go). Both honor the exact
// (time, sequence) total order, so a run is byte-identical under either;
// selection is per kernel (WithScheduler), per process
// (SetDefaultScheduler, the cmd tools' -scheduler flag), or per
// environment (TIBFIT_SCHEDULER, the CI matrix).
//
// The kernel is single-threaded. Wireless sensor network simulations at the
// paper's scale (hundreds of nodes, thousands of events) run in milliseconds
// without concurrency, and a single-threaded kernel makes every run exactly
// reproducible — a property the experiment harness and the regression tests
// rely on.
//
// Event records are recycled through a kernel-local free list (backed by
// block allocation) rather than garbage-collected per event: a campaign
// dispatches millions of timer events, and the steady-state cost of one is
// a queue push/pop, not an allocation. Generation counters keep stale Timer
// handles safe after their event record is reused.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Time is a point in virtual simulation time, in abstract time units. The
// paper never ties its timeouts to wall-clock seconds, so the simulator
// keeps the unit abstract too; experiments choose T_out and event spacing
// in the same unit.
type Time float64

// Duration is a span of virtual time in the same abstract unit as Time.
type Duration float64

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String renders the time with three decimals.
func (t Time) String() string { return fmt.Sprintf("t=%.3f", float64(t)) }

// End is a sentinel time later than any schedulable event.
const End Time = Time(math.MaxFloat64)

// ErrPastTime is returned when an event is scheduled before the current
// virtual time.
var ErrPastTime = errors.New("sim: cannot schedule event in the past")

// ErrNonFiniteTime is returned when an event is scheduled at NaN or ±Inf.
// NaN in particular is poison: it compares false against everything, so it
// slips past range guards and silently corrupts any ordering structure it
// enters. The kernel rejects it at the door instead.
var ErrNonFiniteTime = errors.New("sim: cannot schedule event at non-finite time")

// Handler is a callback invoked when a scheduled event fires.
type Handler func()

// arenaBlock is how many event records each backing allocation holds. One
// block covers the typical standing-timer population of a run; busier runs
// amortize growth over 256 events at a time.
const arenaBlock = 256

// initialQueueCap pre-sizes the heap so the first few hundred schedules
// never reallocate the queue slice.
const initialQueueCap = 64

// event is a queue entry. seq breaks ties so that events scheduled for the
// same instant fire in scheduling order (FIFO), which keeps runs stable.
// Records are reused via the kernel free list; gen increments on every
// recycle so Timer handles from a previous life cannot touch the new one.
//
// index, vb, prev, and next are scheduler-owned: the heap keeps its slot
// in index; the calendar queue keeps the bucket index there and threads
// its per-bucket chains through prev/next with the virtual day in vb.
// index >= 0 iff the event is queued, whichever scheduler holds it.
type event struct {
	at    Time
	seq   uint64
	fn    Handler
	gen   uint64
	index int // scheduler slot; -1 off-queue
	vb    int64
	prev  *event
	next  *event
}

// Timer is a handle to a scheduled event that can be cancelled or queried.
// Handles stay valid (and inert) after the event fires or is stopped, even
// though the underlying record is recycled for later events: the generation
// snapshot detects reuse.
type Timer struct {
	k   *Kernel
	ev  *event
	gen uint64
}

// pending reports whether the handle still refers to its original, queued
// event.
func (t *Timer) pending() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0
}

// Stop cancels the timer, removing its event from the queue immediately,
// so heavy timer churn cannot bloat the queue with dead entries. It
// reports whether the cancellation prevented the event from firing (false
// if it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if !t.pending() {
		return false
	}
	ev := t.ev
	t.k.sched.remove(ev)
	t.k.recycle(ev)
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t.pending() }

// When returns the virtual time the timer is scheduled to fire, or End once
// it is no longer pending (fired, stopped, or nil).
func (t *Timer) When() Time {
	if !t.pending() {
		return End
	}
	return t.ev.at
}

// Kernel is the discrete-event scheduler. The zero value is ready to use
// (it adopts the process-default event queue on first schedule); New
// additionally applies options and pre-sizes the queue.
type Kernel struct {
	now       Time
	seq       uint64
	sched     scheduler
	schedName string
	stopped   bool
	fired     uint64

	// free holds recycled event records; arena is the tail of the current
	// backing block, consumed one record at a time. Records never move, so
	// pointers into a block stay valid for the kernel's lifetime.
	free  []*event
	arena []event
}

// New returns a kernel with the clock at zero. Options select the event
// queue (WithScheduler); without one the process default applies.
func New(opts ...Option) *Kernel {
	k := &Kernel{}
	for _, opt := range opts {
		opt(k)
	}
	k.initScheduler()
	return k
}

// initScheduler resolves the kernel's scheduler name (falling back to the
// process default) and builds the queue. Unknown names panic: they are
// programmer errors — the CLI layer validates user input first.
//
//hot:init
func (k *Kernel) initScheduler() {
	if k.schedName == "" {
		k.schedName = DefaultScheduler()
	}
	if _, err := ResolveScheduler(k.schedName); err != nil {
		panic(err)
	}
	k.sched = newSchedulerImpl(k.schedName)
}

// Scheduler returns the name of the event-queue implementation in use.
func (k *Kernel) Scheduler() string {
	if k.sched == nil {
		return DefaultScheduler()
	}
	return k.schedName
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of events still queued. Stopped timers are
// removed from the queue eagerly, so cancelled events never count.
func (k *Kernel) Pending() int {
	if k.sched == nil {
		return 0
	}
	return k.sched.len()
}

// Fired returns the number of events that have been dispatched so far. It
// is useful for instrumentation and for sanity bounds in tests.
func (k *Kernel) Fired() uint64 { return k.fired }

// alloc returns an event record from the free list (or carves one from the
// current arena block), initialized for scheduling at the given time.
//
//hot:path
func (k *Kernel) alloc(at Time, fn Handler) *event {
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		if len(k.arena) == 0 {
			k.arena = make([]event, arenaBlock)
		}
		ev = &k.arena[0]
		k.arena = k.arena[1:]
	}
	ev.at = at
	ev.seq = k.seq
	ev.fn = fn
	k.seq++
	return ev
}

// recycle retires a record that left the queue (fired or stopped). Bumping
// gen invalidates every outstanding Timer handle to this life of the
// record; dropping fn releases the captured closure to the GC.
//
//hot:path
func (k *Kernel) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	k.free = append(k.free, ev)
}

// At schedules fn to run at absolute virtual time at. Scheduling at the
// current time is allowed; the event fires after all events already queued
// for that instant. It returns a Timer handle, ErrPastTime if at is before
// the current time, and ErrNonFiniteTime if at is NaN or infinite.
//
//hot:path
func (k *Kernel) At(at Time, fn Handler) (*Timer, error) {
	if math.IsNaN(float64(at)) || math.IsInf(float64(at), 0) {
		//lint:allow hotalloc error construction on the rejection path, not per event
		return nil, fmt.Errorf("%w: requested=%v", ErrNonFiniteTime, float64(at))
	}
	if at < k.now {
		//lint:allow hotalloc error construction on the rejection path, not per event
		return nil, fmt.Errorf("%w: now=%v requested=%v", ErrPastTime, k.now, at)
	}
	if k.sched == nil {
		k.initScheduler()
	}
	ev := k.alloc(at, fn)
	k.sched.push(ev)
	//lint:allow hotalloc the Timer handle is the API's per-schedule contract
	return &Timer{k: k, ev: ev, gen: ev.gen}, nil
}

// After schedules fn to run d time units from now. A non-positive delay
// schedules for the current instant (after already-queued events). A
// non-finite delay panics with an error wrapping ErrNonFiniteTime: After
// has no error return, and silently dropping or deferring a NaN timer
// would corrupt the run it came from.
//
//hot:path
func (k *Kernel) After(d Duration, fn Handler) *Timer {
	// Reject non-finite delays before the negative clamp: -Inf satisfies
	// d < 0, and clamping it to zero would silently schedule a "broken"
	// timer at the current instant instead of failing fast like NaN/+Inf.
	if math.IsNaN(float64(d)) || math.IsInf(float64(d), 0) {
		//lint:allow hotalloc panic construction on the rejection path, not per event
		panic(fmt.Errorf("%w: delay=%v", ErrNonFiniteTime, float64(d)))
	}
	if d < 0 {
		d = 0
	}
	t, err := k.At(k.now.Add(d), fn)
	if err != nil {
		// Unreachable: now+nonnegative-finite is never in the past and
		// never non-finite (now is finite by induction).
		panic(err)
	}
	return t
}

// AfterFunc schedules fn to run d time units from now, like After, but
// discards the Timer handle. Its signature is exactly the Clock seam the
// decision pipeline runs on (internal/aggregator, internal/engine), which
// makes the kernel itself the simulation-backed Clock implementation: the
// batch sim drives the same windowing code the online engine does, with
// zero adaptation layers in between.
//
//hot:path
func (k *Kernel) AfterFunc(d Duration, fn func()) { k.After(d, fn) }

// Stop halts the run loop after the currently dispatching event returns.
func (k *Kernel) Stop() { k.stopped = true }

// Run dispatches events in time order until the queue drains, Stop is
// called, or the next event lies beyond until. The clock is left at the
// time of the last dispatched event (or until, whichever the loop reached).
// It returns the number of events dispatched during this call.
//
//hot:path
func (k *Kernel) Run(until Time) uint64 {
	k.stopped = false
	var dispatched uint64
	if k.sched != nil {
		for !k.stopped {
			next := k.sched.popUntil(until)
			if next == nil {
				break
			}
			k.now = next.at
			fn := next.fn
			// Recycle before dispatch: the record may be reused by events the
			// handler schedules, and the gen bump already shields the handle.
			k.recycle(next)
			fn()
			k.fired++
			dispatched++
		}
	}
	//lint:allow floateq comparison against the exact End sentinel constant
	if k.now < until && until != End {
		k.now = until
	}
	return dispatched
}

// RunAll dispatches every queued event. It is the common top-level call for
// experiments, which bound work by the number of generated events rather
// than by a horizon.
func (k *Kernel) RunAll() uint64 { return k.Run(End) }

// Step dispatches exactly one pending event, if any, and reports whether
// one was dispatched. Tests use it to single-step protocol state machines.
// (Stopped timers leave the queue immediately, so every queued event is
// dispatchable.)
//
//hot:path
func (k *Kernel) Step() bool {
	if k.sched == nil {
		return false
	}
	next := k.sched.popUntil(End)
	if next == nil {
		return false
	}
	k.now = next.at
	fn := next.fn
	k.recycle(next)
	fn()
	k.fired++
	return true
}
