// Package sim implements the discrete-event simulation kernel that replaces
// ns-2 as the substrate for the TIBFIT reproduction.
//
// The kernel is deliberately minimal and deterministic: a virtual clock, a
// binary-heap event queue with stable FIFO ordering among simultaneous
// events, and cancellable timers. All model randomness lives in the rng
// package; the kernel itself is fully deterministic, so a simulation run is
// a pure function of its configuration and seed.
//
// The kernel is single-threaded. Wireless sensor network simulations at the
// paper's scale (hundreds of nodes, thousands of events) run in milliseconds
// without concurrency, and a single-threaded kernel makes every run exactly
// reproducible — a property the experiment harness and the regression tests
// rely on.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a point in virtual simulation time, in abstract time units. The
// paper never ties its timeouts to wall-clock seconds, so the simulator
// keeps the unit abstract too; experiments choose T_out and event spacing
// in the same unit.
type Time float64

// Duration is a span of virtual time in the same abstract unit as Time.
type Duration float64

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String renders the time with three decimals.
func (t Time) String() string { return fmt.Sprintf("t=%.3f", float64(t)) }

// End is a sentinel time later than any schedulable event.
const End Time = Time(math.MaxFloat64)

// ErrPastTime is returned when an event is scheduled before the current
// virtual time.
var ErrPastTime = errors.New("sim: cannot schedule event in the past")

// Handler is a callback invoked when a scheduled event fires.
type Handler func()

// event is a queue entry. seq breaks ties so that events scheduled for the
// same instant fire in scheduling order (FIFO), which keeps runs stable.
type event struct {
	at       Time
	seq      uint64
	fn       Handler
	canceled bool
	index    int // heap index, maintained by the heap interface
}

// Timer is a handle to a scheduled event that can be cancelled or queried.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the cancellation prevented the
// event from firing (false if it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled {
		return false
	}
	if t.ev.index < 0 { // already fired and removed from the queue
		return false
	}
	t.ev.canceled = true
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.canceled && t.ev.index >= 0
}

// When returns the virtual time the timer is scheduled to fire.
func (t *Timer) When() Time {
	if t == nil || t.ev == nil {
		return End
	}
	return t.ev.at
}

// eventQueue implements heap.Interface ordered by (time, sequence).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	//lint:allow floateq total-order tie-break comparator; exact comparison is the point
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Kernel is the discrete-event scheduler. The zero value is ready to use.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
	fired   uint64
}

// New returns a kernel with the clock at zero.
func New() *Kernel { return &Kernel{} }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of events still queued (including cancelled
// entries that have not yet been drained).
func (k *Kernel) Pending() int { return len(k.queue) }

// Fired returns the number of events that have been dispatched so far. It
// is useful for instrumentation and for sanity bounds in tests.
func (k *Kernel) Fired() uint64 { return k.fired }

// At schedules fn to run at absolute virtual time at. Scheduling at the
// current time is allowed; the event fires after all events already queued
// for that instant. It returns a Timer handle and ErrPastTime if at is
// before the current time.
func (k *Kernel) At(at Time, fn Handler) (*Timer, error) {
	if at < k.now {
		return nil, fmt.Errorf("%w: now=%v requested=%v", ErrPastTime, k.now, at)
	}
	ev := &event{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return &Timer{ev: ev}, nil
}

// After schedules fn to run d time units from now. A non-positive delay
// schedules for the current instant (after already-queued events).
func (k *Kernel) After(d Duration, fn Handler) *Timer {
	if d < 0 {
		d = 0
	}
	t, err := k.At(k.now.Add(d), fn)
	if err != nil {
		// Unreachable: now+nonnegative is never in the past.
		panic(err)
	}
	return t
}

// Stop halts the run loop after the currently dispatching event returns.
func (k *Kernel) Stop() { k.stopped = true }

// Run dispatches events in time order until the queue drains, Stop is
// called, or the next event lies beyond until. The clock is left at the
// time of the last dispatched event (or until, whichever the loop reached).
// It returns the number of events dispatched during this call.
func (k *Kernel) Run(until Time) uint64 {
	k.stopped = false
	var dispatched uint64
	for len(k.queue) > 0 && !k.stopped {
		next := k.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&k.queue)
		if next.canceled {
			continue
		}
		k.now = next.at
		next.fn()
		k.fired++
		dispatched++
	}
	//lint:allow floateq comparison against the exact End sentinel constant
	if k.now < until && until != End {
		k.now = until
	}
	return dispatched
}

// RunAll dispatches every queued event. It is the common top-level call for
// experiments, which bound work by the number of generated events rather
// than by a horizon.
func (k *Kernel) RunAll() uint64 { return k.Run(End) }

// Step dispatches exactly one pending non-cancelled event, if any, and
// reports whether one was dispatched. Tests use it to single-step protocol
// state machines.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		next := heap.Pop(&k.queue).(*event)
		if next.canceled {
			continue
		}
		k.now = next.at
		next.fn()
		k.fired++
		return true
	}
	return false
}
