package sim

import (
	"fmt"
	"testing"
)

// BenchmarkScheduleAndRun measures raw kernel throughput: schedule-then-
// dispatch cost per event with a queue that stays around 1000 entries.
func BenchmarkScheduleAndRun(b *testing.B) {
	k := New()
	const window = 1000
	for i := 0; i < window; i++ {
		k.After(Duration(i), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(window, func() {})
		k.Step()
	}
}

// BenchmarkTimerStop measures cancellation cost.
func BenchmarkTimerStop(b *testing.B) {
	k := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm := k.After(1e9, func() {})
		tm.Stop()
	}
}

// BenchmarkSchedulerChurn is the in-package edition of the tibfit-bench
// scale-up matrix (kernel/timer-churn/<pop>/<scheduler>): near-term
// ACK/backoff churn over a standing long-horizon population. Run it to
// see the heap's O(log n) grow with population while the calendar stays
// flat:
//
//	go test -bench BenchmarkSchedulerChurn -benchtime 200ms ./internal/sim/
func BenchmarkSchedulerChurn(b *testing.B) {
	for _, name := range Schedulers() {
		for _, pop := range []int{1_000, 16_000, 128_000} {
			b.Run(fmt.Sprintf("%s/pop=%d", name, pop), func(b *testing.B) {
				k := New(WithScheduler(name))
				for i := 0; i < pop; i++ {
					k.After(Duration(1e12+float64(i)), func() {})
				}
				b.ReportAllocs()
				b.ResetTimer()
				timers := make([]*Timer, 64)
				for i := 0; i < b.N; i++ {
					for j := 0; j < 64; j++ {
						timers[j] = k.After(Duration(1+j), func() {})
					}
					for j := 0; j < 48; j++ {
						timers[j].Stop()
					}
					for j := 0; j < 16; j++ {
						k.Step()
					}
				}
			})
		}
	}
}
