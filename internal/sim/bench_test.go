package sim

import "testing"

// BenchmarkScheduleAndRun measures raw kernel throughput: schedule-then-
// dispatch cost per event with a queue that stays around 1000 entries.
func BenchmarkScheduleAndRun(b *testing.B) {
	k := New()
	const window = 1000
	for i := 0; i < window; i++ {
		k.After(Duration(i), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(window, func() {})
		k.Step()
	}
}

// BenchmarkTimerStop measures cancellation cost.
func BenchmarkTimerStop(b *testing.B) {
	k := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm := k.After(1e9, func() {})
		tm.Stop()
	}
}
