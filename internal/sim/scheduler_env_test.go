package sim

import (
	"fmt"
	"testing"
)

// resetDefaultScheduler clears the lazily-resolved process default so a
// test can exercise the environment-variable path, restoring the prior
// value on cleanup.
func resetDefaultScheduler(t *testing.T) {
	t.Helper()
	defaultSched.Lock()
	prev := defaultSched.name
	defaultSched.name = ""
	defaultSched.Unlock()
	t.Cleanup(func() {
		defaultSched.Lock()
		defaultSched.name = prev
		defaultSched.Unlock()
	})
}

// TestDefaultSchedulerEnvValid pins that a valid TIBFIT_SCHEDULER value
// is adopted as the process default.
func TestDefaultSchedulerEnvValid(t *testing.T) {
	for _, name := range Schedulers() {
		name := name
		t.Run(name, func(t *testing.T) {
			resetDefaultScheduler(t)
			t.Setenv(EnvScheduler, name)
			if got := DefaultScheduler(); got != name {
				t.Fatalf("DefaultScheduler() = %q with %s=%q, want %q", got, EnvScheduler, name, name)
			}
		})
	}
}

// TestDefaultSchedulerEnvInvalidPanics pins the contract and the exact
// message for a typo'd environment value: a CI matrix leg that silently
// fell back to the default scheduler would defeat the point of the
// matrix, so the kernel refuses to start.
func TestDefaultSchedulerEnvInvalidPanics(t *testing.T) {
	resetDefaultScheduler(t)
	t.Setenv(EnvScheduler, "bogus")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("DefaultScheduler() did not panic with %s=bogus", EnvScheduler)
		}
		want := fmt.Sprintf("sim: bad %s=%q: %v", EnvScheduler, "bogus",
			`sim: unknown scheduler "bogus" (valid: calendar, heap)`)
		if got, ok := r.(string); !ok || got != want {
			t.Fatalf("panic message = %v, want %q", r, want)
		}
	}()
	DefaultScheduler()
}
