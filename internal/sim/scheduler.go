package sim

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// scheduler is the event-queue abstraction behind the kernel. The kernel
// owns event allocation, recycling, and the virtual clock; a scheduler
// only orders queued events by the (at, seq) total order.
//
// Every implementation must honor that total order exactly: two events
// compare by time first and by scheduling sequence number on ties. A run
// is required to be byte-identical under any scheduler, so dispatch order
// is part of the contract, not an implementation detail (see
// docs/DETERMINISM.md).
//
// Implementations mark queued events with ev.index >= 0 (the meaning of
// the index is implementation-private) and must reset it to -1 when the
// event leaves the queue, which is how Timer handles detect liveness.
type scheduler interface {
	// push enqueues an event. The kernel guarantees ev.at is finite and
	// not before the time of the last popped event.
	push(ev *event)
	// popUntil removes and returns the earliest queued event by
	// (at, seq) if its time is <= horizon. It returns nil — and leaves
	// the queue untouched — when the queue is empty or the earliest
	// event lies beyond the horizon.
	popUntil(horizon Time) *event
	// remove unlinks a queued event by handle (the kernel only calls it
	// with ev.index >= 0).
	remove(ev *event)
	// len reports how many events are queued.
	len() int
}

// Scheduler names accepted by New, WithScheduler, the TIBFIT_SCHEDULER
// environment variable, and the cmd tools' -scheduler flag.
const (
	// SchedulerHeap is the binary-heap queue: O(log n) push/pop, no
	// auxiliary state, the implementation the kernel launched with.
	SchedulerHeap = "heap"
	// SchedulerCalendar is the ns-2-style calendar queue: time-bucketed
	// FIFO rings with adaptive bucket width and count, O(1) amortized
	// push/pop at large standing-timer populations. The default.
	SchedulerCalendar = "calendar"
)

// EnvScheduler is the environment variable consulted for the process-wide
// default scheduler, so CI can run the whole test suite under either
// implementation: TIBFIT_SCHEDULER=heap go test ./...
const EnvScheduler = "TIBFIT_SCHEDULER"

// Schedulers returns the known scheduler names, sorted.
func Schedulers() []string { return []string{SchedulerCalendar, SchedulerHeap} }

// ValidScheduler reports whether name is a known scheduler name. The
// empty string is valid and means "the process default".
func ValidScheduler(name string) bool {
	return name == "" || name == SchedulerHeap || name == SchedulerCalendar
}

// ResolveScheduler validates a scheduler name. The empty string resolves
// to itself, meaning "keep the process default"; unknown names return an
// error listing the valid ones.
func ResolveScheduler(name string) (string, error) {
	if !ValidScheduler(name) {
		return "", fmt.Errorf("sim: unknown scheduler %q (valid: %s)",
			name, strings.Join(Schedulers(), ", "))
	}
	return name, nil
}

// defaultSched holds the lazily resolved process-wide default. Guarded by
// a mutex so SetDefaultScheduler from a main() and kernel construction in
// tests never race.
var defaultSched struct {
	sync.Mutex
	name string
}

// DefaultScheduler returns the process-wide default scheduler name: the
// value installed by SetDefaultScheduler if any, else EnvScheduler from
// the environment, else the calendar queue. An invalid environment value
// panics — a typo'd CI matrix leg silently falling back to the default
// would defeat the point of the matrix.
func DefaultScheduler() string {
	defaultSched.Lock()
	defer defaultSched.Unlock()
	if defaultSched.name == "" {
		name := SchedulerCalendar
		if env := os.Getenv(EnvScheduler); env != "" {
			if _, err := ResolveScheduler(env); err != nil {
				panic(fmt.Sprintf("sim: bad %s=%q: %v", EnvScheduler, env, err))
			}
			name = env
		}
		defaultSched.name = name
	}
	return defaultSched.name
}

// SetDefaultScheduler installs the process-wide default used by kernels
// constructed without an explicit WithScheduler option. The cmd tools
// call it once after flag parsing; it overrides EnvScheduler.
func SetDefaultScheduler(name string) error {
	if name == "" {
		return fmt.Errorf("sim: empty scheduler name")
	}
	if _, err := ResolveScheduler(name); err != nil {
		return err
	}
	defaultSched.Lock()
	defaultSched.name = name
	defaultSched.Unlock()
	return nil
}

// newSchedulerImpl constructs the named scheduler. name must already be
// resolved to a non-empty valid name.
func newSchedulerImpl(name string) scheduler {
	switch name {
	case SchedulerHeap:
		return newHeapQueue()
	case SchedulerCalendar:
		return newCalQueue()
	}
	panic(fmt.Sprintf("sim: unknown scheduler %q", name))
}

// Option configures a Kernel under construction.
type Option func(*Kernel)

// WithScheduler selects the event-queue implementation by name. The empty
// string keeps the process default (see DefaultScheduler). New panics on
// unknown names; CLI layers validate first via ResolveScheduler.
func WithScheduler(name string) Option {
	return func(k *Kernel) { k.schedName = name }
}
