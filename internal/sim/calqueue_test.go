package sim

import (
	"testing"
)

// calOf digs the calendar queue out of a kernel for white-box assertions.
func calOf(t *testing.T, k *Kernel) *calQueue {
	t.Helper()
	c, ok := k.sched.(*calQueue)
	if !ok {
		t.Fatalf("kernel scheduler is %T, want *calQueue", k.sched)
	}
	return c
}

// TestCalendarGrowsAndShrinksWithPopulation pins the resize policy: bucket
// count doubles past 2× occupancy and halves below half occupancy, with a
// floor at calMinBuckets.
func TestCalendarGrowsAndShrinksWithPopulation(t *testing.T) {
	k := New(WithScheduler(SchedulerCalendar))
	c := calOf(t, k)
	if got := len(c.buckets); got != calMinBuckets {
		t.Fatalf("initial buckets = %d, want %d", got, calMinBuckets)
	}
	const n = 10_000
	timers := make([]*Timer, 0, n)
	for i := 0; i < n; i++ {
		timers = append(timers, k.After(Duration(1+i), func() {}))
	}
	grown := len(c.buckets)
	if grown < n/2 {
		t.Fatalf("buckets after %d schedules = %d, want >= %d (2x-occupancy growth)", n, grown, n/2)
	}
	// Mass cancellation must walk the calendar back down.
	for _, tm := range timers[:n-5] {
		if !tm.Stop() {
			t.Fatal("Stop failed on a pending timer")
		}
	}
	if shrunk := len(c.buckets); shrunk >= grown {
		t.Fatalf("buckets after mass cancel = %d, want < %d (shrink)", shrunk, grown)
	}
	if k.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", k.Pending())
	}
	k.RunAll()
	if k.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5", k.Fired())
	}
}

// TestCalendarAllSameInstant is the degenerate width edge: thousands of
// events at one instant give the width estimator zero gaps to work with,
// so the width must survive unchanged (never collapse to zero) and the
// burst must still dispatch in exact FIFO order.
func TestCalendarAllSameInstant(t *testing.T) {
	k := New(WithScheduler(SchedulerCalendar))
	c := calOf(t, k)
	const n = 5000
	var got []int
	for i := 0; i < n; i++ {
		i := i
		if _, err := k.At(7, func() { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if !(c.width > 0) {
		t.Fatalf("width degenerated to %v under same-instant load", c.width)
	}
	k.RunAll()
	if len(got) != n {
		t.Fatalf("fired %d events, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant burst broke FIFO at %d: got %d", i, v)
		}
	}
}

// TestCalendarFarFutureSparse drives the direct-search fallback: a handful
// of events scattered across an enormous horizon means year scans come up
// empty and the global-minimum search must keep exact time order, with
// near-term events interleaving correctly as they are added mid-run.
func TestCalendarFarFutureSparse(t *testing.T) {
	k := New(WithScheduler(SchedulerCalendar))
	var got []float64
	ats := []Time{3, 1e12, 5e6, 2, 7e9, 4e3, 1e12, 8}
	for _, at := range ats {
		at := at
		if _, err := k.At(at, func() { got = append(got, float64(at)) }); err != nil {
			t.Fatal(err)
		}
	}
	// A handler near the front schedules another far-future event.
	k.After(1, func() {
		k.After(3e6, func() { got = append(got, -1) }) // fires at 3e6+1
	})
	k.RunAll()
	expect := []float64{2, 3, 8, 4e3, -1, 5e6, 7e9, 1e12, 1e12}
	if len(got) != len(expect) {
		t.Fatalf("fired %d events: %v", len(got), got)
	}
	for i, v := range got {
		//lint:allow floateq exact dispatch-order check
		if v != expect[i] {
			t.Fatalf("sparse dispatch order[%d] = %v, want %v (full: %v)", i, v, expect[i], got)
		}
	}
}

// TestCalendarStopLastEventInBucket pins handle invalidation on the chain
// path: cancelling the only event of a bucket empties that day, the
// generation counter keeps the stale handle inert once the record is
// recycled, and surrounding days are untouched.
func TestCalendarStopLastEventInBucket(t *testing.T) {
	k := New(WithScheduler(SchedulerCalendar))
	c := calOf(t, k)
	// Three events in three distinct days under the initial width of 1.
	a := k.After(0.5, func() {})
	fired := 0
	k.After(1.5, func() { fired++ })
	k.After(2.5, func() { fired++ })
	if c.n != 3 {
		t.Fatalf("n = %d, want 3", c.n)
	}
	if !a.Stop() {
		t.Fatal("Stop failed on the lone event of its bucket")
	}
	if a.Active() {
		t.Fatal("stopped timer still active")
	}
	if a.When() != End {
		t.Fatalf("stopped When() = %v, want End", a.When())
	}
	// The record is on the free list now; the next schedule reuses it and
	// the stale handle must not be able to touch the new life.
	b := k.After(3.5, func() { fired++ })
	if a.Stop() {
		t.Fatal("stale handle cancelled a recycled event")
	}
	k.RunAll()
	if fired != 3 {
		t.Fatalf("fired %d events, want 3", fired)
	}
	if b.Active() {
		t.Fatal("fired timer still active")
	}
}

// TestCalendarWidthAdaptsToHeadGaps checks the estimator samples at the
// head: a dense near-term population plus one far-future straggler must
// produce a near-term-sized width, not one stretched by the straggler.
func TestCalendarWidthAdaptsToHeadGaps(t *testing.T) {
	k := New(WithScheduler(SchedulerCalendar))
	c := calOf(t, k)
	k.After(1e9, func() {}) // straggler
	for i := 0; i < 2000; i++ {
		k.After(Duration(float64(i)*0.25), func() {})
	}
	if c.width > 100 {
		t.Fatalf("width = %v: estimator let a far-future straggler stretch the calendar", c.width)
	}
	if c.width <= 0 {
		t.Fatalf("width = %v, want > 0", c.width)
	}
	k.RunAll()
	if k.Fired() != 2001 {
		t.Fatalf("Fired() = %d, want 2001", k.Fired())
	}
}

// TestCalendarReschedulesAfterDrain: a queue that empties completely and
// then refills (common between experiment rounds) must keep working with
// the cursor state left by the last pop.
func TestCalendarReschedulesAfterDrain(t *testing.T) {
	k := New(WithScheduler(SchedulerCalendar))
	for round := 0; round < 5; round++ {
		base := k.Now()
		var got []float64
		for _, off := range []Duration{5, 1, 3, 2, 4} {
			off := off
			k.After(off, func() { got = append(got, float64(base.Add(off))) })
		}
		k.RunAll()
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Fatalf("round %d dispatched out of order: %v", round, got)
			}
		}
		if k.Pending() != 0 {
			t.Fatalf("round %d left %d pending", round, k.Pending())
		}
	}
}

// TestCalendarStress mirrors the heap's million-event stress run on the
// calendar implementation explicitly (the shared TestKernelStress runs
// under the process default, which the CI matrix flips).
func TestCalendarStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	k := New(WithScheduler(SchedulerCalendar))
	const n = 500_000
	fired := 0
	var timers []*Timer
	for i := 0; i < n; i++ {
		at := Time((i * 7919) % 104729) // pseudo-shuffled times
		tm, err := k.At(at, func() { fired++ })
		if err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			timers = append(timers, tm)
		}
	}
	cancelled := 0
	for _, tm := range timers {
		if tm.Stop() {
			cancelled++
		}
	}
	k.RunAll()
	if fired != n-cancelled {
		t.Fatalf("fired %d, want %d", fired, n-cancelled)
	}
}
