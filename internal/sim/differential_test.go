package sim

import (
	"fmt"
	"testing"

	"github.com/tibfit/tibfit/internal/rng"
)

// schedOp is one step of a differential scenario, generated once and
// replayed identically into a kernel per scheduler.
type schedOp struct {
	kind int // 0 schedule-after, 1 schedule-at-now (FIFO burst), 2 stop, 3 run-until, 4 step, 5 run-all
	f    float64
	idx  int
}

// genOps draws a random but deterministic op sequence. Delay draws mix
// the regimes the calendar queue has to survive: dense same-instant
// bursts, short uniform spacing, and far-future stragglers.
func genOps(seed int64, n int) []schedOp {
	src := rng.New(seed)
	ops := make([]schedOp, n)
	for i := range ops {
		op := schedOp{kind: src.Intn(6), idx: src.Intn(64)}
		switch src.Intn(4) {
		case 0:
			op.f = 0 // same-instant
		case 1:
			op.f = src.Uniform(0, 10)
		case 2:
			op.f = src.Uniform(0, 1000)
		case 3:
			op.f = src.Uniform(1e6, 1e9) // far-future straggler
		}
		ops[i] = op
	}
	return ops
}

// replay drives one kernel through the op list, recording every dispatch
// (by schedule serial) and a state fingerprint after every op.
func replay(name string, ops []schedOp) (dispatch []uint64, states []string) {
	k := New(WithScheduler(name))
	var timers []*Timer
	serial := uint64(0)
	for _, op := range ops {
		switch op.kind {
		case 0, 1:
			d := Duration(op.f)
			if op.kind == 1 {
				d = 0
			}
			id := serial
			serial++
			timers = append(timers, k.After(d, func() { dispatch = append(dispatch, id) }))
		case 2:
			if len(timers) > 0 {
				timers[op.idx%len(timers)].Stop()
			}
		case 3:
			k.Run(k.Now().Add(Duration(op.f)))
		case 4:
			k.Step()
		case 5:
			if op.idx%8 == 0 { // occasionally drain everything
				k.RunAll()
			}
		}
		states = append(states, fmt.Sprintf("now=%v pending=%d fired=%d", k.Now(), k.Pending(), k.Fired()))
	}
	k.RunAll()
	return dispatch, states
}

// TestSchedulerDifferential is the cross-scheduler determinism harness:
// seeded random schedule/stop/run-until/step sequences must produce the
// identical dispatch order and identical Now/Pending/Fired at every step
// under the heap and the calendar queue. This is the test that pins the
// (at, seq) total order as a scheduler contract rather than a heap
// accident.
func TestSchedulerDifferential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			ops := genOps(seed, 3000)
			heapDispatch, heapStates := replay(SchedulerHeap, ops)
			calDispatch, calStates := replay(SchedulerCalendar, ops)

			if len(heapDispatch) != len(calDispatch) {
				t.Fatalf("dispatch count diverged: heap=%d calendar=%d",
					len(heapDispatch), len(calDispatch))
			}
			for i := range heapDispatch {
				if heapDispatch[i] != calDispatch[i] {
					t.Fatalf("dispatch %d diverged: heap fired timer %d, calendar fired timer %d",
						i, heapDispatch[i], calDispatch[i])
				}
			}
			for i := range heapStates {
				if heapStates[i] != calStates[i] {
					t.Fatalf("state after op %d diverged:\nheap:     %s\ncalendar: %s",
						i, heapStates[i], calStates[i])
				}
			}
		})
	}
}

// TestSchedulerDifferentialNestedScheduling covers handlers that schedule
// more work mid-dispatch (the dominant pattern in the protocol code:
// retries, heartbeats, report windows) under both schedulers.
func TestSchedulerDifferentialNestedScheduling(t *testing.T) {
	run := func(name string) []float64 {
		k := New(WithScheduler(name))
		src := rng.New(99)
		var fired []float64
		var spawn func(depth int) Handler
		spawn = func(depth int) Handler {
			return func() {
				fired = append(fired, float64(k.Now()))
				if depth < 6 {
					n := src.Intn(3)
					for i := 0; i < n; i++ {
						k.After(Duration(src.Uniform(0, 50)), spawn(depth+1))
					}
				}
			}
		}
		for i := 0; i < 40; i++ {
			k.After(Duration(src.Uniform(0, 200)), spawn(0))
		}
		k.RunAll()
		return fired
	}
	heapFired := run(SchedulerHeap)
	calFired := run(SchedulerCalendar)
	if len(heapFired) != len(calFired) {
		t.Fatalf("fired count diverged: heap=%d calendar=%d", len(heapFired), len(calFired))
	}
	for i := range heapFired {
		//lint:allow floateq byte-identity check: both runs must produce the same bits
		if heapFired[i] != calFired[i] {
			t.Fatalf("dispatch time %d diverged: heap=%v calendar=%v", i, heapFired[i], calFired[i])
		}
	}
}
