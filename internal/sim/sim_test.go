package sim

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	k := New()
	var got []float64
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		if _, err := k.At(at, func() { got = append(got, float64(at)) }); err != nil {
			t.Fatal(err)
		}
	}
	k.RunAll()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestSimultaneousEventsFireFIFO(t *testing.T) {
	k := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := k.At(7, func() { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	k.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order = %v, want FIFO", got)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	k := New()
	k.After(3.5, func() {
		if k.Now() != 3.5 {
			t.Fatalf("Now() inside handler = %v, want 3.5", k.Now())
		}
	})
	k.RunAll()
	if k.Now() != 3.5 {
		t.Fatalf("Now() after run = %v, want 3.5", k.Now())
	}
}

func TestSchedulingInThePastFails(t *testing.T) {
	k := New()
	k.After(5, func() {
		if _, err := k.At(1, func() {}); !errors.Is(err, ErrPastTime) {
			t.Fatalf("At(past) err = %v, want ErrPastTime", err)
		}
	})
	k.RunAll()
}

func TestAfterNegativeDelayFiresNow(t *testing.T) {
	k := New()
	fired := false
	k.After(2, func() {
		k.After(-1, func() {
			fired = true
			if k.Now() != 2 {
				t.Fatalf("negative delay fired at %v, want 2", k.Now())
			}
		})
	})
	k.RunAll()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
}

func TestTimerStop(t *testing.T) {
	k := New()
	fired := false
	tm := k.After(1, func() { fired = true })
	if !tm.Active() {
		t.Fatal("fresh timer not active")
	}
	if !tm.Stop() {
		t.Fatal("Stop() reported failure on pending timer")
	}
	if tm.Active() {
		t.Fatal("stopped timer still active")
	}
	if tm.Stop() {
		t.Fatal("second Stop() reported success")
	}
	k.RunAll()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	k := New()
	tm := k.After(1, func() {})
	k.RunAll()
	if tm.Active() {
		t.Fatal("fired timer still active")
	}
	if tm.Stop() {
		t.Fatal("Stop() on fired timer reported success")
	}
}

func TestTimerWhen(t *testing.T) {
	k := New()
	tm := k.After(4, func() {})
	if tm.When() != 4 {
		t.Fatalf("When() = %v, want 4", tm.When())
	}
	var nilTimer *Timer
	if nilTimer.When() != End {
		t.Fatal("nil timer When() != End")
	}
	if nilTimer.Stop() || nilTimer.Active() {
		t.Fatal("nil timer Stop/Active misbehaved")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	k := New()
	var got []float64
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		_, _ = k.At(at, func() { got = append(got, float64(at)) })
	}
	n := k.Run(3)
	if n != 3 || len(got) != 3 {
		t.Fatalf("Run(3) dispatched %d events (%v), want 3", n, got)
	}
	if k.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", k.Pending())
	}
	k.RunAll()
	if len(got) != 5 {
		t.Fatalf("RunAll left events behind: %v", got)
	}
}

func TestRunAdvancesClockToHorizon(t *testing.T) {
	k := New()
	k.Run(10)
	if k.Now() != 10 {
		t.Fatalf("Now() = %v after empty Run(10), want 10", k.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := New()
	count := 0
	for i := 0; i < 10; i++ {
		k.After(Duration(i+1), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.RunAll()
	if count != 3 {
		t.Fatalf("dispatched %d events after Stop at 3", count)
	}
	// A later Run resumes.
	k.RunAll()
	if count != 10 {
		t.Fatalf("resume dispatched to %d, want 10", count)
	}
}

func TestStep(t *testing.T) {
	k := New()
	count := 0
	k.After(1, func() { count++ })
	k.After(2, func() { count++ })
	if !k.Step() || count != 1 {
		t.Fatalf("Step 1: count = %d", count)
	}
	if !k.Step() || count != 2 {
		t.Fatalf("Step 2: count = %d", count)
	}
	if k.Step() {
		t.Fatal("Step on empty queue reported work")
	}
}

func TestStepSkipsCancelled(t *testing.T) {
	k := New()
	fired := false
	tm := k.After(1, func() { t.Fatal("cancelled event fired") })
	k.After(2, func() { fired = true })
	tm.Stop()
	if !k.Step() || !fired {
		t.Fatal("Step did not skip cancelled event")
	}
}

func TestStopRemovesEventFromQueue(t *testing.T) {
	k := New()
	tm := k.After(1, func() {})
	k.After(2, func() {})
	k.After(3, func() {})
	if k.Pending() != 3 {
		t.Fatalf("Pending() = %d, want 3", k.Pending())
	}
	tm.Stop()
	if k.Pending() != 2 {
		t.Fatalf("Pending() after Stop = %d, want 2 (eager removal)", k.Pending())
	}
}

// TestStaleTimerHandleAfterRecycle pins the generation-counter safety net:
// once a stopped timer's record is reused by a later schedule, the old
// handle must stay inert and must not be able to cancel the new event.
func TestStaleTimerHandleAfterRecycle(t *testing.T) {
	k := New()
	old := k.After(1, func() { t.Fatal("stopped event fired") })
	old.Stop()
	fired := false
	fresh := k.After(2, func() { fired = true })
	if old.ev != fresh.ev {
		t.Skip("free list did not reuse the record; nothing to pin")
	}
	if old.Active() {
		t.Fatal("stale handle reports active")
	}
	if old.Stop() {
		t.Fatal("stale handle cancelled someone else's event")
	}
	if old.When() != End {
		t.Fatalf("stale When() = %v, want End", old.When())
	}
	k.RunAll()
	if !fired {
		t.Fatal("fresh event lost to a stale handle")
	}
}

func TestTimerWhenAfterStopAndFire(t *testing.T) {
	k := New()
	stopped := k.After(1, func() {})
	stopped.Stop()
	if stopped.When() != End {
		t.Fatalf("stopped When() = %v, want End", stopped.When())
	}
	firing := k.After(2, func() {})
	k.RunAll()
	if firing.When() != End {
		t.Fatalf("fired When() = %v, want End", firing.When())
	}
}

// TestSteadyStateSchedulingDoesNotAllocateEvents checks the free list: in
// a schedule/dispatch steady state the event record is recycled, leaving
// only the Timer handle itself (one small allocation) per cycle.
func TestSteadyStateSchedulingDoesNotAllocateEvents(t *testing.T) {
	k := New()
	k.After(1, func() {})
	k.Step() // prime the free list
	avg := testing.AllocsPerRun(200, func() {
		k.After(1, func() {})
		k.Step()
	})
	if avg > 2 {
		t.Fatalf("steady-state schedule+dispatch allocates %.1f objects/op, want <= 2", avg)
	}
}

func TestHandlersCanScheduleMoreWork(t *testing.T) {
	k := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			k.After(1, recurse)
		}
	}
	k.After(1, recurse)
	k.RunAll()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if k.Fired() != 100 {
		t.Fatalf("Fired() = %d, want 100", k.Fired())
	}
}

func TestTimeArithmetic(t *testing.T) {
	if got := Time(3).Add(2); got != 5 {
		t.Fatalf("Add = %v", got)
	}
	if got := Time(5).Sub(2); got != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if s := Time(1.5).String(); s != "t=1.500" {
		t.Fatalf("String = %q", s)
	}
}

// Property: for any set of scheduling offsets, events fire in
// non-decreasing time order and all non-cancelled events fire exactly once.
func TestDispatchOrderProperty(t *testing.T) {
	check := func(offsets []uint16) bool {
		k := New()
		var fired []Time
		for _, off := range offsets {
			at := Time(off)
			_, err := k.At(at, func() { fired = append(fired, at) })
			if err != nil {
				return false
			}
		}
		k.RunAll()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelStress pushes a million timer events (including mid-run
// scheduling and cancellations) through the queue to catch heap bugs that
// only appear at scale.
func TestKernelStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	k := New()
	const n = 1_000_000
	fired := 0
	var timers []*Timer
	for i := 0; i < n; i++ {
		at := Time((i * 7919) % 104729) // pseudo-shuffled times
		tm, err := k.At(at, func() { fired++ })
		if err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			timers = append(timers, tm)
		}
	}
	cancelled := 0
	for _, tm := range timers {
		if tm.Stop() {
			cancelled++
		}
	}
	k.RunAll()
	if fired != n-cancelled {
		t.Fatalf("fired %d, want %d", fired, n-cancelled)
	}
}
