package sim

import (
	"errors"
	"math"
	"testing"
)

// TestAtRejectsNonFiniteTimes pins the NaN/Inf guard: NaN compares false
// against everything, so before the guard existed a NaN time passed the
// past-time check and poisoned the queue ordering; +Inf would similarly
// wedge ahead of the End sentinel. Both now fail fast with the wrapped
// sentinel, under either scheduler.
func TestAtRejectsNonFiniteTimes(t *testing.T) {
	for _, name := range Schedulers() {
		name := name
		t.Run(name, func(t *testing.T) {
			k := New(WithScheduler(name))
			for _, at := range []Time{Time(math.NaN()), Time(math.Inf(1)), Time(math.Inf(-1))} {
				tm, err := k.At(at, func() { t.Fatal("non-finite event fired") })
				if !errors.Is(err, ErrNonFiniteTime) {
					t.Fatalf("At(%v) err = %v, want ErrNonFiniteTime", float64(at), err)
				}
				if tm != nil {
					t.Fatalf("At(%v) returned a live timer alongside the error", float64(at))
				}
			}
			if k.Pending() != 0 {
				t.Fatalf("rejected schedules left %d events queued", k.Pending())
			}
			// The kernel stays fully usable after a rejected schedule.
			fired := false
			k.After(1, func() { fired = true })
			k.RunAll()
			if !fired {
				t.Fatal("kernel wedged after rejecting a non-finite time")
			}
		})
	}
}

// TestAfterPanicsOnNonFiniteDelay pins After's contract: it has no error
// return, so every non-finite delay must panic carrying the sentinel.
// -Inf is the regression case: it satisfies the d < 0 clamp, so before
// the finiteness check moved ahead of the clamp, After(-Inf) silently
// scheduled at the current instant instead of failing fast.
func TestAfterPanicsOnNonFiniteDelay(t *testing.T) {
	for _, d := range []Duration{Duration(math.NaN()), Duration(math.Inf(1)), Duration(math.Inf(-1))} {
		d := d
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("After(%v) did not panic", float64(d))
				}
				err, ok := r.(error)
				if !ok || !errors.Is(err, ErrNonFiniteTime) {
					t.Fatalf("After(%v) panicked with %v, want ErrNonFiniteTime", float64(d), r)
				}
			}()
			k := New()
			k.After(d, func() {})
		}()
	}
}

// TestAtEndSentinelStillSchedulable: End is MaxFloat64, deliberately
// finite, so "schedule at the end of time" keeps working.
func TestAtEndSentinelStillSchedulable(t *testing.T) {
	k := New()
	if _, err := k.At(End, func() {}); err != nil {
		t.Fatalf("At(End) err = %v, want nil", err)
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
}
