// Package parallel implements the deterministic ordered work-pool the
// experiment harness fans campaigns out on.
//
// Every unit of campaign work in this repository — a replicate of one
// experiment, a figure cell (one simulated data point), a sweep point, a
// resilience-grid point — is an independent simulation: a pure function
// of its configuration and seed with no shared mutable state. Such units
// parallelize perfectly, and because Map writes each result into the
// slot of its index and callers merge in index order, the assembled
// output is byte-identical whatever the worker count. Parallelism here
// changes wall-clock time and nothing else; the determinism regression
// tests (internal/experiment) pin that property.
//
// The pool is deliberately dumb: a bounded set of workers draining an
// index channel. No worker identity, no wall-clock reads, no randomness
// — nothing the determinism lint suite (internal/lint) polices, so the
// package needs no //lint:allow annotations.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a "-parallel N" style knob to an effective worker
// count: n >= 1 is taken literally (1 = run inline on the caller's
// goroutine, exactly the pre-pool sequential execution), anything else
// (0, negative) means one worker per available core.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(0) … fn(n-1) on at most workers goroutines and returns
// the results in index order. workers <= 1 (or n <= 1) runs every call
// inline on the caller's goroutine in ascending index order — the
// sequential execution the parallel path must stay byte-identical to.
//
// Error policy: the error of the lowest failing index wins, whatever
// order workers finish in, so error reporting is as deterministic as
// the results. All submitted work runs to completion before Map returns
// — a unit of simulation work has no way to block, so there is nothing
// to gain from cancelling stragglers and much to lose in determinism.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			var err error
			if results[i], err = fn(i); err != nil {
				return nil, err
			}
		}
		return results, nil
	}

	errs := make([]error, n)
	var (
		wg   sync.WaitGroup
		next = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
